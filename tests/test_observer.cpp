// Tests for the simulation lifecycle observer and the CSV trace logger.

#include "sim/observer.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/registry.hpp"
#include "sim/simulation.hpp"
#include "util/csv.hpp"

namespace {

using tora::core::ResourceVector;
using tora::core::TaskSpec;
using tora::sim::SimConfig;
using tora::sim::Simulation;
using tora::sim::SimTime;

struct CountingObserver final : tora::sim::SimObserver {
  int submitted = 0, started = 0, failed = 0, completed = 0, fatal = 0,
      evicted = 0, joined = 0, left = 0;
  std::vector<std::pair<std::string, std::uint64_t>> sequence;

  void on_task_submitted(SimTime, std::uint64_t t) override {
    ++submitted;
    sequence.emplace_back("submit", t);
  }
  void on_attempt_started(SimTime, std::uint64_t t, std::uint64_t,
                          const ResourceVector&) override {
    ++started;
    sequence.emplace_back("start", t);
  }
  void on_attempt_failed(SimTime, std::uint64_t t, unsigned) override {
    ++failed;
    sequence.emplace_back("failed", t);
  }
  void on_task_completed(SimTime, std::uint64_t t) override {
    ++completed;
    sequence.emplace_back("complete", t);
  }
  void on_task_fatal(SimTime, std::uint64_t t) override { ++fatal; }
  void on_task_evicted(SimTime, std::uint64_t, std::uint64_t) override {
    ++evicted;
  }
  void on_worker_joined(SimTime, std::uint64_t) override { ++joined; }
  void on_worker_left(SimTime, std::uint64_t) override { ++left; }
};

std::vector<TaskSpec> tasks_with_memory(std::size_t n, double mem) {
  std::vector<TaskSpec> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = i;
    t.category = "c";
    t.demand = ResourceVector{0.5, mem, 10.0};
    t.duration_s = 10.0;
    t.peak_fraction = 0.5;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

SimConfig quiet(std::size_t workers = 2) {
  SimConfig cfg;
  cfg.churn.enabled = false;
  cfg.churn.initial_workers = workers;
  return cfg;
}

TEST(Observer, CountsMatchResult) {
  const auto tasks = tasks_with_memory(20, 500.0);
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  Simulation sim(tasks, alloc, quiet(3));
  CountingObserver obs;
  sim.set_observer(&obs);
  const auto r = sim.run();
  EXPECT_EQ(obs.submitted, 20);
  EXPECT_EQ(obs.completed, 20);
  EXPECT_EQ(obs.started, static_cast<int>(r.accounting.total_attempts()));
  EXPECT_EQ(obs.failed, 0);
  EXPECT_EQ(obs.fatal, 0);
  EXPECT_EQ(obs.joined, 3);
  EXPECT_EQ(obs.left, 0);
}

TEST(Observer, FailedAttemptsAreReported) {
  // Bucketing exploration under-allocates memory (1024 < 2000): every early
  // task fails at least once.
  const auto tasks = tasks_with_memory(5, 2000.0);
  auto alloc = tora::core::make_allocator(tora::core::kGreedyBucketing, 1);
  Simulation sim(tasks, alloc, quiet());
  CountingObserver obs;
  sim.set_observer(&obs);
  const auto r = sim.run();
  EXPECT_GT(obs.failed, 0);
  EXPECT_EQ(obs.started, static_cast<int>(r.accounting.total_attempts()));
  EXPECT_EQ(obs.completed, 5);
}

TEST(Observer, PerTaskLifecycleOrdering) {
  const auto tasks = tasks_with_memory(3, 100.0);
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  Simulation sim(tasks, alloc, quiet(1));
  CountingObserver obs;
  sim.set_observer(&obs);
  (void)sim.run();
  // For each task: submit before start before complete.
  for (std::uint64_t t = 0; t < 3; ++t) {
    int submit_at = -1, start_at = -1, complete_at = -1;
    for (std::size_t i = 0; i < obs.sequence.size(); ++i) {
      if (obs.sequence[i].second != t) continue;
      if (obs.sequence[i].first == "submit") submit_at = static_cast<int>(i);
      if (obs.sequence[i].first == "start" && start_at < 0) {
        start_at = static_cast<int>(i);
      }
      if (obs.sequence[i].first == "complete") complete_at = static_cast<int>(i);
    }
    EXPECT_GE(start_at, 0);
    EXPECT_LT(submit_at, start_at);
    EXPECT_LT(start_at, complete_at);
  }
}

TEST(Observer, EvictionsReported) {
  const auto tasks = tasks_with_memory(100, 500.0);
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  SimConfig cfg;
  cfg.churn.enabled = true;
  cfg.churn.initial_workers = 8;
  cfg.churn.min_workers = 2;
  cfg.churn.max_workers = 10;
  cfg.churn.mean_interarrival_s = 30.0;
  cfg.churn.mean_lifetime_s = 60.0;
  cfg.seed = 11;
  // Long tasks to guarantee evictions under fast churn.
  auto long_tasks = tasks;
  for (auto& t : long_tasks) t.duration_s = 120.0;
  Simulation sim(long_tasks, alloc, cfg);
  CountingObserver obs;
  sim.set_observer(&obs);
  const auto r = sim.run();
  EXPECT_EQ(obs.evicted, static_cast<int>(r.evictions));
  EXPECT_EQ(obs.left, static_cast<int>(r.total_leaves));
  EXPECT_GT(obs.left, 0);
}

TEST(CsvTraceObserver, WritesParsableRows) {
  const auto tasks = tasks_with_memory(4, 100.0);
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  Simulation sim(tasks, alloc, quiet(2));
  std::ostringstream out;
  tora::sim::CsvTraceObserver obs(out);
  sim.set_observer(&obs);
  (void)sim.run();
  const auto rows = tora::util::parse_csv(out.str());
  ASSERT_GT(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "time");
  // header + every logged row; all rows have 7 fields.
  EXPECT_EQ(rows.size(), obs.rows_written() + 1);
  for (const auto& row : rows) EXPECT_EQ(row.size(), 7u);
  // 4 submits, 4 starts (with allocation fields), 4 completes, 2 joins.
  int starts = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i][1] == "start") {
      ++starts;
      EXPECT_FALSE(rows[i][4].empty());  // cores column populated
      EXPECT_DOUBLE_EQ(std::stod(rows[i][4]), 16.0);
    }
  }
  EXPECT_EQ(starts, 4);
}

}  // namespace
