// Unit coverage for the socket transport's building blocks: the
// EINTR/EAGAIN-safe io helpers (shared with recovery::FileStorage), the
// newline frame reassembler, the partial-write send buffer, the session
// control-frame codec, the bounded session send queue, and the jittered
// reconnect backoff.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "proto/net/frame.hpp"
#include "proto/net/session.hpp"
#include "proto/net/socket.hpp"
#include "util/io.hpp"

namespace {

using tora::core::TransportCounters;
using tora::proto::net::AckFrame;
using tora::proto::net::decode_ack;
using tora::proto::net::decode_hello;
using tora::proto::net::decode_welcome;
using tora::proto::net::encode_ack;
using tora::proto::net::encode_hello;
using tora::proto::net::encode_welcome;
using tora::proto::net::FrameReader;
using tora::proto::net::HelloFrame;
using tora::proto::net::is_control_frame;
using tora::proto::net::ReconnectBackoff;
using tora::proto::net::SendBuffer;
using tora::proto::net::SessionConfig;
using tora::proto::net::SessionSendQueue;
using tora::proto::net::WelcomeFrame;
namespace io = tora::util::io;

// ----------------------------------------------------------------- util/io

TEST(UtilIo, WriteFullThenReadFullRoundTripsThroughAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload(8000, 'x');
  const auto w = io::write_full(fds[1], payload);
  EXPECT_EQ(w.status, io::IoStatus::Ok);
  EXPECT_EQ(w.bytes, payload.size());
  std::string out;
  const auto r = io::read_full(fds[0], out, payload.size());
  EXPECT_EQ(r.status, io::IoStatus::Ok);
  EXPECT_EQ(out, payload);
  io::close_fd(fds[0]);
  io::close_fd(fds[1]);
}

TEST(UtilIo, ReadFullReportsEofWithPartialCount) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(io::write_full(fds[1], "abc").status, io::IoStatus::Ok);
  io::close_fd(fds[1]);
  std::string out;
  const auto r = io::read_full(fds[0], out, 10);
  EXPECT_EQ(r.status, io::IoStatus::Eof);
  EXPECT_EQ(r.bytes, 3u);
  EXPECT_EQ(out, "abc");
  io::close_fd(fds[0]);
}

TEST(UtilIo, ReadToEndDrainsEverything) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(io::write_full(fds[1], "hello world").status, io::IoStatus::Ok);
  io::close_fd(fds[1]);
  std::string out;
  const auto r = io::read_to_end(fds[0], out);
  EXPECT_EQ(r.status, io::IoStatus::Ok);
  EXPECT_EQ(out, "hello world");
  io::close_fd(fds[0]);
}

TEST(UtilIo, RecvSomeMapsEmptyNonblockingSocketToWouldBlock) {
  int fds[2];
  ASSERT_EQ(::pipe2(fds, O_NONBLOCK), 0);
  std::string out;
  const auto r = io::recv_some(fds[0], out, 64);
  // recv() on a pipe is ENOTSOCK; read path via socketpair below. Here we
  // only assert the helper never fabricates data.
  EXPECT_TRUE(out.empty());
  (void)r;
  io::close_fd(fds[0]);
  io::close_fd(fds[1]);
}

TEST(UtilIo, ErrorStatusPreservesErrno) {
  const auto r = io::write_full(-1, "x");
  EXPECT_EQ(r.status, io::IoStatus::Error);
  EXPECT_EQ(errno, EBADF);
}

TEST(UtilIo, OpenRetryAndFsyncRetryWorkOnARealFile) {
  const std::string path = ::testing::TempDir() + "tora_io_test.bin";
  const int fd = io::open_retry(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC,
                                0600);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(io::write_full(fd, "durable").status, io::IoStatus::Ok);
  EXPECT_TRUE(io::fsync_retry(fd));
  io::close_fd(fd);
  ::unlink(path.c_str());
}

// ------------------------------------------------------------ FrameReader

TEST(FrameReaderTest, ReassemblesAcrossArbitraryChunks) {
  FrameReader reader(256);
  EXPECT_TRUE(reader.feed("hel"));
  EXPECT_FALSE(reader.pop().has_value());
  EXPECT_EQ(reader.partial_bytes(), 3u);
  EXPECT_TRUE(reader.feed("lo\nwor"));
  EXPECT_EQ(*reader.pop(), "hello");
  EXPECT_TRUE(reader.feed("ld\n\n"));
  EXPECT_EQ(*reader.pop(), "world");
  EXPECT_EQ(*reader.pop(), "");  // empty frame is a frame
  EXPECT_FALSE(reader.pop().has_value());
  EXPECT_EQ(reader.frames_assembled(), 3u);
}

TEST(FrameReaderTest, OversizedPartialFramePoisons) {
  FrameReader reader(8);
  EXPECT_FALSE(reader.feed(std::string(16, 'a')));  // no newline in sight
  EXPECT_TRUE(reader.poisoned());
  EXPECT_FALSE(reader.feed("tail"));
}

TEST(FrameReaderTest, OversizedCompleteFramePoisons) {
  FrameReader reader(8);
  EXPECT_FALSE(reader.feed(std::string(16, 'a') + "\n"));
  EXPECT_TRUE(reader.poisoned());
}

// ------------------------------------------------------------- SendBuffer

TEST(SendBufferTest, PartialWriteResumesMidFrame) {
  SendBuffer buf;
  buf.push_frame("abcdef");
  buf.push_frame("gh");
  EXPECT_EQ(buf.pending_bytes(), 7u + 3u);  // newline-terminated
  EXPECT_EQ(buf.chunk(), "abcdef\ngh\n");
  buf.consume(4);  // short write mid-frame
  EXPECT_EQ(buf.chunk(), "ef\ngh\n");
  buf.consume(6);
  EXPECT_TRUE(buf.empty());
}

// ---------------------------------------------------------- control codec

TEST(SessionCodec, HelloRoundTrips) {
  HelloFrame h;
  h.version = 1;
  h.worker_id = 7;
  h.token = 0xdeadbeefULL;
  h.rx_seq = 42;
  const std::string wire = encode_hello(h);
  EXPECT_TRUE(is_control_frame(wire));
  const auto back = decode_hello(wire);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->version, h.version);
  EXPECT_EQ(back->worker_id, h.worker_id);
  EXPECT_EQ(back->token, h.token);
  EXPECT_EQ(back->rx_seq, h.rx_seq);
}

TEST(SessionCodec, WelcomeAndAckRoundTrip) {
  WelcomeFrame w;
  w.token = 99;
  w.rx_seq = 5;
  w.resumed = true;
  const auto wb = decode_welcome(encode_welcome(w));
  ASSERT_TRUE(wb);
  EXPECT_EQ(wb->token, 99u);
  EXPECT_EQ(wb->rx_seq, 5u);
  EXPECT_TRUE(wb->resumed);

  const auto ab = decode_ack(encode_ack(AckFrame{17}));
  ASSERT_TRUE(ab);
  EXPECT_EQ(ab->rx_seq, 17u);
}

TEST(SessionCodec, EveryTruncationOfAValidHelloIsRejected) {
  const std::string wire = encode_hello(HelloFrame{1, 3, 12345, 6});
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(decode_hello(wire.substr(0, len)))
        << "truncation at byte " << len << " parsed";
  }
}

TEST(SessionCodec, SingleByteCorruptionIsRejected) {
  const std::string wire = encode_hello(HelloFrame{1, 3, 12345, 6});
  for (std::size_t at = 0; at < wire.size(); ++at) {
    std::string bad = wire;
    bad[at] = static_cast<char>(bad[at] ^ 0x01);
    EXPECT_FALSE(decode_hello(bad)) << "flip at byte " << at << " parsed";
  }
}

TEST(SessionCodec, UnknownDuplicateAndMissingFieldsAreRejected) {
  EXPECT_FALSE(decode_hello("tora!hello v=1 worker=0 token=0 rx=0"));  // no crc
  EXPECT_FALSE(decode_ack(encode_hello(HelloFrame{})));  // wrong verb
  EXPECT_FALSE(decode_hello("garbage"));
  EXPECT_FALSE(decode_hello(""));
  // App frames never look like control frames and vice versa.
  EXPECT_FALSE(is_control_frame("heartbeat crc=0 worker=0"));
}

// ------------------------------------------------------- SessionSendQueue

std::string hb(int n) {
  return "heartbeat frame_" + std::to_string(n);
}

TEST(SendQueue, SequencesAcksAndReplay) {
  SessionConfig cfg;
  TransportCounters counters;
  SessionSendQueue q(cfg, &counters);
  q.push("app a");
  q.push("app b");
  q.push("app c");
  EXPECT_EQ(q.accepted(), 3u);
  EXPECT_EQ(*q.next_to_send(), "app a");
  EXPECT_EQ(*q.next_to_send(), "app b");
  EXPECT_FALSE(q.fully_sent());
  // Peer acked the first frame only.
  q.acked(1);
  EXPECT_EQ(q.base_seq(), 1u);
  EXPECT_EQ(q.depth(), 2u);
  // Connection dies; peer reconnects still reporting rx=1: frame b replays.
  q.rewind(1);
  EXPECT_EQ(counters.frames_replayed, 1u);
  EXPECT_EQ(*q.next_to_send(), "app b");
  EXPECT_EQ(*q.next_to_send(), "app c");
  q.acked(3);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(SendQueue, HeartbeatsCoalesceInPlace) {
  SessionConfig cfg;
  TransportCounters counters;
  SessionSendQueue q(cfg, &counters);
  q.push("app a");
  q.push(hb(1));
  q.push("app b");
  q.push(hb(2));  // replaces hb(1) in place, same sequence slot
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(counters.heartbeats_coalesced, 1u);
  EXPECT_EQ(*q.next_to_send(), "app a");
  EXPECT_EQ(*q.next_to_send(), hb(2));
  EXPECT_EQ(*q.next_to_send(), "app b");
}

TEST(SendQueue, BackpressureLatchesAtHighReleasesAtLow) {
  SessionConfig cfg;
  cfg.queue_low = 2;
  cfg.queue_high = 4;
  cfg.queue_cap = 8;
  TransportCounters counters;
  SessionSendQueue q(cfg, &counters);
  q.push("app 0");
  q.push("app 1");
  q.push("app 2");
  EXPECT_FALSE(q.backpressured());
  q.push("app 3");
  EXPECT_TRUE(q.backpressured());
  EXPECT_EQ(counters.backpressure_events, 1u);
  (void)q.next_to_send();
  q.acked(1);
  EXPECT_TRUE(q.backpressured()) << "must hold until the LOW mark";
  (void)q.next_to_send();
  q.acked(2);
  EXPECT_FALSE(q.backpressured());
}

TEST(SendQueue, HeartbeatsShedAtCapAppFramesThrow) {
  SessionConfig cfg;
  cfg.queue_low = 1;
  cfg.queue_high = 2;
  cfg.queue_cap = 3;
  TransportCounters counters;
  SessionSendQueue q(cfg, &counters);
  q.push("app 0");
  q.push("app 1");
  q.push("app 2");
  q.push(hb(1));  // at cap, no queued heartbeat to coalesce into: shed
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(counters.heartbeats_shed, 1u);
  EXPECT_THROW(q.push("app 3"), std::runtime_error)
      << "application frames are never silently dropped";
}

TEST(SendQueue, ResetFreshRenumbersSurvivors) {
  SessionConfig cfg;
  TransportCounters counters;
  SessionSendQueue q(cfg, &counters);
  q.push("app a");
  q.push("app b");
  (void)q.next_to_send();
  q.acked(1);
  EXPECT_EQ(q.base_seq(), 1u);
  q.reset_fresh();
  EXPECT_EQ(q.base_seq(), 0u);
  EXPECT_EQ(q.accepted(), 1u);
  EXPECT_EQ(*q.next_to_send(), "app b");
}

// ------------------------------------------------------- ReconnectBackoff

TEST(Backoff, GrowsExponentiallyToCapWithBoundedJitter) {
  ReconnectBackoff b(1.0, 16.0, 0.25, 42);
  std::vector<double> delays;
  for (std::size_t attempt = 1; attempt <= 8; ++attempt) {
    delays.push_back(b.delay(attempt));
  }
  for (std::size_t i = 0; i < delays.size(); ++i) {
    const double nominal = std::min(16.0, static_cast<double>(1u << i));
    EXPECT_GE(delays[i], nominal * 0.75 - 1e-9);
    EXPECT_LE(delays[i], nominal * 1.25 + 1e-9);
  }
}

TEST(Backoff, SameSeedSameDelays) {
  ReconnectBackoff a(0.5, 8.0, 0.2, 7);
  ReconnectBackoff b(0.5, 8.0, 0.2, 7);
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(a.delay(i), b.delay(i));
  }
}

TEST(Backoff, DifferentSeedsDesynchronizeTheStampede) {
  ReconnectBackoff a(1.0, 16.0, 0.25, 1);
  ReconnectBackoff b(1.0, 16.0, 0.25, 2);
  bool differs = false;
  for (std::size_t i = 1; i < 6; ++i) {
    if (a.delay(i) != b.delay(i)) differs = true;
  }
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------- SessionConfig

TEST(SessionConfigTest, ValidateRejectsNonsense) {
  SessionConfig bad;
  bad.queue_low = 10;
  bad.queue_high = 5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  SessionConfig bad2;
  bad2.max_hello_bytes = 1 << 20;  // > max_frame_bytes
  EXPECT_THROW(bad2.validate(), std::invalid_argument);
  SessionConfig ok;
  EXPECT_NO_THROW(ok.validate());
}

}  // namespace
