// Chaos tests: the fault-injection layer (proto/fault.hpp) and the
// hardened protocol runtime. Every fault decision derives from a seed, so
// each scenario asserts both recovery (the workflow still completes) and
// determinism (identical counters on replay).

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "core/registry.hpp"
#include "proto/fault.hpp"
#include "proto/manager.hpp"
#include "proto/worker_agent.hpp"
#include "util/rng.hpp"

namespace {

using tora::core::ChaosCounters;
using tora::core::ResourceKind;
using tora::core::ResourceVector;
using tora::core::TaskSpec;
using tora::proto::ChaosConfig;
using tora::proto::CrashPoint;
using tora::proto::DuplexLink;
using tora::proto::FaultPlan;
using tora::proto::FaultyChannel;
using tora::proto::LivenessConfig;
using tora::proto::Message;
using tora::proto::MsgType;
using tora::proto::ProtocolManager;
using tora::proto::ProtocolRuntime;

constexpr ResourceVector kCapacity{16.0, 65536.0, 65536.0, 0.0};

std::vector<TaskSpec> simple_tasks(std::size_t n, double mem = 500.0) {
  std::vector<TaskSpec> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = i;
    t.category = "c";
    t.demand = ResourceVector{1.0, mem, 50.0};
    t.duration_s = 10.0;
    t.peak_fraction = 0.5;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

// ------------------------------------------------------------ FaultyChannel

TEST(FaultyChannel, DropsEverythingAtProbabilityOne) {
  FaultPlan plan;
  plan.drop_prob = 1.0;
  FaultyChannel ch(plan, tora::util::Rng(1));
  for (int i = 0; i < 10; ++i) ch.send("msg");
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.chaos().messages_dropped, 10u);
}

TEST(FaultyChannel, DuplicatesEverythingAtProbabilityOne) {
  FaultPlan plan;
  plan.duplicate_prob = 1.0;
  FaultyChannel ch(plan, tora::util::Rng(1));
  ch.send("msg");
  EXPECT_EQ(ch.pending(), 2u);
  EXPECT_EQ(ch.chaos().messages_duplicated, 1u);
  EXPECT_EQ(*ch.poll(), "msg");
  EXPECT_EQ(*ch.poll(), "msg");
}

TEST(FaultyChannel, CorruptionBreaksTheChecksumOrNothing) {
  FaultPlan plan;
  plan.corrupt_prob = 1.0;
  FaultyChannel ch(plan, tora::util::Rng(7));
  Message m;
  m.type = MsgType::Evict;
  m.worker_id = 2;
  m.task_id = 4;
  std::size_t rejected = 0;
  for (int i = 0; i < 200; ++i) {
    ch.send(encode(m));
    const auto line = ch.poll();
    ASSERT_TRUE(line);
    const auto decoded = tora::proto::decode(*line);
    // A single mutated byte either breaks the crc (rejected) or only hit
    // the crc token itself — it can never yield a different valid message.
    if (decoded) {
      EXPECT_EQ(*decoded, m) << *line;
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(ch.chaos().messages_corrupted, 200u);
  EXPECT_GT(rejected, 150u);  // the vast majority of mutations must reject
}

TEST(FaultyChannel, SeversAfterConfiguredMessageCount) {
  FaultPlan plan;
  plan.sever_after_messages = 3;
  FaultyChannel ch(plan, tora::util::Rng(1));
  for (int i = 0; i < 5; ++i) ch.send("msg");
  EXPECT_EQ(ch.pending(), 3u);
  EXPECT_EQ(ch.chaos().messages_severed, 2u);
  EXPECT_EQ(ch.chaos().links_severed, 1u);
  EXPECT_TRUE(ch.severed());
}

TEST(FaultyChannel, SameSeedSameFaultSequence) {
  FaultPlan plan;
  plan.drop_prob = 0.3;
  plan.duplicate_prob = 0.2;
  plan.corrupt_prob = 0.2;
  const auto run = [&plan] {
    FaultyChannel ch(plan, tora::util::Rng(99));
    for (int i = 0; i < 300; ++i) ch.send(std::string(1 + i % 40, 'x'));
    std::vector<std::string> delivered;
    while (auto line = ch.poll()) delivered.push_back(*line);
    return std::make_pair(delivered, ch.chaos());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_TRUE(a.second == b.second);
}

// -------------------------------------------------------- runtime recovery

ChaosConfig noisy_chaos(std::uint64_t seed) {
  ChaosConfig c;
  c.seed = seed;
  c.to_worker.drop_prob = 0.05;
  c.to_worker.duplicate_prob = 0.05;
  c.to_worker.corrupt_prob = 0.05;
  c.to_manager = c.to_worker;
  c.sever_workers = 1;
  c.sever_after_messages = 30;
  return c;
}

// Acceptance matrix: three allocation policies x five seeds, each run
// twice. Every run completes despite drops, duplicates, corruption and a
// hard-severed worker, with identical counters on replay and no attempt
// double-charged.
TEST(ChaosRuntime, EveryPolicyCompletesDeterministicallyUnderFaults) {
  const auto tasks = simple_tasks(60);
  const std::string_view policies[] = {tora::core::kGreedyBucketing,
                                       tora::core::kExhaustiveBucketing,
                                       tora::core::kWholeMachine};
  for (const std::string_view policy : policies) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      SCOPED_TRACE(std::string(policy) + " seed " + std::to_string(seed));
      const ChaosConfig chaos = noisy_chaos(seed);
      const auto run_once = [&] {
        auto alloc = tora::core::make_allocator(policy, 7);
        ProtocolRuntime runtime(tasks, alloc, 4, kCapacity, chaos);
        return runtime.run();
      };
      const auto a = run_once();
      const auto b = run_once();

      EXPECT_EQ(a.tasks_completed, 60u);
      EXPECT_EQ(a.tasks_fatal, 0u);
      EXPECT_GE(a.chaos.links_severed, 1u);  // the severed worker existed
      // Exact replay: every counter identical, message for message.
      EXPECT_TRUE(a.chaos == b.chaos);
      EXPECT_EQ(a.messages, b.messages);
      EXPECT_EQ(a.rounds, b.rounds);

      // Consistent accounting: exactly one successful record per task, and
      // only allocation-induced kills in the waste metric.
      EXPECT_EQ(a.accounting.task_count(), a.tasks_completed);
      const double consumption =
          a.accounting.breakdown(ResourceKind::MemoryMB).consumption;
      EXPECT_DOUBLE_EQ(consumption, 60 * 500.0 * 10.0);
      if (policy == tora::core::kWholeMachine) {
        // Whole machine cannot under-allocate: any failed-allocation waste
        // would mean an infrastructure fault leaked into the paper metric.
        EXPECT_DOUBLE_EQ(
            a.accounting.breakdown(ResourceKind::MemoryMB).failed_allocation,
            0.0);
        EXPECT_EQ(a.accounting.total_attempts(), 60u);
      }
    }
  }
}

TEST(ChaosRuntime, CrashedWorkerTasksAreRecoveredAsEvictions) {
  const auto tasks = simple_tasks(20);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  ChaosConfig chaos;
  chaos.worker_faults.resize(2);
  chaos.worker_faults[1].crash_point = CrashPoint::MidTask;
  ProtocolRuntime runtime(tasks, alloc, 2, kCapacity, chaos);
  const auto r = runtime.run();
  EXPECT_EQ(r.tasks_completed, 20u);
  EXPECT_EQ(r.chaos.worker_crashes, 1u);
  EXPECT_GE(r.chaos.workers_declared_dead, 1u);
  EXPECT_GE(r.chaos.protocol_evictions, 1u);
  EXPECT_GE(r.chaos.redispatches, 1u);
}

TEST(ChaosRuntime, CrashAfterAnnounceOnSoleOtherWorkerStillCompletes) {
  const auto tasks = simple_tasks(8);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  ChaosConfig chaos;
  chaos.worker_faults.resize(2);
  chaos.worker_faults[0].crash_point = CrashPoint::AfterAnnounce;
  ProtocolRuntime runtime(tasks, alloc, 2, kCapacity, chaos);
  const auto r = runtime.run();
  EXPECT_EQ(r.tasks_completed, 8u);
  EXPECT_EQ(r.chaos.worker_crashes, 1u);
  EXPECT_EQ(r.chaos.workers_declared_dead, 1u);
}

// ---------------------------------------------------- targeted hardening

TEST(WorkerAgentChaos, DuplicateDispatchAnsweredFromResultCache) {
  const auto tasks = simple_tasks(1);
  auto link = std::make_shared<DuplexLink>();
  tora::proto::WorkerAgent agent(0, kCapacity, tasks, link);
  Message dispatch;
  dispatch.type = MsgType::TaskDispatch;
  dispatch.worker_id = 0;
  dispatch.task_id = 0;
  dispatch.attempt = 1;
  dispatch.category = "c";
  dispatch.resources = ResourceVector{2.0, 1000.0, 100.0, 0.0};
  link->to_worker.send(encode(dispatch));
  link->to_worker.send(encode(dispatch));  // duplicated delivery
  agent.pump();
  const auto first = tora::proto::decode(*link->to_manager.poll());
  const auto second = tora::proto::decode(*link->to_manager.poll());
  ASSERT_TRUE(first);
  ASSERT_TRUE(second);
  EXPECT_EQ(*first, *second);  // cached, not re-executed
  EXPECT_EQ(agent.tasks_executed(), 1u);
  EXPECT_EQ(agent.chaos().duplicate_dispatches, 1u);
}

TEST(ProtocolManagerChaos, DuplicateResultAcceptedOnce) {
  const auto tasks = simple_tasks(1);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  auto link = std::make_shared<DuplexLink>();
  ProtocolManager manager(tasks, alloc, {link});

  Message ready;
  ready.type = MsgType::WorkerReady;
  ready.worker_id = 0;
  ready.resources = kCapacity;
  link->to_manager.send(encode(ready));
  manager.start();
  manager.pump();
  const auto dispatch = tora::proto::decode(*link->to_worker.poll());
  ASSERT_TRUE(dispatch);

  Message result;
  result.type = MsgType::TaskResult;
  result.worker_id = 0;
  result.task_id = dispatch->task_id;
  result.attempt = dispatch->attempt;
  result.outcome = tora::proto::Outcome::Success;
  result.resources = tasks[0].demand;
  result.runtime_s = tasks[0].duration_s;
  const std::string line = encode(result);
  link->to_manager.send(line);
  link->to_manager.send(line);  // duplicated delivery
  manager.pump();
  EXPECT_EQ(manager.tasks_completed(), 1u);
  EXPECT_EQ(manager.accounting().task_count(), 1u);
  EXPECT_EQ(manager.chaos().stale_or_duplicate_results, 1u);
}

TEST(ProtocolManagerChaos, HeartbeatReRegistersWorkerWithLostAnnouncement) {
  const auto tasks = simple_tasks(1);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  auto link = std::make_shared<DuplexLink>();
  ProtocolManager manager(tasks, alloc, {link});
  // The WorkerReady never arrives; the first heartbeat carries capacity and
  // must register the worker well enough to receive dispatches.
  Message hb;
  hb.type = MsgType::Heartbeat;
  hb.worker_id = 0;
  hb.resources = kCapacity;
  link->to_manager.send(encode(hb));
  manager.start();
  manager.pump();
  EXPECT_EQ(manager.workers_known(), 1u);
  const auto dispatch = tora::proto::decode(*link->to_worker.poll());
  ASSERT_TRUE(dispatch);
  EXPECT_EQ(dispatch->type, MsgType::TaskDispatch);
  EXPECT_EQ(manager.chaos().heartbeats, 1u);
}

TEST(ProtocolManagerChaos, OneWaySeveredLinkQuarantinesWorker) {
  const auto tasks = simple_tasks(1);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  // The manager->worker direction silently eats every dispatch while the
  // worker keeps heartbeating: only repeated attempt timeouts can expose it.
  tora::util::Rng rng(42);
  FaultPlan blackhole;
  blackhole.drop_prob = 1.0;
  auto link = tora::proto::make_faulty_link(blackhole, FaultPlan{}, rng);
  LivenessConfig liveness;
  liveness.attempt_timeout_ticks = 2;
  liveness.worker_failure_limit = 2;
  liveness.backoff_base_ticks = 1;
  liveness.backoff_cap_ticks = 2;
  ProtocolManager manager(tasks, alloc, {link}, liveness);

  Message ready;
  ready.type = MsgType::WorkerReady;
  ready.worker_id = 0;
  ready.resources = kCapacity;
  link->to_manager.send(encode(ready));
  manager.start();
  Message hb;
  hb.type = MsgType::Heartbeat;
  hb.worker_id = 0;
  hb.resources = kCapacity;
  for (int i = 0; i < 40 && manager.chaos().workers_quarantined == 0; ++i) {
    link->to_manager.send(encode(hb));
    manager.pump();
  }
  EXPECT_EQ(manager.chaos().workers_quarantined, 1u);
  EXPECT_GE(manager.chaos().attempt_timeouts, 2u);
  EXPECT_EQ(manager.workers_known(), 0u);
  // Quarantine is permanent: further heartbeats must not re-admit it.
  link->to_manager.send(encode(hb));
  manager.pump();
  EXPECT_EQ(manager.workers_known(), 0u);
}

TEST(ProtocolManagerChaos, DuplicateAnnouncementKeepsCommittedCapacity) {
  // Two one-task-wide tasks on one worker: a duplicated WorkerReady between
  // them must not wipe `committed` and over-admit.
  const auto tasks = simple_tasks(2, 40000.0);  // each over half the memory
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  auto link = std::make_shared<DuplexLink>();
  ProtocolManager manager(tasks, alloc, {link});
  Message ready;
  ready.type = MsgType::WorkerReady;
  ready.worker_id = 0;
  ready.resources = kCapacity;
  link->to_manager.send(encode(ready));
  manager.start();
  manager.pump();
  ASSERT_TRUE(link->to_worker.poll());  // first dispatch in flight
  link->to_manager.send(encode(ready));  // duplicated announcement
  manager.pump();
  // The second task must still be waiting: capacity is fully committed.
  EXPECT_TRUE(link->to_worker.empty());
}

}  // namespace
