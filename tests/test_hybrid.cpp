#include "core/hybrid.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/exhaustive_bucketing.hpp"
#include "core/max_seen.hpp"
#include "core/quantized_bucketing.hpp"
#include "core/registry.hpp"

namespace {

using tora::core::ExhaustiveBucketing;
using tora::core::HybridPolicy;
using tora::core::MaxSeenPolicy;
using tora::core::QuantizedBucketing;
using tora::util::Rng;

HybridPolicy make_hybrid(std::size_t switch_after) {
  return HybridPolicy(std::make_unique<QuantizedBucketing>(Rng(1)),
                      std::make_unique<ExhaustiveBucketing>(Rng(2)),
                      switch_after);
}

TEST(Hybrid, ValidatesConstruction) {
  EXPECT_THROW(HybridPolicy(nullptr,
                            std::make_unique<ExhaustiveBucketing>(Rng(1)), 5),
               std::invalid_argument);
  EXPECT_THROW(HybridPolicy(std::make_unique<QuantizedBucketing>(Rng(1)),
                            nullptr, 5),
               std::invalid_argument);
  EXPECT_THROW(HybridPolicy(std::make_unique<QuantizedBucketing>(Rng(1)),
                            std::make_unique<ExhaustiveBucketing>(Rng(2)), 0),
               std::invalid_argument);
}

TEST(Hybrid, UsesInitialStageBeforeSwitch) {
  auto h = make_hybrid(10);
  for (int i = 0; i < 5; ++i) h.observe(100.0, i + 1.0);
  EXPECT_FALSE(h.switched());
  // Quantized with identical values: rep = 100, always.
  EXPECT_DOUBLE_EQ(h.predict(), 100.0);
}

TEST(Hybrid, SwitchesAfterThreshold) {
  auto h = make_hybrid(10);
  for (int i = 0; i < 10; ++i) h.observe(100.0, i + 1.0);
  EXPECT_TRUE(h.switched());
  EXPECT_DOUBLE_EQ(h.predict(), 100.0);  // EB also converges to 100 here
}

TEST(Hybrid, BothStagesSeeAllRecords) {
  auto h = make_hybrid(3);
  for (int i = 0; i < 8; ++i) h.observe(10.0 * (i + 1), i + 1.0);
  EXPECT_EQ(h.record_count(), 8u);
  EXPECT_EQ(h.initial().record_count(), 8u);
  EXPECT_EQ(h.steady().record_count(), 8u);
}

TEST(Hybrid, SteadyStageIsWarmAtHandOff) {
  // A hybrid whose steady stage is MaxSeen: immediately after the switch,
  // MaxSeen must already know the historical maximum.
  HybridPolicy h(std::make_unique<QuantizedBucketing>(Rng(3)),
                 std::make_unique<MaxSeenPolicy>(1.0), 3);
  h.observe(5.0, 1.0);
  h.observe(50.0, 2.0);
  h.observe(7.0, 3.0);
  EXPECT_TRUE(h.switched());
  EXPECT_DOUBLE_EQ(h.predict(), 50.0);
}

TEST(Hybrid, RetryDelegatesToActiveStage) {
  auto h = make_hybrid(100);
  for (int i = 0; i < 4; ++i) h.observe(10.0 * (i + 1), i + 1.0);
  // Still in quantized stage: retry above the top bucket doubles.
  EXPECT_DOUBLE_EQ(h.retry(40.0), 80.0);
  EXPECT_GT(h.retry(10.0), 10.0);
}

TEST(Hybrid, NameDescribesBothStages) {
  auto h = make_hybrid(5);
  EXPECT_EQ(h.name(), "hybrid(quantized_bucketing->exhaustive_bucketing)");
}

TEST(Hybrid, RegistryConstructsIt) {
  auto a = tora::core::make_allocator(tora::core::kHybridBucketing, 9);
  EXPECT_TRUE(tora::core::is_bucketing_family(tora::core::kHybridBucketing));
  // Bucketing-family exploration: fixed 1c/1GB/1GB default.
  const auto alloc = a.allocate("c");
  EXPECT_DOUBLE_EQ(alloc.cores(), 1.0);
  EXPECT_DOUBLE_EQ(alloc.memory_mb(), 1024.0);
  for (int i = 0; i < 12; ++i) a.record_completion("c", {1.0, 512.0, 64.0});
  EXPECT_FALSE(a.exploring("c"));
  EXPECT_DOUBLE_EQ(a.allocate("c").memory_mb(), 512.0);
}

TEST(Hybrid, ExtendedNamesIncludeIt) {
  const auto& names = tora::core::extended_policy_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "hybrid_bucketing"),
            names.end());
  // The paper grid stays the paper's seven.
  EXPECT_EQ(tora::core::all_policy_names().size(), 7u);
}

}  // namespace
