#include "core/lifecycle/category_table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace {

using tora::core::CategoryId;
using tora::core::CategoryTable;

TEST(CategoryTable, InternAssignsDenseIdsInFirstSeenOrder) {
  CategoryTable t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.intern("alpha"), 0u);
  EXPECT_EQ(t.intern("beta"), 1u);
  EXPECT_EQ(t.intern("gamma"), 2u);
  EXPECT_EQ(t.size(), 3u);
}

TEST(CategoryTable, InternIsIdempotent) {
  CategoryTable t;
  const CategoryId a = t.intern("cat");
  const CategoryId b = t.intern("cat");
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.size(), 1u);
}

TEST(CategoryTable, NameRoundTrips) {
  CategoryTable t;
  const CategoryId a = t.intern("analyze");
  const CategoryId b = t.intern("train");
  EXPECT_EQ(t.name(a), "analyze");
  EXPECT_EQ(t.name(b), "train");
}

TEST(CategoryTable, FindDoesNotIntern) {
  CategoryTable t;
  t.intern("known");
  EXPECT_FALSE(t.find("unknown").has_value());
  EXPECT_EQ(t.size(), 1u);
  const auto id = t.find("known");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 0u);
}

TEST(CategoryTable, FindAcceptsStringViewWithoutAllocation) {
  CategoryTable t;
  t.intern(std::string("heterogeneous"));
  const std::string_view sv = "heterogeneous";
  EXPECT_TRUE(t.find(sv).has_value());
}

TEST(CategoryTable, NameThrowsOnBadId) {
  CategoryTable t;
  t.intern("only");
  EXPECT_THROW(t.name(1u), std::out_of_range);
  EXPECT_THROW(t.name(tora::core::kInvalidCategory), std::out_of_range);
}

TEST(CategoryTable, NamesSpanMatchesInternOrder) {
  CategoryTable t;
  t.intern("x");
  t.intern("y");
  const auto& names = t.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "x");
  EXPECT_EQ(names[1], "y");
}

TEST(CategoryTable, IdsAndNamesStableAcrossGrowth) {
  // Ids are append-only: early ids keep resolving to the same name no
  // matter how many categories are interned afterwards.
  CategoryTable t;
  const CategoryId first = t.intern("stable");
  for (int i = 0; i < 1000; ++i) t.intern("cat_" + std::to_string(i));
  EXPECT_EQ(first, *t.find("stable"));
  EXPECT_EQ(t.name(first), "stable");
  EXPECT_EQ(t.size(), 1001u);
}

}  // namespace
