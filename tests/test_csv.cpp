#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace {

using tora::util::CsvWriter;
using tora::util::parse_csv;
using tora::util::parse_csv_line;

TEST(Csv, PlainFields) {
  std::ostringstream out;
  CsvWriter w(out);
  w.field("a").field("b").field(3);
  w.end_row();
  EXPECT_EQ(out.str(), "a,b,3\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter w(out);
  w.field("has,comma").field("has\"quote").field("has\nnewline");
  w.end_row();
  EXPECT_EQ(out.str(), "\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
}

TEST(Csv, DoubleRoundTripsPrecision) {
  std::ostringstream out;
  CsvWriter w(out);
  const double v = 0.1 + 0.2;
  w.field(v);
  w.end_row();
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][0]), v);
}

TEST(Csv, ParseLineBasic) {
  const auto f = parse_csv_line("a,b,,d");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "");
  EXPECT_EQ(f[3], "d");
}

TEST(Csv, ParseLineQuoted) {
  const auto f = parse_csv_line("\"x,y\",\"he said \"\"hi\"\"\"");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "x,y");
  EXPECT_EQ(f[1], "he said \"hi\"");
}

TEST(Csv, ParseMultipleRowsSkipsBlanks) {
  const auto rows = parse_csv("a,b\n\nc,d\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
  EXPECT_EQ(rows[1][0], "c");
}

TEST(Csv, ParseHandlesCrLf) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
  EXPECT_EQ(rows[1][1], "d");
}

TEST(Csv, WriterRowHelper) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"x", "y"});
  w.row({"1", "2"});
  EXPECT_EQ(out.str(), "x,y\n1,2\n");
}

TEST(Csv, RoundTripThroughParser) {
  std::ostringstream out;
  CsvWriter w(out);
  w.field("plain").field("with,comma").field(42).field(2.5);
  w.end_row();
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 4u);
  EXPECT_EQ(rows[0][0], "plain");
  EXPECT_EQ(rows[0][1], "with,comma");
  EXPECT_EQ(rows[0][2], "42");
  EXPECT_EQ(std::stod(rows[0][3]), 2.5);
}

TEST(CsvRecordReader, StreamsRecordsOneAtATime) {
  std::istringstream in("a,b\n\n1,2\n3,4\n");
  tora::util::CsvRecordReader reader(in);
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(reader.next(fields));  // blank line skipped
  EXPECT_EQ(fields, (std::vector<std::string>{"1", "2"}));
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"3", "4"}));
  EXPECT_FALSE(reader.next(fields));
}

TEST(CsvRecordReader, QuotedNewlinesStayInsideOneRecord) {
  std::istringstream in("\"multi\nline\",x\nnext,row\n");
  tora::util::CsvRecordReader reader(in);
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.next(fields));
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "multi\nline");
  EXPECT_EQ(fields[1], "x");
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"next", "row"}));
  EXPECT_FALSE(reader.next(fields));
}

TEST(CsvRecordReader, EscapedQuotesAndMissingFinalNewline) {
  std::vector<std::string> fields;
  std::istringstream quoted("\"say \"\"hi\"\"\",done");
  tora::util::CsvRecordReader quoted_reader(quoted);
  ASSERT_TRUE(quoted_reader.next(fields));
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "say \"hi\"");
  EXPECT_EQ(fields[1], "done");
  EXPECT_FALSE(quoted_reader.next(fields));
}

TEST(CsvRecordReader, UnterminatedQuoteThrows) {
  std::istringstream in("\"never closed\nmore text");
  tora::util::CsvRecordReader reader(in);
  std::vector<std::string> fields;
  EXPECT_THROW(reader.next(fields), std::invalid_argument);
}

TEST(CsvRecordReader, RoundTripsWriterOutput) {
  // Unlike parse_csv (a line splitter), the streaming reader honors quoted
  // newlines — so it round-trips EVERYTHING CsvWriter can produce.
  const std::vector<std::vector<std::string>> rows = {
      {"comma,field", "quote\"field", "new\nline", "plain"},
      {"second", "row", "", "trailing "},
  };
  std::ostringstream out;
  CsvWriter w(out);
  for (const auto& fields : rows) w.row(fields);

  std::istringstream in(out.str());
  tora::util::CsvRecordReader reader(in);
  std::vector<std::string> fields;
  std::size_t row = 0;
  while (reader.next(fields)) {
    ASSERT_LT(row, rows.size());
    EXPECT_EQ(fields, rows[row]);
    ++row;
  }
  EXPECT_EQ(row, rows.size());
}

}  // namespace
