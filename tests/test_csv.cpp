#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using tora::util::CsvWriter;
using tora::util::parse_csv;
using tora::util::parse_csv_line;

TEST(Csv, PlainFields) {
  std::ostringstream out;
  CsvWriter w(out);
  w.field("a").field("b").field(3);
  w.end_row();
  EXPECT_EQ(out.str(), "a,b,3\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter w(out);
  w.field("has,comma").field("has\"quote").field("has\nnewline");
  w.end_row();
  EXPECT_EQ(out.str(), "\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
}

TEST(Csv, DoubleRoundTripsPrecision) {
  std::ostringstream out;
  CsvWriter w(out);
  const double v = 0.1 + 0.2;
  w.field(v);
  w.end_row();
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][0]), v);
}

TEST(Csv, ParseLineBasic) {
  const auto f = parse_csv_line("a,b,,d");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "");
  EXPECT_EQ(f[3], "d");
}

TEST(Csv, ParseLineQuoted) {
  const auto f = parse_csv_line("\"x,y\",\"he said \"\"hi\"\"\"");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "x,y");
  EXPECT_EQ(f[1], "he said \"hi\"");
}

TEST(Csv, ParseMultipleRowsSkipsBlanks) {
  const auto rows = parse_csv("a,b\n\nc,d\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
  EXPECT_EQ(rows[1][0], "c");
}

TEST(Csv, ParseHandlesCrLf) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
  EXPECT_EQ(rows[1][1], "d");
}

TEST(Csv, WriterRowHelper) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"x", "y"});
  w.row({"1", "2"});
  EXPECT_EQ(out.str(), "x,y\n1,2\n");
}

TEST(Csv, RoundTripThroughParser) {
  std::ostringstream out;
  CsvWriter w(out);
  w.field("plain").field("with,comma").field(42).field(2.5);
  w.end_row();
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 4u);
  EXPECT_EQ(rows[0][0], "plain");
  EXPECT_EQ(rows[0][1], "with,comma");
  EXPECT_EQ(rows[0][2], "42");
  EXPECT_EQ(std::stod(rows[0][3]), 2.5);
}

}  // namespace
