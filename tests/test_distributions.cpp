#include "workloads/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace tora::workloads;
using tora::util::Rng;

TEST(Distributions, ConstantAlwaysSame) {
  Rng rng(1);
  const auto d = constant(306.0);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(d->sample(rng), 306.0);
  EXPECT_NE(d->describe().find("306"), std::string::npos);
}

TEST(Distributions, ConstantRejectsNegative) {
  EXPECT_THROW(constant(-1.0), std::invalid_argument);
}

TEST(Distributions, NormalStaysInRange) {
  Rng rng(2);
  const auto d = normal(100.0, 50.0, 80.0, 120.0);
  for (int i = 0; i < 5000; ++i) {
    const double v = d->sample(rng);
    ASSERT_GE(v, 80.0);
    ASSERT_LE(v, 120.0);
  }
}

TEST(Distributions, NormalMomentsWhenUntruncated) {
  Rng rng(3);
  const auto d = normal(1000.0, 50.0, 0.0, 1e9);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = d->sample(rng);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1000.0, 2.0);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 50.0, 2.0);
}

TEST(Distributions, NormalPathologicalParamsClamp) {
  Rng rng(4);
  // Mean far below the admissible range: resampling gives up and clamps.
  const auto d = normal(-100.0, 1.0, 5.0, 10.0);
  const double v = d->sample(rng);
  EXPECT_GE(v, 5.0);
  EXPECT_LE(v, 10.0);
}

TEST(Distributions, NormalValidation) {
  EXPECT_THROW(normal(1.0, -1.0, 0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(normal(1.0, 1.0, 2.0, 0.0), std::invalid_argument);
  EXPECT_THROW(normal(1.0, 1.0, -1.0, 2.0), std::invalid_argument);
}

TEST(Distributions, UniformRange) {
  Rng rng(5);
  const auto d = uniform(10.0, 20.0);
  double mn = 1e9, mx = -1e9;
  for (int i = 0; i < 10000; ++i) {
    const double v = d->sample(rng);
    ASSERT_GE(v, 10.0);
    ASSERT_LT(v, 20.0);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_LT(mn, 10.5);
  EXPECT_GT(mx, 19.5);
}

TEST(Distributions, UniformValidation) {
  EXPECT_THROW(uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(uniform(-1.0, 1.0), std::invalid_argument);
}

TEST(Distributions, ExponentialOffsetAndCap) {
  Rng rng(6);
  const auto d = exponential(100.0, 50.0, 300.0);
  for (int i = 0; i < 10000; ++i) {
    const double v = d->sample(rng);
    ASSERT_GE(v, 100.0);
    ASSERT_LE(v, 300.0);
  }
}

TEST(Distributions, ExponentialMean) {
  Rng rng(7);
  const auto d = exponential(0.0, 10.0, 1e9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += d->sample(rng);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Distributions, ExponentialValidation) {
  EXPECT_THROW(exponential(-1.0, 1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(exponential(0.0, 0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(exponential(5.0, 1.0, 5.0), std::invalid_argument);
}

TEST(Distributions, MixtureWeightsRespected) {
  Rng rng(8);
  const auto d = mixture({{3.0, constant(1.0)}, {1.0, constant(2.0)}});
  int ones = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (d->sample(rng) == 1.0) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(Distributions, MixtureValidation) {
  EXPECT_THROW(mixture({}), std::invalid_argument);
  EXPECT_THROW(mixture({{0.0, constant(1.0)}}), std::invalid_argument);
  EXPECT_THROW(mixture({{1.0, nullptr}}), std::invalid_argument);
}

TEST(Distributions, ParetoTailAndBounds) {
  Rng rng(9);
  const auto d = pareto(100.0, 1.5, 1e6);
  double mx = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const double v = d->sample(rng);
    ASSERT_GE(v, 100.0);
    ASSERT_LE(v, 1e6);
    mx = std::max(mx, v);
  }
  EXPECT_GT(mx, 5000.0);  // a genuine power-law tail
}

TEST(Distributions, ParetoMedianMatchesTheory) {
  // Median of Pareto(x_m, alpha) = x_m * 2^(1/alpha).
  Rng rng(10);
  const auto d = pareto(100.0, 2.0, 1e9);
  std::vector<double> xs;
  for (int i = 0; i < 40000; ++i) xs.push_back(d->sample(rng));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], 100.0 * std::sqrt(2.0), 2.0);
}

TEST(Distributions, ParetoValidation) {
  EXPECT_THROW(pareto(0.0, 1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(pareto(1.0, 0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(pareto(5.0, 1.0, 5.0), std::invalid_argument);
}

TEST(Distributions, LogNormalMedianMatchesTheory) {
  // Median of LogNormal(mu, sigma) = exp(mu).
  Rng rng(11);
  const auto d = lognormal(6.0, 0.5, 1e9);
  std::vector<double> xs;
  for (int i = 0; i < 40000; ++i) {
    const double v = d->sample(rng);
    ASSERT_GT(v, 0.0);
    xs.push_back(v);
  }
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(6.0), 8.0);
}

TEST(Distributions, LogNormalCapAndValidation) {
  Rng rng(12);
  const auto d = lognormal(10.0, 2.0, 500.0);
  for (int i = 0; i < 1000; ++i) ASSERT_LE(d->sample(rng), 500.0);
  EXPECT_THROW(lognormal(0.0, -1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(lognormal(0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(Distributions, DescribeIsInformative) {
  EXPECT_NE(normal(1, 2, 0, 5)->describe().find("normal"), std::string::npos);
  EXPECT_NE(uniform(1, 2)->describe().find("uniform"), std::string::npos);
  EXPECT_NE(exponential(1, 2, 9)->describe().find("exp"), std::string::npos);
  EXPECT_NE(mixture({{1.0, constant(3.0)}})->describe().find("mixture"),
            std::string::npos);
  EXPECT_NE(pareto(1, 2, 9)->describe().find("pareto"), std::string::npos);
  EXPECT_NE(lognormal(1, 2, 9)->describe().find("lognormal"),
            std::string::npos);
}

}  // namespace
