// Tests for the worker enforcement model: consumption ramps and monitor
// sampling (sim/enforcement.hpp).

#include "sim/enforcement.hpp"

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "sim/simulation.hpp"

namespace {

using tora::core::ResourceKind;
using tora::core::ResourceVector;
using tora::core::TaskSpec;
using tora::sim::attempt_runtime;
using tora::sim::ramp_crossing_time;

TaskSpec base_task() {
  TaskSpec t;
  t.id = 0;
  t.category = "c";
  t.demand = ResourceVector{1.0, 2000.0, 100.0};
  t.duration_s = 100.0;
  t.peak_fraction = 0.5;
  return t;
}

TEST(RampCrossing, StepKillsAtPeakTime) {
  EXPECT_DOUBLE_EQ(
      ramp_crossing_time(TaskSpec::Ramp::Step, 2000.0, 1000.0, 100.0, 0.5),
      50.0);
}

TEST(RampCrossing, LinearKillsProportionally) {
  // Ramp reaches 2000 at t=50; crosses 1000 at t=25, 500 at t=12.5.
  EXPECT_DOUBLE_EQ(
      ramp_crossing_time(TaskSpec::Ramp::Linear, 2000.0, 1000.0, 100.0, 0.5),
      25.0);
  EXPECT_DOUBLE_EQ(
      ramp_crossing_time(TaskSpec::Ramp::Linear, 2000.0, 500.0, 100.0, 0.5),
      12.5);
}

TEST(RampCrossing, ConstantKillsImmediately) {
  EXPECT_DOUBLE_EQ(
      ramp_crossing_time(TaskSpec::Ramp::Constant, 2000.0, 1000.0, 100.0, 0.5),
      0.0);
}

TEST(RampCrossing, RequiresActualViolation) {
  EXPECT_THROW(
      ramp_crossing_time(TaskSpec::Ramp::Step, 1000.0, 1000.0, 100.0, 0.5),
      std::invalid_argument);
}

TEST(AttemptRuntime, CoveringAllocationRunsFully) {
  const TaskSpec t = base_task();
  const ResourceVector alloc{2.0, 4000.0, 200.0};
  EXPECT_DOUBLE_EQ(
      attempt_runtime(t, alloc, tora::core::kManagedResources), 100.0);
}

TEST(AttemptRuntime, StepDefaultMatchesPeakFraction) {
  const TaskSpec t = base_task();
  const ResourceVector alloc{2.0, 1000.0, 200.0};  // memory under
  EXPECT_DOUBLE_EQ(
      attempt_runtime(t, alloc, tora::core::kManagedResources), 50.0);
}

TEST(AttemptRuntime, LinearDiesEarlierForSmallerAllocations) {
  TaskSpec t = base_task();
  t.ramp = TaskSpec::Ramp::Linear;
  const double at_1000 = attempt_runtime(t, {2.0, 1000.0, 200.0},
                                         tora::core::kManagedResources);
  const double at_200 = attempt_runtime(t, {2.0, 200.0, 200.0},
                                        tora::core::kManagedResources);
  EXPECT_DOUBLE_EQ(at_1000, 25.0);
  EXPECT_DOUBLE_EQ(at_200, 5.0);
}

TEST(AttemptRuntime, EarliestViolatingDimensionWins) {
  TaskSpec t = base_task();
  t.ramp = TaskSpec::Ramp::Linear;
  // Memory crosses at 25 s; cores (demand 1.0, alloc 0.1) cross at 5 s.
  const ResourceVector alloc{0.1, 1000.0, 200.0};
  EXPECT_DOUBLE_EQ(
      attempt_runtime(t, alloc, tora::core::kManagedResources), 5.0);
}

TEST(AttemptRuntime, MonitorIntervalRoundsUpToSample) {
  const TaskSpec t = base_task();  // step kill at 50.0
  const ResourceVector alloc{2.0, 1000.0, 200.0};
  EXPECT_DOUBLE_EQ(
      attempt_runtime(t, alloc, tora::core::kManagedResources, 15.0), 60.0);
  // Exact multiples stay put.
  EXPECT_DOUBLE_EQ(
      attempt_runtime(t, alloc, tora::core::kManagedResources, 25.0), 50.0);
}

TEST(AttemptRuntime, MonitorNeverExtendsPastDuration) {
  TaskSpec t = base_task();
  t.peak_fraction = 0.99;  // kill at 99 s
  const ResourceVector alloc{2.0, 1000.0, 200.0};
  EXPECT_DOUBLE_EQ(
      attempt_runtime(t, alloc, tora::core::kManagedResources, 40.0), 100.0);
}

TEST(AttemptRuntime, ConstantRampUnderContinuousMonitoringIsEpsilon) {
  TaskSpec t = base_task();
  t.ramp = TaskSpec::Ramp::Constant;
  const ResourceVector alloc{2.0, 1000.0, 200.0};
  const double rt = attempt_runtime(t, alloc, tora::core::kManagedResources);
  EXPECT_GT(rt, 0.0);
  EXPECT_LE(rt, 0.01);
}

TEST(AttemptRuntime, RejectsNegativeInterval) {
  const TaskSpec t = base_task();
  EXPECT_THROW(attempt_runtime(t, t.demand, tora::core::kManagedResources,
                               -1.0),
               std::invalid_argument);
}

TEST(AttemptRuntime, TimeLimitAppliesWhenManaged) {
  TaskSpec t = base_task();
  t.demand[ResourceKind::TimeS] = 100.0;
  const std::array<ResourceKind, 4> all = tora::core::kAllResources;
  // Covering spatial allocation, 40 s wall-time limit: killed at 40 s.
  const ResourceVector alloc{2.0, 4000.0, 200.0, 40.0};
  EXPECT_DOUBLE_EQ(attempt_runtime(t, alloc, all), 40.0);
  // Spatial violation at 50 s but time limit at 30 s: time wins.
  const ResourceVector tight{2.0, 1000.0, 200.0, 30.0};
  EXPECT_DOUBLE_EQ(attempt_runtime(t, tight, all), 30.0);
}

TEST(AttemptRuntime, EndToEndLinearRampWastesLess) {
  // A linear-ramp workload wastes less on failed attempts than a step-ramp
  // one (attempts die earlier), all else equal.
  auto make_tasks = [](TaskSpec::Ramp ramp) {
    std::vector<TaskSpec> tasks;
    for (std::size_t i = 0; i < 30; ++i) {
      TaskSpec t = base_task();
      t.id = i;
      t.ramp = ramp;
      tasks.push_back(std::move(t));
    }
    return tasks;
  };
  tora::sim::SimConfig cfg;
  cfg.churn.enabled = false;
  cfg.churn.initial_workers = 4;
  auto run = [&](TaskSpec::Ramp ramp) {
    const auto tasks = make_tasks(ramp);
    auto alloc =
        tora::core::make_allocator(tora::core::kGreedyBucketing, 3);
    tora::sim::Simulation sim(tasks, alloc, cfg);
    return sim.run().accounting.breakdown(ResourceKind::MemoryMB)
        .failed_allocation;
  };
  const double step_waste = run(TaskSpec::Ramp::Step);
  const double linear_waste = run(TaskSpec::Ramp::Linear);
  EXPECT_GT(step_waste, 0.0);
  EXPECT_LT(linear_waste, step_waste);
}

}  // namespace
