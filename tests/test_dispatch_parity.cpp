// Differential parity between the two runtimes driving the shared
// core::lifecycle::DispatchCore, plus focused coverage of the
// revision-based allocation-cache invalidation rules.
//
// Parity setup: a dependency-free workload whose allocations always occupy
// more than half a worker's cores, run on a single worker — execution is
// fully serialized, so the discrete-event simulator (churn disabled) and
// the protocol manager (no faults) drive the machine through the SAME
// sequence of dispatch/complete/fail transitions. With identically-seeded
// deterministic allocators the two runs must then agree bit-for-bit:
// completion counts, per-category waste breakdowns, and every task's
// retry sequence (the proto worker and the simulator share the
// sim::attempt_runtime enforcement model, so even failure runtimes match).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/lifecycle/dispatch_core.hpp"
#include "core/registry.hpp"
#include "core/resilience/resilience.hpp"
#include "core/task.hpp"
#include "proto/manager.hpp"
#include "proto/worker_agent.hpp"
#include "sim/observer.hpp"
#include "sim/simulation.hpp"

namespace {

using tora::core::ResourceKind;
using tora::core::ResourceVector;
using tora::core::TaskSpec;
using tora::core::WasteBreakdown;
using tora::core::lifecycle::DispatchConfig;
using tora::core::lifecycle::DispatchCore;
using tora::core::lifecycle::TaskPhase;

constexpr ResourceVector kCapacity{16.0, 65536.0, 65536.0, 0.0};

/// Dependency-free, serialization-friendly workload: every demand needs
/// more than half the worker's cores, and per-category memory demands climb
/// so max_seen under-predicts and the retry path is exercised.
std::vector<TaskSpec> parity_workload(std::size_t n) {
  const std::vector<std::string> cats = {"heavy_a", "heavy_b", "heavy_c"};
  std::vector<TaskSpec> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks[i].id = i;
    tasks[i].category = cats[i % cats.size()];
    tasks[i].demand = ResourceVector{
        9.0 + static_cast<double>(i % 3),
        20000.0 + 3000.0 * static_cast<double>(i % 5),
        4000.0 + 500.0 * static_cast<double>(i % 4), 0.0};
    tasks[i].duration_s = 10.0 + static_cast<double>(i % 7);
  }
  return tasks;
}

tora::sim::SimConfig serial_sim_config() {
  tora::sim::SimConfig cfg;
  cfg.worker_capacity = kCapacity;
  cfg.churn.enabled = false;
  cfg.churn.initial_workers = 1;
  return cfg;
}

/// One manager + one fault-free in-process worker, pumped to completion
/// (ProtocolRuntime without the private manager — the test needs core()).
void run_proto(std::span<const TaskSpec> tasks,
               tora::core::TaskAllocator& alloc,
               tora::proto::ProtocolManager& manager,
               tora::proto::WorkerAgent& agent) {
  agent.announce();
  manager.start();
  for (int round = 0; round < 1000000 && !manager.done(); ++round) {
    manager.pump();
    agent.pump();
  }
  ASSERT_TRUE(manager.done());
  (void)tasks;
  (void)alloc;
}

void expect_breakdown_eq(const WasteBreakdown& a, const WasteBreakdown& b) {
  EXPECT_DOUBLE_EQ(a.consumption, b.consumption);
  EXPECT_DOUBLE_EQ(a.allocation, b.allocation);
  EXPECT_DOUBLE_EQ(a.internal_fragmentation, b.internal_fragmentation);
  EXPECT_DOUBLE_EQ(a.failed_allocation, b.failed_allocation);
}

TEST(DispatchParity, SimAndProtoAgreeBitForBit) {
  const auto tasks = parity_workload(30);

  auto sim_alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  tora::sim::Simulation sim(tasks, sim_alloc, serial_sim_config());
  const auto sim_result = sim.run();
  const DispatchCore* sim_core = &sim.core();

  auto proto_alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  auto link = std::make_shared<tora::proto::DuplexLink>();
  tora::proto::ProtocolManager manager(tasks, proto_alloc, {link});
  tora::proto::WorkerAgent agent(0, kCapacity, tasks, link);
  run_proto(tasks, proto_alloc, manager, agent);
  const DispatchCore& proto_core = manager.core();

  // Completion counts.
  EXPECT_EQ(sim_result.tasks_completed, tasks.size());
  EXPECT_EQ(sim_result.tasks_fatal, 0u);
  EXPECT_EQ(manager.tasks_completed(), sim_result.tasks_completed);
  EXPECT_EQ(manager.tasks_fatal(), sim_result.tasks_fatal);

  // Retry sequences: every task attempted the same allocations for the
  // same durations in both runtimes (AttemptLog compares exactly).
  std::size_t total_retries = 0;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const auto& se = sim_core->entry(t);
    const auto& pe = proto_core.entry(t);
    EXPECT_EQ(se.phase, TaskPhase::Done);
    EXPECT_EQ(pe.phase, TaskPhase::Done);
    EXPECT_EQ(se.attempts, pe.attempts) << "task " << t;
    EXPECT_EQ(se.failed_attempts, pe.failed_attempts) << "task " << t;
    total_retries += se.failed_attempts.size();
  }
  // The workload must actually exercise the retry path, or this parity
  // claim is vacuous.
  EXPECT_GT(total_retries, 0u);

  // Per-category waste, every resource and term.
  const auto& sa = sim_result.accounting;
  const auto& pa = manager.accounting();
  ASSERT_EQ(sa.per_category(), pa.per_category());
  for (const auto& [cat, count] : sa.per_category()) {
    EXPECT_GT(count, 0u);
    for (ResourceKind k : tora::core::kManagedResources) {
      expect_breakdown_eq(sa.breakdown(cat, k), pa.breakdown(cat, k));
    }
  }
  for (ResourceKind k : tora::core::kManagedResources) {
    expect_breakdown_eq(sa.breakdown(k), pa.breakdown(k));
    EXPECT_DOUBLE_EQ(sa.awe(k), pa.awe(k));
  }
  EXPECT_EQ(sa.total_attempts(), pa.total_attempts());
}

TEST(DispatchParity, ResilienceEnabledKeepsBitForBitParity) {
  // The churn-adaptive resilience layer gates every intervention on churn
  // evidence, so in the serialized fault-free setup an ENABLED layer must
  // leave both runtimes on the legacy trajectory: sim-with-resilience,
  // proto-with-resilience and the plain disabled run all agree bit-for-bit.
  const auto tasks = parity_workload(30);

  tora::core::resilience::ResilienceConfig res;
  res.deadlines = true;
  res.speculation = true;
  res.reliability = true;
  res.storm_control = true;
  res.min_records = 2;

  auto sim_alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  auto sim_cfg = serial_sim_config();
  sim_cfg.resilience = res;
  tora::sim::Simulation sim(tasks, sim_alloc, sim_cfg);
  const auto sim_result = sim.run();

  auto proto_alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  tora::proto::LivenessConfig proto_cfg;
  proto_cfg.resilience = res;
  auto link = std::make_shared<tora::proto::DuplexLink>();
  tora::proto::ProtocolManager manager(tasks, proto_alloc, {link}, proto_cfg);
  tora::proto::WorkerAgent agent(0, kCapacity, tasks, link);
  run_proto(tasks, proto_alloc, manager, agent);

  // A third, resilience-OFF run pins the legacy trajectory.
  auto base_alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  tora::sim::Simulation base(tasks, base_alloc, serial_sim_config());
  const auto base_result = base.run();

  EXPECT_EQ(sim_result.tasks_completed, tasks.size());
  EXPECT_EQ(manager.tasks_completed(), sim_result.tasks_completed);
  EXPECT_EQ(base_result.tasks_completed, sim_result.tasks_completed);
  EXPECT_EQ(sim_result.makespan_s, base_result.makespan_s);

  const auto& sa = sim_result.accounting;
  const auto& pa = manager.accounting();
  const auto& ba = base_result.accounting;
  for (ResourceKind k : tora::core::kManagedResources) {
    expect_breakdown_eq(sa.breakdown(k), pa.breakdown(k));
    expect_breakdown_eq(sa.breakdown(k), ba.breakdown(k));
    EXPECT_DOUBLE_EQ(sa.awe(k), pa.awe(k));
    EXPECT_DOUBLE_EQ(sa.awe(k), ba.awe(k));
    // No churn evidence -> no speculation -> the column stays empty.
    EXPECT_DOUBLE_EQ(sa.breakdown(k).speculative, 0.0);
    EXPECT_DOUBLE_EQ(pa.breakdown(k).speculative, 0.0);
  }
  EXPECT_EQ(sa.total_attempts(), pa.total_attempts());
  EXPECT_EQ(sa.total_attempts(), ba.total_attempts());

  // And zero resilience interventions on either side.
  EXPECT_EQ(sim_result.resilience, tora::core::ResilienceCounters{});
  EXPECT_EQ(manager.resilience(), tora::core::ResilienceCounters{});
}

TEST(DispatchParity, GreedyBucketingCompletionCountsAgree) {
  // The bucketing allocators sample buckets from a seeded stream, so both
  // sides see identical draws only while the record sequences stay aligned
  // — which the serialized setup guarantees. Completion counts and task
  // totals must agree end to end.
  const auto tasks = parity_workload(24);

  auto sim_alloc = tora::core::make_allocator(tora::core::kGreedyBucketing, 11);
  tora::sim::Simulation sim(tasks, sim_alloc, serial_sim_config());
  const auto sim_result = sim.run();

  auto proto_alloc =
      tora::core::make_allocator(tora::core::kGreedyBucketing, 11);
  auto link = std::make_shared<tora::proto::DuplexLink>();
  tora::proto::ProtocolManager manager(tasks, proto_alloc, {link});
  tora::proto::WorkerAgent agent(0, kCapacity, tasks, link);
  run_proto(tasks, proto_alloc, manager, agent);

  EXPECT_EQ(sim_result.tasks_completed, tasks.size());
  EXPECT_EQ(manager.tasks_completed(), sim_result.tasks_completed);
  EXPECT_EQ(manager.tasks_fatal(), sim_result.tasks_fatal);
  EXPECT_EQ(manager.accounting().task_count(),
            sim_result.accounting.task_count());
}

// ---------------------------------------------------------------------------
// Revision-based allocation-cache invalidation (Fig. 3a: queued tasks ask
// the bucketing manager again at dispatch when new records arrived; retry
// escalations are never re-requested).

TEST(DispatchCoreRevision, QueuedFirstAttemptReRequestedAfterCompletion) {
  // Two same-category tasks, one placement slot: task 1's allocation is
  // cached while task 0 runs (whole-machine exploration at revision 0).
  // After task 0's record the prediction shrinks, and task 1 must dispatch
  // with the NEW allocation, not the cached one.
  std::vector<TaskSpec> tasks(2);
  for (std::size_t i = 0; i < 2; ++i) {
    tasks[i].id = i;
    tasks[i].category = "c";
    tasks[i].demand = ResourceVector{2.0, 300.0, 100.0, 0.0};
    tasks[i].duration_s = 5.0;
  }
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  DispatchCore core(tasks, alloc, DispatchConfig{});
  core.start();

  std::vector<std::pair<std::uint64_t, ResourceVector>> placed;
  bool slot_busy = false;
  const auto place = [&](std::uint64_t, const ResourceVector&)
      -> std::optional<std::uint64_t> {
    if (slot_busy) return std::nullopt;
    return 0;
  };
  const auto commit = [&](std::uint64_t task, std::uint64_t,
                          const ResourceVector& a) {
    slot_busy = true;
    placed.emplace_back(task, a);
  };

  core.dispatch_pass(place, commit);
  ASSERT_EQ(placed.size(), 1u);
  EXPECT_EQ(placed[0].first, 0u);
  // Whole-machine exploration for the first attempt.
  EXPECT_DOUBLE_EQ(placed[0].second.cores(), 16.0);
  // Task 1 was popped, allocated (cached at revision 0), and requeued.
  EXPECT_TRUE(core.entry(1).has_alloc);
  EXPECT_DOUBLE_EQ(core.entry(1).alloc.cores(), 16.0);

  // Task 0 completes; its record moves the allocator's revision.
  core.complete(0, tasks[0].demand, tasks[0].duration_s);
  slot_busy = false;

  core.dispatch_pass(place, commit);
  ASSERT_EQ(placed.size(), 2u);
  EXPECT_EQ(placed[1].first, 1u);
  // Re-requested: max_seen now predicts from task 0's record (cores width
  // 1 -> 2.0), not the stale whole-machine exploration allocation.
  EXPECT_DOUBLE_EQ(placed[1].second.cores(), 2.0);
  EXPECT_LT(placed[1].second.memory_mb(), 65536.0);
}

TEST(DispatchCoreRevision, RetryAllocationsAreNeverInvalidated) {
  // Task 0's first attempt fails; the escalated retry allocation must
  // survive later revision bumps (task 1's completion) unchanged.
  std::vector<TaskSpec> tasks(2);
  tasks[0].id = 0;
  tasks[0].category = "c";
  tasks[0].demand = ResourceVector{2.0, 900.0, 100.0, 0.0};
  tasks[0].duration_s = 5.0;
  tasks[1].id = 1;
  tasks[1].category = "c";
  tasks[1].demand = ResourceVector{2.0, 450.0, 100.0, 0.0};
  tasks[1].duration_s = 5.0;

  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  // Seed one record so the category is out of exploration and predicts
  // 500 MB (900 would exceed it -> the retry path).
  alloc.record_completion("c", ResourceVector{2.0, 400.0, 100.0, 0.0}, 1.0);

  DispatchCore core(tasks, alloc, DispatchConfig{});
  core.start();
  std::vector<std::pair<std::uint64_t, ResourceVector>> placed;
  const auto place = [&](std::uint64_t,
                         const ResourceVector&) -> std::optional<std::uint64_t> {
    return 0;  // infinite capacity: everything places
  };
  const auto commit = [&](std::uint64_t task, std::uint64_t,
                          const ResourceVector& a) {
    placed.emplace_back(task, a);
  };

  core.dispatch_pass(place, commit);
  ASSERT_EQ(placed.size(), 2u);
  EXPECT_DOUBLE_EQ(placed[0].second.memory_mb(), 500.0);

  // Task 0 is killed on memory; the retry escalates beyond the failure.
  const auto verdict = core.fail_attempt(
      0, 3.5, tora::core::resource_bit(ResourceKind::MemoryMB));
  EXPECT_EQ(verdict, DispatchCore::RetryVerdict::Requeued);
  const ResourceVector retry_alloc = core.entry(0).alloc;
  EXPECT_GT(retry_alloc.memory_mb(), 500.0);
  const std::uint64_t revision_at_retry = alloc.revision();

  // Task 1 completes: the revision moves, and a fresh allocate() would
  // predict 500 MB again — NOT the escalated 1000 MB. If the retry cache
  // were (wrongly) invalidated, task 0 would re-fail at 500 forever.
  core.complete(1, tasks[1].demand, tasks[1].duration_s);
  ASSERT_NE(alloc.revision(), revision_at_retry);
  EXPECT_DOUBLE_EQ(alloc.allocate("c").memory_mb(), 500.0);

  core.dispatch_pass(place, commit);
  ASSERT_EQ(placed.size(), 3u);
  EXPECT_EQ(placed[2].first, 0u);
  // The cached retry allocation was used verbatim.
  EXPECT_EQ(placed[2].second, retry_alloc);
  EXPECT_TRUE(core.entry(0).is_retry);
}

TEST(SimRevision, QueuedTaskPicksUpFreshPredictionAfterCompletion) {
  // End-to-end in the simulator: two same-category tasks on one worker.
  // Task 1 waits while task 0 runs under whole-machine exploration; after
  // task 0's completion bumps the revision, task 1's started attempt must
  // carry the shrunken post-record prediction.
  std::vector<TaskSpec> tasks(2);
  for (std::size_t i = 0; i < 2; ++i) {
    tasks[i].id = i;
    tasks[i].category = "c";
    tasks[i].demand = ResourceVector{2.0, 300.0, 100.0, 0.0};
    tasks[i].duration_s = 5.0;
  }
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);

  struct Recorder : tora::sim::SimObserver {
    std::vector<std::pair<std::uint64_t, ResourceVector>> attempts;
    void on_attempt_started(double, std::uint64_t task, std::uint64_t,
                            const ResourceVector& allocation) override {
      attempts.emplace_back(task, allocation);
    }
  } recorder;

  tora::sim::SimConfig cfg;
  cfg.worker_capacity = kCapacity;
  cfg.churn.enabled = false;
  cfg.churn.initial_workers = 1;
  tora::sim::Simulation sim(tasks, alloc, cfg);
  sim.set_observer(&recorder);
  const auto result = sim.run();

  EXPECT_EQ(result.tasks_completed, 2u);
  ASSERT_EQ(recorder.attempts.size(), 2u);
  EXPECT_DOUBLE_EQ(recorder.attempts[0].second.cores(), 16.0);
  EXPECT_DOUBLE_EQ(recorder.attempts[1].second.cores(), 2.0);
}

TEST(ProtoRevision, QueuedTaskPicksUpFreshPredictionAfterCompletion) {
  // The same invalidation observed through the protocol runtime: task 1's
  // post-completion allocation is the prediction from task 0's record. Its
  // demand exceeds that prediction, so the attempt fails and the logged
  // failed attempt pins down exactly what allocation it ran with — the
  // fresh prediction, not the cached whole machine (which would have
  // succeeded silently).
  std::vector<TaskSpec> tasks(2);
  tasks[0].id = 0;
  tasks[0].category = "c";
  tasks[0].demand = ResourceVector{2.0, 300.0, 100.0, 0.0};
  tasks[0].duration_s = 5.0;
  tasks[1].id = 1;
  tasks[1].category = "c";
  tasks[1].demand = ResourceVector{2.0, 700.0, 100.0, 0.0};
  tasks[1].duration_s = 5.0;

  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  auto link = std::make_shared<tora::proto::DuplexLink>();
  tora::proto::ProtocolManager manager(tasks, alloc, {link});
  tora::proto::WorkerAgent agent(0, kCapacity, tasks, link);
  agent.announce();
  manager.start();
  for (int round = 0; round < 10000 && !manager.done(); ++round) {
    manager.pump();
    agent.pump();
  }
  ASSERT_TRUE(manager.done());
  EXPECT_EQ(manager.tasks_completed(), 2u);

  const auto& e1 = manager.core().entry(1);
  ASSERT_EQ(e1.failed_attempts.size(), 1u);
  // 300 rounded up to the 500 bucket: the re-requested prediction.
  EXPECT_DOUBLE_EQ(e1.failed_attempts[0].alloc.memory_mb(), 500.0);
  EXPECT_TRUE(e1.is_retry);
}

}  // namespace
