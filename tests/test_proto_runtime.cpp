// Tests for the protocol channel, worker agent, manager, and the full
// in-process protocol runtime.

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "proto/channel.hpp"
#include "proto/manager.hpp"
#include "proto/worker_agent.hpp"
#include "workloads/workload.hpp"

namespace {

using tora::core::ResourceKind;
using tora::core::ResourceVector;
using tora::core::TaskSpec;
using tora::proto::Channel;
using tora::proto::DuplexLink;
using tora::proto::ProtocolRuntime;
using tora::proto::WorkerAgent;

std::vector<TaskSpec> simple_tasks(std::size_t n, double mem = 500.0) {
  std::vector<TaskSpec> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = i;
    t.category = "c";
    t.demand = ResourceVector{1.0, mem, 50.0};
    t.duration_s = 10.0;
    t.peak_fraction = 0.5;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

TEST(Channel, FifoWithByteAccounting) {
  Channel ch;
  EXPECT_TRUE(ch.empty());
  ch.send("hello");
  ch.send("world!");
  EXPECT_EQ(ch.pending(), 2u);
  EXPECT_EQ(ch.messages_sent(), 2u);
  EXPECT_EQ(ch.bytes_sent(), 5u + 1 + 6 + 1);
  EXPECT_EQ(*ch.poll(), "hello");
  EXPECT_EQ(*ch.poll(), "world!");
  EXPECT_FALSE(ch.poll().has_value());
}

TEST(WorkerAgentTest, AnnouncesCapacity) {
  const auto tasks = simple_tasks(1);
  auto link = std::make_shared<DuplexLink>();
  WorkerAgent agent(0, ResourceVector{16.0, 65536.0, 65536.0, 0.0}, tasks,
                    link);
  agent.announce();
  const auto line = link->to_manager.poll();
  ASSERT_TRUE(line);
  const auto msg = tora::proto::decode(*line);
  ASSERT_TRUE(msg);
  EXPECT_EQ(msg->type, tora::proto::MsgType::WorkerReady);
  EXPECT_DOUBLE_EQ(msg->resources.cores(), 16.0);
}

TEST(WorkerAgentTest, ExecutesWithinAllocation) {
  const auto tasks = simple_tasks(1);
  auto link = std::make_shared<DuplexLink>();
  WorkerAgent agent(0, ResourceVector{16.0, 65536.0, 65536.0, 0.0}, tasks,
                    link);
  tora::proto::Message dispatch;
  dispatch.type = tora::proto::MsgType::TaskDispatch;
  dispatch.worker_id = 0;
  dispatch.task_id = 0;
  dispatch.category = "c";
  dispatch.resources = ResourceVector{2.0, 1000.0, 100.0, 0.0};
  link->to_worker.send(encode(dispatch));
  EXPECT_EQ(agent.pump(), 1u);
  const auto reply = tora::proto::decode(*link->to_manager.poll());
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->outcome, tora::proto::Outcome::Success);
  EXPECT_DOUBLE_EQ(reply->resources.memory_mb(), 500.0);  // measured peak
  EXPECT_DOUBLE_EQ(reply->runtime_s, 10.0);
  EXPECT_EQ(agent.tasks_executed(), 1u);
}

TEST(WorkerAgentTest, KillsOverConsumption) {
  const auto tasks = simple_tasks(1, 2000.0);
  auto link = std::make_shared<DuplexLink>();
  WorkerAgent agent(0, ResourceVector{16.0, 65536.0, 65536.0, 0.0}, tasks,
                    link);
  tora::proto::Message dispatch;
  dispatch.type = tora::proto::MsgType::TaskDispatch;
  dispatch.worker_id = 0;
  dispatch.task_id = 0;
  dispatch.category = "c";
  dispatch.resources = ResourceVector{2.0, 1000.0, 100.0, 0.0};
  link->to_worker.send(encode(dispatch));
  agent.pump();
  const auto reply = tora::proto::decode(*link->to_manager.poll());
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->outcome, tora::proto::Outcome::ResourceExhausted);
  EXPECT_EQ(reply->exceeded_mask,
            tora::core::resource_bit(ResourceKind::MemoryMB));
  EXPECT_DOUBLE_EQ(reply->runtime_s, 5.0);  // killed at peak_fraction
  EXPECT_EQ(agent.tasks_killed(), 1u);
}

TEST(WorkerAgentTest, RejectsAboveCapacityDispatch) {
  const auto tasks = simple_tasks(1);
  auto link = std::make_shared<DuplexLink>();
  WorkerAgent agent(0, ResourceVector{4.0, 8192.0, 8192.0, 0.0}, tasks, link);
  tora::proto::Message dispatch;
  dispatch.type = tora::proto::MsgType::TaskDispatch;
  dispatch.worker_id = 0;
  dispatch.task_id = 0;
  dispatch.category = "c";
  dispatch.resources = ResourceVector{8.0, 1000.0, 100.0, 0.0};
  link->to_worker.send(encode(dispatch));
  agent.pump();
  const auto reply = tora::proto::decode(*link->to_manager.poll());
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->outcome, tora::proto::Outcome::ResourceExhausted);
  EXPECT_EQ(agent.rejected_dispatches(), 1u);
}

TEST(WorkerAgentTest, IgnoresMisaddressedAndMalformed) {
  const auto tasks = simple_tasks(1);
  auto link = std::make_shared<DuplexLink>();
  WorkerAgent agent(0, ResourceVector{16.0, 65536.0, 65536.0, 0.0}, tasks,
                    link);
  link->to_worker.send("garbage!!");
  tora::proto::Message other;
  other.type = tora::proto::MsgType::Shutdown;
  other.worker_id = 99;  // not us
  link->to_worker.send(encode(other));
  agent.pump();
  EXPECT_FALSE(agent.shutdown_received());
  // Neither junk line produced a reply — only the liveness heartbeat.
  const auto hb = tora::proto::decode(*link->to_manager.poll());
  ASSERT_TRUE(hb);
  EXPECT_EQ(hb->type, tora::proto::MsgType::Heartbeat);
  EXPECT_TRUE(link->to_manager.empty());
  EXPECT_EQ(agent.chaos().malformed_lines, 1u);
  EXPECT_EQ(agent.chaos().misaddressed_messages, 1u);
}

TEST(ProtocolRuntimeTest, RunsWorkflowToCompletion) {
  const auto tasks = simple_tasks(50);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  ProtocolRuntime runtime(tasks, alloc, 4);
  const auto result = runtime.run();
  EXPECT_EQ(result.tasks_completed, 50u);
  EXPECT_EQ(result.tasks_fatal, 0u);
  EXPECT_EQ(result.accounting.task_count(), 50u);
  EXPECT_GT(result.messages, 100u);  // >= 2 per task + announcements
  EXPECT_GT(result.bytes, 0u);
}

TEST(ProtocolRuntimeTest, RetriesViaProtocol) {
  // Bucketing exploration (1 GB) under-allocates 2 GB tasks: every early
  // task must be killed at least once, entirely over messages.
  const auto tasks = simple_tasks(15, 2000.0);
  auto alloc = tora::core::make_allocator(tora::core::kGreedyBucketing, 2);
  ProtocolRuntime runtime(tasks, alloc, 2);
  const auto result = runtime.run();
  EXPECT_EQ(result.tasks_completed, 15u);
  EXPECT_GT(result.accounting.total_attempts(), 15u);
  EXPECT_GT(result.accounting.breakdown(ResourceKind::MemoryMB)
                .failed_allocation,
            0.0);
}

TEST(ProtocolRuntimeTest, MatchesSimulatorAccountingIdentities) {
  // The protocol path and the simulator path must agree on the ground-truth
  // consumption (same workload, same metric definitions).
  const auto workload = tora::workloads::make_workload("uniform", 5);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  ProtocolRuntime runtime(workload.tasks, alloc, 8);
  const auto result = runtime.run();
  double expected = 0.0;
  for (const auto& t : workload.tasks) {
    expected += t.demand.memory_mb() * t.duration_s;
  }
  EXPECT_NEAR(
      result.accounting.breakdown(ResourceKind::MemoryMB).consumption,
      expected, 1e-6 * expected);
}

TEST(ProtocolRuntimeTest, UnrunnableTaskGoesFatalNotHang) {
  auto tasks = simple_tasks(3);
  tasks[1].demand[ResourceKind::MemoryMB] = 1e9;
  auto alloc = tora::core::make_allocator(tora::core::kGreedyBucketing, 3);
  ProtocolRuntime runtime(tasks, alloc, 2);
  const auto result = runtime.run();
  EXPECT_EQ(result.tasks_fatal, 1u);
  EXPECT_EQ(result.tasks_completed, 2u);
}

TEST(ProtocolRuntimeTest, DependenciesHonoredOverProtocol) {
  auto tasks = simple_tasks(4);
  tasks[1].deps = {0};
  tasks[2].deps = {1};
  tasks[3].deps = {0, 2};
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  ProtocolRuntime runtime(tasks, alloc, 4);
  const auto result = runtime.run();
  EXPECT_EQ(result.tasks_completed, 4u);
}

TEST(ProtocolManagerTest, EvictionRequeuesWithSameAllocation) {
  // Drive the manager by hand over a single link, playing the worker role.
  const auto tasks = simple_tasks(1);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  auto link = std::make_shared<DuplexLink>();
  tora::proto::ProtocolManager manager(tasks, alloc, {link});

  tora::proto::Message ready;
  ready.type = tora::proto::MsgType::WorkerReady;
  ready.worker_id = 0;
  ready.resources = ResourceVector{16.0, 65536.0, 65536.0, 0.0};
  link->to_manager.send(encode(ready));

  manager.start();
  manager.pump();
  const auto dispatch1 = tora::proto::decode(*link->to_worker.poll());
  ASSERT_TRUE(dispatch1);
  ASSERT_EQ(dispatch1->type, tora::proto::MsgType::TaskDispatch);

  // Worker is evicted mid-task: the attempt is cancelled, not failed.
  tora::proto::Message evict;
  evict.type = tora::proto::MsgType::Evict;
  evict.worker_id = 0;
  evict.task_id = dispatch1->task_id;
  link->to_manager.send(encode(evict));
  manager.pump();

  const auto dispatch2 = tora::proto::decode(*link->to_worker.poll());
  ASSERT_TRUE(dispatch2);
  EXPECT_EQ(dispatch2->type, tora::proto::MsgType::TaskDispatch);
  EXPECT_EQ(dispatch2->task_id, dispatch1->task_id);
  // Same allocation — evictions never escalate.
  EXPECT_EQ(dispatch2->resources, dispatch1->resources);

  tora::proto::Message result;
  result.type = tora::proto::MsgType::TaskResult;
  result.worker_id = 0;
  result.task_id = dispatch2->task_id;
  result.attempt = dispatch2->attempt;  // echo the in-flight attempt id
  result.outcome = tora::proto::Outcome::Success;
  result.resources = tasks[0].demand;
  result.runtime_s = tasks[0].duration_s;
  link->to_manager.send(encode(result));
  manager.pump();
  EXPECT_TRUE(manager.done());
  EXPECT_EQ(manager.tasks_completed(), 1u);
  // No failed-allocation waste from the eviction.
  EXPECT_DOUBLE_EQ(manager.accounting()
                       .breakdown(tora::core::ResourceKind::MemoryMB)
                       .failed_allocation,
                   0.0);
}

TEST(ProtocolManagerTest, StaleResultIgnored) {
  const auto tasks = simple_tasks(1);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  auto link = std::make_shared<DuplexLink>();
  tora::proto::ProtocolManager manager(tasks, alloc, {link});
  // A result for a task that was never dispatched must be dropped.
  tora::proto::Message result;
  result.type = tora::proto::MsgType::TaskResult;
  result.worker_id = 0;
  result.task_id = 0;
  result.outcome = tora::proto::Outcome::Success;
  result.resources = tasks[0].demand;
  result.runtime_s = 1.0;
  link->to_manager.send(encode(result));
  manager.start();
  manager.pump();
  EXPECT_FALSE(manager.done());
  EXPECT_EQ(manager.tasks_completed(), 0u);
}

TEST(ProtocolRuntimeTest, ValidatesConstruction) {
  const auto tasks = simple_tasks(1);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  EXPECT_THROW(ProtocolRuntime(tasks, alloc, 0), std::invalid_argument);
  auto bad = tasks;
  bad[0].deps = {0};
  EXPECT_THROW(ProtocolRuntime(bad, alloc, 1), std::invalid_argument);
}

}  // namespace
