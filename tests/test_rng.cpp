#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace {

using tora::util::Rng;

TEST(Rng, DeterministicUnderSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(5.0, 9.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(17);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.uniform_int(10, 15);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 15u);
    ++seen[v - 10];
  }
  // Each of the 6 values should appear roughly 10000 times.
  for (int c : seen) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42u);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ExponentialMoments) {
  Rng rng(29);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(0.5);  // mean 2
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.split();
  // Child and parent sequences should not coincide.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, LabeledSplitIsStable) {
  Rng a(43);
  Rng c1 = a.split("alpha");
  Rng c2 = a.split("alpha");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, LabeledSplitsDifferByLabel) {
  Rng a(47);
  Rng c1 = a.split("alpha");
  Rng c2 = a.split("beta");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1() == c2()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, Hash64StableAndDistinct) {
  EXPECT_EQ(tora::util::hash64("abc"), tora::util::hash64("abc"));
  EXPECT_NE(tora::util::hash64("abc"), tora::util::hash64("abd"));
  EXPECT_NE(tora::util::hash64(""), tora::util::hash64("a"));
}

TEST(Rng, SplitMix64Advances) {
  std::uint64_t x = 0;
  const auto a = tora::util::splitmix64(x);
  const auto b = tora::util::splitmix64(x);
  EXPECT_NE(a, b);
  EXPECT_NE(x, 0u);
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<int> orig = v;
  Rng rng(53);
  std::shuffle(v.begin(), v.end(), rng);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);  // same multiset
}

}  // namespace
