#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/bucketing_policy.hpp"
#include "core/registry.hpp"

namespace {

using tora::core::ResourceKind;
using tora::core::ResourceVector;
using tora::core::restore_allocator_state;
using tora::core::save_allocator_state;

TEST(Checkpoint, HistoryIsRecordedByDefault) {
  auto a = tora::core::make_allocator(tora::core::kExhaustiveBucketing, 1);
  a.record_completion("x", {1.0, 100.0, 10.0}, 5.0);
  a.record_completion("y", {2.0, 200.0, 20.0});
  ASSERT_EQ(a.history().size(), 2u);
  EXPECT_EQ(a.category_name(a.history()[0].category), "x");
  EXPECT_DOUBLE_EQ(a.history()[0].significance, 5.0);
  EXPECT_DOUBLE_EQ(a.history()[1].peak.memory_mb(), 200.0);
  // The default-significance counter continues above explicit values.
  EXPECT_DOUBLE_EQ(a.history()[1].significance, 6.0);
}

TEST(Checkpoint, HistoryCanBeDisabled) {
  tora::core::AllocatorConfig cfg;
  cfg.record_history = false;
  tora::core::TaskAllocator a(
      "x", tora::core::make_policy_factory("max_seen", 1), cfg);
  a.record_completion("c", {1.0, 1.0, 1.0});
  EXPECT_TRUE(a.history().empty());
}

TEST(Checkpoint, RoundTripRestoresExactState) {
  auto original = tora::core::make_allocator(tora::core::kGreedyBucketing, 7);
  tora::util::Rng values(3);
  for (int i = 0; i < 40; ++i) {
    const std::string cat = i % 3 == 0 ? "small" : "big";
    original.record_completion(
        cat, {values.uniform(0.5, 4.0), values.uniform(100.0, 4000.0),
              values.uniform(10.0, 500.0)});
  }

  std::stringstream snapshot;
  save_allocator_state(original, snapshot);

  auto restored = tora::core::make_allocator(tora::core::kGreedyBucketing, 7);
  restore_allocator_state(restored, snapshot);

  EXPECT_EQ(restored.records_for("small"), original.records_for("small"));
  EXPECT_EQ(restored.records_for("big"), original.records_for("big"));
  EXPECT_EQ(restored.exploring("big"), original.exploring("big"));

  // The bucketing states must be bit-identical: same records in the same
  // order with the same significances.
  for (const char* cat : {"small", "big"}) {
    for (ResourceKind k : tora::core::kManagedResources) {
      auto& po = dynamic_cast<tora::core::BucketingPolicy&>(
          original.policy(cat, k));
      auto& pr = dynamic_cast<tora::core::BucketingPolicy&>(
          restored.policy(cat, k));
      ASSERT_EQ(po.records().size(), pr.records().size());
      for (std::size_t i = 0; i < po.records().size(); ++i) {
        EXPECT_EQ(po.records()[i], pr.records()[i]) << cat << "/" << k;
      }
    }
  }
}

TEST(Checkpoint, RestoredAllocatorContinuesSignificance) {
  auto original = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  original.record_completion("c", {1.0, 100.0, 10.0});  // sig 1
  original.record_completion("c", {1.0, 100.0, 10.0});  // sig 2
  std::stringstream snapshot;
  save_allocator_state(original, snapshot);

  auto restored = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  restore_allocator_state(restored, snapshot);
  restored.record_completion("c", {1.0, 100.0, 10.0});
  ASSERT_EQ(restored.history().size(), 3u);
  EXPECT_DOUBLE_EQ(restored.history().back().significance, 3.0);
}

TEST(Checkpoint, EmptyHistoryRoundTrips) {
  auto a = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  std::stringstream snapshot;
  save_allocator_state(a, snapshot);
  auto b = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  restore_allocator_state(b, snapshot);
  EXPECT_TRUE(b.history().empty());
}

TEST(Checkpoint, RejectsMalformedSnapshots) {
  auto a = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  std::stringstream no_header("x,1,2,3,4,5\n");
  EXPECT_THROW(restore_allocator_state(a, no_header), std::invalid_argument);
  std::stringstream bad_field(
      "category,cores,memory_mb,disk_mb,time_s,significance\n"
      "c,one,2,3,4,5\n");
  EXPECT_THROW(restore_allocator_state(a, bad_field), std::invalid_argument);
  std::stringstream short_row(
      "category,cores,memory_mb,disk_mb,time_s,significance\n"
      "c,1,2\n");
  EXPECT_THROW(restore_allocator_state(a, short_row), std::invalid_argument);
}

TEST(Checkpoint, CategoriesWithCommasSurvive) {
  auto a = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  a.record_completion("weird,category", {1.0, 50.0, 5.0});
  std::stringstream snapshot;
  save_allocator_state(a, snapshot);
  auto b = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  restore_allocator_state(b, snapshot);
  EXPECT_EQ(b.records_for("weird,category"), 1u);
}

TEST(Checkpoint, AdversarialCategoryNamesRoundTrip) {
  // Category names come from user workload descriptions — assume nothing.
  const std::vector<std::string> names = {
      "plain",
      "comma,inside",
      "\"fully quoted\"",
      "quote\"in\"middle",
      "trailing quote\"",
      "embedded\nnewline",
      "crlf\r\nline",
      "tab\tand space ",
      ",leading,and,trailing,",
      "\"\n\",\"",                      // quotes + newline + commas combined
      "unicode \xC3\xA9\xC3\xA0\xE6\xBC\xA2\xE5\xAD\x97 \xF0\x9F\x92\xBE",
  };
  auto a = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  for (std::size_t i = 0; i < names.size(); ++i) {
    a.record_completion(names[i], {1.0 + static_cast<double>(i), 50.0, 5.0});
    a.record_completion(names[i], {1.0, 60.0 + static_cast<double>(i), 5.0});
  }
  std::stringstream snapshot;
  save_allocator_state(a, snapshot);
  auto b = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  restore_allocator_state(b, snapshot);
  ASSERT_EQ(b.history().size(), a.history().size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(b.records_for(names[i]), 2u) << "category " << i;
  }
  // Same intern order, same peaks, same significances.
  for (std::size_t i = 0; i < a.history().size(); ++i) {
    EXPECT_EQ(b.category_name(b.history()[i].category),
              a.category_name(a.history()[i].category));
    EXPECT_EQ(b.history()[i].peak, a.history()[i].peak);
    EXPECT_DOUBLE_EQ(b.history()[i].significance, a.history()[i].significance);
  }
}

TEST(Checkpoint, PolicyNameMismatchThrowsWithActionableMessage) {
  auto a = tora::core::make_allocator(tora::core::kGreedyBucketing, 1);
  a.record_completion("c", {1.0, 100.0, 10.0});
  std::stringstream snapshot;
  save_allocator_state(a, snapshot);

  auto b = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  try {
    restore_allocator_state(b, snapshot);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message must name both policies so the operator can see what was
    // mixed up, and mention the escape hatch.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("greedy_bucketing"), std::string::npos) << msg;
    EXPECT_NE(msg.find("max_seen"), std::string::npos) << msg;
    EXPECT_NE(msg.find("force"), std::string::npos) << msg;
  }
}

TEST(Checkpoint, ConfigHashMismatchThrows) {
  auto a = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  a.record_completion("c", {1.0, 100.0, 10.0});
  std::stringstream snapshot;
  save_allocator_state(a, snapshot);

  // Same policy, different worker capacity: allocations would be clamped
  // differently, so the restore must refuse.
  auto b = tora::core::make_allocator(tora::core::kMaxSeen, 1,
                                      {8.0, 1024.0, 1024.0, 0.0});
  EXPECT_THROW(restore_allocator_state(b, snapshot), std::invalid_argument);
}

TEST(Checkpoint, ForceRestoresAcrossPolicies) {
  auto a = tora::core::make_allocator(tora::core::kGreedyBucketing, 1);
  for (int i = 0; i < 12; ++i) {
    a.record_completion("c", {1.0, 100.0 + 10.0 * i, 10.0});
  }
  std::stringstream snapshot;
  save_allocator_state(a, snapshot);

  auto b = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  tora::core::RestoreOptions opts;
  opts.force = true;
  restore_allocator_state(b, snapshot, opts);
  EXPECT_EQ(b.records_for("c"), 12u);
}

TEST(Checkpoint, LegacyHeaderOnlySnapshotStillRestores) {
  auto a = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  std::stringstream legacy(
      "category,cores,memory_mb,disk_mb,time_s,significance\n"
      "c,1,256,32,12.5,1\n");
  restore_allocator_state(a, legacy);
  EXPECT_EQ(a.records_for("c"), 1u);
}

}  // namespace
