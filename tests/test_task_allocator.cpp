#include "core/task_allocator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/bucketing_policy.hpp"
#include "core/registry.hpp"

namespace {

using tora::core::AllocatorConfig;
using tora::core::ExplorationConfig;
using tora::core::make_allocator;
using tora::core::ResourceKind;
using tora::core::ResourceVector;
using tora::core::TaskAllocator;

constexpr ResourceVector kCapacity{16.0, 65536.0, 65536.0, 0.0};

TEST(TaskAllocator, BucketingStartsInExploration) {
  auto a = make_allocator(tora::core::kGreedyBucketing, 1);
  EXPECT_TRUE(a.exploring("cat"));
  const ResourceVector alloc = a.allocate("cat");
  EXPECT_DOUBLE_EQ(alloc.cores(), 1.0);
  EXPECT_DOUBLE_EQ(alloc.memory_mb(), 1024.0);
  EXPECT_DOUBLE_EQ(alloc.disk_mb(), 1024.0);
}

TEST(TaskAllocator, BaselineExploresWithWholeMachine) {
  auto a = make_allocator(tora::core::kMaxSeen, 1);
  const ResourceVector alloc = a.allocate("cat");
  EXPECT_DOUBLE_EQ(alloc.cores(), 16.0);
  EXPECT_DOUBLE_EQ(alloc.memory_mb(), 65536.0);
}

TEST(TaskAllocator, LeavesExplorationAfterMinRecords) {
  auto a = make_allocator(tora::core::kGreedyBucketing, 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(a.exploring("cat"));
    a.record_completion("cat", {0.5, 300.0, 50.0});
  }
  EXPECT_FALSE(a.exploring("cat"));
  const ResourceVector alloc = a.allocate("cat");
  // All records identical -> a single bucket whose rep is the value.
  EXPECT_DOUBLE_EQ(alloc.cores(), 0.5);
  EXPECT_DOUBLE_EQ(alloc.memory_mb(), 300.0);
  EXPECT_DOUBLE_EQ(alloc.disk_mb(), 50.0);
}

TEST(TaskAllocator, BaselinePredictsAfterOneRecord) {
  auto a = make_allocator(tora::core::kMaxSeen, 1);
  a.record_completion("cat", {2.0, 306.0, 306.0});
  EXPECT_FALSE(a.exploring("cat"));
  const ResourceVector alloc = a.allocate("cat");
  EXPECT_DOUBLE_EQ(alloc.cores(), 2.0);       // cores width 1
  EXPECT_DOUBLE_EQ(alloc.memory_mb(), 500.0); // 250-wide rounding
}

TEST(TaskAllocator, CategoriesAreIndependent) {
  auto a = make_allocator(tora::core::kGreedyBucketing, 1);
  for (int i = 0; i < 10; ++i) a.record_completion("small", {1.0, 100.0, 10.0});
  EXPECT_FALSE(a.exploring("small"));
  EXPECT_TRUE(a.exploring("big"));
  // "big" still explores with the default allocation.
  EXPECT_DOUBLE_EQ(a.allocate("big").memory_mb(), 1024.0);
  EXPECT_DOUBLE_EQ(a.allocate("small").memory_mb(), 100.0);
  EXPECT_EQ(a.category_count(), 2u);
}

TEST(TaskAllocator, ExplorationRetryDoublesExceededDimOnly) {
  auto a = make_allocator(tora::core::kGreedyBucketing, 1);
  const ResourceVector failed{1.0, 1024.0, 1024.0, 0.0};
  // Memory exceeded (bit 1).
  const ResourceVector next = a.allocate_retry("cat", failed, 2u);
  EXPECT_DOUBLE_EQ(next.cores(), 1.0);
  EXPECT_DOUBLE_EQ(next.memory_mb(), 2048.0);
  EXPECT_DOUBLE_EQ(next.disk_mb(), 1024.0);
}

TEST(TaskAllocator, RetryAllDimensions) {
  auto a = make_allocator(tora::core::kGreedyBucketing, 1);
  const ResourceVector failed{1.0, 1024.0, 1024.0, 0.0};
  const ResourceVector next = a.allocate_retry("cat", failed, 7u);
  EXPECT_DOUBLE_EQ(next.cores(), 2.0);
  EXPECT_DOUBLE_EQ(next.memory_mb(), 2048.0);
  EXPECT_DOUBLE_EQ(next.disk_mb(), 2048.0);
}

TEST(TaskAllocator, RetryRejectsEmptyMask) {
  auto a = make_allocator(tora::core::kGreedyBucketing, 1);
  EXPECT_THROW(a.allocate_retry("cat", {1.0, 1.0, 1.0}, 0u),
               std::invalid_argument);
}

TEST(TaskAllocator, RetryClampsAtCapacity) {
  auto a = make_allocator(tora::core::kGreedyBucketing, 1);
  const ResourceVector failed{1.0, 60000.0, 1024.0, 0.0};
  const ResourceVector next = a.allocate_retry("cat", failed, 2u);
  EXPECT_DOUBLE_EQ(next.memory_mb(), 65536.0);  // clamped, not 120000
  // At capacity, a further retry cannot grow: callers detect this.
  const ResourceVector stuck = a.allocate_retry("cat", next, 2u);
  EXPECT_DOUBLE_EQ(stuck.memory_mb(), 65536.0);
}

TEST(TaskAllocator, PostExplorationRetryUsesPolicy) {
  auto a = make_allocator(tora::core::kMaxSeen, 1);
  a.record_completion("cat", {1.0, 700.0, 100.0});
  // Memory failure at 500: Max Seen escalates to round_up(700) = 750.
  const ResourceVector next =
      a.allocate_retry("cat", {1.0, 500.0, 250.0, 0.0}, 2u);
  EXPECT_DOUBLE_EQ(next.memory_mb(), 750.0);
}

TEST(TaskAllocator, SignificanceDefaultsToMonotoneCounter) {
  auto a = make_allocator(tora::core::kGreedyBucketing, 1);
  for (int i = 0; i < 12; ++i) {
    a.record_completion("cat", {1.0, 100.0 + i, 10.0});
  }
  // Inspect the memory policy's records: significances must increase.
  auto& pol = dynamic_cast<tora::core::BucketingPolicy&>(
      a.policy("cat", ResourceKind::MemoryMB));
  double prev = 0.0;
  double max_sig = 0.0;
  for (const auto& r : pol.records()) {
    max_sig = std::max(max_sig, r.significance);
  }
  EXPECT_GE(max_sig, 12.0);
  (void)prev;
}

TEST(TaskAllocator, ExplicitSignificanceIsRespected) {
  auto a = make_allocator(tora::core::kGreedyBucketing, 1);
  a.record_completion("cat", {1.0, 100.0, 10.0}, 77.0);
  auto& pol = dynamic_cast<tora::core::BucketingPolicy&>(
      a.policy("cat", ResourceKind::MemoryMB));
  ASSERT_EQ(pol.records().size(), 1u);
  EXPECT_DOUBLE_EQ(pol.records()[0].significance, 77.0);
}

TEST(TaskAllocator, RecordsForCountsPerCategory) {
  auto a = make_allocator(tora::core::kExhaustiveBucketing, 1);
  EXPECT_EQ(a.records_for("x"), 0u);
  a.record_completion("x", {1.0, 1.0, 1.0});
  a.record_completion("x", {1.0, 1.0, 1.0});
  a.record_completion("y", {1.0, 1.0, 1.0});
  EXPECT_EQ(a.records_for("x"), 2u);
  EXPECT_EQ(a.records_for("y"), 1u);
}

TEST(TaskAllocator, RejectsNullFactory) {
  EXPECT_THROW(TaskAllocator("x", nullptr, AllocatorConfig{}),
               std::invalid_argument);
}

TEST(TaskAllocator, RejectsNonPositiveCapacity) {
  AllocatorConfig cfg;
  cfg.worker_capacity = ResourceVector{0.0, 1.0, 1.0};
  EXPECT_THROW(
      TaskAllocator("x",
                    tora::core::make_policy_factory(
                        tora::core::kGreedyBucketing, 1),
                    cfg),
      std::invalid_argument);
}

TEST(TaskAllocator, AllPolicyNamesConstructible) {
  for (const auto& name : tora::core::all_policy_names()) {
    auto a = make_allocator(name, 3);
    EXPECT_EQ(a.policy_name(), name);
    (void)a.allocate("c");
    a.record_completion("c", {1.0, 500.0, 100.0});
  }
}

TEST(TaskAllocator, RejectsTimeManagedWithoutTimeCapacity) {
  // The paper's future-work extension: managing TimeS requires positive
  // time capacity — caught at construction, not as a clamp-to-zero later.
  AllocatorConfig cfg;  // default worker_capacity has time_s = 0
  cfg.managed.push_back(ResourceKind::TimeS);
  try {
    TaskAllocator a("x",
                    tora::core::make_policy_factory(
                        tora::core::kGreedyBucketing, 1),
                    cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("worker_capacity"),
              std::string::npos);
  }
}

TEST(TaskAllocator, RejectsTimeManagedWithoutTimeExplorationDefault) {
  AllocatorConfig cfg;
  cfg.managed.push_back(ResourceKind::TimeS);
  cfg.worker_capacity = ResourceVector{16.0, 65536.0, 65536.0, 3600.0};
  // FixedDefault exploration still has default_alloc.time_s == 0.
  ASSERT_EQ(cfg.exploration.mode, ExplorationConfig::Mode::FixedDefault);
  try {
    TaskAllocator a("x",
                    tora::core::make_policy_factory(
                        tora::core::kGreedyBucketing, 1),
                    cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("default_alloc"), std::string::npos);
  }
  // WholeMachine exploration never hands out the default: accepted.
  cfg.exploration.mode = ExplorationConfig::Mode::WholeMachine;
  EXPECT_NO_THROW(TaskAllocator(
      "x", tora::core::make_policy_factory(tora::core::kMaxSeen, 1), cfg));
}

TEST(TaskAllocator, RejectsEmptyManagedSetAndZeroMinRecords) {
  AllocatorConfig cfg;
  cfg.managed.clear();
  EXPECT_THROW(
      TaskAllocator("x",
                    tora::core::make_policy_factory(
                        tora::core::kGreedyBucketing, 1),
                    cfg),
      std::invalid_argument);
  AllocatorConfig cfg2;
  cfg2.exploration.min_records = 0;
  EXPECT_THROW(
      TaskAllocator("x",
                    tora::core::make_policy_factory(
                        tora::core::kGreedyBucketing, 1),
                    cfg2),
      std::invalid_argument);
}

TEST(TaskAllocator, InternedIdsMatchStringOverloads) {
  auto a = make_allocator(tora::core::kMaxSeen, 1);
  const auto id = a.intern("cat");
  EXPECT_EQ(a.intern("cat"), id);
  EXPECT_EQ(a.category_name(id), "cat");
  a.record_completion(id, {2.0, 306.0, 306.0});
  EXPECT_EQ(a.records_for("cat"), 1u);
  EXPECT_EQ(a.records_for(id), 1u);
  EXPECT_FALSE(a.exploring(id));
  // Id and string entry points hit the same per-category state.
  const ResourceVector by_id = a.allocate(id);
  const ResourceVector by_name = a.allocate("cat");
  EXPECT_DOUBLE_EQ(by_id.memory_mb(), by_name.memory_mb());
  EXPECT_DOUBLE_EQ(by_id.memory_mb(), 500.0);
}

TEST(TaskAllocator, HistoryReservedFromExpectedTasks) {
  AllocatorConfig cfg;
  cfg.expected_tasks = 4096;
  TaskAllocator a("max_seen",
                  tora::core::make_policy_factory(tora::core::kMaxSeen, 1),
                  cfg);
  EXPECT_GE(a.history().capacity(), 4096u);
  a.record_completion("c", {1.0, 100.0, 10.0});
  EXPECT_EQ(a.history().size(), 1u);
  // Disabled history makes the reservation a no-op.
  AllocatorConfig off;
  off.record_history = false;
  off.expected_tasks = 4096;
  TaskAllocator b("max_seen",
                  tora::core::make_policy_factory(tora::core::kMaxSeen, 1),
                  off);
  EXPECT_EQ(b.history().capacity(), 0u);
}

TEST(TaskAllocator, ExplorationDefaultClampedToCapacity) {
  tora::core::RegistryOptions opts;
  opts.exploration_default = ResourceVector{99.0, 1e9, 1e9, 0.0};
  auto a = make_allocator(tora::core::kGreedyBucketing, 1, kCapacity, opts);
  const ResourceVector alloc = a.allocate("cat");
  EXPECT_DOUBLE_EQ(alloc.cores(), 16.0);
  EXPECT_DOUBLE_EQ(alloc.memory_mb(), 65536.0);
}

}  // namespace
