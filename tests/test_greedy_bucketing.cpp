#include "core/greedy_bucketing.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using tora::core::GreedyBucketing;
using tora::core::Record;
using tora::util::Rng;

std::vector<Record> uniform_records(std::initializer_list<double> values) {
  std::vector<Record> r;
  for (double v : values) r.push_back({v, 1.0});
  return r;
}

TEST(GreedyBucketing, SplitCostUnsplitIsRepMinusMean) {
  const auto recs = uniform_records({2.0, 4.0, 6.0});
  // brk == hi evaluates the single-bucket configuration: 6 - 4 = 2.
  EXPECT_NEAR(GreedyBucketing::split_cost(recs, 0, 2, 2), 2.0, 1e-12);
}

TEST(GreedyBucketing, SplitCostHandComputedTwoBuckets) {
  // Records {1, 3}, split after index 0.
  // p_lo = p_hi = 0.5, rep_lo = 1, rep_hi = 3, v_lo = 1, v_hi = 3.
  // W = .25*(1-1) + .25*(3-1) + .25*(1+3-3) + .25*(3-3) = 0.5 + 0.25 = 0.75.
  const auto recs = uniform_records({1.0, 3.0});
  EXPECT_NEAR(GreedyBucketing::split_cost(recs, 0, 0, 1), 0.75, 1e-12);
}

TEST(GreedyBucketing, SplitCostUsesSignificanceWeights) {
  // Heavier significance on the high record raises p_hi.
  const std::vector<Record> recs{{1.0, 1.0}, {3.0, 3.0}};
  // p_lo = .25, p_hi = .75, v_lo = 1, v_hi = 3.
  // W = .0625*0 + .1875*2 + .1875*1 + .5625*0 = 0.5625.
  EXPECT_NEAR(GreedyBucketing::split_cost(recs, 0, 0, 1), 0.5625, 1e-12);
}

TEST(GreedyBucketing, SingleRecordOneBucket) {
  GreedyBucketing gb{Rng(1)};
  gb.observe(5.0, 1.0);
  const auto& set = gb.buckets();
  ASSERT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.buckets()[0].rep, 5.0);
  EXPECT_DOUBLE_EQ(gb.predict(), 5.0);
}

TEST(GreedyBucketing, TightClusterStaysOneBucket) {
  GreedyBucketing gb{Rng(2)};
  for (double v : {10.0, 10.0, 10.0, 10.0, 10.0}) gb.observe(v, 1.0);
  EXPECT_EQ(gb.buckets().size(), 1u);
  EXPECT_DOUBLE_EQ(gb.predict(), 10.0);
}

TEST(GreedyBucketing, SeparatedClustersSplit) {
  GreedyBucketing gb{Rng(3)};
  for (double v : {1.0, 1.1, 1.2, 1.3, 100.0, 100.1, 100.2, 100.3}) {
    gb.observe(v, 1.0);
  }
  const auto& set = gb.buckets();
  ASSERT_GE(set.size(), 2u);
  // The first bucket must end exactly at the cluster boundary.
  EXPECT_DOUBLE_EQ(set.buckets()[0].rep, 1.3);
  EXPECT_DOUBLE_EQ(set.buckets().back().rep, 100.3);
}

TEST(GreedyBucketing, PredictReturnsSomeBucketRep) {
  GreedyBucketing gb{Rng(4)};
  for (double v : {1.0, 2.0, 50.0, 51.0}) gb.observe(v, 1.0);
  const auto& set = gb.buckets();
  for (int i = 0; i < 200; ++i) {
    const double a = gb.predict();
    bool is_rep = false;
    for (const auto& b : set.buckets()) is_rep |= (a == b.rep);
    EXPECT_TRUE(is_rep) << "prediction " << a << " is not a bucket rep";
  }
}

TEST(GreedyBucketing, RetryEscalatesAboveFailure) {
  GreedyBucketing gb{Rng(5)};
  for (double v : {1.0, 2.0, 50.0, 51.0}) gb.observe(v, 1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GT(gb.retry(2.0), 2.0);
  }
}

TEST(GreedyBucketing, RetryDoublesBeyondTopBucket) {
  GreedyBucketing gb{Rng(6)};
  for (double v : {1.0, 2.0, 4.0}) gb.observe(v, 1.0);
  EXPECT_DOUBLE_EQ(gb.retry(4.0), 8.0);
  EXPECT_DOUBLE_EQ(gb.retry(10.0), 20.0);
}

TEST(GreedyBucketing, RetryChainTerminates) {
  GreedyBucketing gb{Rng(7)};
  for (double v : {1.0, 5.0, 9.0, 13.0, 40.0}) gb.observe(v, 1.0);
  double alloc = gb.predict();
  const double demand = 100.0;  // above everything seen
  int attempts = 0;
  while (alloc < demand) {
    alloc = gb.retry(alloc);
    ASSERT_LT(++attempts, 64) << "retry chain did not terminate";
  }
  SUCCEED();
}

TEST(GreedyBucketing, RecencyShiftsBuckets) {
  // Phase change: early small tasks with low significance, late big tasks
  // with high significance. The top bucket must carry most probability.
  GreedyBucketing gb{Rng(8)};
  double sig = 1.0;
  for (int i = 0; i < 20; ++i) gb.observe(100.0, sig++);
  for (int i = 0; i < 20; ++i) gb.observe(1000.0, sig++);
  const auto& set = gb.buckets();
  ASSERT_GE(set.size(), 2u);
  EXPECT_GT(set.buckets().back().prob, 0.55);
}

TEST(GreedyBucketing, PredictBeforeRecordsThrows) {
  GreedyBucketing gb{Rng(9)};
  EXPECT_THROW(gb.predict(), std::logic_error);
}

TEST(GreedyBucketing, ObserveValidatesInput) {
  GreedyBucketing gb{Rng(10)};
  EXPECT_THROW(gb.observe(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(gb.observe(1.0, -1.0), std::invalid_argument);
}

TEST(GreedyBucketing, RecordsStaySorted) {
  GreedyBucketing gb{Rng(11)};
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) gb.observe(v, 1.0);
  const auto& recs = gb.records();
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LE(recs[i - 1].value, recs[i].value);
  }
}

TEST(GreedyBucketing, RebuildCountTracksLazyRecompute) {
  GreedyBucketing gb{Rng(12)};
  gb.observe(1.0, 1.0);
  gb.observe(2.0, 2.0);
  EXPECT_EQ(gb.rebuild_count(), 0u);
  (void)gb.predict();
  EXPECT_EQ(gb.rebuild_count(), 1u);
  (void)gb.predict();  // no new record: reuse
  EXPECT_EQ(gb.rebuild_count(), 1u);
  gb.observe(3.0, 3.0);
  (void)gb.predict();
  EXPECT_EQ(gb.rebuild_count(), 2u);
}

}  // namespace
