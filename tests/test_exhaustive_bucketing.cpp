#include "core/exhaustive_bucketing.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/bucket.hpp"

namespace {

using tora::core::BucketSet;
using tora::core::ExhaustiveBucketing;
using tora::core::expected_waste;
using tora::core::Record;
using tora::util::Rng;

std::vector<Record> uniform_records(std::initializer_list<double> values) {
  std::vector<Record> r;
  for (double v : values) r.push_back({v, 1.0});
  return r;
}

TEST(EvenSpacingEnds, SingleBucketIsWholeRange) {
  const auto recs = uniform_records({1.0, 2.0, 3.0});
  const auto ends = ExhaustiveBucketing::even_spacing_ends(recs, 1);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0], 2u);
}

TEST(EvenSpacingEnds, TwoBucketsCutAtHalfMax) {
  // v_max = 10, cut at 5: the closest record strictly below 5 is index 1.
  const auto recs = uniform_records({2.0, 4.0, 6.0, 10.0});
  const auto ends = ExhaustiveBucketing::even_spacing_ends(recs, 2);
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[0], 1u);
  EXPECT_EQ(ends[1], 3u);
}

TEST(EvenSpacingEnds, CutBelowSmallestRecordIsDropped) {
  // v_max = 100; 4-bucket cuts at 25/50/75 all fall below... here 25 falls
  // below the smallest record 30? No: 25 < 30, so the first cut maps to
  // nothing and is dropped.
  const auto recs = uniform_records({30.0, 60.0, 100.0});
  const auto ends = ExhaustiveBucketing::even_spacing_ends(recs, 4);
  // cuts 25 (dropped), 50 -> idx 0 (30 < 50), 75 -> idx 1 (60 < 75).
  ASSERT_EQ(ends.size(), 3u);
  EXPECT_EQ(ends[0], 0u);
  EXPECT_EQ(ends[1], 1u);
  EXPECT_EQ(ends[2], 2u);
}

TEST(EvenSpacingEnds, DuplicateMappingsDeduped) {
  // Many cuts collapsing onto the same record index must dedupe.
  const auto recs = uniform_records({1.0, 100.0});
  const auto ends = ExhaustiveBucketing::even_spacing_ends(recs, 8);
  // Every cut in (1, 100) maps to index 0.
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[0], 0u);
  EXPECT_EQ(ends[1], 1u);
}

TEST(EvenSpacingEnds, AllZeroValuesSingleBucket) {
  const auto recs = uniform_records({0.0, 0.0, 0.0});
  const auto ends = ExhaustiveBucketing::even_spacing_ends(recs, 5);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0], 2u);
}

TEST(ExhaustiveBucketing, RejectsZeroMaxBuckets) {
  EXPECT_THROW(ExhaustiveBucketing(Rng(1), 0), std::invalid_argument);
}

TEST(ExhaustiveBucketing, SingleRecord) {
  ExhaustiveBucketing eb{Rng(2)};
  eb.observe(7.0, 1.0);
  EXPECT_DOUBLE_EQ(eb.predict(), 7.0);
  EXPECT_EQ(eb.buckets().size(), 1u);
}

TEST(ExhaustiveBucketing, BimodalSplitsIntoTwoBuckets) {
  ExhaustiveBucketing eb{Rng(3)};
  for (double v : {10.0, 10.5, 11.0, 11.5, 90.0, 90.5, 91.0, 91.5}) {
    eb.observe(v, 1.0);
  }
  const auto& set = eb.buckets();
  ASSERT_GE(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.buckets()[0].rep, 11.5);
  EXPECT_DOUBLE_EQ(set.buckets().back().rep, 91.5);
}

TEST(ExhaustiveBucketing, ChoosesMinimumCostConfiguration) {
  ExhaustiveBucketing eb{Rng(4)};
  const auto recs =
      uniform_records({1.0, 1.2, 1.4, 50.0, 50.2, 99.0, 99.5, 100.0});
  for (const Record& r : recs) eb.observe(r.value, r.significance);
  const auto& chosen = eb.buckets();
  const double chosen_cost = expected_waste(chosen);
  // The chosen configuration must be no worse than every candidate the
  // algorithm is defined to consider.
  for (std::size_t b = 1; b <= 8; ++b) {
    const auto ends = ExhaustiveBucketing::even_spacing_ends(recs, b);
    const auto set = BucketSet::from_break_indices(recs, ends);
    EXPECT_LE(chosen_cost, expected_waste(set) + 1e-9);
  }
}

TEST(ExhaustiveBucketing, RespectsMaxBucketCap) {
  ExhaustiveBucketing eb{Rng(5), 3};
  for (int i = 0; i < 50; ++i) eb.observe(i * 10.0 + 1.0, 1.0);
  EXPECT_LE(eb.buckets().size(), 3u);
}

TEST(ExhaustiveBucketing, DefaultCapIsTen) {
  ExhaustiveBucketing eb{Rng(6)};
  EXPECT_EQ(eb.max_buckets(), 10u);
  for (int i = 0; i < 200; ++i) eb.observe(i * 7.0 + 1.0, 1.0);
  EXPECT_LE(eb.buckets().size(), 10u);
}

TEST(ExhaustiveBucketing, RetryEscalation) {
  ExhaustiveBucketing eb{Rng(7)};
  for (double v : {10.0, 10.5, 90.0, 91.0}) eb.observe(v, 1.0);
  for (int i = 0; i < 50; ++i) {
    const double r = eb.retry(10.5);
    EXPECT_GT(r, 10.5);
  }
  EXPECT_DOUBLE_EQ(eb.retry(91.0), 182.0);
}

TEST(ExhaustiveBucketing, IdenticalValuesOneBucket) {
  ExhaustiveBucketing eb{Rng(8)};
  for (int i = 0; i < 20; ++i) eb.observe(306.0, i + 1.0);
  ASSERT_EQ(eb.buckets().size(), 1u);
  EXPECT_DOUBLE_EQ(eb.predict(), 306.0);
}

TEST(ExhaustiveBucketing, PhaseChangeShiftsProbability) {
  ExhaustiveBucketing eb{Rng(9)};
  double sig = 1.0;
  for (int i = 0; i < 30; ++i) eb.observe(100.0, sig++);
  for (int i = 0; i < 30; ++i) eb.observe(1000.0, sig++);
  const auto& set = eb.buckets();
  ASSERT_GE(set.size(), 2u);
  // Later (heavier) records dominate the top bucket's probability.
  EXPECT_GT(set.buckets().back().prob, 0.55);
}

TEST(ExhaustiveBucketing, CostNotWorseThanGreedySingleBucketOnClusters) {
  // Sanity link between the two algorithms' cost models: on well-separated
  // clusters EB must pick a multi-bucket config cheaper than one bucket.
  ExhaustiveBucketing eb{Rng(10)};
  std::vector<Record> recs;
  for (double v : {1.0, 1.1, 1.2, 200.0, 200.1, 200.2}) {
    recs.push_back({v, 1.0});
    eb.observe(v, 1.0);
  }
  const auto one = BucketSet::from_break_indices(recs, std::vector<std::size_t>{5});
  EXPECT_LT(expected_waste(eb.buckets()), expected_waste(one));
}

}  // namespace
