// Churn-adaptive resilience layer (core/resilience/): unit coverage of the
// trackers, the calm-baseline bit-exactness contract (an ENABLED layer with
// no churn evidence changes nothing), the speculative-waste accounting split
// (a lost duplicate is never an eviction; a lost primary with a live
// duplicate charges the ledger exactly once), probationary re-admission
// replacing permanent quarantine, and the eviction-storm degradation path.

#include "core/resilience/resilience.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/lifecycle/dispatch_core.hpp"
#include "core/metrics.hpp"
#include "core/registry.hpp"
#include "core/task.hpp"
#include "proto/channel.hpp"
#include "proto/manager.hpp"
#include "proto/message.hpp"
#include "sim/simulation.hpp"
#include "util/bytes.hpp"

namespace {

using tora::core::ResourceKind;
using tora::core::ResourceVector;
using tora::core::TaskSpec;
using tora::core::resilience::DeadlineTracker;
using tora::core::resilience::ReliabilityTracker;
using tora::core::resilience::ResilienceConfig;
using tora::core::resilience::RuntimeHistogram;
using tora::core::resilience::StormDetector;
using tora::proto::DuplexLink;
using tora::proto::DuplexLinkPtr;
using tora::proto::Message;
using tora::proto::MsgType;
using tora::proto::Outcome;

// ------------------------------------------------------------ config

TEST(ResilienceConfig, DefaultsAreDisabledAndValid) {
  ResilienceConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ResilienceConfig, RejectsOutOfRangeKnobs) {
  const auto expect_bad = [](auto&& mutate) {
    ResilienceConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  };
  expect_bad([](ResilienceConfig& c) { c.deadline_quantile = 0.0; });
  expect_bad([](ResilienceConfig& c) { c.deadline_quantile = 1.5; });
  expect_bad([](ResilienceConfig& c) { c.deadline_slack = 0.5; });
  expect_bad([](ResilienceConfig& c) { c.min_records = 0; });
  expect_bad([](ResilienceConfig& c) { c.straggler_quantile = -0.1; });
  expect_bad([](ResilienceConfig& c) { c.straggler_slack = 0.0; });
  expect_bad([](ResilienceConfig& c) { c.reliability_decay = 0.0; });
  expect_bad([](ResilienceConfig& c) { c.reliability_decay = 1.25; });
  expect_bad([](ResilienceConfig& c) { c.probation_sentence = 0.0; });
  expect_bad([](ResilienceConfig& c) { c.sentence_growth = 0.5; });
  expect_bad([](ResilienceConfig& c) { c.storm_window = 0.0; });
  expect_bad([](ResilienceConfig& c) { c.storm_enter = 0; });
  expect_bad([](ResilienceConfig& c) { c.storm_exit = c.storm_enter; });
  expect_bad([](ResilienceConfig& c) { c.degraded_inflight_cap = 0; });
  expect_bad([](ResilienceConfig& c) { c.degraded_deadline_widen = 0.9; });
}

// --------------------------------------------------------- histogram

TEST(RuntimeHistogram, NearestRankQuantiles) {
  RuntimeHistogram h;
  EXPECT_EQ(h.records(0), 0u);
  EXPECT_FALSE(h.quantile(0, 0.5).has_value());
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) h.observe(0, v);
  EXPECT_EQ(h.records(0), 5u);
  // Nearest-rank: rank = ceil(q*n) clamped to [1, n].
  EXPECT_DOUBLE_EQ(*h.quantile(0, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(*h.quantile(0, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(*h.quantile(0, 0.2), 1.0);
  EXPECT_DOUBLE_EQ(*h.quantile(0, 0.75), 4.0);
  // Categories are independent.
  h.observe(7, 100.0);
  EXPECT_DOUBLE_EQ(*h.quantile(7, 0.5), 100.0);
  EXPECT_DOUBLE_EQ(*h.quantile(0, 1.0), 5.0);
}

TEST(RuntimeHistogram, SaveLoadRoundTrip) {
  RuntimeHistogram h;
  for (double v : {5.0, 1.0, 3.0}) h.observe(0, v);
  (void)h.quantile(0, 0.5);  // force a merge, then stage more
  h.observe(0, 2.0);
  h.observe(2, 9.0);
  tora::util::ByteWriter w;
  h.save(w);
  const std::string bytes = w.take();
  RuntimeHistogram back;
  tora::util::ByteReader r(bytes);
  back.load(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.records(0), 4u);
  EXPECT_DOUBLE_EQ(*back.quantile(0, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(*back.quantile(2, 1.0), 9.0);
}

TEST(DeadlineTracker, StaticFallbackBelowMinRecords) {
  ResilienceConfig cfg;
  cfg.deadlines = true;
  cfg.min_records = 3;
  cfg.deadline_quantile = 1.0;
  cfg.deadline_slack = 2.0;
  DeadlineTracker d(cfg);
  EXPECT_FALSE(d.adaptive(0));
  EXPECT_DOUBLE_EQ(d.deadline(0, 12.0), 12.0);
  EXPECT_DOUBLE_EQ(d.deadline(0, 12.0, 2.0), 24.0);  // widen applies to both
  EXPECT_FALSE(d.straggler_threshold(0).has_value());
  d.observe(0, 4.0);
  d.observe(0, 6.0);
  EXPECT_FALSE(d.adaptive(0));
  d.observe(0, 5.0);
  EXPECT_TRUE(d.adaptive(0));
  // max(4,5,6) * slack 2 = 12 is now histogram-derived, not the fallback.
  EXPECT_DOUBLE_EQ(d.deadline(0, 99.0), 12.0);
  EXPECT_DOUBLE_EQ(d.deadline(0, 99.0, 2.0), 24.0);
  ASSERT_TRUE(d.straggler_threshold(0).has_value());
}

// -------------------------------------------------------- reliability

TEST(ReliabilityTracker, ScoresAndProbationStateMachine) {
  ResilienceConfig cfg;
  cfg.reliability = true;
  cfg.reliability_decay = 0.5;
  cfg.probation_sentence = 10.0;
  cfg.sentence_growth = 2.0;
  ReliabilityTracker rt(cfg);

  EXPECT_DOUBLE_EQ(rt.score(3), 1.0);  // unseen workers are trusted
  rt.on_offense(3);
  EXPECT_DOUBLE_EQ(rt.score(3), 0.5);
  rt.on_offense(3);
  EXPECT_DOUBLE_EQ(rt.score(3), 0.25);
  rt.on_success(3);
  EXPECT_DOUBLE_EQ(rt.score(3), 0.625);

  // First conviction: sentence = 10, served over [100, 110).
  EXPECT_DOUBLE_EQ(rt.quarantine(3, 100.0), 10.0);
  EXPECT_EQ(rt.convictions(3), 1u);
  EXPECT_TRUE(rt.quarantined(3, 105.0));
  EXPECT_FALSE(rt.probationary(3, 105.0));
  EXPECT_FALSE(rt.quarantined(3, 110.0));
  EXPECT_TRUE(rt.probationary(3, 110.0));
  // A delivered result redeems probation.
  rt.on_success(3);
  EXPECT_FALSE(rt.probationary(3, 111.0));
  // Re-offense: the sentence doubles.
  EXPECT_DOUBLE_EQ(rt.quarantine(3, 120.0), 20.0);
  EXPECT_EQ(rt.convictions(3), 2u);
  EXPECT_TRUE(rt.quarantined(3, 139.0));
  EXPECT_TRUE(rt.probationary(3, 140.0));

  // Round-trip preserves every entry.
  tora::util::ByteWriter w;
  rt.save(w);
  const std::string bytes = w.take();
  ReliabilityTracker back(cfg);
  tora::util::ByteReader r(bytes);
  back.load(r);
  EXPECT_TRUE(r.done());
  EXPECT_DOUBLE_EQ(back.score(3), rt.score(3));
  EXPECT_EQ(back.convictions(3), 2u);
  EXPECT_TRUE(back.quarantined(3, 139.0));
}

// -------------------------------------------------------------- storm

TEST(StormDetector, EntersAndExitsOnWindowedEvictionRate) {
  ResilienceConfig cfg;
  cfg.storm_control = true;
  cfg.storm_window = 10.0;
  cfg.storm_enter = 3;
  cfg.storm_exit = 1;
  StormDetector s(cfg);
  EXPECT_FALSE(s.degraded());
  s.on_eviction(0.0);
  s.on_eviction(1.0);
  EXPECT_FALSE(s.degraded());
  s.on_eviction(2.0);
  EXPECT_TRUE(s.degraded());
  EXPECT_EQ(s.storms_entered(), 1u);
  // Window drains: at t=11.5 only the t=2 eviction remains (<= exit of 1).
  s.update(11.5);
  EXPECT_FALSE(s.degraded());
  EXPECT_EQ(s.storms_exited(), 1u);
  // Disabled detector never degrades.
  StormDetector off{ResilienceConfig{}};
  for (int i = 0; i < 50; ++i) off.on_eviction(static_cast<double>(i) * 0.01);
  EXPECT_FALSE(off.degraded());
}

// -------------------------------------------------- calm bit-exactness

constexpr ResourceVector kCapacity{16.0, 65536.0, 65536.0, 0.0};

std::vector<TaskSpec> retry_workload(std::size_t n) {
  const std::vector<std::string> cats = {"heavy_a", "heavy_b", "heavy_c"};
  std::vector<TaskSpec> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks[i].id = i;
    tasks[i].category = cats[i % cats.size()];
    tasks[i].demand = ResourceVector{
        9.0 + static_cast<double>(i % 3),
        20000.0 + 3000.0 * static_cast<double>(i % 5),
        4000.0 + 500.0 * static_cast<double>(i % 4), 0.0};
    tasks[i].duration_s = 10.0 + static_cast<double>(i % 7);
  }
  return tasks;
}

ResilienceConfig everything_on() {
  ResilienceConfig r;
  r.deadlines = true;
  r.speculation = true;
  r.reliability = true;
  r.storm_control = true;
  r.min_records = 2;
  return r;
}

std::string accounting_bytes(const tora::core::WasteAccounting& a) {
  tora::util::ByteWriter w;
  a.save(w);
  return w.take();
}

TEST(ResilienceCalm, EnabledLayerChangesNothingWithoutChurnInSim) {
  const auto tasks = retry_workload(30);

  tora::sim::SimConfig base;
  base.worker_capacity = kCapacity;
  base.churn.enabled = false;
  base.churn.initial_workers = 3;

  auto alloc_off = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  tora::sim::Simulation off(tasks, alloc_off, base);
  const auto r_off = off.run();

  tora::sim::SimConfig cfg_on = base;
  cfg_on.resilience = everything_on();
  auto alloc_on = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  tora::sim::Simulation on(tasks, alloc_on, cfg_on);
  const auto r_on = on.run();

  // Bit-exact: waste accounting, makespan, completions, and no resilience
  // activity at all — the churn-evidence gate never opened.
  EXPECT_EQ(accounting_bytes(r_on.accounting), accounting_bytes(r_off.accounting));
  EXPECT_EQ(r_on.makespan_s, r_off.makespan_s);
  EXPECT_EQ(r_on.tasks_completed, r_off.tasks_completed);
  EXPECT_EQ(r_on.evictions, 0u);
  EXPECT_EQ(r_on.resilience, tora::core::ResilienceCounters{});
  EXPECT_EQ(r_on.accounting.speculative_attempts(), 0u);
}

TEST(ResilienceCalm, EnabledLayerChangesNothingInFaultFreeProto) {
  const auto tasks = retry_workload(24);

  auto run = [&](const ResilienceConfig& res) {
    auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
    tora::proto::LivenessConfig cfg;
    cfg.resilience = res;
    auto link = std::make_shared<DuplexLink>();
    tora::proto::ProtocolManager manager(tasks, alloc, {link}, cfg);
    tora::proto::WorkerAgent agent(0, kCapacity, tasks, link);
    agent.announce();
    manager.start();
    for (int round = 0; round < 100000 && !manager.done(); ++round) {
      manager.pump();
      agent.pump();
    }
    EXPECT_TRUE(manager.done());
    return std::pair(accounting_bytes(manager.accounting()),
                     manager.resilience());
  };

  const auto [bytes_off, res_off] = run(ResilienceConfig{});
  const auto [bytes_on, res_on] = run(everything_on());
  EXPECT_EQ(bytes_on, bytes_off);
  EXPECT_EQ(res_on, tora::core::ResilienceCounters{});
  EXPECT_EQ(res_off, tora::core::ResilienceCounters{});
}

// ------------------------------------- scripted protocol manager harness

constexpr ResourceVector kSmallCap{4.0, 1000.0, 1000.0, 0.0};

std::vector<TaskSpec> small_tasks(std::size_t n) {
  std::vector<TaskSpec> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks[i].id = i;
    tasks[i].category = "c";
    tasks[i].demand = ResourceVector{3.0, 500.0, 500.0, 0.0};
    tasks[i].duration_s = 5.0;
  }
  return tasks;
}

/// Hand-driven deployment: the test plays all the workers, crafting
/// heartbeats, results and evictions so every resilience transition is
/// reached deterministically.
struct Scripted {
  std::vector<TaskSpec> tasks;
  tora::core::TaskAllocator alloc;
  std::vector<DuplexLinkPtr> links;
  tora::proto::ProtocolManager manager;

  Scripted(std::size_t n_tasks, std::size_t n_workers,
           tora::proto::LivenessConfig cfg)
      : tasks(small_tasks(n_tasks)),
        alloc(tora::core::make_allocator(tora::core::kMaxSeen, 5, kSmallCap)),
        links(make_links(n_workers)),
        manager(tasks, alloc, links, cfg) {
    for (std::size_t i = 0; i < n_workers; ++i) {
      Message m;
      m.type = MsgType::WorkerReady;
      m.worker_id = i;
      m.resources = kSmallCap;
      links[i]->to_manager.send(encode(m));
    }
    manager.start();
  }

  static std::vector<DuplexLinkPtr> make_links(std::size_t n) {
    std::vector<DuplexLinkPtr> ls;
    for (std::size_t i = 0; i < n; ++i) {
      ls.push_back(std::make_shared<DuplexLink>());
    }
    return ls;
  }

  void heartbeat(std::uint64_t worker) {
    Message m;
    m.type = MsgType::Heartbeat;
    m.worker_id = worker;
    m.resources = kSmallCap;
    links[worker]->to_manager.send(encode(m));
  }

  void result(const Message& dispatch, Outcome outcome) {
    Message m;
    m.type = MsgType::TaskResult;
    m.worker_id = dispatch.worker_id;
    m.task_id = dispatch.task_id;
    m.attempt = dispatch.attempt;
    m.resources = tasks[dispatch.task_id].demand;  // measured peak
    m.runtime_s = tasks[dispatch.task_id].duration_s;
    m.outcome = outcome;
    links[dispatch.worker_id]->to_manager.send(encode(m));
  }

  void evict(std::uint64_t worker, std::uint64_t task) {
    Message m;
    m.type = MsgType::Evict;
    m.worker_id = worker;
    m.task_id = task;
    links[worker]->to_manager.send(encode(m));
  }

  /// Drains worker `w`'s inbound channel, returning decoded messages.
  std::vector<Message> drain(std::uint64_t w) {
    std::vector<Message> out;
    while (auto line = links[w]->to_worker.poll()) {
      auto m = tora::proto::decode(*line);
      if (m) out.push_back(*m);
    }
    return out;
  }

  /// Finds the next TaskDispatch for `task` on worker `w` (fails the test
  /// if absent).
  Message expect_dispatch(std::uint64_t w, std::uint64_t task) {
    for (const Message& m : drain(w)) {
      if (m.type == MsgType::TaskDispatch && m.task_id == task) return m;
    }
    ADD_FAILURE() << "expected a dispatch of task " << task << " on worker "
                  << w;
    return Message{};
  }
};

tora::proto::LivenessConfig speculation_config() {
  tora::proto::LivenessConfig cfg;
  cfg.silence_ticks = 2;
  cfg.attempt_timeout_ticks = 30;  // out of the way unless a test wants it
  cfg.resilience.speculation = true;
  cfg.resilience.min_records = 1;
  return cfg;
}

/// Drives the shared preamble: t0 completes (feeds the histogram), t1 is
/// evicted once (churn evidence) and re-dispatched to worker 0, then goes
/// silent until a speculative duplicate lands on worker 1. Returns the
/// duplicate's dispatch message.
Message speculate_preamble(Scripted& s) {
  s.manager.pump();  // tick 1: register workers, dispatch t0->w0, t1->w1
  const Message d0 = s.expect_dispatch(0, 0);
  (void)s.expect_dispatch(1, 1);
  s.result(d0, Outcome::Success);  // histogram: duration 1 tick
  s.evict(1, 1);                   // churn evidence; t1 requeued
  s.heartbeat(0);
  s.heartbeat(1);
  s.manager.pump();  // tick 2: eviction + redispatch t1 -> w0 (first fit)
  EXPECT_EQ(s.manager.core().evictions(), 1u);
  (void)s.expect_dispatch(0, 1);
  s.heartbeat(0);
  s.heartbeat(1);
  s.manager.pump();  // tick 3: age 1 <= threshold 1.5, no duplicate yet
  EXPECT_EQ(s.manager.resilience().speculations_launched, 0u);
  s.heartbeat(0);
  s.heartbeat(1);
  s.manager.pump();  // tick 4: age 2 > 1.5 -> duplicate onto w1
  EXPECT_EQ(s.manager.resilience().speculations_launched, 1u);
  Message spec = s.expect_dispatch(1, 1);
  EXPECT_EQ(spec.attempt, 2u);  // SAME wire attempt id as the primary
  return spec;
}

TEST(ResilienceSpeculation, LostPrimaryWithLiveDuplicateChargesLedgerOnce) {
  Scripted s(2, 2, speculation_config());
  const Message spec = speculate_preamble(s);

  // Worker 0 (the primary's host) goes silent; worker 1 keeps beating.
  // The death must charge the eviction ledger EXACTLY once for the lost
  // primary — the in-flight duplicate is a handover, not a second eviction.
  for (int i = 0; i < 3; ++i) {
    s.heartbeat(1);
    s.manager.pump();  // ticks 5..7: w0 silent beyond 2 -> declared dead
  }
  EXPECT_EQ(s.manager.chaos().workers_declared_dead, 1u);
  EXPECT_EQ(s.manager.core().evictions(), 2u);  // 1 scripted + exactly 1 here
  EXPECT_EQ(s.manager.resilience().speculations_promoted, 1u);
  EXPECT_EQ(s.manager.resilience().speculations_cancelled, 0u);

  // The promoted duplicate's result completes the task.
  s.result(spec, Outcome::Success);
  s.heartbeat(1);
  s.manager.pump();
  EXPECT_TRUE(s.manager.done());
  EXPECT_EQ(s.manager.tasks_completed(), 2u);
  // A promoted duplicate is not waste: the speculative column stays empty.
  EXPECT_EQ(s.manager.accounting().speculative_attempts(), 0u);
  for (ResourceKind k : tora::core::kManagedResources) {
    EXPECT_DOUBLE_EQ(s.manager.accounting().breakdown(k).speculative, 0.0);
  }
}

TEST(ResilienceSpeculation, LostDuplicateIsSpeculativeWasteNotEviction) {
  Scripted s(2, 2, speculation_config());
  (void)speculate_preamble(s);

  // Worker 1 (the duplicate's host) goes silent instead; the primary on
  // worker 0 is untouched. The loss lands in the speculative column, the
  // eviction ledger does not move.
  Message primary_redispatch;
  for (int i = 0; i < 3; ++i) {
    s.heartbeat(0);
    s.manager.pump();  // ticks 5..7: w1 silent beyond 2 -> declared dead
  }
  EXPECT_EQ(s.manager.chaos().workers_declared_dead, 1u);
  EXPECT_EQ(s.manager.core().evictions(), 1u);  // only the scripted one
  EXPECT_EQ(s.manager.resilience().speculations_cancelled, 1u);
  EXPECT_EQ(s.manager.resilience().speculations_promoted, 0u);
  EXPECT_EQ(s.manager.accounting().speculative_attempts(), 1u);
  double spec_waste = 0.0;
  for (ResourceKind k : tora::core::kManagedResources) {
    spec_waste += s.manager.accounting().breakdown(k).speculative;
  }
  EXPECT_GT(spec_waste, 0.0);

  // The primary still answers with its original attempt id and completes.
  Message d1;
  d1.worker_id = 0;
  d1.task_id = 1;
  d1.attempt = 2;
  s.result(d1, Outcome::Success);
  s.heartbeat(0);
  s.manager.pump();
  EXPECT_TRUE(s.manager.done());
  EXPECT_EQ(s.manager.tasks_completed(), 2u);
}

TEST(ResilienceSpeculation, PrimaryTimeoutPromotesFreshDuplicateAndQuarantines) {
  auto cfg = speculation_config();
  cfg.silence_ticks = 30;         // keep silence detection out of the way
  cfg.attempt_timeout_ticks = 3;  // primary times out at tick 6 (age 4)
  cfg.worker_failure_limit = 1;   // first timeout convicts the worker
  Scripted s(2, 2, cfg);
  const Message spec = speculate_preamble(s);

  // Ticks 5-6: the primary (dispatched tick 2) exceeds the 3-tick window
  // while the duplicate (dispatched tick 4) is still fresh. The duplicate
  // is promoted — timeouts charge NEITHER ledger — and worker 0 is
  // quarantined for eating the attempt.
  for (int i = 0; i < 2; ++i) {
    s.heartbeat(0);
    s.heartbeat(1);
    s.manager.pump();
  }
  EXPECT_EQ(s.manager.chaos().attempt_timeouts, 1u);
  EXPECT_EQ(s.manager.chaos().workers_quarantined, 1u);
  EXPECT_EQ(s.manager.core().evictions(), 1u);  // only the scripted one
  EXPECT_EQ(s.manager.resilience().speculations_promoted, 1u);
  EXPECT_EQ(s.manager.accounting().speculative_attempts(), 0u);

  s.result(spec, Outcome::Success);
  s.heartbeat(1);
  s.manager.pump();
  EXPECT_TRUE(s.manager.done());
  EXPECT_EQ(s.manager.tasks_completed(), 2u);
}

TEST(ResilienceProbation, ConvictedWorkerIsReadmittedAfterSentence) {
  tora::proto::LivenessConfig cfg;
  cfg.silence_ticks = 30;
  cfg.attempt_timeout_ticks = 2;
  cfg.worker_failure_limit = 1;
  cfg.backoff_base_ticks = 1;
  cfg.resilience.reliability = true;
  cfg.resilience.probation_sentence = 3.0;
  Scripted s(2, 1, cfg);

  s.manager.pump();  // tick 1: register w0, dispatch t0->w0
  (void)s.expect_dispatch(0, 0);
  // Never answer: t0 times out at tick 4 (age 3 > 2), convicting w0.
  for (int i = 0; i < 3; ++i) {
    s.heartbeat(0);
    s.manager.pump();  // ticks 2..4
  }
  EXPECT_EQ(s.manager.chaos().workers_quarantined, 1u);
  EXPECT_EQ(s.manager.workers_known(), 0u);

  // Sentence is 3 ticks from the conviction at tick 4: heartbeats during
  // [4, 7) are rejected, the tick-7 one re-registers on probation.
  std::size_t probation_tick = 0;
  for (int i = 0; i < 4; ++i) {
    s.heartbeat(0);
    s.manager.pump();  // ticks 5..8
    if (probation_tick == 0 && s.manager.workers_known() == 1) {
      probation_tick = s.manager.ticks();
    }
  }
  EXPECT_EQ(probation_tick, 7u);
  EXPECT_EQ(s.manager.resilience().probation_admissions, 1u);

  // The re-admitted worker delivers both tasks (redeeming itself).
  for (int i = 0; i < 20 && !s.manager.done(); ++i) {
    for (const Message& m : s.drain(0)) {
      if (m.type == MsgType::TaskDispatch) s.result(m, Outcome::Success);
    }
    s.heartbeat(0);
    s.manager.pump();
  }
  EXPECT_TRUE(s.manager.done());
  EXPECT_EQ(s.manager.tasks_completed(), 2u);
  EXPECT_EQ(s.manager.chaos().workers_quarantined, 1u);  // no re-conviction
}

// ------------------------------------------------------ storm smoke (sim)

TEST(ResilienceStorm, SimulatedStormBurstsDriveDegradedModeAndStillComplete) {
  const auto tasks = retry_workload(80);
  tora::sim::SimConfig cfg;
  cfg.worker_capacity = kCapacity;
  cfg.seed = 11;
  cfg.churn.enabled = true;
  cfg.churn.initial_workers = 10;
  cfg.churn.min_workers = 4;
  cfg.churn.max_workers = 12;
  cfg.churn.mean_interarrival_s = 30.0;
  cfg.churn.storm_interval_s = 60.0;
  cfg.churn.storm_duration_s = 30.0;
  cfg.churn.storm_evict_fraction = 0.8;
  cfg.resilience = everything_on();
  cfg.resilience.storm_enter = 4;

  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 3);
  tora::sim::Simulation sim(tasks, alloc, cfg);
  const auto r = sim.run();

  EXPECT_EQ(r.tasks_completed + r.tasks_fatal, tasks.size());
  EXPECT_GT(r.evictions, 0u);
  EXPECT_GT(r.resilience.storms_entered, 0u);
  // Degradation is symmetric: every storm entered is eventually exited
  // (the run only ends once the pool calmed down and work finished).
  EXPECT_EQ(r.resilience.storms_entered, r.resilience.storms_exited);
}

TEST(ResilienceStorm, StormKnobsAreValidated) {
  const auto tasks = retry_workload(4);
  tora::sim::SimConfig cfg;
  cfg.churn.storm_interval_s = 100.0;  // interval without duration/fraction
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 3);
  EXPECT_THROW(tora::sim::Simulation(tasks, alloc, cfg),
               std::invalid_argument);
  cfg.churn.storm_duration_s = 10.0;
  cfg.churn.storm_evict_fraction = 1.5;  // out of range
  EXPECT_THROW(tora::sim::Simulation(tasks, alloc, cfg),
               std::invalid_argument);
}

}  // namespace
