// Monte-Carlo validation of the Exhaustive Bucketing cost table T[i][j]
// (core/bucket.cpp expected_waste): simulate the §IV-A allocation protocol
// exactly as the model assumes it — the next task falls in bucket i with
// probability p_i and consumes v_i (the bucket's significance-weighted
// mean); the allocator picks bucket j with probability p_j, pays rep_j as
// failed-allocation waste whenever rep_j cannot cover the task (j < i), and
// re-draws among strictly higher buckets with renormalized probabilities
// until the task fits, finally paying rep_k − v_i of fragmentation. The
// sample mean of that waste must converge to expected_waste(set).

#include <gtest/gtest.h>

#include <vector>

#include "core/bucket.hpp"
#include "util/rng.hpp"

namespace {

using tora::core::Bucket;
using tora::core::BucketSet;
using tora::core::expected_waste;
using tora::core::Record;
using tora::util::Rng;

double simulate_protocol_waste(const BucketSet& set, Rng& rng,
                               std::size_t trials) {
  const auto& buckets = set.buckets();
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::size_t task_bucket = set.sample_index(rng);
    const double consumption = buckets[task_bucket].weighted_mean;
    std::size_t chosen = set.sample_index(rng);
    double waste = 0.0;
    // Escalation chain: pay the full failed allocation and renormalize over
    // strictly higher buckets (exactly sample_above's semantics on reps,
    // but expressed in bucket indices to mirror the T-table derivation).
    while (chosen < task_bucket) {
      waste += buckets[chosen].rep;
      double denom = 0.0;
      for (std::size_t k = chosen + 1; k < buckets.size(); ++k) {
        denom += buckets[k].prob;
      }
      const double u = rng.uniform01() * denom;
      double acc = 0.0;
      std::size_t next = buckets.size() - 1;
      for (std::size_t k = chosen + 1; k < buckets.size(); ++k) {
        acc += buckets[k].prob;
        if (u < acc) {
          next = k;
          break;
        }
      }
      chosen = next;
    }
    waste += buckets[chosen].rep - consumption;
    total += waste;
  }
  return total / static_cast<double>(trials);
}

std::vector<Record> uniform_records(std::initializer_list<double> values) {
  std::vector<Record> r;
  for (double v : values) r.push_back({v, 1.0});
  return r;
}

void check_set(const std::vector<Record>& recs,
               const std::vector<std::size_t>& ends, double tolerance) {
  const auto set = BucketSet::from_break_indices(recs, ends);
  const double analytic = expected_waste(set);
  Rng rng(99);
  const double simulated = simulate_protocol_waste(set, rng, 400000);
  EXPECT_NEAR(simulated, analytic, tolerance)
      << "buckets=" << set.size() << " analytic=" << analytic;
}

TEST(ExpectedWasteMonteCarlo, TwoSingletonBuckets) {
  check_set(uniform_records({1.0, 3.0}), {0, 1}, 0.01);
}

TEST(ExpectedWasteMonteCarlo, ThreeSingletonBuckets) {
  check_set(uniform_records({1.0, 2.0, 4.0}), {0, 1, 2}, 0.02);
}

TEST(ExpectedWasteMonteCarlo, UnevenBuckets) {
  check_set(uniform_records({1, 1.5, 2, 2.5, 3, 10, 11, 40}), {4, 6, 7}, 0.2);
}

TEST(ExpectedWasteMonteCarlo, WeightedBuckets) {
  std::vector<Record> recs;
  double sig = 1.0;
  for (double v : {10.0, 12.0, 14.0, 100.0, 110.0, 500.0}) {
    recs.push_back({v, sig});
    sig += 2.0;
  }
  check_set(recs, {2, 4, 5}, 2.0);
}

TEST(ExpectedWasteMonteCarlo, FiveBucketsLongChain) {
  check_set(uniform_records({1, 2, 4, 8, 16, 32, 64, 128, 256, 512}),
            {1, 3, 5, 7, 9}, 2.5);
}

TEST(ExpectedWasteMonteCarlo, SingleBucketExact) {
  // With one bucket the protocol is deterministic: rep - mean, no variance.
  const auto recs = uniform_records({2.0, 4.0, 9.0});
  const auto set = BucketSet::from_break_indices(recs, std::vector<std::size_t>{2});
  Rng rng(1);
  EXPECT_DOUBLE_EQ(simulate_protocol_waste(set, rng, 100), 9.0 - 5.0);
  EXPECT_DOUBLE_EQ(expected_waste(set), 4.0);
}

}  // namespace
