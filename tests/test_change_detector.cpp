#include "core/change_detector.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/bucketing_policy.hpp"
#include "core/exhaustive_bucketing.hpp"
#include "core/registry.hpp"
#include "util/rng.hpp"

namespace {

using tora::core::ChangeAwarePolicy;
using tora::core::ExhaustiveBucketing;
using tora::core::MeanShiftDetector;
using tora::util::Rng;

TEST(MeanShiftDetector, ValidatesConstruction) {
  EXPECT_THROW(MeanShiftDetector(1, 2.0), std::invalid_argument);
  EXPECT_THROW(MeanShiftDetector(5, 1.0), std::invalid_argument);
  EXPECT_THROW(MeanShiftDetector(5, 0.5), std::invalid_argument);
}

TEST(MeanShiftDetector, SteadyStreamNeverFires) {
  MeanShiftDetector d(10, 2.0);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(d.add(rng.uniform(95.0, 105.0)));
  }
  EXPECT_EQ(d.changes_detected(), 0u);
}

TEST(MeanShiftDetector, DetectsUpwardJump) {
  MeanShiftDetector d(10, 2.0);
  for (int i = 0; i < 30; ++i) EXPECT_FALSE(d.add(100.0));
  bool fired = false;
  for (int i = 0; i < 25 && !fired; ++i) fired = d.add(1000.0);
  EXPECT_TRUE(fired);
  EXPECT_EQ(d.changes_detected(), 1u);
}

TEST(MeanShiftDetector, DetectsDownwardJump) {
  MeanShiftDetector d(10, 2.0);
  for (int i = 0; i < 30; ++i) d.add(1000.0);
  bool fired = false;
  for (int i = 0; i < 25 && !fired; ++i) fired = d.add(100.0);
  EXPECT_TRUE(fired);
}

TEST(MeanShiftDetector, SmallDriftBelowThresholdIgnored) {
  MeanShiftDetector d(10, 3.0);
  for (int i = 0; i < 30; ++i) d.add(100.0);
  for (int i = 0; i < 30; ++i) EXPECT_FALSE(d.add(180.0));  // 1.8x < 3x
}

TEST(MeanShiftDetector, RecoversAndDetectsSecondChange) {
  MeanShiftDetector d(10, 2.0);
  for (int i = 0; i < 30; ++i) d.add(100.0);
  int fires = 0;
  for (int i = 0; i < 40; ++i) fires += d.add(1000.0) ? 1 : 0;
  for (int i = 0; i < 40; ++i) fires += d.add(100.0) ? 1 : 0;
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(d.changes_detected(), 2u);
}

TEST(MeanShiftDetector, AllZeroStreamNeverFires) {
  MeanShiftDetector d(5, 2.0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(d.add(0.0));
}

// -------------------------------------------------- ChangeAwarePolicy

ChangeAwarePolicy make_change_aware(std::size_t window = 10) {
  auto rng = std::make_shared<Rng>(7);
  return ChangeAwarePolicy(
      [rng]() -> tora::core::ResourcePolicyPtr {
        return std::make_unique<ExhaustiveBucketing>(rng->split());
      },
      MeanShiftDetector(window, 2.0));
}

TEST(ChangeAwarePolicy, ValidatesFactory) {
  EXPECT_THROW(ChangeAwarePolicy(nullptr, MeanShiftDetector(5, 2.0)),
               std::invalid_argument);
  EXPECT_THROW(ChangeAwarePolicy(
                   []() -> tora::core::ResourcePolicyPtr { return nullptr; },
                   MeanShiftDetector(5, 2.0)),
               std::invalid_argument);
}

TEST(ChangeAwarePolicy, DelegatesBeforeAnyChange) {
  auto p = make_change_aware();
  for (int i = 0; i < 15; ++i) p.observe(306.0, i + 1.0);
  EXPECT_EQ(p.resets(), 0u);
  EXPECT_DOUBLE_EQ(p.predict(), 306.0);
  EXPECT_EQ(p.record_count(), 15u);
}

TEST(ChangeAwarePolicy, HardResetDropsStalePhase) {
  auto p = make_change_aware(10);
  // Phase 1: 8 GB tasks.
  for (int i = 0; i < 40; ++i) p.observe(8000.0, i + 1.0);
  // Phase 2: 500 MB tasks -> detector fires, history resets.
  double sig = 41.0;
  for (int i = 0; i < 30; ++i) p.observe(500.0, sig++);
  EXPECT_GE(p.resets(), 1u);
  // After the reset the inner policy only knows the new phase: predictions
  // drop to the new scale instead of hedging toward 8 GB.
  for (int i = 0; i < 20; ++i) {
    EXPECT_LE(p.predict(), 600.0);
  }
  // The inner bucketing policy's record base excludes phase 1 entirely.
  auto& inner =
      dynamic_cast<tora::core::BucketingPolicy&>(p.inner());
  for (const auto& r : inner.records()) EXPECT_LE(r.value, 600.0);
}

TEST(ChangeAwarePolicy, RetryStillEscalates) {
  auto p = make_change_aware();
  for (int i = 0; i < 12; ++i) p.observe(100.0, i + 1.0);
  EXPECT_DOUBLE_EQ(p.retry(100.0), 200.0);
}

TEST(ChangeAwarePolicy, NameReflectsInner) {
  auto p = make_change_aware();
  EXPECT_EQ(p.name(), "change_aware(exhaustive_bucketing)");
}

TEST(ChangeAwarePolicy, RegistryConstruction) {
  auto a =
      tora::core::make_allocator(tora::core::kChangeAwareBucketing, 3);
  EXPECT_TRUE(
      tora::core::is_bucketing_family(tora::core::kChangeAwareBucketing));
  for (int i = 0; i < 12; ++i) a.record_completion("c", {1.0, 700.0, 70.0});
  EXPECT_DOUBLE_EQ(a.allocate("c").memory_mb(), 700.0);
  const auto& names = tora::core::extended_policy_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "change_aware_bucketing"),
            names.end());
}

}  // namespace
