// Tests for the shared BucketingPolicy base class (record management, lazy
// rebuilds, the predict/retry protocol) independent of any concrete
// break-point algorithm.

#include "core/bucketing_policy.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using tora::core::BucketingPolicy;
using tora::core::Record;
using tora::util::Rng;

/// Minimal concrete policy: singleton buckets (every record its own
/// bucket), which makes the probabilistic machinery fully observable.
class SingletonBuckets final : public BucketingPolicy {
 public:
  explicit SingletonBuckets(Rng rng) : BucketingPolicy(rng) {}
  std::string name() const override { return "singleton"; }

 protected:
  std::vector<std::size_t> compute_break_indices(
      std::span<const Record> sorted) override {
    std::vector<std::size_t> ends;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (i + 1 == sorted.size() ||
          sorted[i + 1].value != sorted[i].value) {
        ends.push_back(i);
      }
    }
    return ends;
  }
};

TEST(BucketingPolicyBase, TiesKeepInsertionOrder) {
  SingletonBuckets p{Rng(1)};
  p.observe(5.0, 1.0);
  p.observe(5.0, 2.0);
  p.observe(3.0, 3.0);
  p.observe(5.0, 4.0);
  const auto& recs = p.records();
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_DOUBLE_EQ(recs[0].value, 3.0);
  // Equal values in arrival order: significances 1, 2, 4.
  EXPECT_DOUBLE_EQ(recs[1].significance, 1.0);
  EXPECT_DOUBLE_EQ(recs[2].significance, 2.0);
  EXPECT_DOUBLE_EQ(recs[3].significance, 4.0);
}

TEST(BucketingPolicyBase, PredictSamplesBySignificanceShare) {
  SingletonBuckets p{Rng(2)};
  p.observe(10.0, 9.0);
  p.observe(100.0, 1.0);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (p.predict() == 10.0) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.9, 0.01);
}

TEST(BucketingPolicyBase, RetryWithNoRecordsDoubles) {
  SingletonBuckets p{Rng(3)};
  EXPECT_DOUBLE_EQ(p.retry(8.0), 16.0);
  EXPECT_DOUBLE_EQ(p.retry(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.retry(-4.0), 1.0);  // degenerate input still grows
}

TEST(BucketingPolicyBase, BucketsBeforeRecordsThrows) {
  SingletonBuckets p{Rng(4)};
  EXPECT_THROW(p.buckets(), std::logic_error);
}

TEST(BucketingPolicyBase, RebuildOnlyWhenDirty) {
  SingletonBuckets p{Rng(5)};
  p.observe(1.0, 1.0);
  (void)p.buckets();
  (void)p.predict();
  (void)p.retry(0.5);
  EXPECT_EQ(p.rebuild_count(), 1u);
  p.observe(2.0, 2.0);
  EXPECT_EQ(p.rebuild_count(), 1u);  // lazy: nothing rebuilt yet
  (void)p.retry(1.0);                // retry also forces the rebuild
  EXPECT_EQ(p.rebuild_count(), 2u);
}

TEST(BucketingPolicyBase, RetryPrefersBucketsStrictlyAbove) {
  SingletonBuckets p{Rng(6)};
  for (double v : {1.0, 2.0, 3.0}) p.observe(v, 1.0);
  for (int i = 0; i < 200; ++i) {
    const double r = p.retry(2.0);
    EXPECT_DOUBLE_EQ(r, 3.0);  // the only bucket above 2
  }
}

TEST(BucketingPolicyBase, ZeroSignificanceRecordsRejectedByBucketSet) {
  // All-zero significance cannot form probabilities; the base class surfaces
  // the invariant violation instead of dividing by zero.
  SingletonBuckets p{Rng(7)};
  p.observe(1.0, 0.0);
  EXPECT_THROW(p.buckets(), std::invalid_argument);
}

TEST(BucketingPolicyBase, MixedZeroAndPositiveSignificanceWorks) {
  SingletonBuckets p{Rng(8)};
  p.observe(1.0, 0.0);  // e.g. a bootstrap record the caller discounts fully
  p.observe(2.0, 1.0);
  const auto& set = p.buckets();
  ASSERT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.buckets()[0].prob, 0.0);
  EXPECT_DOUBLE_EQ(set.buckets()[1].prob, 1.0);
  // Zero-probability buckets are never sampled.
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(p.predict(), 2.0);
}

TEST(BucketingPolicyBase, LargeStreamStaysSorted) {
  SingletonBuckets p{Rng(9)};
  Rng values(10);
  for (int i = 0; i < 500; ++i) {
    p.observe(values.uniform(0.0, 1000.0), i + 1.0);
  }
  const auto& recs = p.records();
  for (std::size_t i = 1; i < recs.size(); ++i) {
    ASSERT_LE(recs[i - 1].value, recs[i].value);
  }
  EXPECT_EQ(p.record_count(), 500u);
}

}  // namespace
