// Tests for the shared BucketingPolicy base class (record management, lazy
// rebuilds, the predict/retry protocol) independent of any concrete
// break-point algorithm.

#include "core/bucketing_policy.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using tora::core::BucketingPolicy;
using tora::core::Record;
using tora::util::Rng;

/// Minimal concrete policy: singleton buckets (every record its own
/// bucket), which makes the probabilistic machinery fully observable.
class SingletonBuckets final : public BucketingPolicy {
 public:
  explicit SingletonBuckets(Rng rng) : BucketingPolicy(rng) {}
  std::string name() const override { return "singleton"; }

 protected:
  std::vector<std::size_t> compute_break_indices(
      const tora::core::SortedRecords& sorted) override {
    std::vector<std::size_t> ends;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (i + 1 == sorted.size() ||
          sorted.values[i + 1] != sorted.values[i]) {
        ends.push_back(i);
      }
    }
    return ends;
  }
};

TEST(BucketingPolicyBase, TiesKeepInsertionOrder) {
  SingletonBuckets p{Rng(1)};
  p.observe(5.0, 1.0);
  p.observe(5.0, 2.0);
  p.observe(3.0, 3.0);
  p.observe(5.0, 4.0);
  const auto& recs = p.records();
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_DOUBLE_EQ(recs[0].value, 3.0);
  // Equal values in arrival order: significances 1, 2, 4.
  EXPECT_DOUBLE_EQ(recs[1].significance, 1.0);
  EXPECT_DOUBLE_EQ(recs[2].significance, 2.0);
  EXPECT_DOUBLE_EQ(recs[3].significance, 4.0);
}

TEST(BucketingPolicyBase, PredictSamplesBySignificanceShare) {
  SingletonBuckets p{Rng(2)};
  p.observe(10.0, 9.0);
  p.observe(100.0, 1.0);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (p.predict() == 10.0) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.9, 0.01);
}

TEST(BucketingPolicyBase, RetryWithNoRecordsDoubles) {
  SingletonBuckets p{Rng(3)};
  EXPECT_DOUBLE_EQ(p.retry(8.0), 16.0);
  EXPECT_DOUBLE_EQ(p.retry(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.retry(-4.0), 1.0);  // degenerate input still grows
}

TEST(BucketingPolicyBase, BucketsBeforeRecordsThrows) {
  SingletonBuckets p{Rng(4)};
  EXPECT_THROW(p.buckets(), std::logic_error);
}

TEST(BucketingPolicyBase, RebuildOnlyWhenDirty) {
  SingletonBuckets p{Rng(5)};
  p.observe(1.0, 1.0);
  (void)p.buckets();
  (void)p.predict();
  (void)p.retry(0.5);
  EXPECT_EQ(p.rebuild_count(), 1u);
  p.observe(2.0, 2.0);
  EXPECT_EQ(p.rebuild_count(), 1u);  // lazy: nothing rebuilt yet
  (void)p.retry(1.0);                // retry also forces the rebuild
  EXPECT_EQ(p.rebuild_count(), 2u);
}

TEST(BucketingPolicyBase, RetryPrefersBucketsStrictlyAbove) {
  SingletonBuckets p{Rng(6)};
  for (double v : {1.0, 2.0, 3.0}) p.observe(v, 1.0);
  for (int i = 0; i < 200; ++i) {
    const double r = p.retry(2.0);
    EXPECT_DOUBLE_EQ(r, 3.0);  // the only bucket above 2
  }
}

TEST(BucketingPolicyBase, ZeroSignificanceRecordsRejectedByBucketSet) {
  // All-zero significance cannot form probabilities; the base class surfaces
  // the invariant violation instead of dividing by zero.
  SingletonBuckets p{Rng(7)};
  p.observe(1.0, 0.0);
  EXPECT_THROW(p.buckets(), std::invalid_argument);
}

TEST(BucketingPolicyBase, MixedZeroAndPositiveSignificanceWorks) {
  SingletonBuckets p{Rng(8)};
  p.observe(1.0, 0.0);  // e.g. a bootstrap record the caller discounts fully
  p.observe(2.0, 1.0);
  const auto& set = p.buckets();
  ASSERT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.buckets()[0].prob, 0.0);
  EXPECT_DOUBLE_EQ(set.buckets()[1].prob, 1.0);
  // Zero-probability buckets are never sampled.
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(p.predict(), 2.0);
}

TEST(BucketingPolicyBase, LargeStreamStaysSorted) {
  SingletonBuckets p{Rng(9)};
  Rng values(10);
  for (int i = 0; i < 500; ++i) {
    p.observe(values.uniform(0.0, 1000.0), i + 1.0);
  }
  const auto& recs = p.records();
  for (std::size_t i = 1; i < recs.size(); ++i) {
    ASSERT_LE(recs[i - 1].value, recs[i].value);
  }
  EXPECT_EQ(p.record_count(), 500u);
  // The SoA views agree with the materialized records.
  const auto vals = p.values();
  const auto sigs = p.significances();
  ASSERT_EQ(vals.size(), 500u);
  ASSERT_EQ(sigs.size(), 500u);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    EXPECT_DOUBLE_EQ(vals[i], recs[i].value);
    EXPECT_DOUBLE_EQ(sigs[i], recs[i].significance);
  }
}

TEST(BucketingPolicyBase, RetryDoublingClampedAtCapacity) {
  SingletonBuckets p{Rng(11)};
  for (double v : {1.0, 2.0, 3.0}) p.observe(v, 1.0);
  p.set_retry_capacity(5.0);
  // No bucket exceeds 3.0, so retry escalates by doubling — clamped to the
  // configured worker capacity while it still exceeds the failure.
  EXPECT_DOUBLE_EQ(p.retry(3.0), 5.0);   // 6.0 clamped to 5.0
  EXPECT_DOUBLE_EQ(p.retry(4.0), 5.0);   // 8.0 clamped to 5.0
  // At or beyond capacity the clamp would stall the chain; the unclamped
  // doubling keeps the strictly-greater contract.
  EXPECT_DOUBLE_EQ(p.retry(5.0), 10.0);
  EXPECT_DOUBLE_EQ(p.retry(8.0), 16.0);
}

TEST(BucketingPolicyBase, RetryCapacityDefaultsToUnclamped) {
  SingletonBuckets p{Rng(12)};
  p.observe(3.0, 1.0);
  EXPECT_DOUBLE_EQ(p.retry(123456.0), 246912.0);
}

TEST(BucketingPolicyBase, ScheduledRebuildsAmortize) {
  SingletonBuckets p{Rng(13)};
  // growth = 0.5: after a rebuild at history size n, the next one is due
  // once the history roughly doubles.
  p.set_rebuild_schedule({0.5});
  for (int i = 1; i <= 8; ++i) p.observe(static_cast<double>(i), 1.0);
  (void)p.buckets();
  EXPECT_EQ(p.rebuild_count(), 1u);
  for (int i = 9; i <= 14; ++i) {
    p.observe(static_cast<double>(i), 1.0);
    (void)p.predict();
  }
  EXPECT_EQ(p.rebuild_count(), 1u);  // predictions served the stale set
  EXPECT_EQ(p.staged_count(), 6u);
  p.observe(15.0, 1.0);  // epoch boundary: the history has ~doubled
  (void)p.predict();
  EXPECT_EQ(p.rebuild_count(), 2u);
  EXPECT_EQ(p.staged_count(), 0u);
}

TEST(BucketingPolicyBase, RetryRebuildsExactlyOnDemand) {
  SingletonBuckets p{Rng(14)};
  p.set_rebuild_schedule({1.0});
  for (double v : {1.0, 2.0, 3.0}) p.observe(v, 1.0);
  (void)p.buckets();
  const std::size_t built = p.rebuild_count();
  p.observe(10.0, 1.0);  // mid-epoch: predict would serve stale buckets
  // retry() must see the full history — the new top bucket at 10.
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(p.retry(3.0), 10.0);
  EXPECT_EQ(p.rebuild_count(), built + 1);
}

TEST(BucketingPolicyBase, FreshBucketsForcesMerge) {
  SingletonBuckets p{Rng(15)};
  p.set_rebuild_schedule({1.0});
  p.observe(1.0, 1.0);
  (void)p.buckets();
  p.observe(2.0, 1.0);  // staged, not due
  EXPECT_EQ(p.buckets().size(), 1u);        // scheduled view lags
  EXPECT_EQ(p.fresh_buckets().size(), 2u);  // forced view is current
}

TEST(BucketingPolicyBase, FlushObservationsMergesWithoutRebuild) {
  SingletonBuckets p{Rng(16)};
  p.observe(1.0, 1.0);
  (void)p.buckets();
  p.observe(2.0, 1.0);
  EXPECT_EQ(p.staged_count(), 1u);
  p.flush_observations();
  EXPECT_EQ(p.staged_count(), 0u);
  EXPECT_EQ(p.rebuild_count(), 1u);  // merge only, no bucket rebuild
  // The scheduled rebuild still happens on the next use.
  (void)p.predict();
  EXPECT_EQ(p.rebuild_count(), 2u);
}

}  // namespace
