// Randomized (seeded, deterministic) fuzz tests: throw large volumes of
// random-but-valid inputs at the core machinery and check invariants that
// must hold for ANY input — the properties the rest of the system relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/bucket.hpp"
#include "core/exhaustive_bucketing.hpp"
#include "core/greedy_bucketing.hpp"
#include "core/kmeans_bucketing.hpp"
#include "core/quantized_bucketing.hpp"
#include "proto/message.hpp"
#include "util/rng.hpp"

namespace {

using tora::core::BucketSet;
using tora::core::expected_waste;
using tora::core::Record;
using tora::util::Rng;

std::vector<Record> random_records(Rng& rng, std::size_t n) {
  std::vector<Record> recs;
  for (std::size_t i = 0; i < n; ++i) {
    // Mixed scales and duplicates on purpose.
    double v = 0.0;
    switch (rng.uniform_int(0, 2)) {
      case 0: v = rng.uniform(1.0, 100.0); break;
      case 1: v = rng.uniform(1000.0, 2000.0); break;
      default: v = 306.0; break;
    }
    recs.push_back({v, static_cast<double>(i) + 1.0});
  }
  std::sort(recs.begin(), recs.end(),
            [](const Record& a, const Record& b) { return a.value < b.value; });
  return recs;
}

std::vector<std::size_t> random_breaks(Rng& rng, std::size_t n) {
  std::set<std::size_t> ends{n - 1};
  const std::size_t extra = rng.uniform_int(0, std::min<std::size_t>(7, n - 1));
  for (std::size_t i = 0; i < extra; ++i) {
    std::size_t e = rng.uniform_int(0, n - 1);
    // A break must not split a run of equal values (equal reps would
    // violate the strict-increase invariant) — extend through the run.
    ends.insert(e);
  }
  return {ends.begin(), ends.end()};
}

TEST(FuzzBucketSet, RandomConfigurationsKeepInvariants) {
  Rng rng(12345);
  int built = 0;
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t n = rng.uniform_int(1, 60);
    const auto recs = random_records(rng, n);
    auto ends = random_breaks(rng, n);
    // Normalize ends through equal-value runs so the configuration is valid.
    for (auto& e : ends) {
      while (e + 1 < n && recs[e + 1].value == recs[e].value) ++e;
    }
    std::sort(ends.begin(), ends.end());
    ends.erase(std::unique(ends.begin(), ends.end()), ends.end());

    const auto set = BucketSet::from_break_indices(recs, ends);
    ++built;
    double prob = 0.0;
    double prev_rep = -1.0;
    std::size_t covered = 0;
    for (const auto& b : set.buckets()) {
      ASSERT_GT(b.rep, prev_rep);
      ASSERT_GE(b.prob, 0.0);
      ASSERT_LE(b.weighted_mean, b.rep + 1e-9);
      prob += b.prob;
      covered += b.size();
      prev_rep = b.rep;
    }
    ASSERT_NEAR(prob, 1.0, 1e-9);
    ASSERT_EQ(covered, n);
    // The expected waste is finite and non-negative for every config.
    const double w = expected_waste(set);
    ASSERT_GE(w, -1e-9);
    ASSERT_LT(w, 1e9);
  }
  EXPECT_EQ(built, 300);
}

TEST(FuzzBucketingAlgorithms, EveryAlgorithmHandlesRandomStreams) {
  Rng rng(777);
  for (int iter = 0; iter < 40; ++iter) {
    tora::core::GreedyBucketing gb{Rng(rng())};
    tora::core::ExhaustiveBucketing eb{Rng(rng())};
    tora::core::QuantizedBucketing qb{Rng(rng())};
    tora::core::KMeansBucketing km{Rng(rng()), 3};
    const std::size_t n = rng.uniform_int(1, 120);
    Rng values(rng());
    for (std::size_t i = 0; i < n; ++i) {
      const double v = values.uniform(0.5, 5000.0);
      const double sig = static_cast<double>(i) + 1.0;
      gb.observe(v, sig);
      eb.observe(v, sig);
      qb.observe(v, sig);
      km.observe(v, sig);
    }
    const std::vector<tora::core::BucketingPolicy*> policies = {&gb, &eb, &qb,
                                                                &km};
    for (tora::core::BucketingPolicy* p : policies) {
      const auto& set = p->buckets();
      ASSERT_FALSE(set.empty());
      const double alloc = p->predict();
      ASSERT_GT(alloc, 0.0);
      // Retry from every bucket rep escalates or doubles.
      for (const auto& b : set.buckets()) {
        ASSERT_GT(p->retry(b.rep), b.rep);
      }
    }
  }
}

TEST(FuzzProtoDecode, RandomGarbageNeverCrashes) {
  Rng rng(999);
  const char charset[] =
      " abcdefghijklmnopqrstuvwxyz0123456789=%.-\tdispatchreadyresult";
  int decoded = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string line;
    const std::size_t len = rng.uniform_int(0, 120);
    for (std::size_t i = 0; i < len; ++i) {
      line += charset[rng.uniform_int(0, sizeof(charset) - 2)];
    }
    if (tora::proto::decode(line)) ++decoded;  // allowed, just never crash
  }
  // Random garbage almost never parses as a full message.
  EXPECT_LT(decoded, 10);
}

TEST(FuzzProtoRoundTrip, RandomValidMessagesSurvive) {
  Rng rng(31337);
  for (int iter = 0; iter < 500; ++iter) {
    tora::proto::Message m;
    m.type = tora::proto::MsgType::TaskResult;
    m.worker_id = rng.uniform_int(0, 1000);
    m.task_id = rng.uniform_int(0, 1000000);
    m.outcome = rng.bernoulli(0.5)
                    ? tora::proto::Outcome::Success
                    : tora::proto::Outcome::ResourceExhausted;
    m.runtime_s = rng.uniform(0.0, 1e6);
    m.exceeded_mask = static_cast<unsigned>(rng.uniform_int(0, 15));
    m.resources = {rng.uniform(0.0, 64.0), rng.uniform(0.0, 1e6),
                   rng.uniform(0.0, 1e6), rng.uniform(0.0, 1e5)};
    const auto d = tora::proto::decode(tora::proto::encode(m));
    ASSERT_TRUE(d.has_value());
    ASSERT_EQ(*d, m);
  }
}

}  // namespace
