// Crash/recovery equality for the protocol manager: a run with injected
// manager crashes at loss-free crash points must finish in EXACTLY the
// state of the crash-free run — same completion set, same per-category
// waste breakdown, same retry sequences, same chaos counters, same
// allocator internals. The assertion is byte equality of
// ProtocolManager::snapshot_body() (the state fingerprint), which covers
// all of the above at once.

#include "proto/recovery_runtime.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/recovery/crash.hpp"
#include "core/recovery/storage.hpp"
#include "core/registry.hpp"

namespace {

using tora::core::ResourceVector;
using tora::core::TaskSpec;
using tora::core::recovery::CrashSchedule;
using tora::core::recovery::kPumpCrashPoints;
using tora::core::recovery::ManagerCrashPoint;
using tora::core::recovery::MemStorage;
using tora::core::recovery::RecoveryConfig;
using tora::core::recovery::ScheduledCrash;
using tora::proto::ChaosConfig;
using tora::proto::RecoverableProtocolRuntime;
using tora::proto::RecoveryRunResult;

constexpr ResourceVector kCapacity{16.0, 65536.0, 65536.0, 0.0};

std::vector<TaskSpec> mixed_tasks(std::size_t n) {
  std::vector<TaskSpec> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = i;
    t.category = i % 3 == 0 ? "heavy" : "light";
    t.demand = i % 3 == 0 ? ResourceVector{2.0, 3000.0, 200.0}
                          : ResourceVector{1.0, 400.0, 40.0};
    t.duration_s = 10.0 + static_cast<double>(i % 5);
    t.peak_fraction = 0.5;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

RecoverableProtocolRuntime::AllocatorFactory factory(const std::string& policy,
                                                     std::uint64_t seed) {
  return [policy, seed] {
    return std::make_unique<tora::core::TaskAllocator>(
        tora::core::make_allocator(policy, seed, kCapacity));
  };
}

RecoveryRunResult run_once(const std::vector<TaskSpec>& tasks,
                           const std::string& policy,
                           const ChaosConfig& chaos, CrashSchedule crashes,
                           std::size_t snapshot_every = 0) {
  MemStorage storage;
  RecoveryConfig recovery;
  recovery.snapshot_every_ticks = snapshot_every;
  RecoverableProtocolRuntime runtime(tasks, factory(policy, 7), 3, kCapacity,
                                     chaos, storage, recovery,
                                     std::move(crashes));
  return runtime.run();
}

// ------------------------------------------------- loss-free crash points

TEST(RecoveryEquality, EveryPumpCrashPointIsBitExact) {
  const auto tasks = mixed_tasks(12);
  const ChaosConfig clean;
  const RecoveryRunResult baseline =
      run_once(tasks, "greedy_bucketing", clean, CrashSchedule{});
  ASSERT_EQ(baseline.tasks_completed, tasks.size());

  // Clean runs are short (a handful of ticks): schedule all three crashes
  // as "due from tick 1", so they fire on three consecutive passes through
  // the point.
  for (ManagerCrashPoint point : kPumpCrashPoints) {
    CrashSchedule crashes({{1, point}, {1, point}, {1, point}});
    const RecoveryRunResult crashed =
        run_once(tasks, "greedy_bucketing", clean, crashes);
    EXPECT_EQ(crashed.recovery.crashes_injected, 3u)
        << tora::core::recovery::to_string(point);
    EXPECT_EQ(crashed.recovery.recoveries, 3u);
    EXPECT_EQ(crashed.tasks_completed, baseline.tasks_completed);
    EXPECT_EQ(crashed.state_fingerprint, baseline.state_fingerprint)
        << "state diverged after crashes at "
        << tora::core::recovery::to_string(point);
  }
}

TEST(RecoveryEquality, SnapshotRotationCrashPointsAreBitExact) {
  const auto tasks = mixed_tasks(12);
  // Channel chaos stretches the run past several snapshot rotations (clean
  // runs finish in a handful of ticks, before a second rotation happens).
  ChaosConfig chaos;
  chaos.seed = 21;
  chaos.to_manager.drop_prob = 0.08;
  // Same snapshot cadence in both runs; rotation does not change manager
  // state, but keeping the configs identical keeps the comparison honest.
  const RecoveryRunResult baseline =
      run_once(tasks, "exhaustive_bucketing", chaos, CrashSchedule{}, 3);
  ASSERT_GE(baseline.recovery.snapshots_written, 2u);

  CrashSchedule crashes({{3, ManagerCrashPoint::BeforeSnapshotRename},
                         {6, ManagerCrashPoint::AfterSnapshotRename}});
  const RecoveryRunResult crashed =
      run_once(tasks, "exhaustive_bucketing", chaos, crashes, 3);
  EXPECT_EQ(crashed.recovery.recoveries, 2u);
  EXPECT_EQ(crashed.state_fingerprint, baseline.state_fingerprint);
  // BeforeSnapshotRename dies with only a .tmp on disk — recovery came from
  // the PREVIOUS generation, proving a torn snapshot is survivable.
}

TEST(RecoveryEquality, HoldsForEveryPolicyUnderChannelChaos) {
  const auto tasks = mixed_tasks(10);
  ChaosConfig chaos;
  chaos.seed = 99;
  chaos.to_worker.drop_prob = 0.05;
  chaos.to_worker.duplicate_prob = 0.05;
  chaos.to_manager.drop_prob = 0.05;
  chaos.to_manager.corrupt_prob = 0.03;

  // >= 3 crashes at distinct crash points, combined with channel chaos, per
  // the acceptance criteria — for every registered policy.
  // extended_policy_names() covers the seven paper policies plus hybrid,
  // kmeans and change_aware — every registered policy.
  const std::vector<std::string>& policies =
      tora::core::extended_policy_names();
  CrashSchedule crashes({{2, ManagerCrashPoint::AfterDrain},
                         {5, ManagerCrashPoint::PumpEnd},
                         {8, ManagerCrashPoint::AfterLiveness},
                         {12, ManagerCrashPoint::PumpBegin}});
  for (const std::string& policy : policies) {
    const RecoveryRunResult baseline =
        run_once(tasks, policy, chaos, CrashSchedule{}, 5);
    const RecoveryRunResult crashed = run_once(tasks, policy, chaos, crashes, 5);
    EXPECT_EQ(crashed.recovery.recoveries, 4u) << policy;
    EXPECT_EQ(crashed.tasks_completed, baseline.tasks_completed) << policy;
    EXPECT_EQ(crashed.state_fingerprint, baseline.state_fingerprint) << policy;
    // Fingerprint equality subsumes these, but spell out the headline
    // metrics the paper cares about for a readable failure.
    EXPECT_EQ(
        crashed.accounting.breakdown(tora::core::ResourceKind::MemoryMB)
            .total_waste(),
        baseline.accounting.breakdown(tora::core::ResourceKind::MemoryMB)
            .total_waste())
        << policy;
    EXPECT_EQ(crashed.tasks_fatal, baseline.tasks_fatal) << policy;
  }
}

TEST(RecoveryEquality, RepeatedCrashesAtTheSameTickResumeCleanly) {
  // Two crashes scheduled back-to-back: the second fires on the first tick
  // pumped after recovery.
  const auto tasks = mixed_tasks(8);
  const ChaosConfig clean;
  const RecoveryRunResult baseline =
      run_once(tasks, "quantized_bucketing", clean, CrashSchedule{});
  CrashSchedule crashes({{2, ManagerCrashPoint::PumpEnd},
                         {2, ManagerCrashPoint::PumpBegin},
                         {2, ManagerCrashPoint::AfterDrain}});
  const RecoveryRunResult crashed =
      run_once(tasks, "quantized_bucketing", clean, crashes);
  EXPECT_EQ(crashed.recovery.recoveries, 3u);
  EXPECT_EQ(crashed.state_fingerprint, baseline.state_fingerprint);
}

TEST(RecoveryEquality, ResilienceLayerStateIsBitExactAcrossCrashes) {
  // The churn-adaptive resilience layer (histograms, reliability scores,
  // storm window, counters) is part of snapshot_body(), and every decision
  // it takes is a deterministic function of journaled inputs + tick — so a
  // crashed run with the full layer enabled must land on the crash-free
  // fingerprint with NO new journal record types. Channel chaos plus tight
  // liveness windows make the layer actually engage (timeouts, deaths,
  // quarantines feed the trackers) rather than idling behind its
  // churn-evidence gate.
  const auto tasks = mixed_tasks(16);
  ChaosConfig chaos;
  chaos.seed = 17;
  chaos.to_manager.drop_prob = 0.20;
  chaos.to_worker.drop_prob = 0.15;
  chaos.liveness.silence_ticks = 5;
  chaos.liveness.attempt_timeout_ticks = 6;
  chaos.liveness.worker_failure_limit = 2;
  chaos.liveness.resilience.deadlines = true;
  chaos.liveness.resilience.speculation = true;
  chaos.liveness.resilience.reliability = true;
  chaos.liveness.resilience.storm_control = true;
  chaos.liveness.resilience.min_records = 2;
  chaos.liveness.resilience.probation_sentence = 4.0;
  chaos.liveness.resilience.storm_window = 16.0;
  chaos.liveness.resilience.storm_enter = 2;

  const RecoveryRunResult baseline =
      run_once(tasks, "max_seen", chaos, CrashSchedule{}, 4);
  ASSERT_EQ(baseline.tasks_completed + baseline.tasks_fatal, tasks.size());
  // The layer must have actually done something, or this test is vacuous.
  const auto& res = baseline.resilience;
  EXPECT_GT(res.speculations_launched + res.adaptive_deadlines_used +
                res.storms_entered + res.probation_admissions,
            0u);

  CrashSchedule crashes({{2, ManagerCrashPoint::AfterDrain},
                         {3, ManagerCrashPoint::PumpEnd},
                         {4, ManagerCrashPoint::AfterLiveness},
                         {5, ManagerCrashPoint::PumpBegin}});
  const RecoveryRunResult crashed =
      run_once(tasks, "max_seen", chaos, crashes, 4);
  EXPECT_EQ(crashed.recovery.recoveries, 4u);
  EXPECT_EQ(crashed.tasks_completed, baseline.tasks_completed);
  EXPECT_EQ(crashed.state_fingerprint, baseline.state_fingerprint);
  // The resilience counters are inside the fingerprint, but compare them
  // directly too for a readable failure.
  EXPECT_EQ(crashed.resilience, baseline.resilience);
}

// ----------------------------------------------------- loss-prone crashes

TEST(RecoveryRecoverability, BeforeJournalSyncLosesInputsButCompletes) {
  // Crashing before the drain-phase sync throws away polled-but-unsynced
  // messages: not input-identical to the clean run, but the protocol's
  // retry machinery must still finish every task.
  const auto tasks = mixed_tasks(10);
  ChaosConfig chaos;
  chaos.seed = 5;
  chaos.to_manager.drop_prob = 0.05;
  CrashSchedule crashes({{3, ManagerCrashPoint::BeforeJournalSync},
                         {7, ManagerCrashPoint::BeforeJournalSync}});
  const RecoveryRunResult crashed =
      run_once(tasks, "max_seen", chaos, crashes, 4);
  EXPECT_EQ(crashed.recovery.recoveries, 2u);
  EXPECT_EQ(crashed.tasks_completed + crashed.tasks_fatal, tasks.size());
  EXPECT_EQ(crashed.tasks_fatal, 0u);
}

// ------------------------------------------------------------ bookkeeping

TEST(RecoveryCountersReport, JournalAndReplayActivityIsVisible) {
  const auto tasks = mixed_tasks(10);
  const ChaosConfig clean;
  CrashSchedule crashes({{2, ManagerCrashPoint::PumpEnd}});
  const RecoveryRunResult r =
      run_once(tasks, "greedy_bucketing", clean, crashes, 2);
  EXPECT_GT(r.recovery.journal_records, 0u);
  EXPECT_GT(r.recovery.journal_bytes, 0u);
  EXPECT_GT(r.recovery.journal_syncs, 0u);
  EXPECT_GT(r.recovery.snapshots_written, 0u);
  EXPECT_EQ(r.recovery.crashes_injected, 1u);
  EXPECT_EQ(r.recovery.recoveries, 1u);
  EXPECT_GT(r.recovery.records_replayed, 0u);
}

}  // namespace
