#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using tora::util::OnlineStats;

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, MatchesNaiveComputation) {
  const std::vector<double> xs{3.0, 1.5, 8.0, -2.0, 4.25, 4.25, 0.0};
  OnlineStats s;
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), ss / static_cast<double>(xs.size()), 1e-12);
  EXPECT_NEAR(s.sample_variance(), ss / static_cast<double>(xs.size() - 1),
              1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(WeightedMean, Basic) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  const std::vector<double> w{1.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(tora::util::weighted_mean(v, w), (1.0 + 2.0 + 6.0) / 4.0);
}

TEST(WeightedMean, ZeroWeightsGiveZero) {
  const std::vector<double> v{1.0, 2.0};
  const std::vector<double> w{0.0, 0.0};
  EXPECT_EQ(tora::util::weighted_mean(v, w), 0.0);
}

TEST(WeightedMean, EmptyGivesZero) {
  EXPECT_EQ(tora::util::weighted_mean({}, {}), 0.0);
}

TEST(Quantile, SortedInterpolation) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(tora::util::quantile_sorted(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(tora::util::quantile_sorted(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(tora::util::quantile_sorted(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(tora::util::quantile_sorted(xs, 1.0 / 3.0), 20.0);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(tora::util::quantile_sorted(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(tora::util::quantile_sorted(xs, 1.5), 2.0);
}

TEST(Quantile, UnsortedConvenience) {
  EXPECT_DOUBLE_EQ(tora::util::quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
  EXPECT_EQ(tora::util::quantile({}, 0.5), 0.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(tora::util::quantile_sorted(xs, 0.25), 7.0);
}

}  // namespace
