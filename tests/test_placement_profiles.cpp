// Tests for scheduler placement policies (first/best/worst fit) and
// heterogeneous worker profiles.

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "sim/simulation.hpp"
#include "sim/worker_pool.hpp"

namespace {

using tora::core::ResourceVector;
using tora::core::TaskSpec;
using tora::sim::Placement;
using tora::sim::SimConfig;
using tora::sim::Simulation;
using tora::sim::WorkerPool;

constexpr ResourceVector kCap{16.0, 65536.0, 65536.0, 0.0};

TEST(Placement, BestFitPicksTightestWorker) {
  WorkerPool pool(kCap);
  const auto id0 = pool.add_worker();
  const auto id1 = pool.add_worker();
  (void)id0;
  // Load worker 1 so it has less slack.
  pool.worker(id1).start(1, ResourceVector{12.0, 50000.0, 50000.0});
  const ResourceVector alloc{2.0, 1000.0, 1000.0};
  EXPECT_EQ(*pool.find_worker_for(alloc, Placement::BestFit), id1);
  EXPECT_EQ(*pool.find_worker_for(alloc, Placement::WorstFit), id0);
  EXPECT_EQ(*pool.find_worker_for(alloc, Placement::FirstFit), id0);
}

TEST(Placement, BestFitSkipsWorkersThatCannotFit) {
  WorkerPool pool(kCap);
  const auto id0 = pool.add_worker();
  const auto id1 = pool.add_worker();
  pool.worker(id0).start(1, ResourceVector{15.5, 100.0, 100.0});
  // id0 is tighter but cannot fit 2 cores.
  const ResourceVector alloc{2.0, 100.0, 100.0};
  EXPECT_EQ(*pool.find_worker_for(alloc, Placement::BestFit), id1);
}

TEST(Placement, TieBreaksByAscendingId) {
  WorkerPool pool(kCap);
  const auto id0 = pool.add_worker();
  pool.add_worker();
  const ResourceVector alloc{1.0, 1.0, 1.0};
  // Identical slack everywhere: lowest id wins for every policy.
  for (Placement p : {Placement::FirstFit, Placement::BestFit,
                      Placement::WorstFit}) {
    EXPECT_EQ(*pool.find_worker_for(alloc, p), id0);
  }
}

TEST(Profiles, HeterogeneousAddWorker) {
  WorkerPool pool(kCap);
  const ResourceVector small{4.0, 8192.0, 8192.0};
  const auto big = pool.add_worker();
  const auto little = pool.add_worker(small);
  EXPECT_DOUBLE_EQ(pool.worker(big).capacity().cores(), 16.0);
  EXPECT_DOUBLE_EQ(pool.worker(little).capacity().cores(), 4.0);
  // An 8-core allocation only fits the big worker.
  const auto chosen = pool.find_worker_for(ResourceVector{8.0, 100.0, 100.0});
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, big);
}

std::vector<TaskSpec> small_tasks(std::size_t n) {
  std::vector<TaskSpec> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = i;
    t.category = "c";
    t.demand = ResourceVector{1.0, 500.0, 100.0};
    t.duration_s = 10.0;
    t.peak_fraction = 0.5;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

TEST(Profiles, SimulationWithMixedPoolCompletes) {
  const auto tasks = small_tasks(80);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 2);
  SimConfig cfg;
  cfg.churn.enabled = false;
  cfg.churn.initial_workers = 6;
  cfg.worker_profiles = {
      {2.0, ResourceVector{4.0, 8192.0, 8192.0}},
      {1.0, kCap},
  };
  Simulation sim(tasks, alloc, cfg);
  const auto r = sim.run();
  EXPECT_EQ(r.tasks_completed, 80u);
  EXPECT_EQ(r.tasks_fatal, 0u);
}

TEST(Profiles, RejectsNonPositiveWeight) {
  const auto tasks = small_tasks(1);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 2);
  SimConfig cfg;
  cfg.churn.enabled = false;
  cfg.churn.initial_workers = 1;
  cfg.worker_profiles = {{0.0, kCap}};
  EXPECT_THROW(Simulation(tasks, alloc, cfg), std::invalid_argument);
}

TEST(Profiles, DeterministicProfileAssignment) {
  const auto tasks = small_tasks(40);
  SimConfig cfg;
  cfg.churn.enabled = false;
  cfg.churn.initial_workers = 8;
  cfg.seed = 5;
  cfg.worker_profiles = {
      {1.0, ResourceVector{8.0, 16384.0, 16384.0}},
      {1.0, kCap},
  };
  auto a1 = tora::core::make_allocator(tora::core::kMaxSeen, 2);
  auto a2 = tora::core::make_allocator(tora::core::kMaxSeen, 2);
  Simulation s1(tasks, a1, cfg);
  Simulation s2(tasks, a2, cfg);
  const auto r1 = s1.run();
  const auto r2 = s2.run();
  EXPECT_DOUBLE_EQ(r1.makespan_s, r2.makespan_s);
}

TEST(Placement, EndToEndAcrossPlacements) {
  // All three placements complete the same workload with identical
  // ground-truth consumption (placement cannot change what tasks consume).
  const auto tasks = small_tasks(60);
  double consumption[3];
  int i = 0;
  for (Placement p : {Placement::FirstFit, Placement::BestFit,
                      Placement::WorstFit}) {
    auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 2);
    SimConfig cfg;
    cfg.churn.enabled = false;
    cfg.churn.initial_workers = 4;
    cfg.placement = p;
    Simulation sim(tasks, alloc, cfg);
    const auto r = sim.run();
    EXPECT_EQ(r.tasks_completed, 60u);
    consumption[i++] =
        r.accounting.breakdown(tora::core::ResourceKind::MemoryMB).consumption;
  }
  EXPECT_DOUBLE_EQ(consumption[0], consumption[1]);
  EXPECT_DOUBLE_EQ(consumption[1], consumption[2]);
}

}  // namespace
