#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "workloads/colmena.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/topeft.hpp"
#include "workloads/trace.hpp"
#include "workloads/workload.hpp"

namespace {

using tora::core::ResourceKind;
using tora::workloads::Workload;

std::map<std::string, std::size_t> category_counts(const Workload& w) {
  std::map<std::string, std::size_t> counts;
  for (const auto& t : w.tasks) ++counts[t.category];
  return counts;
}

TEST(Workloads, AllNamesGenerate) {
  for (const auto& name : tora::workloads::all_workflow_names()) {
    const Workload w = tora::workloads::make_workload(name, 1);
    EXPECT_EQ(w.name, name);
    EXPECT_FALSE(w.tasks.empty());
  }
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(tora::workloads::make_workload("nope", 1),
               std::invalid_argument);
}

TEST(Workloads, DenseOrderedIds) {
  for (const auto& name : tora::workloads::all_workflow_names()) {
    const Workload w = tora::workloads::make_workload(name, 2);
    for (std::size_t i = 0; i < w.tasks.size(); ++i) {
      ASSERT_EQ(w.tasks[i].id, i) << name;
    }
  }
}

TEST(Workloads, DeterministicUnderSeed) {
  const Workload a = tora::workloads::make_workload("bimodal", 77);
  const Workload b = tora::workloads::make_workload("bimodal", 77);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].demand, b.tasks[i].demand);
    EXPECT_EQ(a.tasks[i].duration_s, b.tasks[i].duration_s);
  }
}

TEST(Workloads, SeedsChangeContent) {
  const Workload a = tora::workloads::make_workload("normal", 1);
  const Workload b = tora::workloads::make_workload("normal", 2);
  bool differs = false;
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    differs |= !(a.tasks[i].demand == b.tasks[i].demand);
  }
  EXPECT_TRUE(differs);
}

TEST(Workloads, SyntheticHas1000TasksOneCategory) {
  for (const char* name : {"normal", "uniform", "exponential", "bimodal",
                           "trimodal"}) {
    const Workload w = tora::workloads::make_workload(name, 3);
    EXPECT_EQ(w.tasks.size(), 1000u) << name;
    EXPECT_EQ(category_counts(w).size(), 1u) << name;
  }
}

TEST(Workloads, DemandsWithinWorkerCapacity) {
  const tora::core::ResourceVector cap{16.0, 65536.0, 65536.0, 0.0};
  for (const auto& name : tora::workloads::all_workflow_names()) {
    const Workload w = tora::workloads::make_workload(name, 4);
    for (const auto& t : w.tasks) {
      ASSERT_TRUE(t.demand.fits_within(cap))
          << name << " task " << t.id << " demand " << t.demand;
      ASSERT_GT(t.demand.cores(), 0.0);
      ASSERT_GT(t.demand.memory_mb(), 0.0);
      ASSERT_GT(t.demand.disk_mb(), 0.0);
      ASSERT_GT(t.duration_s, 0.0);
      ASSERT_GT(t.peak_fraction, 0.0);
      ASSERT_LE(t.peak_fraction, 1.0);
    }
  }
}

TEST(Workloads, TrimodalPhasesMoveNonMonotonically) {
  // Phases are high -> low -> mid (see synthetic.cpp): the moving
  // distribution that punishes global-max anchoring.
  const Workload w = tora::workloads::make_workload("trimodal", 5);
  double m1 = 0, m2 = 0, m3 = 0;
  for (std::size_t i = 0; i < 333; ++i) {
    m1 += w.tasks[i].demand.memory_mb();
  }
  for (std::size_t i = 334; i < 666; ++i) {
    m2 += w.tasks[i].demand.memory_mb();
  }
  for (std::size_t i = 667; i < 1000; ++i) {
    m3 += w.tasks[i].demand.memory_mb();
  }
  EXPECT_GT(m1 / 333, m3 / 333);  // high > mid
  EXPECT_LT(m2 / 332, m3 / 333);  // low < mid
}

TEST(Workloads, BimodalHasTwoMemoryClusters) {
  const Workload w = tora::workloads::make_workload("bimodal", 6);
  std::size_t low = 0, high = 0, mid = 0;
  for (const auto& t : w.tasks) {
    const double m = t.demand.memory_mb();
    if (m < 3500.0) ++low;
    else if (m > 4500.0) ++high;
    else ++mid;
  }
  EXPECT_GT(low, 300u);
  EXPECT_GT(high, 300u);
  EXPECT_LT(mid, 100u);
}

TEST(Workloads, ExponentialHasOutliers) {
  const Workload w = tora::workloads::make_workload("exponential", 7);
  double max_mem = 0.0, sum = 0.0;
  for (const auto& t : w.tasks) {
    max_mem = std::max(max_mem, t.demand.memory_mb());
    sum += t.demand.memory_mb();
  }
  const double mean = sum / static_cast<double>(w.tasks.size());
  EXPECT_GT(max_mem, 4.0 * mean);  // a genuine long tail
}

TEST(Workloads, ColmenaStructure) {
  const Workload w = tora::workloads::make_workload("colmena_xtb", 8);
  const auto counts = category_counts(w);
  EXPECT_EQ(counts.at("evaluate_mpnn"), 228u);
  EXPECT_EQ(counts.at("compute_atomization_energy"), 1000u);
  // Phasing: all evaluate_mpnn tasks come first.
  for (std::size_t i = 0; i < 228; ++i) {
    ASSERT_EQ(w.tasks[i].category, "evaluate_mpnn");
  }
  for (std::size_t i = 228; i < w.tasks.size(); ++i) {
    ASSERT_EQ(w.tasks[i].category, "compute_atomization_energy");
  }
}

TEST(Workloads, ColmenaResourceBands) {
  const Workload w = tora::workloads::make_workload("colmena_xtb", 9);
  for (const auto& t : w.tasks) {
    if (t.category == "evaluate_mpnn") {
      EXPECT_GE(t.demand.memory_mb(), 1000.0);
      EXPECT_LE(t.demand.memory_mb(), 1200.0);
    } else {
      EXPECT_LT(t.demand.memory_mb(), 400.0);
      EXPECT_GE(t.demand.cores(), 0.9);
      EXPECT_LE(t.demand.cores(), 3.6);
    }
    // Tiny disk footprint (~10 MB) for every task.
    EXPECT_LT(t.demand.disk_mb(), 20.0);
  }
}

TEST(Workloads, TopEFTStructure) {
  const Workload w = tora::workloads::make_workload("topeft", 10);
  const auto counts = category_counts(w);
  EXPECT_EQ(counts.at("preprocessing"), 363u);
  EXPECT_EQ(counts.at("processing"), 3994u);
  EXPECT_EQ(counts.at("accumulating"), 212u);
  EXPECT_EQ(w.tasks.size(), 363u + 3994u + 212u);
  // Preprocessing strictly first.
  for (std::size_t i = 0; i < 363; ++i) {
    ASSERT_EQ(w.tasks[i].category, "preprocessing");
  }
}

TEST(Workloads, TopEFTConstantDisk) {
  const Workload w = tora::workloads::make_workload("topeft", 11);
  for (const auto& t : w.tasks) {
    ASSERT_DOUBLE_EQ(t.demand.disk_mb(), 306.0);
  }
}

TEST(Workloads, TopEFTProcessingMemoryBimodal) {
  const Workload w = tora::workloads::make_workload("topeft", 12);
  std::size_t low = 0, high = 0;
  for (const auto& t : w.tasks) {
    if (t.category != "processing") continue;
    if (t.demand.memory_mb() < 520.0) ++low;
    else ++high;
  }
  EXPECT_GT(low, 1000u);
  EXPECT_GT(high, 1000u);
}

TEST(Workloads, TopEFTCoreOutliers) {
  const Workload w = tora::workloads::make_workload("topeft", 13);
  std::size_t small = 0, outliers = 0;
  for (const auto& t : w.tasks) {
    if (t.demand.cores() <= 1.05) ++small;
    if (t.demand.cores() > 1.2) ++outliers;
  }
  EXPECT_GT(small, w.tasks.size() * 8 / 10);
  EXPECT_GT(outliers, 50u);
}

TEST(Workloads, SyntheticSpecValidation) {
  tora::workloads::SyntheticSpec empty;
  empty.name = "empty";
  EXPECT_THROW(tora::workloads::generate_synthetic(empty, 1),
               std::invalid_argument);
  tora::workloads::SyntheticSpec null_dist;
  null_dist.name = "bad";
  null_dist.phases.push_back({});
  EXPECT_THROW(tora::workloads::generate_synthetic(null_dist, 1),
               std::invalid_argument);
}

// ------------------------------------------------------------------ trace

TEST(Trace, RoundTrip) {
  const Workload w = tora::workloads::make_workload("topeft", 14);
  std::stringstream buf;
  tora::workloads::write_trace(buf, w);
  const Workload r = tora::workloads::read_trace(buf, w.name);
  ASSERT_EQ(r.tasks.size(), w.tasks.size());
  for (std::size_t i = 0; i < w.tasks.size(); ++i) {
    EXPECT_EQ(r.tasks[i].category, w.tasks[i].category);
    EXPECT_DOUBLE_EQ(r.tasks[i].demand.cores(), w.tasks[i].demand.cores());
    EXPECT_DOUBLE_EQ(r.tasks[i].demand.memory_mb(),
                     w.tasks[i].demand.memory_mb());
    EXPECT_DOUBLE_EQ(r.tasks[i].duration_s, w.tasks[i].duration_s);
    EXPECT_DOUBLE_EQ(r.tasks[i].peak_fraction, w.tasks[i].peak_fraction);
  }
}

TEST(Trace, RejectsMalformedInput) {
  std::stringstream no_header("1,2,3\n");
  EXPECT_THROW(tora::workloads::read_trace(no_header), std::invalid_argument);
  std::stringstream bad_field(
      "id,category,cores,memory_mb,disk_mb,duration_s,peak_fraction\n"
      "0,c,abc,1,1,1,0.5\n");
  EXPECT_THROW(tora::workloads::read_trace(bad_field), std::invalid_argument);
  std::stringstream bad_id(
      "id,category,cores,memory_mb,disk_mb,duration_s,peak_fraction\n"
      "5,c,1,1,1,1,0.5\n");
  EXPECT_THROW(tora::workloads::read_trace(bad_id), std::invalid_argument);
}

}  // namespace
