// Differential property test for the incremental bucketing engine.
//
// A reference engine replays the original implementation's structure —
// per-observation sorted insertion into an AoS record vector and a full
// bucket rebuild before every use — while the production BucketingPolicy
// runs the merge-buffer RecordStore. At the default k = 1 schedule the two
// must agree BITWISE on every break index, bucket field, and RNG draw for
// arbitrary interleavings of observe / predict / retry / checkpoint-restore,
// for all four bucketing policies. The scheduled (growth > 0) leg relaxes
// the per-draw comparison and checks that a forced flush converges to the
// reference configuration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/bucket.hpp"
#include "core/bucketing_policy.hpp"
#include "core/exhaustive_bucketing.hpp"
#include "core/greedy_bucketing.hpp"
#include "core/kmeans_bucketing.hpp"
#include "core/quantized_bucketing.hpp"
#include "core/record.hpp"
#include "core/record_store.hpp"

namespace {

using tora::core::BucketingPolicy;
using tora::core::BucketSet;
using tora::core::ExhaustiveBucketing;
using tora::core::GreedyBucketing;
using tora::core::KMeansBucketing;
using tora::core::QuantizedBucketing;
using tora::core::Record;
using tora::core::SortedRecords;
using tora::util::Rng;

using PolicyFactory = std::function<std::unique_ptr<BucketingPolicy>(Rng)>;

/// Replays the pre-incremental implementation: AoS records kept sorted by
/// per-observation insertion, full prefix-sum + bucket rebuild whenever the
/// set is dirty. Break indices come from a scratch policy instance of the
/// same concrete type (break computation consumes no sampler state).
class ReferenceEngine {
 public:
  ReferenceEngine(std::uint64_t sampler_seed, BucketingPolicy& break_oracle)
      : rng_(sampler_seed), oracle_(break_oracle) {}

  void observe(double value, double significance) {
    const auto pos = std::upper_bound(
        records_.begin(), records_.end(), value,
        [](double v, const Record& r) { return v < r.value; });
    records_.insert(pos, {value, significance});
    dirty_ = true;
  }

  const BucketSet& buckets() {
    if (dirty_ || !built_) rebuild();
    return set_;
  }

  double predict() { return buckets().sample_allocation(rng_); }

  double retry(double failed_alloc) {
    if (!records_.empty()) {
      if (auto higher = buckets().sample_above(failed_alloc, rng_)) {
        return *higher;
      }
    }
    return failed_alloc > 0.0 ? failed_alloc * 2.0 : 1.0;
  }

 private:
  void rebuild() {
    const std::size_t n = records_.size();
    values_.resize(n);
    sigs_.resize(n);
    sig_prefix_.assign(n + 1, 0.0);
    vsig_prefix_.assign(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      values_[i] = records_[i].value;
      sigs_[i] = records_[i].significance;
      sig_prefix_[i + 1] = sig_prefix_[i] + sigs_[i];
      vsig_prefix_[i + 1] = vsig_prefix_[i] + values_[i] * sigs_[i];
    }
    const SortedRecords view{values_, sigs_, sig_prefix_, vsig_prefix_};
    const auto ends = oracle_.break_indices(view);
    set_ = BucketSet::from_break_indices(records_, ends);
    dirty_ = false;
    built_ = true;
  }

  Rng rng_;
  BucketingPolicy& oracle_;
  std::vector<Record> records_;
  std::vector<double> values_, sigs_, sig_prefix_, vsig_prefix_;
  BucketSet set_;
  bool dirty_ = false;
  bool built_ = false;
};

void expect_identical_sets(const BucketSet& got, const BucketSet& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const auto& g = got.buckets()[i];
    const auto& w = want.buckets()[i];
    EXPECT_EQ(g.begin, w.begin) << "bucket " << i;
    EXPECT_EQ(g.end, w.end) << "bucket " << i;
    EXPECT_EQ(g.rep, w.rep) << "bucket " << i;          // bitwise
    EXPECT_EQ(g.prob, w.prob) << "bucket " << i;        // bitwise
    EXPECT_EQ(g.weighted_mean, w.weighted_mean) << "bucket " << i;
    EXPECT_EQ(g.sig_sum, w.sig_sum) << "bucket " << i;
  }
}

/// Random interleavings of observe / predict / retry / checkpoint-restore.
/// Every sampled value must match the reference engine bitwise.
void run_differential(const PolicyFactory& make, std::uint64_t seed) {
  const std::uint64_t sampler_seed = 0xb0cce7 + seed;
  std::unique_ptr<BucketingPolicy> engine = make(Rng(sampler_seed));
  std::unique_ptr<BucketingPolicy> oracle = make(Rng(999));  // rng unused
  ReferenceEngine ref(sampler_seed, *oracle);

  Rng ops(seed);
  std::vector<std::pair<double, double>> arrivals;  // original order
  double significance = 1.0;

  for (int step = 0; step < 400; ++step) {
    const double roll = ops.uniform01();
    if (arrivals.empty() || roll < 0.45) {
      double value = ops.uniform(0.0, 100.0);
      if (!arrivals.empty() && ops.uniform01() < 0.2) {
        // Exact duplicate of an earlier value: ties must merge identically.
        const auto idx = static_cast<std::size_t>(
            ops.uniform(0.0, static_cast<double>(arrivals.size())));
        value = arrivals[std::min(idx, arrivals.size() - 1)].first;
      }
      engine->observe(value, significance);
      ref.observe(value, significance);
      arrivals.emplace_back(value, significance);
      significance += 1.0;
    } else if (roll < 0.75) {
      ASSERT_EQ(engine->predict(), ref.predict()) << "step " << step;
    } else if (roll < 0.95) {
      const double failed = ops.uniform(0.0, 120.0);
      ASSERT_EQ(engine->retry(failed), ref.retry(failed)) << "step " << step;
    } else {
      // Checkpoint-restore: rebuild a fresh engine from the serialized
      // sampler state plus a replay of the completion history, exactly as
      // the checkpoint and recovery-snapshot paths do.
      const std::string state = engine->sampler_state();
      std::unique_ptr<BucketingPolicy> fresh = make(Rng(7777));
      for (const auto& [v, s] : arrivals) fresh->observe(v, s);
      fresh->flush_observations();
      fresh->restore_sampler_state(state);
      engine = std::move(fresh);
    }
  }
  if (!arrivals.empty()) {
    expect_identical_sets(engine->fresh_buckets(), ref.buckets());
  }
}

/// growth > 0: predictions may lawfully serve stale buckets mid-epoch, but
/// a forced flush must converge to the reference configuration, since both
/// engines hold the same record multiset.
void run_scheduled(const PolicyFactory& make, std::uint64_t seed) {
  std::unique_ptr<BucketingPolicy> engine = make(Rng(1 + seed));
  std::unique_ptr<BucketingPolicy> oracle = make(Rng(999));
  ReferenceEngine ref(1 + seed, *oracle);
  engine->set_rebuild_schedule({0.5});

  Rng ops(seed * 31 + 7);
  double significance = 1.0;
  for (int step = 0; step < 300; ++step) {
    const double value = ops.uniform(0.0, 100.0);
    engine->observe(value, significance);
    ref.observe(value, significance);
    significance += 1.0;
    if (step % 3 == 0) (void)engine->predict();  // exercise the stale path
  }
  EXPECT_LT(engine->rebuild_count(), 50u);  // the schedule actually amortized
  expect_identical_sets(engine->fresh_buckets(), ref.buckets());
}

PolicyFactory greedy_factory() {
  return [](Rng rng) { return std::make_unique<GreedyBucketing>(rng); };
}
PolicyFactory exhaustive_factory() {
  return [](Rng rng) { return std::make_unique<ExhaustiveBucketing>(rng); };
}
PolicyFactory kmeans_factory() {
  return [](Rng rng) { return std::make_unique<KMeansBucketing>(rng, 4); };
}
PolicyFactory quantized_factory() {
  return [](Rng rng) {
    return std::make_unique<QuantizedBucketing>(
        rng, std::vector<double>{0.25, 0.5, 0.75});
  };
}

TEST(IncrementalBucketing, GreedyMatchesReference) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    run_differential(greedy_factory(), seed);
  }
}

TEST(IncrementalBucketing, ExhaustiveMatchesReference) {
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    run_differential(exhaustive_factory(), seed);
  }
}

TEST(IncrementalBucketing, KMeansMatchesReference) {
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    run_differential(kmeans_factory(), seed);
  }
}

TEST(IncrementalBucketing, QuantizedMatchesReference) {
  for (std::uint64_t seed : {41u, 42u, 43u}) {
    run_differential(quantized_factory(), seed);
  }
}

TEST(IncrementalBucketing, GreedyFaithfulCostModelMatchesReference) {
  PolicyFactory make = [](Rng rng) {
    return std::make_unique<GreedyBucketing>(
        rng, GreedyBucketing::CostModel::Faithful);
  };
  run_differential(make, 51);
}

TEST(IncrementalBucketing, ScheduledModeConvergesOnFlush) {
  run_scheduled(greedy_factory(), 61);
  run_scheduled(exhaustive_factory(), 62);
  run_scheduled(kmeans_factory(), 63);
  run_scheduled(quantized_factory(), 64);
}

}  // namespace
