// Tests for the policy registry: name resolution, per-resource parameters,
// options plumbing, and family-specific exploration configs.

#include "core/registry.hpp"

#include <gtest/gtest.h>

#include "core/exhaustive_bucketing.hpp"
#include "core/hybrid.hpp"
#include "core/kmeans_bucketing.hpp"
#include "core/max_seen.hpp"
#include "core/quantized_bucketing.hpp"
#include "core/whole_machine.hpp"

namespace {

using tora::core::AllocatorConfig;
using tora::core::make_policy_factory;
using tora::core::RegistryOptions;
using tora::core::ResourceKind;

TEST(Registry, PaperOrderIsStable) {
  const auto& names = tora::core::all_policy_names();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names[0], "whole_machine");
  EXPECT_EQ(names[1], "max_seen");
  EXPECT_EQ(names[2], "min_waste");
  EXPECT_EQ(names[3], "max_throughput");
  EXPECT_EQ(names[4], "quantized_bucketing");
  EXPECT_EQ(names[5], "greedy_bucketing");
  EXPECT_EQ(names[6], "exhaustive_bucketing");
}

TEST(Registry, ExtendedNamesSupersetOfPaper) {
  const auto& paper = tora::core::all_policy_names();
  const auto& ext = tora::core::extended_policy_names();
  EXPECT_GT(ext.size(), paper.size());
  for (const auto& p : paper) {
    EXPECT_NE(std::find(ext.begin(), ext.end(), p), ext.end()) << p;
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_policy_factory("nope", 1), std::invalid_argument);
  EXPECT_THROW(tora::core::make_allocator("nope", 1), std::invalid_argument);
}

TEST(Registry, MaxSeenWidthDependsOnResource) {
  auto factory = make_policy_factory("max_seen", 1);
  AllocatorConfig cfg;
  auto cores = factory(ResourceKind::Cores, cfg);
  auto mem = factory(ResourceKind::MemoryMB, cfg);
  EXPECT_DOUBLE_EQ(dynamic_cast<tora::core::MaxSeenPolicy&>(*cores)
                       .bucket_width(), 1.0);
  EXPECT_DOUBLE_EQ(dynamic_cast<tora::core::MaxSeenPolicy&>(*mem)
                       .bucket_width(), 250.0);
}

TEST(Registry, MaxSeenWidthOptionPlumbed) {
  RegistryOptions opts;
  opts.max_seen_bucket_mb = 100.0;
  opts.max_seen_bucket_cores = 2.0;
  auto factory = make_policy_factory("max_seen", 1, opts);
  AllocatorConfig cfg;
  EXPECT_DOUBLE_EQ(dynamic_cast<tora::core::MaxSeenPolicy&>(
                       *factory(ResourceKind::DiskMB, cfg))
                       .bucket_width(), 100.0);
  EXPECT_DOUBLE_EQ(dynamic_cast<tora::core::MaxSeenPolicy&>(
                       *factory(ResourceKind::Cores, cfg))
                       .bucket_width(), 2.0);
}

TEST(Registry, WholeMachineCapacityPerResource) {
  auto factory = make_policy_factory("whole_machine", 1);
  AllocatorConfig cfg;
  cfg.worker_capacity = {8.0, 32768.0, 16384.0, 0.0};
  EXPECT_DOUBLE_EQ(dynamic_cast<tora::core::WholeMachinePolicy&>(
                       *factory(ResourceKind::Cores, cfg))
                       .capacity(), 8.0);
  EXPECT_DOUBLE_EQ(dynamic_cast<tora::core::WholeMachinePolicy&>(
                       *factory(ResourceKind::MemoryMB, cfg))
                       .capacity(), 32768.0);
}

TEST(Registry, ExhaustiveCapOptionPlumbed) {
  RegistryOptions opts;
  opts.exhaustive_max_buckets = 4;
  auto factory = make_policy_factory("exhaustive_bucketing", 1, opts);
  AllocatorConfig cfg;
  EXPECT_EQ(dynamic_cast<tora::core::ExhaustiveBucketing&>(
                *factory(ResourceKind::Cores, cfg))
                .max_buckets(), 4u);
}

TEST(Registry, QuantizedQuantilesPlumbed) {
  RegistryOptions opts;
  opts.quantized_quantiles = {0.25, 0.75};
  auto factory = make_policy_factory("quantized_bucketing", 1, opts);
  AllocatorConfig cfg;
  EXPECT_EQ(dynamic_cast<tora::core::QuantizedBucketing&>(
                *factory(ResourceKind::Cores, cfg))
                .quantiles(), (std::vector<double>{0.25, 0.75}));
}

TEST(Registry, KMeansClustersPlumbed) {
  RegistryOptions opts;
  opts.kmeans_clusters = 5;
  auto factory = make_policy_factory("kmeans_bucketing", 1, opts);
  AllocatorConfig cfg;
  EXPECT_EQ(dynamic_cast<tora::core::KMeansBucketing&>(
                *factory(ResourceKind::Cores, cfg))
                .k(), 5u);
}

TEST(Registry, HybridSwitchPlumbed) {
  RegistryOptions opts;
  opts.hybrid_switch_records = 7;
  auto factory = make_policy_factory("hybrid_bucketing", 1, opts);
  AllocatorConfig cfg;
  EXPECT_EQ(dynamic_cast<tora::core::HybridPolicy&>(
                *factory(ResourceKind::Cores, cfg))
                .switch_after(), 7u);
}

TEST(Registry, BucketingFamilyClassification) {
  EXPECT_TRUE(tora::core::is_bucketing_family("greedy_bucketing"));
  EXPECT_TRUE(tora::core::is_bucketing_family("exhaustive_bucketing"));
  EXPECT_TRUE(tora::core::is_bucketing_family("hybrid_bucketing"));
  EXPECT_TRUE(tora::core::is_bucketing_family("kmeans_bucketing"));
  EXPECT_TRUE(tora::core::is_bucketing_family("change_aware_bucketing"));
  EXPECT_FALSE(tora::core::is_bucketing_family("whole_machine"));
  EXPECT_FALSE(tora::core::is_bucketing_family("max_seen"));
  EXPECT_FALSE(tora::core::is_bucketing_family("min_waste"));
  EXPECT_FALSE(tora::core::is_bucketing_family("max_throughput"));
  EXPECT_FALSE(tora::core::is_bucketing_family("quantized_bucketing"));
}

TEST(Registry, ExplorationConfigPerFamily) {
  // Bucketing family: conservative fixed default + 10 records (paper §V-A);
  // comparison algorithms: whole machine + 1 record (§V-C).
  auto bucketing = tora::core::make_allocator("exhaustive_bucketing", 1);
  EXPECT_EQ(bucketing.config().exploration.mode,
            tora::core::ExplorationConfig::Mode::FixedDefault);
  EXPECT_EQ(bucketing.config().exploration.min_records, 10u);
  auto baseline = tora::core::make_allocator("min_waste", 1);
  EXPECT_EQ(baseline.config().exploration.mode,
            tora::core::ExplorationConfig::Mode::WholeMachine);
  EXPECT_EQ(baseline.config().exploration.min_records, 1u);
}

TEST(Registry, ExplorationOptionsPlumbed) {
  RegistryOptions opts;
  opts.exploration_min_records = 25;
  opts.exploration_default = {2.0, 2048.0, 512.0, 0.0};
  auto a = tora::core::make_allocator("greedy_bucketing", 1,
                                      {16.0, 65536.0, 65536.0, 0.0}, opts);
  EXPECT_EQ(a.config().exploration.min_records, 25u);
  const auto alloc = a.allocate("c");
  EXPECT_DOUBLE_EQ(alloc.cores(), 2.0);
  EXPECT_DOUBLE_EQ(alloc.memory_mb(), 2048.0);
  EXPECT_DOUBLE_EQ(alloc.disk_mb(), 512.0);
}

TEST(Registry, PoliciesFromSameSeedAreIndependentStreams) {
  // Two instances created by the same factory must not mirror each other's
  // random choices (they get split child streams).
  auto factory = make_policy_factory("quantized_bucketing", 42);
  AllocatorConfig cfg;
  auto a = factory(ResourceKind::Cores, cfg);
  auto b = factory(ResourceKind::Cores, cfg);
  for (int i = 0; i < 40; ++i) {
    a->observe(i < 20 ? 1.0 : 100.0, i + 1.0);
    b->observe(i < 20 ? 1.0 : 100.0, i + 1.0);
  }
  int same = 0;
  for (int i = 0; i < 200; ++i) {
    if (a->predict() == b->predict()) ++same;
  }
  EXPECT_LT(same, 150);  // identical streams would match all 200
}

}  // namespace
