#include "sim/worker.hpp"

#include <gtest/gtest.h>

#include "sim/worker_pool.hpp"

namespace {

using tora::core::ResourceVector;
using tora::sim::Worker;
using tora::sim::WorkerPool;

constexpr ResourceVector kCap{16.0, 65536.0, 65536.0, 0.0};

TEST(Worker, StartsEmpty) {
  const Worker w(0, kCap);
  EXPECT_EQ(w.running_count(), 0u);
  EXPECT_TRUE(w.can_fit(kCap));
  EXPECT_DOUBLE_EQ(w.free().cores(), 16.0);
}

TEST(Worker, CommitAndRelease) {
  Worker w(0, kCap);
  const ResourceVector a{4.0, 1000.0, 1000.0};
  w.start(1, a);
  EXPECT_EQ(w.running_count(), 1u);
  EXPECT_DOUBLE_EQ(w.free().cores(), 12.0);
  w.start(2, a);
  EXPECT_DOUBLE_EQ(w.free().cores(), 8.0);
  w.finish(1, a);
  EXPECT_DOUBLE_EQ(w.free().cores(), 12.0);
  w.finish(2, a);
  EXPECT_EQ(w.running_count(), 0u);
}

TEST(Worker, RejectsOvercommit) {
  Worker w(0, kCap);
  w.start(1, ResourceVector{10.0, 1000.0, 1000.0});
  EXPECT_FALSE(w.can_fit(ResourceVector{7.0, 100.0, 100.0}));
  EXPECT_THROW(w.start(2, ResourceVector{7.0, 100.0, 100.0}),
               std::logic_error);
}

TEST(Worker, RejectsDuplicateTask) {
  Worker w(0, kCap);
  w.start(1, ResourceVector{1.0, 1.0, 1.0});
  EXPECT_THROW(w.start(1, ResourceVector{1.0, 1.0, 1.0}), std::logic_error);
}

TEST(Worker, RejectsUnknownFinish) {
  Worker w(0, kCap);
  EXPECT_THROW(w.finish(9, ResourceVector{1.0, 1.0, 1.0}), std::logic_error);
}

TEST(Worker, ExactFitIsAllowed) {
  Worker w(0, kCap);
  w.start(1, kCap);
  EXPECT_FALSE(w.can_fit(ResourceVector{0.1, 0.0, 0.0}));
  w.finish(1, kCap);
  EXPECT_TRUE(w.can_fit(kCap));
}

TEST(Worker, RejectsNonPositiveCapacity) {
  EXPECT_THROW(Worker(0, ResourceVector{0.0, 1.0, 1.0}), std::invalid_argument);
}

TEST(Worker, DrainingFlag) {
  Worker w(0, kCap);
  EXPECT_FALSE(w.draining());
  w.set_draining(true);
  EXPECT_TRUE(w.draining());
}

// ------------------------------------------------------------ WorkerPool

TEST(WorkerPool, AddAndRemove) {
  WorkerPool pool(kCap);
  const auto id0 = pool.add_worker();
  const auto id1 = pool.add_worker();
  EXPECT_NE(id0, id1);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_TRUE(pool.alive(id0));
  pool.remove_worker(id0);
  EXPECT_FALSE(pool.alive(id0));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(WorkerPool, IdsNeverReused) {
  WorkerPool pool(kCap);
  const auto id0 = pool.add_worker();
  pool.remove_worker(id0);
  const auto id1 = pool.add_worker();
  EXPECT_NE(id0, id1);
}

TEST(WorkerPool, RemoveReturnsRunningTasks) {
  WorkerPool pool(kCap);
  const auto id = pool.add_worker();
  pool.worker(id).start(5, ResourceVector{1.0, 1.0, 1.0});
  pool.worker(id).start(6, ResourceVector{1.0, 1.0, 1.0});
  const auto victims = pool.remove_worker(id);
  EXPECT_EQ(victims.size(), 2u);
}

TEST(WorkerPool, FirstFitIsDeterministic) {
  WorkerPool pool(kCap);
  const auto id0 = pool.add_worker();
  const auto id1 = pool.add_worker();
  (void)id1;
  const auto chosen = pool.find_worker_for(ResourceVector{1.0, 1.0, 1.0});
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, id0);
}

TEST(WorkerPool, FirstFitSkipsFullWorkers) {
  WorkerPool pool(kCap);
  const auto id0 = pool.add_worker();
  const auto id1 = pool.add_worker();
  pool.worker(id0).start(1, kCap);
  const auto chosen = pool.find_worker_for(ResourceVector{1.0, 1.0, 1.0});
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, id1);
}

TEST(WorkerPool, FirstFitSkipsDraining) {
  WorkerPool pool(kCap);
  const auto id0 = pool.add_worker();
  const auto id1 = pool.add_worker();
  pool.worker(id0).set_draining(true);
  const auto chosen = pool.find_worker_for(ResourceVector{1.0, 1.0, 1.0});
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, id1);
}

TEST(WorkerPool, NoFitReturnsNullopt) {
  WorkerPool pool(kCap);
  EXPECT_FALSE(pool.find_worker_for(ResourceVector{1.0, 1.0, 1.0}).has_value());
  const auto id = pool.add_worker();
  pool.worker(id).start(1, kCap);
  EXPECT_FALSE(pool.find_worker_for(ResourceVector{1.0, 1.0, 1.0}).has_value());
}

TEST(WorkerPool, RunningAttemptsAggregates) {
  WorkerPool pool(kCap);
  const auto id0 = pool.add_worker();
  const auto id1 = pool.add_worker();
  pool.worker(id0).start(1, ResourceVector{1.0, 1.0, 1.0});
  pool.worker(id1).start(2, ResourceVector{1.0, 1.0, 1.0});
  pool.worker(id1).start(3, ResourceVector{1.0, 1.0, 1.0});
  EXPECT_EQ(pool.running_attempts(), 3u);
}

TEST(WorkerPool, UnknownWorkerThrows) {
  WorkerPool pool(kCap);
  EXPECT_THROW(pool.worker(99), std::logic_error);
  EXPECT_THROW(pool.remove_worker(99), std::logic_error);
}

}  // namespace
