#include "core/kmeans_bucketing.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/registry.hpp"

namespace {

using tora::core::KMeansBucketing;
using tora::core::Record;
using tora::util::Rng;

std::vector<Record> uniform_records(std::initializer_list<double> values) {
  std::vector<Record> r;
  for (double v : values) r.push_back({v, 1.0});
  return r;
}

TEST(KMeansBucketing, ValidatesConstruction) {
  EXPECT_THROW(KMeansBucketing(Rng(1), 0), std::invalid_argument);
  EXPECT_THROW(KMeansBucketing(Rng(1), 2, 0), std::invalid_argument);
}

TEST(KMeansBucketing, SingleClusterIsOneBucket) {
  const auto recs = uniform_records({1.0, 2.0, 3.0});
  const auto ends = KMeansBucketing::cluster_ends(recs, 1, 64);
  EXPECT_EQ(ends, (std::vector<std::size_t>{2}));
}

TEST(KMeansBucketing, ConstantValuesCollapse) {
  const auto recs = uniform_records({5.0, 5.0, 5.0, 5.0});
  const auto ends = KMeansBucketing::cluster_ends(recs, 3, 64);
  EXPECT_EQ(ends, (std::vector<std::size_t>{3}));
}

TEST(KMeansBucketing, SeparatesTwoCleanClusters) {
  const auto recs =
      uniform_records({1.0, 1.1, 1.2, 1.3, 100.0, 100.1, 100.2, 100.3});
  const auto ends = KMeansBucketing::cluster_ends(recs, 2, 64);
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[0], 3u);  // exactly at the cluster boundary
  EXPECT_EQ(ends[1], 7u);
}

TEST(KMeansBucketing, ThreeClusters) {
  const auto recs = uniform_records(
      {1.0, 1.2, 50.0, 50.5, 51.0, 100.0, 100.5});
  const auto ends = KMeansBucketing::cluster_ends(recs, 3, 64);
  ASSERT_EQ(ends.size(), 3u);
  EXPECT_EQ(ends[0], 1u);
  EXPECT_EQ(ends[1], 4u);
  EXPECT_EQ(ends[2], 6u);
}

TEST(KMeansBucketing, KAboveRecordCountClamps) {
  const auto recs = uniform_records({1.0, 10.0});
  const auto ends = KMeansBucketing::cluster_ends(recs, 8, 64);
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[0], 0u);
  EXPECT_EQ(ends[1], 1u);
}

TEST(KMeansBucketing, NeverSplitsEqualValueRuns) {
  const auto recs = uniform_records({1.0, 5.0, 5.0, 5.0, 5.0, 5.0});
  for (std::size_t k = 1; k <= 6; ++k) {
    const auto ends = KMeansBucketing::cluster_ends(recs, k, 64);
    // Reps must be strictly increasing: at most {0, 5}.
    ASSERT_LE(ends.size(), 2u) << "k=" << k;
    EXPECT_EQ(ends.back(), 5u);
    if (ends.size() == 2) EXPECT_EQ(ends[0], 0u);
  }
}

TEST(KMeansBucketing, PolicyIntegration) {
  KMeansBucketing km{Rng(2), 2};
  for (double v : {10.0, 10.5, 11.0, 90.0, 91.0, 92.0}) km.observe(v, 1.0);
  const auto& set = km.buckets();
  ASSERT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.buckets()[0].rep, 11.0);
  EXPECT_DOUBLE_EQ(set.buckets()[1].rep, 92.0);
  EXPECT_DOUBLE_EQ(km.retry(92.0), 184.0);
  Rng rng(3);
  EXPECT_DOUBLE_EQ(*set.sample_above(11.0, rng), 92.0);
}

TEST(KMeansBucketing, SignificanceShiftsCentroids) {
  // Weighted centroids: heavy significance drags the boundary. We only
  // check the invariants (well-formed, covers everything) since exact
  // boundary position depends on iteration dynamics.
  KMeansBucketing km{Rng(4), 2};
  double sig = 1.0;
  for (int i = 0; i < 30; ++i) km.observe(100.0 + i, sig++);
  for (int i = 0; i < 30; ++i) km.observe(500.0 + i, sig++);
  const auto& set = km.buckets();
  ASSERT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.buckets()[0].rep, 129.0);
  EXPECT_DOUBLE_EQ(set.buckets()[1].rep, 529.0);
  EXPECT_GT(set.buckets()[1].prob, set.buckets()[0].prob);
}

TEST(KMeansBucketing, RegistryConstruction) {
  auto a = tora::core::make_allocator(tora::core::kKMeansBucketing, 5);
  EXPECT_TRUE(tora::core::is_bucketing_family(tora::core::kKMeansBucketing));
  for (int i = 0; i < 12; ++i) a.record_completion("c", {1.0, 700.0, 70.0});
  EXPECT_DOUBLE_EQ(a.allocate("c").memory_mb(), 700.0);
  tora::core::RegistryOptions opts;
  opts.kmeans_clusters = 5;
  auto a5 = tora::core::make_allocator(tora::core::kKMeansBucketing, 5,
                                       {16.0, 65536.0, 65536.0, 0.0}, opts);
  (void)a5;
}

}  // namespace
