// Tests for task-dependency (DAG) support: the workflow-manager behaviour of
// Fig. 1 where a task only becomes ready once its inputs exist.

#include <gtest/gtest.h>

#include <map>

#include "core/registry.hpp"
#include "sim/observer.hpp"
#include "sim/simulation.hpp"
#include "workloads/colmena.hpp"
#include "workloads/topeft.hpp"

namespace {

using tora::core::ResourceVector;
using tora::core::TaskSpec;
using tora::sim::SimConfig;
using tora::sim::Simulation;
using tora::sim::SimTime;

TaskSpec simple_task(std::uint64_t id, double duration = 10.0) {
  TaskSpec t;
  t.id = id;
  t.category = "c";
  t.demand = ResourceVector{1.0, 100.0, 10.0};
  t.duration_s = duration;
  t.peak_fraction = 0.5;
  return t;
}

SimConfig quiet(std::size_t workers = 4) {
  SimConfig cfg;
  cfg.churn.enabled = false;
  cfg.churn.initial_workers = workers;
  return cfg;
}

/// Records per-task start and completion times.
struct TimingObserver final : tora::sim::SimObserver {
  std::map<std::uint64_t, SimTime> first_start;
  std::map<std::uint64_t, SimTime> completed;
  void on_attempt_started(SimTime t, std::uint64_t task, std::uint64_t,
                          const ResourceVector&) override {
    first_start.try_emplace(task, t);
  }
  void on_task_completed(SimTime t, std::uint64_t task) override {
    completed[task] = t;
  }
};

TEST(Dependencies, ChainSerializesExecution) {
  std::vector<TaskSpec> tasks{simple_task(0), simple_task(1), simple_task(2)};
  tasks[1].deps = {0};
  tasks[2].deps = {1};
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  Simulation sim(tasks, alloc, quiet());
  TimingObserver obs;
  sim.set_observer(&obs);
  const auto r = sim.run();
  EXPECT_EQ(r.tasks_completed, 3u);
  // Serial chain of three 10 s tasks despite 4 idle workers.
  EXPECT_NEAR(r.makespan_s, 30.0, 1e-9);
  EXPECT_GE(obs.first_start[1], obs.completed[0]);
  EXPECT_GE(obs.first_start[2], obs.completed[1]);
}

TEST(Dependencies, FanInWaitsForAll) {
  std::vector<TaskSpec> tasks{simple_task(0, 10.0), simple_task(1, 50.0),
                              simple_task(2)};
  tasks[2].deps = {0, 1};
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  Simulation sim(tasks, alloc, quiet());
  TimingObserver obs;
  sim.set_observer(&obs);
  const auto r = sim.run();
  EXPECT_EQ(r.tasks_completed, 3u);
  EXPECT_GE(obs.first_start[2], 50.0);  // the slow dependency gates it
}

TEST(Dependencies, IndependentTasksStillParallel) {
  std::vector<TaskSpec> tasks{simple_task(0), simple_task(1)};
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  Simulation sim(tasks, alloc, quiet(2));
  const auto r = sim.run();
  EXPECT_NEAR(r.makespan_s, 10.0, 1e-9);  // both run at t=0
}

TEST(Dependencies, ForwardReferenceRejected) {
  std::vector<TaskSpec> tasks{simple_task(0), simple_task(1)};
  tasks[0].deps = {1};  // dep id >= own id: cycle-capable, rejected
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  EXPECT_THROW(Simulation(tasks, alloc, quiet()), std::invalid_argument);
  std::vector<TaskSpec> self{simple_task(0)};
  self[0].deps = {0};
  EXPECT_THROW(Simulation(self, alloc, quiet()), std::invalid_argument);
}

TEST(Dependencies, FatalCascadesToDependents) {
  std::vector<TaskSpec> tasks{simple_task(0), simple_task(1), simple_task(2),
                              simple_task(3)};
  tasks[0].demand[tora::core::ResourceKind::MemoryMB] = 1e9;  // unrunnable
  tasks[1].deps = {0};
  tasks[2].deps = {1};
  // task 3 is independent and must still complete.
  auto alloc = tora::core::make_allocator(tora::core::kGreedyBucketing, 1);
  Simulation sim(tasks, alloc, quiet());
  const auto r = sim.run();
  EXPECT_EQ(r.tasks_fatal, 3u);
  EXPECT_EQ(r.tasks_completed, 1u);
}

TEST(Dependencies, SubmitTimeAndDepsBothGate) {
  // Task 1 depends on 0 but is also submitted late: readiness is the max of
  // both conditions.
  std::vector<TaskSpec> tasks{simple_task(0, 5.0), simple_task(1)};
  tasks[1].deps = {0};
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  SimConfig cfg = quiet();
  cfg.submit_interval_s = 100.0;  // task 1 submits at t=100 > dep done at 5
  Simulation sim(tasks, alloc, cfg);
  TimingObserver obs;
  sim.set_observer(&obs);
  (void)sim.run();
  EXPECT_NEAR(obs.first_start[1], 100.0, 1e-9);
}

TEST(Dependencies, ColmenaPhaseBarrier) {
  tora::workloads::ColmenaConfig cfg;
  cfg.evaluate_mpnn_tasks = 10;
  cfg.compute_atomization_energy_tasks = 20;
  cfg.with_dependencies = true;
  const auto w = tora::workloads::make_colmena(3, cfg);
  for (const auto& t : w.tasks) {
    if (t.category == "compute_atomization_energy") {
      ASSERT_EQ(t.deps.size(), 1u);
      EXPECT_EQ(t.deps[0], 9u);
    } else {
      EXPECT_TRUE(t.deps.empty());
    }
  }
}

TEST(Dependencies, TopEFTDagShape) {
  tora::workloads::TopEFTConfig cfg;
  cfg.preprocessing_tasks = 5;
  cfg.processing_tasks = 40;
  cfg.accumulating_tasks = 4;
  cfg.with_dependencies = true;
  const auto w = tora::workloads::make_topeft(3, cfg);
  std::size_t acc_dep_total = 0;
  for (const auto& t : w.tasks) {
    for (auto d : t.deps) ASSERT_LT(d, t.id);
    if (t.category == "processing") {
      ASSERT_EQ(t.deps.size(), 1u);
      EXPECT_EQ(w.tasks[t.deps[0]].category, "preprocessing");
    }
    if (t.category == "accumulating") {
      EXPECT_FALSE(t.deps.empty());
      for (auto d : t.deps) {
        EXPECT_EQ(w.tasks[d].category, "processing");
      }
      acc_dep_total += t.deps.size();
    }
  }
  // Chunks of ~processing/accumulating each.
  EXPECT_GE(acc_dep_total, 36u);
}

TEST(Dependencies, TopEFTDagRunsToCompletion) {
  tora::workloads::TopEFTConfig cfg;
  cfg.preprocessing_tasks = 20;
  cfg.processing_tasks = 150;
  cfg.accumulating_tasks = 8;
  cfg.with_dependencies = true;
  const auto w = tora::workloads::make_topeft(4, cfg);
  auto alloc = tora::core::make_allocator(tora::core::kExhaustiveBucketing, 2);
  SimConfig scfg = quiet(8);
  Simulation sim(w.tasks, alloc, scfg);
  const auto r = sim.run();
  EXPECT_EQ(r.tasks_completed, w.tasks.size());
  EXPECT_EQ(r.tasks_fatal, 0u);
}

TEST(Dependencies, DefaultWorkloadsHaveNoDeps) {
  for (const char* name : {"colmena_xtb", "topeft"}) {
    const auto w = tora::workloads::make_workload(name, 5);
    for (const auto& t : w.tasks) EXPECT_TRUE(t.deps.empty()) << name;
  }
}

}  // namespace
