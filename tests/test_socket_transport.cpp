// End-to-end coverage of the TCP socket transport on calm (fault-free)
// networks: the lockstep TcpProtocolRuntime, the three-way parity oracle
// (simulator / in-process protocol / TCP protocol must agree bit-for-bit),
// session resume after a connection kill, transport backpressure reaching
// the manager's dispatch loop, and a free-running threaded deployment
// (one thread per endpoint — the configuration ThreadSanitizer watches).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "core/task.hpp"
#include "proto/channel.hpp"
#include "proto/manager.hpp"
#include "proto/net/endpoint.hpp"
#include "proto/net/tcp_runtime.hpp"
#include "proto/worker_agent.hpp"
#include "sim/simulation.hpp"

namespace {

using tora::core::ResourceKind;
using tora::core::ResourceVector;
using tora::core::TaskSpec;
using tora::proto::DuplexLink;
using tora::proto::DuplexLinkPtr;
using tora::proto::ProtocolManager;
using tora::proto::ProtocolRuntime;
using tora::proto::WorkerAgent;
using tora::proto::net::ManagerEndpoint;
using tora::proto::net::TcpProtocolRuntime;
using tora::proto::net::TcpTransportConfig;
using tora::proto::net::WorkerEndpoint;

constexpr ResourceVector kCapacity{16.0, 65536.0, 65536.0, 0.0};

std::vector<TaskSpec> simple_tasks(std::size_t n) {
  std::vector<TaskSpec> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = i;
    t.category = i % 2 == 0 ? "even" : "odd";
    t.demand = ResourceVector{1.0 + static_cast<double>(i % 4), 500.0, 50.0};
    t.duration_s = 10.0;
    t.peak_fraction = 0.5;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

/// Serialization-friendly workload shared with test_dispatch_parity: every
/// demand occupies more than half a worker, so a single worker executes
/// strictly in order and all three runtimes see the same trajectory.
std::vector<TaskSpec> parity_workload(std::size_t n) {
  const std::vector<std::string> cats = {"heavy_a", "heavy_b", "heavy_c"};
  std::vector<TaskSpec> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks[i].id = i;
    tasks[i].category = cats[i % cats.size()];
    tasks[i].demand = ResourceVector{
        9.0 + static_cast<double>(i % 3),
        20000.0 + 3000.0 * static_cast<double>(i % 5),
        4000.0 + 500.0 * static_cast<double>(i % 4), 0.0};
    tasks[i].duration_s = 10.0 + static_cast<double>(i % 7);
  }
  return tasks;
}

// ------------------------------------------------------------------ smoke

TEST(TcpRuntime, CompletesASimpleWorkload) {
  const auto tasks = simple_tasks(20);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  TcpProtocolRuntime runtime(tasks, alloc, 3, kCapacity);
  const auto result = runtime.run();
  EXPECT_EQ(result.tasks_completed, tasks.size());
  EXPECT_EQ(result.tasks_fatal, 0u);
  // One fresh handshake per worker — counted on BOTH ends in the merged
  // counters — no resumes, no rejected hellos.
  EXPECT_EQ(result.transport.handshakes_ok, 2u * 3u);
  EXPECT_EQ(result.transport.sessions_resumed, 0u);
  EXPECT_EQ(result.transport.handshakes_rejected, 0u);
  EXPECT_GT(result.transport.frames_sent, tasks.size());
  EXPECT_GT(result.transport.bytes_sent, 0u);
  // frames_sent counts control traffic (welcomes, acks) too;
  // frames_received counts application frames only — so on a settled calm
  // network sent strictly dominates received and nothing was lost.
  EXPECT_GT(result.transport.frames_received, 2 * tasks.size())
      << "each task costs at least a dispatch and a result";
  EXPECT_GT(result.transport.frames_sent, result.transport.frames_received);
}

// ---------------------------------------------------- three-way parity

/// In-process reference run mirroring ProtocolRuntime's round structure but
/// with direct access to the manager for snapshot_body().
std::string run_inproc(std::span<const TaskSpec> tasks,
                       tora::core::TaskAllocator& alloc,
                       std::size_t num_workers,
                       tora::proto::ProtocolRunResult* out) {
  std::vector<DuplexLinkPtr> links;
  std::vector<WorkerAgent> agents;
  for (std::size_t i = 0; i < num_workers; ++i) {
    links.push_back(std::make_shared<DuplexLink>());
    agents.emplace_back(i, kCapacity, tasks, links[i]);
  }
  ProtocolManager manager(tasks, alloc, links);
  for (auto& agent : agents) agent.announce();
  manager.start();
  for (int round = 0; round < 100000 && !manager.done(); ++round) {
    manager.pump();
    for (auto& agent : agents) agent.pump();
  }
  EXPECT_TRUE(manager.done());
  manager.shutdown_workers();
  for (auto& agent : agents) agent.pump();
  if (out != nullptr) {
    out->accounting = manager.accounting();
    out->tasks_completed = manager.tasks_completed();
    out->tasks_fatal = manager.tasks_fatal();
    out->evicted_alloc = manager.evicted_alloc();
  }
  return manager.snapshot_body();
}

TEST(TcpParity, InProcAndTcpManagersFinishBitForBit) {
  const auto tasks = parity_workload(30);

  auto inproc_alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  tora::proto::ProtocolRunResult inproc;
  const std::string inproc_fp = run_inproc(tasks, inproc_alloc, 1, &inproc);

  auto tcp_alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  TcpProtocolRuntime runtime(tasks, tcp_alloc, 1, kCapacity);
  const auto tcp = runtime.run();

  EXPECT_EQ(tcp.tasks_completed, inproc.tasks_completed);
  EXPECT_EQ(tcp.tasks_fatal, inproc.tasks_fatal);
  for (ResourceKind k : tora::core::kManagedResources) {
    EXPECT_DOUBLE_EQ(tcp.accounting.breakdown(k).allocation,
                     inproc.accounting.breakdown(k).allocation);
    EXPECT_DOUBLE_EQ(tcp.accounting.breakdown(k).consumption,
                     inproc.accounting.breakdown(k).consumption);
    EXPECT_DOUBLE_EQ(tcp.accounting.awe(k), inproc.accounting.awe(k));
  }
  // The headline: identical manager state down to the last byte, across a
  // real kernel socket. Any reordering, loss, duplication or session glitch
  // on the calm path would show up here.
  EXPECT_EQ(tcp.state_fingerprint, inproc_fp);
}

TEST(TcpParity, MultiWorkerFingerprintMatchesToo) {
  const auto tasks = simple_tasks(24);

  auto inproc_alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  const std::string inproc_fp = run_inproc(tasks, inproc_alloc, 3, nullptr);

  auto tcp_alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  TcpProtocolRuntime runtime(tasks, tcp_alloc, 3, kCapacity);
  const auto tcp = runtime.run();
  EXPECT_EQ(tcp.tasks_completed, tasks.size());
  EXPECT_EQ(tcp.state_fingerprint, inproc_fp);
}

TEST(TcpParity, SimulatorAgreesOnOutcomeAndWaste) {
  // Third leg of the oracle: the discrete-event simulator on the same
  // serialized workload. (The simulator's state lives in sim::Simulation,
  // so this leg compares the shared lifecycle observables, not bytes; the
  // byte-level claim between the two protocol runtimes is above.)
  const auto tasks = parity_workload(30);

  auto sim_alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  tora::sim::SimConfig sim_cfg;
  sim_cfg.worker_capacity = kCapacity;
  sim_cfg.churn.enabled = false;
  sim_cfg.churn.initial_workers = 1;
  tora::sim::Simulation sim(tasks, sim_alloc, sim_cfg);
  const auto sim_result = sim.run();

  auto tcp_alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  TcpProtocolRuntime runtime(tasks, tcp_alloc, 1, kCapacity);
  const auto tcp = runtime.run();

  EXPECT_EQ(tcp.tasks_completed, sim_result.tasks_completed);
  EXPECT_EQ(tcp.tasks_fatal, sim_result.tasks_fatal);
  for (ResourceKind k : tora::core::kManagedResources) {
    EXPECT_DOUBLE_EQ(tcp.accounting.breakdown(k).allocation,
                     sim_result.accounting.breakdown(k).allocation);
    EXPECT_DOUBLE_EQ(tcp.accounting.breakdown(k).consumption,
                     sim_result.accounting.breakdown(k).consumption);
    EXPECT_DOUBLE_EQ(tcp.accounting.awe(k), sim_result.accounting.awe(k));
  }
}

// --------------------------------------------------------- session resume

/// Pumps both endpoints until `pred` holds or the iteration budget runs
/// out; the clock advances fractionally so backoff deadlines expire.
template <typename Pred>
bool pump_until(ManagerEndpoint& mgr, WorkerEndpoint& wep, double& now,
                Pred pred) {
  for (int i = 0; i < 200000; ++i) {
    if (pred()) return true;
    mgr.pump_io(now, 0);
    wep.pump_io(now, 0);
    now += 0.01;
  }
  return pred();
}

TEST(TcpSession, KillAndReconnectResumesWithoutLossOrDuplication) {
  TcpTransportConfig cfg;
  ManagerEndpoint mgr(1, cfg);
  TcpTransportConfig wcfg = cfg;
  wcfg.port = mgr.port();
  WorkerEndpoint wep(0, wcfg);
  double now = 0.0;

  ASSERT_TRUE(pump_until(mgr, wep, now, [&] { return wep.established(); }));
  const std::uint64_t token = wep.session_token();
  ASSERT_NE(token, 0u);

  // Worker -> manager app traffic before the cut.
  wep.link()->to_manager.send("result pre_cut_0");
  wep.link()->to_manager.send("result pre_cut_1");
  ASSERT_TRUE(pump_until(mgr, wep, now, [&] { return mgr.rx_count(0) == 2; }));

  // Queue a frame, then kill the connection BEFORE it can flush: the
  // classic in-flight-result-during-disconnect window.
  wep.link()->to_manager.send("result in_flight");
  wep.kill_connection();
  wep.link()->to_manager.send("result post_cut");

  ASSERT_TRUE(pump_until(mgr, wep, now, [&] { return mgr.rx_count(0) == 4; }));
  EXPECT_EQ(wep.session_token(), token) << "same session resumed, not fresh";
  EXPECT_GE(wep.counters().reconnects, 1u);
  EXPECT_EQ(wep.counters().sessions_resumed, 1u);

  // Exactly once, in order, nothing duplicated.
  std::vector<std::string> got;
  while (auto line = mgr.links()[0]->to_manager.poll()) got.push_back(*line);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0], "result pre_cut_0");
  EXPECT_EQ(got[1], "result pre_cut_1");
  EXPECT_EQ(got[2], "result in_flight");
  EXPECT_EQ(got[3], "result post_cut");
}

TEST(TcpSession, ManagerToWorkerDirectionAlsoSurvivesTheCut) {
  TcpTransportConfig cfg;
  ManagerEndpoint mgr(1, cfg);
  TcpTransportConfig wcfg = cfg;
  wcfg.port = mgr.port();
  WorkerEndpoint wep(0, wcfg);
  double now = 0.0;
  ASSERT_TRUE(pump_until(mgr, wep, now, [&] { return wep.established(); }));

  mgr.links()[0]->to_worker.send("dispatch a");
  ASSERT_TRUE(pump_until(mgr, wep, now, [&] { return wep.rx_count() == 1; }));

  // Cut from the manager side (all of them — there is one).
  mgr.drop_all_connections();
  mgr.links()[0]->to_worker.send("dispatch b");
  ASSERT_TRUE(pump_until(mgr, wep, now, [&] { return wep.rx_count() == 2; }));
  EXPECT_GE(wep.counters().reconnects, 1u);

  std::vector<std::string> got;
  while (auto line = wep.link()->to_worker.poll()) got.push_back(*line);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "dispatch a");
  EXPECT_EQ(got[1], "dispatch b");
}

// ----------------------------------------------------------- backpressure

TEST(TcpBackpressure, QueueFillsWhileDisconnectedAndDrainsOnConnect) {
  TcpTransportConfig cfg;
  cfg.session.queue_low = 2;
  cfg.session.queue_high = 4;
  cfg.session.queue_cap = 64;
  ManagerEndpoint mgr(1, cfg);

  // No worker yet: frames pile up in the session send queue.
  for (int i = 0; i < 5; ++i) {
    mgr.links()[0]->to_worker.send("dispatch " + std::to_string(i));
  }
  EXPECT_TRUE(mgr.links()[0]->to_worker.backpressured());
  EXPECT_GE(mgr.counters().backpressure_events, 1u);

  TcpTransportConfig wcfg = cfg;
  wcfg.port = mgr.port();
  WorkerEndpoint wep(0, wcfg);
  double now = 0.0;
  ASSERT_TRUE(pump_until(mgr, wep, now, [&] { return wep.rx_count() == 5; }));
  ASSERT_TRUE(pump_until(mgr, wep, now,
                         [&] { return mgr.quiesced() && wep.quiesced(); }));
  EXPECT_FALSE(mgr.links()[0]->to_worker.backpressured());
}

/// Channel stub whose backpressure is test-controlled — stands in for a
/// socket send queue past its high watermark.
class StubBackpressureChannel : public tora::proto::Channel {
 public:
  bool backpressured() const noexcept override { return *flag_; }
  explicit StubBackpressureChannel(const bool* flag) noexcept : flag_(flag) {}

 private:
  const bool* flag_;
};

TEST(TcpBackpressure, ManagerSkipsBackpressuredWorkersAndCountsDeferrals) {
  // Heavy tasks: only one fits a worker at a time, so the dispatch queue
  // stays non-empty across ticks and deferrals are observable.
  const auto tasks = parity_workload(6);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);

  static bool w0_blocked = false;
  static bool w1_blocked = false;
  w0_blocked = false;
  w1_blocked = false;
  auto link0 = std::make_shared<DuplexLink>(
      std::make_unique<StubBackpressureChannel>(&w0_blocked),
      std::make_unique<tora::proto::Channel>());
  auto link1 = std::make_shared<DuplexLink>(
      std::make_unique<StubBackpressureChannel>(&w1_blocked),
      std::make_unique<tora::proto::Channel>());
  WorkerAgent agent0(0, kCapacity, tasks, link0);
  WorkerAgent agent1(1, kCapacity, tasks, link1);
  ProtocolManager manager(tasks, alloc, {link0, link1});

  agent0.announce();
  agent1.announce();
  manager.start();
  manager.pump();  // registers both workers, dispatches freely

  // Block worker 0's transport: every subsequent dispatch must land on
  // worker 1 and the deferral counter must tick for the skipped worker.
  w0_blocked = true;
  agent0.pump();
  agent1.pump();
  for (int round = 0; round < 1000 && !manager.done(); ++round) {
    manager.pump();
    agent0.pump();
    agent1.pump();
  }
  ASSERT_TRUE(manager.done());
  EXPECT_EQ(manager.tasks_completed(), tasks.size());

  // With both transports blocked the manager cannot place anything.
  auto alloc2 = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  auto link2 = std::make_shared<DuplexLink>(
      std::make_unique<StubBackpressureChannel>(&w0_blocked),
      std::make_unique<tora::proto::Channel>());
  WorkerAgent agent2(0, kCapacity, tasks, link2);
  ProtocolManager stuck(tasks, alloc2, {link2});
  agent2.announce();
  stuck.start();
  stuck.pump();  // register (dispatches of tick 1 may go out pre-sample)
  agent2.pump();
  w0_blocked = true;
  const auto before = stuck.chaos().dispatches_deferred_backpressure;
  stuck.pump();
  stuck.pump();
  EXPECT_GT(stuck.chaos().dispatches_deferred_backpressure, before)
      << "queued tasks with every transport backpressured must count "
         "deferrals, not dispatch";
}

// -------------------------------------------------------------- threaded

// Free-running deployment: the manager and every worker own their thread
// and share NOTHING but kernel sockets. No lockstep, no barriers — real
// interleavings, which is exactly what the ThreadSanitizer build checks.
TEST(TcpThreaded, FreeRunningProcessesCompleteTheWorkload) {
  const auto tasks = simple_tasks(16);
  constexpr std::size_t kWorkers = 2;

  TcpTransportConfig cfg;
  ManagerEndpoint mgr_ep(kWorkers, cfg);
  const std::uint16_t port = mgr_ep.port();

  std::atomic<bool> stop{false};
  std::vector<std::thread> worker_threads;
  worker_threads.reserve(kWorkers);
  for (std::size_t i = 0; i < kWorkers; ++i) {
    worker_threads.emplace_back([&, i] {
      TcpTransportConfig wcfg = cfg;
      wcfg.port = port;
      wcfg.backoff_base = 0.001;
      wcfg.backoff_cap = 0.01;
      WorkerEndpoint ep(i, wcfg);
      WorkerAgent agent(i, kCapacity, tasks, ep.link());
      agent.announce();
      double now = 0.0;
      while (!stop.load(std::memory_order_relaxed) &&
             !agent.shutdown_received()) {
        ep.pump_io(now, 1);
        agent.pump();
        now += 0.01;
      }
      // Final flush so the manager's endpoint is not left mid-frame.
      for (int i2 = 0; i2 < 50; ++i2) ep.pump_io(now, 0);
    });
  }

  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  // Free-running threads pump at wildly different real-time rates (TSan
  // slows everything ~10x), so the tick-based failure detectors get
  // windows far beyond any plausible scheduling hiccup.
  tora::proto::LivenessConfig liveness;
  liveness.silence_ticks = 50000;
  liveness.attempt_timeout_ticks = 100000;
  liveness.worker_failure_limit = 1000;
  ProtocolManager manager(tasks, alloc, mgr_ep.links(), liveness);
  double now = 0.0;
  // Give the workers a beat to announce, then pump until done.
  for (int i = 0; i < 200; ++i) {
    mgr_ep.pump_io(now, 1);
    now += 0.01;
  }
  manager.start();
  bool done = false;
  for (int round = 0; round < 200000; ++round) {
    mgr_ep.pump_io(now, 1);
    manager.pump();
    now += 0.01;
    if (manager.done()) {
      done = true;
      break;
    }
  }
  EXPECT_TRUE(done);
  manager.shutdown_workers();
  for (int i = 0; i < 500 && mgr_ep.connections() > 0; ++i) {
    mgr_ep.pump_io(now, 1);
    now += 0.01;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : worker_threads) t.join();

  EXPECT_EQ(manager.tasks_completed(), tasks.size());
  EXPECT_EQ(manager.tasks_fatal(), 0u);
}

}  // namespace
