#include "core/quantized_bucketing.hpp"

#include <gtest/gtest.h>

namespace {

using tora::core::QuantizedBucketing;
using tora::util::Rng;

TEST(QuantizedBucketing, RejectsBadQuantiles) {
  EXPECT_THROW(QuantizedBucketing(Rng(1), {0.0}), std::invalid_argument);
  EXPECT_THROW(QuantizedBucketing(Rng(1), {1.0}), std::invalid_argument);
  EXPECT_THROW(QuantizedBucketing(Rng(1), {-0.5}), std::invalid_argument);
}

TEST(QuantizedBucketing, DefaultSplitsAtMedian) {
  QuantizedBucketing qb{Rng(2)};
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}) qb.observe(v, 1.0);
  const auto& set = qb.buckets();
  ASSERT_EQ(set.size(), 2u);
  // floor(0.5 * 7) = 3 -> first bucket ends at index 3 (value 4).
  EXPECT_DOUBLE_EQ(set.buckets()[0].rep, 4.0);
  EXPECT_DOUBLE_EQ(set.buckets()[1].rep, 8.0);
  EXPECT_DOUBLE_EQ(set.buckets()[0].prob, 0.5);
}

TEST(QuantizedBucketing, SingleRecordOneBucket) {
  QuantizedBucketing qb{Rng(3)};
  qb.observe(42.0, 1.0);
  ASSERT_EQ(qb.buckets().size(), 1u);
  EXPECT_DOUBLE_EQ(qb.predict(), 42.0);
}

TEST(QuantizedBucketing, CustomQuartiles) {
  QuantizedBucketing qb{Rng(4), {0.25, 0.5, 0.75}};
  for (int i = 1; i <= 100; ++i) qb.observe(static_cast<double>(i), 1.0);
  const auto& set = qb.buckets();
  ASSERT_EQ(set.size(), 4u);
  EXPECT_DOUBLE_EQ(set.buckets()[0].rep, 25.0);
  EXPECT_DOUBLE_EQ(set.buckets()[1].rep, 50.0);
  EXPECT_DOUBLE_EQ(set.buckets()[2].rep, 75.0);
  EXPECT_DOUBLE_EQ(set.buckets()[3].rep, 100.0);
}

TEST(QuantizedBucketing, QuantilesSortedOnConstruction) {
  QuantizedBucketing qb{Rng(5), {0.75, 0.25}};
  EXPECT_EQ(qb.quantiles(), (std::vector<double>{0.25, 0.75}));
}

TEST(QuantizedBucketing, MedianSplitReducesExponentialRetryCost) {
  // The paper's rationale: splitting at the median halves the first
  // allocation for the common small tasks of an outlier distribution.
  QuantizedBucketing qb{Rng(6)};
  Rng gen(7);
  for (int i = 0; i < 200; ++i) qb.observe(1.0 + gen.exponential(0.5), i + 1.0);
  const auto& set = qb.buckets();
  ASSERT_EQ(set.size(), 2u);
  EXPECT_LT(set.buckets()[0].rep, set.buckets()[1].rep / 1.5);
}

TEST(QuantizedBucketing, RetryGoesToUpperBucketThenDoubles) {
  QuantizedBucketing qb{Rng(8)};
  for (double v : {1.0, 2.0, 3.0, 4.0}) qb.observe(v, 1.0);
  // Buckets end at values 2 and 4.
  EXPECT_DOUBLE_EQ(qb.retry(2.0), 4.0);
  EXPECT_DOUBLE_EQ(qb.retry(4.0), 8.0);
}

}  // namespace
