#include "cli/plot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/cli.hpp"

namespace {

using tora::cli::Bar;
using tora::cli::plot_awe_csv;
using tora::cli::render_bars;

constexpr const char* kCsv =
    "resource,policy,workflow,awe\n"
    "memory_mb,max_seen,uniform,0.5\n"
    "memory_mb,greedy_bucketing,uniform,0.75\n"
    "cores,max_seen,uniform,0.4\n"
    "memory_mb,max_seen,topeft,0.47\n";

TEST(RenderBars, ScalesToMax) {
  std::ostringstream out;
  render_bars(out, "t", {{"a", 50.0}, {"b", 100.0}}, 10);
  const std::string s = out.str();
  EXPECT_NE(s.find("t\n"), std::string::npos);
  EXPECT_NE(s.find("|#####     |"), std::string::npos);   // 50/100 of 10
  EXPECT_NE(s.find("|##########|"), std::string::npos);   // full bar
}

TEST(RenderBars, ExplicitScaleMax) {
  std::ostringstream out;
  render_bars(out, "t", {{"a", 25.0}}, 4, 100.0);
  EXPECT_NE(out.str().find("|#   |"), std::string::npos);
}

TEST(RenderBars, EmptyIsNoOp) {
  std::ostringstream out;
  render_bars(out, "t", {});
  EXPECT_TRUE(out.str().empty());
}

TEST(RenderBars, NegativeValuesRenderEmpty) {
  std::ostringstream out;
  render_bars(out, "t", {{"a", -5.0}, {"b", 10.0}}, 5);
  EXPECT_NE(out.str().find("|     | -5.0"), std::string::npos);
}

TEST(RenderBars, LabelsAligned) {
  std::ostringstream out;
  render_bars(out, "t", {{"x", 1.0}, {"longer", 1.0}}, 5);
  EXPECT_NE(out.str().find("x      |"), std::string::npos);
}

TEST(PlotAweCsv, GroupsByResourceAndWorkflow) {
  std::ostringstream out;
  const std::size_t charts = plot_awe_csv(out, kCsv);
  EXPECT_EQ(charts, 3u);  // (mem,uniform), (cores,uniform), (mem,topeft)
  EXPECT_NE(out.str().find("AWE memory_mb / uniform"), std::string::npos);
  EXPECT_NE(out.str().find("greedy_bucketing"), std::string::npos);
  EXPECT_NE(out.str().find("75.0%"), std::string::npos);
}

TEST(PlotAweCsv, FiltersApply) {
  std::ostringstream out;
  EXPECT_EQ(plot_awe_csv(out, kCsv, "cores", ""), 1u);
  EXPECT_EQ(plot_awe_csv(out, kCsv, "", "topeft"), 1u);
  EXPECT_EQ(plot_awe_csv(out, kCsv, "cores", "topeft"), 0u);
}

TEST(PlotAweCsv, RejectsMalformed) {
  std::ostringstream out;
  EXPECT_THROW(plot_awe_csv(out, "nope\n"), std::invalid_argument);
  EXPECT_THROW(plot_awe_csv(out,
                            "resource,policy,workflow,awe\nmem,p,w\n"),
               std::invalid_argument);
  EXPECT_THROW(plot_awe_csv(out,
                            "resource,policy,workflow,awe\nmem,p,w,xx\n"),
               std::invalid_argument);
}

TEST(PlotCli, ParseRequiresCsv) {
  EXPECT_THROW(tora::cli::parse_options({"plot"}), std::invalid_argument);
  const auto o = tora::cli::parse_options(
      {"plot", "--csv", "x.csv", "--resource", "cores", "--filter-workflow",
       "topeft"});
  EXPECT_EQ(o.csv_path, "x.csv");
  EXPECT_EQ(o.resource_filter, "cores");
  EXPECT_EQ(o.workflow_filter, "topeft");
}

TEST(PlotCli, EndToEnd) {
  const std::string path = ::testing::TempDir() + "/plot_test.csv";
  {
    std::ofstream f(path);
    f << kCsv;
  }
  std::ostringstream out, err;
  const int rc = tora::cli::run_cli({"plot", "--csv", path}, out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("AWE memory_mb / uniform"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
