#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace {

using tora::core::AttemptLog;
using tora::core::ResourceKind;
using tora::core::ResourceVector;
using tora::core::TaskUsage;
using tora::core::WasteAccounting;

TaskUsage perfect_task() {
  TaskUsage u;
  u.category = "c";
  u.peak = ResourceVector{2.0, 1000.0, 100.0};
  u.final_alloc = u.peak;
  u.final_runtime_s = 10.0;
  return u;
}

TEST(WasteAccounting, PerfectAllocationIsAweOne) {
  WasteAccounting acc;
  acc.add(perfect_task());
  for (ResourceKind k : tora::core::kManagedResources) {
    EXPECT_DOUBLE_EQ(acc.awe(k), 1.0);
    EXPECT_DOUBLE_EQ(acc.breakdown(k).total_waste(), 0.0);
    EXPECT_DOUBLE_EQ(acc.breakdown(k).internal_fragmentation, 0.0);
    EXPECT_DOUBLE_EQ(acc.breakdown(k).failed_allocation, 0.0);
  }
  EXPECT_EQ(acc.task_count(), 1u);
  EXPECT_EQ(acc.total_attempts(), 1u);
}

TEST(WasteAccounting, InternalFragmentationFormula) {
  // t*(a - c): 10 * (1500 - 1000) = 5000 MB*s of memory fragmentation.
  TaskUsage u = perfect_task();
  u.final_alloc = ResourceVector{2.0, 1500.0, 100.0};
  WasteAccounting acc;
  acc.add(u);
  const auto& b = acc.breakdown(ResourceKind::MemoryMB);
  EXPECT_DOUBLE_EQ(b.internal_fragmentation, 5000.0);
  EXPECT_DOUBLE_EQ(b.consumption, 10000.0);
  EXPECT_DOUBLE_EQ(b.allocation, 15000.0);
  EXPECT_DOUBLE_EQ(acc.awe(ResourceKind::MemoryMB), 10000.0 / 15000.0);
}

TEST(WasteAccounting, FailedAllocationFormula) {
  // Two failed attempts: sum(a_i * t_i) per resource.
  TaskUsage u = perfect_task();
  u.failed_attempts.push_back(AttemptLog{ResourceVector{1.0, 500.0, 50.0}, 4.0});
  u.failed_attempts.push_back(AttemptLog{ResourceVector{2.0, 800.0, 80.0}, 6.0});
  WasteAccounting acc;
  acc.add(u);
  const auto& mem = acc.breakdown(ResourceKind::MemoryMB);
  EXPECT_DOUBLE_EQ(mem.failed_allocation, 500.0 * 4.0 + 800.0 * 6.0);
  EXPECT_DOUBLE_EQ(mem.allocation, 1000.0 * 10.0 + 500.0 * 4.0 + 800.0 * 6.0);
  EXPECT_EQ(acc.total_attempts(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean_attempts(), 3.0);
}

TEST(WasteAccounting, WasteIdentity) {
  // allocation - consumption == fragmentation + failed, for every resource.
  TaskUsage u = perfect_task();
  u.final_alloc = ResourceVector{3.0, 1600.0, 128.0};
  u.failed_attempts.push_back(AttemptLog{ResourceVector{1.0, 512.0, 64.0}, 3.5});
  WasteAccounting acc;
  acc.add(u);
  for (ResourceKind k : tora::core::kManagedResources) {
    const auto& b = acc.breakdown(k);
    EXPECT_NEAR(b.total_waste(),
                b.internal_fragmentation + b.failed_allocation, 1e-9);
  }
}

TEST(WasteAccounting, AweAggregatesAcrossTasks) {
  WasteAccounting acc;
  TaskUsage a = perfect_task();          // AWE 1 component
  TaskUsage b = perfect_task();
  b.final_alloc = b.peak * 2.0;          // 50% efficient component
  acc.add(a);
  acc.add(b);
  // Total consumption 2C, total allocation 3C -> AWE 2/3.
  EXPECT_NEAR(acc.awe(ResourceKind::Cores), 2.0 / 3.0, 1e-12);
}

TEST(WasteAccounting, RejectsAllocationBelowPeak) {
  TaskUsage u = perfect_task();
  u.final_alloc = ResourceVector{1.0, 1000.0, 100.0};  // cores below peak
  WasteAccounting acc;
  EXPECT_THROW(acc.add(u), std::invalid_argument);
}

TEST(WasteAccounting, RejectsNegativeRuntimes) {
  TaskUsage u = perfect_task();
  u.final_runtime_s = -1.0;
  WasteAccounting acc;
  EXPECT_THROW(acc.add(u), std::invalid_argument);
  TaskUsage v = perfect_task();
  v.failed_attempts.push_back(AttemptLog{v.peak, -2.0});
  EXPECT_THROW(acc.add(v), std::invalid_argument);
}

TEST(WasteAccounting, PerCategoryCounts) {
  WasteAccounting acc;
  TaskUsage u = perfect_task();
  u.category = "x";
  acc.add(u);
  acc.add(u);
  u.category = "y";
  acc.add(u);
  EXPECT_EQ(acc.per_category().at("x"), 2u);
  EXPECT_EQ(acc.per_category().at("y"), 1u);
}

TEST(WasteAccounting, MergeMatchesSequential) {
  TaskUsage u = perfect_task();
  u.final_alloc = u.peak * 1.5;
  WasteAccounting all, a, b;
  all.add(u);
  all.add(u);
  all.add(u);
  a.add(u);
  b.add(u);
  b.add(u);
  a.merge(b);
  EXPECT_EQ(a.task_count(), all.task_count());
  for (ResourceKind k : tora::core::kManagedResources) {
    EXPECT_DOUBLE_EQ(a.awe(k), all.awe(k));
    EXPECT_DOUBLE_EQ(a.breakdown(k).failed_allocation,
                     all.breakdown(k).failed_allocation);
  }
}

TEST(WasteAccounting, PerCategoryBreakdowns) {
  WasteAccounting acc;
  TaskUsage small = perfect_task();
  small.category = "small";
  TaskUsage big = perfect_task();
  big.category = "big";
  big.final_alloc = big.peak * 2.0;  // 50% efficient
  acc.add(small);
  acc.add(big);
  EXPECT_DOUBLE_EQ(acc.awe("small", ResourceKind::MemoryMB), 1.0);
  EXPECT_DOUBLE_EQ(acc.awe("big", ResourceKind::MemoryMB), 0.5);
  // Per-category allocations sum to the global totals.
  const double total =
      acc.breakdown("small", ResourceKind::Cores).allocation +
      acc.breakdown("big", ResourceKind::Cores).allocation;
  EXPECT_DOUBLE_EQ(total, acc.breakdown(ResourceKind::Cores).allocation);
}

TEST(WasteAccounting, UnknownCategoryIsZero) {
  WasteAccounting acc;
  acc.add(perfect_task());
  EXPECT_EQ(acc.awe("nope", ResourceKind::Cores), 0.0);
  EXPECT_EQ(acc.breakdown("nope", ResourceKind::Cores).allocation, 0.0);
}

TEST(WasteAccounting, PerCategoryMergesCorrectly) {
  TaskUsage u = perfect_task();
  u.category = "k";
  u.final_alloc = u.peak * 1.5;
  WasteAccounting a, b;
  a.add(u);
  b.add(u);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.breakdown("k", ResourceKind::MemoryMB).allocation,
                   2.0 * u.final_alloc.memory_mb() * u.final_runtime_s);
}

TEST(WasteAccounting, EmptyAweIsZero) {
  WasteAccounting acc;
  EXPECT_EQ(acc.awe(ResourceKind::Cores), 0.0);
  EXPECT_EQ(acc.mean_attempts(), 0.0);
}

}  // namespace
