#include <gtest/gtest.h>

#include "core/max_seen.hpp"
#include "core/tovar.hpp"
#include "core/whole_machine.hpp"

namespace {

using tora::core::MaxSeenPolicy;
using tora::core::TovarObjective;
using tora::core::TovarPolicy;
using tora::core::WholeMachinePolicy;

// ------------------------------------------------------------- Max Seen

TEST(MaxSeen, RejectsBadWidth) {
  EXPECT_THROW(MaxSeenPolicy(0.0), std::invalid_argument);
}

TEST(MaxSeen, PredictBeforeRecordsThrows) {
  MaxSeenPolicy p(250.0);
  EXPECT_THROW(p.predict(), std::logic_error);
}

TEST(MaxSeen, PaperDiskScenario) {
  // TopEFT: constant 306 MB disk, 250 MB histogram -> 500 MB allocation
  // forever (§V-C), capping AWE at 61.2%.
  MaxSeenPolicy p(250.0);
  for (int i = 0; i < 100; ++i) p.observe(306.0, 1.0);
  EXPECT_DOUBLE_EQ(p.predict(), 500.0);
}

TEST(MaxSeen, TracksRunningMaximum) {
  MaxSeenPolicy p(1.0);
  p.observe(2.5, 1.0);
  EXPECT_DOUBLE_EQ(p.predict(), 3.0);
  p.observe(7.2, 2.0);
  EXPECT_DOUBLE_EQ(p.predict(), 8.0);
  p.observe(1.0, 3.0);  // lower values never shrink the allocation
  EXPECT_DOUBLE_EQ(p.predict(), 8.0);
  EXPECT_DOUBLE_EQ(p.max_value(), 7.2);
}

TEST(MaxSeen, ExactMultipleStaysPut) {
  MaxSeenPolicy p(250.0);
  p.observe(500.0, 1.0);
  EXPECT_DOUBLE_EQ(p.predict(), 500.0);
}

TEST(MaxSeen, RetryPrefersRoundedMaxThenDoubles) {
  MaxSeenPolicy p(250.0);
  p.observe(306.0, 1.0);
  // A failure at 250 escalates to the rounded max first.
  EXPECT_DOUBLE_EQ(p.retry(250.0), 500.0);
  // Beyond the rounded max, double.
  EXPECT_DOUBLE_EQ(p.retry(500.0), 1000.0);
}

TEST(MaxSeen, RetryWithNoRecords) {
  MaxSeenPolicy p(250.0);
  EXPECT_DOUBLE_EQ(p.retry(100.0), 200.0);
  EXPECT_DOUBLE_EQ(p.retry(0.0), 250.0);
}

TEST(MaxSeen, DegenerateZeroHistory) {
  MaxSeenPolicy p(250.0);
  p.observe(0.0, 1.0);
  EXPECT_DOUBLE_EQ(p.predict(), 250.0);  // minimal non-zero allocation
}

// --------------------------------------------------------- Whole Machine

TEST(WholeMachine, AlwaysAllocatesCapacity) {
  WholeMachinePolicy p(16.0);
  EXPECT_DOUBLE_EQ(p.predict(), 16.0);
  p.observe(1.0, 1.0);
  EXPECT_DOUBLE_EQ(p.predict(), 16.0);
  EXPECT_EQ(p.record_count(), 1u);
}

TEST(WholeMachine, RetryContract) {
  WholeMachinePolicy p(16.0);
  EXPECT_DOUBLE_EQ(p.retry(8.0), 16.0);
  EXPECT_DOUBLE_EQ(p.retry(16.0), 32.0);  // growth even beyond capacity
}

TEST(WholeMachine, RejectsBadCapacity) {
  EXPECT_THROW(WholeMachinePolicy(0.0), std::invalid_argument);
}

// ------------------------------------------------------- Tovar policies

TEST(TovarMinWaste, SingleValueAllocatesIt) {
  TovarPolicy p(TovarObjective::MinWaste);
  p.observe(4.0, 1.0);
  EXPECT_DOUBLE_EQ(p.predict(), 4.0);
}

TEST(TovarMinWaste, HandComputedChoice) {
  // Values {1, 1, 1, 10}. Candidates: a=1 and a=10.
  //  a=1:  covered waste 0; uncovered: 1 task wasting (1 + 10 - 10) = 1.
  //        total 1.
  //  a=10: covered waste (10-1)*3 + 0 = 27.
  // MinWaste must pick a=1.
  TovarPolicy p(TovarObjective::MinWaste);
  for (double v : {1.0, 1.0, 1.0, 10.0}) p.observe(v, 1.0);
  EXPECT_DOUBLE_EQ(p.predict(), 1.0);
}

TEST(TovarMinWaste, SwitchesWhenOutliersCommon) {
  // Values {9, 9, 9, 10}: a=9 costs 1 failure (9+10-10)=9; a=10 costs
  // (10-9)*3 = 3 -> picks 10.
  TovarPolicy p(TovarObjective::MinWaste);
  for (double v : {9.0, 9.0, 9.0, 10.0}) p.observe(v, 1.0);
  EXPECT_DOUBLE_EQ(p.predict(), 10.0);
}

TEST(TovarMaxThroughput, PrefersSmallAllocWhenCheap) {
  // Values {1,1,1,10}: throughput(1) = .75/1 + .25/11 = 0.773;
  // throughput(10) = 1/10 = 0.1 -> picks 1.
  TovarPolicy p(TovarObjective::MaxThroughput);
  for (double v : {1.0, 1.0, 1.0, 10.0}) p.observe(v, 1.0);
  EXPECT_DOUBLE_EQ(p.predict(), 1.0);
}

TEST(TovarMaxThroughput, PrefersCoverageWhenValuesClose) {
  // Values {9, 10}: throughput(9) = .5/9 + .5/19 = 0.0819;
  // throughput(10) = 1/10 = 0.1 -> picks 10.
  TovarPolicy p(TovarObjective::MaxThroughput);
  p.observe(9.0, 1.0);
  p.observe(10.0, 1.0);
  EXPECT_DOUBLE_EQ(p.predict(), 10.0);
}

TEST(Tovar, AtMostOnceRetryJumpsToMax) {
  TovarPolicy p(TovarObjective::MinWaste);
  for (double v : {1.0, 2.0, 50.0}) p.observe(v, 1.0);
  EXPECT_DOUBLE_EQ(p.retry(2.0), 50.0);
  // Above the max seen: doubling.
  EXPECT_DOUBLE_EQ(p.retry(50.0), 100.0);
}

TEST(Tovar, PredictBeforeRecordsThrows) {
  TovarPolicy p(TovarObjective::MaxThroughput);
  EXPECT_THROW(p.predict(), std::logic_error);
}

TEST(Tovar, Names) {
  EXPECT_EQ(TovarPolicy(TovarObjective::MinWaste).name(), "min_waste");
  EXPECT_EQ(TovarPolicy(TovarObjective::MaxThroughput).name(),
            "max_throughput");
}

TEST(Tovar, LazyRebuildAfterObserve) {
  TovarPolicy p(TovarObjective::MinWaste);
  p.observe(5.0, 1.0);
  EXPECT_DOUBLE_EQ(p.current_choice(), 5.0);
  p.observe(1.0, 1.0);
  p.observe(1.0, 1.0);
  p.observe(1.0, 1.0);
  // {1,1,1,5}: a=1 -> waste (1+5-5)=1; a=5 -> 4*... (5-1)*3=12 -> picks 1.
  EXPECT_DOUBLE_EQ(p.current_choice(), 1.0);
}

}  // namespace
