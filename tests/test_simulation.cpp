#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/registry.hpp"

namespace {

using tora::core::ResourceKind;
using tora::core::ResourceVector;
using tora::core::TaskSpec;
using tora::sim::SimConfig;
using tora::sim::SimResult;
using tora::sim::Simulation;

std::vector<TaskSpec> simple_tasks(std::size_t n, double cores, double mem,
                                   double disk, double dur = 10.0) {
  std::vector<TaskSpec> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = i;
    t.category = "c";
    t.demand = ResourceVector{cores, mem, disk};
    t.duration_s = dur;
    t.peak_fraction = 0.5;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

SimConfig quiet_config() {
  SimConfig cfg;
  cfg.churn.enabled = false;
  cfg.churn.initial_workers = 4;
  return cfg;
}

TEST(Simulation, AllTasksComplete) {
  const auto tasks = simple_tasks(50, 1.0, 500.0, 100.0);
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  Simulation sim(tasks, alloc, quiet_config());
  const SimResult r = sim.run();
  EXPECT_EQ(r.tasks_completed, 50u);
  EXPECT_EQ(r.tasks_fatal, 0u);
  EXPECT_EQ(r.accounting.task_count(), 50u);
  EXPECT_GT(r.makespan_s, 0.0);
}

TEST(Simulation, WholeMachineNeverRetries) {
  const auto tasks = simple_tasks(30, 2.0, 3000.0, 700.0);
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  Simulation sim(tasks, alloc, quiet_config());
  const SimResult r = sim.run();
  EXPECT_EQ(r.accounting.total_attempts(), 30u);
  EXPECT_DOUBLE_EQ(r.accounting.breakdown(ResourceKind::Cores).failed_allocation,
                   0.0);
}

TEST(Simulation, WholeMachineSerializesTasksPerWorker) {
  // Each task takes a full worker, so makespan >= ceil(n/workers) * dur.
  const auto tasks = simple_tasks(8, 1.0, 100.0, 100.0, 10.0);
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  SimConfig cfg = quiet_config();
  cfg.churn.initial_workers = 2;
  Simulation sim(tasks, alloc, cfg);
  const SimResult r = sim.run();
  EXPECT_GE(r.makespan_s, 40.0 - 1e-9);
}

TEST(Simulation, DeterministicUnderSeed) {
  const auto tasks = simple_tasks(40, 1.0, 900.0, 300.0);
  auto a1 = tora::core::make_allocator(tora::core::kGreedyBucketing, 5);
  auto a2 = tora::core::make_allocator(tora::core::kGreedyBucketing, 5);
  SimConfig cfg;
  cfg.churn.initial_workers = 5;
  cfg.seed = 99;
  Simulation s1(tasks, a1, cfg);
  Simulation s2(tasks, a2, cfg);
  const SimResult r1 = s1.run();
  const SimResult r2 = s2.run();
  EXPECT_DOUBLE_EQ(r1.makespan_s, r2.makespan_s);
  EXPECT_EQ(r1.accounting.total_attempts(), r2.accounting.total_attempts());
  for (ResourceKind k : tora::core::kManagedResources) {
    EXPECT_DOUBLE_EQ(r1.accounting.awe(k), r2.accounting.awe(k));
  }
}

TEST(Simulation, ExplorationFailuresAreChargedAsFailedAllocation) {
  // Bucketing exploration allocates 1024 MB but tasks need 2000 MB: every
  // early task fails at least once, producing failed-allocation waste.
  const auto tasks = simple_tasks(20, 0.5, 2000.0, 100.0);
  auto alloc = tora::core::make_allocator(tora::core::kGreedyBucketing, 2);
  Simulation sim(tasks, alloc, quiet_config());
  const SimResult r = sim.run();
  EXPECT_EQ(r.tasks_completed, 20u);
  EXPECT_GT(r.accounting.breakdown(ResourceKind::MemoryMB).failed_allocation,
            0.0);
  EXPECT_GT(r.accounting.total_attempts(), 20u);
}

TEST(Simulation, AccountingMatchesGroundTruthConsumption) {
  // Total consumption must equal sum(demand * duration) for completed tasks
  // regardless of the policy.
  const auto tasks = simple_tasks(25, 1.5, 800.0, 200.0, 7.0);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 3);
  Simulation sim(tasks, alloc, quiet_config());
  const SimResult r = sim.run();
  const double expected_mem = 25 * 800.0 * 7.0;
  EXPECT_NEAR(r.accounting.breakdown(ResourceKind::MemoryMB).consumption,
              expected_mem, 1e-6);
}

TEST(Simulation, TaskAboveCapacityIsFatalNotHung) {
  auto tasks = simple_tasks(3, 1.0, 500.0, 100.0);
  tasks[1].demand[ResourceKind::MemoryMB] = 100000.0;  // beyond 64 GB worker
  auto alloc = tora::core::make_allocator(tora::core::kGreedyBucketing, 4);
  Simulation sim(tasks, alloc, quiet_config());
  const SimResult r = sim.run();
  EXPECT_EQ(r.tasks_fatal, 1u);
  EXPECT_EQ(r.tasks_completed, 2u);
}

TEST(Simulation, ChurnEvictionsRequeueWithoutPolicyBlame) {
  const auto tasks = simple_tasks(200, 1.0, 500.0, 100.0, 50.0);
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  SimConfig cfg;
  cfg.churn.enabled = true;
  cfg.churn.initial_workers = 10;
  cfg.churn.min_workers = 4;
  cfg.churn.max_workers = 12;
  cfg.churn.mean_interarrival_s = 40.0;
  cfg.churn.mean_lifetime_s = 120.0;  // aggressive churn
  cfg.seed = 17;
  Simulation sim(tasks, alloc, cfg);
  const SimResult r = sim.run();
  EXPECT_EQ(r.tasks_completed, 200u);
  EXPECT_GT(r.total_leaves, 0u);
  // Whole machine cannot under-allocate, so any failed-allocation waste
  // would indicate evictions leaking into the paper metric.
  EXPECT_DOUBLE_EQ(r.accounting.breakdown(ResourceKind::Cores).failed_allocation,
                   0.0);
  EXPECT_GT(r.evictions, 0u);
  EXPECT_GT(r.evicted_alloc_seconds.cores(), 0.0);
}

TEST(Simulation, PoolStaysWithinBounds) {
  const auto tasks = simple_tasks(100, 1.0, 500.0, 100.0, 20.0);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 2);
  SimConfig cfg;
  cfg.churn.enabled = true;
  cfg.churn.initial_workers = 25;
  cfg.churn.min_workers = 20;
  cfg.churn.max_workers = 50;
  cfg.seed = 23;
  Simulation sim(tasks, alloc, cfg);
  const SimResult r = sim.run();
  EXPECT_LE(r.peak_workers, 50u);
  EXPECT_EQ(r.tasks_completed, 100u);
}

TEST(Simulation, RunTwiceThrows) {
  const auto tasks = simple_tasks(1, 1.0, 1.0, 1.0);
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  Simulation sim(tasks, alloc, quiet_config());
  (void)sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulation, RejectsMalformedTasks) {
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  std::vector<TaskSpec> bad = simple_tasks(2, 1.0, 1.0, 1.0);
  bad[1].id = 5;  // non-dense
  EXPECT_THROW(Simulation(bad, alloc, quiet_config()), std::invalid_argument);
  auto zero_dur = simple_tasks(1, 1.0, 1.0, 1.0);
  zero_dur[0].duration_s = 0.0;
  EXPECT_THROW(Simulation(zero_dur, alloc, quiet_config()),
               std::invalid_argument);
  auto bad_peak = simple_tasks(1, 1.0, 1.0, 1.0);
  bad_peak[0].peak_fraction = 0.0;
  EXPECT_THROW(Simulation(bad_peak, alloc, quiet_config()),
               std::invalid_argument);
}

TEST(Simulation, StaggeredSubmissionOrdersExecution) {
  const auto tasks = simple_tasks(10, 1.0, 100.0, 100.0, 5.0);
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  SimConfig cfg = quiet_config();
  cfg.churn.initial_workers = 20;
  cfg.submit_interval_s = 100.0;  // strictly serialized arrivals
  Simulation sim(tasks, alloc, cfg);
  const SimResult r = sim.run();
  // Last task arrives at t=900 and runs 5s.
  EXPECT_NEAR(r.makespan_s, 905.0, 1e-9);
}

TEST(Simulation, MonitorIntervalDelaysKills) {
  // Step ramp kills at 5.0 s; a 4 s monitor rounds it to 8.0 s.
  auto tasks = simple_tasks(1, 0.5, 1500.0, 100.0, 10.0);
  auto alloc = tora::core::make_allocator(tora::core::kGreedyBucketing, 6);
  SimConfig cfg = quiet_config();
  cfg.monitor_interval_s = 4.0;
  Simulation sim(tasks, alloc, cfg);
  const SimResult r = sim.run();
  const auto& mem = r.accounting.breakdown(ResourceKind::MemoryMB);
  EXPECT_NEAR(mem.failed_allocation, 1024.0 * 8.0, 1e-9);
}

TEST(Simulation, AttemptLimitMakesTaskFatal) {
  // A task demanding more than the worker capacity in memory is clamped and
  // goes fatal; one demanding within capacity but with a tiny attempt cap
  // also goes fatal via the attempt limit.
  auto tasks = simple_tasks(1, 0.5, 60000.0, 100.0, 10.0);
  auto alloc = tora::core::make_allocator(tora::core::kGreedyBucketing, 7);
  SimConfig cfg = quiet_config();
  cfg.max_attempts_per_task = 2;  // exploration needs ~6 doublings
  Simulation sim(tasks, alloc, cfg);
  const SimResult r = sim.run();
  EXPECT_EQ(r.tasks_fatal, 1u);
  EXPECT_EQ(r.tasks_completed, 0u);
}

TEST(Simulation, PoolUtilizationIntegrals) {
  // One worker, one whole-machine task of 10 s, then 10 s of drain time is
  // impossible (run ends at last completion): utilization = committed/capacity
  // over [0, 10] = 100% cores.
  const auto tasks = simple_tasks(1, 1.0, 100.0, 100.0, 10.0);
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  SimConfig cfg = quiet_config();
  cfg.churn.initial_workers = 1;
  Simulation sim(tasks, alloc, cfg);
  const SimResult r = sim.run();
  EXPECT_NEAR(r.pool_utilization(ResourceKind::Cores), 1.0, 1e-9);
  EXPECT_NEAR(r.capacity_integral.cores(), 16.0 * 10.0, 1e-9);
  EXPECT_NEAR(r.committed_integral.cores(), 16.0 * 10.0, 1e-9);
}

TEST(Simulation, PoolUtilizationPartial) {
  // Two workers but a single 1-core-committed... whole_machine commits all.
  // Use max_seen after a seed record? Simpler: 1 task on 2 workers ->
  // utilization 50% (one worker fully committed, one idle).
  const auto tasks = simple_tasks(1, 1.0, 100.0, 100.0, 10.0);
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  SimConfig cfg = quiet_config();
  cfg.churn.initial_workers = 2;
  Simulation sim(tasks, alloc, cfg);
  const SimResult r = sim.run();
  EXPECT_NEAR(r.pool_utilization(ResourceKind::Cores), 0.5, 1e-9);
}

TEST(Simulation, UtilizationBoundedByOne) {
  const auto tasks = simple_tasks(60, 2.0, 3000.0, 500.0, 20.0);
  auto alloc = tora::core::make_allocator(tora::core::kExhaustiveBucketing, 3);
  Simulation sim(tasks, alloc, quiet_config());
  const SimResult r = sim.run();
  for (ResourceKind k : tora::core::kManagedResources) {
    EXPECT_GE(r.pool_utilization(k), 0.0);
    EXPECT_LE(r.pool_utilization(k), 1.0 + 1e-9);
  }
}

TEST(Simulation, FailedAttemptRuntimeUsesPeakFraction) {
  // One task, known allocation trajectory: exploration gives 1024 MB, task
  // needs 1500 MB -> one failed attempt of peak_fraction * duration.
  auto tasks = simple_tasks(1, 0.5, 1500.0, 100.0, 10.0);
  tasks[0].peak_fraction = 0.25;
  auto alloc = tora::core::make_allocator(tora::core::kGreedyBucketing, 6);
  Simulation sim(tasks, alloc, quiet_config());
  const SimResult r = sim.run();
  const auto& mem = r.accounting.breakdown(ResourceKind::MemoryMB);
  // Failed attempt: 1024 MB for 2.5 s.
  EXPECT_NEAR(mem.failed_allocation, 1024.0 * 2.5, 1e-9);
  // Success attempt: 2048 MB for 10 s.
  EXPECT_NEAR(mem.allocation, 1024.0 * 2.5 + 2048.0 * 10.0, 1e-9);
  EXPECT_NEAR(r.makespan_s, 12.5, 1e-9);
}

}  // namespace
