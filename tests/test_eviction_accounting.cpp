// Eviction accounting invariants across both runtimes: the paper's waste
// metric (WasteAccounting) charges only allocation-induced failures to the
// algorithm. Infrastructure losses — churned workers in the simulator,
// dead/evicted workers in the protocol runtime — are tracked separately
// (SimResult::evicted_alloc_seconds, ProtocolManager::evicted_alloc) and
// must never leak into failed-allocation waste.

#include <gtest/gtest.h>

#include <vector>

#include "core/registry.hpp"
#include "proto/fault.hpp"
#include "proto/manager.hpp"
#include "sim/simulation.hpp"

namespace {

using tora::core::ResourceKind;
using tora::core::ResourceVector;
using tora::core::TaskSpec;
using tora::proto::ChaosConfig;
using tora::proto::CrashPoint;
using tora::proto::ProtocolRuntime;
using tora::sim::SimConfig;
using tora::sim::SimResult;
using tora::sim::Simulation;

std::vector<TaskSpec> simple_tasks(std::size_t n, double mem = 500.0) {
  std::vector<TaskSpec> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = i;
    t.category = "c";
    t.demand = ResourceVector{1.0, mem, 50.0};
    t.duration_s = 10.0;
    t.peak_fraction = 0.5;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

TEST(EvictionAccounting, SimulatorChurnCostStaysOutOfPolicyWaste) {
  const auto tasks = simple_tasks(150);
  // Whole machine can never under-allocate, so the only possible source of
  // failed-allocation waste would be evictions leaking into the metric.
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  SimConfig cfg;
  cfg.churn.enabled = true;
  cfg.churn.initial_workers = 8;
  cfg.churn.min_workers = 3;
  cfg.churn.max_workers = 10;
  cfg.churn.mean_interarrival_s = 40.0;
  cfg.churn.mean_lifetime_s = 100.0;  // aggressive churn
  cfg.seed = 29;
  Simulation sim(tasks, alloc, cfg);
  const SimResult r = sim.run();
  EXPECT_EQ(r.tasks_completed, 150u);
  ASSERT_GT(r.evictions, 0u);  // the scenario must actually evict
  // The eviction cost is visible — in its own ledger...
  EXPECT_GT(r.evicted_alloc_seconds.cores(), 0.0);
  EXPECT_GT(r.evicted_alloc_seconds.memory_mb(), 0.0);
  // ...and only there: zero failed-allocation waste in every dimension.
  EXPECT_DOUBLE_EQ(
      r.accounting.breakdown(ResourceKind::Cores).failed_allocation, 0.0);
  EXPECT_DOUBLE_EQ(
      r.accounting.breakdown(ResourceKind::MemoryMB).failed_allocation, 0.0);
  // One accounted attempt per task: evicted attempts are cancelled, not
  // logged as failures.
  EXPECT_EQ(r.accounting.total_attempts(), 150u);
}

TEST(EvictionAccounting, ProtocolWorkerDeathCostStaysOutOfPolicyWaste) {
  const auto tasks = simple_tasks(12);
  auto alloc = tora::core::make_allocator(tora::core::kWholeMachine, 1);
  ChaosConfig chaos;
  chaos.worker_faults.resize(3);
  // The crashed worker executes its task but dies before reporting: the
  // attempt's cost is an eviction, not the allocator's fault.
  chaos.worker_faults[1].crash_point = CrashPoint::BeforeResult;
  ProtocolRuntime runtime(
      tasks, alloc, 3, ResourceVector{16.0, 65536.0, 65536.0, 0.0}, chaos);
  const auto r = runtime.run();
  EXPECT_EQ(r.tasks_completed, 12u);
  EXPECT_EQ(r.tasks_fatal, 0u);
  EXPECT_EQ(r.chaos.worker_crashes, 1u);
  ASSERT_GE(r.chaos.protocol_evictions, 1u);
  // The lost attempt's allocation shows up in the eviction ledger...
  EXPECT_GT(r.evicted_alloc.memory_mb(), 0.0);
  EXPECT_GT(r.evicted_alloc.cores(), 0.0);
  // ...and never in the paper metric: whole machine cannot under-allocate.
  EXPECT_DOUBLE_EQ(
      r.accounting.breakdown(ResourceKind::MemoryMB).failed_allocation, 0.0);
  // Exactly one accounted (successful) attempt per task — the requeued
  // attempt was not double-charged.
  EXPECT_EQ(r.accounting.task_count(), 12u);
  EXPECT_EQ(r.accounting.total_attempts(), 12u);
}

TEST(EvictionAccounting, EvictMessageChargesEvictionLedgerOnly) {
  const auto tasks = simple_tasks(1);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 1);
  auto link = std::make_shared<tora::proto::DuplexLink>();
  tora::proto::ProtocolManager manager(tasks, alloc, {link});

  tora::proto::Message ready;
  ready.type = tora::proto::MsgType::WorkerReady;
  ready.worker_id = 0;
  ready.resources = ResourceVector{16.0, 65536.0, 65536.0, 0.0};
  link->to_manager.send(encode(ready));
  manager.start();
  manager.pump();
  const auto dispatch = tora::proto::decode(*link->to_worker.poll());
  ASSERT_TRUE(dispatch);

  tora::proto::Message evict;
  evict.type = tora::proto::MsgType::Evict;
  evict.worker_id = 0;
  evict.task_id = dispatch->task_id;
  link->to_manager.send(encode(evict));
  manager.pump();
  EXPECT_EQ(manager.chaos().protocol_evictions, 1u);
  EXPECT_EQ(manager.evicted_alloc(), dispatch->resources);
  // Nothing reached the waste metric: no task finished, nothing accounted.
  EXPECT_EQ(manager.accounting().task_count(), 0u);
}

}  // namespace
