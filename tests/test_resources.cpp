#include "core/resources.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using tora::core::ResourceKind;
using tora::core::ResourceVector;

TEST(ResourceVector, DefaultIsZero) {
  const ResourceVector v;
  EXPECT_EQ(v.cores(), 0.0);
  EXPECT_EQ(v.memory_mb(), 0.0);
  EXPECT_EQ(v.disk_mb(), 0.0);
  EXPECT_EQ(v.time_s(), 0.0);
}

TEST(ResourceVector, IndexAccess) {
  ResourceVector v(1.0, 2.0, 3.0, 4.0);
  EXPECT_EQ(v[ResourceKind::Cores], 1.0);
  EXPECT_EQ(v[ResourceKind::MemoryMB], 2.0);
  EXPECT_EQ(v[ResourceKind::DiskMB], 3.0);
  EXPECT_EQ(v[ResourceKind::TimeS], 4.0);
  v[ResourceKind::Cores] = 9.0;
  EXPECT_EQ(v.cores(), 9.0);
}

TEST(ResourceVector, FitsWithinAllDims) {
  const ResourceVector demand(2.0, 1000.0, 500.0);
  EXPECT_TRUE(demand.fits_within({2.0, 1000.0, 500.0}));
  EXPECT_TRUE(demand.fits_within({4.0, 2000.0, 600.0}));
  EXPECT_FALSE(demand.fits_within({1.9, 2000.0, 600.0}));
  EXPECT_FALSE(demand.fits_within({4.0, 999.0, 600.0}));
  EXPECT_FALSE(demand.fits_within({4.0, 2000.0, 499.0}));
}

TEST(ResourceVector, TimeIsNotEnforced) {
  // The paper's evaluation manages cores/memory/disk only.
  const ResourceVector demand(1.0, 1.0, 1.0, 100.0);
  EXPECT_TRUE(demand.fits_within({1.0, 1.0, 1.0, 0.0}));
}

TEST(ResourceVector, ExceededMaskBits) {
  const ResourceVector demand(2.0, 1000.0, 500.0);
  EXPECT_EQ(demand.exceeded_mask({4.0, 2000.0, 600.0}), 0u);
  EXPECT_EQ(demand.exceeded_mask({1.0, 2000.0, 600.0}), 1u);        // cores
  EXPECT_EQ(demand.exceeded_mask({4.0, 500.0, 600.0}), 2u);         // memory
  EXPECT_EQ(demand.exceeded_mask({4.0, 2000.0, 100.0}), 4u);        // disk
  EXPECT_EQ(demand.exceeded_mask({1.0, 500.0, 100.0}), 7u);         // all
}

TEST(ResourceVector, Arithmetic) {
  const ResourceVector a(1.0, 2.0, 3.0, 4.0);
  const ResourceVector b(0.5, 1.0, 1.5, 2.0);
  const ResourceVector sum = a + b;
  EXPECT_EQ(sum.cores(), 1.5);
  EXPECT_EQ(sum.time_s(), 6.0);
  const ResourceVector diff = a - b;
  EXPECT_EQ(diff.memory_mb(), 1.0);
  const ResourceVector scaled = a * 2.0;
  EXPECT_EQ(scaled.disk_mb(), 6.0);
}

TEST(ResourceVector, MaxMinWith) {
  const ResourceVector a(1.0, 5.0, 2.0);
  const ResourceVector b(3.0, 1.0, 2.0);
  const ResourceVector mx = a.max_with(b);
  EXPECT_EQ(mx.cores(), 3.0);
  EXPECT_EQ(mx.memory_mb(), 5.0);
  const ResourceVector mn = a.min_with(b);
  EXPECT_EQ(mn.cores(), 1.0);
  EXPECT_EQ(mn.memory_mb(), 1.0);
}

TEST(ResourceVector, NonNegative) {
  EXPECT_TRUE(ResourceVector(0.0, 0.0, 0.0).non_negative());
  EXPECT_FALSE((ResourceVector(1.0, 1.0, 1.0) -
                ResourceVector(2.0, 0.0, 0.0)).non_negative());
}

TEST(ResourceVector, StreamOutput) {
  std::ostringstream oss;
  oss << ResourceVector(1.0, 2.0, 3.0, 4.0);
  EXPECT_NE(oss.str().find("cores=1"), std::string::npos);
  EXPECT_NE(oss.str().find("mem=2"), std::string::npos);
}

TEST(ResourceKindTest, Names) {
  EXPECT_EQ(tora::core::to_string(ResourceKind::Cores), "cores");
  EXPECT_EQ(tora::core::to_string(ResourceKind::MemoryMB), "memory_mb");
  EXPECT_EQ(tora::core::to_string(ResourceKind::DiskMB), "disk_mb");
  EXPECT_EQ(tora::core::to_string(ResourceKind::TimeS), "time_s");
}

}  // namespace
