// The binary recovery snapshot: sealed-container integrity, bit-exact
// allocator capture (history, revision, sampler state, master-Rng
// position), validation against the wrong destination, and the recovery
// log's fallback to the previous generation when a snapshot is torn.

#include "core/recovery/snapshot.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/recovery/recovery_log.hpp"
#include "core/recovery/storage.hpp"
#include "core/registry.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace {

using tora::core::RecoveryCounters;
using tora::core::TaskAllocator;
using tora::core::recovery::load_allocator;
using tora::core::recovery::MemStorage;
using tora::core::recovery::open_snapshot;
using tora::core::recovery::RecordType;
using tora::core::recovery::RecoveryLog;
using tora::core::recovery::save_allocator;
using tora::core::recovery::seal_snapshot;
using tora::util::ByteReader;
using tora::util::ByteWriter;

// ----------------------------------------------------------- sealed format

TEST(SnapshotContainer, SealOpenRoundTrip) {
  const std::string body("arbitrary \x00\xff bytes\n", 19);
  const std::string sealed = seal_snapshot(body);
  const std::optional<std::string> opened = open_snapshot(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, body);
}

TEST(SnapshotContainer, EveryTruncationIsRejected) {
  const std::string sealed = seal_snapshot("snapshot body");
  for (std::size_t keep = 0; keep < sealed.size(); ++keep) {
    EXPECT_FALSE(open_snapshot(sealed.substr(0, keep)).has_value())
        << "keep=" << keep;
  }
}

TEST(SnapshotContainer, EverySingleByteCorruptionIsRejected) {
  const std::string sealed = seal_snapshot("snapshot body");
  for (std::size_t flip = 0; flip < sealed.size(); ++flip) {
    std::string mangled = sealed;
    mangled[flip] = static_cast<char>(mangled[flip] ^ 0x01);
    EXPECT_FALSE(open_snapshot(mangled).has_value()) << "flip=" << flip;
  }
}

// ------------------------------------------------------- allocator capture

// Drives an allocator through the full lifecycle (exploration, retries,
// completions across categories) so policies get created and their sampler
// Rngs advance — the state history replay alone cannot rebuild.
void exercise(TaskAllocator& a, std::uint64_t seed) {
  tora::util::Rng values(seed);
  const char* cats[] = {"small", "big", "spiky"};
  for (int i = 0; i < 120; ++i) {
    const std::string cat = cats[i % 3];
    const auto alloc = a.allocate(cat);
    if (i % 7 == 0) {
      (void)a.allocate_retry(cat, alloc, 0x2);
    }
    a.record_completion(
        cat, {values.uniform(0.5, 4.0), values.uniform(100.0, 4000.0),
              values.uniform(10.0, 500.0)});
  }
}

// Every registered policy: the paper's seven plus hybrid, kmeans and the
// change-aware wrapper (which owns an extra Rng of its own).
const std::vector<std::string>& every_policy() {
  return tora::core::extended_policy_names();
}

std::string capture(const TaskAllocator& a) {
  ByteWriter w;
  save_allocator(a, w);
  return std::string(w.bytes());
}

TEST(AllocatorSnapshot, RestoreIsBitExact) {
  for (const std::string& name : every_policy()) {
    auto original = tora::core::make_allocator(name, 7);
    exercise(original, 3);
    const std::string saved = capture(original);

    auto restored = tora::core::make_allocator(name, 7);
    ByteReader r(saved);
    load_allocator(restored, r);
    EXPECT_TRUE(r.done()) << name;

    // Re-capturing must produce identical bytes: history, completed counts,
    // created-policy set, sampler states and the master-Rng position all
    // round-tripped.
    EXPECT_EQ(capture(restored), saved) << name;

    // And the two allocators behave identically afterwards — the real
    // contract behind the byte equality.
    for (int i = 0; i < 30; ++i) {
      const std::string cat = i % 2 == 0 ? "small" : "spiky";
      EXPECT_EQ(restored.allocate(cat), original.allocate(cat))
          << name << " draw " << i;
      original.record_completion(cat, {1.0, 300.0 + i, 30.0});
      restored.record_completion(cat, {1.0, 300.0 + i, 30.0});
    }
    EXPECT_EQ(original.revision(), restored.revision()) << name;
  }
}

TEST(AllocatorSnapshot, WrongPolicyNameThrows) {
  auto original = tora::core::make_allocator(tora::core::kGreedyBucketing, 7);
  exercise(original, 3);
  const std::string saved = capture(original);

  auto wrong = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  ByteReader r(saved);
  EXPECT_THROW(load_allocator(wrong, r), std::runtime_error);
}

TEST(AllocatorSnapshot, WrongConfigHashThrows) {
  auto original = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  exercise(original, 3);
  const std::string saved = capture(original);

  auto wrong = tora::core::make_allocator(tora::core::kMaxSeen, 7,
                                          {8.0, 1024.0, 1024.0, 0.0});
  ByteReader r(saved);
  EXPECT_THROW(load_allocator(wrong, r), std::runtime_error);
}

TEST(AllocatorSnapshot, HistorylessSourceIsRejected) {
  tora::core::AllocatorConfig cfg;
  cfg.record_history = false;
  TaskAllocator a("x", tora::core::make_policy_factory("max_seen", 1), cfg);
  ByteWriter w;
  EXPECT_THROW(save_allocator(a, w), std::logic_error);
}

// ------------------------------------------------------- log generations

TEST(RecoveryLogScan, GenesisIsEmpty) {
  MemStorage storage;
  RecoveryLog log(storage);
  const RecoveryLog::ScanResult scan = log.scan();
  EXPECT_EQ(scan.epoch, 0u);
  EXPECT_FALSE(scan.snapshot.has_value());
  EXPECT_TRUE(scan.tail.empty());
  EXPECT_FALSE(scan.torn_tail);
}

TEST(RecoveryLogScan, RotationKeepsOnlyTheNewGeneration) {
  MemStorage storage;
  RecoveryCounters counters;
  RecoveryLog log(storage, &counters);
  log.open_fresh();
  log.append(RecordType::Started, "");
  log.sync();
  log.rotate("state at rotation", 5);
  EXPECT_EQ(log.epoch(), 1u);
  log.append(RecordType::Tick, "abc");
  log.sync();

  const std::vector<std::string> names = storage.list();
  EXPECT_EQ(names, (std::vector<std::string>{"journal-1", "snapshot-1"}));
  EXPECT_EQ(counters.snapshots_written, 1u);

  RecoveryLog reader(storage);
  const RecoveryLog::ScanResult scan = reader.scan();
  EXPECT_EQ(scan.epoch, 1u);
  ASSERT_TRUE(scan.snapshot.has_value());
  EXPECT_EQ(*scan.snapshot, "state at rotation");
  ASSERT_EQ(scan.tail.size(), 2u);  // Epoch header + the Tick record
  EXPECT_EQ(scan.tail[0].type, RecordType::Epoch);
  EXPECT_EQ(scan.tail[1].type, RecordType::Tick);
  EXPECT_EQ(scan.tail[1].payload, "abc");
}

TEST(RecoveryLogScan, TornSnapshotFallsBackToPreviousGeneration) {
  MemStorage storage;
  // Hand-build the on-disk situation the rotation protocol can leave when
  // the NEXT generation's snapshot is damaged: generation 1 complete,
  // generation 2's snapshot corrupted mid-file.
  storage.write_file_durable(RecoveryLog::snapshot_name(1),
                             seal_snapshot("good old state"));
  std::string torn = seal_snapshot("new state");
  torn.resize(torn.size() / 2);
  storage.write_file_durable(RecoveryLog::snapshot_name(2), torn);

  RecoveryCounters counters;
  RecoveryLog log(storage, &counters);
  const RecoveryLog::ScanResult scan = log.scan();
  EXPECT_EQ(scan.epoch, 1u);
  ASSERT_TRUE(scan.snapshot.has_value());
  EXPECT_EQ(*scan.snapshot, "good old state");
  EXPECT_TRUE(scan.tail.empty());  // no journal-1: empty tail, not an error
  EXPECT_EQ(counters.torn_snapshots_discarded, 1u);
}

TEST(RecoveryLogScan, IgnoresTmpFilesAndTornJournalTails) {
  MemStorage storage;
  RecoveryCounters counters;
  RecoveryLog log(storage, &counters);
  log.open_fresh();
  log.append(RecordType::Started, "");
  log.sync();
  log.append(RecordType::Tick, "unsynced tail dies");
  storage.write_file_durable("snapshot-3.tmp", "half-written snapshot");
  storage.crash();

  RecoveryLog reader(storage, &counters);
  const RecoveryLog::ScanResult scan = reader.scan();
  EXPECT_EQ(scan.epoch, 0u);
  EXPECT_FALSE(scan.snapshot.has_value());
  ASSERT_EQ(scan.tail.size(), 2u);  // Epoch + Started; the Tick was unsynced
  EXPECT_EQ(scan.tail[1].type, RecordType::Started);
}

TEST(RecoveryLogScan, AppendWithoutOpenThrows) {
  MemStorage storage;
  RecoveryLog log(storage);
  EXPECT_THROW(log.append(RecordType::Started, ""), std::logic_error);
  EXPECT_THROW(log.sync(), std::logic_error);
}

}  // namespace
