// Simulation snapshot/resume: a run saved mid-flight and restored into a
// fresh Simulation (fresh allocator of the same policy/seed) must finish
// bit-for-bit identical to the uninterrupted run — same final save_state
// bytes, same results. This is the simulator-side twin of the protocol
// manager's crash-recovery equality.

#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "util/bytes.hpp"

namespace {

using tora::core::ResourceKind;
using tora::core::ResourceVector;
using tora::core::TaskSpec;
using tora::sim::SimConfig;
using tora::sim::SimResult;
using tora::sim::Simulation;
using tora::util::ByteReader;
using tora::util::ByteWriter;

std::vector<TaskSpec> varied_tasks(std::size_t n) {
  std::vector<TaskSpec> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = i;
    t.category = i % 4 == 0 ? "wide" : "narrow";
    t.demand = i % 4 == 0 ? ResourceVector{2.0, 2500.0, 300.0}
                          : ResourceVector{1.0, 600.0, 60.0};
    t.duration_s = 8.0 + static_cast<double>(i % 7);
    t.peak_fraction = 0.6;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

SimConfig churny_config() {
  SimConfig cfg;
  cfg.churn.enabled = true;
  cfg.churn.initial_workers = 5;
  cfg.churn.min_workers = 3;
  cfg.churn.max_workers = 8;
  cfg.churn.mean_interarrival_s = 30.0;
  cfg.churn.mean_lifetime_s = 120.0;
  cfg.submit_interval_s = 1.0;
  cfg.seed = 11;
  return cfg;
}

std::string final_state(Simulation& sim) {
  ByteWriter w;
  sim.save_state(w);
  return w.take();
}

TEST(SimSnapshot, ResumedRunIsBitExact) {
  const auto tasks = varied_tasks(60);
  const SimConfig cfg = churny_config();
  for (const char* policy : {"greedy_bucketing", "max_seen", "kmeans_bucketing"}) {
    // Uninterrupted reference run, stepped so we can capture the final state.
    auto ref_alloc = tora::core::make_allocator(policy, 7);
    Simulation reference(tasks, ref_alloc, cfg);
    const SimResult want = reference.run();
    const std::string want_state = final_state(reference);

    // Interrupt after a prefix of events, snapshot, resume elsewhere.
    for (const int prefix : {1, 37, 180}) {
      auto ab = tora::core::make_allocator(policy, 7);
      Simulation before(tasks, ab, cfg);
      for (int i = 0; i < prefix && before.step(); ++i) {
      }
      ByteWriter w;
      before.save_state(w);
      const std::string saved = w.take();

      auto ar = tora::core::make_allocator(policy, 7);
      Simulation after(tasks, ar, cfg);
      ByteReader r(saved);
      after.load_state(r);
      EXPECT_TRUE(r.done()) << policy << " prefix " << prefix;
      const SimResult got =
          after.core().done() ? after.result() : after.run();

      EXPECT_EQ(final_state(after), want_state)
          << policy << " diverged after resume at event " << prefix;
      EXPECT_DOUBLE_EQ(got.makespan_s, want.makespan_s);
      EXPECT_EQ(got.tasks_completed, want.tasks_completed);
      EXPECT_EQ(got.tasks_fatal, want.tasks_fatal);
      EXPECT_EQ(got.evictions, want.evictions);
      EXPECT_EQ(got.total_joins, want.total_joins);
      EXPECT_EQ(got.total_leaves, want.total_leaves);
      EXPECT_EQ(got.committed_integral, want.committed_integral);
    }
  }
}

TEST(SimSnapshot, MidRunResultIsReadable) {
  const auto tasks = varied_tasks(20);
  auto alloc = tora::core::make_allocator(tora::core::kGreedyBucketing, 7);
  Simulation sim(tasks, alloc, churny_config());
  for (int i = 0; i < 25 && sim.step(); ++i) {
  }
  const SimResult mid = sim.result();
  EXPECT_LE(mid.tasks_completed, tasks.size());
  const SimResult done = sim.run();
  EXPECT_GE(done.tasks_completed + done.tasks_fatal, mid.tasks_completed);
  EXPECT_EQ(done.tasks_completed + done.tasks_fatal, tasks.size());
}

TEST(SimSnapshot, LoadAfterStartThrows) {
  const auto tasks = varied_tasks(8);
  auto a = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  Simulation source(tasks, a, churny_config());
  source.step();
  ByteWriter w;
  source.save_state(w);
  const std::string saved = w.take();

  auto b = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  Simulation late(tasks, b, churny_config());
  late.step();
  ByteReader r(saved);
  EXPECT_THROW(late.load_state(r), std::logic_error);
}

TEST(SimSnapshot, WorkloadMismatchThrows) {
  const auto tasks = varied_tasks(8);
  auto a = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  Simulation source(tasks, a, churny_config());
  source.step();
  ByteWriter w;
  source.save_state(w);
  const std::string saved = w.take();

  const auto other = varied_tasks(9);
  auto b = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  Simulation wrong(other, b, churny_config());
  ByteReader r(saved);
  EXPECT_THROW(wrong.load_state(r), std::runtime_error);
}

TEST(SimSnapshot, RunTwiceStillThrows) {
  const auto tasks = varied_tasks(8);
  auto a = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  SimConfig cfg;
  cfg.churn.enabled = false;
  cfg.churn.initial_workers = 3;
  Simulation sim(tasks, a, cfg);
  (void)sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
}

}  // namespace
