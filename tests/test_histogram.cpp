#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using tora::util::FixedWidthHistogram;

TEST(FixedWidthHistogram, RejectsBadWidth) {
  EXPECT_THROW(FixedWidthHistogram(0.0), std::invalid_argument);
  EXPECT_THROW(FixedWidthHistogram(-1.0), std::invalid_argument);
}

TEST(FixedWidthHistogram, PaperDiskRounding) {
  // §V-C: a 306 MB disk consumption rounds to a 500 MB allocation with the
  // Work Queue 250 MB histogram.
  FixedWidthHistogram h(250.0);
  EXPECT_DOUBLE_EQ(h.round_up(306.0), 500.0);
  EXPECT_DOUBLE_EQ(h.round_up(250.0), 250.0);
  EXPECT_DOUBLE_EQ(h.round_up(251.0), 500.0);
  EXPECT_DOUBLE_EQ(h.round_up(1.0), 250.0);
  EXPECT_DOUBLE_EQ(h.round_up(0.0), 0.0);
}

TEST(FixedWidthHistogram, TracksMaxAndCount) {
  FixedWidthHistogram h(10.0);
  EXPECT_TRUE(h.empty());
  h.add(5.0);
  h.add(25.0);
  h.add(15.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.max_value(), 25.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 3.0);
}

TEST(FixedWidthHistogram, WeightedCdf) {
  FixedWidthHistogram h(1.0);
  h.add(1.0, 1.0);
  h.add(2.0, 3.0);
  EXPECT_DOUBLE_EQ(h.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(h.cdf(1.5), 0.25);
  EXPECT_DOUBLE_EQ(h.cdf(2.0), 1.0);
  EXPECT_DOUBLE_EQ(h.cdf(100.0), 1.0);
}

TEST(FixedWidthHistogram, EmptyCdfIsZero) {
  FixedWidthHistogram h(1.0);
  EXPECT_EQ(h.cdf(10.0), 0.0);
  EXPECT_DOUBLE_EQ(h.max_value(), 0.0);
}

TEST(FixedWidthHistogram, DistinctValuesSortedDeduped) {
  FixedWidthHistogram h(1.0);
  h.add(3.0);
  h.add(1.0);
  h.add(3.0);
  h.add(2.0);
  const auto v = h.distinct_values();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(FixedWidthHistogram, BucketsAccumulateWeight) {
  FixedWidthHistogram h(10.0);
  h.add(5.0, 2.0);   // bucket edge 10
  h.add(9.0, 1.0);   // bucket edge 10
  h.add(15.0, 4.0);  // bucket edge 20
  const auto b = h.buckets();
  ASSERT_EQ(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b[0].first, 10.0);
  EXPECT_DOUBLE_EQ(b[0].second, 3.0);
  EXPECT_DOUBLE_EQ(b[1].first, 20.0);
  EXPECT_DOUBLE_EQ(b[1].second, 4.0);
}

TEST(FixedWidthHistogram, RejectsNegativeInput) {
  FixedWidthHistogram h(1.0);
  EXPECT_THROW(h.add(-1.0), std::invalid_argument);
  EXPECT_THROW(h.add(1.0, -2.0), std::invalid_argument);
}

}  // namespace
