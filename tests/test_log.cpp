#include "util/log.hpp"

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>

namespace {

using tora::util::LogLevel;

/// Captures std::clog for the duration of a test.
class ClogCapture {
 public:
  ClogCapture() : old_(std::clog.rdbuf(buffer_.rdbuf())) {}
  ~ClogCapture() { std::clog.rdbuf(old_); }
  std::string str() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

/// Restores the global level after each test.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = tora::util::log_level(); }
  void TearDown() override { tora::util::set_log_level(saved_); }
  LogLevel saved_ = LogLevel::Warn;
};

TEST_F(LogTest, DefaultLevelSuppressesInfo) {
  tora::util::set_log_level(LogLevel::Warn);
  ClogCapture cap;
  tora::util::log_info("hidden");
  tora::util::log_warn("visible");
  EXPECT_EQ(cap.str().find("hidden"), std::string::npos);
  EXPECT_NE(cap.str().find("visible"), std::string::npos);
}

TEST_F(LogTest, LevelsAreOrdered) {
  tora::util::set_log_level(LogLevel::Debug);
  ClogCapture cap;
  tora::util::log_debug("d");
  tora::util::log_error("e");
  EXPECT_NE(cap.str().find("[tora:DEBUG] d"), std::string::npos);
  EXPECT_NE(cap.str().find("[tora:ERROR] e"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  tora::util::set_log_level(LogLevel::Off);
  ClogCapture cap;
  tora::util::log_error("nope");
  EXPECT_TRUE(cap.str().empty());
}

TEST_F(LogTest, StreamsMultipleArguments) {
  tora::util::set_log_level(LogLevel::Info);
  ClogCapture cap;
  tora::util::log_info("x=", 42, " y=", 1.5);
  EXPECT_NE(cap.str().find("x=42 y=1.5"), std::string::npos);
}

TEST_F(LogTest, LevelNames) {
  EXPECT_STREQ(tora::util::log_level_name(LogLevel::Debug), "DEBUG");
  EXPECT_STREQ(tora::util::log_level_name(LogLevel::Info), "INFO");
  EXPECT_STREQ(tora::util::log_level_name(LogLevel::Warn), "WARN");
  EXPECT_STREQ(tora::util::log_level_name(LogLevel::Error), "ERROR");
  EXPECT_STREQ(tora::util::log_level_name(LogLevel::Off), "OFF");
}

}  // namespace
