#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace {

using tora::sim::Event;
using tora::sim::EventKind;
using tora::sim::EventQueue;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(3.0, EventKind::TaskSubmit, 3);
  q.push(1.0, EventKind::TaskSubmit, 1);
  q.push(2.0, EventKind::TaskSubmit, 2);
  EXPECT_EQ(q.pop().a, 1u);
  EXPECT_EQ(q.pop().a, 2u);
  EXPECT_EQ(q.pop().a, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  for (std::uint64_t i = 0; i < 10; ++i) q.push(5.0, EventKind::TaskSubmit, i);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(q.pop().a, i);
}

TEST(EventQueue, NextTimePeeks) {
  EventQueue q;
  q.push(7.5, EventKind::WorkerJoin);
  q.push(2.5, EventKind::WorkerLeave, 4);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
  EXPECT_EQ(q.size(), 2u);
}

TEST(EventQueue, CarriesPayload) {
  EventQueue q;
  q.push(1.0, EventKind::AttemptFinish, 11, 22, 33);
  const Event e = q.pop();
  EXPECT_EQ(e.kind, EventKind::AttemptFinish);
  EXPECT_EQ(e.a, 11u);
  EXPECT_EQ(e.b, 22u);
  EXPECT_EQ(e.epoch, 33u);
}

TEST(EventQueue, RejectsNegativeTime) {
  EventQueue q;
  EXPECT_THROW(q.push(-1.0, EventKind::TaskSubmit), std::invalid_argument);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
}

}  // namespace
