#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/bytes.hpp"

namespace {

using tora::sim::Event;
using tora::sim::EventKind;
using tora::sim::EventQueue;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(3.0, EventKind::TaskSubmit, 3);
  q.push(1.0, EventKind::TaskSubmit, 1);
  q.push(2.0, EventKind::TaskSubmit, 2);
  EXPECT_EQ(q.pop().a, 1u);
  EXPECT_EQ(q.pop().a, 2u);
  EXPECT_EQ(q.pop().a, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  for (std::uint64_t i = 0; i < 10; ++i) q.push(5.0, EventKind::TaskSubmit, i);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(q.pop().a, i);
}

TEST(EventQueue, NextTimePeeks) {
  EventQueue q;
  q.push(7.5, EventKind::WorkerJoin);
  q.push(2.5, EventKind::WorkerLeave, 4);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
  EXPECT_EQ(q.size(), 2u);
}

TEST(EventQueue, CarriesPayload) {
  EventQueue q;
  q.push(1.0, EventKind::AttemptFinish, 11, 22, 33);
  const Event e = q.pop();
  EXPECT_EQ(e.kind, EventKind::AttemptFinish);
  EXPECT_EQ(e.a, 11u);
  EXPECT_EQ(e.b, 22u);
  EXPECT_EQ(e.epoch, 33u);
}

TEST(EventQueue, RejectsNegativeTime) {
  EventQueue q;
  EXPECT_THROW(q.push(-1.0, EventKind::TaskSubmit), std::invalid_argument);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueue, SaveLoadPreservesPopOrderAndSequenceCounter) {
  EventQueue q;
  // Equal times: FIFO tie-break must survive the round-trip.
  q.push(5.0, EventKind::TaskSubmit, 1);
  q.push(2.0, EventKind::WorkerJoin, 2);
  q.push(5.0, EventKind::AttemptFinish, 3, 7, 9);
  q.push(2.0, EventKind::WorkerLeave, 4);

  tora::util::ByteWriter w;
  q.save_state(w);
  EventQueue restored;
  tora::util::ByteReader r(w.bytes());
  restored.load_state(r);
  EXPECT_TRUE(r.done());

  // New pushes continue the original sequence numbering.
  q.push(2.0, EventKind::TaskSubmit, 5);
  restored.push(2.0, EventKind::TaskSubmit, 5);

  while (!q.empty()) {
    ASSERT_FALSE(restored.empty());
    const Event a = q.pop();
    const Event b = restored.pop();
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.b, b.b);
    EXPECT_EQ(a.epoch, b.epoch);
    EXPECT_EQ(a.seq, b.seq);
  }
  EXPECT_TRUE(restored.empty());
}

TEST(EventQueue, LoadRejectsUnknownEventKind) {
  EventQueue q;
  q.push(1.0, EventKind::TaskSubmit, 1);
  tora::util::ByteWriter w;
  q.save_state(w);
  std::string bytes(w.bytes());
  bytes[16 + 8] = 0x7f;  // the kind byte of the first record (after the two
                         // u64 header fields and its f64 time)
  EventQueue restored;
  tora::util::ByteReader r(bytes);
  EXPECT_THROW(restored.load_state(r), std::runtime_error);
}

}  // namespace
