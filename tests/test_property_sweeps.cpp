// Property-style TEST_P sweeps across every allocation policy and several
// record distributions: the cross-cutting invariants that make an allocator
// usable at all (positive predictions, strictly escalating retries,
// terminating retry chains, bucket-set well-formedness), plus end-to-end
// simulator invariants for every (policy × synthetic workflow) pair.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "core/bucketing_policy.hpp"
#include "core/greedy_bucketing.hpp"
#include "core/registry.hpp"
#include "exp/experiment.hpp"
#include "util/rng.hpp"

namespace {

using tora::core::ResourceKind;
using tora::util::Rng;

// ------------------------------------------------- record stream shapes

struct RecordShape {
  const char* name;
  // Generates n record values.
  std::vector<double> (*make)(std::size_t n, Rng& rng);
};

std::vector<double> shape_constant(std::size_t n, Rng&) {
  return std::vector<double>(n, 306.0);
}
std::vector<double> shape_normal(std::size_t n, Rng& rng) {
  std::vector<double> v;
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(std::max(1.0, rng.normal(800.0, 150.0)));
  }
  return v;
}
std::vector<double> shape_exponential(std::size_t n, Rng& rng) {
  std::vector<double> v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(10.0 + rng.exponential(0.002));
  return v;
}
std::vector<double> shape_bimodal(std::size_t n, Rng& rng) {
  std::vector<double> v;
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(rng.bernoulli(0.5) ? rng.uniform(100.0, 120.0)
                                   : rng.uniform(900.0, 1000.0));
  }
  return v;
}
std::vector<double> shape_phase_change(std::size_t n, Rng& rng) {
  std::vector<double> v;
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(i < n / 2 ? rng.uniform(50.0, 60.0)
                          : rng.uniform(500.0, 600.0));
  }
  return v;
}

const RecordShape kShapes[] = {
    {"constant", shape_constant},   {"normal", shape_normal},
    {"exponential", shape_exponential}, {"bimodal", shape_bimodal},
    {"phase_change", shape_phase_change},
};

// --------------------------------------------- policy-level invariants

class PolicyInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {
 protected:
  const std::string& policy_name() const { return std::get<0>(GetParam()); }
  const RecordShape& shape() const { return kShapes[std::get<1>(GetParam())]; }
};

TEST_P(PolicyInvariants, PredictionsPositiveAndRetriesEscalate) {
  auto factory = tora::core::make_policy_factory(policy_name(), 101);
  tora::core::AllocatorConfig cfg;
  auto policy = factory(ResourceKind::MemoryMB, cfg);
  Rng rng(7);
  const auto values = shape().make(120, rng);
  double sig = 1.0;
  for (double v : values) policy->observe(v, sig++);

  for (int i = 0; i < 50; ++i) {
    const double a = policy->predict();
    EXPECT_GT(a, 0.0);
  }
  for (double failed : {1.0, 100.0, 1000.0, 123456.0}) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_GT(policy->retry(failed), failed)
          << policy_name() << " on " << shape().name;
    }
  }
}

TEST_P(PolicyInvariants, RetryChainReachesAnyDemand) {
  auto factory = tora::core::make_policy_factory(policy_name(), 202);
  tora::core::AllocatorConfig cfg;
  auto policy = factory(ResourceKind::MemoryMB, cfg);
  Rng rng(8);
  const auto values = shape().make(60, rng);
  double sig = 1.0;
  for (double v : values) policy->observe(v, sig++);

  const double demand = *std::max_element(values.begin(), values.end()) * 7.3;
  double alloc = policy->predict();
  int steps = 0;
  while (alloc < demand) {
    alloc = policy->retry(alloc);
    ASSERT_LT(++steps, 64) << policy_name() << " on " << shape().name;
  }
  SUCCEED();
}

TEST_P(PolicyInvariants, ObserveIsMonotoneInRecordCount) {
  auto factory = tora::core::make_policy_factory(policy_name(), 303);
  tora::core::AllocatorConfig cfg;
  auto policy = factory(ResourceKind::DiskMB, cfg);
  Rng rng(9);
  const auto values = shape().make(40, rng);
  std::size_t prev = policy->record_count();
  double sig = 1.0;
  for (double v : values) {
    policy->observe(v, sig++);
    // WholeMachine counts observations; every policy must not lose records.
    EXPECT_GE(policy->record_count() + 1, prev + 1);
    prev = policy->record_count();
  }
}

std::vector<std::tuple<std::string, std::size_t>> policy_shape_grid() {
  std::vector<std::tuple<std::string, std::size_t>> grid;
  for (const auto& p : tora::core::extended_policy_names()) {
    for (std::size_t s = 0; s < std::size(kShapes); ++s) grid.emplace_back(p, s);
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAllShapes, PolicyInvariants,
    ::testing::ValuesIn(policy_shape_grid()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::size_t>>&
           info) {
      return std::get<0>(info.param) + "_" +
             kShapes[std::get<1>(info.param)].name;
    });

// -------------------------------------- bucketing-family well-formedness

class BucketSetInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(BucketSetInvariants, BucketsWellFormed) {
  const auto& [policy_name, shape_idx] = GetParam();
  auto factory = tora::core::make_policy_factory(policy_name, 404);
  tora::core::AllocatorConfig cfg;
  auto policy = factory(ResourceKind::MemoryMB, cfg);
  auto* bucketing = dynamic_cast<tora::core::BucketingPolicy*>(policy.get());
  ASSERT_NE(bucketing, nullptr);

  Rng rng(10);
  const auto values = kShapes[shape_idx].make(150, rng);
  double sig = 1.0;
  for (double v : values) bucketing->observe(v, sig++);

  const auto& set = bucketing->buckets();
  ASSERT_FALSE(set.empty());
  double prob_sum = 0.0;
  double prev_rep = -1.0;
  std::size_t covered = 0;
  for (const auto& b : set.buckets()) {
    EXPECT_GT(b.prob, 0.0);
    EXPECT_GT(b.rep, prev_rep);  // strictly increasing representatives
    EXPECT_LE(b.weighted_mean, b.rep + 1e-9);
    prob_sum += b.prob;
    covered += b.size();
    prev_rep = b.rep;
  }
  EXPECT_NEAR(prob_sum, 1.0, 1e-9);
  EXPECT_EQ(covered, values.size());
  // The top rep equals the max record value: every record is coverable.
  EXPECT_DOUBLE_EQ(set.max_rep(),
                   *std::max_element(values.begin(), values.end()));
}

std::vector<std::tuple<std::string, std::size_t>> bucketing_shape_grid() {
  std::vector<std::tuple<std::string, std::size_t>> grid;
  for (const char* p : {"greedy_bucketing", "exhaustive_bucketing",
                        "quantized_bucketing", "kmeans_bucketing"}) {
    for (std::size_t s = 0; s < std::size(kShapes); ++s) grid.emplace_back(p, s);
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    BucketingFamily, BucketSetInvariants,
    ::testing::ValuesIn(bucketing_shape_grid()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::size_t>>&
           info) {
      return std::get<0>(info.param) + "_" +
             kShapes[std::get<1>(info.param)].name;
    });

// -------------------------------------------- greedy cost-model identity

TEST(GreedyCostModels, PrefixSumMatchesFaithful) {
  Rng rng(11);
  for (const auto& shape : kShapes) {
    Rng local = rng.split(shape.name);
    const auto values = shape.make(90, local);
    tora::core::GreedyBucketing fast{
        Rng(1), tora::core::GreedyBucketing::CostModel::PrefixSum};
    tora::core::GreedyBucketing faithful{
        Rng(1), tora::core::GreedyBucketing::CostModel::Faithful};
    double sig = 1.0;
    for (double v : values) {
      fast.observe(v, sig);
      faithful.observe(v, sig);
      sig += 1.0;
    }
    const auto& a = fast.buckets().buckets();
    const auto& b = faithful.buckets().buckets();
    ASSERT_EQ(a.size(), b.size()) << shape.name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].rep, b[i].rep) << shape.name;
      EXPECT_NEAR(a[i].prob, b[i].prob, 1e-12) << shape.name;
    }
  }
}

// --------------------------------------- end-to-end simulator invariants

class EndToEndSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(EndToEndSweep, WorkflowCompletesWithSaneMetrics) {
  const auto& [workflow, policy] = GetParam();
  tora::exp::ExperimentConfig cfg;
  cfg.sim.churn.enabled = false;
  cfg.sim.churn.initial_workers = 12;
  const auto r = tora::exp::run_experiment(workflow, policy, cfg);

  const auto total = r.sim.tasks_completed + r.sim.tasks_fatal;
  EXPECT_EQ(r.sim.tasks_fatal, 0u);
  EXPECT_EQ(total, r.sim.accounting.task_count() + r.sim.tasks_fatal);
  EXPECT_GT(r.sim.makespan_s, 0.0);
  for (ResourceKind k : tora::core::kManagedResources) {
    const auto& b = r.waste(k);
    EXPECT_GT(r.awe(k), 0.0) << workflow << "/" << policy;
    EXPECT_LE(r.awe(k), 1.0 + 1e-12) << workflow << "/" << policy;
    EXPECT_GE(b.internal_fragmentation, -1e-9);
    EXPECT_GE(b.failed_allocation, 0.0);
    EXPECT_NEAR(b.total_waste(),
                b.internal_fragmentation + b.failed_allocation,
                1e-6 * std::max(1.0, b.allocation));
  }
  EXPECT_GE(r.sim.accounting.mean_attempts(), 1.0);
}

std::vector<std::tuple<std::string, std::string>> sweep_grid() {
  std::vector<std::tuple<std::string, std::string>> grid;
  for (const char* wf : {"uniform", "exponential", "trimodal"}) {
    for (const auto& p : tora::core::extended_policy_names()) {
      grid.emplace_back(wf, p);
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    WorkflowsTimesPolicies, EndToEndSweep, ::testing::ValuesIn(sweep_grid()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>&
           info) {
      return std::get<0>(info.param) + "_x_" + std::get<1>(info.param);
    });

}  // namespace
