#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "exp/report.hpp"

namespace {

using tora::core::ResourceKind;
using tora::exp::ExperimentConfig;
using tora::exp::ExperimentResult;
using tora::exp::run_experiment;
using tora::exp::run_grid;

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.sim.churn.enabled = false;
  cfg.sim.churn.initial_workers = 10;
  return cfg;
}

TEST(Experiment, RunsNamedWorkflowAndPolicy) {
  const ExperimentResult r =
      run_experiment("uniform", "max_seen", small_config());
  EXPECT_EQ(r.workflow, "uniform");
  EXPECT_EQ(r.policy, "max_seen");
  EXPECT_EQ(r.sim.tasks_completed, 1000u);
  EXPECT_EQ(r.sim.tasks_fatal, 0u);
}

TEST(Experiment, AweAlwaysInUnitInterval) {
  for (const char* policy : {"whole_machine", "greedy_bucketing"}) {
    const ExperimentResult r =
        run_experiment("bimodal", policy, small_config());
    for (ResourceKind k : tora::core::kManagedResources) {
      EXPECT_GT(r.awe(k), 0.0) << policy;
      EXPECT_LE(r.awe(k), 1.0) << policy;
    }
  }
}

TEST(Experiment, WholeMachineIsWorstOnMemory) {
  const ExperimentConfig cfg = small_config();
  const double wm =
      run_experiment("normal", "whole_machine", cfg).awe(ResourceKind::MemoryMB);
  for (const char* policy : {"max_seen", "greedy_bucketing",
                             "exhaustive_bucketing"}) {
    const double other =
        run_experiment("normal", policy, cfg).awe(ResourceKind::MemoryMB);
    EXPECT_GT(other, wm) << policy;
  }
}

TEST(Experiment, GridSharesWorkloadAcrossPolicies) {
  const auto results = run_grid({"uniform"}, {"max_seen", "whole_machine"},
                                small_config());
  ASSERT_EQ(results.size(), 2u);
  // Identical ground-truth consumption across policies proves the same
  // workload instance is reused.
  EXPECT_NEAR(
      results[0].waste(ResourceKind::MemoryMB).consumption,
      results[1].waste(ResourceKind::MemoryMB).consumption, 1e-6);
}

TEST(Experiment, DeterministicEndToEnd) {
  const ExperimentResult a =
      run_experiment("trimodal", "exhaustive_bucketing", small_config());
  const ExperimentResult b =
      run_experiment("trimodal", "exhaustive_bucketing", small_config());
  for (ResourceKind k : tora::core::kManagedResources) {
    EXPECT_DOUBLE_EQ(a.awe(k), b.awe(k));
  }
  EXPECT_DOUBLE_EQ(a.sim.makespan_s, b.sim.makespan_s);
}

TEST(Experiment, ReplicatedRunsAggregate) {
  tora::exp::ExperimentConfig base = small_config();
  const auto rep =
      tora::exp::run_replicated("uniform", "max_seen", 3, base);
  EXPECT_EQ(rep.runs.size(), 3u);
  const auto awe = rep.awe(ResourceKind::MemoryMB);
  EXPECT_EQ(awe.runs, 3u);
  EXPECT_GT(awe.mean, 0.0);
  EXPECT_LE(awe.mean, 1.0);
  EXPECT_GE(awe.max, awe.mean);
  EXPECT_LE(awe.min, awe.mean);
  const auto mk = rep.makespan();
  EXPECT_GT(mk.mean, 0.0);
  // Different seeds per replication: the workloads genuinely differ.
  EXPECT_NE(rep.runs[0].sim.makespan_s, rep.runs[1].sim.makespan_s);
}

TEST(Experiment, ReplicatedRejectsZeroRuns) {
  EXPECT_THROW(tora::exp::run_replicated("uniform", "max_seen", 0),
               std::invalid_argument);
}

TEST(Experiment, ParallelGridMatchesSerial) {
  const std::vector<std::string> wfs{"uniform", "bimodal"};
  const std::vector<std::string> pols{"max_seen", "greedy_bucketing"};
  const ExperimentConfig cfg = small_config();
  const auto serial = tora::exp::run_grid(wfs, pols, cfg);
  const auto parallel = tora::exp::run_grid_parallel(wfs, pols, cfg, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].workflow, parallel[i].workflow);
    EXPECT_EQ(serial[i].policy, parallel[i].policy);
    for (ResourceKind k : tora::core::kManagedResources) {
      EXPECT_DOUBLE_EQ(serial[i].awe(k), parallel[i].awe(k)) << i;
    }
    EXPECT_DOUBLE_EQ(serial[i].sim.makespan_s, parallel[i].sim.makespan_s);
  }
}

TEST(Experiment, ParallelGridEmptyInputs) {
  EXPECT_TRUE(tora::exp::run_grid_parallel({}, {"max_seen"}).empty());
  EXPECT_TRUE(tora::exp::run_grid_parallel({"uniform"}, {}).empty());
}

TEST(Experiment, ParallelGridPropagatesErrors) {
  EXPECT_THROW(
      tora::exp::run_grid_parallel({"uniform"}, {"no_such_policy"}, {}, 2),
      std::invalid_argument);
}

TEST(Experiment, DefaultConfigStreamsSubmissions) {
  // The paper-reproduction default submits tasks as a stream, not at t=0.
  tora::exp::ExperimentConfig cfg;
  EXPECT_GT(cfg.sim.submit_interval_s, 0.0);
}

// ------------------------------------------------------------- TextTable

TEST(TextTable, FormatsAlignedOutput) {
  tora::exp::TextTable t({"workflow", "cores", "memory"});
  t.add_row("uniform", {0.5, 0.75});
  t.add_row({"topeft", "0.9", "0.8"});
  std::ostringstream oss;
  t.print(oss);
  const std::string s = oss.str();
  EXPECT_NE(s.find("workflow"), std::string::npos);
  EXPECT_NE(s.find("0.500"), std::string::npos);
  EXPECT_NE(s.find("topeft"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 3u);
}

TEST(TextTable, RejectsWidthMismatch) {
  tora::exp::TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(tora::exp::TextTable({}), std::invalid_argument);
}

TEST(Report, FmtHelpers) {
  EXPECT_EQ(tora::exp::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(tora::exp::fmt_pct(0.873), "87.3%");
  EXPECT_EQ(tora::exp::fmt_pct(1.0), "100.0%");
}

}  // namespace
