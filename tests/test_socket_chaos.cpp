// Hostile-network coverage for the TCP transport: wire-level faults
// through the deterministic FaultProxy (latency, byte corruption,
// mid-frame truncation, RST storms, accept refusal), the
// reconnect-during-in-flight-result window with exactly-once accounting,
// handshake fuzzing (no manager state mutation on garbage hellos), and
// manager crash + connection loss + session resume through
// RecoverableTcpRuntime.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>

#include <memory>
#include <string>
#include <vector>

#include "core/recovery/crash.hpp"
#include "core/recovery/storage.hpp"
#include "core/registry.hpp"
#include "core/task.hpp"
#include "proto/manager.hpp"
#include "proto/net/endpoint.hpp"
#include "proto/net/fault_proxy.hpp"
#include "proto/net/session.hpp"
#include "proto/net/socket.hpp"
#include "proto/net/tcp_runtime.hpp"
#include "proto/worker_agent.hpp"
#include "util/io.hpp"

namespace {

using tora::core::ResourceVector;
using tora::core::TaskSpec;
using tora::core::recovery::CrashSchedule;
using tora::core::recovery::ManagerCrashPoint;
using tora::core::recovery::MemStorage;
using tora::core::recovery::RecoveryConfig;
using tora::core::recovery::ScheduledCrash;
using tora::proto::ChaosConfig;
using tora::proto::LivenessConfig;
using tora::proto::ProtocolManager;
using tora::proto::WorkerAgent;
using tora::proto::net::connect_start;
using tora::proto::net::Fd;
using tora::proto::net::ManagerEndpoint;
using tora::proto::net::RecoverableTcpRuntime;
using tora::proto::net::TcpProtocolRuntime;
using tora::proto::net::TcpTransportConfig;
using tora::proto::net::WireFaultPlan;
using tora::proto::net::WorkerEndpoint;
namespace io = tora::util::io;

constexpr ResourceVector kCapacity{16.0, 65536.0, 65536.0, 0.0};

std::vector<TaskSpec> mixed_tasks(std::size_t n) {
  std::vector<TaskSpec> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = i;
    t.category = i % 3 == 0 ? "heavy" : "light";
    t.demand = i % 3 == 0 ? ResourceVector{2.0, 3000.0, 200.0}
                          : ResourceVector{1.0, 400.0, 40.0};
    t.duration_s = 10.0 + static_cast<double>(i % 5);
    t.peak_fraction = 0.5;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

/// Fast reconnects + wide liveness windows: chaos runs should spend their
/// rounds completing work, not aging tick-denominated detectors.
TcpTransportConfig chaos_tcp(std::uint64_t seed) {
  TcpTransportConfig cfg;
  cfg.backoff_base = 0.25;
  cfg.backoff_cap = 2.0;
  cfg.seed = seed;
  return cfg;
}

ChaosConfig wide_liveness() {
  ChaosConfig chaos;
  chaos.liveness.silence_ticks = 64;
  chaos.liveness.attempt_timeout_ticks = 96;
  chaos.liveness.worker_failure_limit = 64;
  return chaos;
}

// ------------------------------------------------------------ proxy runs

void expect_chaos_run_completes(const WireFaultPlan& plan,
                                std::uint64_t seed) {
  const auto tasks = mixed_tasks(18);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  TcpProtocolRuntime runtime(tasks, alloc, 2, kCapacity, chaos_tcp(seed),
                             wide_liveness(), plan);
  const auto result = runtime.run();
  EXPECT_EQ(result.tasks_completed, tasks.size());
  EXPECT_EQ(result.tasks_fatal, 0u);
}

TEST(TcpChaos, PureLatencyStillCompletes) {
  WireFaultPlan plan;
  plan.latency_steps = 3;
  expect_chaos_run_completes(plan, 11);
}

TEST(TcpChaos, ByteCorruptionIsDetectedAndSurvived) {
  WireFaultPlan plan;
  plan.corrupt_chunk_prob = 0.02;
  expect_chaos_run_completes(plan, 12);
}

TEST(TcpChaos, MidFrameTruncationIsSurvived) {
  WireFaultPlan plan;
  plan.truncate_prob = 0.01;
  expect_chaos_run_completes(plan, 13);
}

TEST(TcpChaos, RstStormsAreSurvived) {
  WireFaultPlan plan;
  plan.rst_prob = 0.002;
  expect_chaos_run_completes(plan, 14);
}

TEST(TcpChaos, EverythingAtOnceIsSurvived) {
  WireFaultPlan plan;
  plan.latency_steps = 1;
  plan.corrupt_chunk_prob = 0.01;
  plan.truncate_prob = 0.005;
  plan.rst_prob = 0.001;
  const auto tasks = mixed_tasks(18);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  TcpProtocolRuntime runtime(tasks, alloc, 2, kCapacity, chaos_tcp(15),
                             wide_liveness(), plan);
  const auto result = runtime.run();
  EXPECT_EQ(result.tasks_completed, tasks.size());
  EXPECT_EQ(result.tasks_fatal, 0u);
  ASSERT_NE(runtime.proxy(), nullptr);
  EXPECT_GT(runtime.proxy()->faults_injected(), 0u)
      << "the plan must actually have fired for this run to mean anything";
}

TEST(TcpChaos, SameSeedSameFaultTrajectory) {
  WireFaultPlan plan;
  plan.corrupt_chunk_prob = 0.02;
  plan.rst_prob = 0.001;
  std::size_t completed[2];
  std::size_t resumed[2];
  for (int i = 0; i < 2; ++i) {
    const auto tasks = mixed_tasks(14);
    auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
    TcpProtocolRuntime runtime(tasks, alloc, 2, kCapacity, chaos_tcp(99),
                               wide_liveness(), plan);
    const auto result = runtime.run();
    completed[i] = result.tasks_completed;
    resumed[i] = result.transport.sessions_resumed;
  }
  EXPECT_EQ(completed[0], completed[1]);
  EXPECT_EQ(resumed[0], resumed[1]);
}

// ------------------------- reconnect during in-flight result (satellite)

// The classic window: the worker has executed a task and its TaskResult is
// queued (or on the wire) when the connection dies. After reconnect +
// session resume the result must be delivered EXACTLY once — completion
// counted once, no duplicate/stale result absorbed as new state — and a
// worker the manager briefly gave up on must charge the eviction ledger
// exactly once.
TEST(TcpChaos, InFlightResultAcrossReconnectCompletesExactlyOnce) {
  const auto tasks = mixed_tasks(8);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);

  TcpTransportConfig cfg = chaos_tcp(21);
  ManagerEndpoint mgr_ep(1, cfg);
  TcpTransportConfig wcfg = cfg;
  wcfg.port = mgr_ep.port();
  WorkerEndpoint wep(0, wcfg);
  WorkerAgent agent(0, kCapacity, tasks, wep.link());
  LivenessConfig liveness;
  liveness.silence_ticks = 64;
  liveness.attempt_timeout_ticks = 96;
  ProtocolManager manager(tasks, alloc, mgr_ep.links(), liveness);

  double now = 0.0;
  auto settle = [&] {
    for (int i = 0; i < 100000; ++i) {
      mgr_ep.pump_io(now, 0);
      wep.pump_io(now, 0);
      if (mgr_ep.quiesced() && wep.quiesced()) return;
      now += 0.01;
    }
    FAIL() << "network failed to settle";
  };

  agent.announce();
  settle();
  manager.start();
  manager.pump();  // register + dispatch the first wave
  settle();
  agent.pump();  // execute: results now sit in the worker's send queue

  // Flush the results onto the wire (the manager endpoint has NOT read
  // them), then kill the connection: sent but unacknowledged — the
  // in-flight window. The RST discards them from the manager's receive
  // buffer, so only the session replay can save them.
  ASSERT_GT(agent.tasks_executed(), 0u);
  wep.pump_io(now, 0);
  wep.kill_connection();

  // Drive to completion; the worker reconnects, resumes, and replays.
  for (int round = 0; round < 5000 && !manager.done(); ++round) {
    now += 1.0;
    manager.pump();
    settle();
    agent.pump();
    settle();
  }
  ASSERT_TRUE(manager.done());
  manager.shutdown_workers();
  settle();
  agent.pump();

  EXPECT_EQ(manager.tasks_completed(), tasks.size());
  EXPECT_EQ(manager.tasks_fatal(), 0u);
  EXPECT_EQ(wep.counters().sessions_resumed, 1u);
  EXPECT_GE(wep.counters().frames_replayed, 1u)
      << "the unacked results must have replayed on resume";
  // The cut healed before any liveness window expired, so the eviction
  // ledger was never charged for this blip...
  EXPECT_DOUBLE_EQ(manager.evicted_alloc().cores(), 0.0);
}

TEST(TcpChaos, SlowReconnectChargesEvictionExactlyOnce) {
  // Same window, but now the reconnect is SLOWER than the silence window:
  // the manager declares the worker dead (one eviction charge for the
  // in-flight attempt), the worker later resumes and replays a result for
  // an attempt the manager already wrote off — which must be absorbed as
  // stale, not double-completed and not double-charged.
  std::vector<TaskSpec> tasks;
  for (std::size_t i = 0; i < 4; ++i) {
    TaskSpec t;
    t.id = i;
    t.category = "serial";
    t.demand = ResourceVector{9.0, 20000.0, 4000.0};  // one at a time
    t.duration_s = 10.0;
    t.peak_fraction = 0.5;
    tasks.push_back(std::move(t));
  }
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);

  TcpTransportConfig cfg = chaos_tcp(22);
  ManagerEndpoint mgr_ep(1, cfg);
  TcpTransportConfig wcfg = cfg;
  wcfg.port = mgr_ep.port();
  WorkerEndpoint wep(0, wcfg);
  WorkerAgent agent(0, kCapacity, tasks, wep.link());
  LivenessConfig liveness;
  liveness.silence_ticks = 4;
  liveness.attempt_timeout_ticks = 6;
  liveness.worker_failure_limit = 64;
  ProtocolManager manager(tasks, alloc, mgr_ep.links(), liveness);

  double now = 0.0;
  auto pump_net = [&](int n) {
    for (int i = 0; i < n; ++i) {
      mgr_ep.pump_io(now, 0);
      wep.pump_io(now, 0);
    }
  };

  agent.announce();
  pump_net(50);
  manager.start();
  manager.pump();
  pump_net(50);
  agent.pump();  // first result queued, unacked
  ASSERT_EQ(agent.tasks_executed(), 1u);
  // Kill the connection AND refuse re-accepts: kill_connection alone
  // retries immediately (it is the fast-reconnect hook), so the refusal is
  // what holds the worker out past the silence window.
  wep.pump_io(now, 0);  // result onto the wire, unread and unacked
  wep.kill_connection();
  mgr_ep.refuse_accepts(true);

  EXPECT_DOUBLE_EQ(manager.evicted_alloc().cores(), 0.0);

  // Age the manager past the silence window: it declares the worker dead
  // and charges the one in-flight attempt to the eviction ledger.
  for (int round = 0; round < 50 && manager.chaos().workers_declared_dead == 0;
       ++round) {
    now += 1.0;
    manager.pump();
    pump_net(5);
  }
  ASSERT_GE(manager.chaos().workers_declared_dead, 1u);
  const double evicted_at_death = manager.evicted_alloc().cores();
  EXPECT_GT(evicted_at_death, 0.0) << "the in-flight attempt must be charged";

  // Let the worker back in; it resumes the session and replays the
  // pre-death result — which the manager must swallow as stale.
  mgr_ep.refuse_accepts(false);
  bool done = false;
  for (int round = 0; round < 4000 && !done; ++round) {
    now += 1.0;
    manager.pump();
    pump_net(20);
    agent.pump();
    pump_net(20);
    done = manager.done();
  }
  ASSERT_TRUE(done);

  EXPECT_EQ(manager.tasks_completed(), tasks.size());
  EXPECT_EQ(manager.tasks_fatal(), 0u);
  // Exactly ONE eviction charge: the requeued attempt completed normally
  // after resume, and the stale replayed result never double-charged.
  EXPECT_EQ(manager.chaos().protocol_evictions, 1u);
  EXPECT_DOUBLE_EQ(manager.evicted_alloc().cores(), evicted_at_death);
  // The replayed pre-death result arrived after the requeue and was
  // swallowed by the staleness gate.
  EXPECT_GE(manager.chaos().stale_or_duplicate_results, 1u);
  EXPECT_EQ(wep.counters().sessions_resumed, 1u);
}

// ----------------------------------------------- handshake fuzz (satellite)

/// Sends raw bytes as a would-be worker, pumps the endpoint, and reports
/// whether the endpoint closed the connection.
class RawClient {
 public:
  explicit RawClient(std::uint16_t port)
      : fd_(connect_start("127.0.0.1", port)) {
    // Loopback connects complete in the kernel (listen backlog) without
    // the endpoint accepting; spin briefly until the socket is bound.
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    for (int i = 0; i < 100000 && fd_.valid(); ++i) {
      if (::getpeername(fd_.get(), reinterpret_cast<sockaddr*>(&addr),
                        &len) == 0) {
        break;
      }
    }
  }

  bool connected() const noexcept { return fd_.valid(); }

  void send(std::string_view bytes) {
    std::string pending(bytes);
    for (int i = 0; i < 1000 && !pending.empty(); ++i) {
      const auto r = io::send_some(fd_.get(), pending);
      if (r.status == io::IoStatus::Ok) {
        pending.erase(0, r.bytes);
      } else if (r.status != io::IoStatus::WouldBlock) {
        return;  // peer already closed on us — that is a valid rejection
      }
    }
  }

  /// True when the peer has closed (read sees EOF or reset).
  bool peer_closed() {
    std::string buf;
    for (;;) {
      const auto r = io::recv_some(fd_.get(), buf, 4096);
      if (r.status == io::IoStatus::Eof) return true;
      if (r.status == io::IoStatus::Error) return true;
      if (r.status == io::IoStatus::WouldBlock) return false;
      buf.clear();  // discard whatever the endpoint sent (welcome etc.)
    }
  }

 private:
  Fd fd_;
};

struct EndpointStateProbe {
  std::size_t handshakes_ok;
  std::uint64_t rx0;
  bool connected0;

  static EndpointStateProbe capture(const ManagerEndpoint& ep) {
    return {ep.counters().handshakes_ok, ep.rx_count(0),
            ep.worker_connected(0)};
  }
  bool operator==(const EndpointStateProbe&) const = default;
};

TEST(TcpFuzz, GarbageHellosNeverMutateManagerState) {
  TcpTransportConfig cfg;
  cfg.handshake_timeout = 1.0;
  // The forced-fresh-resume attack legitimately completes a handshake and
  // then goes silent; the keepalive window is what reaps it.
  cfg.session.keepalive_window = 1.0;
  ManagerEndpoint mgr_ep(1, cfg);
  const auto tasks = mixed_tasks(2);
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  ProtocolManager manager(tasks, alloc, mgr_ep.links());
  manager.start();

  const std::string valid = tora::proto::net::encode_hello(
      tora::proto::net::HelloFrame{1, 0, 0, 0});

  std::vector<std::string> attacks;
  // Every strict prefix of a valid hello, framed (broken crc => reject).
  for (std::size_t len = 0; len < valid.size(); ++len) {
    attacks.push_back(valid.substr(0, len) + "\n");
  }
  // Oversized hello: blows past max_hello_bytes.
  attacks.push_back("tora!hello " + std::string(1024, 'x') + "\n");
  // Unframed oversized garbage: must poison the frame reader.
  attacks.push_back(std::string(128 * 1024, 'z'));
  // Binary garbage.
  attacks.push_back(std::string("\x00\xff\x7f\n\n\x01\n", 7));
  // Valid CRC discipline but wrong verb (an app frame before handshake).
  attacks.push_back("heartbeat worker=0\n");
  // Wrong version.
  attacks.push_back(tora::proto::net::encode_hello(
                        tora::proto::net::HelloFrame{7, 0, 0, 0}) +
                    "\n");
  // Out-of-range worker id.
  attacks.push_back(tora::proto::net::encode_hello(
                        tora::proto::net::HelloFrame{1, 999, 0, 0}) +
                    "\n");
  // Impossible resume claim: token nobody minted, absurd rx. (The endpoint
  // answers with a FRESH session rather than rejecting — livelock safety —
  // but the fuzz invariant holds: no app frame crossed, rx stays 0.)
  attacks.push_back(tora::proto::net::encode_hello(
                        tora::proto::net::HelloFrame{1, 0, 0xabcdef, 1000}) +
                    "\n");

  const std::string manager_before = manager.snapshot_body();
  double now = 0.0;
  for (const auto& attack : attacks) {
    const auto before = EndpointStateProbe::capture(mgr_ep);
    RawClient client(mgr_ep.port());
    ASSERT_TRUE(client.connected());
    for (int i = 0; i < 20; ++i) mgr_ep.pump_io(now, 0);
    client.send(attack);
    now += 0.1;
    for (int i = 0; i < 50; ++i) mgr_ep.pump_io(now, 0);
    // Age out anything the deadline enforcement should reap.
    now += 2.0;
    for (int i = 0; i < 50; ++i) mgr_ep.pump_io(now, 0);

    const auto after = EndpointStateProbe::capture(mgr_ep);
    // The forced-fresh resume case legitimately mints a session; every
    // other attack must leave the handshake counter untouched.
    if (after.handshakes_ok == before.handshakes_ok) {
      EXPECT_EQ(after.rx0, before.rx0) << "attack leaked an app frame";
    }
    EXPECT_EQ(after.rx0, 0u);
    EXPECT_EQ(mgr_ep.connections(), 0u)
        << "fuzzed connection must be reaped, attack size " << attack.size();
    // And the manager itself never saw a byte of any of it.
    manager.pump();
    EXPECT_EQ(manager.chaos().malformed_lines, 0u);
  }
  EXPECT_GT(mgr_ep.counters().handshakes_rejected +
                mgr_ep.counters().oversized_frames,
            attacks.size() / 2);
  // Bit-exact: thousands of hostile bytes, zero manager state mutation
  // beyond its own tick counter advancing.
  auto alloc2 = tora::core::make_allocator(tora::core::kMaxSeen, 7);
  (void)manager_before;  // tick advanced via pump; compare a fresh twin
  ProtocolManager twin(tasks, alloc2, mgr_ep.links());
  twin.start();
  for (std::size_t i = 0; i < attacks.size(); ++i) twin.pump();
  EXPECT_EQ(manager.snapshot_body(), twin.snapshot_body());
}

TEST(TcpFuzz, LegitimateWorkerStillConnectsAfterTheStorm) {
  TcpTransportConfig cfg;
  cfg.handshake_timeout = 1.0;
  ManagerEndpoint mgr_ep(1, cfg);
  double now = 0.0;

  // A wave of garbage first.
  for (int i = 0; i < 10; ++i) {
    RawClient client(mgr_ep.port());
    client.send("not a hello at all\n");
    for (int j = 0; j < 20; ++j) mgr_ep.pump_io(now, 0);
    now += 2.0;
    for (int j = 0; j < 20; ++j) mgr_ep.pump_io(now, 0);
  }
  ASSERT_EQ(mgr_ep.connections(), 0u);

  TcpTransportConfig wcfg = cfg;
  wcfg.port = mgr_ep.port();
  WorkerEndpoint wep(0, wcfg);
  for (int i = 0; i < 100000 && !wep.established(); ++i) {
    mgr_ep.pump_io(now, 0);
    wep.pump_io(now, 0);
    now += 0.01;
  }
  EXPECT_TRUE(wep.established());
  EXPECT_TRUE(mgr_ep.worker_connected(0));
}

// ------------------------------------------- accept refusal and recovery

TEST(TcpChaos, AcceptRefusalDelaysButDoesNotKillTheRun) {
  TcpTransportConfig cfg = chaos_tcp(31);
  ManagerEndpoint mgr_ep(1, cfg);
  mgr_ep.refuse_accepts(true);
  TcpTransportConfig wcfg = cfg;
  wcfg.port = mgr_ep.port();
  WorkerEndpoint wep(0, wcfg);
  double now = 0.0;
  for (int i = 0; i < 3000; ++i) {
    mgr_ep.pump_io(now, 0);
    wep.pump_io(now, 0);
    now += 0.01;
  }
  EXPECT_FALSE(wep.established());
  // The refusal is counted on the manager side (the worker's connect
  // "succeeds" at the kernel level before the endpoint slams it shut).
  EXPECT_GE(mgr_ep.counters().connect_failures, 1u);

  mgr_ep.refuse_accepts(false);
  for (int i = 0; i < 100000 && !wep.established(); ++i) {
    mgr_ep.pump_io(now, 0);
    wep.pump_io(now, 0);
    now += 0.01;
  }
  EXPECT_TRUE(wep.established());
}

// --------------------------------------- manager crash + connection loss

RecoverableTcpRuntime::Result run_recoverable(
    const std::vector<TaskSpec>& tasks, CrashSchedule crashes,
    bool drop_connections) {
  MemStorage storage;
  RecoveryConfig recovery;
  recovery.snapshot_every_ticks = 4;
  auto factory = [] {
    return std::make_unique<tora::core::TaskAllocator>(
        tora::core::make_allocator("greedy_bucketing", 7, kCapacity));
  };
  RecoverableTcpRuntime runtime(tasks, factory, 2, kCapacity, chaos_tcp(41),
                                wide_liveness(), storage, recovery,
                                std::move(crashes), drop_connections);
  return runtime.run();
}

TEST(TcpRecovery, CrashWithoutConnectionLossIsBitSafe) {
  const auto tasks = mixed_tasks(12);
  const auto baseline = run_recoverable(tasks, CrashSchedule{}, false);
  ASSERT_EQ(baseline.tasks_completed, tasks.size());

  // Early ticks: a calm 12-task run on 2 workers finishes in a handful of
  // pumps, so later crash points would never fire.
  CrashSchedule crashes({{2, ManagerCrashPoint::PumpEnd},
                         {3, ManagerCrashPoint::AfterDrain}});
  const auto crashed = run_recoverable(tasks, std::move(crashes), false);
  EXPECT_EQ(crashed.tasks_completed, tasks.size());
  EXPECT_EQ(crashed.recovery.recoveries, 2u);
  // Loss-free crash points + surviving connections: bit-identical outcome.
  EXPECT_EQ(crashed.state_fingerprint, baseline.state_fingerprint);
}

TEST(TcpRecovery, CrashDroppingConnectionsForcesResumeAndStillCompletes) {
  const auto tasks = mixed_tasks(12);
  CrashSchedule crashes({{2, ManagerCrashPoint::PumpEnd},
                         {4, ManagerCrashPoint::PumpBegin}});
  const auto result = run_recoverable(tasks, std::move(crashes), true);
  EXPECT_EQ(result.tasks_completed, tasks.size());
  EXPECT_EQ(result.tasks_fatal, 0u);
  EXPECT_EQ(result.recovery.recoveries, 2u);
  // The manager host "died": every worker reconnected and resumed.
  EXPECT_GE(result.transport.reconnects, 2u);
  EXPECT_GE(result.transport.sessions_resumed, 2u);
}

}  // namespace
