// The write-ahead journal's framing and the storage durability model:
// CRC-framed record round-trips, torn-tail truncation at EVERY byte offset
// of the final record, and MemStorage's buffered-vs-durable crash split.

#include "core/recovery/journal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/recovery/storage.hpp"

namespace {

using tora::core::RecoveryCounters;
using tora::core::recovery::AppendHandle;
using tora::core::recovery::FileStorage;
using tora::core::recovery::JournalReadResult;
using tora::core::recovery::JournalRecord;
using tora::core::recovery::JournalWriter;
using tora::core::recovery::MemStorage;
using tora::core::recovery::read_journal;
using tora::core::recovery::RecordType;

// A representative record mix: empty payloads, text, and binary bytes
// (embedded NUL, 0xFF, newline) — the framing must be 8-bit clean.
const std::vector<JournalRecord>& sample_records() {
  static const std::vector<JournalRecord> records = {
      {RecordType::Started, ""},
      {RecordType::Tick, std::string("\x01\x00\x00\x00\x00\x00\x00\x00", 8)},
      {RecordType::Input, std::string("\x00\xffline with\nnewline", 19)},
      {RecordType::LivenessDone, ""},
      {RecordType::TaskCompleted, "payload of an audit record"},
  };
  return records;
}

std::string write_sample(MemStorage& storage, const std::string& name,
                         RecoveryCounters* counters = nullptr) {
  JournalWriter writer(storage.open_append(name), counters);
  for (const JournalRecord& r : sample_records()) {
    writer.append(r.type, r.payload);
  }
  writer.sync();
  return *storage.read_file(name);
}

TEST(Journal, RoundTripsRecords) {
  MemStorage storage;
  RecoveryCounters counters;
  const std::string bytes = write_sample(storage, "j", &counters);

  const JournalReadResult result = read_journal(bytes);
  EXPECT_FALSE(result.torn);
  EXPECT_EQ(result.bytes_consumed, bytes.size());
  EXPECT_EQ(result.records, sample_records());
  EXPECT_EQ(counters.journal_records, sample_records().size());
  EXPECT_EQ(counters.journal_bytes, bytes.size());
  EXPECT_EQ(counters.journal_syncs, 1u);
}

TEST(Journal, EmptyInputIsNotTorn) {
  const JournalReadResult result = read_journal("");
  EXPECT_TRUE(result.records.empty());
  EXPECT_FALSE(result.torn);
  EXPECT_EQ(result.bytes_consumed, 0u);
}

TEST(Journal, NullHandleThrows) {
  EXPECT_THROW(JournalWriter(nullptr), std::invalid_argument);
}

// The headline torn-tail guarantee: truncate the journal at EVERY byte
// offset within the final record. Each truncation must yield exactly the
// preceding records, never throw, and report torn for any partial bytes.
TEST(Journal, TornTailTruncationAtEveryByteOffset) {
  MemStorage storage;
  const std::string full = write_sample(storage, "j");

  // Locate the final record's frame start by re-reading all-but-one record.
  std::vector<JournalRecord> head(sample_records().begin(),
                                  sample_records().end() - 1);
  std::string head_bytes;
  {
    MemStorage scratch;
    JournalWriter writer(scratch.open_append("h"));
    for (const JournalRecord& r : head) writer.append(r.type, r.payload);
    writer.sync();
    head_bytes = *scratch.read_file("h");
  }
  ASSERT_LT(head_bytes.size(), full.size());
  ASSERT_EQ(full.compare(0, head_bytes.size(), head_bytes), 0);

  // Descending: MemStorage::tear only ever shrinks, so walking downward
  // lets one journal serve every offset.
  for (std::size_t keep = full.size() - 1; keep + 1 > head_bytes.size();
       --keep) {
    storage.tear("j", keep);
    const std::string bytes = *storage.read_file("j");
    ASSERT_EQ(bytes.size(), keep);
    const JournalReadResult result = read_journal(bytes);
    EXPECT_EQ(result.records, head) << "keep=" << keep;
    EXPECT_EQ(result.torn, keep > head_bytes.size()) << "keep=" << keep;
    EXPECT_EQ(result.bytes_consumed, head_bytes.size()) << "keep=" << keep;
  }
}

// Any single flipped byte invalidates the record it lands in; everything
// before it still reads.
TEST(Journal, CorruptionStopsAtTheMangledRecord) {
  MemStorage storage;
  const std::string full = write_sample(storage, "j");
  for (std::size_t flip = 0; flip < full.size(); ++flip) {
    std::string bytes = full;
    bytes[flip] = static_cast<char>(bytes[flip] ^ 0x5a);
    const JournalReadResult result = read_journal(bytes);
    // Never more records than written; the prefix that does decode must
    // match what was written.
    ASSERT_LE(result.records.size(), sample_records().size());
    for (std::size_t i = 0; i < result.records.size(); ++i) {
      // A flip inside record i's frame can only hide records >= i, except
      // when it lands in a length field and resynchronizes by luck — the
      // CRC makes that astronomically unlikely, and for this fixed input it
      // does not happen.
      EXPECT_EQ(result.records[i], sample_records()[i]) << "flip=" << flip;
    }
    if (result.records.size() < sample_records().size()) {
      EXPECT_TRUE(result.torn) << "flip=" << flip;
    }
  }
}

TEST(MemStorageModel, CrashDropsUnsyncedTail) {
  MemStorage storage;
  auto handle = storage.open_append("j");
  handle->append("durable");
  handle->sync();
  handle->append("lost");
  EXPECT_EQ(*storage.read_file("j"), "durablelost");  // visible pre-crash
  storage.crash();
  EXPECT_EQ(*storage.read_file("j"), "durable");
}

TEST(MemStorageModel, TearRejectsUnknownNames) {
  MemStorage storage;
  EXPECT_THROW(storage.tear("nope", 0), std::out_of_range);
}

TEST(MemStorageModel, RenameIsAtomicReplace) {
  MemStorage storage;
  storage.write_file_durable("a.tmp", "new");
  storage.write_file_durable("a", "old");
  storage.rename("a.tmp", "a");
  EXPECT_EQ(*storage.read_file("a"), "new");
  EXPECT_FALSE(storage.read_file("a.tmp").has_value());
  storage.remove("a");
  storage.remove("a");  // idempotent
  EXPECT_TRUE(storage.list().empty());
}

TEST(FileStorageModel, AppendRenameListRoundTrip) {
  const std::string root = testing::TempDir() + "tora_recovery_storage_test";
  FileStorage storage(root);
  {
    auto handle = storage.open_append("journal-0");
    handle->append("hello ");
    handle->append("world");
    handle->sync();
  }
  EXPECT_EQ(*storage.read_file("journal-0"), "hello world");
  storage.write_file_durable("snapshot-1.tmp", "body");
  storage.rename("snapshot-1.tmp", "snapshot-1");
  EXPECT_EQ(*storage.read_file("snapshot-1"), "body");
  const std::vector<std::string> names = storage.list();
  EXPECT_EQ(names, (std::vector<std::string>{"journal-0", "snapshot-1"}));
  EXPECT_FALSE(storage.read_file("missing").has_value());
  storage.remove("journal-0");
  storage.remove("snapshot-1");
  EXPECT_TRUE(storage.list().empty());
  EXPECT_THROW(storage.open_append("bad/name"), std::invalid_argument);
}

}  // namespace
