// Tests for the Work-Queue-style wire protocol codec.

#include "proto/message.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace {

using tora::core::ResourceVector;
using tora::proto::decode;
using tora::proto::encode;
using tora::proto::Message;
using tora::proto::MsgType;
using tora::proto::Outcome;

Message ready_msg() {
  Message m;
  m.type = MsgType::WorkerReady;
  m.worker_id = 3;
  m.resources = ResourceVector{16.0, 65536.0, 65536.0, 0.0};
  return m;
}

Message dispatch_msg() {
  Message m;
  m.type = MsgType::TaskDispatch;
  m.worker_id = 2;
  m.task_id = 17;
  m.category = "processing";
  m.resources = ResourceVector{1.0, 512.0, 306.0, 0.0};
  return m;
}

Message result_msg() {
  Message m;
  m.type = MsgType::TaskResult;
  m.worker_id = 2;
  m.task_id = 17;
  m.outcome = Outcome::ResourceExhausted;
  m.resources = ResourceVector{1.0, 512.0, 306.0, 0.0};
  m.runtime_s = 42.5;
  m.exceeded_mask = 2;
  return m;
}

TEST(ProtoMessage, RoundTripEveryType) {
  for (const Message& m : {ready_msg(), dispatch_msg(), result_msg()}) {
    const auto decoded = decode(encode(m));
    ASSERT_TRUE(decoded.has_value()) << encode(m);
    EXPECT_EQ(*decoded, m) << encode(m);
  }
  Message evict;
  evict.type = MsgType::Evict;
  evict.worker_id = 5;
  evict.task_id = 9;
  const auto d = decode(encode(evict));
  ASSERT_TRUE(d);
  EXPECT_EQ(d->type, MsgType::Evict);
  EXPECT_EQ(d->task_id, 9u);

  Message shutdown;
  shutdown.type = MsgType::Shutdown;
  shutdown.worker_id = 1;
  const auto s = decode(encode(shutdown));
  ASSERT_TRUE(s);
  EXPECT_EQ(s->type, MsgType::Shutdown);
  EXPECT_EQ(s->worker_id, 1u);
}

TEST(ProtoMessage, EncodeIsHumanReadable) {
  const std::string line = encode(dispatch_msg());
  EXPECT_NE(line.find("dispatch"), std::string::npos);
  EXPECT_NE(line.find("worker=2"), std::string::npos);
  EXPECT_NE(line.find("task=17"), std::string::npos);
  EXPECT_NE(line.find("category=processing"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // single line
}

TEST(ProtoMessage, CategoryEscaping) {
  Message m = dispatch_msg();
  m.category = "weird category=x%y";
  const std::string line = encode(m);
  EXPECT_EQ(line.find(' ' + std::string("category=weird category")),
            std::string::npos);  // the raw space must not appear
  const auto d = decode(line);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->category, "weird category=x%y");
}

TEST(ProtoMessage, ResourceDoublesRoundTripExactly) {
  Message m = result_msg();
  m.resources = ResourceVector{0.1 + 0.2, 1.0 / 3.0, 1e-17, 12345.6789};
  m.runtime_s = 0.30000000000000004;
  const auto d = decode(encode(m));
  ASSERT_TRUE(d);
  EXPECT_EQ(d->resources, m.resources);
  EXPECT_EQ(d->runtime_s, m.runtime_s);
}

TEST(ProtoMessage, DecodeRejectsMalformedInput) {
  EXPECT_FALSE(decode(""));
  EXPECT_FALSE(decode("frobnicate worker=1"));
  EXPECT_FALSE(decode("ready"));                       // missing fields
  EXPECT_FALSE(decode("ready worker=1 cores=1"));      // missing memory...
  EXPECT_FALSE(decode("ready worker=x cores=1 memory=1 disk=1 time=0"));
  EXPECT_FALSE(decode("dispatch worker=1 task=2 cores=1 memory=1 disk=1 "
                      "time=0"));  // no category
  EXPECT_FALSE(decode("result worker=1 task=2 outcome=maybe runtime=1 "
                      "exceeded=0 cores=1 memory=1 disk=1 time=0"));
  EXPECT_FALSE(decode("evict worker=1"));  // no task
  EXPECT_FALSE(decode("ready worker=-3 cores=1 memory=1 disk=1 time=0"));
  EXPECT_FALSE(decode("ready worker=1 =bad cores=1 memory=1 disk=1 time=0"));
  EXPECT_FALSE(decode("dispatch worker=1 task=2 category=%Z cores=1 "
                      "memory=1 disk=1 time=0"));  // bad escape
}

TEST(ProtoMessage, DecodeRequiresChecksum) {
  // A syntactically perfect line without a crc token is rejected: if
  // absence were tolerated, corrupting the token's key would silently turn
  // off integrity checking.
  EXPECT_FALSE(
      decode("ready worker=4 cores=8 memory=1024 disk=2048 time=0"));
  EXPECT_FALSE(decode("shutdown worker=1"));
}

TEST(ProtoMessage, TypeNames) {
  EXPECT_EQ(tora::proto::to_string(MsgType::WorkerReady), "ready");
  EXPECT_EQ(tora::proto::to_string(MsgType::TaskDispatch), "dispatch");
  EXPECT_EQ(tora::proto::to_string(MsgType::TaskResult), "result");
  EXPECT_EQ(tora::proto::to_string(MsgType::Heartbeat), "heartbeat");
  EXPECT_EQ(tora::proto::to_string(Outcome::Success), "success");
  EXPECT_EQ(tora::proto::to_string(Outcome::ResourceExhausted), "exhausted");
}

Message heartbeat_msg() {
  Message m;
  m.type = MsgType::Heartbeat;
  m.worker_id = 6;
  m.resources = ResourceVector{8.0, 32768.0, 16384.0, 0.0};
  return m;
}

TEST(ProtoMessage, RoundTripHeartbeatAndAttemptIds) {
  const auto hb = decode(encode(heartbeat_msg()));
  ASSERT_TRUE(hb);
  EXPECT_EQ(*hb, heartbeat_msg());

  Message d = dispatch_msg();
  d.attempt = 3;
  Message r = result_msg();
  r.attempt = 7;
  for (const Message& m : {d, r}) {
    const auto decoded = decode(encode(m));
    ASSERT_TRUE(decoded) << encode(m);
    EXPECT_EQ(decoded->attempt, m.attempt);
    EXPECT_EQ(*decoded, m);
  }
}

TEST(ProtoMessage, ChecksumRejectsTamperedPayload) {
  const std::string line = encode(result_msg());
  ASSERT_NE(line.find(" crc="), std::string::npos);
  // Flipping any payload character must break verification: try them all.
  for (std::size_t i = 0; i < line.size(); ++i) {
    std::string tampered = line;
    tampered[i] = tampered[i] == 'x' ? 'y' : 'x';
    if (tampered == line) continue;
    const auto d = decode(tampered);
    // Either rejected, or the mutation only hit the crc token in a way that
    // still verifies — which cannot happen for a single substitution — so
    // any accepted line must equal the original message.
    if (d) EXPECT_EQ(*d, result_msg()) << tampered;
  }
}

TEST(ProtoMessage, AbsentAttemptDefaultsToZero) {
  // Pre-attempt-id encoders exist only in-process, so synthesize one by
  // splicing the token out of a fresh encoding and re-checksumming via the
  // decode of an attempt=0 message: both sides treat them identically.
  Message m = dispatch_msg();
  m.attempt = 0;
  const auto d = decode(encode(m));
  ASSERT_TRUE(d);
  EXPECT_EQ(d->attempt, 0u);
}

// Satellite fuzz harness: random truncations, bit flips and token shuffles
// of valid lines must never throw, and must never half-parse into a message
// different from the original — the checksum makes mutation all-or-nothing.
TEST(ProtoMessageFuzz, MutatedLinesNeverThrowOrHalfParse) {
  tora::util::Rng rng(0xF00DF00Dull);
  Message d = dispatch_msg();
  d.attempt = 2;
  Message r = result_msg();
  r.attempt = 5;
  Message evict;
  evict.type = MsgType::Evict;
  evict.worker_id = 5;
  evict.task_id = 9;
  Message shutdown;
  shutdown.type = MsgType::Shutdown;
  shutdown.worker_id = 1;
  const std::vector<Message> originals = {ready_msg(), d,        r,
                                          heartbeat_msg(), evict, shutdown};

  for (int iter = 0; iter < 20000; ++iter) {
    const Message& orig =
        originals[rng.uniform_int(0, originals.size() - 1)];
    std::string line = encode(orig);
    switch (rng.uniform_int(0, 2)) {
      case 0:  // truncation
        line.resize(rng.uniform_int(0, line.size()));
        break;
      case 1: {  // 1-4 bit flips
        const std::uint64_t flips = rng.uniform_int(1, 4);
        for (std::uint64_t f = 0; f < flips; ++f) {
          const std::size_t pos = rng.uniform_int(0, line.size() - 1);
          line[pos] = static_cast<char>(
              line[pos] ^ (1u << rng.uniform_int(0, 7)));
        }
        break;
      }
      case 2: {  // token shuffle
        std::vector<std::string> tokens;
        std::size_t start = 0;
        while (start <= line.size()) {
          const std::size_t sp = line.find(' ', start);
          if (sp == std::string::npos) {
            tokens.push_back(line.substr(start));
            break;
          }
          tokens.push_back(line.substr(start, sp - start));
          start = sp + 1;
        }
        std::shuffle(tokens.begin(), tokens.end(), rng);
        line.clear();
        for (std::size_t i = 0; i < tokens.size(); ++i) {
          if (i > 0) line += ' ';
          line += tokens[i];
        }
        break;
      }
    }
    std::optional<Message> decoded;
    EXPECT_NO_THROW(decoded = decode(line)) << line;
    if (decoded) EXPECT_EQ(*decoded, orig) << line;
  }
}

}  // namespace
