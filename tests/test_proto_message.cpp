// Tests for the Work-Queue-style wire protocol codec.

#include "proto/message.hpp"

#include <gtest/gtest.h>

namespace {

using tora::core::ResourceVector;
using tora::proto::decode;
using tora::proto::encode;
using tora::proto::Message;
using tora::proto::MsgType;
using tora::proto::Outcome;

Message ready_msg() {
  Message m;
  m.type = MsgType::WorkerReady;
  m.worker_id = 3;
  m.resources = ResourceVector{16.0, 65536.0, 65536.0, 0.0};
  return m;
}

Message dispatch_msg() {
  Message m;
  m.type = MsgType::TaskDispatch;
  m.worker_id = 2;
  m.task_id = 17;
  m.category = "processing";
  m.resources = ResourceVector{1.0, 512.0, 306.0, 0.0};
  return m;
}

Message result_msg() {
  Message m;
  m.type = MsgType::TaskResult;
  m.worker_id = 2;
  m.task_id = 17;
  m.outcome = Outcome::ResourceExhausted;
  m.resources = ResourceVector{1.0, 512.0, 306.0, 0.0};
  m.runtime_s = 42.5;
  m.exceeded_mask = 2;
  return m;
}

TEST(ProtoMessage, RoundTripEveryType) {
  for (const Message& m : {ready_msg(), dispatch_msg(), result_msg()}) {
    const auto decoded = decode(encode(m));
    ASSERT_TRUE(decoded.has_value()) << encode(m);
    EXPECT_EQ(*decoded, m) << encode(m);
  }
  Message evict;
  evict.type = MsgType::Evict;
  evict.worker_id = 5;
  evict.task_id = 9;
  const auto d = decode(encode(evict));
  ASSERT_TRUE(d);
  EXPECT_EQ(d->type, MsgType::Evict);
  EXPECT_EQ(d->task_id, 9u);

  Message shutdown;
  shutdown.type = MsgType::Shutdown;
  shutdown.worker_id = 1;
  const auto s = decode(encode(shutdown));
  ASSERT_TRUE(s);
  EXPECT_EQ(s->type, MsgType::Shutdown);
  EXPECT_EQ(s->worker_id, 1u);
}

TEST(ProtoMessage, EncodeIsHumanReadable) {
  const std::string line = encode(dispatch_msg());
  EXPECT_NE(line.find("dispatch"), std::string::npos);
  EXPECT_NE(line.find("worker=2"), std::string::npos);
  EXPECT_NE(line.find("task=17"), std::string::npos);
  EXPECT_NE(line.find("category=processing"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // single line
}

TEST(ProtoMessage, CategoryEscaping) {
  Message m = dispatch_msg();
  m.category = "weird category=x%y";
  const std::string line = encode(m);
  EXPECT_EQ(line.find(' ' + std::string("category=weird category")),
            std::string::npos);  // the raw space must not appear
  const auto d = decode(line);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->category, "weird category=x%y");
}

TEST(ProtoMessage, ResourceDoublesRoundTripExactly) {
  Message m = result_msg();
  m.resources = ResourceVector{0.1 + 0.2, 1.0 / 3.0, 1e-17, 12345.6789};
  m.runtime_s = 0.30000000000000004;
  const auto d = decode(encode(m));
  ASSERT_TRUE(d);
  EXPECT_EQ(d->resources, m.resources);
  EXPECT_EQ(d->runtime_s, m.runtime_s);
}

TEST(ProtoMessage, DecodeRejectsMalformedInput) {
  EXPECT_FALSE(decode(""));
  EXPECT_FALSE(decode("frobnicate worker=1"));
  EXPECT_FALSE(decode("ready"));                       // missing fields
  EXPECT_FALSE(decode("ready worker=1 cores=1"));      // missing memory...
  EXPECT_FALSE(decode("ready worker=x cores=1 memory=1 disk=1 time=0"));
  EXPECT_FALSE(decode("dispatch worker=1 task=2 cores=1 memory=1 disk=1 "
                      "time=0"));  // no category
  EXPECT_FALSE(decode("result worker=1 task=2 outcome=maybe runtime=1 "
                      "exceeded=0 cores=1 memory=1 disk=1 time=0"));
  EXPECT_FALSE(decode("evict worker=1"));  // no task
  EXPECT_FALSE(decode("ready worker=-3 cores=1 memory=1 disk=1 time=0"));
  EXPECT_FALSE(decode("ready worker=1 =bad cores=1 memory=1 disk=1 time=0"));
  EXPECT_FALSE(decode("dispatch worker=1 task=2 category=%Z cores=1 "
                      "memory=1 disk=1 time=0"));  // bad escape
}

TEST(ProtoMessage, DecodeToleratesExtraWhitespaceAndFields) {
  const auto d = decode(
      "ready  worker=4   cores=8 memory=1024 disk=2048 time=0 extra=junk");
  ASSERT_TRUE(d);
  EXPECT_EQ(d->worker_id, 4u);
  EXPECT_DOUBLE_EQ(d->resources.cores(), 8.0);
}

TEST(ProtoMessage, TypeNames) {
  EXPECT_EQ(tora::proto::to_string(MsgType::WorkerReady), "ready");
  EXPECT_EQ(tora::proto::to_string(MsgType::TaskDispatch), "dispatch");
  EXPECT_EQ(tora::proto::to_string(MsgType::TaskResult), "result");
  EXPECT_EQ(tora::proto::to_string(Outcome::Success), "success");
  EXPECT_EQ(tora::proto::to_string(Outcome::ResourceExhausted), "exhausted");
}

}  // namespace
