// Tests for the `tora` command-line driver (parsing + in-process execution).

#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace {

using tora::cli::Options;
using tora::cli::parse_options;
using tora::cli::run_cli;
using tora::cli::split_list;

TEST(CliParse, Defaults) {
  const Options o = parse_options({"run", "--workflow", "uniform"});
  EXPECT_EQ(o.command, "run");
  EXPECT_EQ(o.workflow, "uniform");
  EXPECT_EQ(o.policy, "exhaustive_bucketing");
  EXPECT_EQ(o.seed, 7u);
  EXPECT_TRUE(o.churn);
  EXPECT_EQ(o.placement, tora::sim::Placement::FirstFit);
}

TEST(CliParse, AllOptions) {
  const Options o = parse_options(
      {"run", "--workflow", "topeft", "--policy", "greedy_bucketing",
       "--seed", "99", "--workers", "12", "--no-churn", "--placement", "best",
       "--interval", "2.5", "--out", "m.csv", "--trace-log", "t.csv"});
  EXPECT_EQ(o.policy, "greedy_bucketing");
  EXPECT_EQ(o.seed, 99u);
  EXPECT_EQ(o.workers, 12u);
  EXPECT_FALSE(o.churn);
  EXPECT_EQ(o.placement, tora::sim::Placement::BestFit);
  EXPECT_DOUBLE_EQ(o.submit_interval_s, 2.5);
  EXPECT_EQ(o.output_path, "m.csv");
  EXPECT_EQ(o.trace_log, "t.csv");
}

TEST(CliParse, GridLists) {
  const Options o = parse_options(
      {"grid", "--workflows", "uniform,bimodal", "--policies",
       "max_seen,greedy_bucketing"});
  EXPECT_EQ(o.workflows, (std::vector<std::string>{"uniform", "bimodal"}));
  EXPECT_EQ(o.policies,
            (std::vector<std::string>{"max_seen", "greedy_bucketing"}));
}

TEST(CliParse, Errors) {
  EXPECT_THROW(parse_options({"bogus"}), std::invalid_argument);
  EXPECT_THROW(parse_options({"run"}), std::invalid_argument);  // no workflow
  EXPECT_THROW(parse_options({"run", "--workflow"}), std::invalid_argument);
  EXPECT_THROW(parse_options({"run", "--workflow", "x", "--seed", "abc"}),
               std::invalid_argument);
  EXPECT_THROW(parse_options({"run", "--workflow", "x", "--workers", "0"}),
               std::invalid_argument);
  EXPECT_THROW(parse_options({"run", "--workflow", "x", "--placement", "zz"}),
               std::invalid_argument);
  EXPECT_THROW(parse_options({"run", "--workflow", "x", "--interval", "-1"}),
               std::invalid_argument);
  EXPECT_THROW(parse_options({"run", "--workflow", "x", "--nope"}),
               std::invalid_argument);
}

TEST(CliParse, EmptyIsHelp) {
  EXPECT_EQ(parse_options({}).command, "help");
}

TEST(CliParse, ResilienceKnobs) {
  // Defaults: the whole layer is off and no storm scenario is scheduled.
  const Options d = parse_options({"run", "--workflow", "uniform"});
  EXPECT_FALSE(d.resilience.enabled());
  EXPECT_DOUBLE_EQ(d.storm_interval_s, 0.0);

  const Options o = parse_options(
      {"run", "--workflow", "uniform", "--deadline-quantile", "0.9",
       "--speculation", "--storm-threshold", "4", "--probation", "30",
       "--storm-interval", "600", "--storm-duration", "45",
       "--storm-fraction", "0.7"});
  EXPECT_TRUE(o.resilience.deadlines);
  EXPECT_DOUBLE_EQ(o.resilience.deadline_quantile, 0.9);
  EXPECT_TRUE(o.resilience.speculation);
  EXPECT_TRUE(o.resilience.storm_control);
  EXPECT_EQ(o.resilience.storm_enter, 4u);
  EXPECT_TRUE(o.resilience.reliability);
  EXPECT_DOUBLE_EQ(o.resilience.probation_sentence, 30.0);
  EXPECT_DOUBLE_EQ(o.storm_interval_s, 600.0);
  EXPECT_DOUBLE_EQ(o.storm_duration_s, 45.0);
  EXPECT_DOUBLE_EQ(o.storm_fraction, 0.7);

  // --storm-interval alone picks sensible burst defaults.
  const Options s =
      parse_options({"run", "--workflow", "uniform", "--storm-interval", "300"});
  EXPECT_DOUBLE_EQ(s.storm_duration_s, 60.0);
  EXPECT_DOUBLE_EQ(s.storm_fraction, 0.5);
}

TEST(CliParse, ResilienceKnobValidation) {
  // Validation happens at parse time (ResilienceConfig::validate), so a bad
  // knob fails before any simulation starts.
  const auto bad = [](std::vector<std::string> extra) {
    std::vector<std::string> args = {"run", "--workflow", "x"};
    for (auto& a : extra) args.push_back(std::move(a));
    EXPECT_THROW(parse_options(args), std::invalid_argument);
  };
  bad({"--deadline-quantile", "0"});
  bad({"--deadline-quantile", "1.5"});
  bad({"--deadline-quantile", "abc"});
  bad({"--storm-threshold", "0"});
  bad({"--probation", "0"});
  bad({"--probation", "-3"});
  bad({"--storm-interval", "0"});
  bad({"--storm-interval", "-10"});
  bad({"--storm-duration", "0"});
  bad({"--storm-fraction", "1.5"});
  bad({"--storm-fraction", "0"});
  // Burst shape without a schedule is a contradiction, not a silent no-op.
  bad({"--storm-duration", "30"});
  bad({"--storm-fraction", "0.5"});
}

TEST(CliParse, TransportDefaultsAndKnobs) {
  const Options d = parse_options({"proto", "--workflow", "uniform"});
  EXPECT_EQ(d.command, "proto");
  EXPECT_EQ(d.transport, "inproc");
  EXPECT_EQ(d.tcp_host, "127.0.0.1");
  EXPECT_EQ(d.tcp_port, 0u);

  const Options o = parse_options(
      {"proto", "--workflow", "uniform", "--transport", "tcp", "--listen",
       "0.0.0.0:9000", "--backoff-base", "0.5", "--backoff-cap", "8"});
  EXPECT_EQ(o.transport, "tcp");
  EXPECT_EQ(o.tcp_host, "0.0.0.0");
  EXPECT_EQ(o.tcp_port, 9000u);
  EXPECT_DOUBLE_EQ(o.tcp_backoff_base, 0.5);
  EXPECT_DOUBLE_EQ(o.tcp_backoff_cap, 8.0);

  // Flag order must not matter: TCP knobs before --transport tcp are fine.
  const Options r = parse_options({"proto", "--workflow", "uniform",
                                   "--listen", "localhost:0", "--transport",
                                   "tcp"});
  EXPECT_EQ(r.tcp_host, "localhost");
}

TEST(CliParse, TransportContradictionsFailAtParseTime) {
  const auto bad = [](std::vector<std::string> args, const std::string& msg) {
    try {
      parse_options(args);
      FAIL() << "expected invalid_argument for: " << msg;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(msg), std::string::npos)
          << "actual message: " << e.what();
    }
  };
  // Unknown transport value.
  bad({"proto", "--workflow", "x", "--transport", "udp"},
      "invalid --transport");
  // TCP-only knobs contradict the in-process transport — explicitly...
  bad({"proto", "--workflow", "x", "--transport", "inproc", "--listen",
       "127.0.0.1:9000"},
      "requires --transport tcp");
  // ...and implicitly (inproc is the default), in either flag order.
  bad({"proto", "--workflow", "x", "--backoff-base", "2"},
      "requires --transport tcp");
  bad({"proto", "--workflow", "x", "--listen", "127.0.0.1:0", "--transport",
       "inproc"},
      "requires --transport tcp");
  // Transport flags belong to the proto command only.
  bad({"run", "--workflow", "x", "--transport", "tcp"},
      "only valid for command 'proto'");
  bad({"grid", "--listen", "127.0.0.1:0"}, "only valid for command 'proto'");
  // Malformed listen specs.
  bad({"proto", "--workflow", "x", "--transport", "tcp", "--listen", "9000"},
      "expected HOST:PORT");
  bad({"proto", "--workflow", "x", "--transport", "tcp", "--listen", "h:"},
      "expected HOST:PORT");
  bad({"proto", "--workflow", "x", "--transport", "tcp", "--listen",
       "h:70000"},
      "expected 0..65535");
  // Backoff nonsense.
  bad({"proto", "--workflow", "x", "--transport", "tcp", "--backoff-base",
       "0"},
      "--backoff-base must be > 0");
  bad({"proto", "--workflow", "x", "--transport", "tcp", "--backoff-base",
       "4", "--backoff-cap", "2"},
      "--backoff-cap must be >= --backoff-base");
  // proto requires a workflow, like run/trace.
  bad({"proto"}, "requires --workflow");
}

TEST(CliSplit, List) {
  EXPECT_EQ(split_list("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_list("a,,b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split_list("").empty());
}

TEST(CliRun, ListCommand) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"list"}, out, err), 0);
  EXPECT_NE(out.str().find("exhaustive_bucketing"), std::string::npos);
  EXPECT_NE(out.str().find("hybrid_bucketing"), std::string::npos);
  EXPECT_NE(out.str().find("topeft"), std::string::npos);
}

TEST(CliRun, HelpCommand) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"help"}, out, err), 0);
  EXPECT_NE(out.str().find("usage:"), std::string::npos);
}

TEST(CliRun, BadArgsReturnNonZeroWithUsage) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"frobnicate"}, out, err), 2);
  EXPECT_NE(err.str().find("unknown command"), std::string::npos);
  EXPECT_NE(err.str().find("usage:"), std::string::npos);
}

TEST(CliRun, TraceToStdout) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"trace", "--workflow", "uniform", "--seed", "3"}, out,
                    err),
            0);
  const std::string s = out.str();
  EXPECT_NE(s.find("id,category,cores"), std::string::npos);
  // 1000 tasks + header.
  EXPECT_EQ(static_cast<int>(std::count(s.begin(), s.end(), '\n')), 1001);
}

TEST(CliRun, RunSmallWorkflowEndToEnd) {
  std::ostringstream out, err;
  const int rc = run_cli({"run", "--workflow", "uniform", "--policy",
                          "max_seen", "--no-churn", "--workers", "8",
                          "--interval", "1"},
                         out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("tasks completed 1000"), std::string::npos);
  EXPECT_NE(out.str().find("AWE"), std::string::npos);
}

TEST(CliRun, RunFromTraceFileWithOutputs) {
  const std::string trace_path = ::testing::TempDir() + "/cli_trace.csv";
  const std::string metrics_path = ::testing::TempDir() + "/cli_metrics.csv";
  const std::string log_path = ::testing::TempDir() + "/cli_events.csv";
  {
    std::ostringstream out, err;
    ASSERT_EQ(run_cli({"trace", "--workflow", "bimodal", "--out", trace_path},
                      out, err),
              0);
  }
  std::ostringstream out, err;
  const int rc = run_cli({"run", "--workflow", trace_path, "--policy",
                          "exhaustive_bucketing", "--no-churn", "--workers",
                          "10", "--out", metrics_path, "--trace-log",
                          log_path},
                         out, err);
  EXPECT_EQ(rc, 0) << err.str();
  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good());
  std::string header;
  std::getline(metrics, header);
  EXPECT_EQ(header, "resource,awe,consumption,allocation,"
                    "internal_fragmentation,failed_allocation");
  std::ifstream log(log_path);
  ASSERT_TRUE(log.good());
  std::getline(log, header);
  EXPECT_EQ(header, "time,event,task,worker,cores,memory_mb,disk_mb");
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
  std::remove(log_path.c_str());
}

TEST(CliRun, GridWithCsvOutput) {
  const std::string path = ::testing::TempDir() + "/cli_grid.csv";
  std::ostringstream out, err;
  const int rc = run_cli({"grid", "--workflows", "uniform", "--policies",
                          "max_seen", "--no-churn", "--workers", "8", "--out",
                          path},
                         out, err);
  EXPECT_EQ(rc, 0) << err.str();
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "resource,policy,workflow,awe");
  int rows = 0;
  for (std::string line; std::getline(f, line);) ++rows;
  EXPECT_EQ(rows, 3);  // one per managed resource
  std::remove(path.c_str());
}

TEST(CliRun, GridReplicationsShowSpread) {
  std::ostringstream out, err;
  const int rc = run_cli({"grid", "--workflows", "uniform", "--policies",
                          "max_seen", "--no-churn", "--workers", "8",
                          "--replications", "2"},
                         out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("mean +/- sd over 2 runs"), std::string::npos);
  EXPECT_NE(out.str().find("+-"), std::string::npos);
}

TEST(CliParse, ReplicationsValidation) {
  EXPECT_THROW(parse_options({"grid", "--replications", "0"}),
               std::invalid_argument);
  EXPECT_EQ(parse_options({"grid", "--replications", "5"}).replications, 5u);
}

namespace {
// A tiny hand-written trace so the proto e2e runs stay fast (the named
// workflows generate 1000 tasks).
std::string write_small_trace(const char* filename, int tasks) {
  const std::string path = ::testing::TempDir() + "/" + filename;
  std::ofstream out(path);
  out << "id,category,cores,memory_mb,disk_mb,duration_s,peak_fraction\n";
  for (int i = 0; i < tasks; ++i) {
    out << i << ",small,2,1024,1024,30,0.5\n";
  }
  return path;
}
}  // namespace

TEST(CliRun, ProtoInprocEndToEnd) {
  const std::string trace = write_small_trace("cli_proto_inproc.csv", 12);
  std::ostringstream out, err;
  const int rc = run_cli(
      {"proto", "--workflow", trace, "--policy", "max_seen", "--workers", "4"},
      out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("over inproc transport"), std::string::npos);
  EXPECT_NE(out.str().find("tasks completed 12"), std::string::npos);
  EXPECT_NE(out.str().find("AWE"), std::string::npos);
  std::remove(trace.c_str());
}

TEST(CliRun, ProtoTcpEndToEnd) {
  const std::string trace = write_small_trace("cli_proto_tcp.csv", 12);
  std::ostringstream out, err;
  const int rc = run_cli({"proto", "--workflow", trace, "--policy", "max_seen",
                          "--workers", "3", "--transport", "tcp", "--listen",
                          "127.0.0.1:0"},
                         out, err);
  EXPECT_EQ(rc, 0) << err.str();
  const std::string s = out.str();
  EXPECT_NE(s.find("over tcp transport"), std::string::npos);
  EXPECT_NE(s.find("tasks completed 12"), std::string::npos);
  EXPECT_NE(s.find("transport: connections 3 accepted"), std::string::npos);
  EXPECT_NE(s.find("state fingerprint "), std::string::npos);
  std::remove(trace.c_str());
}

TEST(CliRun, GridSubsetRuns) {
  std::ostringstream out, err;
  const int rc = run_cli({"grid", "--workflows", "uniform", "--policies",
                          "max_seen,whole_machine", "--no-churn", "--workers",
                          "8"},
                         out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("== AWE: cores =="), std::string::npos);
  EXPECT_NE(out.str().find("whole_machine"), std::string::npos);
}

}  // namespace
