// Tests for the optional wall-time dimension (the paper's future-work
// "extension to additional resource types"): the allocator manages TimeS
// alongside cores/memory/disk, and the simulator kills tasks that exceed
// their time allocation exactly at the limit.

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "core/task_allocator.hpp"
#include "sim/simulation.hpp"

namespace {

using tora::core::AllocatorConfig;
using tora::core::ResourceKind;
using tora::core::ResourceVector;
using tora::core::TaskSpec;
using tora::sim::SimConfig;
using tora::sim::Simulation;

constexpr double kDay = 86400.0;

AllocatorConfig time_managed_config() {
  AllocatorConfig cfg;
  cfg.managed = {ResourceKind::Cores, ResourceKind::MemoryMB,
                 ResourceKind::DiskMB, ResourceKind::TimeS};
  cfg.worker_capacity = ResourceVector{16.0, 65536.0, 65536.0, 7.0 * kDay};
  cfg.exploration.default_alloc = ResourceVector{1.0, 1024.0, 1024.0, 3600.0};
  return cfg;
}

tora::core::TaskAllocator make_time_allocator(std::string_view policy) {
  AllocatorConfig cfg = time_managed_config();
  return tora::core::TaskAllocator(
      std::string(policy),
      tora::core::make_policy_factory(policy, 3), cfg);
}

TEST(TimeEnforcement, ManagedSetValidation) {
  AllocatorConfig cfg = time_managed_config();
  cfg.worker_capacity[ResourceKind::TimeS] = 0.0;  // must be positive
  EXPECT_THROW(
      tora::core::TaskAllocator(
          "x", tora::core::make_policy_factory("greedy_bucketing", 1), cfg),
      std::invalid_argument);
  AllocatorConfig empty = time_managed_config();
  empty.managed.clear();
  EXPECT_THROW(
      tora::core::TaskAllocator(
          "x", tora::core::make_policy_factory("greedy_bucketing", 1), empty),
      std::invalid_argument);
}

TEST(TimeEnforcement, ExplorationAllocatesTimeDefault) {
  auto a = make_time_allocator("greedy_bucketing");
  const ResourceVector alloc = a.allocate("c");
  EXPECT_DOUBLE_EQ(alloc.time_s(), 3600.0);
}

TEST(TimeEnforcement, PredictsTimeFromRecords) {
  auto a = make_time_allocator("greedy_bucketing");
  for (int i = 0; i < 10; ++i) {
    a.record_completion("c", {1.0, 100.0, 10.0, 120.0});
  }
  EXPECT_DOUBLE_EQ(a.allocate("c").time_s(), 120.0);
}

TEST(TimeEnforcement, RetryEscalatesTime) {
  auto a = make_time_allocator("greedy_bucketing");
  const ResourceVector failed{1.0, 1024.0, 1024.0, 3600.0};
  const ResourceVector next = a.allocate_retry(
      "c", failed, tora::core::resource_bit(ResourceKind::TimeS));
  EXPECT_DOUBLE_EQ(next.time_s(), 7200.0);
  EXPECT_DOUBLE_EQ(next.memory_mb(), 1024.0);  // untouched dimensions kept
}

TEST(TimeEnforcement, ExceededMaskIncludesTime) {
  const ResourceVector demand{1.0, 100.0, 10.0, 500.0};
  const ResourceVector alloc{2.0, 200.0, 20.0, 400.0};
  const std::array<ResourceKind, 4> all = tora::core::kAllResources;
  EXPECT_EQ(demand.exceeded_mask(alloc, all),
            tora::core::resource_bit(ResourceKind::TimeS));
  EXPECT_FALSE(demand.fits_within(alloc, all));
  // The default three-dimension view ignores time.
  EXPECT_TRUE(demand.fits_within(alloc));
}

TEST(TimeEnforcement, SimulatorKillsAtTimeLimitAndRetries) {
  // One task of 1000 s; exploration allocates a 600 s limit, so the first
  // attempt is killed exactly at 600 s and retried with a doubled limit.
  std::vector<TaskSpec> tasks(1);
  tasks[0].id = 0;
  tasks[0].category = "c";
  tasks[0].demand = ResourceVector{0.5, 100.0, 10.0, 1000.0};
  tasks[0].duration_s = 1000.0;
  tasks[0].peak_fraction = 0.5;

  AllocatorConfig acfg = time_managed_config();
  acfg.exploration.default_alloc = ResourceVector{1.0, 1024.0, 1024.0, 600.0};
  tora::core::TaskAllocator allocator(
      "greedy_bucketing",
      tora::core::make_policy_factory("greedy_bucketing", 5), acfg);

  SimConfig scfg;
  scfg.churn.enabled = false;
  scfg.churn.initial_workers = 1;
  Simulation sim(tasks, allocator, scfg);
  const auto r = sim.run();
  EXPECT_EQ(r.tasks_completed, 1u);
  // Failed attempt ran exactly 600 s (the time limit, before the 500 s peak
  // would matter — the time kill happens at 600 > peak time 500, but memory
  // never exceeded so only the time limit kills).
  EXPECT_NEAR(r.makespan_s, 600.0 + 1000.0, 1e-9);
  EXPECT_EQ(r.accounting.total_attempts(), 2u);
}

TEST(TimeEnforcement, SpatialKillBeatsLaterTimeLimit) {
  // Memory exceeded at peak time 300 s; time limit 600 s: killed at 300 s.
  std::vector<TaskSpec> tasks(1);
  tasks[0].id = 0;
  tasks[0].category = "c";
  tasks[0].demand = ResourceVector{0.5, 4096.0, 10.0, 1000.0};
  tasks[0].duration_s = 1000.0;
  tasks[0].peak_fraction = 0.3;

  AllocatorConfig acfg = time_managed_config();
  acfg.exploration.default_alloc = ResourceVector{1.0, 1024.0, 1024.0, 600.0};
  tora::core::TaskAllocator allocator(
      "greedy_bucketing",
      tora::core::make_policy_factory("greedy_bucketing", 5), acfg);

  SimConfig scfg;
  scfg.churn.enabled = false;
  scfg.churn.initial_workers = 1;
  Simulation sim(tasks, allocator, scfg);
  const auto r = sim.run();
  EXPECT_EQ(r.tasks_completed, 1u);
  // Attempt 1 killed at 300 s (memory peak) with both memory and time
  // exceeded eventually; retries double memory (and time if flagged).
  const auto& attempts = r.accounting.total_attempts();
  EXPECT_GE(attempts, 2u);
  const auto& mem = r.accounting.breakdown(ResourceKind::MemoryMB);
  EXPECT_GT(mem.failed_allocation, 0.0);
}

TEST(TimeEnforcement, DefaultConfigIgnoresTime) {
  // Without TimeS in the managed set, a zero time allocation never kills.
  std::vector<TaskSpec> tasks(1);
  tasks[0].id = 0;
  tasks[0].category = "c";
  tasks[0].demand = ResourceVector{0.5, 100.0, 10.0, 1000.0};
  tasks[0].duration_s = 1000.0;
  tasks[0].peak_fraction = 0.5;
  auto allocator = tora::core::make_allocator("whole_machine", 1);
  SimConfig scfg;
  scfg.churn.enabled = false;
  scfg.churn.initial_workers = 1;
  Simulation sim(tasks, allocator, scfg);
  const auto r = sim.run();
  EXPECT_EQ(r.tasks_completed, 1u);
  EXPECT_EQ(r.accounting.total_attempts(), 1u);
}

}  // namespace
