#include "core/bucket.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace {

using tora::core::Bucket;
using tora::core::BucketSet;
using tora::core::expected_waste;
using tora::core::Record;
using tora::util::Rng;

std::vector<Record> uniform_records(std::initializer_list<double> values) {
  std::vector<Record> r;
  for (double v : values) r.push_back({v, 1.0});
  return r;
}

TEST(BucketSet, SingleBucketBasics) {
  const auto recs = uniform_records({1.0, 2.0, 3.0});
  const std::vector<std::size_t> ends{2};
  const auto set = BucketSet::from_break_indices(recs, ends);
  ASSERT_EQ(set.size(), 1u);
  const Bucket& b = set.buckets()[0];
  EXPECT_DOUBLE_EQ(b.rep, 3.0);
  EXPECT_DOUBLE_EQ(b.prob, 1.0);
  EXPECT_DOUBLE_EQ(b.weighted_mean, 2.0);
  EXPECT_EQ(b.size(), 3u);
}

TEST(BucketSet, TwoBucketsProbAndRep) {
  const auto recs = uniform_records({1.0, 2.0, 10.0, 12.0});
  const std::vector<std::size_t> ends{1, 3};
  const auto set = BucketSet::from_break_indices(recs, ends);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.buckets()[0].rep, 2.0);
  EXPECT_DOUBLE_EQ(set.buckets()[0].prob, 0.5);
  EXPECT_DOUBLE_EQ(set.buckets()[0].weighted_mean, 1.5);
  EXPECT_DOUBLE_EQ(set.buckets()[1].rep, 12.0);
  EXPECT_DOUBLE_EQ(set.buckets()[1].prob, 0.5);
  EXPECT_DOUBLE_EQ(set.buckets()[1].weighted_mean, 11.0);
}

TEST(BucketSet, SignificanceWeightsProbabilities) {
  // Higher significance in the upper bucket shifts probability there.
  const std::vector<Record> recs{{1.0, 1.0}, {10.0, 3.0}};
  const std::vector<std::size_t> ends{0, 1};
  const auto set = BucketSet::from_break_indices(recs, ends);
  EXPECT_DOUBLE_EQ(set.buckets()[0].prob, 0.25);
  EXPECT_DOUBLE_EQ(set.buckets()[1].prob, 0.75);
}

TEST(BucketSet, SignificanceWeightsMeans) {
  const std::vector<Record> recs{{2.0, 1.0}, {4.0, 3.0}};
  const std::vector<std::size_t> ends{1};
  const auto set = BucketSet::from_break_indices(recs, ends);
  // (2*1 + 4*3) / 4 = 3.5
  EXPECT_DOUBLE_EQ(set.buckets()[0].weighted_mean, 3.5);
}

TEST(BucketSet, ProbabilitiesSumToOne) {
  const auto recs = uniform_records({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  const std::vector<std::size_t> ends{2, 5, 9};
  const auto set = BucketSet::from_break_indices(recs, ends);
  double total = 0.0;
  for (const Bucket& b : set.buckets()) total += b.prob;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BucketSet, EveryRecordCoveredExactlyOnce) {
  const auto recs = uniform_records({1, 2, 3, 4, 5, 6, 7});
  const std::vector<std::size_t> ends{1, 4, 6};
  const auto set = BucketSet::from_break_indices(recs, ends);
  std::size_t covered = 0;
  std::size_t expect_begin = 0;
  for (const Bucket& b : set.buckets()) {
    EXPECT_EQ(b.begin, expect_begin);
    covered += b.size();
    expect_begin = b.end + 1;
  }
  EXPECT_EQ(covered, recs.size());
}

TEST(BucketSet, RejectsMalformedInput) {
  const auto recs = uniform_records({1.0, 2.0});
  EXPECT_THROW(BucketSet::from_break_indices(recs, std::vector<std::size_t>{}),
               std::invalid_argument);
  EXPECT_THROW(
      BucketSet::from_break_indices(recs, std::vector<std::size_t>{0}),
      std::invalid_argument);  // must end at last index
  EXPECT_THROW(
      BucketSet::from_break_indices(recs, std::vector<std::size_t>{1, 1}),
      std::invalid_argument);  // not strictly increasing
  const std::vector<Record> unsorted{{2.0, 1.0}, {1.0, 1.0}};
  EXPECT_THROW(
      BucketSet::from_break_indices(unsorted, std::vector<std::size_t>{1}),
      std::invalid_argument);
  EXPECT_THROW(BucketSet::from_break_indices({}, std::vector<std::size_t>{0}),
               std::invalid_argument);
}

TEST(BucketSet, SampleRespectsProbabilities) {
  const std::vector<Record> recs{{1.0, 9.0}, {10.0, 1.0}};
  const std::vector<std::size_t> ends{0, 1};
  const auto set = BucketSet::from_break_indices(recs, ends);
  Rng rng(5);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (set.sample_allocation(rng) == 1.0) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.9, 0.01);
}

TEST(BucketSet, SampleAboveFiltersAndRenormalizes) {
  const auto recs = uniform_records({1.0, 5.0, 10.0});
  const std::vector<std::size_t> ends{0, 1, 2};
  const auto set = BucketSet::from_break_indices(recs, ends);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const auto v = set.sample_above(5.0, rng);
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(*v, 10.0);
  }
  // Above the top rep there is nothing left.
  EXPECT_FALSE(set.sample_above(10.0, rng).has_value());
  EXPECT_FALSE(set.sample_above(11.0, rng).has_value());
}

TEST(BucketSet, SampleAboveMixesEligibleBuckets) {
  const auto recs = uniform_records({1.0, 5.0, 10.0, 20.0});
  const std::vector<std::size_t> ends{0, 1, 2, 3};
  const auto set = BucketSet::from_break_indices(recs, ends);
  Rng rng(7);
  int got10 = 0, got20 = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto v = set.sample_above(5.0, rng);
    ASSERT_TRUE(v.has_value());
    if (*v == 10.0) ++got10;
    else if (*v == 20.0) ++got20;
    else FAIL() << "unexpected allocation " << *v;
  }
  // Equal significance => the two eligible buckets split evenly.
  EXPECT_NEAR(got10, got20, 500);
}

TEST(BucketSet, IndexForMatchesLinearScan) {
  const std::vector<Record> recs{{1.0, 1.0}, {2.0, 3.0}, {3.0, 4.0}};
  const std::vector<std::size_t> ends{0, 1, 2};
  const auto set = BucketSet::from_break_indices(recs, ends);
  // probs = 0.125, 0.375, 0.5 -> cumulative boundaries 0.125, 0.5, 1.0.
  // The binary search must agree with the historical strict-compare linear
  // scan (u < running_sum), including exactly at the boundaries.
  EXPECT_EQ(set.index_for(0.0), 0u);
  EXPECT_EQ(set.index_for(0.124), 0u);
  EXPECT_EQ(set.index_for(0.125), 1u);  // boundary goes to the upper bucket
  EXPECT_EQ(set.index_for(0.499), 1u);
  EXPECT_EQ(set.index_for(0.5), 2u);
  EXPECT_EQ(set.index_for(0.999), 2u);
}

TEST(BucketSet, IndexForAdversarialProbsBelowOne) {
  // Ten buckets of significance 0.1: accumulating the probabilities in
  // floating point can leave the last cumulative boundary slightly below 1.
  // A draw beyond it must land in the top bucket, never off the end.
  std::vector<Record> recs;
  for (int i = 0; i < 10; ++i) recs.push_back({static_cast<double>(i + 1), 0.1});
  std::vector<std::size_t> ends;
  for (std::size_t i = 0; i < recs.size(); ++i) ends.push_back(i);
  const auto set = BucketSet::from_break_indices(recs, ends);
  EXPECT_EQ(set.index_for(1.0), 9u);
  EXPECT_EQ(set.index_for(std::nextafter(1.0, 0.0)), 9u);
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double v = set.sample_allocation(rng);
    ASSERT_GE(v, 1.0);
    ASSERT_LE(v, 10.0);
  }
}

TEST(BucketSet, MaxRep) {
  const auto recs = uniform_records({1.0, 2.0, 9.0});
  const std::vector<std::size_t> ends{1, 2};
  const auto set = BucketSet::from_break_indices(recs, ends);
  EXPECT_DOUBLE_EQ(set.max_rep(), 9.0);
}

// ---------------------------------------------------------------- expected
// waste (the Exhaustive Bucketing cost table)

TEST(ExpectedWaste, SingleBucketIsRepMinusMean) {
  const auto recs = uniform_records({2.0, 4.0, 6.0});
  const auto set =
      BucketSet::from_break_indices(recs, std::vector<std::size_t>{2});
  // One bucket: waste = rep - weighted mean = 6 - 4.
  EXPECT_NEAR(expected_waste(set), 2.0, 1e-12);
}

TEST(ExpectedWaste, TwoBucketHandComputed) {
  // Records {1, 3} split into singleton buckets: p = 0.5 each,
  // v_0 = 1, v_1 = 3, rep_0 = 1, rep_1 = 3.
  // T[0][0] = 0, T[0][1] = 3 - 1 = 2,
  // T[1][1] = 0, T[1][0] = rep_0 + T[1][1] = 1.
  // W = .25*(0 + 2 + 1 + 0) = 0.75.
  const auto recs = uniform_records({1.0, 3.0});
  const auto set =
      BucketSet::from_break_indices(recs, std::vector<std::size_t>{0, 1});
  EXPECT_NEAR(expected_waste(set), 0.75, 1e-12);
}

TEST(ExpectedWaste, ThreeBucketEscalationChain) {
  // Singleton buckets {1, 2, 4}, uniform significance (p = 1/3 each).
  // Row i=2 (task in top bucket): T[2][2]=0,
  //   T[2][1] = rep_1 + T[2][2] = 2,
  //   T[2][0] = rep_0 + (p1*T[2][1] + p2*T[2][2])/(p1+p2) = 1 + 1 = 2.
  // Row i=1: T[1][1]=4-2=2... wait T[1][1] = rep_1 - v_1 = 0; T[1][2] = 4-2 = 2;
  //   T[1][0] = rep_0 + (p1*T[1][1]+p2*T[1][2])/(2/3) = 1 + (0+2)/2 = 2.
  // Row i=0: T[0][0]=0, T[0][1]=1, T[0][2]=3.
  // W = (1/9)*(0+1+3 + 2+0+2 + 2+2+0) = 12/9.
  const auto recs = uniform_records({1.0, 2.0, 4.0});
  const auto set =
      BucketSet::from_break_indices(recs, std::vector<std::size_t>{0, 1, 2});
  EXPECT_NEAR(expected_waste(set), 12.0 / 9.0, 1e-12);
}

TEST(ExpectedWaste, SplittingWellSeparatedClustersWins) {
  // Two tight clusters far apart: a 2-bucket configuration must beat the
  // single bucket.
  const auto recs =
      uniform_records({1.0, 1.1, 1.2, 100.0, 100.1, 100.2});
  const auto one =
      BucketSet::from_break_indices(recs, std::vector<std::size_t>{5});
  const auto two =
      BucketSet::from_break_indices(recs, std::vector<std::size_t>{2, 5});
  EXPECT_LT(expected_waste(two), expected_waste(one));
}

TEST(ExpectedWaste, ThrowsOnEmpty) {
  EXPECT_THROW(expected_waste(BucketSet{}), std::invalid_argument);
}

}  // namespace
