// Resilience headline harness: the churn-adaptive layer (adaptive
// deadlines, speculative re-dispatch, eviction-storm degradation) is swept
// against the legacy behavior across eviction-storm intensities on a
// heavy-tailed workflow. Two invariants are enforced, mirroring the
// layer's design contract:
//
//   1. CALM: with no churn the enabled layer is bit-exact legacy — same
//      makespan, byte-identical waste accounting, zero interventions.
//   2. BURSTY: under the bursty storm scenario the layer must cut mean
//      makespan by >= 20% (speculative duplicates keep tail-task progress
//      alive through bursts that would otherwise requeue from scratch).
//
// Speculative waste is reported SEPARATELY from the paper's allocation
// waste: duplicates are an infrastructure countermeasure, so they live in
// their own WasteAccounting column and never pollute AWE.
//
// Set TORA_RESILIENCE_SEED to randomize the simulation seeds (the CI soak
// runs a fresh seed per build); the seed is printed so a failing run can
// be replayed. Emits BENCH_resilience.json; given a committed baseline
// json, enforces a 3x guard on the bursty resilience-on makespan.
//
// Usage: resilience_churn [out.json] [baseline.json]

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/resilience/resilience.hpp"
#include "core/task.hpp"
#include "exp/report.hpp"
#include "sim/simulation.hpp"
#include "util/bytes.hpp"

namespace {

using tora::core::ResourceVector;
using tora::core::TaskSpec;

constexpr std::size_t kTasks = 400;
constexpr std::size_t kReplicates = 3;
constexpr ResourceVector kCapacity{16.0, 64.0 * 1024.0, 64.0 * 1024.0, 0.0};

/// Heavy-tailed single-category workflow: most attempts are short, a tail
/// runs 4x the straggler threshold — exactly the shape where an eviction
/// mid-tail throws away the most progress.
std::vector<TaskSpec> tail_workload() {
  std::vector<TaskSpec> tasks(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks[i].id = i;
    tasks[i].category = "mix";
    tasks[i].demand = ResourceVector{2.0, 4000.0, 2000.0, 0.0};
    tasks[i].duration_s = (i % 10 == 0) ? 360.0 : 60.0;
  }
  return tasks;
}

struct Scenario {
  const char* name;
  double storm_interval_s;  // 0 = calm (stable pool, no storms)
  double storm_fraction;
};

constexpr Scenario kScenarios[] = {
    {"calm", 0.0, 0.0},
    {"mild", 900.0, 0.3},
    {"bursty", 300.0, 0.6},
    {"severe", 200.0, 0.8},
};

tora::core::resilience::ResilienceConfig layer_on() {
  tora::core::resilience::ResilienceConfig r;
  r.deadlines = true;
  r.speculation = true;
  r.reliability = true;
  r.storm_control = true;
  // Deadlines exist to reap attempts that will never finish; this workload
  // has no hung attempts, so arm them as a backstop only (3x the slowest
  // observation) rather than letting early small samples kill healthy
  // tails.
  r.deadline_quantile = 1.0;
  r.deadline_slack = 3.0;
  r.min_records = 20;
  // The degraded-mode admission cap is sized to the pool (20 workers x 8
  // slots); the default of 8 is tuned for the protocol runtime's small
  // deployments and would throttle this pool to 5%.
  r.degraded_inflight_cap = 160;
  return r;
}

tora::sim::SimResult run_once(const std::vector<TaskSpec>& tasks,
                              const Scenario& sc, bool resilience,
                              std::uint64_t seed) {
  tora::sim::SimConfig cfg;
  cfg.worker_capacity = kCapacity;
  cfg.seed = seed;
  if (sc.storm_interval_s > 0.0) {
    // Storm scenarios keep background churn on so the pool refills between
    // bursts (joins are suppressed during a burst).
    cfg.churn.enabled = true;
    cfg.churn.initial_workers = 20;
    cfg.churn.min_workers = 12;
    cfg.churn.max_workers = 24;
    cfg.churn.mean_interarrival_s = 15.0;
    cfg.churn.mean_lifetime_s = 36000.0;  // storms are the only mass loss
    cfg.churn.storm_interval_s = sc.storm_interval_s;
    cfg.churn.storm_duration_s = 30.0;
    cfg.churn.storm_evict_fraction = sc.storm_fraction;
  } else {
    cfg.churn.enabled = false;
    cfg.churn.initial_workers = 20;
  }
  if (resilience) cfg.resilience = layer_on();
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7, kCapacity);
  tora::sim::Simulation sim(tasks, alloc, cfg);
  return sim.run();
}

std::string accounting_bytes(const tora::core::WasteAccounting& a) {
  tora::util::ByteWriter w;
  a.save(w);
  return w.take();
}

double spec_waste(const tora::sim::SimResult& r) {
  double total = 0.0;
  for (tora::core::ResourceKind k : tora::core::kManagedResources) {
    total += r.accounting.breakdown(k).speculative;
  }
  return total;
}

double parse_guard(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0.0;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::string key = "\"guard_makespan_s\":";
  const auto pos = text.find(key);
  if (pos == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + pos + key.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_resilience.json";
  const std::string baseline_path = argc > 2 ? argv[2] : "";

  std::uint64_t soak_seed = 42;
  bool randomized = false;
  if (const char* env = std::getenv("TORA_RESILIENCE_SEED")) {
    soak_seed = std::strtoull(env, nullptr, 10);
    randomized = true;
  }
  const auto tasks = tail_workload();
  std::cout << "Resilience churn sweep: " << kTasks
            << "-task heavy-tailed workflow, " << kReplicates
            << " replicates, base seed " << soak_seed
            << (randomized ? " (randomized via TORA_RESILIENCE_SEED)" : "")
            << "\n\n";

  bool ok = true;
  const auto violation = [&](const std::string& what) {
    std::cerr << "VIOLATION [seed " << soak_seed << "]: " << what << "\n";
    ok = false;
  };

  struct Row {
    std::string name;
    double makespan_off = 0.0;
    double makespan_on = 0.0;
    double evictions_on = 0.0;
    double spec_waste_on = 0.0;
    tora::core::ResilienceCounters counters;
  };
  std::vector<Row> rows;

  for (const Scenario& sc : kScenarios) {
    Row row;
    row.name = sc.name;
    for (std::size_t rep = 0; rep < kReplicates; ++rep) {
      const std::uint64_t seed = soak_seed + rep;
      const auto off = run_once(tasks, sc, false, seed);
      const auto on = run_once(tasks, sc, true, seed);
      if (off.tasks_completed + off.tasks_fatal != kTasks ||
          on.tasks_completed + on.tasks_fatal != kTasks) {
        violation(std::string(sc.name) + ": run did not terminate cleanly");
      }
      if (sc.storm_interval_s == 0.0) {
        // Calm contract: the enabled layer must be invisible.
        if (on.makespan_s != off.makespan_s) {
          violation("calm makespan changed with resilience enabled (" +
                    tora::exp::fmt(off.makespan_s, 3) + " -> " +
                    tora::exp::fmt(on.makespan_s, 3) + ")");
        }
        if (accounting_bytes(on.accounting) !=
            accounting_bytes(off.accounting)) {
          violation("calm waste accounting diverged with resilience enabled");
        }
        if (!(on.resilience == tora::core::ResilienceCounters{})) {
          violation("calm run recorded resilience interventions");
        }
      }
      row.makespan_off += off.makespan_s / kReplicates;
      row.makespan_on += on.makespan_s / kReplicates;
      row.evictions_on += static_cast<double>(on.evictions) / kReplicates;
      row.spec_waste_on += spec_waste(on) / kReplicates;
      row.counters.merge(on.resilience);
    }
    rows.push_back(row);
  }

  tora::exp::TextTable table({"scenario", "makespan off (s)", "makespan on (s)",
                              "improvement", "evictions", "spec waste",
                              "speculations", "storms"});
  double bursty_improvement = 0.0;
  double guard_makespan = 0.0;
  for (const Row& row : rows) {
    const double improvement =
        row.makespan_off > 0.0
            ? (row.makespan_off - row.makespan_on) / row.makespan_off
            : 0.0;
    if (row.name == "bursty") {
      bursty_improvement = improvement;
      guard_makespan = row.makespan_on;
    }
    table.add_row({row.name, tora::exp::fmt(row.makespan_off, 1),
                   tora::exp::fmt(row.makespan_on, 1),
                   tora::exp::fmt_pct(improvement),
                   tora::exp::fmt(row.evictions_on, 1),
                   tora::exp::fmt(row.spec_waste_on, 0),
                   std::to_string(row.counters.speculations_launched),
                   std::to_string(row.counters.storms_entered)});
  }
  table.print(std::cout);

  if (bursty_improvement < 0.20) {
    violation("bursty makespan improvement " +
              tora::exp::fmt_pct(bursty_improvement) +
              " is below the 20% acceptance bar");
  }

  std::cout << "\nresilience counters (bursty, summed over replicates):\n";
  for (const Row& row : rows) {
    if (row.name == "bursty") {
      tora::exp::resilience_table(row.counters).print(std::cout);
    }
  }

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"benchmark\": \"resilience_churn\",\n"
       << "  \"tasks\": " << kTasks << ",\n"
       << "  \"replicates\": " << kReplicates << ",\n"
       << "  \"seed\": " << soak_seed << ",\n"
       << "  \"randomized\": " << (randomized ? "true" : "false") << ",\n"
       << "  \"bursty_improvement\": " << bursty_improvement << ",\n"
       << "  \"guard_makespan_s\": " << guard_makespan << ",\n"
       << "  \"invariants_held\": " << (ok ? "true" : "false") << ",\n"
       << "  \"scenarios\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << (i ? ",\n" : "\n") << "    {\"name\": \"" << row.name
         << "\", \"makespan_off_s\": " << row.makespan_off
         << ", \"makespan_on_s\": " << row.makespan_on
         << ", \"evictions\": " << row.evictions_on
         << ", \"speculative_waste\": " << row.spec_waste_on
         << ", \"speculations_launched\": "
         << row.counters.speculations_launched
         << ", \"speculations_promoted\": "
         << row.counters.speculations_promoted
         << ", \"storms_entered\": " << row.counters.storms_entered << "}";
  }
  json << "\n  ]\n}\n";

  // Model-time regression guard: the bursty resilience-on makespan is
  // deterministic at the default seed, so a 3x blow-up means the layer's
  // scheduling regressed, not that the machine was busy.
  if (!baseline_path.empty()) {
    const double base = parse_guard(baseline_path);
    if (base > 0.0 && guard_makespan > 3.0 * base) {
      std::cerr << "regression: bursty resilience-on makespan "
                << guard_makespan << " s exceeds 3x the committed baseline ("
                << base << " s)\n";
      ok = false;
    } else if (base > 0.0) {
      std::cout << "\nregression guard: bursty makespan " << guard_makespan
                << " s vs baseline " << base << " s (limit 3x)\n";
    }
  }

  std::cout << (ok ? "\nall resilience invariants held: calm runs bit-exact, "
                     "bursty churn >= 20% faster.\n"
                   : "\nRESILIENCE INVARIANT VIOLATIONS — see stderr above "
                     "(replay with TORA_RESILIENCE_SEED=" +
                         std::to_string(soak_seed) + ").\n");
  return ok ? 0 : 1;
}
