// Ablation: does the significance (recency) weighting of §IV-A actually help
// on phase-changing workflows?
//
// The bucketing probability of §IV-A weights records by significance = task
// id, so after a phase change the new phase quickly dominates bucket
// probabilities. This harness runs the bucketing algorithms on the
// phase-heavy workflows (trimodal, colmena_xtb) twice — once with the
// paper's task-id significance, once with constant significance — and
// reports memory AWE. Recency weighting should win on phasing workflows and
// be near-neutral on stationary ones (uniform is included as a control).

#include <iostream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "workloads/workload.hpp"

int main() {
  using tora::core::ResourceKind;
  using SigMode = tora::sim::SimConfig::SignificanceMode;

  const std::vector<std::string> workflows = {"trimodal", "colmena_xtb",
                                              "uniform"};
  const std::vector<std::string> policies = {
      "greedy_bucketing", "exhaustive_bucketing", "quantized_bucketing",
      "change_aware_bucketing"};

  std::cout << "Ablation: significance (recency) weighting on vs off\n"
               "metric: memory AWE; phasing workflows should benefit from "
               "recency, uniform is the control\n"
               "(change_aware_bucketing is this library's hard-reset "
               "extension: a mean-shift detector\n rebuilds the record base "
               "on phase changes instead of down-weighting old records)\n\n";

  tora::exp::TextTable table(
      {"workflow / policy", "sig = task id", "sig = constant", "delta"});
  for (const auto& wf : workflows) {
    const auto workload = tora::workloads::make_workload(wf, 7);
    for (const auto& p : policies) {
      tora::exp::ExperimentConfig cfg;
      cfg.sim.significance = SigMode::TaskId;
      const double with_sig = tora::exp::run_experiment(workload, p, cfg)
                                  .awe(ResourceKind::MemoryMB);
      cfg.sim.significance = SigMode::Constant;
      const double without_sig = tora::exp::run_experiment(workload, p, cfg)
                                     .awe(ResourceKind::MemoryMB);
      table.add_row({wf + " / " + p, tora::exp::fmt_pct(with_sig),
                     tora::exp::fmt_pct(without_sig),
                     tora::exp::fmt((with_sig - without_sig) * 100.0, 1) +
                         " pp"});
    }
  }
  table.print(std::cout);
  return 0;
}
