// Figure 2 reproduction: per-task peak resource consumption of the
// ColmenaXTB and TopEFT workflows (cores, memory, disk, execution time), by
// task category. The paper plots one point per task against submission
// order; this harness prints per-category summary rows (count, min / mean /
// max per resource) that characterize the same bands, and dumps the full
// per-task series as CSV for plotting.
//
// Usage: fig2_production_traces [output_dir]   (default: current directory)

#include <iostream>
#include <map>
#include <string>

#include "core/resources.hpp"
#include "exp/report.hpp"
#include "util/stats.hpp"
#include "workloads/trace.hpp"
#include "workloads/workload.hpp"

namespace {

using tora::core::ResourceKind;
using tora::util::OnlineStats;
using tora::workloads::Workload;

struct CategoryStats {
  OnlineStats cores, memory, disk, duration;
};

void summarize(const Workload& w, std::ostream& out) {
  std::map<std::string, CategoryStats> stats;
  for (const auto& t : w.tasks) {
    auto& s = stats[t.category];
    s.cores.add(t.demand.cores());
    s.memory.add(t.demand.memory_mb());
    s.disk.add(t.demand.disk_mb());
    s.duration.add(t.duration_s);
  }
  out << "\n== " << w.name << " (" << w.tasks.size() << " tasks) ==\n";
  tora::exp::TextTable table({"category", "tasks", "cores min/mean/max",
                              "memory MB min/mean/max",
                              "disk MB min/mean/max", "time s min/mean/max"});
  const auto triple = [](const OnlineStats& s) {
    return tora::exp::fmt(s.min(), 2) + " / " + tora::exp::fmt(s.mean(), 2) +
           " / " + tora::exp::fmt(s.max(), 2);
  };
  for (const auto& [cat, s] : stats) {
    table.add_row({cat, std::to_string(s.cores.count()), triple(s.cores),
                   triple(s.memory), triple(s.disk), triple(s.duration)});
  }
  table.print(out);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  std::cout << "Figure 2: resource consumption of tasks in ColmenaXTB and "
               "TopEFT\n"
               "(synthetic traces regenerated from the paper's §III-B "
               "description; seed-stable)\n";
  for (const char* name : {"colmena_xtb", "topeft"}) {
    const Workload w = tora::workloads::make_workload(name, 7);
    summarize(w, std::cout);
    const std::string path = out_dir + "/fig2_" + std::string(name) + ".csv";
    tora::workloads::save_trace(path, w);
    std::cout << "per-task series written to " << path << "\n";
  }
  std::cout << "\nExpected shape vs. paper Fig. 2:\n"
               "  * evaluate_mpnn memory 1.0-1.2 GB vs compute_atomization_"
               "energy ~200 MB (specialization)\n"
               "  * compute_atomization_energy cores spread 0.9-3.6 "
               "(inherent stochasticity)\n"
               "  * TopEFT disk constant at 306 MB; preprocessing and "
               "accumulating memory coincide near 180 MB\n"
               "  * TopEFT processing memory splits into ~450 MB and ~580 MB "
               "clusters; core outliers reach ~3\n";
  return 0;
}
