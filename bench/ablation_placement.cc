// Ablation: scheduler placement policy (first-fit vs best-fit vs worst-fit).
//
// The paper's AWE metric is deliberately worker-independent (§II-C), so the
// allocation algorithms' ranking should be invariant to how tasks are packed
// onto workers — but makespan is not. This harness verifies both: AWE moves
// by at most noise across placement policies while makespan responds to
// packing quality, supporting the paper's choice of a worker-independent
// metric for opportunistic pools.

#include <iostream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "sim/worker_pool.hpp"
#include "workloads/workload.hpp"

int main() {
  using tora::core::ResourceKind;
  using tora::sim::Placement;

  struct Mode {
    const char* label;
    Placement placement;
  };
  const std::vector<Mode> modes = {{"first_fit", Placement::FirstFit},
                                   {"best_fit", Placement::BestFit},
                                   {"worst_fit", Placement::WorstFit}};

  std::cout << "Ablation: worker placement policy (exhaustive bucketing)\n"
               "AWE should be placement-invariant; makespan is not\n\n";
  for (const char* wf : {"bimodal", "topeft"}) {
    const auto workload = tora::workloads::make_workload(wf, 7);
    std::cout << "== " << wf << " ==\n";
    tora::exp::TextTable table({"placement", "memory AWE", "cores AWE",
                                "makespan (h)", "mean attempts"});
    for (const Mode& m : modes) {
      tora::exp::ExperimentConfig cfg;
      cfg.sim.placement = m.placement;
      const auto r =
          tora::exp::run_experiment(workload, "exhaustive_bucketing", cfg);
      table.add_row({m.label, tora::exp::fmt_pct(r.awe(ResourceKind::MemoryMB)),
                     tora::exp::fmt_pct(r.awe(ResourceKind::Cores)),
                     tora::exp::fmt(r.sim.makespan_s / 3600.0, 2),
                     tora::exp::fmt(r.sim.accounting.mean_attempts(), 2)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
