// Extension experiment: the §V-C hand-off the paper sketches for TopEFT's
// cores column — "running Quantized Bucketing initially then switching over"
// — implemented as hybrid_bucketing (quantized stage until N records, then
// exhaustive bucketing).
//
// The paper observed Min Waste / Max Throughput / Quantized beating the
// bucketing algorithms by 20-30% on TopEFT cores because "the first few
// outliers cause this issue". The hybrid absorbs the outlier-laden cold
// start with the median split, then hands the converged record base to the
// expected-waste model. This harness compares the pure policies against the
// hybrid at several switch points.

#include <iostream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "workloads/workload.hpp"

int main() {
  using tora::core::ResourceKind;

  std::cout << "Extension: quantized -> exhaustive hand-off "
               "(hybrid_bucketing)\n\n";

  for (const char* wf : {"topeft", "exponential"}) {
    const auto workload = tora::workloads::make_workload(wf, 7);
    std::cout << "== " << wf << " ==\n";
    tora::exp::TextTable table(
        {"policy", "cores AWE", "memory AWE", "disk AWE", "mean attempts"});
    const auto run = [&](const std::string& label, const std::string& policy,
                         std::size_t switch_records) {
      tora::exp::ExperimentConfig cfg;
      cfg.registry.hybrid_switch_records = switch_records;
      const auto r = tora::exp::run_experiment(workload, policy, cfg);
      table.add_row({label, tora::exp::fmt_pct(r.awe(ResourceKind::Cores)),
                     tora::exp::fmt_pct(r.awe(ResourceKind::MemoryMB)),
                     tora::exp::fmt_pct(r.awe(ResourceKind::DiskMB)),
                     tora::exp::fmt(r.sim.accounting.mean_attempts(), 2)});
    };
    run("quantized_bucketing", "quantized_bucketing", 0);
    run("exhaustive_bucketing", "exhaustive_bucketing", 0);
    run("hybrid (switch@25)", "hybrid_bucketing", 25);
    run("hybrid (switch@50)", "hybrid_bucketing", 50);
    run("hybrid (switch@200)", "hybrid_bucketing", 200);
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "reading: the hybrid should track quantized during the "
               "outlier-heavy start and converge\nto exhaustive's steady "
               "state, dominating both pure policies when the cold start "
               "matters.\n";
  return 0;
}
