// Figure 5 reproduction: Absolute Workflow Efficiency (AWE) in cores,
// memory, and disk of the 7 workflows under all 7 allocation algorithms,
// executed on the simulated opportunistic pool (20-50 workers of
// 16 cores / 64 GB / 64 GB, as in the paper's §V-A).
//
// Prints one table per resource kind (rows = algorithms in the paper's
// order, columns = workflows) with AWE as a percentage, and writes the raw
// values to fig5_awe.csv.
//
// Usage: fig5_awe [output_dir]   (default: current directory)

#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "util/csv.hpp"
#include "workloads/workload.hpp"

namespace {

using tora::core::ResourceKind;
using tora::exp::ExperimentResult;

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  tora::exp::ExperimentConfig cfg;  // paper defaults: churning 20-50 workers
  const auto& workflows = tora::workloads::all_workflow_names();
  const auto& policies = tora::core::all_policy_names();

  std::cout << "Figure 5: Absolute Workflow Efficiency of 7 workflows under "
               "7 allocation algorithms\n"
            << "(simulated opportunistic pool: " << cfg.sim.churn.min_workers
            << "-" << cfg.sim.churn.max_workers
            << " workers of 16 cores / 64 GB / 64 GB)\n\n"
            << "running " << workflows.size() * policies.size()
            << " workflow x policy simulations...\n";

  const auto results = tora::exp::run_grid_parallel(workflows, policies, cfg);

  std::map<std::string, std::map<std::string, const ExperimentResult*>> grid;
  for (const auto& r : results) grid[r.policy][r.workflow] = &r;

  std::ofstream csv_file(out_dir + "/fig5_awe.csv");
  tora::util::CsvWriter csv(csv_file);
  csv.row({"resource", "policy", "workflow", "awe"});

  for (ResourceKind k : tora::core::kManagedResources) {
    std::cout << "\n== AWE: " << tora::core::to_string(k) << " ==\n";
    std::vector<std::string> header{"algorithm"};
    for (const auto& wf : workflows) header.push_back(wf);
    tora::exp::TextTable table(header);
    for (const auto& p : policies) {
      std::vector<std::string> row{p};
      for (const auto& wf : workflows) {
        const double awe = grid[p][wf]->awe(k);
        row.push_back(tora::exp::fmt_pct(awe));
        csv.field(tora::core::to_string(k)).field(p).field(wf).field(awe);
        csv.end_row();
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }
  std::cout << "\nraw values written to " << out_dir << "/fig5_awe.csv\n"
            << "\nExpected shape vs. paper Fig. 5:\n"
               "  * whole_machine is the floor everywhere\n"
               "  * greedy/exhaustive bucketing lead or tie on most cells\n"
               "  * exponential is hardest (AWE near the whole-machine "
               "floor); uniform/normal reach 60-80%\n"
               "  * topeft disk: bucketing ~100% vs max_seen capped at 61% "
               "(306 MB -> 500 MB rounding)\n"
               "  * colmena_xtb disk is single-digit for every algorithm "
               "(1 GB exploration vs ~10 MB use)\n";
  return 0;
}
