// Crash/recovery headline harness: every registered allocation policy runs
// a trimodal workflow over faulty channels while the manager is killed at
// scheduled crash points and rebuilt from its write-ahead journal and
// durable snapshots. The crashed run must finish BIT-FOR-BIT identical to
// the crash-free run — same completion set, per-category waste breakdown,
// retry sequences and chaos counters — asserted as byte equality of the
// manager state fingerprint. A second sweep measures recovery latency as a
// function of journal length (single crash, no snapshots, so the whole
// journal replays) and emits BENCH_recovery.json for the CI soak artifact.
//
// Set TORA_RECOVERY_SEED to randomize the crash schedule (CI soak runs a
// fresh seed per build); unset, a fixed schedule covering six distinct
// loss-free crash points is used. Exits non-zero on any divergence.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/recovery/crash.hpp"
#include "core/recovery/storage.hpp"
#include "core/registry.hpp"
#include "exp/report.hpp"
#include "proto/recovery_runtime.hpp"
#include "workloads/workload.hpp"

namespace {

using tora::core::ResourceKind;
using tora::core::ResourceVector;
using tora::core::recovery::CrashSchedule;
using tora::core::recovery::kLossFreeCrashPoints;
using tora::core::recovery::ManagerCrashPoint;
using tora::core::recovery::MemStorage;
using tora::core::recovery::RecoveryConfig;
using tora::proto::ChaosConfig;
using tora::proto::RecoverableProtocolRuntime;
using tora::proto::RecoveryRunResult;

constexpr std::size_t kTasks = 120;
constexpr std::size_t kWorkers = 6;
constexpr std::uint64_t kAllocatorSeed = 7;
constexpr ResourceVector kCapacity{16.0, 64.0 * 1024.0, 64.0 * 1024.0, 0.0};

ChaosConfig chaos_config() {
  ChaosConfig c;
  c.seed = 33;
  c.to_worker.drop_prob = 0.05;
  c.to_worker.duplicate_prob = 0.03;
  c.to_manager.drop_prob = 0.05;
  c.to_manager.corrupt_prob = 0.02;
  return c;
}

RecoverableProtocolRuntime::AllocatorFactory factory(
    const std::string& policy) {
  return [policy] {
    return std::make_unique<tora::core::TaskAllocator>(
        tora::core::make_allocator(policy, kAllocatorSeed, kCapacity));
  };
}

RecoveryRunResult run_once(const std::vector<tora::core::TaskSpec>& tasks,
                           const std::string& policy, CrashSchedule crashes,
                           std::size_t snapshot_every) {
  MemStorage storage;
  RecoveryConfig recovery;
  recovery.snapshot_every_ticks = snapshot_every;
  RecoverableProtocolRuntime runtime(tasks, factory(policy), kWorkers,
                                     kCapacity, chaos_config(), storage,
                                     recovery, std::move(crashes));
  return runtime.run();
}

double timed_ms(const std::vector<tora::core::TaskSpec>& tasks,
                const std::string& policy, const CrashSchedule& crashes,
                RecoveryRunResult* out = nullptr) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    RecoveryRunResult r = run_once(tasks, policy, crashes, 0);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (out) *out = std::move(r);
  }
  return best;
}

}  // namespace

int main() {
  auto workload = tora::workloads::make_workload("trimodal", 11);
  workload.tasks.resize(kTasks);

  // The crash schedule: fixed covers six DISTINCT loss-free points (the
  // acceptance bar is >= 3); a TORA_RECOVERY_SEED draws a fresh one for
  // soak runs. Snapshot-rotation points only fire during a rotation, so
  // both modes run with a snapshot cadence.
  std::uint64_t soak_seed = 0;
  if (const char* env = std::getenv("TORA_RECOVERY_SEED")) {
    soak_seed = std::strtoull(env, nullptr, 10);
  }
  CrashSchedule crashes =
      soak_seed != 0
          ? CrashSchedule::random(soak_seed, 5, 10, kLossFreeCrashPoints)
          : CrashSchedule({{2, ManagerCrashPoint::AfterDrain},
                           {3, ManagerCrashPoint::PumpEnd},
                           {4, ManagerCrashPoint::BeforeSnapshotRename},
                           {6, ManagerCrashPoint::AfterSnapshotRename},
                           {8, ManagerCrashPoint::AfterLiveness},
                           {10, ManagerCrashPoint::PumpBegin}});
  std::cout << "Recovery chaos: " << kTasks << "-task trimodal workflow, "
            << kWorkers << " workers, drop/duplicate/corrupt channel faults\n"
            << "crash schedule"
            << (soak_seed != 0
                    ? " (randomized, seed " + std::to_string(soak_seed) + ")"
                    : " (fixed)")
            << ": " << crashes.describe() << "\n\n";

  bool ok = true;
  const auto violation = [&ok](const std::string& policy,
                               const std::string& what) {
    std::cerr << "VIOLATION [" << policy << "]: " << what << "\n";
    ok = false;
  };

  // extended_policy_names() already includes change_aware_bucketing.
  const std::vector<std::string>& policies =
      tora::core::extended_policy_names();

  tora::exp::TextTable table({"policy", "completed", "rounds", "crashes",
                              "journal recs", "snapshots", "replayed",
                              "mem AWE", "bit-exact"});
  RecoveryRunResult sample;
  for (const std::string& policy : policies) {
    const RecoveryRunResult baseline =
        run_once(workload.tasks, policy, CrashSchedule{}, 4);
    const RecoveryRunResult crashed =
        run_once(workload.tasks, policy, crashes, 4);

    if (baseline.tasks_completed != kTasks || baseline.tasks_fatal != 0) {
      violation(policy, "crash-free run incomplete: " +
                            std::to_string(baseline.tasks_completed) +
                            " completed");
    }
    const std::size_t scheduled = crashes.crashes().size();
    if (crashed.recovery.crashes_injected != scheduled) {
      violation(policy,
                "only " + std::to_string(crashed.recovery.crashes_injected) +
                    "/" + std::to_string(scheduled) + " crashes fired — "
                    "schedule outlived the run");
    }
    if (crashed.recovery.recoveries != crashed.recovery.crashes_injected) {
      violation(policy, "recovery count != crash count");
    }
    const bool exact = crashed.state_fingerprint == baseline.state_fingerprint;
    if (!exact) {
      violation(policy, "state fingerprint diverged from the crash-free run");
    }
    // The fingerprint subsumes these; spell out the paper-facing metrics so
    // a failure names what the reader cares about.
    if (crashed.tasks_completed != baseline.tasks_completed) {
      violation(policy, "completion set diverged");
    }
    if (crashed.accounting.breakdown(ResourceKind::MemoryMB).total_waste() !=
        baseline.accounting.breakdown(ResourceKind::MemoryMB).total_waste()) {
      violation(policy, "memory waste breakdown diverged");
    }
    if (!(crashed.chaos == baseline.chaos)) {
      violation(policy, "chaos/anomaly counters diverged");
    }

    table.add_row(
        {policy, std::to_string(crashed.tasks_completed),
         std::to_string(crashed.rounds),
         std::to_string(crashed.recovery.crashes_injected),
         std::to_string(crashed.recovery.journal_records),
         std::to_string(crashed.recovery.snapshots_written),
         std::to_string(crashed.recovery.records_replayed),
         tora::exp::fmt_pct(crashed.accounting.awe(ResourceKind::MemoryMB)),
         exact ? "yes" : "NO"});
    sample = crashed;
  }
  table.print(std::cout);

  std::cout << "\nrecovery counters of the last run:\n";
  tora::exp::recovery_table(sample.recovery).print(std::cout);

  // ------------------------------------------------------ latency vs length
  // One crash at PumpBegin on tick T with NO snapshots: recovery replays the
  // whole journal from genesis, so replayed records grow with T and the
  // run-time delta over the crash-free run approximates recovery latency.
  std::cout << "\nrecovery latency vs journal length (single crash, no "
               "snapshots, best of 3):\n";
  const std::string sweep_policy = "greedy_bucketing";
  const double base_ms =
      timed_ms(workload.tasks, sweep_policy, CrashSchedule{});
  struct SweepRow {
    std::uint64_t tick;
    std::size_t records_replayed;
    double recovery_ms;
  };
  std::vector<SweepRow> sweep;
  tora::exp::TextTable latency({"crash tick", "records replayed",
                                "est. recovery ms"});
  for (std::uint64_t tick : {2ull, 4ull, 8ull, 12ull, 16ull}) {
    RecoveryRunResult r;
    const double ms = timed_ms(
        workload.tasks, sweep_policy,
        CrashSchedule({{tick, ManagerCrashPoint::PumpBegin}}), &r);
    if (r.recovery.crashes_injected != 1 || r.recovery.recoveries != 1) {
      violation(sweep_policy, "latency sweep crash at tick " +
                                  std::to_string(tick) + " did not fire");
      continue;
    }
    const double recovery_ms = std::max(0.0, ms - base_ms);
    sweep.push_back({tick, r.recovery.records_replayed, recovery_ms});
    latency.add_row({std::to_string(tick),
                     std::to_string(r.recovery.records_replayed),
                     tora::exp::fmt(recovery_ms, 3)});
  }
  latency.print(std::cout);

  std::ofstream json("BENCH_recovery.json");
  json << "{\n"
       << "  \"benchmark\": \"recovery_chaos\",\n"
       << "  \"tasks\": " << kTasks << ",\n"
       << "  \"workers\": " << kWorkers << ",\n"
       << "  \"policies\": " << policies.size() << ",\n"
       << "  \"crash_schedule\": \"" << crashes.describe() << "\",\n"
       << "  \"soak_seed\": " << soak_seed << ",\n"
       << "  \"bit_exact\": " << (ok ? "true" : "false") << ",\n"
       << "  \"journal_records_last_run\": " << sample.recovery.journal_records
       << ",\n"
       << "  \"journal_bytes_last_run\": " << sample.recovery.journal_bytes
       << ",\n"
       << "  \"latency_sweep\": [";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    json << (i ? ",\n" : "\n")
         << "    {\"crash_tick\": " << sweep[i].tick
         << ", \"records_replayed\": " << sweep[i].records_replayed
         << ", \"recovery_ms\": " << sweep[i].recovery_ms << "}";
  }
  json << "\n  ]\n}\n";

  std::cout << (ok ? "\nall recovery invariants held: every policy finished "
                     "bit-for-bit identical to its\ncrash-free run under "
                     "channel chaos plus scheduled manager crashes.\n"
                   : "\nRECOVERY INVARIANT VIOLATIONS — see stderr above.\n");
  return ok ? 0 : 1;
}
