// Table I reproduction: average time to compute a new bucketing state and
// derive a new allocation, as a function of the record-list size.
//
// The paper reports (µs):
//              10     200     1000      2000       5000
//   GB       11.2   586.4  14588.2   62207.2   441050.7
//   EB       14.4    76.5    323.5     567.8     1632.0
//
// i.e. GB grows roughly quadratically while EB grows linearly. The faithful
// cost model (per-candidate range scans, exactly Algorithm 1's arithmetic)
// reproduces GB's quadratic growth; we additionally benchmark this library's
// default prefix-sum GB, which computes identical break points at
// near-EB cost (see DESIGN.md §4).
//
// Records are drawn from N(8 GB, 2 GB) as in the paper's §IV-A example, with
// significance = arrival index. Each iteration observes one fresh record and
// then predicts — the worst case where every allocation recomputes the
// bucketing state (the paper's Table I assumption).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/bucketing_policy.hpp"
#include "core/exhaustive_bucketing.hpp"
#include "core/greedy_bucketing.hpp"
#include "util/rng.hpp"

namespace {

using tora::core::BucketingPolicy;
using tora::core::ExhaustiveBucketing;
using tora::core::GreedyBucketing;
using tora::util::Rng;

std::vector<double> normal_records(std::size_t n) {
  Rng rng(2024);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double x = rng.normal(8192.0, 2048.0);
    if (x < 1.0) x = 1.0;
    v.push_back(x);
  }
  return v;
}

/// One measured operation: state is pre-populated with n-1 records; the
/// timed region observes the n-th record (marking the state dirty) and
/// derives an allocation (forcing the rebuild).
template <typename MakePolicy>
void run_state_recompute(benchmark::State& state, MakePolicy make) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto values = normal_records(n);
  for (auto _ : state) {
    state.PauseTiming();
    auto policy = make();
    for (std::size_t i = 0; i + 1 < n; ++i) {
      policy->observe(values[i], static_cast<double>(i) + 1.0);
    }
    // Warm build so the timed rebuild is incremental-state-sized, matching
    // the steady-state cost the paper measures.
    benchmark::DoNotOptimize(policy->predict());
    state.ResumeTiming();

    policy->observe(values[n - 1], static_cast<double>(n));
    benchmark::DoNotOptimize(policy->predict());
  }
  state.SetLabel(std::to_string(n) + " records");
}

void BM_GreedyBucketing_Faithful(benchmark::State& state) {
  run_state_recompute(state, [] {
    return std::make_unique<GreedyBucketing>(
        Rng(7), GreedyBucketing::CostModel::Faithful);
  });
}

void BM_GreedyBucketing_PrefixSum(benchmark::State& state) {
  run_state_recompute(state, [] {
    return std::make_unique<GreedyBucketing>(
        Rng(7), GreedyBucketing::CostModel::PrefixSum);
  });
}

void BM_ExhaustiveBucketing(benchmark::State& state) {
  run_state_recompute(state,
                      [] { return std::make_unique<ExhaustiveBucketing>(Rng(7)); });
}

/// Amortized column: the same observe + predict cycle under an epoch
/// schedule (growth = 1/16), where most predictions reuse the standing
/// bucket configuration and observes stage in O(1). The engine persists
/// across iterations — a continuous record stream starting at n, the
/// steady-state the incremental engine is designed for.
void BM_GreedyBucketing_Scheduled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto values = normal_records(n + 1);
  auto policy = std::make_unique<GreedyBucketing>(Rng(7));
  policy->set_rebuild_schedule({1.0 / 16.0});
  for (std::size_t i = 0; i < n; ++i) {
    policy->observe(values[i], static_cast<double>(i) + 1.0);
  }
  benchmark::DoNotOptimize(policy->predict());
  Rng stream(2025);
  double significance = static_cast<double>(n);
  for (auto _ : state) {
    double x = stream.normal(8192.0, 2048.0);
    if (x < 1.0) x = 1.0;
    policy->observe(x, significance += 1.0);
    benchmark::DoNotOptimize(policy->predict());
  }
  state.SetLabel(std::to_string(n) + " records");
}

constexpr std::int64_t kSizes[] = {10, 200, 1000, 2000, 5000};

void apply_sizes(benchmark::internal::Benchmark* b) {
  for (auto s : kSizes) b->Arg(s);
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_GreedyBucketing_Faithful)->Apply(apply_sizes);
BENCHMARK(BM_GreedyBucketing_PrefixSum)->Apply(apply_sizes);
BENCHMARK(BM_ExhaustiveBucketing)->Apply(apply_sizes);
BENCHMARK(BM_GreedyBucketing_Scheduled)->Apply(apply_sizes);

}  // namespace

BENCHMARK_MAIN();
