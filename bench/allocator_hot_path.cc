// Hot-path microbenchmark for the interned-category allocator: the
// allocate + record_completion cycle every task pays once (paper Fig. 3a's
// dispatch-time protocol), at production scale (1M tasks, 1k categories).
//
// The baseline is a faithful replica of the pre-interning TaskAllocator:
// std::map<std::string, CategoryState> keyed by the category string on
// every call, std::map<ResourceKind, policy> inside each category, and a
// history that copies the category string into every record. The current
// allocator replaces all of that with dense CategoryId vector indexing and
// a 4-byte id per history record; both run the same policy objects, so the
// measured gap is purely the keying + storage change. A shared checksum
// over the returned allocations asserts the two paths compute identical
// results before any number is reported.
//
// Emits BENCH_hot_path.json (CI uploads it as the perf-smoke artifact).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/task_allocator.hpp"

namespace {

using tora::core::AllocatorConfig;
using tora::core::CategoryId;
using tora::core::PolicyFactory;
using tora::core::ResourceKind;
using tora::core::ResourcePolicyPtr;
using tora::core::ResourceVector;

/// Replica of the string-keyed allocator this PR retired (see git history
/// of core/task_allocator.cpp): category lookup by string on every
/// allocate/record, policies behind a per-category std::map, history
/// records owning a copy of the category string.
class StringKeyedAllocator {
 public:
  StringKeyedAllocator(PolicyFactory factory, AllocatorConfig config)
      : factory_(std::move(factory)), config_(std::move(config)) {}

  ResourceVector allocate(const std::string& category) {
    auto& st = state_for(category);
    if (st.completed < config_.exploration.min_records) {
      return clamp(config_.exploration.default_alloc);
    }
    ResourceVector alloc;
    for (ResourceKind k : config_.managed) {
      alloc[k] = st.policies.at(k)->predict();
    }
    return clamp(alloc);
  }

  void record_completion(const std::string& category,
                         const ResourceVector& peak, double significance) {
    auto& st = state_for(category);
    for (ResourceKind k : config_.managed) {
      st.policies.at(k)->observe(peak[k], significance);
    }
    ++st.completed;
    history_.push_back({category, peak, significance});
  }

  std::size_t history_size() const { return history_.size(); }

 private:
  struct CategoryState {
    std::map<ResourceKind, ResourcePolicyPtr> policies;
    std::size_t completed = 0;
  };
  struct Record {
    std::string category;
    ResourceVector peak;
    double significance;
  };

  CategoryState& state_for(const std::string& category) {
    auto [it, inserted] = categories_.try_emplace(category);
    if (inserted) {
      for (ResourceKind k : config_.managed) {
        it->second.policies.emplace(k, factory_(k, config_));
      }
    }
    return it->second;
  }

  ResourceVector clamp(ResourceVector v) const {
    for (ResourceKind k : config_.managed) {
      if (v[k] > config_.worker_capacity[k]) v[k] = config_.worker_capacity[k];
    }
    return v;
  }

  PolicyFactory factory_;
  AllocatorConfig config_;
  std::map<std::string, CategoryState> categories_;
  std::vector<Record> history_;
};

struct Workload {
  std::vector<std::string> names;      // category name per task
  std::vector<std::uint32_t> cat_of;   // category index per task
  std::vector<ResourceVector> peaks;   // measured peak per task
};

Workload make_workload(std::size_t tasks, std::size_t categories) {
  Workload w;
  w.names.reserve(categories);
  for (std::size_t c = 0; c < categories; ++c) {
    w.names.push_back("workflow_stage_" + std::to_string(c));
  }
  w.cat_of.reserve(tasks);
  w.peaks.reserve(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    const auto c = static_cast<std::uint32_t>(i % categories);
    w.cat_of.push_back(c);
    // Deterministic per-category spread so the policies see real variance.
    const double jitter = static_cast<double>((i * 2654435761u) % 997) / 997.0;
    w.peaks.push_back({1.0 + 3.0 * jitter, 256.0 + 2048.0 * jitter,
                       128.0 + 1024.0 * jitter, 0.0});
  }
  return w;
}

double checksum_of(const ResourceVector& v) {
  return v[ResourceKind::Cores] + v[ResourceKind::MemoryMB] +
         v[ResourceKind::DiskMB];
}

AllocatorConfig bench_config(std::size_t expected_tasks) {
  AllocatorConfig cfg;
  cfg.expected_tasks = expected_tasks;
  return cfg;
}

double run_baseline(const Workload& w, std::uint64_t seed, double& checksum) {
  StringKeyedAllocator a(tora::core::make_policy_factory("max_seen", seed),
                         bench_config(0));
  checksum = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < w.cat_of.size(); ++i) {
    const std::string& cat = w.names[w.cat_of[i]];
    checksum += checksum_of(a.allocate(cat));
    a.record_completion(cat, w.peaks[i], static_cast<double>(i) + 1.0);
  }
  const auto dt = std::chrono::steady_clock::now() - t0;
  if (a.history_size() != w.cat_of.size()) std::abort();
  return std::chrono::duration<double>(dt).count();
}

double run_interned(const Workload& w, std::uint64_t seed, double& checksum) {
  tora::core::TaskAllocator a(
      "max_seen", tora::core::make_policy_factory("max_seen", seed),
      bench_config(w.cat_of.size()));
  checksum = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  // Mirror DispatchCore: one intern per task up front, ids everywhere after.
  std::vector<CategoryId> ids;
  ids.reserve(w.names.size());
  for (const std::string& name : w.names) ids.push_back(a.intern(name));
  for (std::size_t i = 0; i < w.cat_of.size(); ++i) {
    const CategoryId cat = ids[w.cat_of[i]];
    checksum += checksum_of(a.allocate(cat));
    a.record_completion(cat, w.peaks[i], static_cast<double>(i) + 1.0);
  }
  const auto dt = std::chrono::steady_clock::now() - t0;
  if (a.history().size() != w.cat_of.size()) std::abort();
  return std::chrono::duration<double>(dt).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t tasks = 1000000;
  std::size_t categories = 1000;
  if (argc > 1) tasks = static_cast<std::size_t>(std::stoull(argv[1]));
  if (argc > 2) categories = static_cast<std::size_t>(std::stoull(argv[2]));
  const std::size_t reps = 3;
  const std::uint64_t seed = 42;

  const Workload w = make_workload(tasks, categories);

  double best_base = 1e300, best_fast = 1e300;
  double sum_base = 0.0, sum_fast = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    best_base = std::min(best_base, run_baseline(w, seed, sum_base));
    best_fast = std::min(best_fast, run_interned(w, seed, sum_fast));
  }
  const bool match = sum_base == sum_fast;  // deterministic policy: exact
  const double n = static_cast<double>(tasks);
  const double speedup = best_base / best_fast;

  std::cout << "allocator hot path: " << tasks << " tasks x " << categories
            << " categories (max_seen, best of " << reps << ")\n"
            << "  string-keyed baseline: " << best_base * 1e9 / n
            << " ns/task (" << n / best_base / 1e6 << " M tasks/s)\n"
            << "  interned CategoryId:   " << best_fast * 1e9 / n
            << " ns/task (" << n / best_fast / 1e6 << " M tasks/s)\n"
            << "  speedup: " << speedup << "x, checksums "
            << (match ? "match" : "MISMATCH") << "\n";

  std::ofstream out("BENCH_hot_path.json");
  out << "{\n"
      << "  \"benchmark\": \"allocator_hot_path\",\n"
      << "  \"policy\": \"max_seen\",\n"
      << "  \"tasks\": " << tasks << ",\n"
      << "  \"categories\": " << categories << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"baseline_ns_per_task\": " << best_base * 1e9 / n << ",\n"
      << "  \"interned_ns_per_task\": " << best_fast * 1e9 / n << ",\n"
      << "  \"baseline_tasks_per_s\": " << n / best_base << ",\n"
      << "  \"interned_tasks_per_s\": " << n / best_fast << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"checksums_match\": " << (match ? "true" : "false") << "\n"
      << "}\n";
  if (!match) {
    std::cerr << "checksum mismatch: interned path diverged from baseline\n";
    return 1;
  }
  return 0;
}
