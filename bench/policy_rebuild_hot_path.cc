// Rebuild hot-path perf smoke: per-observation cost of the bucketing
// engine as the record history grows, old engine vs the incremental one.
//
// The legacy series is a faithful replica of the pre-incremental
// BucketingPolicy (see git history of core/bucketing_policy.cpp): every
// observation does an O(n) sorted insert into an AoS record vector, and
// every predict rebuilds the full state — prefix sums over all n records,
// break-point computation, validated BucketSet construction, linear-scan
// sampling. The incremental series run the production engine twice:
//
//   * k = 1 (default schedule): rebuild before every predict, exactly the
//     legacy semantics. Every RNG draw must match the legacy series
//     BITWISE — the checksum gate below fails the binary otherwise.
//   * scheduled (growth = 1/64): rebuild points spread out geometrically
//     with the history size; observes stage in O(1) and most predicts
//     sample the standing bucket set. The final forced flush must produce
//     the legacy engine's exact bucket configuration (same record
//     multiset), which the second checksum gate verifies.
//
// Emits BENCH_rebuild.json (CI uploads it as the perf-smoke artifact) and,
// when given a committed baseline, enforces a 3x regression guard on the
// scheduled-engine ns/cycle at the largest history size.
//
// Usage: policy_rebuild_hot_path [out.json] [baseline.json]

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/bucket.hpp"
#include "core/greedy_bucketing.hpp"
#include "core/record.hpp"
#include "core/record_store.hpp"
#include "util/rng.hpp"

namespace {

using tora::core::BucketSet;
using tora::core::GreedyBucketing;
using tora::core::Record;
using tora::core::SortedRecords;
using tora::util::Rng;

std::uint64_t mix(std::uint64_t h, double v) {
  return (h ^ std::bit_cast<std::uint64_t>(v)) * 1099511628211ull;
}

std::uint64_t bucket_checksum(const BucketSet& set) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& b : set.buckets()) {
    h = mix(h, b.rep);
    h = mix(h, b.prob);
    h = mix(h, b.weighted_mean);
    h = mix(h, b.sig_sum);
  }
  return h;
}

/// The pre-incremental engine: sorted insertion per observe, full rebuild
/// per predict. Break indices come from a scratch GreedyBucketing (break
/// computation consumes no sampler state), so the replica pays exactly the
/// same break-point cost the old engine paid in-line.
class LegacyEngine {
 public:
  explicit LegacyEngine(std::uint64_t sampler_seed)
      : rng_(sampler_seed), oracle_(Rng(0)) {}

  void observe(double value, double significance) {
    const auto pos = std::upper_bound(
        records_.begin(), records_.end(), value,
        [](double v, const Record& r) { return v < r.value; });
    records_.insert(pos, {value, significance});
    dirty_ = true;
  }

  double predict() {
    if (dirty_ || !built_) rebuild();
    return set_.sample_allocation(rng_);
  }

  const BucketSet& buckets() {
    if (dirty_ || !built_) rebuild();
    return set_;
  }

  std::size_t rebuild_count() const { return rebuilds_; }

 private:
  void rebuild() {
    const std::size_t n = records_.size();
    values_.resize(n);
    sigs_.resize(n);
    sig_prefix_.assign(n + 1, 0.0);
    vsig_prefix_.assign(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      values_[i] = records_[i].value;
      sigs_[i] = records_[i].significance;
      sig_prefix_[i + 1] = sig_prefix_[i] + sigs_[i];
      vsig_prefix_[i + 1] = vsig_prefix_[i] + values_[i] * sigs_[i];
    }
    const SortedRecords view{values_, sigs_, sig_prefix_, vsig_prefix_};
    set_ = BucketSet::from_break_indices(records_, oracle_.break_indices(view));
    dirty_ = false;
    built_ = true;
    ++rebuilds_;
  }

  Rng rng_;
  GreedyBucketing oracle_;
  std::vector<Record> records_;
  std::vector<double> values_, sigs_, sig_prefix_, vsig_prefix_;
  BucketSet set_;
  bool dirty_ = false;
  bool built_ = false;
  std::size_t rebuilds_ = 0;
};

std::vector<double> make_values(std::size_t n) {
  Rng rng(2024);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double x = rng.normal(8192.0, 2048.0);
    if (x < 1.0) x = 1.0;
    v.push_back(x);
  }
  return v;
}

struct SeriesResult {
  double ns_per_cycle = 0.0;
  double rebuilds_per_s = 0.0;
  std::uint64_t draw_checksum = 0;
  std::uint64_t final_buckets = 0;
};

constexpr std::uint64_t kSamplerSeed = 77;

template <typename Engine, typename Finish>
SeriesResult run_series(Engine& engine, const std::vector<double>& values,
                        std::size_t history, std::size_t cycles,
                        std::size_t rebuilds_before, Finish finish) {
  for (std::size_t i = 0; i < history; ++i) {
    engine.observe(values[i], static_cast<double>(i) + 1.0);
  }
  SeriesResult r;
  std::uint64_t h = 1469598103934665603ull;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < cycles; ++c) {
    engine.observe(values[history + c],
                   static_cast<double>(history + c) + 1.0);
    h = mix(h, engine.predict());
  }
  const auto dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.ns_per_cycle = dt * 1e9 / static_cast<double>(cycles);
  r.rebuilds_per_s =
      static_cast<double>(engine.rebuild_count() - rebuilds_before) / dt;
  r.draw_checksum = h;
  r.final_buckets = finish(engine);
  return r;
}

struct SizeRow {
  std::size_t history = 0;
  std::size_t cycles = 0;
  SeriesResult legacy, k1, sched;
};

double parse_guard(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0.0;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::string key = "\"guard_ns_per_cycle\":";
  const auto pos = text.find(key);
  if (pos == std::string::npos) return 0.0;
  return std::stod(text.substr(pos + key.size()));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_rebuild.json";
  const std::string baseline_path = argc > 2 ? argv[2] : "";

  const std::vector<std::size_t> sizes{1000, 10000, 100000};
  std::vector<SizeRow> rows;
  bool all_match = true;

  for (std::size_t n : sizes) {
    SizeRow row;
    row.history = n;
    row.cycles = std::clamp<std::size_t>(2000000 / n, 50, 2000);
    const auto values = make_values(n + row.cycles);

    {
      LegacyEngine legacy(kSamplerSeed);
      row.legacy = run_series(legacy, values, n, row.cycles, 0,
                              [](LegacyEngine& e) {
                                return bucket_checksum(e.buckets());
                              });
    }
    {
      GreedyBucketing k1{Rng(kSamplerSeed)};
      row.k1 = run_series(k1, values, n, row.cycles, k1.rebuild_count(),
                          [](GreedyBucketing& e) {
                            return bucket_checksum(e.fresh_buckets());
                          });
    }
    {
      GreedyBucketing sched{Rng(kSamplerSeed)};
      sched.set_rebuild_schedule({1.0 / 64.0});
      row.sched = run_series(sched, values, n, row.cycles,
                             sched.rebuild_count(), [](GreedyBucketing& e) {
                               return bucket_checksum(e.fresh_buckets());
                             });
    }

    const bool k1_match =
        row.k1.draw_checksum == row.legacy.draw_checksum &&
        row.k1.final_buckets == row.legacy.final_buckets;
    const bool sched_match =
        row.sched.final_buckets == row.legacy.final_buckets;
    if (!k1_match) {
      std::cerr << "history " << n
                << ": k=1 engine diverged from the legacy engine\n";
      all_match = false;
    }
    if (!sched_match) {
      std::cerr << "history " << n
                << ": scheduled engine's flushed buckets diverged\n";
      all_match = false;
    }
    std::cout << "history " << n << " (" << row.cycles << " cycles)\n"
              << "  legacy:      " << row.legacy.ns_per_cycle
              << " ns/cycle, " << row.legacy.rebuilds_per_s << " rebuilds/s\n"
              << "  incr (k=1):  " << row.k1.ns_per_cycle << " ns/cycle, "
              << row.k1.rebuilds_per_s << " rebuilds/s, draws "
              << (k1_match ? "match" : "MISMATCH") << "\n"
              << "  incr (sched):" << row.sched.ns_per_cycle
              << " ns/cycle, " << row.sched.rebuilds_per_s
              << " rebuilds/s, flush " << (sched_match ? "match" : "MISMATCH")
              << ", speedup "
              << row.legacy.ns_per_cycle / row.sched.ns_per_cycle << "x\n";
    rows.push_back(row);
  }

  const SizeRow& top = rows.back();
  const double speedup_max = top.legacy.ns_per_cycle / top.sched.ns_per_cycle;
  const double guard = top.sched.ns_per_cycle;

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"benchmark\": \"policy_rebuild_hot_path\",\n"
      << "  \"policy\": \"greedy_bucketing\",\n"
      << "  \"scheduled_growth\": " << 1.0 / 64.0 << ",\n"
      << "  \"series\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SizeRow& r = rows[i];
    const bool k1_match = r.k1.draw_checksum == r.legacy.draw_checksum;
    out << "    {\"history\": " << r.history << ", \"cycles\": " << r.cycles
        << ",\n"
        << "     \"legacy_ns_per_cycle\": " << r.legacy.ns_per_cycle
        << ", \"legacy_rebuilds_per_s\": " << r.legacy.rebuilds_per_s << ",\n"
        << "     \"incremental_k1_ns_per_cycle\": " << r.k1.ns_per_cycle
        << ", \"incremental_k1_rebuilds_per_s\": " << r.k1.rebuilds_per_s
        << ",\n"
        << "     \"incremental_scheduled_ns_per_cycle\": "
        << r.sched.ns_per_cycle << ", \"incremental_scheduled_rebuilds_per_s\": "
        << r.sched.rebuilds_per_s << ",\n"
        << "     \"speedup_k1\": " << r.legacy.ns_per_cycle / r.k1.ns_per_cycle
        << ", \"speedup_scheduled\": "
        << r.legacy.ns_per_cycle / r.sched.ns_per_cycle << ",\n"
        << "     \"k1_draws_match\": " << (k1_match ? "true" : "false")
        << ", \"scheduled_flush_matches\": "
        << (r.sched.final_buckets == r.legacy.final_buckets ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"speedup_at_max_history\": " << speedup_max << ",\n"
      << "  \"guard_ns_per_cycle\": " << guard << ",\n"
      << "  \"checksums_match\": " << (all_match ? "true" : "false") << "\n"
      << "}\n";

  if (!all_match) return 1;

  if (!baseline_path.empty()) {
    const double base = parse_guard(baseline_path);
    if (base > 0.0 && guard > 3.0 * base) {
      std::cerr << "perf regression: scheduled engine " << guard
                << " ns/cycle at " << top.history
                << " records exceeds 3x the committed baseline (" << base
                << " ns/cycle)\n";
      return 1;
    }
    std::cout << "regression guard: " << guard << " ns/cycle vs baseline "
              << base << " ns/cycle (limit 3x)\n";
  }
  return 0;
}
