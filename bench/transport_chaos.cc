// TCP chaos soak: the socket transport is driven through the in-process
// fault proxy with everything enabled at once — latency, byte corruption,
// mid-frame truncation, RST storms — plus worker crash/flap faults, and
// must still complete every task exactly once.
//
// Invariants enforced per round (exit non-zero on any violation):
//
//   1. COMPLETION: every task completes, none go fatal, despite the wire
//      being actively hostile.
//   2. EXACTLY-ONCE: completions never exceed the task count — replayed
//      results after reconnect/resume are absorbed by the dedup gate (the
//      stale_or_duplicate_results counter absorbs them, the ledger not).
//   3. FAULTS FIRED: across all rounds the proxy actually injected
//      faults, so a green soak means "survived", not "nothing happened"
//      (per-round counts can be zero on an unlucky seed — runs are short).
//   4. DETERMINISM: a calm lockstep run repeated with the same seed must
//      produce a byte-identical manager state fingerprint.
//
// Set TORA_TRANSPORT_SEED to randomize (the CI soak derives a fresh seed
// per run from the run id); the seed is printed so a failing round can be
// replayed exactly.
//
// Usage: transport_chaos [rounds]

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/task.hpp"
#include "proto/net/tcp_runtime.hpp"

namespace {

using tora::core::ResourceVector;
using tora::core::TaskSpec;
using tora::proto::ChaosConfig;
using tora::proto::net::TcpProtocolRuntime;
using tora::proto::net::TcpTransportConfig;
using tora::proto::net::WireFaultPlan;

constexpr std::size_t kTasks = 24;
constexpr ResourceVector kCapacity{16.0, 64.0 * 1024.0, 64.0 * 1024.0, 0.0};

std::vector<TaskSpec> mixed_tasks() {
  std::vector<TaskSpec> tasks(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks[i].id = i;
    tasks[i].category = i % 3 == 0 ? "heavy" : "light";
    tasks[i].demand = i % 3 == 0 ? ResourceVector{2.0, 3000.0, 200.0}
                                 : ResourceVector{1.0, 400.0, 40.0};
    tasks[i].duration_s = 10.0 + static_cast<double>(i % 5);
    tasks[i].peak_fraction = 0.5;
  }
  return tasks;
}

TcpTransportConfig chaos_tcp(std::uint64_t seed) {
  TcpTransportConfig cfg;
  cfg.backoff_base = 0.25;
  cfg.backoff_cap = 2.0;
  cfg.seed = seed;
  return cfg;
}

ChaosConfig wide_liveness() {
  ChaosConfig chaos;
  chaos.liveness.silence_ticks = 64;
  chaos.liveness.attempt_timeout_ticks = 96;
  chaos.liveness.worker_failure_limit = 64;
  return chaos;
}

WireFaultPlan hostile_wire() {
  WireFaultPlan plan;
  plan.latency_steps = 2;
  plan.corrupt_chunk_prob = 0.05;
  plan.truncate_prob = 0.02;
  plan.rst_prob = 0.01;
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rounds =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  std::uint64_t base_seed = 1009;
  bool randomized = false;
  if (const char* env = std::getenv("TORA_TRANSPORT_SEED")) {
    base_seed = std::strtoull(env, nullptr, 10);
    randomized = true;
  }
  const auto tasks = mixed_tasks();
  std::cout << "TCP chaos soak: " << rounds << " rounds x " << kTasks
            << " tasks through a hostile fault proxy, base seed " << base_seed
            << (randomized ? " (randomized via TORA_TRANSPORT_SEED)" : "")
            << "\n";

  bool ok = true;
  const auto violation = [&](std::uint64_t seed, const std::string& what) {
    std::cerr << "VIOLATION [seed " << seed << "]: " << what << "\n";
    ok = false;
  };

  std::size_t total_faults = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::uint64_t seed = base_seed + round;
    auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
    TcpProtocolRuntime runtime(tasks, alloc, 2, kCapacity, chaos_tcp(seed),
                               wide_liveness(), hostile_wire());
    const auto r = runtime.run();
    if (r.tasks_completed != kTasks) {
      violation(seed, "completed " + std::to_string(r.tasks_completed) +
                          " of " + std::to_string(kTasks) + " tasks");
    }
    if (r.tasks_fatal != 0) {
      violation(seed, std::to_string(r.tasks_fatal) + " tasks went fatal");
    }
    const std::size_t faults =
        runtime.proxy() ? runtime.proxy()->faults_injected() : 0;
    total_faults += faults;
    std::cout << "round " << round << " [seed " << seed << "]: completed "
              << r.tasks_completed << "/" << kTasks << ", reconnects "
              << r.transport.reconnects << ", resumes "
              << r.transport.sessions_resumed << ", replayed "
              << r.transport.frames_replayed << ", stale/dup absorbed "
              << r.chaos.stale_or_duplicate_results << ", faults " << faults
              << "\n";
  }
  if (total_faults == 0) {
    violation(base_seed, "the fault plan never fired in any round — the "
                         "soak proves nothing");
  }

  // Calm determinism leg: same seed, same bytes, twice.
  std::string fingerprints[2];
  for (int leg = 0; leg < 2; ++leg) {
    auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7);
    TcpProtocolRuntime runtime(tasks, alloc, 2, kCapacity,
                               chaos_tcp(base_seed));
    const auto r = runtime.run();
    if (r.tasks_completed != kTasks) {
      violation(base_seed, "calm leg failed to complete");
    }
    fingerprints[leg] = r.state_fingerprint;
  }
  if (fingerprints[0] != fingerprints[1]) {
    violation(base_seed,
              "calm lockstep runs with one seed diverged bit-wise");
  } else {
    std::cout << "calm determinism: two same-seed runs are bit-identical ("
              << fingerprints[0].size() << "-byte fingerprint)\n";
  }

  std::cout << (ok ? "all transport chaos invariants held.\n"
                   : "TRANSPORT CHAOS VIOLATIONS — see stderr above (replay "
                     "with TORA_TRANSPORT_SEED=" +
                         std::to_string(base_seed) + ").\n");
  return ok ? 0 : 1;
}
