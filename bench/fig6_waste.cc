// Figure 6 reproduction: resource waste of the 7 workflows under 6
// allocation algorithms (Whole Machine dropped, as in the paper), broken
// down into Internal Fragmentation and Failed Allocation.
//
// The paper plots stacked bars; this harness prints, per resource kind, each
// algorithm's total waste share split into the two components (percent of
// that algorithm's total allocation), and writes raw values to
// fig6_waste.csv.
//
// Usage: fig6_waste [output_dir]   (default: current directory)

#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "util/csv.hpp"
#include "workloads/workload.hpp"

namespace {

using tora::core::ResourceKind;
using tora::exp::ExperimentResult;

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  tora::exp::ExperimentConfig cfg;
  const auto& workflows = tora::workloads::all_workflow_names();
  std::vector<std::string> policies;
  for (const auto& p : tora::core::all_policy_names()) {
    if (p != tora::core::kWholeMachine) policies.push_back(p);
  }

  std::cout << "Figure 6: resource waste split into Internal Fragmentation "
               "(frag) and Failed Allocation (fail)\n"
               "values are percentages of each algorithm's total allocation "
               "of that resource\n\n"
            << "running " << workflows.size() * policies.size()
            << " workflow x policy simulations...\n";

  const auto results = tora::exp::run_grid_parallel(workflows, policies, cfg);
  std::map<std::string, std::map<std::string, const ExperimentResult*>> grid;
  for (const auto& r : results) grid[r.policy][r.workflow] = &r;

  std::ofstream csv_file(out_dir + "/fig6_waste.csv");
  tora::util::CsvWriter csv(csv_file);
  csv.row({"resource", "policy", "workflow", "internal_fragmentation",
           "failed_allocation", "consumption", "allocation"});

  for (ResourceKind k : tora::core::kManagedResources) {
    std::cout << "\n== waste: " << tora::core::to_string(k)
              << " (frag% + fail% of total allocation) ==\n";
    std::vector<std::string> header{"algorithm"};
    for (const auto& wf : workflows) header.push_back(wf);
    tora::exp::TextTable table(header);
    for (const auto& p : policies) {
      std::vector<std::string> row{p};
      for (const auto& wf : workflows) {
        const auto& b = grid[p][wf]->waste(k);
        const double denom = b.allocation > 0.0 ? b.allocation : 1.0;
        row.push_back(tora::exp::fmt(b.internal_fragmentation / denom * 100.0,
                                     1) +
                      "+" +
                      tora::exp::fmt(b.failed_allocation / denom * 100.0, 1));
        csv.field(tora::core::to_string(k))
            .field(p)
            .field(wf)
            .field(b.internal_fragmentation)
            .field(b.failed_allocation)
            .field(b.consumption)
            .field(b.allocation);
        csv.end_row();
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }
  std::cout << "\nraw values written to " << out_dir << "/fig6_waste.csv\n"
            << "\nExpected shape vs. paper Fig. 6:\n"
               "  * max_seen waste is almost entirely internal fragmentation "
               "(pure over-estimation)\n"
               "  * min_waste / max_throughput show a visible failed-"
               "allocation share (20-30%)\n"
               "  * bucketing algorithms keep failed allocations small, like "
               "max_seen\n"
               "  * colmena_xtb: failed allocations dominate for most "
               "predictive algorithms\n"
               "  * topeft: over-allocation dominates (easier, narrower "
               "distributions)\n";
  return 0;
}
