// Robustness sweep beyond the paper's hardest workload.
//
// The paper's Exponential workflow is its stress test for outliers; real
// memory footprints are often log-normal, and pathological ones power-law
// (Pareto). This harness builds two extra synthetic workflows from those
// tails and compares the allocators, checking the paper's robustness claim
// — "don't produce catastrophic waste in corner cases" — on distributions
// it never tested: every policy must stay above the Whole Machine floor,
// and the bucketing algorithms should remain competitive.

#include <iostream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "workloads/synthetic.hpp"

namespace {

tora::workloads::SyntheticSpec lognormal_spec() {
  using namespace tora::workloads;
  SyntheticSpec s;
  s.name = "lognormal";
  SyntheticPhase p;
  p.count = 1000;
  // exp(N(8, 0.6)) MB: median ~3 GB, occasional 10-20 GB tasks.
  p.memory_mb = lognormal(8.0, 0.6, 60000.0);
  p.disk_mb = lognormal(8.0, 0.6, 60000.0);
  p.cores = lognormal(1.0, 0.5, 16.0);
  p.duration_s = uniform(30.0, 300.0);
  s.phases.push_back(std::move(p));
  return s;
}

tora::workloads::SyntheticSpec pareto_spec() {
  using namespace tora::workloads;
  SyntheticSpec s;
  s.name = "pareto";
  SyntheticPhase p;
  p.count = 1000;
  // Pareto(1 GB, alpha 1.6): most tasks near 1 GB, power-law tail to 60 GB.
  p.memory_mb = pareto(1000.0, 1.6, 60000.0);
  p.disk_mb = pareto(1000.0, 1.6, 60000.0);
  p.cores = pareto(0.5, 2.0, 16.0);
  p.duration_s = uniform(30.0, 300.0);
  s.phases.push_back(std::move(p));
  return s;
}

}  // namespace

int main() {
  using tora::core::ResourceKind;

  std::cout << "Robustness on heavier tails than the paper tested "
               "(memory AWE, 1000 tasks each)\n\n";
  tora::exp::TextTable table({"policy", "lognormal", "pareto"});
  const std::vector<tora::workloads::Workload> workloads = {
      tora::workloads::generate_synthetic(lognormal_spec(), 7),
      tora::workloads::generate_synthetic(pareto_spec(), 7)};
  for (const auto& policy : tora::core::all_policy_names()) {
    std::vector<std::string> row{policy};
    for (const auto& w : workloads) {
      tora::exp::ExperimentConfig cfg;
      const auto r = tora::exp::run_experiment(w, policy, cfg);
      row.push_back(tora::exp::fmt_pct(r.awe(ResourceKind::MemoryMB)));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nchecks: every predictive policy clears the whole_machine "
               "floor; no catastrophic\ncollapse on the power-law tail "
               "(the paper's robustness claim, extended).\n";
  return 0;
}
