// Figure 4 reproduction: memory consumption of the 1000 tasks in each of the
// five synthetic workflows (Normal, Uniform, Exponential, Bimodal, Phasing
// Trimodal). Prints summary statistics plus a coarse text histogram per
// workflow — enough to confirm each distribution's shape — and dumps
// per-task CSV series for plotting.
//
// Usage: fig4_synthetic_traces [output_dir]   (default: current directory)

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "util/stats.hpp"
#include "workloads/trace.hpp"
#include "workloads/workload.hpp"

namespace {

using tora::workloads::Workload;

void histogram(const std::vector<double>& values, std::ostream& out,
               int bins = 12, int width = 50) {
  const auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  const double lo = *mn_it, hi = *mx_it;
  const double span = hi > lo ? hi - lo : 1.0;
  std::vector<int> counts(bins, 0);
  for (double v : values) {
    int b = static_cast<int>((v - lo) / span * bins);
    if (b >= bins) b = bins - 1;
    ++counts[b];
  }
  const int peak = *std::max_element(counts.begin(), counts.end());
  for (int b = 0; b < bins; ++b) {
    const double edge = lo + span * b / bins;
    const int bar = peak > 0 ? counts[b] * width / peak : 0;
    out << "  " << tora::exp::fmt(edge, 0) << "\t|" << std::string(bar, '#')
        << " " << counts[b] << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  std::cout << "Figure 4: memory consumption of tasks in five synthetic "
               "workflows (1000 tasks each)\n";
  for (const char* name : {"normal", "uniform", "exponential", "bimodal",
                           "trimodal"}) {
    const Workload w = tora::workloads::make_workload(name, 7);
    std::vector<double> mem;
    tora::util::OnlineStats stats;
    for (const auto& t : w.tasks) {
      mem.push_back(t.demand.memory_mb());
      stats.add(t.demand.memory_mb());
    }
    std::cout << "\n== " << w.name << " ==  (memory MB: min "
              << tora::exp::fmt(stats.min(), 1) << ", mean "
              << tora::exp::fmt(stats.mean(), 1) << ", max "
              << tora::exp::fmt(stats.max(), 1) << ", sd "
              << tora::exp::fmt(stats.stddev(), 1) << ")\n";
    histogram(mem, std::cout);
    const std::string path = out_dir + "/fig4_" + std::string(name) + ".csv";
    tora::workloads::save_trace(path, w);
    std::cout << "per-task series written to " << path << "\n";
  }
  std::cout << "\nExpected shape vs. paper Fig. 4: one mode (normal), flat "
               "(uniform), long right tail\n(exponential), two modes "
               "(bimodal), three sequential phases (trimodal; visible in the\n"
               "per-task CSV series, not the pooled histogram).\n";
  return 0;
}
