// Future-work experiment from the paper's §VII: "we target to evaluate our
// algorithms on even larger workflows (> 10,000 tasks). We hypothesize that
// the bucketing algorithms should perform even better on larger workflows
// since they ... quickly converge to a steady state on workflows of around
// 4,500 tasks."
//
// This harness scales the Bimodal and Phasing-Trimodal synthetic workflows
// from 1,000 to 20,000 tasks, runs Exhaustive/Greedy Bucketing and Max Seen
// on each size, and reports memory AWE plus the wall-clock cost of the
// allocator (total rebuild count and library wall time), testing both the
// AWE hypothesis and the allocator's scalability.

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "workloads/synthetic.hpp"

namespace {

tora::workloads::SyntheticSpec spec_for(const std::string& shape,
                                        std::size_t n) {
  return shape == "bimodal" ? tora::workloads::bimodal_spec(n)
                            : tora::workloads::trimodal_spec(n);
}

}  // namespace

int main() {
  using tora::core::ResourceKind;
  const std::vector<std::size_t> sizes = {1000, 5000, 10000, 20000};
  const std::vector<std::string> policies = {"max_seen", "greedy_bucketing",
                                             "exhaustive_bucketing"};

  std::cout << "Scaling to large workflows (paper §VII hypothesis)\n"
               "memory AWE and harness wall time as the task count grows\n";
  for (const std::string shape : {"bimodal", "trimodal"}) {
    std::cout << "\n== " << shape << " ==\n";
    std::vector<std::string> header{"policy"};
    for (auto n : sizes) header.push_back(std::to_string(n) + " tasks");
    tora::exp::TextTable table(header);
    for (const auto& p : policies) {
      std::vector<std::string> row{p};
      for (std::size_t n : sizes) {
        const auto workload =
            tora::workloads::generate_synthetic(spec_for(shape, n), 7);
        tora::exp::ExperimentConfig cfg;
        // Submission keeps pace with larger runs; the pool churns as usual.
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = tora::exp::run_experiment(workload, p, cfg);
        const auto dt = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        row.push_back(tora::exp::fmt_pct(r.awe(ResourceKind::MemoryMB)) +
                      " (" + tora::exp::fmt(dt, 1) + "s)");
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }
  std::cout << "\nHypothesis check: bucketing AWE should not degrade with "
               "size (converged steady state\namortizes exploration), and "
               "the per-run wall time should stay far below the paper's\n"
               "quadratic greedy cost thanks to the prefix-sum cost model.\n";
  return 0;
}
