// Chaos robustness harness: every registered allocation policy runs the
// trimodal workload over the fault-injected protocol runtime — message
// drops, duplication, byte corruption, one hard-severed worker and one
// worker that executes a task but dies before reporting. Each (policy,
// seed) cell runs TWICE and must replay exactly: identical anomaly
// counters, message counts and round counts, because every fault decision
// derives from the seed. The harness exits non-zero if any workflow fails
// to complete, any counter diverges between replays, or eviction cost
// leaks into the allocator-charged waste accounting.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "exp/report.hpp"
#include "proto/fault.hpp"
#include "proto/manager.hpp"
#include "workloads/workload.hpp"

namespace {

constexpr std::size_t kTasks = 400;
constexpr std::size_t kWorkers = 8;
constexpr std::uint64_t kAllocatorSeed = 7;

tora::proto::ChaosConfig chaos_config(std::uint64_t seed) {
  tora::proto::ChaosConfig c;
  c.seed = seed;
  c.to_worker.drop_prob = 0.08;
  c.to_worker.duplicate_prob = 0.05;
  c.to_worker.corrupt_prob = 0.05;
  c.to_manager = c.to_worker;
  c.sever_workers = 1;
  c.sever_after_messages = 60;
  c.worker_faults.resize(3);
  c.worker_faults[2].crash_point = tora::proto::CrashPoint::BeforeResult;
  return c;
}

}  // namespace

int main() {
  using tora::core::ResourceKind;
  using tora::proto::ProtocolRunResult;
  using tora::proto::ProtocolRuntime;

  auto workload = tora::workloads::make_workload("trimodal", 11);
  workload.tasks.resize(kTasks);

  std::cout << "Chaos robustness: " << kTasks << "-task trimodal workflow, "
            << kWorkers << " workers, drop 8% / duplicate 5% / corrupt 5%, "
            << "1 severed worker, 1 crash-before-result\n\n";

  bool ok = true;
  const auto violation = [&ok](const std::string& policy,
                               std::uint64_t seed, const std::string& what) {
    std::cerr << "VIOLATION [" << policy << ", seed " << seed << "]: " << what
              << "\n";
    ok = false;
  };

  tora::exp::TextTable table({"policy", "completed", "redispatch", "evicted",
                              "dead", "stale", "malformed", "mem AWE"});
  ProtocolRunResult sample;
  for (const std::string& policy : tora::core::all_policy_names()) {
    // Aggregate over seeds for the table; every seed is checked.
    ProtocolRunResult shown;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto run_once = [&] {
        auto alloc = tora::core::make_allocator(policy, kAllocatorSeed);
        ProtocolRuntime runtime(workload.tasks, alloc, kWorkers,
                                {16.0, 64.0 * 1024.0, 64.0 * 1024.0, 0.0},
                                chaos_config(seed));
        return runtime.run();
      };
      const ProtocolRunResult a = run_once();
      const ProtocolRunResult b = run_once();

      if (a.tasks_completed != kTasks || a.tasks_fatal != 0) {
        violation(policy, seed,
                  "incomplete: " + std::to_string(a.tasks_completed) +
                      " completed, " + std::to_string(a.tasks_fatal) +
                      " fatal");
      }
      if (!(a.chaos == b.chaos) || a.messages != b.messages ||
          a.rounds != b.rounds) {
        violation(policy, seed, "replay diverged from identical seed");
      }
      if (a.chaos.links_severed == 0) {
        violation(policy, seed, "severed link never engaged");
      }
      // Consistent waste accounting: exactly one successful record per
      // task, and eviction cost only in its own ledger.
      if (a.accounting.task_count() != a.tasks_completed) {
        violation(policy, seed, "task_count != tasks_completed");
      }
      if (a.chaos.protocol_evictions > 0 &&
          a.evicted_alloc.memory_mb() <= 0.0) {
        violation(policy, seed, "evictions reported without eviction cost");
      }
      const std::size_t failed_attempts =
          a.accounting.total_attempts() - a.accounting.task_count();
      if (policy == tora::core::kWholeMachine && failed_attempts != 0) {
        violation(policy, seed,
                  "whole_machine charged with allocation failures — "
                  "infrastructure faults leaked into the paper metric");
      }
      if (seed == 1) shown = a;
      sample = a;
    }
    table.add_row(
        {policy, std::to_string(shown.tasks_completed),
         std::to_string(shown.chaos.redispatches),
         std::to_string(shown.chaos.protocol_evictions),
         std::to_string(shown.chaos.workers_declared_dead),
         std::to_string(shown.chaos.stale_or_duplicate_results),
         std::to_string(shown.chaos.malformed_lines),
         tora::exp::fmt_pct(shown.accounting.awe(ResourceKind::MemoryMB))});
  }
  table.print(std::cout);

  std::cout << "\nanomaly counters of the last run (deterministic replay "
               "verified for every cell):\n";
  tora::exp::chaos_table(sample.chaos).print(std::cout);

  std::cout << (ok ? "\nall chaos invariants held: every policy completed "
                     "under faults with replayable\ncounters and no "
                     "eviction cost charged to the allocator.\n"
                   : "\nCHAOS INVARIANT VIOLATIONS — see stderr above.\n");
  return ok ? 0 : 1;
}
