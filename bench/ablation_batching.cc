// Ablation: batched/lazy bucketing-state updates.
//
// The paper's Table I assumes the WORST case — every allocation recomputes
// the bucketing state. Its text then notes the mitigation this library
// implements: "a sequence of ready tasks can share the same bucketing state
// if there's no completed tasks in-between (no resource record to update),
// and a sequence of completed tasks can be batched into a large update if
// there's no ready tasks in-between". Our BucketingPolicy rebuilds lazily
// (dirty flag) and the scheduler invalidates cached first-attempt
// allocations only when the allocator revision changes.
//
// This harness runs each workflow under Exhaustive and Greedy Bucketing and
// reports rebuilds per completed task (the batching factor): a value below
// 3.0 (one per managed resource) means completions were batched; the
// worst-case Table I assumption corresponds to 3.0+ (every record triggers
// one rebuild per resource dimension at the next prediction).

#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "core/bucketing_policy.hpp"
#include "core/registry.hpp"
#include "exp/report.hpp"
#include "sim/simulation.hpp"
#include "workloads/workload.hpp"

int main() {
  using tora::core::ResourceKind;

  std::cout << "Ablation: lazy/batched bucketing-state updates\n"
               "rebuilds per completed task (3.0 = one rebuild per resource "
               "per completion, the\nTable I worst case; lower = batching "
               "savings)\n\n";

  tora::exp::TextTable table({"workflow / policy", "completions", "rebuilds",
                              "rebuilds per completion"});
  for (const char* wf : {"uniform", "trimodal", "topeft"}) {
    const auto workload = tora::workloads::make_workload(wf, 7);
    for (const char* policy : {"greedy_bucketing", "exhaustive_bucketing"}) {
      auto allocator = tora::core::make_allocator(policy, 11);
      tora::sim::SimConfig cfg;
      cfg.submit_interval_s = 5.0;
      tora::sim::Simulation sim(workload.tasks, allocator, cfg);
      const auto r = sim.run();

      // Sum rebuild counts over every (category × resource) policy state.
      std::size_t rebuilds = 0;
      std::set<std::string> categories;
      for (const auto& t : workload.tasks) categories.insert(t.category);
      for (const auto& cat : categories) {
        for (ResourceKind k : tora::core::kManagedResources) {
          auto* bp = dynamic_cast<tora::core::BucketingPolicy*>(
              &allocator.policy(cat, k));
          if (bp != nullptr) rebuilds += bp->rebuild_count();
        }
      }
      const double per = static_cast<double>(rebuilds) /
                         static_cast<double>(r.tasks_completed);
      table.add_row({std::string(wf) + " / " + policy,
                     std::to_string(r.tasks_completed),
                     std::to_string(rebuilds), tora::exp::fmt(per, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nbatching happens whenever several completions land between "
               "two dispatches: the\ndirty state is rebuilt once for the "
               "whole batch instead of once per record.\n";
  return 0;
}
