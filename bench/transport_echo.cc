// Transport perf smoke: the loopback TCP session layer vs the in-process
// channels it must be interchangeable with.
//
//   1. ECHO RTT: one worker endpoint pings the manager endpoint through
//      the full stack (line framing, session sequencing, acks, epoll) and
//      the manager echoes every frame back. Reports the mean round trip.
//   2. DISPATCH THROUGHPUT: the same workload is run to completion by
//      ProtocolRuntime (in-process links) and TcpProtocolRuntime
//      (lockstep sockets); reports wall time and tasks/second for each.
//
// Emits BENCH_transport.json; given a committed baseline json, enforces a
// 3x guard on the echo RTT and on the TCP dispatch wall time — loose
// enough for a busy CI box, tight enough to catch an accidental busy-wait
// or per-frame allocation storm in the session layer.
//
// Usage: transport_echo [out.json] [baseline.json]

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/task.hpp"
#include "exp/report.hpp"
#include "proto/manager.hpp"
#include "proto/net/endpoint.hpp"
#include "proto/net/tcp_runtime.hpp"

namespace {

using tora::core::ResourceVector;
using tora::core::TaskSpec;

constexpr std::size_t kEchoFrames = 2000;
constexpr std::size_t kDispatchTasks = 200;
constexpr std::size_t kWorkers = 4;
constexpr ResourceVector kCapacity{16.0, 64.0 * 1024.0, 64.0 * 1024.0, 0.0};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Mean round-trip time (microseconds) of kEchoFrames application frames
/// worker -> manager -> worker through established sessions.
double echo_rtt_us() {
  tora::proto::net::TcpTransportConfig cfg;  // port 0: ephemeral
  tora::proto::net::ManagerEndpoint mgr(1, cfg);
  tora::proto::net::TcpTransportConfig wcfg = cfg;
  wcfg.port = mgr.port();
  tora::proto::net::WorkerEndpoint wep(0, wcfg);

  double now = 0.0;
  while (!wep.established() || !mgr.worker_connected(0)) {
    mgr.pump_io(now, 0);
    wep.pump_io(now, 0);
    now += 0.01;
  }

  const std::string payload =
      "ping seq=0 pad=0123456789abcdef0123456789abcdef";
  const auto& link = mgr.links()[0];
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kEchoFrames; ++i) {
    wep.link()->to_manager.send(payload);
    for (;;) {
      wep.pump_io(now, 0);
      mgr.pump_io(now, 0);
      if (auto f = link->to_manager.poll()) {
        link->to_worker.send(std::move(*f));
        break;
      }
    }
    for (;;) {
      mgr.pump_io(now, 0);
      wep.pump_io(now, 0);
      if (wep.link()->to_worker.poll()) break;
    }
    now += 1e-4;  // keep backoff/keepalive clocks moving, far below windows
  }
  return seconds_since(t0) * 1e6 / static_cast<double>(kEchoFrames);
}

std::vector<TaskSpec> dispatch_workload() {
  std::vector<TaskSpec> tasks(kDispatchTasks);
  for (std::size_t i = 0; i < kDispatchTasks; ++i) {
    tasks[i].id = i;
    tasks[i].category = "mix";
    tasks[i].demand = ResourceVector{2.0, 4000.0, 2000.0, 0.0};
    tasks[i].duration_s = 30.0;
  }
  return tasks;
}

struct DispatchResult {
  double wall_s = 0.0;
  std::size_t messages = 0;
  std::size_t bytes = 0;
};

DispatchResult run_inproc(const std::vector<TaskSpec>& tasks) {
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7, kCapacity);
  tora::proto::ProtocolRuntime rt(tasks, alloc, kWorkers, kCapacity);
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = rt.run();
  DispatchResult d;
  d.wall_s = seconds_since(t0);
  d.messages = r.messages;
  d.bytes = r.bytes;
  if (r.tasks_completed != tasks.size()) {
    throw std::runtime_error("inproc dispatch run did not complete");
  }
  return d;
}

DispatchResult run_tcp(const std::vector<TaskSpec>& tasks) {
  auto alloc = tora::core::make_allocator(tora::core::kMaxSeen, 7, kCapacity);
  tora::proto::net::TcpProtocolRuntime rt(tasks, alloc, kWorkers, kCapacity);
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = rt.run();
  DispatchResult d;
  d.wall_s = seconds_since(t0);
  d.messages = r.messages;
  d.bytes = r.bytes;
  if (r.tasks_completed != tasks.size()) {
    throw std::runtime_error("tcp dispatch run did not complete");
  }
  return d;
}

double parse_key(const std::string& path, const std::string& key) {
  std::ifstream in(path);
  if (!in) return 0.0;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::string needle = "\"" + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_transport.json";
  const std::string baseline_path = argc > 2 ? argv[2] : "";

  std::cout << "Transport perf smoke: " << kEchoFrames
            << "-frame loopback echo + " << kDispatchTasks << "-task / "
            << kWorkers << "-worker dispatch, inproc vs tcp\n\n";

  const double rtt_us = echo_rtt_us();
  const DispatchResult inproc = run_inproc(dispatch_workload());
  const DispatchResult tcp = run_tcp(dispatch_workload());
  const double tcp_tasks_per_s =
      tcp.wall_s > 0.0 ? static_cast<double>(kDispatchTasks) / tcp.wall_s : 0.0;

  tora::exp::TextTable table(
      {"metric", "inproc", "tcp", "tcp/inproc"});
  table.add_row({"dispatch wall (ms)", tora::exp::fmt(inproc.wall_s * 1e3, 2),
                 tora::exp::fmt(tcp.wall_s * 1e3, 2),
                 inproc.wall_s > 0.0
                     ? tora::exp::fmt(tcp.wall_s / inproc.wall_s, 1) + "x"
                     : "-"});
  table.add_row({"messages", std::to_string(inproc.messages),
                 std::to_string(tcp.messages), "-"});
  table.add_row({"bytes", std::to_string(inproc.bytes),
                 std::to_string(tcp.bytes), "-"});
  table.print(std::cout);
  std::cout << "\necho RTT mean " << tora::exp::fmt(rtt_us, 2)
            << " us over " << kEchoFrames << " frames; tcp dispatch "
            << tora::exp::fmt(tcp_tasks_per_s, 0) << " tasks/s\n";

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"benchmark\": \"transport_echo\",\n"
       << "  \"echo_frames\": " << kEchoFrames << ",\n"
       << "  \"dispatch_tasks\": " << kDispatchTasks << ",\n"
       << "  \"workers\": " << kWorkers << ",\n"
       << "  \"guard_echo_rtt_us\": " << rtt_us << ",\n"
       << "  \"guard_tcp_dispatch_s\": " << tcp.wall_s << ",\n"
       << "  \"inproc_dispatch_s\": " << inproc.wall_s << ",\n"
       << "  \"tcp_tasks_per_s\": " << tcp_tasks_per_s << ",\n"
       << "  \"inproc_messages\": " << inproc.messages << ",\n"
       << "  \"tcp_messages\": " << tcp.messages << ",\n"
       << "  \"tcp_bytes\": " << tcp.bytes << "\n"
       << "}\n";

  // Wall-clock guard: 3x headroom absorbs CI noise; an accidental
  // busy-wait, sleep, or per-frame allocation storm blows straight past it.
  bool ok = true;
  if (!baseline_path.empty()) {
    const double base_rtt = parse_key(baseline_path, "guard_echo_rtt_us");
    const double base_dispatch =
        parse_key(baseline_path, "guard_tcp_dispatch_s");
    if (base_rtt > 0.0 && rtt_us > 3.0 * base_rtt) {
      std::cerr << "regression: echo RTT " << rtt_us
                << " us exceeds 3x the committed baseline (" << base_rtt
                << " us)\n";
      ok = false;
    }
    if (base_dispatch > 0.0 && tcp.wall_s > 3.0 * base_dispatch) {
      std::cerr << "regression: tcp dispatch " << tcp.wall_s
                << " s exceeds 3x the committed baseline (" << base_dispatch
                << " s)\n";
      ok = false;
    }
    if (ok && (base_rtt > 0.0 || base_dispatch > 0.0)) {
      std::cout << "regression guard: rtt " << tora::exp::fmt(rtt_us, 2)
                << " us vs " << tora::exp::fmt(base_rtt, 2)
                << " us, dispatch " << tora::exp::fmt(tcp.wall_s, 3)
                << " s vs " << tora::exp::fmt(base_dispatch, 3)
                << " s (limit 3x)\n";
    }
  }
  return ok ? 0 : 1;
}
