// Ablation: the exploratory mode of §IV-D / §V-A.
//
// Two knobs: (a) how many records a category must accumulate before the
// predictive policy takes over (paper: 10), and (b) the fixed exploration
// allocation (paper: 1 core / 1 GB memory / 1 GB disk, doubling on
// failure). Small workflows pay exploration failures; large thresholds
// waste the default allocation for longer. The disk column of ColmenaXTB
// (tasks use ~10 MB against a 1 GB exploration default) is the paper's own
// example of exploration cost dominating a resource dimension.

#include <iostream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "workloads/workload.hpp"

int main() {
  using tora::core::ResourceKind;

  std::cout << "Ablation A: exploration threshold (records before prediction "
               "starts), exhaustive bucketing, memory AWE\n\n";
  {
    const std::vector<std::size_t> thresholds = {1, 5, 10, 25, 50, 100};
    std::vector<std::string> header{"workflow"};
    for (auto t : thresholds) header.push_back("min=" + std::to_string(t));
    tora::exp::TextTable table(header);
    for (const char* wf : {"normal", "bimodal", "colmena_xtb", "topeft"}) {
      const auto workload = tora::workloads::make_workload(wf, 7);
      std::vector<std::string> row{wf};
      for (std::size_t t : thresholds) {
        tora::exp::ExperimentConfig cfg;
        cfg.registry.exploration_min_records = t;
        const double awe =
            tora::exp::run_experiment(workload, "exhaustive_bucketing", cfg)
                .awe(ResourceKind::MemoryMB);
        row.push_back(tora::exp::fmt_pct(awe));
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }

  std::cout << "\nAblation B: exploration default allocation, exhaustive "
               "bucketing on colmena_xtb (disk AWE)\n\n";
  {
    struct Default {
      const char* label;
      tora::core::ResourceVector alloc;
    };
    const std::vector<Default> defaults = {
        {"64 MB disk", {1.0, 1024.0, 64.0, 0.0}},
        {"256 MB disk", {1.0, 1024.0, 256.0, 0.0}},
        {"1 GB disk (paper)", {1.0, 1024.0, 1024.0, 0.0}},
        {"4 GB disk", {1.0, 1024.0, 4096.0, 0.0}},
    };
    tora::exp::TextTable table({"exploration default", "disk AWE",
                                "memory AWE", "mean attempts"});
    const auto workload = tora::workloads::make_workload("colmena_xtb", 7);
    for (const auto& d : defaults) {
      tora::exp::ExperimentConfig cfg;
      cfg.registry.exploration_default = d.alloc;
      const auto r =
          tora::exp::run_experiment(workload, "exhaustive_bucketing", cfg);
      table.add_row({d.label, tora::exp::fmt_pct(r.awe(ResourceKind::DiskMB)),
                     tora::exp::fmt_pct(r.awe(ResourceKind::MemoryMB)),
                     tora::exp::fmt(r.sim.accounting.mean_attempts(), 2)});
    }
    table.print(std::cout);
    std::cout << "\nColmenaXTB tasks use ~10 MB of disk: the 1 GB exploration "
                 "default is why the paper's Fig. 5\nshows single-digit disk "
                 "AWE for every algorithm. A smaller default recovers most of "
                 "it.\n";
  }
  return 0;
}
