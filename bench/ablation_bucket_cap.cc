// Ablation: Exhaustive Bucketing's bucket-count cap.
//
// The paper restricts EB to at most 10 buckets ("the number of buckets
// rarely exceeds 10 at any given time", §V-A). This harness sweeps the cap
// over {1, 2, 3, 5, 10, 20} on workloads whose mode counts differ (uniform:
// no clusters; bimodal: 2; trimodal: 3 over time; topeft: multi-category)
// and reports memory AWE. The curve should saturate near the true mode
// count, justifying the cap.

#include <iostream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "workloads/workload.hpp"

int main() {
  using tora::core::ResourceKind;

  const std::vector<std::string> workflows = {"uniform", "bimodal", "trimodal",
                                              "topeft"};
  const std::vector<std::size_t> caps = {1, 2, 3, 5, 10, 20};

  std::cout << "Ablation: exhaustive bucketing max-bucket cap (memory AWE)\n\n";
  std::vector<std::string> header{"workflow"};
  for (auto c : caps) header.push_back("cap=" + std::to_string(c));
  tora::exp::TextTable table(header);

  for (const auto& wf : workflows) {
    const auto workload = tora::workloads::make_workload(wf, 7);
    std::vector<std::string> row{wf};
    for (std::size_t cap : caps) {
      tora::exp::ExperimentConfig cfg;
      cfg.registry.exhaustive_max_buckets = cap;
      const double awe =
          tora::exp::run_experiment(workload, "exhaustive_bucketing", cfg)
              .awe(ResourceKind::MemoryMB);
      row.push_back(tora::exp::fmt_pct(awe));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\ncap=1 collapses EB to Max Seen without rounding; the curve "
               "should saturate by cap=10.\n";
  return 0;
}
