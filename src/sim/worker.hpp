#pragma once

#include <cstdint>
#include <set>

#include "core/resources.hpp"

namespace tora::util {
class ByteWriter;
class ByteReader;
}  // namespace tora::util

namespace tora::sim {

/// One opportunistic worker node: fixed capacity, tracks the resources
/// currently committed to running attempts and enforces that commitments
/// never exceed capacity. Matches the paper's worker role (Fig. 1): a worker
/// "allocates the specified portion of its resources to the task".
class Worker {
 public:
  Worker(std::uint64_t id, const core::ResourceVector& capacity);

  std::uint64_t id() const noexcept { return id_; }
  const core::ResourceVector& capacity() const noexcept { return capacity_; }
  const core::ResourceVector& committed() const noexcept { return committed_; }

  /// Free amount per managed dimension.
  core::ResourceVector free() const noexcept;

  /// True iff an allocation of `alloc` fits in the current free resources.
  bool can_fit(const core::ResourceVector& alloc) const noexcept;

  /// Commits `alloc` to task `task_id`. Throws std::logic_error if it does
  /// not fit or the task is already running here.
  void start(std::uint64_t task_id, const core::ResourceVector& alloc);

  /// Releases the commitment of task `task_id`. Throws if not running here.
  void finish(std::uint64_t task_id, const core::ResourceVector& alloc);

  std::size_t running_count() const noexcept { return running_.size(); }
  const std::set<std::uint64_t>& running_tasks() const noexcept {
    return running_;
  }

  /// Pool-departure flag: a draining worker accepts no new tasks.
  bool draining() const noexcept { return draining_; }
  void set_draining(bool d) noexcept { draining_ = d; }

  /// Snapshot/restore for simulation resume (id, capacity, commitments,
  /// running set, draining flag).
  void save_state(util::ByteWriter& w) const;
  static Worker load_state(util::ByteReader& r);

 private:
  std::uint64_t id_;
  core::ResourceVector capacity_;
  core::ResourceVector committed_;
  std::set<std::uint64_t> running_;
  bool draining_ = false;
};

}  // namespace tora::sim
