#pragma once

#include <cstdint>
#include <iosfwd>

#include "core/resources.hpp"
#include "sim/event_queue.hpp"

namespace tora::sim {

/// Observer hooks for the simulator's task/worker lifecycle. All callbacks
/// are invoked synchronously from Simulation::run with the current simulated
/// time; default implementations do nothing, so observers override only what
/// they need. The observer must outlive the simulation.
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  virtual void on_task_submitted(SimTime /*t*/, std::uint64_t /*task*/) {}
  virtual void on_attempt_started(SimTime /*t*/, std::uint64_t /*task*/,
                                  std::uint64_t /*worker*/,
                                  const core::ResourceVector& /*alloc*/) {}
  virtual void on_attempt_failed(SimTime /*t*/, std::uint64_t /*task*/,
                                 unsigned /*exceeded_mask*/) {}
  virtual void on_task_completed(SimTime /*t*/, std::uint64_t /*task*/) {}
  virtual void on_task_fatal(SimTime /*t*/, std::uint64_t /*task*/) {}
  virtual void on_task_evicted(SimTime /*t*/, std::uint64_t /*task*/,
                               std::uint64_t /*worker*/) {}
  virtual void on_worker_joined(SimTime /*t*/, std::uint64_t /*worker*/) {}
  virtual void on_worker_left(SimTime /*t*/, std::uint64_t /*worker*/) {}
};

/// Streams every lifecycle event as a CSV row
/// `time,event,task,worker,cores,memory_mb,disk_mb` (columns blank where not
/// applicable). Suitable for offline visualization of a run's schedule.
class CsvTraceObserver final : public SimObserver {
 public:
  /// The stream must outlive the observer. Writes the header immediately.
  explicit CsvTraceObserver(std::ostream& out);

  void on_task_submitted(SimTime t, std::uint64_t task) override;
  void on_attempt_started(SimTime t, std::uint64_t task, std::uint64_t worker,
                          const core::ResourceVector& alloc) override;
  void on_attempt_failed(SimTime t, std::uint64_t task,
                         unsigned exceeded_mask) override;
  void on_task_completed(SimTime t, std::uint64_t task) override;
  void on_task_fatal(SimTime t, std::uint64_t task) override;
  void on_task_evicted(SimTime t, std::uint64_t task,
                       std::uint64_t worker) override;
  void on_worker_joined(SimTime t, std::uint64_t worker) override;
  void on_worker_left(SimTime t, std::uint64_t worker) override;

  std::size_t rows_written() const noexcept { return rows_; }

 private:
  void row(SimTime t, const char* event, std::int64_t task,
           std::int64_t worker, const core::ResourceVector* alloc);

  std::ostream& out_;
  std::size_t rows_ = 0;
};

}  // namespace tora::sim
