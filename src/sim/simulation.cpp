#include "sim/simulation.hpp"

#include "sim/enforcement.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/recovery/snapshot.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"

namespace tora::sim {

using core::ResourceKind;
using core::ResourceVector;
using core::lifecycle::DispatchConfig;
using core::lifecycle::TaskPhase;

namespace {

DispatchConfig dispatch_config(const SimConfig& config) {
  DispatchConfig dc;
  dc.max_attempts = config.max_attempts_per_task;
  dc.significance =
      config.significance == SimConfig::SignificanceMode::TaskId
          ? DispatchConfig::Significance::TaskId
          : DispatchConfig::Significance::Constant;
  return dc;
}

}  // namespace

Simulation::Simulation(std::span<const core::TaskSpec> tasks,
                       core::TaskAllocator& allocator, SimConfig config)
    : tasks_(tasks),
      allocator_(allocator),
      config_(config),
      core_(tasks, allocator, dispatch_config(config), this),
      rng_(config.seed),
      pool_(config.worker_capacity),
      timing_(tasks.size()),
      deadlines_(config.resilience),
      storms_(config.resilience),
      spec_(tasks.size()),
      deadline_strikes_(tasks.size(), 0) {
  config_.resilience.validate();
  const ChurnConfig& ch = config_.churn;
  if (ch.storm_evict_fraction < 0.0 || ch.storm_evict_fraction > 1.0) {
    throw std::invalid_argument(
        "Simulation: storm_evict_fraction must be in [0, 1]");
  }
  if (ch.storm_interval_s < 0.0 || ch.storm_duration_s < 0.0) {
    throw std::invalid_argument("Simulation: storm timings must be >= 0");
  }
  if (ch.storm_interval_s > 0.0 &&
      (ch.storm_duration_s <= 0.0 || ch.storm_evict_fraction <= 0.0)) {
    throw std::invalid_argument(
        "Simulation: storms need storm_duration_s > 0 and "
        "storm_evict_fraction > 0");
  }
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!(tasks_[i].duration_s > 0.0)) {
      throw std::invalid_argument("Simulation: task duration must be > 0");
    }
    if (!(tasks_[i].peak_fraction > 0.0 && tasks_[i].peak_fraction <= 1.0)) {
      throw std::invalid_argument(
          "Simulation: peak_fraction must be in (0, 1]");
    }
  }
  if (config_.churn.initial_workers == 0) {
    throw std::invalid_argument("Simulation: need at least one worker");
  }
  for (const WorkerProfile& p : config_.worker_profiles) {
    if (!(p.weight > 0.0)) {
      throw std::invalid_argument("Simulation: profile weight must be > 0");
    }
  }
}

std::uint64_t Simulation::spawn_worker() {
  if (config_.worker_profiles.empty()) return pool_.add_worker();
  double total = 0.0;
  for (const WorkerProfile& p : config_.worker_profiles) total += p.weight;
  const double u = rng_.uniform01() * total;
  double acc = 0.0;
  for (const WorkerProfile& p : config_.worker_profiles) {
    acc += p.weight;
    if (u < acc) return pool_.add_worker(p.capacity);
  }
  return pool_.add_worker(config_.worker_profiles.back().capacity);
}

void Simulation::bootstrap() {
  for (std::size_t i = 0; i < config_.churn.initial_workers; ++i) {
    const std::uint64_t id = spawn_worker();
    ++result_.total_joins;
    if (observer_) observer_->on_worker_joined(now_, id);
    schedule_worker_lifetime(id);
  }
  result_.peak_workers = pool_.size();
  if (config_.churn.enabled) {
    events_.push(rng_.exponential(1.0 / config_.churn.mean_interarrival_s),
                 EventKind::WorkerJoin);
  }
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    events_.push(static_cast<double>(i) * config_.submit_interval_s,
                 EventKind::TaskSubmit, i);
  }
  if (config_.churn.storm_interval_s > 0.0) {
    events_.push(config_.churn.storm_interval_s, EventKind::StormBegin);
  }
}

void Simulation::schedule_worker_lifetime(std::uint64_t worker_id) {
  if (!config_.churn.enabled) return;
  const SimTime leave =
      now_ + rng_.exponential(1.0 / config_.churn.mean_lifetime_s);
  events_.push(leave, EventKind::WorkerLeave, worker_id);
}

SimResult Simulation::run() {
  if (finished_) throw std::logic_error("Simulation: run() called twice");
  while (step()) {
  }
  return result();
}

bool Simulation::step() {
  if (!started_) {
    started_ = true;
    bootstrap();
  }
  if (core_.done()) {
    finished_ = true;
    return false;
  }
  if (events_.empty()) {
    // Churn disabled and every worker idle yet tasks still queued would be
    // a scheduling bug: any clamped allocation fits an empty worker.
    throw std::logic_error(
        "Simulation: event queue drained with " +
        std::to_string(core_.task_count() - core_.finished()) +
        " tasks unfinished");
  }
  handle(events_.pop());
  if (core_.done()) {
    finished_ = true;
    return false;
  }
  return true;
}

SimResult Simulation::result() const {
  SimResult r = result_;
  r.accounting = core_.accounting();
  r.tasks_completed = core_.completed();
  r.tasks_fatal = core_.fatal();
  r.evictions = core_.evictions();
  r.evicted_alloc_seconds = core_.evicted_alloc();
  r.resilience = res_counters_;
  r.resilience.storms_entered = storms_.storms_entered();
  r.resilience.storms_exited = storms_.storms_exited();
  return r;
}

void Simulation::handle(const Event& e) {
  // Accumulate pool commitment/capacity integrals over the elapsed span
  // (piecewise constant between events).
  const double dt = e.time - now_;
  if (dt > 0.0) {
    for (const auto& [wid, w] : pool_.workers()) {
      result_.committed_integral += w.committed() * dt;
      result_.capacity_integral += w.capacity() * dt;
    }
  }
  now_ = e.time;
  // Advance the storm window on every event so degraded mode can end
  // between evictions (no-op unless storm_control is enabled).
  storms_.update(now_);
  switch (e.kind) {
    case EventKind::TaskSubmit:
      on_submit(e.a);
      break;
    case EventKind::AttemptFinish:
      on_attempt_finish(e);
      break;
    case EventKind::WorkerJoin:
      on_worker_join();
      break;
    case EventKind::WorkerLeave:
      on_worker_leave(e.a);
      break;
    case EventKind::StormBegin:
      on_storm_begin();
      break;
    case EventKind::StormEnd:
      storm_active_ = false;
      dispatch();
      break;
    case EventKind::SpecCheck:
      on_spec_check(e);
      break;
    case EventKind::SpecFinish:
      on_spec_finish(e);
      break;
    case EventKind::DeadlineKill:
      on_deadline_kill(e);
      break;
  }
}

void Simulation::on_submit(std::uint64_t task_id) {
  if (observer_) observer_->on_task_submitted(now_, task_id);
  core_.mark_submitted(task_id);
  dispatch();
}

void Simulation::on_worker_join() {
  // Regardless of admission, keep the Poisson process alive while work
  // remains.
  events_.push(now_ + rng_.exponential(1.0 / config_.churn.mean_interarrival_s),
               EventKind::WorkerJoin);
  if (storm_active_) return;  // the burst also starves the pool of joins
  if (pool_.size() >= config_.churn.max_workers) return;
  const std::uint64_t id = spawn_worker();
  ++result_.total_joins;
  if (observer_) observer_->on_worker_joined(now_, id);
  result_.peak_workers = std::max(result_.peak_workers, pool_.size());
  schedule_worker_lifetime(id);
  dispatch();
}

void Simulation::on_worker_leave(std::uint64_t worker_id) {
  if (!pool_.alive(worker_id)) return;  // already gone (defensive)
  if (pool_.size() <= config_.churn.min_workers) {
    // The paper's pool never shrinks below its lower bound; defer the
    // departure.
    events_.push(now_ + rng_.exponential(1.0 / config_.churn.mean_lifetime_s),
                 EventKind::WorkerLeave, worker_id);
    return;
  }
  evict_worker(worker_id);
  dispatch();
}

// Preemptive eviction (HTCondor-style): running attempts are cancelled and
// requeued with the same allocation. Their cost goes to the core's eviction
// ledger, never into the paper's waste metric (the algorithm did not cause
// the failure). The resilience layer changes two things, both config-gated:
// a lost speculative DUPLICATE is charged to the speculative column instead
// (the primary attempt elsewhere keeps running — the eviction ledger counts
// only primary attempts), and a lost PRIMARY whose live duplicate survives
// is promoted instead of requeued.
void Simulation::evict_worker(std::uint64_t worker_id) {
  const Worker& w = pool_.worker(worker_id);
  std::vector<std::uint64_t> victims(w.running_tasks().begin(),
                                     w.running_tasks().end());
  for (std::uint64_t task_id : victims) {
    SpecState& sp = spec_[task_id];
    if (sp.active && !sp.promoted && sp.worker == worker_id) {
      // The duplicate died with the worker; the primary is untouched.
      core_.charge_speculation(task_id, now_ - sp.start);
      ++res_counters_.speculations_cancelled;
      sp.active = false;
      ++sp.token;
      continue;
    }
    const double elapsed = now_ - timing_[task_id].attempt_start;
    core_.charge_eviction(task_id, elapsed);
    ++timing_[task_id].epoch;  // invalidates the in-flight AttemptFinish
    storms_.on_eviction(now_);
    if (sp.active && !sp.promoted && sp.worker != worker_id) {
      // The primary died but its duplicate survives elsewhere: promote it
      // to primary instead of losing the progress to a requeue.
      core_.rebind_running(task_id, sp.worker);
      timing_[task_id].attempt_start = sp.start;
      timing_[task_id].attempt_runtime = sp.runtime;
      sp.promoted = true;
      ++res_counters_.speculations_promoted;
      if (observer_) observer_->on_task_evicted(now_, task_id, worker_id);
      continue;
    }
    if (sp.active) {  // a promoted duplicate died with the worker
      sp.active = false;
      sp.promoted = false;
      ++sp.token;
    }
    core_.requeue_front(task_id);
    if (observer_) observer_->on_task_evicted(now_, task_id, worker_id);
  }
  pool_.remove_worker(worker_id);
  ++result_.total_leaves;
  if (observer_) observer_->on_worker_left(now_, worker_id);
}

void Simulation::dispatch() {
  // First-fit over the FIFO queue (the shared machine's dispatch pass);
  // tasks that do not fit anywhere stay queued in order.
  core_.dispatch_pass(
      [this](std::uint64_t, const ResourceVector& alloc)
          -> std::optional<std::uint64_t> {
        if (storms_.degraded() &&
            pool_.running_attempts() >=
                config_.resilience.degraded_inflight_cap) {
          // Degraded mode: admission control caps the in-flight attempts a
          // storm can take hostage.
          ++res_counters_.dispatches_held;
          return std::nullopt;
        }
        return pool_.find_worker_for(alloc, config_.placement);
      },
      [this](std::uint64_t task_id, std::uint64_t worker_id,
             const ResourceVector& alloc) {
        const core::TaskSpec& spec = tasks_[task_id];
        pool_.worker(worker_id).start(task_id, alloc);
        if (observer_) {
          observer_->on_attempt_started(now_, task_id, worker_id, alloc);
        }
        timing_[task_id].attempt_start = now_;
        // The enforcement model decides how long this attempt runs: the
        // full duration when the allocation covers the demand, otherwise
        // until the consumption ramp crosses the allocation (or the
        // wall-time limit).
        const double runtime =
            attempt_runtime(spec, alloc, allocator_.config().managed,
                            config_.monitor_interval_s);
        timing_[task_id].attempt_runtime = runtime;
        events_.push(now_ + runtime, EventKind::AttemptFinish, task_id,
                     worker_id, timing_[task_id].epoch);
        schedule_resilience_events(task_id);
      });
}

double Simulation::deadline_widen() const noexcept {
  return storms_.degraded() ? config_.resilience.degraded_deadline_widen : 1.0;
}

void Simulation::schedule_resilience_events(std::uint64_t task_id) {
  const auto& res = config_.resilience;
  if (!res.enabled()) return;
  const core::CategoryId cat = core_.category_of(task_id);
  const TimingState& t = timing_[task_id];
  if (res.speculation) {
    if (const auto thr = deadlines_.straggler_threshold(cat)) {
      events_.push(t.attempt_start + *thr, EventKind::SpecCheck, task_id, 0,
                   t.epoch);
    }
  }
  if (res.deadlines && deadlines_.adaptive(cat)) {
    double eff = deadlines_.deadline(cat, 0.0, deadline_widen());
    for (std::uint32_t s = 0; s < deadline_strikes_[task_id]; ++s) eff *= 2.0;
    // Only watch attempts the enforcement model would let outlive the
    // deadline; everything else finishes (or is killed) first anyway.
    if (eff < t.attempt_runtime) {
      events_.push(t.attempt_start + eff, EventKind::DeadlineKill, task_id, 0,
                   t.epoch);
    }
  }
}

void Simulation::cancel_speculation(std::uint64_t task_id) {
  SpecState& sp = spec_[task_id];
  if (!sp.active || sp.promoted) return;
  pool_.worker(sp.worker).finish(task_id, core_.entry(task_id).alloc);
  core_.charge_speculation(task_id, now_ - sp.start);
  ++res_counters_.speculations_cancelled;
  sp.active = false;
  ++sp.token;
}

void Simulation::on_spec_check(const Event& e) {
  const std::uint64_t task_id = e.a;
  const auto& res = config_.resilience;
  const auto& entry = core_.entry(task_id);
  SpecState& sp = spec_[task_id];
  if (e.epoch != timing_[task_id].epoch || entry.phase != TaskPhase::Running ||
      sp.active) {
    return;  // the watched attempt already ended, or a duplicate exists
  }
  // Degraded mode suspends speculation; without churn evidence (no eviction
  // observed yet) duplicating attempts would only burn capacity.
  if (!res.speculation || storms_.degraded() || !churn_evidence()) return;
  const auto thr = deadlines_.straggler_threshold(core_.category_of(task_id));
  if (!thr) return;
  const SimTime due = timing_[task_id].attempt_start + *thr;
  if (due > now_) {
    // The threshold grew since this check was scheduled; re-arm.
    events_.push(due, EventKind::SpecCheck, task_id, 0, e.epoch);
    return;
  }
  const auto worker =
      pool_.find_worker_for(entry.alloc, config_.placement, entry.running_on);
  if (!worker) return;
  pool_.worker(*worker).start(task_id, entry.alloc);
  sp.active = true;
  sp.promoted = false;
  sp.worker = *worker;
  sp.start = now_;
  // Same spec, same allocation, same enforcement model: the duplicate runs
  // exactly as long as the primary would.
  sp.runtime = timing_[task_id].attempt_runtime;
  ++sp.token;
  events_.push(now_ + sp.runtime, EventKind::SpecFinish, task_id, *worker,
               sp.token);
  ++res_counters_.speculations_launched;
}

void Simulation::on_spec_finish(const Event& e) {
  const std::uint64_t task_id = e.a;
  SpecState& sp = spec_[task_id];
  if (!sp.active || e.epoch != sp.token || e.b != sp.worker) return;  // stale
  if (!sp.promoted) {
    // The primary started earlier with the same modeled runtime, so it
    // always finishes first; only promotion makes this event meaningful.
    cancel_speculation(task_id);
    return;
  }
  const auto& entry = core_.entry(task_id);
  if (entry.phase != TaskPhase::Running || entry.running_on != sp.worker) {
    return;
  }
  pool_.worker(sp.worker).finish(task_id, entry.alloc);
  sp.active = false;
  sp.promoted = false;
  ++sp.token;
  const core::TaskSpec& spec = tasks_[task_id];
  if (spec.demand.fits_within(entry.alloc, allocator_.config().managed)) {
    complete_task(task_id);
  } else {
    fail_attempt(task_id, timing_[task_id].attempt_runtime);
  }
  dispatch();
}

void Simulation::on_deadline_kill(const Event& e) {
  const std::uint64_t task_id = e.a;
  const auto& res = config_.resilience;
  if (!res.deadlines) return;
  const auto& entry = core_.entry(task_id);
  if (e.epoch != timing_[task_id].epoch || entry.phase != TaskPhase::Running) {
    return;
  }
  if (!churn_evidence()) return;  // calm run: never second-guess the model
  const core::CategoryId cat = core_.category_of(task_id);
  if (!deadlines_.adaptive(cat)) return;
  double eff = deadlines_.deadline(cat, 0.0, deadline_widen());
  for (std::uint32_t s = 0; s < deadline_strikes_[task_id]; ++s) eff *= 2.0;
  const SimTime due = timing_[task_id].attempt_start + eff;
  if (due > now_) {
    // The deadline widened (storm) since this kill was scheduled; re-arm.
    events_.push(due, EventKind::DeadlineKill, task_id, 0, e.epoch);
    return;
  }
  // The attempt outlived its adaptive deadline: kill and requeue with the
  // same allocation. Like the protocol's attempt timeout this is an
  // infrastructure loss — charged to neither the waste metric nor the
  // eviction ledger. Each strike doubles the task's next deadline so a task
  // genuinely longer than its category's quantile still terminates.
  cancel_speculation(task_id);
  pool_.worker(entry.running_on).finish(task_id, entry.alloc);
  ++timing_[task_id].epoch;
  ++deadline_strikes_[task_id];
  ++res_counters_.adaptive_deadlines_used;
  core_.requeue_front(task_id);
  dispatch();
}

void Simulation::on_storm_begin() {
  storm_active_ = true;
  events_.push(now_ + config_.churn.storm_duration_s, EventKind::StormEnd);
  events_.push(now_ + config_.churn.storm_interval_s, EventKind::StormBegin);
  std::vector<std::uint64_t> alive;
  alive.reserve(pool_.size());
  for (const auto& [id, w] : pool_.workers()) alive.push_back(id);
  for (std::uint64_t id : alive) {
    if (pool_.size() <= 1) break;  // keep one worker so the run can progress
    if (rng_.uniform01() < config_.churn.storm_evict_fraction) {
      evict_worker(id);
    }
  }
  dispatch();
}

void Simulation::on_attempt_finish(const Event& e) {
  const std::uint64_t task_id = e.a;
  const auto& entry = core_.entry(task_id);
  if (e.epoch != timing_[task_id].epoch || entry.phase != TaskPhase::Running ||
      entry.running_on != e.b) {
    return;  // stale: the attempt was evicted before it finished
  }
  // The primary delivered first: the duplicate (if any) lost the race.
  cancel_speculation(task_id);
  pool_.worker(e.b).finish(task_id, entry.alloc);
  const core::TaskSpec& spec = tasks_[task_id];
  if (spec.demand.fits_within(entry.alloc, allocator_.config().managed)) {
    complete_task(task_id);
  } else {
    fail_attempt(task_id, timing_[task_id].attempt_runtime);
  }
  dispatch();
}

void Simulation::complete_task(std::uint64_t task_id) {
  const core::TaskSpec& spec = tasks_[task_id];
  if (observer_) observer_->on_task_completed(now_, task_id);
  result_.makespan_s = std::max(result_.makespan_s, now_);
  // The simulator reveals the ground truth on success: the measured peak is
  // the task's true demand and the runtime its full duration.
  core_.complete(task_id, spec.demand, spec.duration_s);
}

void Simulation::fail_attempt(std::uint64_t task_id, SimTime runtime) {
  const core::TaskSpec& spec = tasks_[task_id];
  ++timing_[task_id].epoch;
  const unsigned mask = spec.demand.exceeded_mask(
      core_.entry(task_id).alloc, allocator_.config().managed);
  if (observer_) observer_->on_attempt_failed(now_, task_id, mask);
  core_.fail_attempt(task_id, runtime, mask);
}

void Simulation::task_fatal(std::uint64_t task_id) {
  if (observer_) observer_->on_task_fatal(now_, task_id);
  util::log_warn("task ", task_id, " (", tasks_[task_id].category,
                 ") is unrunnable: demand exceeds pool capacity or attempt "
                 "limit reached");
}

void Simulation::task_completed(std::uint64_t task_id,
                                const core::ResourceVector& /*measured_peak*/,
                                double runtime_s) {
  // Feed the category's wall-time histogram. Only successful attempts count:
  // killed attempts end early and would drag the quantiles toward the
  // enforcement model's kill times instead of real category runtimes.
  if (config_.resilience.deadlines || config_.resilience.speculation) {
    deadlines_.observe(core_.category_of(task_id), runtime_s);
  }
}

void Simulation::save_state(util::ByteWriter& w) const {
  w.u8(started_ ? 1 : 0);
  w.u8(finished_ ? 1 : 0);
  core::recovery::save_allocator(allocator_, w);
  core_.save_state(w);
  const util::Rng::State rs = rng_.state();
  for (std::uint64_t word : rs.words) w.u64(word);
  w.f64(rs.cached_normal);
  w.u8(rs.has_cached_normal ? 1 : 0);
  events_.save_state(w);
  pool_.save_state(w);
  w.u64(timing_.size());
  for (const TimingState& t : timing_) {
    w.u64(t.epoch);
    w.f64(t.attempt_start);
    w.f64(t.attempt_runtime);
  }
  w.f64(now_);
  // Only the simulator-owned result fields: everything else is derived from
  // the core on read (result()).
  w.f64(result_.makespan_s);
  w.u64(result_.total_joins);
  w.u64(result_.total_leaves);
  w.u64(result_.peak_workers);
  for (ResourceKind k : core::kAllResources) w.f64(result_.committed_integral[k]);
  for (ResourceKind k : core::kAllResources) w.f64(result_.capacity_integral[k]);
  // Resilience layer (appended last; all-zero for disabled configs, so the
  // layout is uniform).
  deadlines_.save(w);
  storms_.save(w);
  w.u8(storm_active_ ? 1 : 0);
  w.u64(spec_.size());
  for (const SpecState& sp : spec_) {
    w.u8(sp.active ? 1 : 0);
    w.u8(sp.promoted ? 1 : 0);
    w.u64(sp.worker);
    w.f64(sp.start);
    w.f64(sp.runtime);
    w.u64(sp.token);
  }
  for (std::uint32_t s : deadline_strikes_) w.u32(s);
  res_counters_.save(w);
}

void Simulation::load_state(util::ByteReader& r) {
  if (started_) {
    throw std::logic_error(
        "Simulation: load_state must precede the first step()/run()");
  }
  started_ = r.u8() != 0;
  finished_ = r.u8() != 0;
  core::recovery::load_allocator(allocator_, r);
  core_.load_state(r);
  util::Rng::State rs;
  for (std::uint64_t& word : rs.words) word = r.u64();
  rs.cached_normal = r.f64();
  rs.has_cached_normal = r.u8() != 0;
  rng_.set_state(rs);
  events_.load_state(r);
  pool_.load_state(r);
  if (r.u64() != timing_.size()) {
    throw std::runtime_error(
        "Simulation: snapshot task count does not match the workload");
  }
  for (TimingState& t : timing_) {
    t.epoch = r.u64();
    t.attempt_start = r.f64();
    t.attempt_runtime = r.f64();
  }
  now_ = r.f64();
  result_.makespan_s = r.f64();
  result_.total_joins = r.u64();
  result_.total_leaves = r.u64();
  result_.peak_workers = r.u64();
  for (ResourceKind k : core::kAllResources) result_.committed_integral[k] = r.f64();
  for (ResourceKind k : core::kAllResources) result_.capacity_integral[k] = r.f64();
  deadlines_.load(r);
  storms_.load(r);
  storm_active_ = r.u8() != 0;
  if (r.u64() != spec_.size()) {
    throw std::runtime_error(
        "Simulation: snapshot speculation count does not match the workload");
  }
  for (SpecState& sp : spec_) {
    sp.active = r.u8() != 0;
    sp.promoted = r.u8() != 0;
    sp.worker = r.u64();
    sp.start = r.f64();
    sp.runtime = r.f64();
    sp.token = r.u64();
  }
  for (std::uint32_t& s : deadline_strikes_) s = r.u32();
  res_counters_.load(r);
}

}  // namespace tora::sim
