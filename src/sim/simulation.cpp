#include "sim/simulation.hpp"

#include "sim/enforcement.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/recovery/snapshot.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"

namespace tora::sim {

using core::ResourceKind;
using core::ResourceVector;
using core::lifecycle::DispatchConfig;
using core::lifecycle::TaskPhase;

namespace {

DispatchConfig dispatch_config(const SimConfig& config) {
  DispatchConfig dc;
  dc.max_attempts = config.max_attempts_per_task;
  dc.significance =
      config.significance == SimConfig::SignificanceMode::TaskId
          ? DispatchConfig::Significance::TaskId
          : DispatchConfig::Significance::Constant;
  return dc;
}

}  // namespace

Simulation::Simulation(std::span<const core::TaskSpec> tasks,
                       core::TaskAllocator& allocator, SimConfig config)
    : tasks_(tasks),
      allocator_(allocator),
      config_(config),
      core_(tasks, allocator, dispatch_config(config), this),
      rng_(config.seed),
      pool_(config.worker_capacity),
      timing_(tasks.size()) {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!(tasks_[i].duration_s > 0.0)) {
      throw std::invalid_argument("Simulation: task duration must be > 0");
    }
    if (!(tasks_[i].peak_fraction > 0.0 && tasks_[i].peak_fraction <= 1.0)) {
      throw std::invalid_argument(
          "Simulation: peak_fraction must be in (0, 1]");
    }
  }
  if (config_.churn.initial_workers == 0) {
    throw std::invalid_argument("Simulation: need at least one worker");
  }
  for (const WorkerProfile& p : config_.worker_profiles) {
    if (!(p.weight > 0.0)) {
      throw std::invalid_argument("Simulation: profile weight must be > 0");
    }
  }
}

std::uint64_t Simulation::spawn_worker() {
  if (config_.worker_profiles.empty()) return pool_.add_worker();
  double total = 0.0;
  for (const WorkerProfile& p : config_.worker_profiles) total += p.weight;
  const double u = rng_.uniform01() * total;
  double acc = 0.0;
  for (const WorkerProfile& p : config_.worker_profiles) {
    acc += p.weight;
    if (u < acc) return pool_.add_worker(p.capacity);
  }
  return pool_.add_worker(config_.worker_profiles.back().capacity);
}

void Simulation::bootstrap() {
  for (std::size_t i = 0; i < config_.churn.initial_workers; ++i) {
    const std::uint64_t id = spawn_worker();
    ++result_.total_joins;
    if (observer_) observer_->on_worker_joined(now_, id);
    schedule_worker_lifetime(id);
  }
  result_.peak_workers = pool_.size();
  if (config_.churn.enabled) {
    events_.push(rng_.exponential(1.0 / config_.churn.mean_interarrival_s),
                 EventKind::WorkerJoin);
  }
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    events_.push(static_cast<double>(i) * config_.submit_interval_s,
                 EventKind::TaskSubmit, i);
  }
}

void Simulation::schedule_worker_lifetime(std::uint64_t worker_id) {
  if (!config_.churn.enabled) return;
  const SimTime leave =
      now_ + rng_.exponential(1.0 / config_.churn.mean_lifetime_s);
  events_.push(leave, EventKind::WorkerLeave, worker_id);
}

SimResult Simulation::run() {
  if (finished_) throw std::logic_error("Simulation: run() called twice");
  while (step()) {
  }
  return result();
}

bool Simulation::step() {
  if (!started_) {
    started_ = true;
    bootstrap();
  }
  if (core_.done()) {
    finished_ = true;
    return false;
  }
  if (events_.empty()) {
    // Churn disabled and every worker idle yet tasks still queued would be
    // a scheduling bug: any clamped allocation fits an empty worker.
    throw std::logic_error(
        "Simulation: event queue drained with " +
        std::to_string(core_.task_count() - core_.finished()) +
        " tasks unfinished");
  }
  handle(events_.pop());
  if (core_.done()) {
    finished_ = true;
    return false;
  }
  return true;
}

SimResult Simulation::result() const {
  SimResult r = result_;
  r.accounting = core_.accounting();
  r.tasks_completed = core_.completed();
  r.tasks_fatal = core_.fatal();
  r.evictions = core_.evictions();
  r.evicted_alloc_seconds = core_.evicted_alloc();
  return r;
}

void Simulation::handle(const Event& e) {
  // Accumulate pool commitment/capacity integrals over the elapsed span
  // (piecewise constant between events).
  const double dt = e.time - now_;
  if (dt > 0.0) {
    for (const auto& [wid, w] : pool_.workers()) {
      result_.committed_integral += w.committed() * dt;
      result_.capacity_integral += w.capacity() * dt;
    }
  }
  now_ = e.time;
  switch (e.kind) {
    case EventKind::TaskSubmit:
      on_submit(e.a);
      break;
    case EventKind::AttemptFinish:
      on_attempt_finish(e);
      break;
    case EventKind::WorkerJoin:
      on_worker_join();
      break;
    case EventKind::WorkerLeave:
      on_worker_leave(e.a);
      break;
  }
}

void Simulation::on_submit(std::uint64_t task_id) {
  if (observer_) observer_->on_task_submitted(now_, task_id);
  core_.mark_submitted(task_id);
  dispatch();
}

void Simulation::on_worker_join() {
  // Regardless of admission, keep the Poisson process alive while work
  // remains.
  events_.push(now_ + rng_.exponential(1.0 / config_.churn.mean_interarrival_s),
               EventKind::WorkerJoin);
  if (pool_.size() >= config_.churn.max_workers) return;
  const std::uint64_t id = spawn_worker();
  ++result_.total_joins;
  if (observer_) observer_->on_worker_joined(now_, id);
  result_.peak_workers = std::max(result_.peak_workers, pool_.size());
  schedule_worker_lifetime(id);
  dispatch();
}

void Simulation::on_worker_leave(std::uint64_t worker_id) {
  if (!pool_.alive(worker_id)) return;  // already gone (defensive)
  if (pool_.size() <= config_.churn.min_workers) {
    // The paper's pool never shrinks below its lower bound; defer the
    // departure.
    events_.push(now_ + rng_.exponential(1.0 / config_.churn.mean_lifetime_s),
                 EventKind::WorkerLeave, worker_id);
    return;
  }
  // Preemptive eviction (HTCondor-style): running attempts are cancelled and
  // requeued with the same allocation. Their cost goes to the core's
  // eviction ledger, never into the paper's waste metric (the algorithm did
  // not cause the failure).
  const Worker& w = pool_.worker(worker_id);
  std::vector<std::uint64_t> victims(w.running_tasks().begin(),
                                     w.running_tasks().end());
  for (std::uint64_t task_id : victims) {
    const double elapsed = now_ - timing_[task_id].attempt_start;
    core_.charge_eviction(task_id, elapsed);
    ++timing_[task_id].epoch;  // invalidates the in-flight AttemptFinish
    core_.requeue_front(task_id);
    if (observer_) observer_->on_task_evicted(now_, task_id, worker_id);
  }
  pool_.remove_worker(worker_id);
  ++result_.total_leaves;
  if (observer_) observer_->on_worker_left(now_, worker_id);
  dispatch();
}

void Simulation::dispatch() {
  // First-fit over the FIFO queue (the shared machine's dispatch pass);
  // tasks that do not fit anywhere stay queued in order.
  core_.dispatch_pass(
      [this](std::uint64_t, const ResourceVector& alloc) {
        return pool_.find_worker_for(alloc, config_.placement);
      },
      [this](std::uint64_t task_id, std::uint64_t worker_id,
             const ResourceVector& alloc) {
        const core::TaskSpec& spec = tasks_[task_id];
        pool_.worker(worker_id).start(task_id, alloc);
        if (observer_) {
          observer_->on_attempt_started(now_, task_id, worker_id, alloc);
        }
        timing_[task_id].attempt_start = now_;
        // The enforcement model decides how long this attempt runs: the
        // full duration when the allocation covers the demand, otherwise
        // until the consumption ramp crosses the allocation (or the
        // wall-time limit).
        const double runtime =
            attempt_runtime(spec, alloc, allocator_.config().managed,
                            config_.monitor_interval_s);
        timing_[task_id].attempt_runtime = runtime;
        events_.push(now_ + runtime, EventKind::AttemptFinish, task_id,
                     worker_id, timing_[task_id].epoch);
      });
}

void Simulation::on_attempt_finish(const Event& e) {
  const std::uint64_t task_id = e.a;
  const auto& entry = core_.entry(task_id);
  if (e.epoch != timing_[task_id].epoch || entry.phase != TaskPhase::Running ||
      entry.running_on != e.b) {
    return;  // stale: the attempt was evicted before it finished
  }
  pool_.worker(e.b).finish(task_id, entry.alloc);
  const core::TaskSpec& spec = tasks_[task_id];
  if (spec.demand.fits_within(entry.alloc, allocator_.config().managed)) {
    complete_task(task_id);
  } else {
    fail_attempt(task_id, timing_[task_id].attempt_runtime);
  }
  dispatch();
}

void Simulation::complete_task(std::uint64_t task_id) {
  const core::TaskSpec& spec = tasks_[task_id];
  if (observer_) observer_->on_task_completed(now_, task_id);
  result_.makespan_s = std::max(result_.makespan_s, now_);
  // The simulator reveals the ground truth on success: the measured peak is
  // the task's true demand and the runtime its full duration.
  core_.complete(task_id, spec.demand, spec.duration_s);
}

void Simulation::fail_attempt(std::uint64_t task_id, SimTime runtime) {
  const core::TaskSpec& spec = tasks_[task_id];
  ++timing_[task_id].epoch;
  const unsigned mask = spec.demand.exceeded_mask(
      core_.entry(task_id).alloc, allocator_.config().managed);
  if (observer_) observer_->on_attempt_failed(now_, task_id, mask);
  core_.fail_attempt(task_id, runtime, mask);
}

void Simulation::task_fatal(std::uint64_t task_id) {
  if (observer_) observer_->on_task_fatal(now_, task_id);
  util::log_warn("task ", task_id, " (", tasks_[task_id].category,
                 ") is unrunnable: demand exceeds pool capacity or attempt "
                 "limit reached");
}

void Simulation::save_state(util::ByteWriter& w) const {
  w.u8(started_ ? 1 : 0);
  w.u8(finished_ ? 1 : 0);
  core::recovery::save_allocator(allocator_, w);
  core_.save_state(w);
  const util::Rng::State rs = rng_.state();
  for (std::uint64_t word : rs.words) w.u64(word);
  w.f64(rs.cached_normal);
  w.u8(rs.has_cached_normal ? 1 : 0);
  events_.save_state(w);
  pool_.save_state(w);
  w.u64(timing_.size());
  for (const TimingState& t : timing_) {
    w.u64(t.epoch);
    w.f64(t.attempt_start);
    w.f64(t.attempt_runtime);
  }
  w.f64(now_);
  // Only the simulator-owned result fields: everything else is derived from
  // the core on read (result()).
  w.f64(result_.makespan_s);
  w.u64(result_.total_joins);
  w.u64(result_.total_leaves);
  w.u64(result_.peak_workers);
  for (ResourceKind k : core::kAllResources) w.f64(result_.committed_integral[k]);
  for (ResourceKind k : core::kAllResources) w.f64(result_.capacity_integral[k]);
}

void Simulation::load_state(util::ByteReader& r) {
  if (started_) {
    throw std::logic_error(
        "Simulation: load_state must precede the first step()/run()");
  }
  started_ = r.u8() != 0;
  finished_ = r.u8() != 0;
  core::recovery::load_allocator(allocator_, r);
  core_.load_state(r);
  util::Rng::State rs;
  for (std::uint64_t& word : rs.words) word = r.u64();
  rs.cached_normal = r.f64();
  rs.has_cached_normal = r.u8() != 0;
  rng_.set_state(rs);
  events_.load_state(r);
  pool_.load_state(r);
  if (r.u64() != timing_.size()) {
    throw std::runtime_error(
        "Simulation: snapshot task count does not match the workload");
  }
  for (TimingState& t : timing_) {
    t.epoch = r.u64();
    t.attempt_start = r.f64();
    t.attempt_runtime = r.f64();
  }
  now_ = r.f64();
  result_.makespan_s = r.f64();
  result_.total_joins = r.u64();
  result_.total_leaves = r.u64();
  result_.peak_workers = r.u64();
  for (ResourceKind k : core::kAllResources) result_.committed_integral[k] = r.f64();
  for (ResourceKind k : core::kAllResources) result_.capacity_integral[k] = r.f64();
}

}  // namespace tora::sim
