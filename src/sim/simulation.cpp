#include "sim/simulation.hpp"

#include "sim/enforcement.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace tora::sim {

using core::ResourceKind;
using core::ResourceVector;

Simulation::Simulation(std::span<const core::TaskSpec> tasks,
                       core::TaskAllocator& allocator, SimConfig config)
    : tasks_(tasks),
      allocator_(allocator),
      config_(config),
      rng_(config.seed),
      pool_(config.worker_capacity),
      states_(tasks.size()) {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].id != i) {
      throw std::invalid_argument(
          "Simulation: task ids must be dense and in submission order");
    }
    if (!(tasks_[i].duration_s > 0.0)) {
      throw std::invalid_argument("Simulation: task duration must be > 0");
    }
    if (!(tasks_[i].peak_fraction > 0.0 && tasks_[i].peak_fraction <= 1.0)) {
      throw std::invalid_argument(
          "Simulation: peak_fraction must be in (0, 1]");
    }
  }
  // Dependency graph: validate (dep < id guarantees acyclicity) and build
  // the reverse adjacency used to release dependents on completion.
  dependents_.resize(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    states_[i].deps_remaining = tasks_[i].deps.size();
    for (std::uint64_t dep : tasks_[i].deps) {
      if (dep >= i) {
        throw std::invalid_argument(
            "Simulation: dependency ids must be smaller than the task id");
      }
      dependents_[dep].push_back(i);
    }
  }
  if (config_.churn.initial_workers == 0) {
    throw std::invalid_argument("Simulation: need at least one worker");
  }
  double profile_weight = 0.0;
  for (const WorkerProfile& p : config_.worker_profiles) {
    if (!(p.weight > 0.0)) {
      throw std::invalid_argument("Simulation: profile weight must be > 0");
    }
    profile_weight += p.weight;
  }
  (void)profile_weight;
}

std::uint64_t Simulation::spawn_worker() {
  if (config_.worker_profiles.empty()) return pool_.add_worker();
  double total = 0.0;
  for (const WorkerProfile& p : config_.worker_profiles) total += p.weight;
  const double u = rng_.uniform01() * total;
  double acc = 0.0;
  for (const WorkerProfile& p : config_.worker_profiles) {
    acc += p.weight;
    if (u < acc) return pool_.add_worker(p.capacity);
  }
  return pool_.add_worker(config_.worker_profiles.back().capacity);
}

void Simulation::bootstrap() {
  for (std::size_t i = 0; i < config_.churn.initial_workers; ++i) {
    const std::uint64_t id = spawn_worker();
    ++result_.total_joins;
    if (observer_) observer_->on_worker_joined(now_, id);
    schedule_worker_lifetime(id);
  }
  result_.peak_workers = pool_.size();
  if (config_.churn.enabled) {
    events_.push(rng_.exponential(1.0 / config_.churn.mean_interarrival_s),
                 EventKind::WorkerJoin);
  }
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    events_.push(static_cast<double>(i) * config_.submit_interval_s,
                 EventKind::TaskSubmit, i);
  }
}

void Simulation::schedule_worker_lifetime(std::uint64_t worker_id) {
  if (!config_.churn.enabled) return;
  const SimTime leave =
      now_ + rng_.exponential(1.0 / config_.churn.mean_lifetime_s);
  events_.push(leave, EventKind::WorkerLeave, worker_id);
}

SimResult Simulation::run() {
  if (ran_) throw std::logic_error("Simulation: run() called twice");
  ran_ = true;
  bootstrap();
  while (finished_ < tasks_.size()) {
    if (events_.empty()) {
      // Churn disabled and every worker idle yet tasks still queued would be
      // a scheduling bug: any clamped allocation fits an empty worker.
      throw std::logic_error("Simulation: event queue drained with " +
                             std::to_string(tasks_.size() - finished_) +
                             " tasks unfinished");
    }
    handle(events_.pop());
  }
  return result_;
}

void Simulation::handle(const Event& e) {
  // Accumulate pool commitment/capacity integrals over the elapsed span
  // (piecewise constant between events).
  const double dt = e.time - now_;
  if (dt > 0.0) {
    for (const auto& [wid, w] : pool_.workers()) {
      result_.committed_integral += w.committed() * dt;
      result_.capacity_integral += w.capacity() * dt;
    }
  }
  now_ = e.time;
  switch (e.kind) {
    case EventKind::TaskSubmit:
      on_submit(e.a);
      break;
    case EventKind::AttemptFinish:
      on_attempt_finish(e);
      break;
    case EventKind::WorkerJoin:
      on_worker_join();
      break;
    case EventKind::WorkerLeave:
      on_worker_leave(e.a);
      break;
  }
}

void Simulation::on_submit(std::uint64_t task_id) {
  states_[task_id].submitted = true;
  if (observer_) observer_->on_task_submitted(now_, task_id);
  maybe_ready(task_id);
  dispatch();
}

void Simulation::maybe_ready(std::uint64_t task_id) {
  TaskState& st = states_[task_id];
  if (!st.submitted || st.deps_remaining > 0 ||
      st.status != TaskStatus::Pending) {
    return;
  }
  st.status = TaskStatus::Queued;
  ready_.push_back(task_id);
}

void Simulation::on_worker_join() {
  // Regardless of admission, keep the Poisson process alive while work
  // remains.
  events_.push(now_ + rng_.exponential(1.0 / config_.churn.mean_interarrival_s),
               EventKind::WorkerJoin);
  if (pool_.size() >= config_.churn.max_workers) return;
  const std::uint64_t id = spawn_worker();
  ++result_.total_joins;
  if (observer_) observer_->on_worker_joined(now_, id);
  result_.peak_workers = std::max(result_.peak_workers, pool_.size());
  schedule_worker_lifetime(id);
  dispatch();
}

void Simulation::on_worker_leave(std::uint64_t worker_id) {
  if (!pool_.alive(worker_id)) return;  // already gone (defensive)
  if (pool_.size() <= config_.churn.min_workers) {
    // The paper's pool never shrinks below its lower bound; defer the
    // departure.
    events_.push(now_ + rng_.exponential(1.0 / config_.churn.mean_lifetime_s),
                 EventKind::WorkerLeave, worker_id);
    return;
  }
  // Preemptive eviction (HTCondor-style): running attempts are cancelled and
  // requeued with the same allocation. Their cost is tracked separately from
  // the paper's waste metric (the algorithm did not cause the failure).
  const Worker& w = pool_.worker(worker_id);
  std::vector<std::uint64_t> victims(w.running_tasks().begin(),
                                     w.running_tasks().end());
  for (std::uint64_t task_id : victims) {
    TaskState& st = states_[task_id];
    const double elapsed = now_ - st.attempt_start;
    result_.evicted_alloc_seconds += st.alloc * elapsed;
    ++result_.evictions;
    ++st.epoch;  // invalidates the in-flight AttemptFinish event
    st.status = TaskStatus::Queued;
    ready_.push_front(task_id);
    if (observer_) observer_->on_task_evicted(now_, task_id, worker_id);
  }
  pool_.remove_worker(worker_id);
  ++result_.total_leaves;
  if (observer_) observer_->on_worker_left(now_, worker_id);
  dispatch();
}

void Simulation::dispatch() {
  // First-fit over the FIFO queue; tasks that do not fit anywhere stay
  // queued in order. One pass suffices because placements only shrink the
  // free space.
  std::deque<std::uint64_t> still_waiting;
  while (!ready_.empty()) {
    const std::uint64_t task_id = ready_.front();
    ready_.pop_front();
    TaskState& st = states_[task_id];
    if (!st.has_alloc ||
        (!st.is_retry && st.alloc_revision != allocator_.revision())) {
      st.alloc = allocator_.allocate(tasks_[task_id].category);
      st.has_alloc = true;
      st.alloc_revision = allocator_.revision();
    }
    if (auto wid = pool_.find_worker_for(st.alloc, config_.placement)) {
      start_attempt(task_id, *wid);
    } else {
      still_waiting.push_back(task_id);
    }
  }
  ready_ = std::move(still_waiting);
}

void Simulation::start_attempt(std::uint64_t task_id,
                               std::uint64_t worker_id) {
  TaskState& st = states_[task_id];
  const core::TaskSpec& spec = tasks_[task_id];
  if (st.attempts >= config_.max_attempts_per_task) {
    make_fatal(task_id);
    return;
  }
  ++st.attempts;
  pool_.worker(worker_id).start(task_id, st.alloc);
  if (observer_) observer_->on_attempt_started(now_, task_id, worker_id, st.alloc);
  st.status = TaskStatus::Running;
  st.running_on = worker_id;
  st.attempt_start = now_;
  // The enforcement model decides how long this attempt runs: the full
  // duration when the allocation covers the demand, otherwise until the
  // consumption ramp crosses the allocation (or the wall-time limit).
  const double runtime = attempt_runtime(
      spec, st.alloc, allocator_.config().managed, config_.monitor_interval_s);
  events_.push(now_ + runtime, EventKind::AttemptFinish, task_id, worker_id,
               st.epoch);
}

void Simulation::on_attempt_finish(const Event& e) {
  const std::uint64_t task_id = e.a;
  TaskState& st = states_[task_id];
  if (e.epoch != st.epoch || st.status != TaskStatus::Running ||
      st.running_on != e.b) {
    return;  // stale: the attempt was evicted before it finished
  }
  pool_.worker(e.b).finish(task_id, st.alloc);
  const core::TaskSpec& spec = tasks_[task_id];
  if (spec.demand.fits_within(st.alloc, allocator_.config().managed)) {
    complete_task(task_id);
  } else {
    fail_attempt(task_id, now_ - st.attempt_start);
  }
  dispatch();
}

void Simulation::complete_task(std::uint64_t task_id) {
  TaskState& st = states_[task_id];
  const core::TaskSpec& spec = tasks_[task_id];
  st.status = TaskStatus::Done;
  ++finished_;
  ++result_.tasks_completed;
  if (observer_) observer_->on_task_completed(now_, task_id);
  result_.makespan_s = std::max(result_.makespan_s, now_);

  core::TaskUsage usage;
  usage.category = spec.category;
  usage.peak = spec.demand;
  usage.final_alloc = st.alloc;
  usage.final_runtime_s = spec.duration_s;
  usage.failed_attempts = st.failed_attempts;
  result_.accounting.add(usage);

  // Significance follows the paper's rule: the task id (1-based). The
  // Constant mode is the no-recency ablation.
  const double sig =
      config_.significance == SimConfig::SignificanceMode::TaskId
          ? static_cast<double>(spec.id) + 1.0
          : 1.0;
  allocator_.record_completion(spec.category, spec.demand, sig);

  // Release dependents whose last dependency this was.
  for (std::uint64_t dep_task : dependents_[task_id]) {
    TaskState& ds = states_[dep_task];
    if (ds.deps_remaining > 0) {
      --ds.deps_remaining;
      maybe_ready(dep_task);
    }
  }
}

void Simulation::fail_attempt(std::uint64_t task_id, SimTime runtime) {
  TaskState& st = states_[task_id];
  const core::TaskSpec& spec = tasks_[task_id];
  st.failed_attempts.push_back({st.alloc, runtime});
  ++st.epoch;
  if (observer_) {
    observer_->on_attempt_failed(
        now_, task_id,
        spec.demand.exceeded_mask(st.alloc, allocator_.config().managed));
  }

  const auto& managed = allocator_.config().managed;
  const unsigned mask = spec.demand.exceeded_mask(st.alloc, managed);
  const ResourceVector next =
      allocator_.allocate_retry(spec.category, st.alloc, mask);
  // If every exceeded dimension is pinned at worker capacity the task can
  // never run in this pool.
  bool grew = false;
  for (core::ResourceKind k : managed) {
    if ((mask & core::resource_bit(k)) && next[k] > st.alloc[k]) {
      grew = true;
      break;
    }
  }
  if (!grew) {
    make_fatal(task_id);
    return;
  }
  st.alloc = next;
  st.is_retry = true;
  st.status = TaskStatus::Queued;
  ready_.push_back(task_id);
}

void Simulation::make_fatal(std::uint64_t task_id) {
  TaskState& st = states_[task_id];
  if (st.status == TaskStatus::Fatal) return;
  st.status = TaskStatus::Fatal;
  ++finished_;
  ++result_.tasks_fatal;
  if (observer_) observer_->on_task_fatal(now_, task_id);
  util::log_warn("task ", task_id, " (", tasks_[task_id].category,
                 ") is unrunnable: demand exceeds pool capacity or attempt "
                 "limit reached");
  // Dependents can never run: cascade the failure so the run terminates.
  for (std::uint64_t dep_task : dependents_[task_id]) {
    make_fatal(dep_task);
  }
}

}  // namespace tora::sim
