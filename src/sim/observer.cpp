#include "sim/observer.hpp"

#include <ostream>

#include "util/csv.hpp"

namespace tora::sim {

CsvTraceObserver::CsvTraceObserver(std::ostream& out) : out_(out) {
  out_ << "time,event,task,worker,cores,memory_mb,disk_mb\n";
}

void CsvTraceObserver::row(SimTime t, const char* event, std::int64_t task,
                           std::int64_t worker,
                           const core::ResourceVector* alloc) {
  util::CsvWriter csv(out_);
  csv.field(t).field(event);
  if (task >= 0) csv.field(static_cast<long long>(task));
  else csv.field("");
  if (worker >= 0) csv.field(static_cast<long long>(worker));
  else csv.field("");
  if (alloc != nullptr) {
    csv.field(alloc->cores()).field(alloc->memory_mb()).field(alloc->disk_mb());
  } else {
    csv.field("").field("").field("");
  }
  csv.end_row();
  ++rows_;
}

void CsvTraceObserver::on_task_submitted(SimTime t, std::uint64_t task) {
  row(t, "submit", static_cast<std::int64_t>(task), -1, nullptr);
}

void CsvTraceObserver::on_attempt_started(SimTime t, std::uint64_t task,
                                          std::uint64_t worker,
                                          const core::ResourceVector& alloc) {
  row(t, "start", static_cast<std::int64_t>(task),
      static_cast<std::int64_t>(worker), &alloc);
}

void CsvTraceObserver::on_attempt_failed(SimTime t, std::uint64_t task,
                                         unsigned /*exceeded_mask*/) {
  row(t, "exhausted", static_cast<std::int64_t>(task), -1, nullptr);
}

void CsvTraceObserver::on_task_completed(SimTime t, std::uint64_t task) {
  row(t, "complete", static_cast<std::int64_t>(task), -1, nullptr);
}

void CsvTraceObserver::on_task_fatal(SimTime t, std::uint64_t task) {
  row(t, "fatal", static_cast<std::int64_t>(task), -1, nullptr);
}

void CsvTraceObserver::on_task_evicted(SimTime t, std::uint64_t task,
                                       std::uint64_t worker) {
  row(t, "evict", static_cast<std::int64_t>(task),
      static_cast<std::int64_t>(worker), nullptr);
}

void CsvTraceObserver::on_worker_joined(SimTime t, std::uint64_t worker) {
  row(t, "worker_join", -1, static_cast<std::int64_t>(worker), nullptr);
}

void CsvTraceObserver::on_worker_left(SimTime t, std::uint64_t worker) {
  row(t, "worker_leave", -1, static_cast<std::int64_t>(worker), nullptr);
}

}  // namespace tora::sim
