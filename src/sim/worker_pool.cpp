#include "sim/worker_pool.hpp"

#include <stdexcept>

#include "util/bytes.hpp"

namespace tora::sim {

std::uint64_t WorkerPool::add_worker() { return add_worker(capacity_); }

std::uint64_t WorkerPool::add_worker(const core::ResourceVector& capacity) {
  const std::uint64_t id = next_id_++;
  workers_.emplace(id, Worker(id, capacity));
  return id;
}

std::vector<std::uint64_t> WorkerPool::remove_worker(std::uint64_t id) {
  const auto it = workers_.find(id);
  if (it == workers_.end()) {
    throw std::logic_error("WorkerPool: removing unknown worker");
  }
  std::vector<std::uint64_t> tasks(it->second.running_tasks().begin(),
                                   it->second.running_tasks().end());
  workers_.erase(it);
  return tasks;
}

Worker& WorkerPool::worker(std::uint64_t id) {
  const auto it = workers_.find(id);
  if (it == workers_.end()) throw std::logic_error("WorkerPool: unknown worker");
  return it->second;
}

const Worker& WorkerPool::worker(std::uint64_t id) const {
  const auto it = workers_.find(id);
  if (it == workers_.end()) throw std::logic_error("WorkerPool: unknown worker");
  return it->second;
}

namespace {

/// Normalized slack remaining on `w` after hypothetically placing `alloc`:
/// the sum over spatial dimensions of free-after-placement as a fraction of
/// the worker's capacity. Smaller = tighter fit.
double slack_after(const Worker& w, const core::ResourceVector& alloc) {
  double slack = 0.0;
  const core::ResourceVector free = w.free();
  for (core::ResourceKind k : core::kManagedResources) {
    if (w.capacity()[k] > 0.0) {
      slack += (free[k] - alloc[k]) / w.capacity()[k];
    }
  }
  return slack;
}

}  // namespace

std::optional<std::uint64_t> WorkerPool::find_worker_for(
    const core::ResourceVector& alloc, Placement placement,
    std::optional<std::uint64_t> exclude) const {
  std::optional<std::uint64_t> best;
  double best_slack = 0.0;
  for (const auto& [id, w] : workers_) {
    if (exclude && id == *exclude) continue;
    if (w.draining() || !w.can_fit(alloc)) continue;
    if (placement == Placement::FirstFit) return id;
    const double slack = slack_after(w, alloc);
    const bool better = placement == Placement::BestFit ? slack < best_slack
                                                        : slack > best_slack;
    if (!best || better) {
      best = id;
      best_slack = slack;
    }
  }
  return best;
}

std::size_t WorkerPool::running_attempts() const noexcept {
  std::size_t n = 0;
  for (const auto& [id, w] : workers_) n += w.running_count();
  return n;
}

void WorkerPool::save_state(util::ByteWriter& w) const {
  w.u64(next_id_);
  w.u64(workers_.size());
  for (const auto& [id, worker] : workers_) worker.save_state(w);
}

void WorkerPool::load_state(util::ByteReader& r) {
  next_id_ = r.u64();
  const std::uint64_t n = r.u64();
  workers_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    Worker worker = Worker::load_state(r);
    if (worker.id() >= next_id_) {
      throw std::runtime_error("WorkerPool: snapshot worker id out of range");
    }
    workers_.emplace(worker.id(), std::move(worker));
  }
}

}  // namespace tora::sim
