#pragma once

#include <span>

#include "core/resources.hpp"
#include "core/task.hpp"

namespace tora::sim {

/// Resource-enforcement model of the paper's worker (§II-B assumption 4):
/// the worker monitors a task's consumption and kills it the moment any
/// managed dimension exceeds its allocation.
///
/// `attempt_runtime` computes how long an attempt runs:
///  * a covering allocation runs the full `duration_s`;
///  * an under-allocated attempt is killed when the task's consumption ramp
///    (TaskSpec::Ramp) first crosses the allocation in any exceeded spatial
///    dimension, or at the wall-time limit if TimeS is managed and exceeded
///    — whichever happens first;
///  * `monitor_interval_s` > 0 models sampling-based monitoring (standard
///    OS-metric polling): the kill lands on the next sample boundary after
///    the crossing, so a coarse monitor lets a task overrun slightly longer
///    (and waste more). 0 means continuous (instant) enforcement.
///
/// The returned runtime is always in (0, duration_s].
double attempt_runtime(const core::TaskSpec& task,
                       const core::ResourceVector& alloc,
                       std::span<const core::ResourceKind> managed,
                       double monitor_interval_s = 0.0);

/// The instant at which one spatial dimension's consumption ramp crosses an
/// allocation below its peak (helper for attempt_runtime; exposed for
/// tests). Requires demand > alloc >= 0.
double ramp_crossing_time(core::TaskSpec::Ramp ramp, double demand,
                          double alloc, double duration_s,
                          double peak_fraction);

}  // namespace tora::sim
