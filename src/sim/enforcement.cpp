#include "sim/enforcement.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tora::sim {

using core::ResourceKind;
using core::TaskSpec;

double ramp_crossing_time(TaskSpec::Ramp ramp, double demand, double alloc,
                          double duration_s, double peak_fraction) {
  if (!(demand > alloc)) {
    throw std::invalid_argument("ramp_crossing_time: demand must exceed alloc");
  }
  const double peak_time = peak_fraction * duration_s;
  switch (ramp) {
    case TaskSpec::Ramp::Step:
      // Below-peak consumption until the step; the step itself crosses.
      return peak_time;
    case TaskSpec::Ramp::Linear:
      // consumption(t) = demand * t / peak_time crosses alloc at
      // t = peak_time * alloc / demand (alloc < demand => t < peak_time).
      return peak_time * (alloc / demand);
    case TaskSpec::Ramp::Constant:
      return 0.0;  // over the limit from the first instant
  }
  return peak_time;
}

double attempt_runtime(const TaskSpec& task, const core::ResourceVector& alloc,
                       std::span<const ResourceKind> managed,
                       double monitor_interval_s) {
  if (monitor_interval_s < 0.0) {
    throw std::invalid_argument("attempt_runtime: negative monitor interval");
  }
  const unsigned exceeded = task.demand.exceeded_mask(alloc, managed);
  if (exceeded == 0) return task.duration_s;

  double kill = task.duration_s;
  bool spatial_kill = false;
  for (ResourceKind k : managed) {
    if (k == ResourceKind::TimeS) continue;
    if (!(exceeded & core::resource_bit(k))) continue;
    spatial_kill = true;
    kill = std::min(kill, ramp_crossing_time(task.ramp, task.demand[k],
                                             alloc[k], task.duration_s,
                                             task.peak_fraction));
  }
  if (spatial_kill && monitor_interval_s > 0.0) {
    // Sampled monitoring: the violation is noticed at the next sample tick.
    kill = std::ceil(kill / monitor_interval_s) * monitor_interval_s;
  }
  // Wall-time enforcement is exact (the batch system owns the clock).
  if (exceeded & core::resource_bit(ResourceKind::TimeS)) {
    kill = std::min(kill, alloc[ResourceKind::TimeS]);
  }
  kill = std::min(kill, task.duration_s);
  // Keep runtimes strictly positive so retry chains always advance the
  // simulated clock (a Constant ramp under continuous monitoring would
  // otherwise yield zero-length attempts).
  return std::max(kill, 1e-3);
}

}  // namespace tora::sim
