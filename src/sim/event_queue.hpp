#pragma once

#include <cstdint>
#include <vector>

namespace tora::util {
class ByteWriter;
class ByteReader;
}  // namespace tora::util

namespace tora::sim {

/// Discrete-event clock value, seconds since simulation start.
using SimTime = double;

/// Event kinds the simulator processes. Payload fields are interpreted per
/// kind (see Simulation::step).
enum class EventKind {
  TaskSubmit,     ///< task `a` becomes ready for dispatch
  AttemptFinish,  ///< attempt of task `a` on worker `b` reaches its end
  WorkerJoin,     ///< a new opportunistic worker appears
  WorkerLeave,    ///< worker `a` is evicted from the pool
  StormBegin,     ///< churn burst: a fraction of the pool is evicted at once
  StormEnd,       ///< the burst window closes (joins resume)
  SpecCheck,      ///< is task `a`'s attempt a straggler? (epoch-validated)
  SpecFinish,     ///< speculative duplicate of `a` on `b` ends (token in epoch)
  DeadlineKill,   ///< adaptive deadline for task `a`'s attempt expires
};

struct Event {
  SimTime time = 0.0;
  EventKind kind = EventKind::TaskSubmit;
  std::uint64_t a = 0;  ///< task id or worker id (per kind)
  std::uint64_t b = 0;  ///< worker id for AttemptFinish
  /// Attempt epoch: an AttemptFinish is stale (ignored) if the task has
  /// been rescheduled since it was enqueued (eviction cancels attempts).
  std::uint64_t epoch = 0;
  /// Insertion sequence; breaks time ties deterministically (FIFO).
  std::uint64_t seq = 0;
};

/// Min-heap of events ordered by (time, seq). Deterministic: equal-time
/// events pop in insertion order. Stored as a raw vector + std::push_heap /
/// std::pop_heap (not std::priority_queue) so the pending-event set can be
/// serialized for simulation snapshot/resume: save/load round-trip the heap
/// array verbatim — internal layout included — so a resumed run pops events
/// in exactly the original order.
class EventQueue {
 public:
  void push(SimTime time, EventKind kind, std::uint64_t a = 0,
            std::uint64_t b = 0, std::uint64_t epoch = 0);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Pops the earliest event. Requires !empty().
  Event pop();

  /// Time of the earliest event. Requires !empty().
  SimTime next_time() const { return heap_.front().time; }

  /// Snapshot/restore of the full queue state (heap array in storage order
  /// plus the tie-breaking sequence counter).
  void save_state(util::ByteWriter& w) const;
  void load_state(util::ByteReader& r);

 private:
  struct Later {
    bool operator()(const Event& x, const Event& y) const noexcept {
      if (x.time != y.time) return x.time > y.time;
      return x.seq > y.seq;
    }
  };
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tora::sim
