#include "sim/worker.hpp"

#include <stdexcept>

namespace tora::sim {

using core::ResourceKind;
using core::ResourceVector;

Worker::Worker(std::uint64_t id, const ResourceVector& capacity)
    : id_(id), capacity_(capacity) {
  for (ResourceKind k : core::kManagedResources) {
    if (!(capacity[k] > 0.0)) {
      throw std::invalid_argument("Worker: capacity must be positive");
    }
  }
}

ResourceVector Worker::free() const noexcept {
  return capacity_ - committed_;
}

bool Worker::can_fit(const ResourceVector& alloc) const noexcept {
  // A small relative epsilon absorbs accumulated floating-point error from
  // repeated commit/release cycles.
  constexpr double kEps = 1e-9;
  for (ResourceKind k : core::kManagedResources) {
    if (committed_[k] + alloc[k] > capacity_[k] * (1.0 + kEps)) return false;
  }
  return true;
}

void Worker::start(std::uint64_t task_id, const ResourceVector& alloc) {
  if (!can_fit(alloc)) {
    throw std::logic_error("Worker: allocation does not fit");
  }
  if (!running_.insert(task_id).second) {
    throw std::logic_error("Worker: task already running here");
  }
  committed_ += alloc;
}

void Worker::finish(std::uint64_t task_id, const ResourceVector& alloc) {
  if (running_.erase(task_id) == 0) {
    throw std::logic_error("Worker: finishing a task that is not running here");
  }
  committed_ -= alloc;
  // Clamp tiny negative residue from floating-point arithmetic.
  for (ResourceKind k : core::kManagedResources) {
    if (committed_[k] < 0.0 && committed_[k] > -1e-6) committed_[k] = 0.0;
  }
  if (!committed_.non_negative()) {
    throw std::logic_error("Worker: commitment went negative");
  }
}

}  // namespace tora::sim
