#include "sim/worker.hpp"

#include <stdexcept>

#include "util/bytes.hpp"

namespace tora::sim {

using core::ResourceKind;
using core::ResourceVector;

Worker::Worker(std::uint64_t id, const ResourceVector& capacity)
    : id_(id), capacity_(capacity) {
  for (ResourceKind k : core::kManagedResources) {
    if (!(capacity[k] > 0.0)) {
      throw std::invalid_argument("Worker: capacity must be positive");
    }
  }
}

ResourceVector Worker::free() const noexcept {
  return capacity_ - committed_;
}

bool Worker::can_fit(const ResourceVector& alloc) const noexcept {
  // A small relative epsilon absorbs accumulated floating-point error from
  // repeated commit/release cycles.
  constexpr double kEps = 1e-9;
  for (ResourceKind k : core::kManagedResources) {
    if (committed_[k] + alloc[k] > capacity_[k] * (1.0 + kEps)) return false;
  }
  return true;
}

void Worker::start(std::uint64_t task_id, const ResourceVector& alloc) {
  if (!can_fit(alloc)) {
    throw std::logic_error("Worker: allocation does not fit");
  }
  if (!running_.insert(task_id).second) {
    throw std::logic_error("Worker: task already running here");
  }
  committed_ += alloc;
}

void Worker::finish(std::uint64_t task_id, const ResourceVector& alloc) {
  if (running_.erase(task_id) == 0) {
    throw std::logic_error("Worker: finishing a task that is not running here");
  }
  committed_ -= alloc;
  // Clamp tiny negative residue from floating-point arithmetic.
  for (ResourceKind k : core::kManagedResources) {
    if (committed_[k] < 0.0 && committed_[k] > -1e-6) committed_[k] = 0.0;
  }
  if (!committed_.non_negative()) {
    throw std::logic_error("Worker: commitment went negative");
  }
}

void Worker::save_state(util::ByteWriter& w) const {
  w.u64(id_);
  for (ResourceKind k : core::kAllResources) w.f64(capacity_[k]);
  for (ResourceKind k : core::kAllResources) w.f64(committed_[k]);
  w.u64(running_.size());
  for (std::uint64_t task_id : running_) w.u64(task_id);
  w.u8(draining_ ? 1 : 0);
}

Worker Worker::load_state(util::ByteReader& r) {
  const std::uint64_t id = r.u64();
  ResourceVector capacity;
  for (ResourceKind k : core::kAllResources) capacity[k] = r.f64();
  Worker w(id, capacity);
  for (ResourceKind k : core::kAllResources) w.committed_[k] = r.f64();
  const std::uint64_t running = r.u64();
  for (std::uint64_t i = 0; i < running; ++i) w.running_.insert(r.u64());
  w.draining_ = r.u8() != 0;
  return w;
}

}  // namespace tora::sim
