#include "sim/event_queue.hpp"

#include <stdexcept>

namespace tora::sim {

void EventQueue::push(SimTime time, EventKind kind, std::uint64_t a,
                      std::uint64_t b, std::uint64_t epoch) {
  if (time < 0.0) throw std::invalid_argument("EventQueue: negative time");
  Event e;
  e.time = time;
  e.kind = kind;
  e.a = a;
  e.b = b;
  e.epoch = epoch;
  e.seq = next_seq_++;
  heap_.push(e);
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue: pop on empty queue");
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace tora::sim
