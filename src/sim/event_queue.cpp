#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/bytes.hpp"

namespace tora::sim {

void EventQueue::push(SimTime time, EventKind kind, std::uint64_t a,
                      std::uint64_t b, std::uint64_t epoch) {
  if (time < 0.0) throw std::invalid_argument("EventQueue: negative time");
  Event e;
  e.time = time;
  e.kind = kind;
  e.a = a;
  e.b = b;
  e.epoch = epoch;
  e.seq = next_seq_++;
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue: pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event e = heap_.back();
  heap_.pop_back();
  return e;
}

void EventQueue::save_state(util::ByteWriter& w) const {
  w.u64(next_seq_);
  w.u64(heap_.size());
  for (const Event& e : heap_) {
    w.f64(e.time);
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.u64(e.a);
    w.u64(e.b);
    w.u64(e.epoch);
    w.u64(e.seq);
  }
}

void EventQueue::load_state(util::ByteReader& r) {
  next_seq_ = r.u64();
  const std::uint64_t n = r.u64();
  heap_.clear();
  heap_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Event e;
    e.time = r.f64();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(EventKind::WorkerLeave)) {
      throw std::runtime_error("EventQueue: unknown event kind in snapshot");
    }
    e.kind = static_cast<EventKind>(kind);
    e.a = r.u64();
    e.b = r.u64();
    e.epoch = r.u64();
    e.seq = r.u64();
    heap_.push_back(e);
  }
  // The array was saved in heap storage order, so it is already a valid
  // heap; nothing to re-establish.
}

}  // namespace tora::sim
