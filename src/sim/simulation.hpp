#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/lifecycle/dispatch_core.hpp"
#include "core/metrics.hpp"
#include "core/resilience/resilience.hpp"
#include "core/resources.hpp"
#include "core/task.hpp"
#include "core/task_allocator.hpp"
#include "sim/event_queue.hpp"
#include "sim/observer.hpp"
#include "sim/worker_pool.hpp"
#include "util/rng.hpp"

namespace tora::sim {

/// A heterogeneous-pool entry: workers of this capacity join with
/// probability proportional to `weight`.
struct WorkerProfile {
  double weight = 1.0;
  core::ResourceVector capacity;
};

/// Simulation parameters. Defaults reproduce the paper's §V-A setup:
/// opportunistic workers of (16 cores, 64 GB memory, 64 GB disk), 20–50 of
/// them alive at any time.
struct SimConfig {
  core::ResourceVector worker_capacity{16.0, 64.0 * 1024.0, 64.0 * 1024.0, 0.0};
  /// Optional heterogeneous pool: when non-empty, each joining worker draws
  /// its capacity from these profiles (weighted); `worker_capacity` is then
  /// only the allocator clamp ceiling and should equal the element-wise max
  /// of the profiles so every clamped allocation fits SOME worker kind. At
  /// least one profile must match that maximum or oversized tasks can wait
  /// forever.
  std::vector<WorkerProfile> worker_profiles;
  /// How the scheduler picks among workers that fit (paper: Work Queue uses
  /// first-fit-style matching; BestFit/WorstFit are ablation knobs).
  Placement placement = Placement::FirstFit;
  ChurnConfig churn;
  /// Tasks become ready at id * submit_interval_s (0 = all ready at t=0,
  /// modelling a manager that floods the scheduler with ready tasks).
  double submit_interval_s = 0.0;
  std::uint64_t seed = 42;
  /// Safety valve: a task exceeding this many execution attempts is fatal.
  std::size_t max_attempts_per_task = 64;

  /// Worker resource-monitor sampling interval (sim/enforcement.hpp).
  /// 0 = continuous enforcement; > 0 = OS-metric polling cadence, letting
  /// violations overrun to the next sample boundary.
  double monitor_interval_s = 0.0;

  /// How record significance is assigned on completion. TaskId follows the
  /// paper (§V-A: significance = task id, so recent submissions dominate);
  /// Constant disables recency weighting (the ablation baseline).
  enum class SignificanceMode { TaskId, Constant };
  SignificanceMode significance = SignificanceMode::TaskId;

  /// Churn-adaptive resilience layer (core/resilience/): adaptive deadlines,
  /// speculative re-dispatch and storm degradation. Default-off; every
  /// feature is additionally gated on churn evidence (at least one eviction
  /// observed), so a calm run's waste and makespan are unchanged even with
  /// the layer enabled. The simulator never applies reliability scoring —
  /// simulated workers vanish on eviction and never return, so there is no
  /// worker identity to score (the protocol runtime applies it).
  core::resilience::ResilienceConfig resilience;
};

/// Lifecycle of a task inside the simulator — the shared machine's phase
/// (the simulator keeps no task state machine of its own).
using TaskStatus = core::lifecycle::TaskPhase;

/// Aggregate outcome of one simulated workflow run.
struct SimResult {
  core::WasteAccounting accounting;
  double makespan_s = 0.0;
  std::size_t tasks_completed = 0;
  std::size_t tasks_fatal = 0;
  /// Eviction statistics. Evicted attempts are requeued with the SAME
  /// allocation and their cost is tracked separately — the paper's waste
  /// metric charges only allocation-induced failures to the algorithm.
  std::size_t evictions = 0;
  core::ResourceVector evicted_alloc_seconds;
  std::size_t total_joins = 0;
  std::size_t total_leaves = 0;
  std::size_t peak_workers = 0;
  /// Time-integrals over the run: Σ committed[k]·dt and Σ capacity[k]·dt
  /// across the alive pool. Their ratio is the pool utilization — the
  /// administrator-side metric the paper's introduction motivates
  /// (opportunistic workers soaking up idle capacity).
  core::ResourceVector committed_integral;
  core::ResourceVector capacity_integral;
  /// Resilience-layer activity (all zero when the layer is disabled or
  /// never triggered). Speculative waste itself is a WasteAccounting column
  /// (accounting.breakdown(k).speculative).
  core::ResilienceCounters resilience;

  /// Fraction of the pool's capacity-time that was committed to tasks.
  /// 0 when nothing was observed.
  double pool_utilization(core::ResourceKind kind) const {
    return capacity_integral[kind] > 0.0
               ? committed_integral[kind] / capacity_integral[kind]
               : 0.0;
  }
};

/// Discrete-event simulator of the paper's dynamic workflow system (Fig. 1
/// and Fig. 3a): ready tasks are allocated by the TaskAllocator at dispatch
/// time, placed first-fit onto opportunistic workers, killed at the moment
/// they exceed any allocated dimension, retried with a bigger allocation,
/// and reported back into the allocator's bucketing state on success.
///
/// The task state machine itself — readiness, allocation caching, retry
/// escalation, fatality cascades, the waste/eviction accounting split —
/// lives in core::lifecycle::DispatchCore, shared verbatim with
/// proto::ProtocolManager. This class contributes only what is genuinely
/// simulated: the event clock, worker churn, placement, enforcement timing,
/// and per-attempt epochs that invalidate stale finish events.
class Simulation final : private core::lifecycle::RuntimeHooks {
 public:
  /// `tasks` must outlive the simulation; ids must equal the index order
  /// produced by the workload generators (0-based, dense).
  Simulation(std::span<const core::TaskSpec> tasks,
             core::TaskAllocator& allocator, SimConfig config);

  /// Runs to completion of every task and returns the aggregate result.
  /// Call at most once (a load_state()-restored simulation may call it once
  /// to finish the restored run).
  SimResult run();

  /// Processes exactly one event (bootstrapping the pool and the submit
  /// schedule on the first call); returns false once every task reached a
  /// terminal phase. Stepping manually lets long-running drivers snapshot
  /// the simulation between events; run() is equivalent to stepping until
  /// false and then reading result().
  bool step();

  /// Aggregate result so far. Totals owned by the lifecycle core
  /// (accounting, completion/fatal counts, evictions) are synced on read,
  /// so this is valid mid-run as well as after run().
  SimResult result() const;

  /// Serializes the complete mid-run state: allocator (bit-exact, including
  /// per-policy sampler state), lifecycle core, pending event heap, worker
  /// pool, per-task timing/epochs, the clock, the RNG and partial results.
  /// Restoring into a fresh Simulation (same tasks/config, freshly
  /// constructed allocator of the same policy+config+seed) and resuming
  /// produces bit-for-bit the run the saved one would have produced.
  void save_state(util::ByteWriter& w) const;

  /// Restores a save_state() capture. Must be called before the first
  /// step()/run(); the allocator passed at construction is overwritten
  /// (policy name and config hash are validated; mismatch throws).
  void load_state(util::ByteReader& r);

  /// Attaches a lifecycle observer (nullptr to detach). Must be set before
  /// run(); the observer must outlive the simulation.
  void set_observer(SimObserver* observer) noexcept { observer_ = observer; }

  /// The shared lifecycle machine (parity tests and diagnostics).
  const core::lifecycle::DispatchCore& core() const noexcept { return core_; }

 private:
  /// Simulator-only per-task state, parallel to the core's TaskEntry.
  struct TimingState {
    std::uint64_t epoch = 0;  ///< bumped when a running attempt dies
    SimTime attempt_start = 0.0;
    /// The enforcement model's runtime for the in-flight attempt, kept so a
    /// failure reports exactly what the model computed (deriving it back
    /// from event times would reintroduce floating-point round-trip error
    /// and break bit-parity with the protocol runtime, whose workers report
    /// the same model's output).
    SimTime attempt_runtime = 0.0;
  };

  /// Speculative-duplicate state, parallel to TimingState. The duplicate is
  /// not a core-lifecycle attempt: it exists only in the simulator (and the
  /// worker it occupies) until it is promoted to primary or cancelled.
  struct SpecState {
    bool active = false;
    /// The duplicate took over as the primary attempt (the original was
    /// evicted); its SpecFinish now carries the attempt outcome.
    bool promoted = false;
    std::uint64_t worker = 0;
    SimTime start = 0.0;
    SimTime runtime = 0.0;
    /// Invalidates in-flight SpecFinish/SpecCheck events on cancellation
    /// (the simulator's epoch pattern, scoped to the duplicate).
    std::uint64_t token = 0;
  };

  void task_fatal(std::uint64_t task_id) override;  // RuntimeHooks
  void task_completed(std::uint64_t task_id,
                      const core::ResourceVector& measured_peak,
                      double runtime_s) override;  // RuntimeHooks

  void bootstrap();
  void handle(const Event& e);
  void on_submit(std::uint64_t task_id);
  void on_attempt_finish(const Event& e);
  void on_worker_join();
  void on_worker_leave(std::uint64_t worker_id);
  void dispatch();
  void complete_task(std::uint64_t task_id);
  void fail_attempt(std::uint64_t task_id, SimTime runtime);
  void schedule_worker_lifetime(std::uint64_t worker_id);
  std::uint64_t spawn_worker();

  // Resilience layer.
  bool churn_evidence() const noexcept { return core_.evictions() > 0; }
  double deadline_widen() const noexcept;
  void evict_worker(std::uint64_t worker_id);
  void cancel_speculation(std::uint64_t task_id);
  void on_spec_check(const Event& e);
  void on_spec_finish(const Event& e);
  void on_deadline_kill(const Event& e);
  void on_storm_begin();
  void schedule_resilience_events(std::uint64_t task_id);

  std::span<const core::TaskSpec> tasks_;
  core::TaskAllocator& allocator_;
  SimConfig config_;
  core::lifecycle::DispatchCore core_;
  util::Rng rng_;
  EventQueue events_;
  WorkerPool pool_;
  std::vector<TimingState> timing_;
  SimTime now_ = 0.0;
  SimResult result_;
  bool started_ = false;
  bool finished_ = false;
  SimObserver* observer_ = nullptr;

  // Resilience layer (inert unless config_.resilience enables features).
  core::resilience::DeadlineTracker deadlines_;
  core::resilience::StormDetector storms_;
  std::vector<SpecState> spec_;
  /// Adaptive-deadline kills already suffered per task; each strike doubles
  /// the next effective deadline, so a task longer than its category's
  /// deadline still makes progress.
  std::vector<std::uint32_t> deadline_strikes_;
  core::ResilienceCounters res_counters_;
  bool storm_active_ = false;
};

}  // namespace tora::sim
