#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/resources.hpp"
#include "sim/worker.hpp"

namespace tora::util {
class ByteWriter;
class ByteReader;
}  // namespace tora::util

namespace tora::sim {

/// Churn model for the opportunistic pool (paper §V-A: "20 to 50 workers
/// depending on the availability of the local HTCondor cluster"). Joins are
/// a Poisson process; each worker's lifetime is exponential. The pool is
/// bounded: joins are dropped at `max_workers`, departures are deferred at
/// `min_workers`.
struct ChurnConfig {
  bool enabled = true;
  std::size_t initial_workers = 35;
  std::size_t min_workers = 20;
  std::size_t max_workers = 50;
  double mean_interarrival_s = 120.0;
  double mean_lifetime_s = 3600.0;

  /// Eviction-storm bursts on top of the Poisson churn (0 = no storms, the
  /// default — storms never alter an existing scenario unless asked for).
  /// Every `storm_interval_s` a burst begins: each alive worker is evicted
  /// with probability `storm_evict_fraction` (min_workers is ignored — the
  /// burst models a scavenger losing its borrowed cluster), and joins are
  /// suppressed for `storm_duration_s`.
  double storm_interval_s = 0.0;
  double storm_duration_s = 0.0;
  double storm_evict_fraction = 0.0;
};

/// How the scheduler chooses among workers that can fit an allocation.
/// All policies break ties by ascending worker id, so placement is
/// deterministic.
enum class Placement {
  FirstFit,  ///< lowest-id worker that fits (the default)
  BestFit,   ///< worker with the least normalized slack left after placing
  WorstFit,  ///< worker with the most normalized slack left after placing
};

/// Container for the alive workers; placement queries are deterministic.
/// Workers may be heterogeneous: add_worker takes an optional per-worker
/// capacity (defaulting to the pool's base capacity).
class WorkerPool {
 public:
  explicit WorkerPool(core::ResourceVector worker_capacity)
      : capacity_(worker_capacity) {}

  const core::ResourceVector& worker_capacity() const noexcept {
    return capacity_;
  }

  /// Adds a worker with the pool's base capacity; returns its id.
  /// Ids are never reused.
  std::uint64_t add_worker();

  /// Adds a worker with an explicit capacity (heterogeneous pools).
  std::uint64_t add_worker(const core::ResourceVector& capacity);

  /// Removes a worker; returns the task ids that were running on it (the
  /// caller evicts/requeues them). Throws if the id is not alive.
  std::vector<std::uint64_t> remove_worker(std::uint64_t id);

  bool alive(std::uint64_t id) const noexcept { return workers_.count(id) > 0; }
  Worker& worker(std::uint64_t id);
  const Worker& worker(std::uint64_t id) const;

  std::size_t size() const noexcept { return workers_.size(); }

  /// A non-draining worker that fits `alloc`, chosen per `placement`.
  /// `exclude` is skipped (speculative duplicates must not land on the
  /// worker already running the primary attempt).
  std::optional<std::uint64_t> find_worker_for(
      const core::ResourceVector& alloc,
      Placement placement = Placement::FirstFit,
      std::optional<std::uint64_t> exclude = std::nullopt) const;

  /// Sum of running attempts across alive workers.
  std::size_t running_attempts() const noexcept;

  const std::map<std::uint64_t, Worker>& workers() const noexcept {
    return workers_;
  }

  /// Snapshot/restore for simulation resume: the alive-worker map (each
  /// worker's full state) and the never-reused id counter.
  void save_state(util::ByteWriter& w) const;
  void load_state(util::ByteReader& r);

 private:
  core::ResourceVector capacity_;
  std::map<std::uint64_t, Worker> workers_;
  std::uint64_t next_id_ = 0;
};

}  // namespace tora::sim
