// Entry point for the `tora` command-line driver. All logic lives in
// cli.cpp so the test suite can exercise it in-process.

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return tora::cli::run_cli(args, std::cout, std::cerr);
}
