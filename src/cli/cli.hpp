#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/resilience/resilience.hpp"
#include "sim/worker_pool.hpp"

namespace tora::cli {

/// Parsed command-line options for the `tora` driver binary.
///
/// Subcommands:
///   run    — simulate one workflow under one policy, print the report
///   proto  — drive the manager/worker wire protocol (inproc or TCP)
///   grid   — the full Fig. 5-style AWE grid
///   trace  — dump a generated workload as CSV
///   plot   — render an AWE CSV (fig5_awe.csv / `grid --out`) as ASCII bars
///   list   — print known policies and workflows
struct Options {
  std::string command;  // "run"|"proto"|"grid"|"trace"|"plot"|"list"|"help"
  std::string workflow;             // name or path to a trace CSV
  std::string policy = "exhaustive_bucketing";
  std::string csv_path;             // plot: input CSV
  std::string resource_filter;      // plot: e.g. "memory_mb"
  std::string workflow_filter;      // plot: e.g. "topeft"
  std::vector<std::string> workflows;  // grid
  std::vector<std::string> policies;   // grid
  std::uint64_t seed = 7;
  std::size_t workers = 35;
  bool churn = true;
  sim::Placement placement = sim::Placement::FirstFit;
  double submit_interval_s = 5.0;
  std::size_t replications = 1;     // grid: >1 prints mean +/- sd cells
  std::string output_path;  // trace: destination; run: optional CSV metrics
  std::string trace_log;    // run: optional per-event CSV log
  /// Churn-adaptive resilience layer (--deadline-quantile, --speculation,
  /// --storm-threshold, --probation). Validated at parse time, so a bad
  /// knob fails before any work starts.
  core::resilience::ResilienceConfig resilience;
  /// Eviction-storm scenario knobs for the simulated pool (--storm-interval
  /// / --storm-duration / --storm-fraction).
  double storm_interval_s = 0.0;
  double storm_duration_s = 0.0;
  double storm_fraction = 0.0;
  /// proto: "inproc" pumps manager and agents over in-process channels;
  /// "tcp" runs the same pair over loopback sockets through the session
  /// layer. The TCP-only knobs (--listen / --backoff-*) contradict
  /// --transport inproc and are rejected at parse time.
  std::string transport = "inproc";
  std::string tcp_host = "127.0.0.1";  // --listen HOST:PORT
  std::uint16_t tcp_port = 0;          // 0 picks an ephemeral port
  double tcp_backoff_base = 1.0;       // --backoff-base
  double tcp_backoff_cap = 16.0;       // --backoff-cap
};

/// Parses argv (excluding argv[0]). Throws std::invalid_argument with a
/// user-facing message on malformed input.
Options parse_options(const std::vector<std::string>& args);

/// Splits a comma-separated list, dropping empty items.
std::vector<std::string> split_list(const std::string& csv);

/// Executes a parsed command, writing human output to `out`.
/// Returns a process exit code.
int run_command(const Options& opts, std::ostream& out);

/// Full driver: parse + execute, reporting errors on `err`.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

/// The usage/help text.
std::string usage();

}  // namespace tora::cli
