#include "cli/cli.hpp"

#include "cli/plot.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <ostream>
#include <stdexcept>

#include "core/registry.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "proto/manager.hpp"
#include "proto/net/tcp_runtime.hpp"
#include "sim/observer.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "workloads/trace.hpp"
#include "workloads/workload.hpp"

namespace tora::cli {

namespace {

std::uint64_t parse_u64(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("invalid value for ") + what +
                                ": '" + s + "'");
  }
}

double parse_f64(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("invalid value for ") + what +
                                ": '" + s + "'");
  }
}

// Splits "--listen HOST:PORT" into its parts; the port must be a decimal
// in [0, 65535] (0 asks the kernel for an ephemeral port).
void parse_listen(const std::string& s, std::string* host,
                  std::uint16_t* port) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) {
    throw std::invalid_argument("invalid --listen '" + s +
                                "' (expected HOST:PORT)");
  }
  const std::uint64_t p = parse_u64(s.substr(colon + 1), "--listen port");
  if (p > 65535) {
    throw std::invalid_argument("invalid --listen port '" + s.substr(colon + 1) +
                                "' (expected 0..65535)");
  }
  *host = s.substr(0, colon);
  *port = static_cast<std::uint16_t>(p);
}

sim::Placement parse_placement(const std::string& s) {
  if (s == "first") return sim::Placement::FirstFit;
  if (s == "best") return sim::Placement::BestFit;
  if (s == "worst") return sim::Placement::WorstFit;
  throw std::invalid_argument("invalid --placement '" + s +
                              "' (expected first|best|worst)");
}

bool looks_like_path(const std::string& s) {
  return s.find('/') != std::string::npos ||
         (s.size() > 4 && s.substr(s.size() - 4) == ".csv");
}

workloads::Workload load_workflow(const Options& opts) {
  if (looks_like_path(opts.workflow)) {
    return workloads::load_trace(opts.workflow);
  }
  return workloads::make_workload(opts.workflow, opts.seed);
}

exp::ExperimentConfig experiment_config(const Options& opts) {
  exp::ExperimentConfig cfg;
  cfg.workload_seed = opts.seed;
  cfg.sim.seed = opts.seed;
  cfg.sim.churn.enabled = opts.churn;
  cfg.sim.churn.initial_workers = opts.workers;
  if (!opts.churn) {
    cfg.sim.churn.min_workers = opts.workers;
    cfg.sim.churn.max_workers = opts.workers;
  }
  cfg.sim.placement = opts.placement;
  cfg.sim.submit_interval_s = opts.submit_interval_s;
  cfg.sim.resilience = opts.resilience;
  cfg.sim.churn.storm_interval_s = opts.storm_interval_s;
  cfg.sim.churn.storm_duration_s = opts.storm_duration_s;
  cfg.sim.churn.storm_evict_fraction = opts.storm_fraction;
  return cfg;
}

int cmd_plot(const Options& opts, std::ostream& out) {
  std::ifstream in(opts.csv_path);
  if (!in) throw std::runtime_error("cannot open CSV: " + opts.csv_path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::size_t charts = plot_awe_csv(out, buf.str(), opts.resource_filter,
                                          opts.workflow_filter);
  if (charts == 0) out << "no rows matched the filters\n";
  return 0;
}

int cmd_list(std::ostream& out) {
  out << "policies (paper order + extensions):\n";
  for (const auto& p : core::extended_policy_names()) out << "  " << p << "\n";
  out << "workflows:\n";
  for (const auto& w : workloads::all_workflow_names()) out << "  " << w << "\n";
  return 0;
}

int cmd_trace(const Options& opts, std::ostream& out) {
  const auto w = workloads::make_workload(opts.workflow, opts.seed);
  if (opts.output_path.empty()) {
    workloads::write_trace(out, w);
  } else {
    workloads::save_trace(opts.output_path, w);
    out << "wrote " << w.tasks.size() << " tasks to " << opts.output_path
        << "\n";
  }
  return 0;
}

int cmd_run(const Options& opts, std::ostream& out) {
  const workloads::Workload workload = load_workflow(opts);
  const exp::ExperimentConfig cfg = experiment_config(opts);

  core::TaskAllocator allocator = core::make_allocator(
      opts.policy, cfg.policy_seed, cfg.sim.worker_capacity, cfg.registry);
  sim::Simulation simulation(workload.tasks, allocator, cfg.sim);

  std::ofstream trace_stream;
  std::optional<sim::CsvTraceObserver> observer;
  if (!opts.trace_log.empty()) {
    trace_stream.open(opts.trace_log);
    if (!trace_stream) {
      throw std::runtime_error("cannot open trace log: " + opts.trace_log);
    }
    observer.emplace(trace_stream);
    simulation.set_observer(&*observer);
  }

  const sim::SimResult r = simulation.run();

  out << "workflow " << workload.name << " (" << workload.tasks.size()
      << " tasks) under " << opts.policy << "\n\n";
  exp::TextTable table({"resource", "AWE", "consumption", "allocation",
                        "fragmentation", "failed"});
  for (core::ResourceKind k : core::kManagedResources) {
    const auto& b = r.accounting.breakdown(k);
    table.add_row({std::string(core::to_string(k)),
                   exp::fmt_pct(r.accounting.awe(k)), exp::fmt(b.consumption, 0),
                   exp::fmt(b.allocation, 0),
                   exp::fmt(b.internal_fragmentation, 0),
                   exp::fmt(b.failed_allocation, 0)});
  }
  table.print(out);
  out << "\ntasks completed " << r.tasks_completed << ", fatal "
      << r.tasks_fatal << ", mean attempts "
      << exp::fmt(r.accounting.mean_attempts(), 2) << ", evictions "
      << r.evictions << ", makespan " << exp::fmt(r.makespan_s / 3600.0, 2)
      << " h\n";

  if (cfg.sim.resilience.enabled()) {
    double speculative = 0.0;
    for (core::ResourceKind k : core::kManagedResources) {
      speculative += r.accounting.breakdown(k).speculative;
    }
    out << "\nresilience (speculative waste " << exp::fmt(speculative, 0)
        << ", outside AWE):\n";
    exp::resilience_table(r.resilience).print(out);
  }

  if (!opts.output_path.empty()) {
    std::ofstream csv_file(opts.output_path);
    if (!csv_file) {
      throw std::runtime_error("cannot open output: " + opts.output_path);
    }
    util::CsvWriter csv(csv_file);
    csv.row({"resource", "awe", "consumption", "allocation",
             "internal_fragmentation", "failed_allocation"});
    for (core::ResourceKind k : core::kManagedResources) {
      const auto& b = r.accounting.breakdown(k);
      csv.field(core::to_string(k))
          .field(r.accounting.awe(k))
          .field(b.consumption)
          .field(b.allocation)
          .field(b.internal_fragmentation)
          .field(b.failed_allocation);
      csv.end_row();
    }
    out << "metrics written to " << opts.output_path << "\n";
  }
  if (observer) {
    out << "event log (" << observer->rows_written() << " rows) written to "
        << opts.trace_log << "\n";
  }
  return 0;
}

void print_proto_report(const Options& opts, const std::string& workflow_name,
                        std::size_t num_tasks, const proto::ProtocolRunResult& r,
                        std::ostream& out) {
  out << "workflow " << workflow_name << " (" << num_tasks << " tasks) under "
      << opts.policy << " over " << opts.transport << " transport\n\n";
  exp::TextTable table({"resource", "AWE", "consumption", "allocation",
                        "fragmentation", "failed"});
  for (core::ResourceKind k : core::kManagedResources) {
    const auto& b = r.accounting.breakdown(k);
    table.add_row({std::string(core::to_string(k)),
                   exp::fmt_pct(r.accounting.awe(k)), exp::fmt(b.consumption, 0),
                   exp::fmt(b.allocation, 0),
                   exp::fmt(b.internal_fragmentation, 0),
                   exp::fmt(b.failed_allocation, 0)});
  }
  table.print(out);
  out << "\ntasks completed " << r.tasks_completed << ", fatal "
      << r.tasks_fatal << ", rounds " << r.rounds << ", messages "
      << r.messages << ", bytes " << r.bytes << "\n";
}

int cmd_proto(const Options& opts, std::ostream& out) {
  const workloads::Workload workload = load_workflow(opts);
  const exp::ExperimentConfig cfg = experiment_config(opts);
  core::TaskAllocator allocator = core::make_allocator(
      opts.policy, cfg.policy_seed, cfg.sim.worker_capacity, cfg.registry);

  if (opts.transport == "tcp") {
    proto::net::TcpTransportConfig tcp;
    tcp.host = opts.tcp_host;
    tcp.port = opts.tcp_port;
    tcp.backoff_base = opts.tcp_backoff_base;
    tcp.backoff_cap = opts.tcp_backoff_cap;
    tcp.seed ^= opts.seed;
    proto::net::TcpProtocolRuntime rt(workload.tasks, allocator, opts.workers,
                                      cfg.sim.worker_capacity, tcp);
    const proto::net::TcpRunResult r = rt.run();
    print_proto_report(opts, workload.name, workload.tasks.size(), r, out);
    const auto& t = r.transport;
    out << "transport: connections " << t.connections_accepted
        << " accepted, handshakes " << t.handshakes_ok << " ok / "
        << t.handshakes_rejected << " rejected, reconnects " << t.reconnects
        << ", resumes " << t.sessions_resumed << ", frames "
        << t.frames_sent << " sent / " << t.frames_received
        << " received\nstate fingerprint "
        << util::hash64(r.state_fingerprint) << "\n";
    return 0;
  }
  proto::ProtocolRuntime rt(workload.tasks, allocator, opts.workers,
                            cfg.sim.worker_capacity);
  const proto::ProtocolRunResult r = rt.run();
  print_proto_report(opts, workload.name, workload.tasks.size(), r, out);
  return 0;
}

int cmd_grid(const Options& opts, std::ostream& out) {
  const auto workflows = opts.workflows.empty()
                             ? workloads::all_workflow_names()
                             : opts.workflows;
  const auto policies =
      opts.policies.empty() ? core::all_policy_names() : opts.policies;
  const exp::ExperimentConfig cfg = experiment_config(opts);

  if (opts.replications > 1) {
    // Statistical mode: mean +/- sd over independently seeded replications.
    for (core::ResourceKind k : core::kManagedResources) {
      out << "\n== AWE: " << core::to_string(k) << " (mean +/- sd over "
          << opts.replications << " runs) ==\n";
      std::vector<std::string> header{"algorithm"};
      for (const auto& wf : workflows) header.push_back(wf);
      exp::TextTable table(header);
      for (const auto& p : policies) {
        std::vector<std::string> row{p};
        for (const auto& wf : workflows) {
          const auto rep =
              exp::run_replicated(wf, p, opts.replications, cfg);
          const auto s = rep.awe(k);
          row.push_back(exp::fmt(s.mean * 100.0, 1) + "+-" +
                        exp::fmt(s.stddev * 100.0, 1));
        }
        table.add_row(row);
      }
      table.print(out);
    }
    return 0;
  }

  const auto results = exp::run_grid_parallel(workflows, policies, cfg);

  std::map<std::string, std::map<std::string, const exp::ExperimentResult*>>
      grid;
  for (const auto& r : results) grid[r.policy][r.workflow] = &r;

  std::optional<std::ofstream> csv_file;
  std::optional<util::CsvWriter> csv;
  if (!opts.output_path.empty()) {
    csv_file.emplace(opts.output_path);
    if (!*csv_file) {
      throw std::runtime_error("cannot open output: " + opts.output_path);
    }
    csv.emplace(*csv_file);
    csv->row({"resource", "policy", "workflow", "awe"});
  }

  for (core::ResourceKind k : core::kManagedResources) {
    out << "\n== AWE: " << core::to_string(k) << " ==\n";
    std::vector<std::string> header{"algorithm"};
    for (const auto& wf : workflows) header.push_back(wf);
    exp::TextTable table(header);
    for (const auto& p : policies) {
      std::vector<std::string> row{p};
      for (const auto& wf : workflows) {
        const double awe = grid[p][wf]->awe(k);
        row.push_back(exp::fmt_pct(awe));
        if (csv) {
          csv->field(core::to_string(k)).field(p).field(wf).field(awe);
          csv->end_row();
        }
      }
      table.add_row(row);
    }
    table.print(out);
  }
  if (csv) out << "\nraw values written to " << opts.output_path << "\n";
  return 0;
}

}  // namespace

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t end = csv.find(',', start);
    if (end == std::string::npos) end = csv.size();
    if (end > start) items.push_back(csv.substr(start, end - start));
    if (end == csv.size()) break;
    start = end + 1;
  }
  return items;
}

std::string usage() {
  return R"(tora — adaptive task-oriented resource allocation (IPDPS'24 reproduction)

usage:
  tora run   --workflow <name|trace.csv> [--policy NAME] [options]
  tora proto --workflow <name|trace.csv> [--transport inproc|tcp] [options]
  tora grid  [--workflows a,b,...] [--policies x,y,...] [options]
  tora trace --workflow <name> [--out FILE]
  tora plot  --csv fig5_awe.csv [--resource R] [--filter-workflow W]
  tora list
  tora help

options:
  --policy NAME        allocation policy (default exhaustive_bucketing)
  --seed N             workload + simulation seed (default 7)
  --workers N          initial worker count (default 35)
  --no-churn           fixed pool instead of opportunistic churn
  --placement P        first|best|worst (default first)
  --interval S         task submission interval seconds (default 5)
  --replications N     grid: mean +/- sd over N independently seeded runs
  --out FILE           run: metrics CSV; trace: destination file
  --trace-log FILE     run: per-event CSV log of the simulation
  --csv FILE           plot: AWE CSV produced by bench/fig5_awe
  --resource R         plot: only this resource (cores|memory_mb|disk_mb)
  --filter-workflow W  plot: only this workflow

proto transport (see docs/transport.md):
  --transport T        inproc (default) or tcp — same manager and workers,
                       but every message crosses a loopback TCP session
  --listen HOST:PORT   tcp: manager listen address (default 127.0.0.1:0,
                       port 0 picks an ephemeral port)
  --backoff-base S     tcp: first reconnect delay (default 1)
  --backoff-cap S      tcp: reconnect backoff ceiling (default 16)

resilience (default off; see docs/resilience.md):
  --deadline-quantile Q  adaptive attempt deadlines at quantile Q (0 < Q <= 1)
  --speculation          speculatively re-dispatch straggling attempts
  --storm-threshold N    degraded mode after N evictions in the storm window
  --probation S          reliability scoring; first quarantine sentence S
  --storm-interval S     scenario: eviction-storm burst every S seconds
  --storm-duration S     scenario: burst length (default 60)
  --storm-fraction F     scenario: fraction of pool evicted per burst (0.5)
)";
}

Options parse_options(const std::vector<std::string>& args) {
  Options opts;
  if (args.empty()) {
    opts.command = "help";
    return opts;
  }
  opts.command = args[0];
  if (opts.command != "run" && opts.command != "proto" &&
      opts.command != "grid" && opts.command != "trace" &&
      opts.command != "plot" && opts.command != "list" &&
      opts.command != "help") {
    throw std::invalid_argument("unknown command '" + opts.command + "'");
  }
  // First transport flag seen, for the contradiction diagnostics below
  // (flag order must not matter, so checks run after the loop).
  std::string transport_flag;
  std::string tcp_only_flag;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument("missing value for " + a);
      }
      return args[++i];
    };
    if (a == "--workflow") opts.workflow = value();
    else if (a == "--policy") opts.policy = value();
    else if (a == "--workflows") opts.workflows = split_list(value());
    else if (a == "--policies") opts.policies = split_list(value());
    else if (a == "--seed") opts.seed = parse_u64(value(), "--seed");
    else if (a == "--workers") {
      opts.workers = static_cast<std::size_t>(parse_u64(value(), "--workers"));
      if (opts.workers == 0) {
        throw std::invalid_argument("--workers must be >= 1");
      }
    } else if (a == "--no-churn") opts.churn = false;
    else if (a == "--placement") opts.placement = parse_placement(value());
    else if (a == "--interval") {
      opts.submit_interval_s = parse_f64(value(), "--interval");
      if (opts.submit_interval_s < 0.0) {
        throw std::invalid_argument("--interval must be >= 0");
      }
    } else if (a == "--out") opts.output_path = value();
    else if (a == "--trace-log") opts.trace_log = value();
    else if (a == "--csv") opts.csv_path = value();
    else if (a == "--replications") {
      opts.replications =
          static_cast<std::size_t>(parse_u64(value(), "--replications"));
      if (opts.replications == 0) {
        throw std::invalid_argument("--replications must be >= 1");
      }
    }
    else if (a == "--transport") {
      opts.transport = value();
      if (opts.transport != "inproc" && opts.transport != "tcp") {
        throw std::invalid_argument("invalid --transport '" + opts.transport +
                                    "' (expected inproc|tcp)");
      }
      if (transport_flag.empty()) transport_flag = a;
    } else if (a == "--listen") {
      parse_listen(value(), &opts.tcp_host, &opts.tcp_port);
      if (tcp_only_flag.empty()) tcp_only_flag = a;
    } else if (a == "--backoff-base") {
      opts.tcp_backoff_base = parse_f64(value(), "--backoff-base");
      if (opts.tcp_backoff_base <= 0.0) {
        throw std::invalid_argument("--backoff-base must be > 0");
      }
      if (tcp_only_flag.empty()) tcp_only_flag = a;
    } else if (a == "--backoff-cap") {
      opts.tcp_backoff_cap = parse_f64(value(), "--backoff-cap");
      if (opts.tcp_backoff_cap <= 0.0) {
        throw std::invalid_argument("--backoff-cap must be > 0");
      }
      if (tcp_only_flag.empty()) tcp_only_flag = a;
    }
    else if (a == "--resource") opts.resource_filter = value();
    else if (a == "--filter-workflow") opts.workflow_filter = value();
    else if (a == "--deadline-quantile") {
      opts.resilience.deadlines = true;
      opts.resilience.deadline_quantile =
          parse_f64(value(), "--deadline-quantile");
    } else if (a == "--speculation") {
      opts.resilience.speculation = true;
    } else if (a == "--storm-threshold") {
      opts.resilience.storm_control = true;
      opts.resilience.storm_enter =
          static_cast<std::size_t>(parse_u64(value(), "--storm-threshold"));
    } else if (a == "--probation") {
      opts.resilience.reliability = true;
      opts.resilience.probation_sentence = parse_f64(value(), "--probation");
    } else if (a == "--storm-interval") {
      opts.storm_interval_s = parse_f64(value(), "--storm-interval");
      if (opts.storm_interval_s <= 0.0) {
        throw std::invalid_argument("--storm-interval must be > 0");
      }
      // Sensible burst defaults; override with the sibling knobs.
      if (opts.storm_duration_s == 0.0) opts.storm_duration_s = 60.0;
      if (opts.storm_fraction == 0.0) opts.storm_fraction = 0.5;
    } else if (a == "--storm-duration") {
      opts.storm_duration_s = parse_f64(value(), "--storm-duration");
      if (opts.storm_duration_s <= 0.0) {
        throw std::invalid_argument("--storm-duration must be > 0");
      }
    } else if (a == "--storm-fraction") {
      opts.storm_fraction = parse_f64(value(), "--storm-fraction");
      if (opts.storm_fraction <= 0.0 || opts.storm_fraction > 1.0) {
        throw std::invalid_argument("--storm-fraction must be in (0, 1]");
      }
    }
    else throw std::invalid_argument("unknown option '" + a + "'");
  }
  // Fail on a bad resilience knob here, before any work starts (the same
  // validate() the runtimes call at construction).
  opts.resilience.validate();
  if ((opts.storm_duration_s > 0.0 || opts.storm_fraction > 0.0) &&
      opts.storm_interval_s == 0.0) {
    throw std::invalid_argument(
        "--storm-duration/--storm-fraction require --storm-interval");
  }
  // Transport flags are proto-only, and the TCP knobs contradict the
  // in-process transport — fail here, before any sockets open.
  const std::string& any_transport_flag =
      !transport_flag.empty() ? transport_flag : tcp_only_flag;
  if (!any_transport_flag.empty() && opts.command != "proto") {
    throw std::invalid_argument("option '" + any_transport_flag +
                                "' is only valid for command 'proto'");
  }
  if (!tcp_only_flag.empty() && opts.transport != "tcp") {
    throw std::invalid_argument(
        "option '" + tcp_only_flag +
        "' requires --transport tcp (transport is '" + opts.transport + "')");
  }
  if (opts.tcp_backoff_cap < opts.tcp_backoff_base) {
    throw std::invalid_argument("--backoff-cap must be >= --backoff-base");
  }
  if ((opts.command == "run" || opts.command == "proto" ||
       opts.command == "trace") &&
      opts.workflow.empty()) {
    throw std::invalid_argument("command '" + opts.command +
                                "' requires --workflow");
  }
  if (opts.command == "plot" && opts.csv_path.empty()) {
    throw std::invalid_argument("command 'plot' requires --csv");
  }
  return opts;
}

int run_command(const Options& opts, std::ostream& out) {
  if (opts.command == "help") {
    out << usage();
    return 0;
  }
  if (opts.command == "list") return cmd_list(out);
  if (opts.command == "trace") return cmd_trace(opts, out);
  if (opts.command == "run") return cmd_run(opts, out);
  if (opts.command == "proto") return cmd_proto(opts, out);
  if (opts.command == "grid") return cmd_grid(opts, out);
  if (opts.command == "plot") return cmd_plot(opts, out);
  throw std::logic_error("unreachable command");
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  try {
    return run_command(parse_options(args), out);
  } catch (const std::exception& e) {
    err << "tora: " << e.what() << "\n\n" << usage();
    return 2;
  }
}

}  // namespace tora::cli
