#include "cli/plot.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>
#include <stdexcept>

#include "util/csv.hpp"

namespace tora::cli {

void render_bars(std::ostream& out, const std::string& title,
                 const std::vector<Bar>& bars, int width, double scale_max,
                 int precision, const std::string& suffix) {
  if (bars.empty()) return;
  double max_value = scale_max;
  std::size_t label_width = 0;
  for (const Bar& b : bars) {
    max_value = std::max(max_value, b.value);
    label_width = std::max(label_width, b.label.size());
  }
  if (!(max_value > 0.0)) max_value = 1.0;
  out << title << '\n';
  for (const Bar& b : bars) {
    const int len = b.value > 0.0
                        ? static_cast<int>(b.value / max_value *
                                           static_cast<double>(width))
                        : 0;
    out << "  " << std::left << std::setw(static_cast<int>(label_width))
        << b.label << " |" << std::string(static_cast<std::size_t>(len), '#')
        << std::string(static_cast<std::size_t>(width - len), ' ') << "| "
        << std::fixed << std::setprecision(precision) << b.value << suffix
        << '\n';
  }
}

std::size_t plot_awe_csv(std::ostream& out, const std::string& csv_text,
                         const std::string& resource_filter,
                         const std::string& workflow_filter) {
  const auto rows = util::parse_csv(csv_text);
  if (rows.empty() || rows[0] != util::parse_csv_line(
                                     "resource,policy,workflow,awe")) {
    throw std::invalid_argument(
        "plot: expected a fig5_awe.csv document "
        "(header resource,policy,workflow,awe)");
  }
  // (resource, workflow) -> ordered bars (policy order preserved).
  std::map<std::pair<std::string, std::string>, std::vector<Bar>> charts;
  std::vector<std::pair<std::string, std::string>> order;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& r = rows[i];
    if (r.size() != 4) {
      throw std::invalid_argument("plot: row with wrong field count");
    }
    if (!resource_filter.empty() && r[0] != resource_filter) continue;
    if (!workflow_filter.empty() && r[2] != workflow_filter) continue;
    double awe = 0.0;
    try {
      awe = std::stod(r[3]);
    } catch (const std::exception&) {
      throw std::invalid_argument("plot: bad awe value '" + r[3] + "'");
    }
    const auto key = std::make_pair(r[0], r[2]);
    if (charts.find(key) == charts.end()) order.push_back(key);
    charts[key].push_back({r[1], awe * 100.0});
  }
  for (const auto& key : order) {
    render_bars(out, "AWE " + key.first + " / " + key.second, charts[key],
                50, 100.0, 1, "%");
    out << '\n';
  }
  return order.size();
}

}  // namespace tora::cli
