#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tora::cli {

/// One bar of an ASCII chart.
struct Bar {
  std::string label;
  double value = 0.0;
};

/// Renders a horizontal ASCII bar chart: labels left-aligned, bars scaled
/// to `width` characters against max(values, scale_max), values printed
/// after each bar with `precision` decimals (append `suffix`, e.g. "%").
/// Negative values render as empty bars. No-op for an empty series.
void render_bars(std::ostream& out, const std::string& title,
                 const std::vector<Bar>& bars, int width = 50,
                 double scale_max = 0.0, int precision = 1,
                 const std::string& suffix = "");

/// Parses a fig5_awe.csv-style document (`resource,policy,workflow,awe`
/// header) and renders one chart per (resource, workflow) pair, optionally
/// filtered. Values are shown as percentages. Returns the number of charts
/// rendered; throws std::invalid_argument on malformed input.
std::size_t plot_awe_csv(std::ostream& out, const std::string& csv_text,
                         const std::string& resource_filter = "",
                         const std::string& workflow_filter = "");

}  // namespace tora::cli
