#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/lifecycle/dispatch_core.hpp"
#include "core/metrics.hpp"
#include "core/recovery/crash.hpp"
#include "core/recovery/recovery_log.hpp"
#include "core/resilience/resilience.hpp"
#include "core/task.hpp"
#include "core/task_allocator.hpp"
#include "proto/channel.hpp"
#include "proto/fault.hpp"
#include "proto/message.hpp"
#include "proto/worker_agent.hpp"

namespace tora::util {
class ByteReader;
}  // namespace tora::util

namespace tora::proto {

/// The manager side of the protocol (paper Fig. 1's workflow manager + task
/// scheduler + bucketing manager): resolves dependencies, asks the
/// TaskAllocator for an allocation at dispatch time, matches tasks to
/// workers first-fit against the capacities they announced, and feeds
/// completed records back into the allocator. All worker interaction goes
/// through encoded protocol messages over the DuplexLinks.
///
/// This runtime is functional rather than timed — it validates the protocol
/// and the allocation logic end-to-end; the discrete-event simulator
/// (sim::Simulation) owns timing questions. The task state machine itself
/// (readiness, allocation caching, retry escalation, fatality cascades, the
/// waste/eviction accounting split) is core::lifecycle::DispatchCore,
/// shared verbatim with the simulator; this class contributes the wire
/// protocol, worker registry, and failure detectors.
///
/// Fault tolerance (see LivenessConfig in fault.hpp): every pump is one
/// tick of the failure-detection clock. Workers heartbeat each pump; a
/// worker silent beyond the window is declared dead and its in-flight tasks
/// are requeued AND charged as evictions — never as allocator waste,
/// matching the simulator's accounting split. Running attempts that produce
/// no result within the attempt timeout are abandoned and re-dispatched
/// under capped exponential backoff; a worker that keeps eating dispatches
/// (one-way severed link) is quarantined. Results are deduplicated by
/// (worker, task, attempt), so duplicated or stale messages can never
/// double-charge an attempt.
///
/// Crash safety (see core/recovery/ and docs/recovery.md): when a
/// RecoveryLog is attached, every pump write-ahead journals its
/// nondeterministic inputs — the tick boundary, each polled wire line
/// (BEFORE it is handled), and phase-completion markers — plus the
/// lifecycle audit records emitted through the DispatchCore hooks. The
/// journal is compacted into a durable snapshot (snapshot_body) on the
/// configured cadence. recover() rebuilds a freshly constructed manager
/// from snapshot + journal tail by replaying the real handlers with wire
/// sends suppressed, which reconstructs the pre-crash state bit-for-bit;
/// phases of the interrupted tick that never ran pre-crash then run once
/// with sends enabled. An attached CrashMonitor injects deterministic
/// ManagerCrash exceptions at the named pump/snapshot boundaries.
class ProtocolManager : private core::lifecycle::RuntimeHooks {
 public:
  ProtocolManager(std::span<const core::TaskSpec> tasks,
                  core::TaskAllocator& allocator,
                  std::vector<DuplexLinkPtr> links, LivenessConfig cfg = {});

  /// Enqueues every dependency-free task. Call once before pumping.
  void start();

  /// Advances one tick: reads all pending worker messages, runs the
  /// failure detectors, and dispatches queued tasks onto free workers.
  /// Returns the number of messages processed, heartbeats excluded (so a
  /// caller can use the return value as a completion-progress signal).
  std::size_t pump();

  /// True once every task is completed or fatal.
  bool done() const noexcept { return core_.done(); }

  /// Broadcasts Shutdown to every known worker.
  void shutdown_workers();

  const core::WasteAccounting& accounting() const noexcept {
    return core_.accounting();
  }
  std::size_t tasks_completed() const noexcept { return core_.completed(); }
  std::size_t tasks_fatal() const noexcept { return core_.fatal(); }
  std::size_t dispatches_sent() const noexcept { return dispatches_; }
  std::size_t workers_known() const noexcept { return workers_.size(); }
  std::size_t ticks() const noexcept { return tick_; }
  /// Anomaly counters: malformed lines, stale/duplicate results, timeouts,
  /// deaths, quarantines, evictions.
  const core::ChaosCounters& chaos() const noexcept { return chaos_; }
  /// Summed allocations of attempts lost to dead/quarantined workers — the
  /// protocol-level sibling of SimResult::evicted_alloc_seconds (the shared
  /// machine's eviction ledger, charged 1× the allocation per lost
  /// attempt). Kept OUT of the WasteAccounting: the algorithm did not cause
  /// those failures.
  const core::ResourceVector& evicted_alloc() const noexcept {
    return core_.evicted_alloc();
  }
  /// Resilience-layer activity counters (all zero when the layer is
  /// disabled). Speculative waste itself is a WasteAccounting column
  /// (accounting().breakdown(k).speculative).
  core::ResilienceCounters resilience() const noexcept {
    core::ResilienceCounters c = res_counters_;
    c.storms_entered = storms_.storms_entered();
    c.storms_exited = storms_.storms_exited();
    return c;
  }

  /// The shared lifecycle machine (parity tests and diagnostics).
  const core::lifecycle::DispatchCore& core() const noexcept { return core_; }

  // --- crash recovery -----------------------------------------------------

  /// Attaches the durability machinery. `log` receives the write-ahead
  /// journal and snapshot rotations; `crashes` (nullable) arms the
  /// deterministic crash points; `counters` (nullable) observes journal and
  /// replay traffic. Attach before start() (or recover()) so the journal
  /// covers the whole life of the manager.
  void attach_recovery(core::recovery::RecoveryLog* log,
                       core::recovery::CrashMonitor* crashes,
                       core::recovery::RecoveryConfig recovery,
                       core::RecoveryCounters* counters);

  /// Serializes the manager's complete mutable state — allocator (with
  /// per-policy sampler state), lifecycle core, worker registry, per-task
  /// protocol state, quarantine set, chaos counters, tick — as the snapshot
  /// BODY (the RecoveryLog seals it). Doubles as a bit-exact state
  /// fingerprint for the crash/no-crash equality harness.
  std::string snapshot_body() const;

  /// Rebuilds this freshly constructed manager from a RecoveryLog scan:
  /// restores the snapshot (if any), replays the journal tail through the
  /// real handlers with sends suppressed, then finishes the interrupted
  /// tick's missing phases with sends enabled. Returns the number of
  /// non-heartbeat inputs handled in the final replayed tick (the pump()
  /// return value the crashed tick would have produced). Workers, links and
  /// their in-flight messages are expected to have survived; results for
  /// pre-crash attempts are accepted exactly once by the normal idempotency
  /// gate on subsequent pumps.
  std::size_t recover(const core::recovery::RecoveryLog::ScanResult& scan);

 private:
  /// Protocol-only per-task state, parallel to the core's TaskEntry.
  struct ProtoTaskState {
    std::size_t dispatch_tick = 0;
    std::size_t backoff_until = 0;  ///< not dispatchable before this tick
    std::size_t infra_failures = 0;  ///< consecutive, for backoff growth
    /// Speculative duplicate of the in-flight attempt (same wire attempt id,
    /// different worker). Not a core-lifecycle attempt: it exists only here
    /// and on its worker until promoted to primary or cancelled.
    bool spec_active = false;
    std::uint64_t spec_worker = 0;
    std::size_t spec_tick = 0;  ///< when the duplicate was dispatched
  };

  struct WorkerState {
    core::ResourceVector capacity;
    core::ResourceVector committed;
    DuplexLinkPtr link;
    std::size_t last_seen_tick = 0;
    std::size_t consecutive_failures = 0;
  };

  void handle(const Message& msg);
  void on_heartbeat(const Message& msg);
  void on_result(const Message& msg);
  void note_malformed(std::size_t link_index, const std::string& line);
  void touch(std::uint64_t worker_id);
  void check_liveness();
  /// Decode + dispatch one polled wire line (the pump drain body, shared
  /// with journal replay). Returns true for a handled non-heartbeat line.
  bool handle_line(std::size_t link_index, const std::string& line);
  /// True while journal records should be appended (log attached, writable,
  /// and not replaying — replay must not re-journal what it reads).
  bool journaling() const noexcept;
  void journal(core::recovery::RecordType type, std::string_view payload = {});
  void reach(core::recovery::ManagerCrashPoint point, std::uint64_t tick);
  void restore_state(util::ByteReader& r);
  void maybe_snapshot();

  // RuntimeHooks: the lifecycle audit records of the journal.
  void task_fatal(std::uint64_t task_id) override;
  void allocation_committed(std::uint64_t task_id,
                            const core::ResourceVector& alloc,
                            bool is_retry) override;
  void task_dispatched(std::uint64_t task_id, std::uint64_t worker,
                       std::uint32_t attempt) override;
  void task_completed(std::uint64_t task_id,
                      const core::ResourceVector& measured_peak,
                      double runtime_s) override;
  void task_failed_attempt(std::uint64_t task_id, double runtime_s,
                           unsigned exceeded_mask, bool requeued) override;
  void task_requeued(std::uint64_t task_id) override;
  void task_evicted(std::uint64_t task_id, double scale) override;
  /// Requeues a Running task after an infrastructure failure, applying
  /// capped exponential backoff. No-op unless the task is Running.
  void requeue_infra(std::uint64_t task_id);
  /// Forgets a worker; its Running tasks are requeued and charged as
  /// evictions. Quarantined workers are never re-admitted (heartbeats and
  /// announcements from them are ignored from then on).
  void remove_worker(std::uint64_t worker_id, bool quarantine);
  void dispatch_queued();

  // Resilience layer (inert unless cfg_.resilience enables features).
  /// Legacy permanent quarantine OR a reliability sentence still being
  /// served (probation replaces the permanent flag when scoring is on).
  bool is_quarantined(std::uint64_t worker_id) const;
  /// At least one infrastructure casualty observed — speculation never
  /// spends resources on a calm pool.
  bool churn_evidence() const noexcept;
  /// A worker fitting `alloc`, skipping `exclude` and any worker whose
  /// transport reported backpressure in this tick's sample. First-fit
  /// normally; with reliability scoring, the most reliable
  /// non-probationary fit (ties to the lowest id), probationary workers as
  /// last resort. `bp_blocked` (nullable) is set when at least one worker
  /// fit but was skipped only for backpressure.
  std::optional<std::uint64_t> place_worker(const core::ResourceVector& alloc,
                                            std::optional<std::uint64_t>
                                                exclude,
                                            bool* bp_blocked = nullptr) const;
  /// Samples per-link Channel::backpressured() into bp_sample_ — the ONE
  /// observation of transport state each tick's dispatch phase consumes.
  /// pump() journals a nonzero sample (RecordType::Backpressure) so crash
  /// replay re-runs dispatch_queued against the same observation instead
  /// of live transport state.
  void sample_backpressure();
  /// At least half the known workers' links pushed back in this tick's
  /// sample: the transport is drowning. Joins StormDetector::degraded() in
  /// capping in-flight dispatches (same knob, resilience.degraded_inflight_
  /// cap) — dispatching into full send queues only deepens the backlog.
  bool transport_overloaded() const noexcept;
  /// Duplicates straggling Running attempts onto second workers (runs at
  /// the end of dispatch_queued, so replay's DispatchDone marker covers it).
  void maybe_speculate();
  /// Cancels a task's live duplicate: frees its capacity, charges the
  /// speculative-waste column (never the eviction ledger). No-op if none.
  void cancel_speculation(std::uint64_t task_id);
  /// The duplicate takes over as the primary attempt (same attempt id, so
  /// the idempotency gate now expects its worker).
  void promote_speculation(std::uint64_t task_id);

  std::span<const core::TaskSpec> tasks_;
  core::TaskAllocator& allocator_;
  std::vector<DuplexLinkPtr> links_;
  LivenessConfig cfg_;
  core::lifecycle::DispatchCore core_;
  std::map<std::uint64_t, WorkerState> workers_;
  std::vector<ProtoTaskState> proto_states_;
  core::ChaosCounters chaos_;
  std::vector<char> quarantined_;
  std::vector<char> malformed_logged_;
  /// Per-link backpressure sampled once per tick (see sample_backpressure).
  /// Transient per-phase input, journaled rather than snapshotted.
  std::vector<char> bp_sample_;
  bool bp_sampled_this_tick_ = false;
  std::size_t tick_ = 0;
  std::size_t dispatches_ = 0;
  bool started_ = false;

  core::recovery::RecoveryLog* log_ = nullptr;
  core::recovery::CrashMonitor* crashes_ = nullptr;
  core::recovery::RecoveryConfig recovery_cfg_{};
  core::RecoveryCounters* recovery_counters_ = nullptr;
  bool replaying_ = false;

  // Resilience layer. Draws no randomness: every decision is a
  // deterministic function of the journaled inputs and the tick, so crash
  // replay re-derives the layer's state bit-for-bit with no new record
  // types.
  core::resilience::DeadlineTracker deadlines_;
  core::resilience::ReliabilityTracker reliability_;
  core::resilience::StormDetector storms_;
  core::ResilienceCounters res_counters_;
};

/// Builds the in-process duplex links for `num_workers`, wrapping each in
/// seeded FaultyChannels when `chaos` enables faults (labeled RNG splits per
/// direction × worker; severed links capped at n-1 so a run stays
/// completable). Shared by ProtocolRuntime and RecoverableProtocolRuntime.
std::vector<DuplexLinkPtr> build_chaos_links(std::size_t num_workers,
                                             const ChaosConfig& chaos);

/// Stall tolerance for pump loops under `chaos`: 0 (fail fast) without
/// faults, else a generous multiple of the longest detection chain.
std::size_t chaos_stall_limit(const ChaosConfig& chaos);

/// Aggregate outcome of a full protocol run.
struct ProtocolRunResult {
  core::WasteAccounting accounting;
  std::size_t tasks_completed = 0;
  std::size_t tasks_fatal = 0;
  std::size_t messages = 0;
  std::size_t bytes = 0;
  std::size_t rounds = 0;
  /// Aggregated anomaly counters from channels, manager and agents.
  core::ChaosCounters chaos;
  /// Protocol-level eviction cost (see ProtocolManager::evicted_alloc).
  core::ResourceVector evicted_alloc;
  /// Resilience-layer activity (see ProtocolManager::resilience).
  core::ResilienceCounters resilience;
};

/// Convenience harness: builds `num_workers` WorkerAgents of the given
/// capacity wired to a ProtocolManager over in-process links and pumps the
/// whole system to completion. The chaos overload wraps every link in
/// seeded FaultyChannels and injects the configured worker crashes.
class ProtocolRuntime {
 public:
  ProtocolRuntime(std::span<const core::TaskSpec> tasks,
                  core::TaskAllocator& allocator, std::size_t num_workers,
                  core::ResourceVector worker_capacity = {
                      16.0, 64.0 * 1024.0, 64.0 * 1024.0, 0.0});

  ProtocolRuntime(std::span<const core::TaskSpec> tasks,
                  core::TaskAllocator& allocator, std::size_t num_workers,
                  core::ResourceVector worker_capacity,
                  const ChaosConfig& chaos);

  /// Runs to completion; throws std::runtime_error if the system stops
  /// making progress before every task finishes. Under chaos, "no
  /// progress" tolerates the failure-detection windows (timeouts and
  /// backoff legitimately produce quiet rounds) before giving up.
  ProtocolRunResult run(std::size_t max_rounds = 1000000);

 private:
  std::span<const core::TaskSpec> tasks_;
  core::TaskAllocator& allocator_;
  std::vector<DuplexLinkPtr> links_;
  std::vector<WorkerAgent> agents_;
  ProtocolManager manager_;
  std::size_t stall_limit_;
};

}  // namespace tora::proto
