#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <vector>

#include "core/metrics.hpp"
#include "core/task.hpp"
#include "core/task_allocator.hpp"
#include "proto/channel.hpp"
#include "proto/message.hpp"
#include "proto/worker_agent.hpp"

namespace tora::proto {

/// The manager side of the protocol (paper Fig. 1's workflow manager + task
/// scheduler + bucketing manager): resolves dependencies, asks the
/// TaskAllocator for an allocation at dispatch time, matches tasks to
/// workers first-fit against the capacities they announced, and feeds
/// completed records back into the allocator. All worker interaction goes
/// through encoded protocol messages over the DuplexLinks.
///
/// This runtime is functional rather than timed — it validates the protocol
/// and the allocation logic end-to-end; the discrete-event simulator
/// (sim::Simulation) owns timing questions.
class ProtocolManager {
 public:
  ProtocolManager(std::span<const core::TaskSpec> tasks,
                  core::TaskAllocator& allocator,
                  std::vector<DuplexLinkPtr> links);

  /// Enqueues every dependency-free task. Call once before pumping.
  void start();

  /// Reads all pending worker messages and dispatches queued tasks onto
  /// free workers. Returns the number of messages processed.
  std::size_t pump();

  /// True once every task is completed or fatal.
  bool done() const noexcept {
    return finished_ == tasks_.size();
  }

  /// Broadcasts Shutdown to every known worker.
  void shutdown_workers();

  const core::WasteAccounting& accounting() const noexcept {
    return accounting_;
  }
  std::size_t tasks_completed() const noexcept { return completed_; }
  std::size_t tasks_fatal() const noexcept { return fatal_; }
  std::size_t dispatches_sent() const noexcept { return dispatches_; }
  std::size_t workers_known() const noexcept { return workers_.size(); }

 private:
  enum class TStatus : std::uint8_t { Waiting, Queued, Running, Done, Fatal };

  struct TaskState {
    TStatus status = TStatus::Waiting;
    core::ResourceVector alloc;
    bool has_alloc = false;
    bool is_retry = false;
    std::uint64_t alloc_revision = 0;
    std::vector<core::AttemptLog> failed_attempts;
    std::size_t deps_remaining = 0;
    std::size_t attempts = 0;
    std::uint64_t running_on = 0;
  };

  struct WorkerState {
    core::ResourceVector capacity;
    core::ResourceVector committed;
    DuplexLinkPtr link;
  };

  void handle(const Message& msg);
  void on_result(const Message& msg);
  void dispatch_queued();
  void maybe_ready(std::uint64_t task_id);
  void make_fatal(std::uint64_t task_id);

  std::span<const core::TaskSpec> tasks_;
  core::TaskAllocator& allocator_;
  std::vector<DuplexLinkPtr> links_;
  std::map<std::uint64_t, WorkerState> workers_;
  std::vector<TaskState> states_;
  std::vector<std::vector<std::uint64_t>> dependents_;
  std::deque<std::uint64_t> ready_;
  core::WasteAccounting accounting_;
  std::size_t completed_ = 0;
  std::size_t fatal_ = 0;
  std::size_t finished_ = 0;
  std::size_t dispatches_ = 0;
  std::size_t max_attempts_ = 64;
  bool started_ = false;
};

/// Aggregate outcome of a full protocol run.
struct ProtocolRunResult {
  core::WasteAccounting accounting;
  std::size_t tasks_completed = 0;
  std::size_t tasks_fatal = 0;
  std::size_t messages = 0;
  std::size_t bytes = 0;
  std::size_t rounds = 0;
};

/// Convenience harness: builds `num_workers` WorkerAgents of the given
/// capacity wired to a ProtocolManager over in-process links and pumps the
/// whole system to completion.
class ProtocolRuntime {
 public:
  ProtocolRuntime(std::span<const core::TaskSpec> tasks,
                  core::TaskAllocator& allocator, std::size_t num_workers,
                  core::ResourceVector worker_capacity = {
                      16.0, 64.0 * 1024.0, 64.0 * 1024.0, 0.0});

  /// Runs to completion; throws std::runtime_error if the system stops
  /// making progress before every task finishes.
  ProtocolRunResult run(std::size_t max_rounds = 1000000);

 private:
  std::span<const core::TaskSpec> tasks_;
  core::TaskAllocator& allocator_;
  std::vector<DuplexLinkPtr> links_;
  std::vector<WorkerAgent> agents_;
  ProtocolManager manager_;
};

}  // namespace tora::proto
