#include "proto/worker_agent.hpp"

#include <stdexcept>

#include "sim/enforcement.hpp"
#include "util/log.hpp"

namespace tora::proto {

WorkerAgent::WorkerAgent(std::uint64_t id, core::ResourceVector capacity,
                         std::span<const core::TaskSpec> ground_truth,
                         DuplexLinkPtr link, WorkerFaultConfig faults)
    : id_(id),
      capacity_(capacity),
      ground_truth_(ground_truth),
      link_(std::move(link)),
      faults_(faults) {
  if (!link_) throw std::invalid_argument("WorkerAgent: null link");
}

void WorkerAgent::announce() {
  Message m;
  m.type = MsgType::WorkerReady;
  m.worker_id = id_;
  m.resources = capacity_;
  link_->to_manager.send(encode(m));
  if (faults_.crash_point == CrashPoint::AfterAnnounce) crash();
}

void WorkerAgent::crash() {
  crashed_ = true;
  ++chaos_.worker_crashes;
  util::log_info("worker ", id_, ": injected crash");
}

std::size_t WorkerAgent::pump() {
  if (crashed_) return 0;  // a dead process drains and sends nothing
  std::size_t handled = 0;
  while (!crashed_) {
    auto line = link_->to_worker.poll();
    if (!line) break;
    const auto msg = decode(*line);
    if (!msg) {
      ++chaos_.malformed_lines;
      if (!malformed_logged_) {
        malformed_logged_ = true;
        util::log_warn("worker ", id_,
                       ": malformed message (logged once, counting "
                       "continues): ",
                       *line);
      }
      continue;
    }
    if (msg->worker_id != id_) {
      ++chaos_.misaddressed_messages;
      util::log_warn("worker ", id_, ": message addressed to worker ",
                     msg->worker_id, ", dropping");
      continue;
    }
    switch (msg->type) {
      case MsgType::TaskDispatch:
        handle_dispatch(*msg);
        break;
      case MsgType::Shutdown:
        shutdown_ = true;
        break;
      default:
        util::log_warn("worker ", id_, ": unexpected message type");
        break;
    }
    ++handled;
  }
  if (!crashed_ && !shutdown_) {
    Message hb;
    hb.type = MsgType::Heartbeat;
    hb.worker_id = id_;
    hb.resources = capacity_;
    link_->to_manager.send(encode(hb));
    ++heartbeats_sent_;
  }
  return handled;
}

void WorkerAgent::handle_dispatch(const Message& msg) {
  // Idempotency: a duplicated dispatch is answered from the result cache —
  // re-sending also gives a lost result a second chance to arrive.
  const auto key = std::make_pair(msg.task_id, msg.attempt);
  if (const auto it = results_.find(key); it != results_.end()) {
    ++chaos_.duplicate_dispatches;
    link_->to_manager.send(it->second);
    return;
  }
  if (msg.task_id >= ground_truth_.size()) {
    throw std::logic_error("WorkerAgent: dispatch for unknown task id");
  }
  ++fresh_dispatches_;
  const bool crash_here = fresh_dispatches_ == faults_.crash_on_dispatch;
  if (faults_.crash_point == CrashPoint::MidTask && crash_here) {
    crash();  // the task vanishes with the process
    return;
  }

  Message result;
  result.type = MsgType::TaskResult;
  result.worker_id = id_;
  result.task_id = msg.task_id;
  result.attempt = msg.attempt;

  if (!msg.resources.fits_within(capacity_)) {
    // The manager asked for more than this worker has: refuse. Real Work
    // Queue would never match such a task; reporting exhaustion keeps the
    // protocol total.
    ++rejected_;
    result.outcome = Outcome::ResourceExhausted;
    result.exceeded_mask = msg.resources.exceeded_mask(capacity_);
    result.runtime_s = 0.001;
    result.resources = core::ResourceVector{};
  } else {
    const core::TaskSpec& task = ground_truth_[msg.task_id];
    // "Execute": the enforcement model decides whether and when the
    // monitored process crosses its allocation.
    const unsigned exceeded =
        task.demand.exceeded_mask(msg.resources, core::kManagedResources);
    const double runtime = sim::attempt_runtime(task, msg.resources,
                                                core::kManagedResources);
    if (exceeded == 0) {
      ++executed_;
      result.outcome = Outcome::Success;
      result.resources = task.demand;  // the measured peak consumption
    } else {
      ++killed_;
      result.outcome = Outcome::ResourceExhausted;
      // The worker only observed consumption up to the kill: report the
      // allocation as the measured ceiling plus which dimensions tripped.
      result.resources = msg.resources;
      result.exceeded_mask = exceeded;
    }
    result.runtime_s = runtime;
  }

  std::string line = encode(result);
  results_.emplace(key, line);
  if (faults_.crash_point == CrashPoint::BeforeResult && crash_here) {
    crash();  // the work happened, but the report never leaves the node
    return;
  }
  link_->to_manager.send(std::move(line));
}

}  // namespace tora::proto
