#include "proto/worker_agent.hpp"

#include <stdexcept>

#include "sim/enforcement.hpp"
#include "util/log.hpp"

namespace tora::proto {

WorkerAgent::WorkerAgent(std::uint64_t id, core::ResourceVector capacity,
                         std::span<const core::TaskSpec> ground_truth,
                         DuplexLinkPtr link)
    : id_(id),
      capacity_(capacity),
      ground_truth_(ground_truth),
      link_(std::move(link)) {
  if (!link_) throw std::invalid_argument("WorkerAgent: null link");
}

void WorkerAgent::announce() {
  Message m;
  m.type = MsgType::WorkerReady;
  m.worker_id = id_;
  m.resources = capacity_;
  link_->to_manager.send(encode(m));
}

std::size_t WorkerAgent::pump() {
  std::size_t handled = 0;
  while (auto line = link_->to_worker.poll()) {
    const auto msg = decode(*line);
    if (!msg) {
      util::log_warn("worker ", id_, ": dropping malformed message: ", *line);
      continue;
    }
    if (msg->worker_id != id_) {
      util::log_warn("worker ", id_, ": message addressed to worker ",
                     msg->worker_id, ", dropping");
      continue;
    }
    switch (msg->type) {
      case MsgType::TaskDispatch:
        handle_dispatch(*msg);
        break;
      case MsgType::Shutdown:
        shutdown_ = true;
        break;
      default:
        util::log_warn("worker ", id_, ": unexpected message type");
        break;
    }
    ++handled;
  }
  return handled;
}

void WorkerAgent::handle_dispatch(const Message& msg) {
  Message result;
  result.type = MsgType::TaskResult;
  result.worker_id = id_;
  result.task_id = msg.task_id;

  if (msg.task_id >= ground_truth_.size()) {
    throw std::logic_error("WorkerAgent: dispatch for unknown task id");
  }
  if (!msg.resources.fits_within(capacity_)) {
    // The manager asked for more than this worker has: refuse. Real Work
    // Queue would never match such a task; reporting exhaustion keeps the
    // protocol total.
    ++rejected_;
    result.outcome = Outcome::ResourceExhausted;
    result.exceeded_mask = msg.resources.exceeded_mask(capacity_);
    result.runtime_s = 0.001;
    result.resources = core::ResourceVector{};
    link_->to_manager.send(encode(result));
    return;
  }

  const core::TaskSpec& task = ground_truth_[msg.task_id];
  // "Execute": the enforcement model decides whether and when the monitored
  // process crosses its allocation.
  const unsigned exceeded =
      task.demand.exceeded_mask(msg.resources, core::kManagedResources);
  const double runtime = sim::attempt_runtime(task, msg.resources,
                                              core::kManagedResources);
  if (exceeded == 0) {
    ++executed_;
    result.outcome = Outcome::Success;
    result.resources = task.demand;  // the measured peak consumption
  } else {
    ++killed_;
    result.outcome = Outcome::ResourceExhausted;
    // The worker only observed consumption up to the kill: report the
    // allocation as the measured ceiling plus which dimensions tripped.
    result.resources = msg.resources;
    result.exceeded_mask = exceeded;
  }
  result.runtime_s = runtime;
  link_->to_manager.send(encode(result));
}

}  // namespace tora::proto
