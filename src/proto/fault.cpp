#include "proto/fault.hpp"

#include <memory>
#include <utility>

namespace tora::proto {

void FaultyChannel::send(std::string line) {
  ++attempts_;
  if (plan_.sever_after_messages > 0 &&
      attempts_ > plan_.sever_after_messages) {
    if (chaos_.links_severed == 0) chaos_.links_severed = 1;
    ++chaos_.messages_severed;
    return;
  }
  if (plan_.drop_prob > 0.0 && rng_.bernoulli(plan_.drop_prob)) {
    ++chaos_.messages_dropped;
    return;
  }
  if (plan_.corrupt_prob > 0.0 && !line.empty() &&
      rng_.bernoulli(plan_.corrupt_prob)) {
    // Exactly one byte, drawn from the printable range (space included, so
    // token boundaries can shift too).
    const std::size_t pos = rng_.uniform_int(0, line.size() - 1);
    line[pos] = static_cast<char>(' ' + rng_.uniform_int(0, '~' - ' '));
    ++chaos_.messages_corrupted;
  }
  const bool dup =
      plan_.duplicate_prob > 0.0 && rng_.bernoulli(plan_.duplicate_prob);
  if (dup) {
    ++chaos_.messages_duplicated;
    deliver(line);
  }
  deliver(std::move(line));
}

DuplexLinkPtr make_faulty_link(const FaultPlan& to_worker,
                               const FaultPlan& to_manager, util::Rng& rng) {
  return std::make_shared<DuplexLink>(
      std::make_unique<FaultyChannel>(to_worker, rng.split()),
      std::make_unique<FaultyChannel>(to_manager, rng.split()));
}

}  // namespace tora::proto
