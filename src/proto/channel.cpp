#include "proto/channel.hpp"

namespace tora::proto {

void Channel::send(std::string line) {
  bytes_ += line.size() + 1;  // + newline framing on a real socket
  ++messages_;
  queue_.push_back(std::move(line));
}

std::optional<std::string> Channel::poll() {
  if (queue_.empty()) return std::nullopt;
  std::string line = std::move(queue_.front());
  queue_.pop_front();
  return line;
}

}  // namespace tora::proto
