#include "proto/channel.hpp"

#include <stdexcept>

namespace tora::proto {

void Channel::send(std::string line) { deliver(std::move(line)); }

void Channel::deliver(std::string line) {
  bytes_ += line.size() + 1;  // + newline framing on a real socket
  ++messages_;
  queue_.push_back(std::move(line));
}

std::optional<std::string> Channel::poll() {
  if (queue_.empty()) return std::nullopt;
  std::string line = std::move(queue_.front());
  queue_.pop_front();
  return line;
}

namespace {
Channel& require(const std::unique_ptr<Channel>& channel) {
  if (!channel) throw std::invalid_argument("DuplexLink: null channel");
  return *channel;
}
}  // namespace

DuplexLink::DuplexLink()
    : DuplexLink(std::make_unique<Channel>(), std::make_unique<Channel>()) {}

DuplexLink::DuplexLink(std::unique_ptr<Channel> to_worker_channel,
                       std::unique_ptr<Channel> to_manager_channel)
    // The references bind to the pointees, which are stable across the
    // subsequent moves into the owning members.
    : to_worker(require(to_worker_channel)),
      to_manager(require(to_manager_channel)),
      owned_to_worker_(std::move(to_worker_channel)),
      owned_to_manager_(std::move(to_manager_channel)) {}

}  // namespace tora::proto
