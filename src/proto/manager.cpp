#include "proto/manager.hpp"

#include <stdexcept>

#include "proto/worker_agent.hpp"
#include "util/log.hpp"

namespace tora::proto {

using core::ResourceKind;
using core::ResourceVector;

ProtocolManager::ProtocolManager(std::span<const core::TaskSpec> tasks,
                                 core::TaskAllocator& allocator,
                                 std::vector<DuplexLinkPtr> links)
    : tasks_(tasks),
      allocator_(allocator),
      links_(std::move(links)),
      states_(tasks.size()),
      dependents_(tasks.size()) {
  for (const auto& link : links_) {
    if (!link) throw std::invalid_argument("ProtocolManager: null link");
  }
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].id != i) {
      throw std::invalid_argument(
          "ProtocolManager: task ids must be dense and ordered");
    }
    states_[i].deps_remaining = tasks_[i].deps.size();
    for (std::uint64_t dep : tasks_[i].deps) {
      if (dep >= i) {
        throw std::invalid_argument(
            "ProtocolManager: dependency ids must precede the task");
      }
      dependents_[dep].push_back(i);
    }
  }
}

void ProtocolManager::start() {
  if (started_) throw std::logic_error("ProtocolManager: started twice");
  started_ = true;
  for (std::size_t i = 0; i < tasks_.size(); ++i) maybe_ready(i);
}

void ProtocolManager::maybe_ready(std::uint64_t task_id) {
  TaskState& st = states_[task_id];
  if (st.status != TStatus::Waiting || st.deps_remaining > 0) return;
  st.status = TStatus::Queued;
  ready_.push_back(task_id);
}

std::size_t ProtocolManager::pump() {
  std::size_t handled = 0;
  for (const auto& link : links_) {
    while (auto line = link->to_manager.poll()) {
      const auto msg = decode(*line);
      if (!msg) {
        util::log_warn("manager: dropping malformed message: ", *line);
        continue;
      }
      handle(*msg);
      ++handled;
    }
  }
  dispatch_queued();
  return handled;
}

void ProtocolManager::handle(const Message& msg) {
  switch (msg.type) {
    case MsgType::WorkerReady: {
      // Worker ids equal link indices (the runtime assigns both); a ready
      // message from an unknown id is a protocol violation.
      if (msg.worker_id >= links_.size()) {
        util::log_warn("manager: ready from unknown worker ", msg.worker_id);
        break;
      }
      WorkerState ws;
      ws.capacity = msg.resources;
      ws.link = links_[msg.worker_id];
      workers_[msg.worker_id] = std::move(ws);
      break;
    }
    case MsgType::TaskResult:
      on_result(msg);
      break;
    case MsgType::Evict: {
      // Requeue with the same allocation; not charged to the algorithm.
      if (msg.task_id < states_.size() &&
          states_[msg.task_id].status == TStatus::Running) {
        TaskState& st = states_[msg.task_id];
        auto it = workers_.find(st.running_on);
        if (it != workers_.end()) it->second.committed -= st.alloc;
        st.status = TStatus::Queued;
        ready_.push_front(msg.task_id);
      }
      break;
    }
    default:
      util::log_warn("manager: unexpected message type");
      break;
  }
}

void ProtocolManager::on_result(const Message& msg) {
  if (msg.task_id >= states_.size()) {
    util::log_warn("manager: result for unknown task ", msg.task_id);
    return;
  }
  TaskState& st = states_[msg.task_id];
  if (st.status != TStatus::Running || st.running_on != msg.worker_id) {
    util::log_warn("manager: stale result for task ", msg.task_id);
    return;
  }
  auto wit = workers_.find(msg.worker_id);
  if (wit != workers_.end()) wit->second.committed -= st.alloc;

  const core::TaskSpec& spec = tasks_[msg.task_id];
  if (msg.outcome == Outcome::Success) {
    st.status = TStatus::Done;
    ++completed_;
    ++finished_;
    core::TaskUsage usage;
    usage.category = spec.category;
    usage.peak = msg.resources;  // the worker-measured peak
    usage.final_alloc = st.alloc;
    usage.final_runtime_s = msg.runtime_s;
    usage.failed_attempts = st.failed_attempts;
    accounting_.add(usage);
    allocator_.record_completion(spec.category, msg.resources,
                                 static_cast<double>(spec.id) + 1.0);
    for (std::uint64_t dep : dependents_[msg.task_id]) {
      TaskState& ds = states_[dep];
      if (ds.deps_remaining > 0) {
        --ds.deps_remaining;
        maybe_ready(dep);
      }
    }
    return;
  }

  // Resource exhaustion: log the failed attempt and escalate.
  st.failed_attempts.push_back({st.alloc, msg.runtime_s});
  if (st.attempts >= max_attempts_) {
    make_fatal(msg.task_id);
    return;
  }
  const unsigned mask = msg.exceeded_mask;
  if (mask == 0) {
    util::log_warn("manager: exhausted result without exceeded mask");
    make_fatal(msg.task_id);
    return;
  }
  const ResourceVector next =
      allocator_.allocate_retry(spec.category, st.alloc, mask);
  bool grew = false;
  for (ResourceKind k : allocator_.config().managed) {
    if ((mask & core::resource_bit(k)) && next[k] > st.alloc[k]) {
      grew = true;
      break;
    }
  }
  if (!grew) {
    make_fatal(msg.task_id);
    return;
  }
  st.alloc = next;
  st.is_retry = true;
  st.status = TStatus::Queued;
  ready_.push_back(msg.task_id);
}

void ProtocolManager::make_fatal(std::uint64_t task_id) {
  TaskState& st = states_[task_id];
  if (st.status == TStatus::Fatal) return;
  st.status = TStatus::Fatal;
  ++fatal_;
  ++finished_;
  for (std::uint64_t dep : dependents_[task_id]) make_fatal(dep);
}

void ProtocolManager::dispatch_queued() {
  std::deque<std::uint64_t> waiting;
  while (!ready_.empty()) {
    const std::uint64_t task_id = ready_.front();
    ready_.pop_front();
    TaskState& st = states_[task_id];
    if (!st.has_alloc ||
        (!st.is_retry && st.alloc_revision != allocator_.revision())) {
      st.alloc = allocator_.allocate(tasks_[task_id].category);
      st.has_alloc = true;
      st.alloc_revision = allocator_.revision();
    }
    bool placed = false;
    for (auto& [wid, ws] : workers_) {
      const ResourceVector free = ws.capacity - ws.committed;
      if (st.alloc.fits_within(free)) {
        ws.committed += st.alloc;
        st.status = TStatus::Running;
        st.running_on = wid;
        ++st.attempts;
        Message m;
        m.type = MsgType::TaskDispatch;
        m.worker_id = wid;
        m.task_id = task_id;
        m.category = tasks_[task_id].category;
        m.resources = st.alloc;
        ws.link->to_worker.send(encode(m));
        ++dispatches_;
        placed = true;
        break;
      }
    }
    if (!placed) waiting.push_back(task_id);
  }
  ready_ = std::move(waiting);
}

void ProtocolManager::shutdown_workers() {
  for (auto& [wid, ws] : workers_) {
    Message m;
    m.type = MsgType::Shutdown;
    m.worker_id = wid;
    ws.link->to_worker.send(encode(m));
  }
}

// ---------------------------------------------------------------- runtime

ProtocolRuntime::ProtocolRuntime(std::span<const core::TaskSpec> tasks,
                                 core::TaskAllocator& allocator,
                                 std::size_t num_workers,
                                 core::ResourceVector worker_capacity)
    : tasks_(tasks),
      allocator_(allocator),
      links_([num_workers] {
        std::vector<DuplexLinkPtr> links;
        links.reserve(num_workers);
        for (std::size_t i = 0; i < num_workers; ++i) {
          links.push_back(std::make_shared<DuplexLink>());
        }
        return links;
      }()),
      manager_(tasks, allocator, links_) {
  if (num_workers == 0) {
    throw std::invalid_argument("ProtocolRuntime: need at least one worker");
  }
  agents_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    agents_.emplace_back(i, worker_capacity, tasks_, links_[i]);
  }
}

ProtocolRunResult ProtocolRuntime::run(std::size_t max_rounds) {
  for (auto& agent : agents_) agent.announce();
  manager_.start();
  ProtocolRunResult result;
  for (result.rounds = 0; result.rounds < max_rounds; ++result.rounds) {
    std::size_t progress = manager_.pump();
    for (auto& agent : agents_) progress += agent.pump();
    if (manager_.done()) break;
    if (progress == 0) {
      throw std::runtime_error(
          "ProtocolRuntime: no progress with unfinished tasks (allocation "
          "larger than every worker?)");
    }
  }
  if (!manager_.done()) {
    throw std::runtime_error("ProtocolRuntime: round limit exceeded");
  }
  manager_.shutdown_workers();
  for (auto& agent : agents_) agent.pump();

  result.accounting = manager_.accounting();
  result.tasks_completed = manager_.tasks_completed();
  result.tasks_fatal = manager_.tasks_fatal();
  for (const auto& link : links_) {
    result.messages +=
        link->to_worker.messages_sent() + link->to_manager.messages_sent();
    result.bytes += link->to_worker.bytes_sent() + link->to_manager.bytes_sent();
  }
  return result;
}

}  // namespace tora::proto
