#include "proto/manager.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace tora::proto {

using core::ResourceKind;
using core::ResourceVector;

ProtocolManager::ProtocolManager(std::span<const core::TaskSpec> tasks,
                                 core::TaskAllocator& allocator,
                                 std::vector<DuplexLinkPtr> links,
                                 LivenessConfig cfg)
    : tasks_(tasks),
      allocator_(allocator),
      links_(std::move(links)),
      cfg_(cfg),
      states_(tasks.size()),
      dependents_(tasks.size()),
      quarantined_(links_.size(), 0),
      malformed_logged_(links_.size(), 0) {
  for (const auto& link : links_) {
    if (!link) throw std::invalid_argument("ProtocolManager: null link");
  }
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].id != i) {
      throw std::invalid_argument(
          "ProtocolManager: task ids must be dense and ordered");
    }
    states_[i].deps_remaining = tasks_[i].deps.size();
    for (std::uint64_t dep : tasks_[i].deps) {
      if (dep >= i) {
        throw std::invalid_argument(
            "ProtocolManager: dependency ids must precede the task");
      }
      dependents_[dep].push_back(i);
    }
  }
}

void ProtocolManager::start() {
  if (started_) throw std::logic_error("ProtocolManager: started twice");
  started_ = true;
  for (std::size_t i = 0; i < tasks_.size(); ++i) maybe_ready(i);
}

void ProtocolManager::maybe_ready(std::uint64_t task_id) {
  TaskState& st = states_[task_id];
  if (st.status != TStatus::Waiting || st.deps_remaining > 0) return;
  st.status = TStatus::Queued;
  ready_.push_back(task_id);
}

std::size_t ProtocolManager::pump() {
  ++tick_;
  std::size_t handled = 0;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    while (auto line = links_[i]->to_manager.poll()) {
      const auto msg = decode(*line);
      if (!msg) {
        note_malformed(i, *line);
        continue;
      }
      if (msg->type == MsgType::Heartbeat) {
        // Liveness traffic, not workflow progress: callers use pump()'s
        // return value to detect stalls, so heartbeats stay uncounted.
        ++chaos_.heartbeats;
        on_heartbeat(*msg);
        continue;
      }
      touch(msg->worker_id);
      handle(*msg);
      ++handled;
    }
  }
  check_liveness();
  dispatch_queued();
  return handled;
}

void ProtocolManager::note_malformed(std::size_t link_index,
                                     const std::string& line) {
  ++chaos_.malformed_lines;
  if (!malformed_logged_[link_index]) {
    malformed_logged_[link_index] = 1;
    util::log_warn("manager: malformed line from worker ", link_index,
                   " (logged once per worker, counting continues): ", line);
  }
}

void ProtocolManager::touch(std::uint64_t worker_id) {
  auto it = workers_.find(worker_id);
  if (it != workers_.end()) it->second.last_seen_tick = tick_;
}

void ProtocolManager::on_heartbeat(const Message& msg) {
  if (msg.worker_id >= links_.size()) {
    util::log_warn("manager: heartbeat from unknown worker ", msg.worker_id);
    return;
  }
  if (quarantined_[msg.worker_id]) return;
  auto it = workers_.find(msg.worker_id);
  if (it != workers_.end()) {
    it->second.last_seen_tick = tick_;
    return;
  }
  // The heartbeat carries capacity exactly for this case: a worker whose
  // announcement was lost, or one spuriously declared dead, re-registers
  // without a round-trip.
  WorkerState ws;
  ws.capacity = msg.resources;
  ws.link = links_[msg.worker_id];
  ws.last_seen_tick = tick_;
  workers_[msg.worker_id] = std::move(ws);
}

void ProtocolManager::handle(const Message& msg) {
  switch (msg.type) {
    case MsgType::WorkerReady: {
      // Worker ids equal link indices (the runtime assigns both); a ready
      // message from an unknown id is a protocol violation.
      if (msg.worker_id >= links_.size()) {
        util::log_warn("manager: ready from unknown worker ", msg.worker_id);
        break;
      }
      if (quarantined_[msg.worker_id]) break;
      if (auto it = workers_.find(msg.worker_id); it != workers_.end()) {
        // A duplicated announcement must not reset `committed`, or the
        // manager would over-admit against the phantom free capacity.
        it->second.capacity = msg.resources;
        it->second.last_seen_tick = tick_;
        break;
      }
      WorkerState ws;
      ws.capacity = msg.resources;
      ws.link = links_[msg.worker_id];
      ws.last_seen_tick = tick_;
      workers_[msg.worker_id] = std::move(ws);
      break;
    }
    case MsgType::TaskResult:
      on_result(msg);
      break;
    case MsgType::Evict: {
      // Requeue with the same allocation; not charged to the algorithm.
      if (msg.task_id < states_.size() &&
          states_[msg.task_id].status == TStatus::Running) {
        TaskState& st = states_[msg.task_id];
        auto it = workers_.find(st.running_on);
        if (it != workers_.end()) it->second.committed -= st.alloc;
        ++chaos_.protocol_evictions;
        ++chaos_.redispatches;
        evicted_alloc_ += st.alloc;
        st.status = TStatus::Queued;
        ready_.push_front(msg.task_id);
      }
      break;
    }
    default:
      util::log_warn("manager: unexpected message type");
      break;
  }
}

void ProtocolManager::on_result(const Message& msg) {
  if (msg.task_id >= states_.size()) {
    util::log_warn("manager: result for unknown task ", msg.task_id);
    return;
  }
  TaskState& st = states_[msg.task_id];
  // Idempotency gate: accept a result only for the attempt currently in
  // flight, from the worker it was dispatched to. Anything else is a
  // duplicate delivery or a report for an attempt already abandoned —
  // crediting it would double-charge WasteAccounting.
  if (st.status != TStatus::Running || st.running_on != msg.worker_id ||
      msg.attempt != st.attempts) {
    ++chaos_.stale_or_duplicate_results;
    return;
  }
  auto wit = workers_.find(msg.worker_id);
  if (wit != workers_.end()) {
    wit->second.committed -= st.alloc;
    wit->second.consecutive_failures = 0;
  }
  st.infra_failures = 0;

  const core::TaskSpec& spec = tasks_[msg.task_id];
  if (msg.outcome == Outcome::Success) {
    st.status = TStatus::Done;
    ++completed_;
    ++finished_;
    core::TaskUsage usage;
    usage.category = spec.category;
    usage.peak = msg.resources;  // the worker-measured peak
    usage.final_alloc = st.alloc;
    usage.final_runtime_s = msg.runtime_s;
    usage.failed_attempts = st.failed_attempts;
    accounting_.add(usage);
    allocator_.record_completion(spec.category, msg.resources,
                                 static_cast<double>(spec.id) + 1.0);
    for (std::uint64_t dep : dependents_[msg.task_id]) {
      TaskState& ds = states_[dep];
      if (ds.deps_remaining > 0) {
        --ds.deps_remaining;
        maybe_ready(dep);
      }
    }
    return;
  }

  // Resource exhaustion: log the failed attempt and escalate. Only these
  // allocation-induced failures spend the fatal budget — infrastructure
  // retries (timeouts, dead workers) never do.
  st.failed_attempts.push_back({st.alloc, msg.runtime_s});
  if (st.failed_attempts.size() >= cfg_.max_allocation_failures) {
    make_fatal(msg.task_id);
    return;
  }
  const unsigned mask = msg.exceeded_mask;
  if (mask == 0) {
    util::log_warn("manager: exhausted result without exceeded mask");
    make_fatal(msg.task_id);
    return;
  }
  const ResourceVector next =
      allocator_.allocate_retry(spec.category, st.alloc, mask);
  bool grew = false;
  for (ResourceKind k : allocator_.config().managed) {
    if ((mask & core::resource_bit(k)) && next[k] > st.alloc[k]) {
      grew = true;
      break;
    }
  }
  if (!grew) {
    make_fatal(msg.task_id);
    return;
  }
  st.alloc = next;
  st.is_retry = true;
  st.status = TStatus::Queued;
  ready_.push_back(msg.task_id);
}

void ProtocolManager::check_liveness() {
  // Silence deaths first: a worker whose heartbeats stopped takes all its
  // in-flight tasks with it, and those are evictions, not timeouts.
  std::vector<std::uint64_t> dead;
  for (const auto& [wid, ws] : workers_) {
    if (tick_ - ws.last_seen_tick > cfg_.silence_ticks) dead.push_back(wid);
  }
  for (std::uint64_t wid : dead) {
    ++chaos_.workers_declared_dead;
    util::log_info("manager: worker ", wid, " silent beyond ",
                   cfg_.silence_ticks, " ticks, declaring dead");
    remove_worker(wid, false);
  }

  // Attempt timeouts: the worker still heartbeats but this attempt's
  // dispatch or result went missing. Abandon the attempt (its id is now
  // stale, so a late result is rejected) and redispatch under backoff. A
  // worker that keeps timing out is quarantined — that is the only way to
  // detect a one-way severed manager->worker link.
  for (std::size_t t = 0; t < states_.size(); ++t) {
    TaskState& st = states_[t];
    if (st.status != TStatus::Running) continue;
    if (tick_ - st.dispatch_tick <= cfg_.attempt_timeout_ticks) continue;
    ++chaos_.attempt_timeouts;
    const std::uint64_t wid = st.running_on;
    auto it = workers_.find(wid);
    if (it != workers_.end()) it->second.committed -= st.alloc;
    requeue_infra(t);
    if (it != workers_.end() &&
        ++it->second.consecutive_failures >= cfg_.worker_failure_limit) {
      util::log_info("manager: worker ", wid, " hit ",
                     cfg_.worker_failure_limit,
                     " consecutive attempt timeouts, quarantining");
      remove_worker(wid, true);
    }
  }
}

void ProtocolManager::requeue_infra(std::uint64_t task_id) {
  TaskState& st = states_[task_id];
  if (st.status != TStatus::Running) return;
  st.status = TStatus::Queued;
  ++chaos_.redispatches;
  ++st.infra_failures;
  const std::size_t shift =
      std::min<std::size_t>(st.infra_failures - 1, std::size_t{16});
  st.backoff_until =
      tick_ + std::min(cfg_.backoff_cap_ticks, cfg_.backoff_base_ticks << shift);
  ready_.push_front(task_id);
}

void ProtocolManager::remove_worker(std::uint64_t worker_id, bool quarantine) {
  for (std::size_t t = 0; t < states_.size(); ++t) {
    TaskState& st = states_[t];
    if (st.status != TStatus::Running || st.running_on != worker_id) continue;
    // The attempt died with the worker: charge it as an eviction (the
    // allocation was fine, the infrastructure was not) and requeue.
    ++chaos_.protocol_evictions;
    evicted_alloc_ += st.alloc;
    requeue_infra(t);
  }
  workers_.erase(worker_id);
  if (quarantine && worker_id < quarantined_.size()) {
    quarantined_[worker_id] = 1;
    ++chaos_.workers_quarantined;
  }
}

void ProtocolManager::make_fatal(std::uint64_t task_id) {
  TaskState& st = states_[task_id];
  if (st.status == TStatus::Fatal) return;
  st.status = TStatus::Fatal;
  ++fatal_;
  ++finished_;
  for (std::uint64_t dep : dependents_[task_id]) make_fatal(dep);
}

void ProtocolManager::dispatch_queued() {
  std::deque<std::uint64_t> waiting;
  while (!ready_.empty()) {
    const std::uint64_t task_id = ready_.front();
    ready_.pop_front();
    TaskState& st = states_[task_id];
    if (st.backoff_until > tick_) {
      waiting.push_back(task_id);
      continue;
    }
    if (!st.has_alloc ||
        (!st.is_retry && st.alloc_revision != allocator_.revision())) {
      st.alloc = allocator_.allocate(tasks_[task_id].category);
      st.has_alloc = true;
      st.alloc_revision = allocator_.revision();
    }
    bool placed = false;
    for (auto& [wid, ws] : workers_) {
      const ResourceVector free = ws.capacity - ws.committed;
      if (st.alloc.fits_within(free)) {
        ws.committed += st.alloc;
        st.status = TStatus::Running;
        st.running_on = wid;
        st.dispatch_tick = tick_;
        ++st.attempts;
        Message m;
        m.type = MsgType::TaskDispatch;
        m.worker_id = wid;
        m.task_id = task_id;
        m.attempt = st.attempts;
        m.category = tasks_[task_id].category;
        m.resources = st.alloc;
        ws.link->to_worker.send(encode(m));
        ++dispatches_;
        placed = true;
        break;
      }
    }
    if (!placed) waiting.push_back(task_id);
  }
  ready_ = std::move(waiting);
}

void ProtocolManager::shutdown_workers() {
  for (auto& [wid, ws] : workers_) {
    Message m;
    m.type = MsgType::Shutdown;
    m.worker_id = wid;
    ws.link->to_worker.send(encode(m));
  }
}

// ---------------------------------------------------------------- runtime

namespace {

std::vector<DuplexLinkPtr> build_links(std::size_t num_workers,
                                       const ChaosConfig& chaos) {
  std::vector<DuplexLinkPtr> links;
  links.reserve(num_workers);
  util::Rng rng(chaos.seed);
  std::vector<char> severed(num_workers, 0);
  if (chaos.sever_workers > 0 && num_workers > 1) {
    // Cap at n-1 so at least one worker keeps both directions; the run
    // stays completable no matter how unlucky the draw.
    util::Rng pick = rng.split("sever");
    const std::size_t want = std::min(chaos.sever_workers, num_workers - 1);
    std::size_t chosen = 0;
    while (chosen < want) {
      const auto w = pick.uniform_int(0, num_workers - 1);
      if (!severed[w]) {
        severed[w] = 1;
        ++chosen;
      }
    }
  }
  for (std::size_t i = 0; i < num_workers; ++i) {
    FaultPlan to_worker = chaos.to_worker;
    FaultPlan to_manager = chaos.to_manager;
    if (severed[i]) {
      to_worker.sever_after_messages = chaos.sever_after_messages;
      to_manager.sever_after_messages = chaos.sever_after_messages;
    }
    if (to_worker.enabled() || to_manager.enabled()) {
      // Labeled splits: each channel gets a stream derived from (seed,
      // direction, worker), independent of construction order.
      const std::string tag = std::to_string(i);
      links.push_back(std::make_shared<DuplexLink>(
          std::make_unique<FaultyChannel>(to_worker,
                                          rng.split("to_worker/" + tag)),
          std::make_unique<FaultyChannel>(to_manager,
                                          rng.split("to_manager/" + tag))));
    } else {
      links.push_back(std::make_shared<DuplexLink>());
    }
  }
  return links;
}

std::size_t stall_limit_for(const ChaosConfig& chaos) {
  if (!chaos.enabled()) return 0;  // fault-free runs fail fast, as before
  // Under chaos, quiet rounds are legitimate: backoff windows, timeout
  // windows and silence windows all pass without countable progress. Allow
  // a generous multiple of the longest detection chain before giving up.
  const LivenessConfig& lv = chaos.liveness;
  return 64 * (lv.silence_ticks + lv.attempt_timeout_ticks +
               lv.backoff_cap_ticks + 4);
}

}  // namespace

ProtocolRuntime::ProtocolRuntime(std::span<const core::TaskSpec> tasks,
                                 core::TaskAllocator& allocator,
                                 std::size_t num_workers,
                                 core::ResourceVector worker_capacity)
    : ProtocolRuntime(tasks, allocator, num_workers, worker_capacity,
                      ChaosConfig{}) {}

ProtocolRuntime::ProtocolRuntime(std::span<const core::TaskSpec> tasks,
                                 core::TaskAllocator& allocator,
                                 std::size_t num_workers,
                                 core::ResourceVector worker_capacity,
                                 const ChaosConfig& chaos)
    : tasks_(tasks),
      allocator_(allocator),
      links_(build_links(num_workers, chaos)),
      manager_(tasks, allocator, links_, chaos.liveness),
      stall_limit_(stall_limit_for(chaos)) {
  if (num_workers == 0) {
    throw std::invalid_argument("ProtocolRuntime: need at least one worker");
  }
  agents_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    const WorkerFaultConfig faults = i < chaos.worker_faults.size()
                                         ? chaos.worker_faults[i]
                                         : WorkerFaultConfig{};
    agents_.emplace_back(i, worker_capacity, tasks_, links_[i], faults);
  }
}

ProtocolRunResult ProtocolRuntime::run(std::size_t max_rounds) {
  for (auto& agent : agents_) agent.announce();
  manager_.start();
  ProtocolRunResult result;
  std::size_t stalled = 0;
  for (result.rounds = 0; result.rounds < max_rounds; ++result.rounds) {
    std::size_t progress = manager_.pump();
    for (auto& agent : agents_) progress += agent.pump();
    if (manager_.done()) break;
    if (progress == 0) {
      if (++stalled > stall_limit_) {
        throw std::runtime_error(
            "ProtocolRuntime: no progress with unfinished tasks (allocation "
            "larger than every worker, or all workers lost?)");
      }
    } else {
      stalled = 0;
    }
  }
  if (!manager_.done()) {
    throw std::runtime_error("ProtocolRuntime: round limit exceeded");
  }
  manager_.shutdown_workers();
  for (auto& agent : agents_) agent.pump();

  result.accounting = manager_.accounting();
  result.tasks_completed = manager_.tasks_completed();
  result.tasks_fatal = manager_.tasks_fatal();
  result.chaos.merge(manager_.chaos());
  result.evicted_alloc = manager_.evicted_alloc();
  for (const auto& agent : agents_) result.chaos.merge(agent.chaos());
  for (const auto& link : links_) {
    result.messages +=
        link->to_worker.messages_sent() + link->to_manager.messages_sent();
    result.bytes += link->to_worker.bytes_sent() + link->to_manager.bytes_sent();
    if (const auto* fc = dynamic_cast<const FaultyChannel*>(&link->to_worker)) {
      result.chaos.merge(fc->chaos());
    }
    if (const auto* fc =
            dynamic_cast<const FaultyChannel*>(&link->to_manager)) {
      result.chaos.merge(fc->chaos());
    }
  }
  return result;
}

}  // namespace tora::proto
