#include "proto/manager.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/recovery/snapshot.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace tora::proto {

using core::ResourceKind;
using core::ResourceVector;
using core::recovery::ManagerCrashPoint;
using core::recovery::RecordType;

namespace {

core::lifecycle::DispatchConfig dispatch_config(const LivenessConfig& cfg) {
  core::lifecycle::DispatchConfig dc;
  dc.max_allocation_failures = cfg.max_allocation_failures;
  // Significance stays the paper's default (task id + 1).
  return dc;
}

void save_chaos(util::ByteWriter& w, const core::ChaosCounters& c) {
  for (std::size_t v : {c.messages_dropped, c.messages_duplicated,
                        c.messages_corrupted, c.messages_severed,
                        c.links_severed, c.malformed_lines,
                        c.stale_or_duplicate_results, c.attempt_timeouts,
                        c.redispatches, c.workers_declared_dead,
                        c.workers_quarantined, c.protocol_evictions,
                        c.heartbeats, c.duplicate_dispatches,
                        c.misaddressed_messages, c.worker_crashes,
                        c.dispatches_deferred_backpressure}) {
    w.u64(v);
  }
}

void load_chaos(util::ByteReader& r, core::ChaosCounters& c) {
  for (std::size_t* v :
       {&c.messages_dropped, &c.messages_duplicated, &c.messages_corrupted,
        &c.messages_severed, &c.links_severed, &c.malformed_lines,
        &c.stale_or_duplicate_results, &c.attempt_timeouts, &c.redispatches,
        &c.workers_declared_dead, &c.workers_quarantined,
        &c.protocol_evictions, &c.heartbeats, &c.duplicate_dispatches,
        &c.misaddressed_messages, &c.worker_crashes,
        &c.dispatches_deferred_backpressure}) {
    *v = r.u64();
  }
}

}  // namespace

ProtocolManager::ProtocolManager(std::span<const core::TaskSpec> tasks,
                                 core::TaskAllocator& allocator,
                                 std::vector<DuplexLinkPtr> links,
                                 LivenessConfig cfg)
    : tasks_(tasks),
      allocator_(allocator),
      links_(std::move(links)),
      cfg_(cfg),
      core_(tasks, allocator, dispatch_config(cfg), this),
      proto_states_(tasks.size()),
      quarantined_(links_.size(), 0),
      malformed_logged_(links_.size(), 0),
      bp_sample_(links_.size(), 0),
      deadlines_(cfg.resilience),
      reliability_(cfg.resilience),
      storms_(cfg.resilience) {
  cfg_.resilience.validate();
  for (const auto& link : links_) {
    if (!link) throw std::invalid_argument("ProtocolManager: null link");
  }
}

void ProtocolManager::start() {
  if (started_) throw std::logic_error("ProtocolManager: started twice");
  started_ = true;
  if (journaling()) {
    // Audit the categories interned at construction, then the start marker
    // (replay re-runs core_.start() when it reads Started).
    for (core::CategoryId id = 0; id < allocator_.category_count(); ++id) {
      util::ByteWriter w;
      w.u32(id);
      w.str(allocator_.category_name(id));
      journal(RecordType::CategoryInterned, w.bytes());
    }
    journal(RecordType::Started);
    log_->sync();
  }
  core_.start();
}

std::size_t ProtocolManager::pump() {
  // Crash taxonomy (core/recovery/crash.hpp): every equality-safe point is
  // preceded by a journal sync covering everything this tick did so far, so
  // recovery replays to the exact pre-crash state and the interrupted
  // tick's remaining phases run exactly once.
  reach(ManagerCrashPoint::PumpBegin, tick_ + 1);
  ++tick_;
  if (journaling()) {
    util::ByteWriter w;
    w.u64(tick_);
    journal(RecordType::Tick, w.bytes());
  }
  std::size_t handled = 0;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    while (auto line = links_[i]->to_manager.poll()) {
      if (journaling()) {
        // Write-ahead: the line is journaled BEFORE it is handled. A crash
        // after the sync below can always re-derive its effects; the line
        // itself is gone from the channel either way.
        util::ByteWriter w;
        w.u32(static_cast<std::uint32_t>(i));
        w.str(*line);
        journal(RecordType::Input, w.bytes());
      }
      if (handle_line(i, *line)) ++handled;
    }
  }
  if (journaling()) {
    reach(ManagerCrashPoint::BeforeJournalSync, tick_);
    log_->sync();
  }
  reach(ManagerCrashPoint::AfterDrain, tick_);
  check_liveness();
  if (journaling()) {
    journal(RecordType::LivenessDone);
    log_->sync();
  }
  reach(ManagerCrashPoint::AfterLiveness, tick_);
  sample_backpressure();
  if (journaling() &&
      std::count(bp_sample_.begin(), bp_sample_.end(), 1) > 0) {
    // Transport state is outside the journal's deterministic universe, so
    // the observation itself becomes an input record. The all-clear case
    // stays implicit: a Tick with no Backpressure record replays as zeros.
    util::ByteWriter w;
    std::uint32_t count = 0;
    for (char b : bp_sample_) count += b != 0;
    w.u32(count);
    for (std::size_t i = 0; i < bp_sample_.size(); ++i) {
      if (bp_sample_[i]) w.u32(static_cast<std::uint32_t>(i));
    }
    journal(RecordType::Backpressure, w.bytes());
  }
  dispatch_queued();
  if (journaling()) {
    journal(RecordType::DispatchDone);
    log_->sync();
  }
  reach(ManagerCrashPoint::PumpEnd, tick_);
  maybe_snapshot();
  return handled;
}

bool ProtocolManager::handle_line(std::size_t link_index,
                                  const std::string& line) {
  const auto msg = decode(line);
  if (!msg) {
    note_malformed(link_index, line);
    return false;
  }
  if (msg->type == MsgType::Heartbeat) {
    // Liveness traffic, not workflow progress: callers use pump()'s
    // return value to detect stalls, so heartbeats stay uncounted.
    ++chaos_.heartbeats;
    on_heartbeat(*msg);
    return false;
  }
  touch(msg->worker_id);
  handle(*msg);
  return true;
}

void ProtocolManager::note_malformed(std::size_t link_index,
                                     const std::string& line) {
  ++chaos_.malformed_lines;
  if (!malformed_logged_[link_index]) {
    malformed_logged_[link_index] = 1;
    util::log_warn("manager: malformed line from worker ", link_index,
                   " (logged once per worker, counting continues): ", line);
  }
}

void ProtocolManager::touch(std::uint64_t worker_id) {
  auto it = workers_.find(worker_id);
  if (it != workers_.end()) it->second.last_seen_tick = tick_;
}

void ProtocolManager::on_heartbeat(const Message& msg) {
  if (msg.worker_id >= links_.size()) {
    util::log_warn("manager: heartbeat from unknown worker ", msg.worker_id);
    return;
  }
  if (is_quarantined(msg.worker_id)) return;
  auto it = workers_.find(msg.worker_id);
  if (it != workers_.end()) {
    it->second.last_seen_tick = tick_;
    return;
  }
  // The heartbeat carries capacity exactly for this case: a worker whose
  // announcement was lost, or one spuriously declared dead, re-registers
  // without a round-trip. A convicted worker whose sentence elapsed
  // re-registers here too — on probation until it delivers a result.
  if (cfg_.resilience.reliability &&
      reliability_.probationary(msg.worker_id, static_cast<double>(tick_))) {
    ++res_counters_.probation_admissions;
  }
  WorkerState ws;
  ws.capacity = msg.resources;
  ws.link = links_[msg.worker_id];
  ws.last_seen_tick = tick_;
  workers_[msg.worker_id] = std::move(ws);
}

void ProtocolManager::handle(const Message& msg) {
  switch (msg.type) {
    case MsgType::WorkerReady: {
      // Worker ids equal link indices (the runtime assigns both); a ready
      // message from an unknown id is a protocol violation.
      if (msg.worker_id >= links_.size()) {
        util::log_warn("manager: ready from unknown worker ", msg.worker_id);
        break;
      }
      if (is_quarantined(msg.worker_id)) break;
      if (auto it = workers_.find(msg.worker_id); it != workers_.end()) {
        // A duplicated announcement must not reset `committed`, or the
        // manager would over-admit against the phantom free capacity.
        it->second.capacity = msg.resources;
        it->second.last_seen_tick = tick_;
        break;
      }
      if (cfg_.resilience.reliability &&
          reliability_.probationary(msg.worker_id,
                                    static_cast<double>(tick_))) {
        ++res_counters_.probation_admissions;
      }
      WorkerState ws;
      ws.capacity = msg.resources;
      ws.link = links_[msg.worker_id];
      ws.last_seen_tick = tick_;
      workers_[msg.worker_id] = std::move(ws);
      break;
    }
    case MsgType::TaskResult:
      on_result(msg);
      break;
    case MsgType::Evict: {
      // Requeue with the same allocation; not charged to the algorithm
      // (the eviction ledger, scale 1 per lost attempt).
      if (msg.task_id < core_.task_count() &&
          core_.entry(msg.task_id).phase ==
              core::lifecycle::TaskPhase::Running) {
        const auto& entry = core_.entry(msg.task_id);
        const ProtoTaskState& st = proto_states_[msg.task_id];
        if (st.spec_active && msg.worker_id == st.spec_worker &&
            msg.worker_id != entry.running_on) {
          // Only the speculative duplicate was evicted: cancel it (the
          // insurance premium, not the ledger); the primary attempt is
          // untouched.
          cancel_speculation(msg.task_id);
          break;
        }
        auto it = workers_.find(entry.running_on);
        if (it != workers_.end()) it->second.committed -= entry.alloc;
        ++chaos_.protocol_evictions;
        ++chaos_.redispatches;
        core_.charge_eviction(msg.task_id, 1.0);
        storms_.on_eviction(static_cast<double>(tick_));
        if (cfg_.resilience.reliability) {
          reliability_.on_offense(entry.running_on);
        }
        if (st.spec_active && workers_.count(st.spec_worker) != 0) {
          // A duplicate is alive elsewhere: it takes over as the primary
          // attempt — no requeue, the eviction charge above is the only
          // cost of the handover.
          promote_speculation(msg.task_id);
        } else {
          cancel_speculation(msg.task_id);
          core_.requeue_front(msg.task_id);
        }
      }
      break;
    }
    default:
      util::log_warn("manager: unexpected message type");
      break;
  }
}

void ProtocolManager::on_result(const Message& msg) {
  if (msg.task_id >= core_.task_count()) {
    util::log_warn("manager: result for unknown task ", msg.task_id);
    return;
  }
  const auto& entry = core_.entry(msg.task_id);
  ProtoTaskState& st = proto_states_[msg.task_id];
  // Idempotency gate: accept a result only for the attempt currently in
  // flight, from the worker it was dispatched to — or from its speculative
  // duplicate (same attempt id, different worker). Anything else is a
  // duplicate delivery or a report for an attempt already abandoned —
  // crediting it would double-charge WasteAccounting.
  const bool current = entry.phase == core::lifecycle::TaskPhase::Running &&
                       msg.attempt == entry.attempts;
  const bool from_primary = current && entry.running_on == msg.worker_id;
  const bool from_duplicate = current && !from_primary && st.spec_active &&
                              st.spec_worker == msg.worker_id;
  if (!from_primary && !from_duplicate) {
    ++chaos_.stale_or_duplicate_results;
    return;
  }
  if (from_duplicate) {
    // First result wins: the duplicate beat the primary. The abandoned
    // primary attempt is speculative waste (never the eviction ledger —
    // nothing was evicted), and its late result will fail the gate above
    // once the duplicate is promoted below.
    auto pit = workers_.find(entry.running_on);
    if (pit != workers_.end()) pit->second.committed -= entry.alloc;
    core_.charge_speculation(msg.task_id, 1.0);
    promote_speculation(msg.task_id);
  } else if (st.spec_active) {
    // The primary won with a duplicate still in flight: cancel it (its
    // capacity frees now; its late result will be stale).
    cancel_speculation(msg.task_id);
  }
  auto wit = workers_.find(msg.worker_id);
  if (wit != workers_.end()) {
    wit->second.committed -= entry.alloc;
    wit->second.consecutive_failures = 0;
  }
  st.infra_failures = 0;
  if (cfg_.resilience.reliability) reliability_.on_success(msg.worker_id);

  if (msg.outcome == Outcome::Success) {
    // Feed the deadline histogram with the observable attempt duration in
    // the manager's clock unit — pump ticks from dispatch to result — not
    // the worker-reported model seconds, which the tick-based deadline and
    // straggler windows could not be compared against. Successful attempts
    // only: failures end early and would skew the quantiles down.
    if (cfg_.resilience.deadlines || cfg_.resilience.speculation) {
      deadlines_.observe(core_.category_of(msg.task_id),
                         static_cast<double>(tick_ - st.dispatch_tick));
    }
    // The worker-measured peak and runtime feed the shared machine, which
    // handles accounting, the allocator record, and dependent release.
    core_.complete(msg.task_id, msg.resources, msg.runtime_s);
    return;
  }

  // Resource exhaustion: the shared machine logs the failed attempt,
  // spends the fatal budget (only allocation-induced failures do —
  // infrastructure retries never), and escalates the exceeded dimensions.
  core_.fail_attempt(msg.task_id, msg.runtime_s, msg.exceeded_mask);
}

void ProtocolManager::check_liveness() {
  // Advance the storm window first so degraded mode can exit on a quiet
  // tick, not only on the next eviction.
  storms_.update(static_cast<double>(tick_));

  // Silence deaths first: a worker whose heartbeats stopped takes all its
  // in-flight tasks with it, and those are evictions, not timeouts.
  std::vector<std::uint64_t> dead;
  for (const auto& [wid, ws] : workers_) {
    if (tick_ - ws.last_seen_tick > cfg_.silence_ticks) dead.push_back(wid);
  }
  for (std::uint64_t wid : dead) {
    ++chaos_.workers_declared_dead;
    util::log_info("manager: worker ", wid, " silent beyond ",
                   cfg_.silence_ticks, " ticks, declaring dead");
    if (cfg_.resilience.reliability) reliability_.on_offense(wid);
    remove_worker(wid, false);
  }

  // Attempt timeouts: the worker still heartbeats but this attempt's
  // dispatch or result went missing. Abandon the attempt (its id is now
  // stale, so a late result is rejected) and redispatch under backoff. A
  // worker that keeps timing out is quarantined — that is the only way to
  // detect a one-way severed manager->worker link. With the resilience
  // layer on, the one-size-fits-all window is replaced by the category's
  // histogram-derived deadline once it has evidence, widened while a storm
  // rages (eviction storms make everything slow; timing the pool out on
  // top of it only amplifies the churn).
  const double widen =
      storms_.degraded() ? cfg_.resilience.degraded_deadline_widen : 1.0;
  for (std::size_t t = 0; t < core_.task_count(); ++t) {
    const auto& entry = core_.entry(t);
    if (entry.phase != core::lifecycle::TaskPhase::Running) continue;
    ProtoTaskState& st = proto_states_[t];
    double limit = static_cast<double>(cfg_.attempt_timeout_ticks) * widen;
    bool adaptive = false;
    if (cfg_.resilience.deadlines && deadlines_.adaptive(core_.category_of(t))) {
      limit = deadlines_.deadline(
          core_.category_of(t),
          static_cast<double>(cfg_.attempt_timeout_ticks), widen);
      adaptive = true;
    }
    const bool timed_out =
        static_cast<double>(tick_ - st.dispatch_tick) > limit;
    const bool spec_timed_out =
        st.spec_active && static_cast<double>(tick_ - st.spec_tick) > limit;
    if (spec_timed_out && !timed_out) {
      // The duplicate hung while the primary is still within its window:
      // cancel it and penalize its worker like any other timeout.
      const std::uint64_t sw = st.spec_worker;
      ++chaos_.attempt_timeouts;
      cancel_speculation(t);
      if (cfg_.resilience.reliability) reliability_.on_offense(sw);
      auto sit = workers_.find(sw);
      if (sit != workers_.end() &&
          ++sit->second.consecutive_failures >= cfg_.worker_failure_limit) {
        remove_worker(sw, true);
      }
      continue;
    }
    if (!timed_out) continue;
    ++chaos_.attempt_timeouts;
    if (adaptive) ++res_counters_.adaptive_deadlines_used;
    const std::uint64_t wid = entry.running_on;
    auto it = workers_.find(wid);
    if (it != workers_.end()) it->second.committed -= entry.alloc;
    if (cfg_.resilience.reliability) reliability_.on_offense(wid);
    if (st.spec_active && !spec_timed_out &&
        workers_.count(st.spec_worker) != 0) {
      // The primary timed out but its duplicate is fresh: the duplicate
      // becomes the primary instead of abandoning the attempt. Timeouts
      // charge neither ledger, exactly like the legacy path.
      ++chaos_.redispatches;
      promote_speculation(t);
    } else {
      cancel_speculation(t);
      requeue_infra(t);
    }
    if (it != workers_.end() &&
        ++it->second.consecutive_failures >= cfg_.worker_failure_limit) {
      util::log_info("manager: worker ", wid, " hit ",
                     cfg_.worker_failure_limit,
                     " consecutive attempt timeouts, quarantining");
      remove_worker(wid, true);
    }
  }
}

void ProtocolManager::requeue_infra(std::uint64_t task_id) {
  if (core_.entry(task_id).phase != core::lifecycle::TaskPhase::Running) {
    return;
  }
  core_.requeue_front(task_id);
  ++chaos_.redispatches;
  ProtoTaskState& st = proto_states_[task_id];
  ++st.infra_failures;
  const std::size_t shift =
      std::min<std::size_t>(st.infra_failures - 1, std::size_t{16});
  st.backoff_until =
      tick_ + std::min(cfg_.backoff_cap_ticks, cfg_.backoff_base_ticks << shift);
}

void ProtocolManager::remove_worker(std::uint64_t worker_id, bool quarantine) {
  for (std::size_t t = 0; t < core_.task_count(); ++t) {
    const auto& entry = core_.entry(t);
    if (entry.phase != core::lifecycle::TaskPhase::Running) continue;
    ProtoTaskState& st = proto_states_[t];
    if (entry.running_on == worker_id) {
      // The attempt died with the worker: charge it as an eviction (the
      // allocation was fine, the infrastructure was not).
      ++chaos_.protocol_evictions;
      core_.charge_eviction(t, 1.0);
      storms_.on_eviction(static_cast<double>(tick_));
      if (st.spec_active && st.spec_worker != worker_id &&
          workers_.count(st.spec_worker) != 0) {
        // A speculative duplicate is alive elsewhere: it takes over as the
        // primary attempt instead of a requeue. Exactly one eviction charge
        // for the lost primary; the handover itself costs nothing.
        ++chaos_.redispatches;
        promote_speculation(t);
      } else {
        cancel_speculation(t);
        requeue_infra(t);
      }
    } else if (st.spec_active && st.spec_worker == worker_id) {
      // Only the duplicate died with the worker: speculative waste, never
      // the eviction ledger — the primary attempt is untouched.
      core_.charge_speculation(t, 1.0);
      ++res_counters_.speculations_cancelled;
      st.spec_active = false;
    }
  }
  workers_.erase(worker_id);
  if (quarantine && worker_id < quarantined_.size()) {
    ++chaos_.workers_quarantined;
    if (cfg_.resilience.reliability) {
      // Probationary re-admission instead of a permanent flag: the sentence
      // doubles (sentence_growth) per prior conviction.
      if (reliability_.convictions(worker_id) > 0) {
        ++res_counters_.requarantines;
      }
      reliability_.quarantine(worker_id, static_cast<double>(tick_));
    } else {
      quarantined_[worker_id] = 1;
    }
  }
}

bool ProtocolManager::is_quarantined(std::uint64_t worker_id) const {
  if (worker_id < quarantined_.size() && quarantined_[worker_id]) return true;
  return cfg_.resilience.reliability &&
         reliability_.quarantined(worker_id, static_cast<double>(tick_));
}

bool ProtocolManager::churn_evidence() const noexcept {
  return chaos_.protocol_evictions + chaos_.workers_declared_dead +
             chaos_.attempt_timeouts >
         0;
}

void ProtocolManager::sample_backpressure() {
  bp_sampled_this_tick_ = true;
  std::fill(bp_sample_.begin(), bp_sample_.end(), 0);
  for (const auto& [wid, ws] : workers_) {
    if (ws.link->to_worker.backpressured()) bp_sample_[wid] = 1;
  }
}

bool ProtocolManager::transport_overloaded() const noexcept {
  if (workers_.empty()) return false;
  const std::size_t pushed =
      static_cast<std::size_t>(std::count(bp_sample_.begin(),
                                          bp_sample_.end(), 1));
  return pushed > 0 && pushed * 2 >= workers_.size();
}

std::optional<std::uint64_t> ProtocolManager::place_worker(
    const ResourceVector& alloc, std::optional<std::uint64_t> exclude,
    bool* bp_blocked) const {
  const auto pushed_back = [this, bp_blocked](std::uint64_t wid) {
    if (wid >= bp_sample_.size() || !bp_sample_[wid]) return false;
    if (bp_blocked) *bp_blocked = true;
    return true;
  };
  if (!cfg_.resilience.reliability) {
    // First-fit against announced capacities (the legacy policy).
    for (const auto& [wid, ws] : workers_) {
      if (exclude && wid == *exclude) continue;
      if (!alloc.fits_within(ws.capacity - ws.committed)) continue;
      if (pushed_back(wid)) continue;
      return wid;
    }
    return std::nullopt;
  }
  // Reliability-aware: the most reliable non-probationary fit, ties to the
  // lowest id (the map order); probationary workers only as a last resort.
  std::optional<std::uint64_t> pick;
  double pick_score = -1.0;
  bool pick_probationary = true;
  const double now = static_cast<double>(tick_);
  for (const auto& [wid, ws] : workers_) {
    if (exclude && wid == *exclude) continue;
    if (!alloc.fits_within(ws.capacity - ws.committed)) continue;
    if (pushed_back(wid)) continue;
    const bool probationary = reliability_.probationary(wid, now);
    const double score = reliability_.score(wid);
    const bool better = !pick || (pick_probationary && !probationary) ||
                        (pick_probationary == probationary &&
                         score > pick_score);
    if (better) {
      pick = wid;
      pick_score = score;
      pick_probationary = probationary;
    }
  }
  return pick;
}

void ProtocolManager::dispatch_queued() {
  // Degraded-mode admission control: while a storm rages — or the
  // transport itself is drowning (half the links backpressured) — cap the
  // number of in-flight attempts; every dispatch into a collapsing pool or
  // a saturated pipe is likely eviction fodder / backlog fuel.
  const bool capped = storms_.degraded() || transport_overloaded();
  std::size_t inflight = 0;
  if (capped) {
    for (std::size_t t = 0; t < core_.task_count(); ++t) {
      if (core_.entry(t).phase == core::lifecycle::TaskPhase::Running) {
        ++inflight;
      }
    }
  }
  core_.dispatch_pass(
      // Placement query, no commit (see place_worker for the policy).
      [this, capped, &inflight](std::uint64_t, const ResourceVector& alloc)
          -> std::optional<std::uint64_t> {
        if (capped && inflight >= cfg_.resilience.degraded_inflight_cap) {
          ++res_counters_.dispatches_held;
          return std::nullopt;
        }
        bool bp_blocked = false;
        const auto wid = place_worker(alloc, std::nullopt, &bp_blocked);
        if (!wid && bp_blocked) {
          // Would have placed, but the chosen transport can't absorb more:
          // the task waits for the queue to drain below the low watermark.
          ++chaos_.dispatches_deferred_backpressure;
        }
        return wid;
      },
      // Commit: bind the resources and put the dispatch on the wire. The
      // machine already stamped the attempt id (entry.attempts).
      [this, &inflight](std::uint64_t task_id, std::uint64_t wid,
                        const ResourceVector& alloc) {
        WorkerState& ws = workers_.at(wid);
        ws.committed += alloc;
        proto_states_[task_id].dispatch_tick = tick_;
        ++inflight;
        if (!replaying_) {
          Message m;
          m.type = MsgType::TaskDispatch;
          m.worker_id = wid;
          m.task_id = task_id;
          m.attempt = core_.entry(task_id).attempts;
          m.category = tasks_[task_id].category;
          m.resources = alloc;
          ws.link->to_worker.send(encode(m));
        }
        // Counted even during replay: the crashed manager sent the message,
        // so the reconstructed counter must include it.
        ++dispatches_;
      },
      // Defer: capped-exponential-backoff windows after infra failures.
      [this](std::uint64_t task_id) {
        return proto_states_[task_id].backoff_until > tick_;
      });
  maybe_speculate();
}

void ProtocolManager::maybe_speculate() {
  const auto& res = cfg_.resilience;
  // Gates: feature on, pool not degraded (a storm makes every duplicate
  // eviction fodder too), and churn actually observed — a calm run never
  // spends a cycle on insurance.
  if (!res.speculation || storms_.degraded() || !churn_evidence()) return;
  for (std::size_t t = 0; t < core_.task_count(); ++t) {
    const auto& entry = core_.entry(t);
    if (entry.phase != core::lifecycle::TaskPhase::Running) continue;
    ProtoTaskState& st = proto_states_[t];
    if (st.spec_active) continue;
    auto threshold = deadlines_.straggler_threshold(core_.category_of(t));
    if (!threshold) continue;  // no evidence for this category yet
    if (static_cast<double>(tick_ - st.dispatch_tick) <= *threshold) continue;
    const auto wid = place_worker(entry.alloc, entry.running_on);
    if (!wid) continue;
    WorkerState& ws = workers_.at(*wid);
    ws.committed += entry.alloc;
    st.spec_active = true;
    st.spec_worker = *wid;
    st.spec_tick = tick_;
    ++res_counters_.speculations_launched;
    if (!replaying_) {
      // The duplicate carries the SAME wire attempt id: whichever worker
      // answers first passes the idempotency gate, the other is stale.
      Message m;
      m.type = MsgType::TaskDispatch;
      m.worker_id = *wid;
      m.task_id = t;
      m.attempt = entry.attempts;
      m.category = tasks_[t].category;
      m.resources = entry.alloc;
      ws.link->to_worker.send(encode(m));
    }
  }
}

void ProtocolManager::cancel_speculation(std::uint64_t task_id) {
  ProtoTaskState& st = proto_states_[task_id];
  if (!st.spec_active) return;
  auto it = workers_.find(st.spec_worker);
  if (it != workers_.end()) {
    it->second.committed -= core_.entry(task_id).alloc;
  }
  core_.charge_speculation(task_id, 1.0);
  ++res_counters_.speculations_cancelled;
  st.spec_active = false;
}

void ProtocolManager::promote_speculation(std::uint64_t task_id) {
  ProtoTaskState& st = proto_states_[task_id];
  core_.rebind_running(task_id, st.spec_worker);
  st.dispatch_tick = st.spec_tick;
  st.spec_active = false;
  ++res_counters_.speculations_promoted;
}

// ------------------------------------------------------------- recovery

void ProtocolManager::attach_recovery(core::recovery::RecoveryLog* log,
                                      core::recovery::CrashMonitor* crashes,
                                      core::recovery::RecoveryConfig recovery,
                                      core::RecoveryCounters* counters) {
  log_ = log;
  crashes_ = crashes;
  recovery_cfg_ = recovery;
  recovery_counters_ = counters;
}

bool ProtocolManager::journaling() const noexcept {
  return log_ != nullptr && log_->writable() && !replaying_;
}

void ProtocolManager::journal(RecordType type, std::string_view payload) {
  log_->append(type, payload);
}

void ProtocolManager::reach(ManagerCrashPoint point, std::uint64_t tick) {
  if (crashes_) crashes_->reach(point, tick);
}

void ProtocolManager::maybe_snapshot() {
  if (!journaling() || recovery_cfg_.snapshot_every_ticks == 0) return;
  if (tick_ % recovery_cfg_.snapshot_every_ticks != 0) return;
  log_->rotate(snapshot_body(), tick_);
}

void ProtocolManager::task_fatal(std::uint64_t task_id) {
  if (!journaling()) return;
  util::ByteWriter w;
  w.u64(task_id);
  journal(RecordType::TaskFatal, w.bytes());
}

void ProtocolManager::allocation_committed(std::uint64_t task_id,
                                           const ResourceVector& alloc,
                                           bool is_retry) {
  if (!journaling()) return;
  util::ByteWriter w;
  w.u64(task_id);
  for (ResourceKind k : core::kAllResources) w.f64(alloc[k]);
  w.u8(is_retry ? 1 : 0);
  journal(RecordType::AllocationCommitted, w.bytes());
}

void ProtocolManager::task_dispatched(std::uint64_t task_id,
                                      std::uint64_t worker,
                                      std::uint32_t attempt) {
  if (!journaling()) return;
  util::ByteWriter w;
  w.u64(task_id);
  w.u64(worker);
  w.u64(attempt);
  journal(RecordType::TaskDispatched, w.bytes());
}

void ProtocolManager::task_completed(std::uint64_t task_id,
                                     const ResourceVector& measured_peak,
                                     double runtime_s) {
  if (!journaling()) return;
  util::ByteWriter w;
  w.u64(task_id);
  for (ResourceKind k : core::kAllResources) w.f64(measured_peak[k]);
  w.f64(runtime_s);
  journal(RecordType::TaskCompleted, w.bytes());
}

void ProtocolManager::task_failed_attempt(std::uint64_t task_id,
                                          double runtime_s,
                                          unsigned exceeded_mask,
                                          bool requeued) {
  if (!journaling()) return;
  util::ByteWriter w;
  w.u64(task_id);
  w.f64(runtime_s);
  w.u32(exceeded_mask);
  w.u8(requeued ? 1 : 0);
  journal(RecordType::TaskAttemptFailed, w.bytes());
}

void ProtocolManager::task_requeued(std::uint64_t task_id) {
  if (!journaling()) return;
  util::ByteWriter w;
  w.u64(task_id);
  journal(RecordType::TaskRequeued, w.bytes());
}

void ProtocolManager::task_evicted(std::uint64_t task_id, double scale) {
  if (!journaling()) return;
  util::ByteWriter w;
  w.u64(task_id);
  w.f64(scale);
  journal(RecordType::TaskEvicted, w.bytes());
}

std::string ProtocolManager::snapshot_body() const {
  util::ByteWriter w;
  core::recovery::save_allocator(allocator_, w);
  core_.save_state(w);
  w.u64(tick_);
  w.u64(dispatches_);
  w.u8(started_ ? 1 : 0);
  w.u64(workers_.size());
  for (const auto& [wid, ws] : workers_) {
    w.u64(wid);
    for (ResourceKind k : core::kAllResources) w.f64(ws.capacity[k]);
    for (ResourceKind k : core::kAllResources) w.f64(ws.committed[k]);
    w.u64(ws.last_seen_tick);
    w.u64(ws.consecutive_failures);
  }
  w.u64(proto_states_.size());
  for (const ProtoTaskState& st : proto_states_) {
    w.u64(st.dispatch_tick);
    w.u64(st.backoff_until);
    w.u64(st.infra_failures);
    w.u8(st.spec_active ? 1 : 0);
    w.u64(st.spec_worker);
    w.u64(st.spec_tick);
  }
  w.u64(quarantined_.size());
  for (char q : quarantined_) w.u8(static_cast<std::uint8_t>(q));
  w.u64(malformed_logged_.size());
  for (char m : malformed_logged_) w.u8(static_cast<std::uint8_t>(m));
  save_chaos(w, chaos_);
  deadlines_.save(w);
  reliability_.save(w);
  storms_.save(w);
  res_counters_.save(w);
  return w.take();
}

void ProtocolManager::restore_state(util::ByteReader& r) {
  core::recovery::load_allocator(allocator_, r);
  core_.load_state(r);
  tick_ = r.u64();
  dispatches_ = r.u64();
  started_ = r.u8() != 0;
  workers_.clear();
  const std::uint64_t worker_count = r.u64();
  for (std::uint64_t i = 0; i < worker_count; ++i) {
    const std::uint64_t wid = r.u64();
    if (wid >= links_.size()) {
      throw std::runtime_error(
          "recovery snapshot: worker id beyond the link table (snapshot from "
          "a different deployment?)");
    }
    WorkerState ws;
    for (ResourceKind k : core::kAllResources) ws.capacity[k] = r.f64();
    for (ResourceKind k : core::kAllResources) ws.committed[k] = r.f64();
    ws.last_seen_tick = r.u64();
    ws.consecutive_failures = r.u64();
    // Links are rebound by position: worker ids equal link indices, and the
    // links (with their in-flight messages) survive the manager crash.
    ws.link = links_[wid];
    workers_[wid] = std::move(ws);
  }
  if (r.u64() != proto_states_.size()) {
    throw std::runtime_error(
        "recovery snapshot: per-task state count does not match the workload");
  }
  for (ProtoTaskState& st : proto_states_) {
    st.dispatch_tick = r.u64();
    st.backoff_until = r.u64();
    st.infra_failures = r.u64();
    st.spec_active = r.u8() != 0;
    st.spec_worker = r.u64();
    st.spec_tick = r.u64();
  }
  if (r.u64() != quarantined_.size()) {
    throw std::runtime_error(
        "recovery snapshot: quarantine set does not match the link table");
  }
  for (char& q : quarantined_) q = static_cast<char>(r.u8());
  if (r.u64() != malformed_logged_.size()) {
    throw std::runtime_error(
        "recovery snapshot: malformed-log set does not match the link table");
  }
  for (char& m : malformed_logged_) m = static_cast<char>(r.u8());
  load_chaos(r, chaos_);
  deadlines_.load(r);
  reliability_.load(r);
  storms_.load(r);
  res_counters_.load(r);
}

std::size_t ProtocolManager::recover(
    const core::recovery::RecoveryLog::ScanResult& scan) {
  if (started_ || tick_ != 0) {
    throw std::logic_error(
        "ProtocolManager::recover: manager must be freshly constructed");
  }
  if (scan.snapshot) {
    util::ByteReader r(*scan.snapshot);
    restore_state(r);
    if (!r.done()) {
      throw std::runtime_error("recovery snapshot: trailing bytes");
    }
  }

  // Replay the journal tail through the real handlers with sends
  // suppressed: every state transition re-derives exactly (the inputs are
  // the only nondeterminism), while the wire stays untouched — the channels
  // still hold whatever was in flight at the crash.
  replaying_ = true;
  bool liveness_pending = false;
  bool dispatch_pending = false;
  std::size_t handled = 0;
  for (const core::recovery::JournalRecord& rec : scan.tail) {
    if (recovery_counters_) ++recovery_counters_->records_replayed;
    switch (rec.type) {
      case RecordType::Epoch:
        break;
      case RecordType::Started:
        started_ = true;
        core_.start();
        break;
      case RecordType::Tick: {
        util::ByteReader r(rec.payload);
        ++tick_;
        if (r.u64() != tick_) {
          replaying_ = false;
          throw std::runtime_error("recovery journal: tick out of sequence");
        }
        liveness_pending = true;
        dispatch_pending = true;
        handled = 0;
        // A fresh tick starts with an all-clear sample; a Backpressure
        // record below overrides it if the crashed manager observed one.
        std::fill(bp_sample_.begin(), bp_sample_.end(), 0);
        bp_sampled_this_tick_ = false;
        if (recovery_counters_) ++recovery_counters_->ticks_replayed;
        break;
      }
      case RecordType::Input: {
        util::ByteReader r(rec.payload);
        const std::uint32_t link = r.u32();
        const std::string line = r.str();
        if (link >= links_.size()) {
          replaying_ = false;
          throw std::runtime_error(
              "recovery journal: input from an unknown link");
        }
        if (handle_line(link, line)) ++handled;
        if (recovery_counters_) ++recovery_counters_->inputs_replayed;
        break;
      }
      case RecordType::LivenessDone:
        check_liveness();
        liveness_pending = false;
        break;
      case RecordType::Backpressure: {
        util::ByteReader r(rec.payload);
        std::fill(bp_sample_.begin(), bp_sample_.end(), 0);
        const std::uint32_t count = r.u32();
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::uint32_t link = r.u32();
          if (link >= bp_sample_.size()) {
            replaying_ = false;
            throw std::runtime_error(
                "recovery journal: backpressure sample beyond the link "
                "table");
          }
          bp_sample_[link] = 1;
        }
        bp_sampled_this_tick_ = true;
        break;
      }
      case RecordType::DispatchDone:
        dispatch_queued();
        dispatch_pending = false;
        break;
      default:
        // Lifecycle audit records: the same state change re-derives from
        // the input replay above; re-applying would double it.
        break;
    }
  }
  replaying_ = false;

  // Finish the interrupted tick. A phase with no completion marker never
  // ran before the crash, so it runs here exactly once — with sends
  // ENABLED, because its messages never reached the wire.
  if (liveness_pending) check_liveness();
  if (dispatch_pending) {
    // The journaled sample (if the crashed manager got that far) wins; a
    // phase that never sampled observes the live transport now, exactly as
    // the interrupted tick would have.
    if (!bp_sampled_this_tick_) sample_backpressure();
    dispatch_queued();
  }
  return handled;
}

void ProtocolManager::shutdown_workers() {
  for (auto& [wid, ws] : workers_) {
    Message m;
    m.type = MsgType::Shutdown;
    m.worker_id = wid;
    ws.link->to_worker.send(encode(m));
  }
}

// ---------------------------------------------------------------- runtime

std::vector<DuplexLinkPtr> build_chaos_links(std::size_t num_workers,
                                             const ChaosConfig& chaos) {
  std::vector<DuplexLinkPtr> links;
  links.reserve(num_workers);
  util::Rng rng(chaos.seed);
  std::vector<char> severed(num_workers, 0);
  if (chaos.sever_workers > 0 && num_workers > 1) {
    // Cap at n-1 so at least one worker keeps both directions; the run
    // stays completable no matter how unlucky the draw.
    util::Rng pick = rng.split("sever");
    const std::size_t want = std::min(chaos.sever_workers, num_workers - 1);
    std::size_t chosen = 0;
    while (chosen < want) {
      const auto w = pick.uniform_int(0, num_workers - 1);
      if (!severed[w]) {
        severed[w] = 1;
        ++chosen;
      }
    }
  }
  for (std::size_t i = 0; i < num_workers; ++i) {
    FaultPlan to_worker = chaos.to_worker;
    FaultPlan to_manager = chaos.to_manager;
    if (severed[i]) {
      to_worker.sever_after_messages = chaos.sever_after_messages;
      to_manager.sever_after_messages = chaos.sever_after_messages;
    }
    if (to_worker.enabled() || to_manager.enabled()) {
      // Labeled splits: each channel gets a stream derived from (seed,
      // direction, worker), independent of construction order.
      const std::string tag = std::to_string(i);
      links.push_back(std::make_shared<DuplexLink>(
          std::make_unique<FaultyChannel>(to_worker,
                                          rng.split("to_worker/" + tag)),
          std::make_unique<FaultyChannel>(to_manager,
                                          rng.split("to_manager/" + tag))));
    } else {
      links.push_back(std::make_shared<DuplexLink>());
    }
  }
  return links;
}

std::size_t chaos_stall_limit(const ChaosConfig& chaos) {
  if (!chaos.enabled()) return 0;  // fault-free runs fail fast, as before
  // Under chaos, quiet rounds are legitimate: backoff windows, timeout
  // windows and silence windows all pass without countable progress. Allow
  // a generous multiple of the longest detection chain before giving up.
  const LivenessConfig& lv = chaos.liveness;
  return 64 * (lv.silence_ticks + lv.attempt_timeout_ticks +
               lv.backoff_cap_ticks + 4);
}

ProtocolRuntime::ProtocolRuntime(std::span<const core::TaskSpec> tasks,
                                 core::TaskAllocator& allocator,
                                 std::size_t num_workers,
                                 core::ResourceVector worker_capacity)
    : ProtocolRuntime(tasks, allocator, num_workers, worker_capacity,
                      ChaosConfig{}) {}

ProtocolRuntime::ProtocolRuntime(std::span<const core::TaskSpec> tasks,
                                 core::TaskAllocator& allocator,
                                 std::size_t num_workers,
                                 core::ResourceVector worker_capacity,
                                 const ChaosConfig& chaos)
    : tasks_(tasks),
      allocator_(allocator),
      links_(build_chaos_links(num_workers, chaos)),
      manager_(tasks, allocator, links_, chaos.liveness),
      stall_limit_(chaos_stall_limit(chaos)) {
  if (num_workers == 0) {
    throw std::invalid_argument("ProtocolRuntime: need at least one worker");
  }
  agents_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    const WorkerFaultConfig faults = i < chaos.worker_faults.size()
                                         ? chaos.worker_faults[i]
                                         : WorkerFaultConfig{};
    agents_.emplace_back(i, worker_capacity, tasks_, links_[i], faults);
  }
}

ProtocolRunResult ProtocolRuntime::run(std::size_t max_rounds) {
  for (auto& agent : agents_) agent.announce();
  manager_.start();
  ProtocolRunResult result;
  std::size_t stalled = 0;
  for (result.rounds = 0; result.rounds < max_rounds; ++result.rounds) {
    std::size_t progress = manager_.pump();
    for (auto& agent : agents_) progress += agent.pump();
    if (manager_.done()) break;
    if (progress == 0) {
      if (++stalled > stall_limit_) {
        throw std::runtime_error(
            "ProtocolRuntime: no progress with unfinished tasks (allocation "
            "larger than every worker, or all workers lost?)");
      }
    } else {
      stalled = 0;
    }
  }
  if (!manager_.done()) {
    throw std::runtime_error("ProtocolRuntime: round limit exceeded");
  }
  manager_.shutdown_workers();
  for (auto& agent : agents_) agent.pump();

  result.accounting = manager_.accounting();
  result.tasks_completed = manager_.tasks_completed();
  result.tasks_fatal = manager_.tasks_fatal();
  result.chaos.merge(manager_.chaos());
  result.evicted_alloc = manager_.evicted_alloc();
  result.resilience = manager_.resilience();
  for (const auto& agent : agents_) result.chaos.merge(agent.chaos());
  for (const auto& link : links_) {
    result.messages +=
        link->to_worker.messages_sent() + link->to_manager.messages_sent();
    result.bytes += link->to_worker.bytes_sent() + link->to_manager.bytes_sent();
    if (const auto* fc = dynamic_cast<const FaultyChannel*>(&link->to_worker)) {
      result.chaos.merge(fc->chaos());
    }
    if (const auto* fc =
            dynamic_cast<const FaultyChannel*>(&link->to_manager)) {
      result.chaos.merge(fc->chaos());
    }
  }
  return result;
}

}  // namespace tora::proto
