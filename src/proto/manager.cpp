#include "proto/manager.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/recovery/snapshot.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace tora::proto {

using core::ResourceKind;
using core::ResourceVector;
using core::recovery::ManagerCrashPoint;
using core::recovery::RecordType;

namespace {

core::lifecycle::DispatchConfig dispatch_config(const LivenessConfig& cfg) {
  core::lifecycle::DispatchConfig dc;
  dc.max_allocation_failures = cfg.max_allocation_failures;
  // Significance stays the paper's default (task id + 1).
  return dc;
}

void save_chaos(util::ByteWriter& w, const core::ChaosCounters& c) {
  for (std::size_t v : {c.messages_dropped, c.messages_duplicated,
                        c.messages_corrupted, c.messages_severed,
                        c.links_severed, c.malformed_lines,
                        c.stale_or_duplicate_results, c.attempt_timeouts,
                        c.redispatches, c.workers_declared_dead,
                        c.workers_quarantined, c.protocol_evictions,
                        c.heartbeats, c.duplicate_dispatches,
                        c.misaddressed_messages, c.worker_crashes}) {
    w.u64(v);
  }
}

void load_chaos(util::ByteReader& r, core::ChaosCounters& c) {
  for (std::size_t* v :
       {&c.messages_dropped, &c.messages_duplicated, &c.messages_corrupted,
        &c.messages_severed, &c.links_severed, &c.malformed_lines,
        &c.stale_or_duplicate_results, &c.attempt_timeouts, &c.redispatches,
        &c.workers_declared_dead, &c.workers_quarantined,
        &c.protocol_evictions, &c.heartbeats, &c.duplicate_dispatches,
        &c.misaddressed_messages, &c.worker_crashes}) {
    *v = r.u64();
  }
}

}  // namespace

ProtocolManager::ProtocolManager(std::span<const core::TaskSpec> tasks,
                                 core::TaskAllocator& allocator,
                                 std::vector<DuplexLinkPtr> links,
                                 LivenessConfig cfg)
    : tasks_(tasks),
      allocator_(allocator),
      links_(std::move(links)),
      cfg_(cfg),
      core_(tasks, allocator, dispatch_config(cfg), this),
      proto_states_(tasks.size()),
      quarantined_(links_.size(), 0),
      malformed_logged_(links_.size(), 0) {
  for (const auto& link : links_) {
    if (!link) throw std::invalid_argument("ProtocolManager: null link");
  }
}

void ProtocolManager::start() {
  if (started_) throw std::logic_error("ProtocolManager: started twice");
  started_ = true;
  if (journaling()) {
    // Audit the categories interned at construction, then the start marker
    // (replay re-runs core_.start() when it reads Started).
    for (core::CategoryId id = 0; id < allocator_.category_count(); ++id) {
      util::ByteWriter w;
      w.u32(id);
      w.str(allocator_.category_name(id));
      journal(RecordType::CategoryInterned, w.bytes());
    }
    journal(RecordType::Started);
    log_->sync();
  }
  core_.start();
}

std::size_t ProtocolManager::pump() {
  // Crash taxonomy (core/recovery/crash.hpp): every equality-safe point is
  // preceded by a journal sync covering everything this tick did so far, so
  // recovery replays to the exact pre-crash state and the interrupted
  // tick's remaining phases run exactly once.
  reach(ManagerCrashPoint::PumpBegin, tick_ + 1);
  ++tick_;
  if (journaling()) {
    util::ByteWriter w;
    w.u64(tick_);
    journal(RecordType::Tick, w.bytes());
  }
  std::size_t handled = 0;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    while (auto line = links_[i]->to_manager.poll()) {
      if (journaling()) {
        // Write-ahead: the line is journaled BEFORE it is handled. A crash
        // after the sync below can always re-derive its effects; the line
        // itself is gone from the channel either way.
        util::ByteWriter w;
        w.u32(static_cast<std::uint32_t>(i));
        w.str(*line);
        journal(RecordType::Input, w.bytes());
      }
      if (handle_line(i, *line)) ++handled;
    }
  }
  if (journaling()) {
    reach(ManagerCrashPoint::BeforeJournalSync, tick_);
    log_->sync();
  }
  reach(ManagerCrashPoint::AfterDrain, tick_);
  check_liveness();
  if (journaling()) {
    journal(RecordType::LivenessDone);
    log_->sync();
  }
  reach(ManagerCrashPoint::AfterLiveness, tick_);
  dispatch_queued();
  if (journaling()) {
    journal(RecordType::DispatchDone);
    log_->sync();
  }
  reach(ManagerCrashPoint::PumpEnd, tick_);
  maybe_snapshot();
  return handled;
}

bool ProtocolManager::handle_line(std::size_t link_index,
                                  const std::string& line) {
  const auto msg = decode(line);
  if (!msg) {
    note_malformed(link_index, line);
    return false;
  }
  if (msg->type == MsgType::Heartbeat) {
    // Liveness traffic, not workflow progress: callers use pump()'s
    // return value to detect stalls, so heartbeats stay uncounted.
    ++chaos_.heartbeats;
    on_heartbeat(*msg);
    return false;
  }
  touch(msg->worker_id);
  handle(*msg);
  return true;
}

void ProtocolManager::note_malformed(std::size_t link_index,
                                     const std::string& line) {
  ++chaos_.malformed_lines;
  if (!malformed_logged_[link_index]) {
    malformed_logged_[link_index] = 1;
    util::log_warn("manager: malformed line from worker ", link_index,
                   " (logged once per worker, counting continues): ", line);
  }
}

void ProtocolManager::touch(std::uint64_t worker_id) {
  auto it = workers_.find(worker_id);
  if (it != workers_.end()) it->second.last_seen_tick = tick_;
}

void ProtocolManager::on_heartbeat(const Message& msg) {
  if (msg.worker_id >= links_.size()) {
    util::log_warn("manager: heartbeat from unknown worker ", msg.worker_id);
    return;
  }
  if (quarantined_[msg.worker_id]) return;
  auto it = workers_.find(msg.worker_id);
  if (it != workers_.end()) {
    it->second.last_seen_tick = tick_;
    return;
  }
  // The heartbeat carries capacity exactly for this case: a worker whose
  // announcement was lost, or one spuriously declared dead, re-registers
  // without a round-trip.
  WorkerState ws;
  ws.capacity = msg.resources;
  ws.link = links_[msg.worker_id];
  ws.last_seen_tick = tick_;
  workers_[msg.worker_id] = std::move(ws);
}

void ProtocolManager::handle(const Message& msg) {
  switch (msg.type) {
    case MsgType::WorkerReady: {
      // Worker ids equal link indices (the runtime assigns both); a ready
      // message from an unknown id is a protocol violation.
      if (msg.worker_id >= links_.size()) {
        util::log_warn("manager: ready from unknown worker ", msg.worker_id);
        break;
      }
      if (quarantined_[msg.worker_id]) break;
      if (auto it = workers_.find(msg.worker_id); it != workers_.end()) {
        // A duplicated announcement must not reset `committed`, or the
        // manager would over-admit against the phantom free capacity.
        it->second.capacity = msg.resources;
        it->second.last_seen_tick = tick_;
        break;
      }
      WorkerState ws;
      ws.capacity = msg.resources;
      ws.link = links_[msg.worker_id];
      ws.last_seen_tick = tick_;
      workers_[msg.worker_id] = std::move(ws);
      break;
    }
    case MsgType::TaskResult:
      on_result(msg);
      break;
    case MsgType::Evict: {
      // Requeue with the same allocation; not charged to the algorithm
      // (the eviction ledger, scale 1 per lost attempt).
      if (msg.task_id < core_.task_count() &&
          core_.entry(msg.task_id).phase ==
              core::lifecycle::TaskPhase::Running) {
        const auto& entry = core_.entry(msg.task_id);
        auto it = workers_.find(entry.running_on);
        if (it != workers_.end()) it->second.committed -= entry.alloc;
        ++chaos_.protocol_evictions;
        ++chaos_.redispatches;
        core_.charge_eviction(msg.task_id, 1.0);
        core_.requeue_front(msg.task_id);
      }
      break;
    }
    default:
      util::log_warn("manager: unexpected message type");
      break;
  }
}

void ProtocolManager::on_result(const Message& msg) {
  if (msg.task_id >= core_.task_count()) {
    util::log_warn("manager: result for unknown task ", msg.task_id);
    return;
  }
  const auto& entry = core_.entry(msg.task_id);
  // Idempotency gate: accept a result only for the attempt currently in
  // flight, from the worker it was dispatched to. Anything else is a
  // duplicate delivery or a report for an attempt already abandoned —
  // crediting it would double-charge WasteAccounting.
  if (entry.phase != core::lifecycle::TaskPhase::Running ||
      entry.running_on != msg.worker_id || msg.attempt != entry.attempts) {
    ++chaos_.stale_or_duplicate_results;
    return;
  }
  auto wit = workers_.find(msg.worker_id);
  if (wit != workers_.end()) {
    wit->second.committed -= entry.alloc;
    wit->second.consecutive_failures = 0;
  }
  proto_states_[msg.task_id].infra_failures = 0;

  if (msg.outcome == Outcome::Success) {
    // The worker-measured peak and runtime feed the shared machine, which
    // handles accounting, the allocator record, and dependent release.
    core_.complete(msg.task_id, msg.resources, msg.runtime_s);
    return;
  }

  // Resource exhaustion: the shared machine logs the failed attempt,
  // spends the fatal budget (only allocation-induced failures do —
  // infrastructure retries never), and escalates the exceeded dimensions.
  core_.fail_attempt(msg.task_id, msg.runtime_s, msg.exceeded_mask);
}

void ProtocolManager::check_liveness() {
  // Silence deaths first: a worker whose heartbeats stopped takes all its
  // in-flight tasks with it, and those are evictions, not timeouts.
  std::vector<std::uint64_t> dead;
  for (const auto& [wid, ws] : workers_) {
    if (tick_ - ws.last_seen_tick > cfg_.silence_ticks) dead.push_back(wid);
  }
  for (std::uint64_t wid : dead) {
    ++chaos_.workers_declared_dead;
    util::log_info("manager: worker ", wid, " silent beyond ",
                   cfg_.silence_ticks, " ticks, declaring dead");
    remove_worker(wid, false);
  }

  // Attempt timeouts: the worker still heartbeats but this attempt's
  // dispatch or result went missing. Abandon the attempt (its id is now
  // stale, so a late result is rejected) and redispatch under backoff. A
  // worker that keeps timing out is quarantined — that is the only way to
  // detect a one-way severed manager->worker link.
  for (std::size_t t = 0; t < core_.task_count(); ++t) {
    const auto& entry = core_.entry(t);
    if (entry.phase != core::lifecycle::TaskPhase::Running) continue;
    if (tick_ - proto_states_[t].dispatch_tick <= cfg_.attempt_timeout_ticks) {
      continue;
    }
    ++chaos_.attempt_timeouts;
    const std::uint64_t wid = entry.running_on;
    auto it = workers_.find(wid);
    if (it != workers_.end()) it->second.committed -= entry.alloc;
    requeue_infra(t);
    if (it != workers_.end() &&
        ++it->second.consecutive_failures >= cfg_.worker_failure_limit) {
      util::log_info("manager: worker ", wid, " hit ",
                     cfg_.worker_failure_limit,
                     " consecutive attempt timeouts, quarantining");
      remove_worker(wid, true);
    }
  }
}

void ProtocolManager::requeue_infra(std::uint64_t task_id) {
  if (core_.entry(task_id).phase != core::lifecycle::TaskPhase::Running) {
    return;
  }
  core_.requeue_front(task_id);
  ++chaos_.redispatches;
  ProtoTaskState& st = proto_states_[task_id];
  ++st.infra_failures;
  const std::size_t shift =
      std::min<std::size_t>(st.infra_failures - 1, std::size_t{16});
  st.backoff_until =
      tick_ + std::min(cfg_.backoff_cap_ticks, cfg_.backoff_base_ticks << shift);
}

void ProtocolManager::remove_worker(std::uint64_t worker_id, bool quarantine) {
  for (std::size_t t = 0; t < core_.task_count(); ++t) {
    const auto& entry = core_.entry(t);
    if (entry.phase != core::lifecycle::TaskPhase::Running ||
        entry.running_on != worker_id) {
      continue;
    }
    // The attempt died with the worker: charge it as an eviction (the
    // allocation was fine, the infrastructure was not) and requeue.
    ++chaos_.protocol_evictions;
    core_.charge_eviction(t, 1.0);
    requeue_infra(t);
  }
  workers_.erase(worker_id);
  if (quarantine && worker_id < quarantined_.size()) {
    quarantined_[worker_id] = 1;
    ++chaos_.workers_quarantined;
  }
}

void ProtocolManager::dispatch_queued() {
  core_.dispatch_pass(
      // First-fit against announced capacities; a pure query, no commit.
      [this](std::uint64_t, const ResourceVector& alloc)
          -> std::optional<std::uint64_t> {
        for (const auto& [wid, ws] : workers_) {
          if (alloc.fits_within(ws.capacity - ws.committed)) return wid;
        }
        return std::nullopt;
      },
      // Commit: bind the resources and put the dispatch on the wire. The
      // machine already stamped the attempt id (entry.attempts).
      [this](std::uint64_t task_id, std::uint64_t wid,
             const ResourceVector& alloc) {
        WorkerState& ws = workers_.at(wid);
        ws.committed += alloc;
        proto_states_[task_id].dispatch_tick = tick_;
        if (!replaying_) {
          Message m;
          m.type = MsgType::TaskDispatch;
          m.worker_id = wid;
          m.task_id = task_id;
          m.attempt = core_.entry(task_id).attempts;
          m.category = tasks_[task_id].category;
          m.resources = alloc;
          ws.link->to_worker.send(encode(m));
        }
        // Counted even during replay: the crashed manager sent the message,
        // so the reconstructed counter must include it.
        ++dispatches_;
      },
      // Defer: capped-exponential-backoff windows after infra failures.
      [this](std::uint64_t task_id) {
        return proto_states_[task_id].backoff_until > tick_;
      });
}

// ------------------------------------------------------------- recovery

void ProtocolManager::attach_recovery(core::recovery::RecoveryLog* log,
                                      core::recovery::CrashMonitor* crashes,
                                      core::recovery::RecoveryConfig recovery,
                                      core::RecoveryCounters* counters) {
  log_ = log;
  crashes_ = crashes;
  recovery_cfg_ = recovery;
  recovery_counters_ = counters;
}

bool ProtocolManager::journaling() const noexcept {
  return log_ != nullptr && log_->writable() && !replaying_;
}

void ProtocolManager::journal(RecordType type, std::string_view payload) {
  log_->append(type, payload);
}

void ProtocolManager::reach(ManagerCrashPoint point, std::uint64_t tick) {
  if (crashes_) crashes_->reach(point, tick);
}

void ProtocolManager::maybe_snapshot() {
  if (!journaling() || recovery_cfg_.snapshot_every_ticks == 0) return;
  if (tick_ % recovery_cfg_.snapshot_every_ticks != 0) return;
  log_->rotate(snapshot_body(), tick_);
}

void ProtocolManager::task_fatal(std::uint64_t task_id) {
  if (!journaling()) return;
  util::ByteWriter w;
  w.u64(task_id);
  journal(RecordType::TaskFatal, w.bytes());
}

void ProtocolManager::allocation_committed(std::uint64_t task_id,
                                           const ResourceVector& alloc,
                                           bool is_retry) {
  if (!journaling()) return;
  util::ByteWriter w;
  w.u64(task_id);
  for (ResourceKind k : core::kAllResources) w.f64(alloc[k]);
  w.u8(is_retry ? 1 : 0);
  journal(RecordType::AllocationCommitted, w.bytes());
}

void ProtocolManager::task_dispatched(std::uint64_t task_id,
                                      std::uint64_t worker,
                                      std::uint32_t attempt) {
  if (!journaling()) return;
  util::ByteWriter w;
  w.u64(task_id);
  w.u64(worker);
  w.u64(attempt);
  journal(RecordType::TaskDispatched, w.bytes());
}

void ProtocolManager::task_completed(std::uint64_t task_id,
                                     const ResourceVector& measured_peak,
                                     double runtime_s) {
  if (!journaling()) return;
  util::ByteWriter w;
  w.u64(task_id);
  for (ResourceKind k : core::kAllResources) w.f64(measured_peak[k]);
  w.f64(runtime_s);
  journal(RecordType::TaskCompleted, w.bytes());
}

void ProtocolManager::task_failed_attempt(std::uint64_t task_id,
                                          double runtime_s,
                                          unsigned exceeded_mask,
                                          bool requeued) {
  if (!journaling()) return;
  util::ByteWriter w;
  w.u64(task_id);
  w.f64(runtime_s);
  w.u32(exceeded_mask);
  w.u8(requeued ? 1 : 0);
  journal(RecordType::TaskAttemptFailed, w.bytes());
}

void ProtocolManager::task_requeued(std::uint64_t task_id) {
  if (!journaling()) return;
  util::ByteWriter w;
  w.u64(task_id);
  journal(RecordType::TaskRequeued, w.bytes());
}

void ProtocolManager::task_evicted(std::uint64_t task_id, double scale) {
  if (!journaling()) return;
  util::ByteWriter w;
  w.u64(task_id);
  w.f64(scale);
  journal(RecordType::TaskEvicted, w.bytes());
}

std::string ProtocolManager::snapshot_body() const {
  util::ByteWriter w;
  core::recovery::save_allocator(allocator_, w);
  core_.save_state(w);
  w.u64(tick_);
  w.u64(dispatches_);
  w.u8(started_ ? 1 : 0);
  w.u64(workers_.size());
  for (const auto& [wid, ws] : workers_) {
    w.u64(wid);
    for (ResourceKind k : core::kAllResources) w.f64(ws.capacity[k]);
    for (ResourceKind k : core::kAllResources) w.f64(ws.committed[k]);
    w.u64(ws.last_seen_tick);
    w.u64(ws.consecutive_failures);
  }
  w.u64(proto_states_.size());
  for (const ProtoTaskState& st : proto_states_) {
    w.u64(st.dispatch_tick);
    w.u64(st.backoff_until);
    w.u64(st.infra_failures);
  }
  w.u64(quarantined_.size());
  for (char q : quarantined_) w.u8(static_cast<std::uint8_t>(q));
  w.u64(malformed_logged_.size());
  for (char m : malformed_logged_) w.u8(static_cast<std::uint8_t>(m));
  save_chaos(w, chaos_);
  return w.take();
}

void ProtocolManager::restore_state(util::ByteReader& r) {
  core::recovery::load_allocator(allocator_, r);
  core_.load_state(r);
  tick_ = r.u64();
  dispatches_ = r.u64();
  started_ = r.u8() != 0;
  workers_.clear();
  const std::uint64_t worker_count = r.u64();
  for (std::uint64_t i = 0; i < worker_count; ++i) {
    const std::uint64_t wid = r.u64();
    if (wid >= links_.size()) {
      throw std::runtime_error(
          "recovery snapshot: worker id beyond the link table (snapshot from "
          "a different deployment?)");
    }
    WorkerState ws;
    for (ResourceKind k : core::kAllResources) ws.capacity[k] = r.f64();
    for (ResourceKind k : core::kAllResources) ws.committed[k] = r.f64();
    ws.last_seen_tick = r.u64();
    ws.consecutive_failures = r.u64();
    // Links are rebound by position: worker ids equal link indices, and the
    // links (with their in-flight messages) survive the manager crash.
    ws.link = links_[wid];
    workers_[wid] = std::move(ws);
  }
  if (r.u64() != proto_states_.size()) {
    throw std::runtime_error(
        "recovery snapshot: per-task state count does not match the workload");
  }
  for (ProtoTaskState& st : proto_states_) {
    st.dispatch_tick = r.u64();
    st.backoff_until = r.u64();
    st.infra_failures = r.u64();
  }
  if (r.u64() != quarantined_.size()) {
    throw std::runtime_error(
        "recovery snapshot: quarantine set does not match the link table");
  }
  for (char& q : quarantined_) q = static_cast<char>(r.u8());
  if (r.u64() != malformed_logged_.size()) {
    throw std::runtime_error(
        "recovery snapshot: malformed-log set does not match the link table");
  }
  for (char& m : malformed_logged_) m = static_cast<char>(r.u8());
  load_chaos(r, chaos_);
}

std::size_t ProtocolManager::recover(
    const core::recovery::RecoveryLog::ScanResult& scan) {
  if (started_ || tick_ != 0) {
    throw std::logic_error(
        "ProtocolManager::recover: manager must be freshly constructed");
  }
  if (scan.snapshot) {
    util::ByteReader r(*scan.snapshot);
    restore_state(r);
    if (!r.done()) {
      throw std::runtime_error("recovery snapshot: trailing bytes");
    }
  }

  // Replay the journal tail through the real handlers with sends
  // suppressed: every state transition re-derives exactly (the inputs are
  // the only nondeterminism), while the wire stays untouched — the channels
  // still hold whatever was in flight at the crash.
  replaying_ = true;
  bool liveness_pending = false;
  bool dispatch_pending = false;
  std::size_t handled = 0;
  for (const core::recovery::JournalRecord& rec : scan.tail) {
    if (recovery_counters_) ++recovery_counters_->records_replayed;
    switch (rec.type) {
      case RecordType::Epoch:
        break;
      case RecordType::Started:
        started_ = true;
        core_.start();
        break;
      case RecordType::Tick: {
        util::ByteReader r(rec.payload);
        ++tick_;
        if (r.u64() != tick_) {
          replaying_ = false;
          throw std::runtime_error("recovery journal: tick out of sequence");
        }
        liveness_pending = true;
        dispatch_pending = true;
        handled = 0;
        if (recovery_counters_) ++recovery_counters_->ticks_replayed;
        break;
      }
      case RecordType::Input: {
        util::ByteReader r(rec.payload);
        const std::uint32_t link = r.u32();
        const std::string line = r.str();
        if (link >= links_.size()) {
          replaying_ = false;
          throw std::runtime_error(
              "recovery journal: input from an unknown link");
        }
        if (handle_line(link, line)) ++handled;
        if (recovery_counters_) ++recovery_counters_->inputs_replayed;
        break;
      }
      case RecordType::LivenessDone:
        check_liveness();
        liveness_pending = false;
        break;
      case RecordType::DispatchDone:
        dispatch_queued();
        dispatch_pending = false;
        break;
      default:
        // Lifecycle audit records: the same state change re-derives from
        // the input replay above; re-applying would double it.
        break;
    }
  }
  replaying_ = false;

  // Finish the interrupted tick. A phase with no completion marker never
  // ran before the crash, so it runs here exactly once — with sends
  // ENABLED, because its messages never reached the wire.
  if (liveness_pending) check_liveness();
  if (dispatch_pending) dispatch_queued();
  return handled;
}

void ProtocolManager::shutdown_workers() {
  for (auto& [wid, ws] : workers_) {
    Message m;
    m.type = MsgType::Shutdown;
    m.worker_id = wid;
    ws.link->to_worker.send(encode(m));
  }
}

// ---------------------------------------------------------------- runtime

std::vector<DuplexLinkPtr> build_chaos_links(std::size_t num_workers,
                                             const ChaosConfig& chaos) {
  std::vector<DuplexLinkPtr> links;
  links.reserve(num_workers);
  util::Rng rng(chaos.seed);
  std::vector<char> severed(num_workers, 0);
  if (chaos.sever_workers > 0 && num_workers > 1) {
    // Cap at n-1 so at least one worker keeps both directions; the run
    // stays completable no matter how unlucky the draw.
    util::Rng pick = rng.split("sever");
    const std::size_t want = std::min(chaos.sever_workers, num_workers - 1);
    std::size_t chosen = 0;
    while (chosen < want) {
      const auto w = pick.uniform_int(0, num_workers - 1);
      if (!severed[w]) {
        severed[w] = 1;
        ++chosen;
      }
    }
  }
  for (std::size_t i = 0; i < num_workers; ++i) {
    FaultPlan to_worker = chaos.to_worker;
    FaultPlan to_manager = chaos.to_manager;
    if (severed[i]) {
      to_worker.sever_after_messages = chaos.sever_after_messages;
      to_manager.sever_after_messages = chaos.sever_after_messages;
    }
    if (to_worker.enabled() || to_manager.enabled()) {
      // Labeled splits: each channel gets a stream derived from (seed,
      // direction, worker), independent of construction order.
      const std::string tag = std::to_string(i);
      links.push_back(std::make_shared<DuplexLink>(
          std::make_unique<FaultyChannel>(to_worker,
                                          rng.split("to_worker/" + tag)),
          std::make_unique<FaultyChannel>(to_manager,
                                          rng.split("to_manager/" + tag))));
    } else {
      links.push_back(std::make_shared<DuplexLink>());
    }
  }
  return links;
}

std::size_t chaos_stall_limit(const ChaosConfig& chaos) {
  if (!chaos.enabled()) return 0;  // fault-free runs fail fast, as before
  // Under chaos, quiet rounds are legitimate: backoff windows, timeout
  // windows and silence windows all pass without countable progress. Allow
  // a generous multiple of the longest detection chain before giving up.
  const LivenessConfig& lv = chaos.liveness;
  return 64 * (lv.silence_ticks + lv.attempt_timeout_ticks +
               lv.backoff_cap_ticks + 4);
}

ProtocolRuntime::ProtocolRuntime(std::span<const core::TaskSpec> tasks,
                                 core::TaskAllocator& allocator,
                                 std::size_t num_workers,
                                 core::ResourceVector worker_capacity)
    : ProtocolRuntime(tasks, allocator, num_workers, worker_capacity,
                      ChaosConfig{}) {}

ProtocolRuntime::ProtocolRuntime(std::span<const core::TaskSpec> tasks,
                                 core::TaskAllocator& allocator,
                                 std::size_t num_workers,
                                 core::ResourceVector worker_capacity,
                                 const ChaosConfig& chaos)
    : tasks_(tasks),
      allocator_(allocator),
      links_(build_chaos_links(num_workers, chaos)),
      manager_(tasks, allocator, links_, chaos.liveness),
      stall_limit_(chaos_stall_limit(chaos)) {
  if (num_workers == 0) {
    throw std::invalid_argument("ProtocolRuntime: need at least one worker");
  }
  agents_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    const WorkerFaultConfig faults = i < chaos.worker_faults.size()
                                         ? chaos.worker_faults[i]
                                         : WorkerFaultConfig{};
    agents_.emplace_back(i, worker_capacity, tasks_, links_[i], faults);
  }
}

ProtocolRunResult ProtocolRuntime::run(std::size_t max_rounds) {
  for (auto& agent : agents_) agent.announce();
  manager_.start();
  ProtocolRunResult result;
  std::size_t stalled = 0;
  for (result.rounds = 0; result.rounds < max_rounds; ++result.rounds) {
    std::size_t progress = manager_.pump();
    for (auto& agent : agents_) progress += agent.pump();
    if (manager_.done()) break;
    if (progress == 0) {
      if (++stalled > stall_limit_) {
        throw std::runtime_error(
            "ProtocolRuntime: no progress with unfinished tasks (allocation "
            "larger than every worker, or all workers lost?)");
      }
    } else {
      stalled = 0;
    }
  }
  if (!manager_.done()) {
    throw std::runtime_error("ProtocolRuntime: round limit exceeded");
  }
  manager_.shutdown_workers();
  for (auto& agent : agents_) agent.pump();

  result.accounting = manager_.accounting();
  result.tasks_completed = manager_.tasks_completed();
  result.tasks_fatal = manager_.tasks_fatal();
  result.chaos.merge(manager_.chaos());
  result.evicted_alloc = manager_.evicted_alloc();
  for (const auto& agent : agents_) result.chaos.merge(agent.chaos());
  for (const auto& link : links_) {
    result.messages +=
        link->to_worker.messages_sent() + link->to_manager.messages_sent();
    result.bytes += link->to_worker.bytes_sent() + link->to_manager.bytes_sent();
    if (const auto* fc = dynamic_cast<const FaultyChannel*>(&link->to_worker)) {
      result.chaos.merge(fc->chaos());
    }
    if (const auto* fc =
            dynamic_cast<const FaultyChannel*>(&link->to_manager)) {
      result.chaos.merge(fc->chaos());
    }
  }
  return result;
}

}  // namespace tora::proto
