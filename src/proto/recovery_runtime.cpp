#include "proto/recovery_runtime.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tora::proto {

RecoverableProtocolRuntime::RecoverableProtocolRuntime(
    std::span<const core::TaskSpec> tasks, AllocatorFactory make_allocator,
    std::size_t num_workers, core::ResourceVector worker_capacity,
    const ChaosConfig& chaos, core::recovery::Storage& storage,
    core::recovery::RecoveryConfig recovery,
    core::recovery::CrashSchedule crashes)
    : tasks_(tasks),
      make_allocator_(std::move(make_allocator)),
      liveness_(chaos.liveness),
      links_(build_chaos_links(num_workers, chaos)),
      storage_(storage),
      monitor_(std::move(crashes), &counters_),
      log_(storage_, &counters_, &monitor_),
      recovery_cfg_(recovery),
      stall_limit_(chaos_stall_limit(chaos)) {
  if (num_workers == 0) {
    throw std::invalid_argument(
        "RecoverableProtocolRuntime: need at least one worker");
  }
  if (!make_allocator_) {
    throw std::invalid_argument(
        "RecoverableProtocolRuntime: null allocator factory");
  }
  allocator_ = make_allocator_();
  if (!allocator_) {
    throw std::invalid_argument(
        "RecoverableProtocolRuntime: allocator factory returned null");
  }
  agents_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    const WorkerFaultConfig faults = i < chaos.worker_faults.size()
                                         ? chaos.worker_faults[i]
                                         : WorkerFaultConfig{};
    agents_.emplace_back(i, worker_capacity, tasks_, links_[i], faults);
  }
  manager_ =
      std::make_unique<ProtocolManager>(tasks_, *allocator_, links_, liveness_);
  manager_->attach_recovery(&log_, &monitor_, recovery_cfg_, &counters_);
  // Crash-by-crash quiet rounds (lost results -> timeout windows) need the
  // same tolerance channel chaos does, even on otherwise clean links.
  if (monitor_.pending() > 0) {
    stall_limit_ = std::max(
        stall_limit_, std::size_t{64} * (liveness_.silence_ticks +
                                         liveness_.attempt_timeout_ticks +
                                         liveness_.backoff_cap_ticks + 4));
  }
}

std::size_t RecoverableProtocolRuntime::recover() {
  monitor_.disarm();
  log_.close();
  storage_.on_crash();
  const core::recovery::RecoveryLog::ScanResult scan = log_.scan();

  // The allocator dies with the manager: both are in-memory state of the
  // crashed process. The factory rebuilds it fresh (same policy, seed,
  // config); recover() then restores it bit-exact from the snapshot.
  allocator_ = make_allocator_();
  manager_ =
      std::make_unique<ProtocolManager>(tasks_, *allocator_, links_, liveness_);
  manager_->attach_recovery(&log_, &monitor_, recovery_cfg_, &counters_);
  const std::size_t handled = manager_->recover(scan);

  // Compact immediately: the old journal cannot be appended to (and the
  // interrupted tick's finish above was not journaled), so the recovered
  // state becomes the next epoch's snapshot before anything else happens.
  log_.adopt_epoch(scan.epoch);
  log_.rotate(manager_->snapshot_body(), manager_->ticks());
  monitor_.arm();
  ++counters_.recoveries;
  return handled;
}

RecoveryRunResult RecoverableProtocolRuntime::run(std::size_t max_rounds) {
  log_.open_fresh();
  for (auto& agent : agents_) agent.announce();
  manager_->start();
  RecoveryRunResult result;
  std::size_t stalled = 0;
  for (result.rounds = 0; result.rounds < max_rounds; ++result.rounds) {
    std::size_t progress = 0;
    bool do_pump = true;
    while (do_pump) {
      try {
        progress = manager_->pump();
        do_pump = false;
      } catch (const core::recovery::ManagerCrash& crash) {
        progress = recover();
        // A PumpBegin crash died before the tick touched anything — the
        // recovered manager re-runs the whole pump. Every other point died
        // mid- or post-tick; recover() already finished that tick.
        do_pump =
            crash.point() == core::recovery::ManagerCrashPoint::PumpBegin;
      }
    }
    for (auto& agent : agents_) progress += agent.pump();
    if (manager_->done()) break;
    if (progress == 0) {
      if (++stalled > stall_limit_) {
        throw std::runtime_error(
            "RecoverableProtocolRuntime: no progress with unfinished tasks "
            "(allocation larger than every worker, or all workers lost?)");
      }
    } else {
      stalled = 0;
    }
  }
  if (!manager_->done()) {
    throw std::runtime_error(
        "RecoverableProtocolRuntime: round limit exceeded");
  }
  manager_->shutdown_workers();
  for (auto& agent : agents_) agent.pump();

  result.accounting = manager_->accounting();
  result.tasks_completed = manager_->tasks_completed();
  result.tasks_fatal = manager_->tasks_fatal();
  result.chaos.merge(manager_->chaos());
  result.evicted_alloc = manager_->evicted_alloc();
  for (const auto& agent : agents_) result.chaos.merge(agent.chaos());
  for (const auto& link : links_) {
    result.messages +=
        link->to_worker.messages_sent() + link->to_manager.messages_sent();
    result.bytes +=
        link->to_worker.bytes_sent() + link->to_manager.bytes_sent();
    if (const auto* fc =
            dynamic_cast<const FaultyChannel*>(&link->to_worker)) {
      result.chaos.merge(fc->chaos());
    }
    if (const auto* fc =
            dynamic_cast<const FaultyChannel*>(&link->to_manager)) {
      result.chaos.merge(fc->chaos());
    }
  }
  result.recovery = counters_;
  result.resilience = manager_->resilience();
  result.state_fingerprint = manager_->snapshot_body();
  return result;
}

}  // namespace tora::proto
