#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <string>

namespace tora::proto {

/// One direction of a simulated network link: an in-order queue of encoded
/// protocol lines with byte accounting. The protocol layer never shares
/// memory between manager and worker — everything crosses a Channel, so the
/// in-process runtime exercises exactly the serialization a socket
/// deployment would.
///
/// The base class is lossless and in-order. The chaos layer (fault.hpp)
/// subclasses it to inject seeded faults — drops, duplication, corruption,
/// severance — at send time, which is why send() is virtual.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Enqueues one line for the receiver. Subclasses may drop, duplicate or
  /// corrupt it; the base implementation delivers verbatim.
  virtual void send(std::string line);

  /// Next pending line, or nullopt when drained.
  std::optional<std::string> poll();

  /// True while the transport behind this channel cannot absorb more
  /// traffic (its bounded send queue is past the high watermark). The
  /// in-process queue is unbounded, so the base class never pushes back;
  /// the socket backend (proto/net) overrides this, and the manager skips
  /// dispatching onto backpressured links until the queue drains.
  virtual bool backpressured() const noexcept { return false; }

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }
  /// Messages/bytes actually delivered into the queue (post-fault).
  std::size_t messages_sent() const noexcept { return messages_; }
  std::size_t bytes_sent() const noexcept { return bytes_; }

 protected:
  /// Verbatim delivery into the queue, for subclasses overriding send().
  void deliver(std::string line);

 private:
  std::deque<std::string> queue_;
  std::size_t messages_ = 0;
  std::size_t bytes_ = 0;
};

/// A duplex link: the manager writes to `to_worker` and reads from
/// `to_manager`; the worker agent does the opposite. The two channels are
/// owned polymorphically so either direction can be a FaultyChannel
/// (fault.hpp); the public references keep call sites value-like.
class DuplexLink {
 public:
  DuplexLink();
  /// Custom channels (e.g. FaultyChannel); both must be non-null.
  DuplexLink(std::unique_ptr<Channel> to_worker_channel,
             std::unique_ptr<Channel> to_manager_channel);

  Channel& to_worker;
  Channel& to_manager;

 private:
  std::unique_ptr<Channel> owned_to_worker_;
  std::unique_ptr<Channel> owned_to_manager_;
};

using DuplexLinkPtr = std::shared_ptr<DuplexLink>;

}  // namespace tora::proto
