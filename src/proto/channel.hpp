#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <string>

namespace tora::proto {

/// One direction of a simulated network link: an in-order, lossless queue
/// of encoded protocol lines with byte accounting. The protocol layer never
/// shares memory between manager and worker — everything crosses a Channel,
/// so the in-process runtime exercises exactly the serialization a socket
/// deployment would.
class Channel {
 public:
  void send(std::string line);

  /// Next pending line, or nullopt when drained.
  std::optional<std::string> poll();

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }
  std::size_t messages_sent() const noexcept { return messages_; }
  std::size_t bytes_sent() const noexcept { return bytes_; }

 private:
  std::deque<std::string> queue_;
  std::size_t messages_ = 0;
  std::size_t bytes_ = 0;
};

/// A duplex link: the manager writes to `to_worker` and reads from
/// `to_manager`; the worker agent does the opposite.
struct DuplexLink {
  Channel to_worker;
  Channel to_manager;
};

using DuplexLinkPtr = std::shared_ptr<DuplexLink>;

}  // namespace tora::proto
