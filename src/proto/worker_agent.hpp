#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/resources.hpp"
#include "core/task.hpp"
#include "proto/channel.hpp"
#include "proto/message.hpp"

namespace tora::proto {

/// The worker side of the protocol (paper Fig. 1's worker node): announces
/// its capacity, accepts TaskDispatch messages, "executes" tasks against
/// their hidden ground-truth demands (the agent plays the role of the real
/// process whose consumption the worker monitors), enforces the dispatched
/// allocation — rejecting over-commitment and killing over-consumption —
/// and reports TaskResult messages with the measured peak and runtime.
///
/// The agent communicates exclusively through its DuplexLink; the manager
/// never touches its state.
class WorkerAgent {
 public:
  /// `ground_truth` is the workload indexed by task id (the "application
  /// code" the worker runs); must outlive the agent.
  WorkerAgent(std::uint64_t id, core::ResourceVector capacity,
              std::span<const core::TaskSpec> ground_truth, DuplexLinkPtr link);

  /// Sends the WorkerReady announcement. Call once before pumping.
  void announce();

  /// Processes every pending message; returns the number handled.
  /// Execution is synchronous: each dispatch produces its result
  /// immediately (the protocol runtime is functional, not timed — the
  /// discrete-event simulator covers timing).
  std::size_t pump();

  std::uint64_t id() const noexcept { return id_; }
  const core::ResourceVector& capacity() const noexcept { return capacity_; }
  bool shutdown_received() const noexcept { return shutdown_; }
  std::size_t tasks_executed() const noexcept { return executed_; }
  std::size_t tasks_killed() const noexcept { return killed_; }
  /// Dispatches that could not even be admitted (allocation above capacity);
  /// reported back as ResourceExhausted so the manager re-plans.
  std::size_t rejected_dispatches() const noexcept { return rejected_; }

 private:
  void handle_dispatch(const Message& msg);

  std::uint64_t id_;
  core::ResourceVector capacity_;
  std::span<const core::TaskSpec> ground_truth_;
  DuplexLinkPtr link_;
  bool shutdown_ = false;
  std::size_t executed_ = 0;
  std::size_t killed_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace tora::proto
