#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "core/resources.hpp"
#include "core/task.hpp"
#include "proto/channel.hpp"
#include "proto/fault.hpp"
#include "proto/message.hpp"

namespace tora::proto {

/// The worker side of the protocol (paper Fig. 1's worker node): announces
/// its capacity, accepts TaskDispatch messages, "executes" tasks against
/// their hidden ground-truth demands (the agent plays the role of the real
/// process whose consumption the worker monitors), enforces the dispatched
/// allocation — rejecting over-commitment and killing over-consumption —
/// and reports TaskResult messages with the measured peak and runtime.
///
/// The agent communicates exclusively through its DuplexLink; the manager
/// never touches its state.
///
/// Robustness: each pump emits a Heartbeat (carrying capacity, so a manager
/// that lost the announcement can still register the worker), duplicate
/// dispatches are answered idempotently from a result cache instead of
/// re-executing, and a WorkerFaultConfig can crash the agent at injectable
/// points — after announcing, mid-task, or just before the result — after
/// which it goes permanently silent like a dead process.
class WorkerAgent {
 public:
  /// `ground_truth` is the workload indexed by task id (the "application
  /// code" the worker runs); must outlive the agent.
  WorkerAgent(std::uint64_t id, core::ResourceVector capacity,
              std::span<const core::TaskSpec> ground_truth, DuplexLinkPtr link,
              WorkerFaultConfig faults = {});

  /// Sends the WorkerReady announcement. Call once before pumping.
  void announce();

  /// Processes every pending message and emits one Heartbeat; returns the
  /// number of messages handled (heartbeats excluded). Execution is
  /// synchronous: each dispatch produces its result immediately (the
  /// protocol runtime is functional, not timed — the discrete-event
  /// simulator covers timing). A crashed agent handles nothing.
  std::size_t pump();

  std::uint64_t id() const noexcept { return id_; }
  const core::ResourceVector& capacity() const noexcept { return capacity_; }
  bool shutdown_received() const noexcept { return shutdown_; }
  bool crashed() const noexcept { return crashed_; }
  std::size_t tasks_executed() const noexcept { return executed_; }
  std::size_t tasks_killed() const noexcept { return killed_; }
  /// Dispatches that could not even be admitted (allocation above capacity);
  /// reported back as ResourceExhausted so the manager re-plans.
  std::size_t rejected_dispatches() const noexcept { return rejected_; }
  std::size_t heartbeats_sent() const noexcept { return heartbeats_sent_; }
  /// Anomalies this agent swallowed (duplicates, misaddressed lines, its
  /// own crash).
  const core::ChaosCounters& chaos() const noexcept { return chaos_; }

 private:
  void handle_dispatch(const Message& msg);
  void crash();

  std::uint64_t id_;
  core::ResourceVector capacity_;
  std::span<const core::TaskSpec> ground_truth_;
  DuplexLinkPtr link_;
  WorkerFaultConfig faults_;
  bool shutdown_ = false;
  bool crashed_ = false;
  bool malformed_logged_ = false;
  std::size_t executed_ = 0;
  std::size_t killed_ = 0;
  std::size_t rejected_ = 0;
  std::size_t heartbeats_sent_ = 0;
  std::size_t fresh_dispatches_ = 0;
  /// Encoded results by (task, attempt), for idempotent re-answers.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::string> results_;
  core::ChaosCounters chaos_;
};

}  // namespace tora::proto
