#include "proto/net/tcp_runtime.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tora::proto::net {

namespace {

/// Settle iterations before declaring the network wedged. Generous: a
/// calm loopback round drains in a handful; reconnect backoff after a
/// deliberate kill can stretch to backoff_cap / kSettleDt iterations.
constexpr std::size_t kSettleLimit = 200000;
/// Sub-round clock advance per settle iteration (round units): lets
/// backoff deadlines and proxy latency gates expire inside a barrier
/// without meaningfully advancing keepalive windows on calm runs.
constexpr double kSettleDt = 0.01;
/// IO pumps interleaved per round in paced (chaos) mode.
constexpr std::size_t kPacedPumps = 8;

std::size_t tcp_stall_limit(const ChaosConfig& chaos,
                            const TcpTransportConfig& tcp, bool paced) {
  std::size_t limit = chaos_stall_limit(chaos);
  if (paced) {
    // Wire faults add reconnect round-trips on top of the liveness
    // windows; give each detection chain the backoff ceiling as slack.
    const LivenessConfig& lv = chaos.liveness;
    limit = std::max(limit,
                     std::size_t{64} *
                         (lv.silence_ticks + lv.attempt_timeout_ticks +
                          lv.backoff_cap_ticks +
                          static_cast<std::size_t>(tcp.backoff_cap) + 4));
  }
  return limit;
}

void fill_result(TcpRunResult& result, const ProtocolManager& manager,
                 const std::vector<WorkerAgent>& agents,
                 const ManagerEndpoint& mgr_ep,
                 const std::vector<std::unique_ptr<WorkerEndpoint>>& eps) {
  result.accounting = manager.accounting();
  result.tasks_completed = manager.tasks_completed();
  result.tasks_fatal = manager.tasks_fatal();
  result.chaos.merge(manager.chaos());
  result.evicted_alloc = manager.evicted_alloc();
  result.resilience = manager.resilience();
  for (const auto& agent : agents) result.chaos.merge(agent.chaos());
  result.transport.merge(mgr_ep.counters());
  for (const auto& ep : eps) result.transport.merge(ep->counters());
  // On sockets, "messages/bytes" are what actually crossed the wire —
  // application frames plus handshake and ack traffic.
  result.messages = result.transport.frames_sent;
  result.bytes = result.transport.bytes_sent;
  result.state_fingerprint = manager.snapshot_body();
}

}  // namespace

TcpProtocolRuntime::TcpProtocolRuntime(
    std::span<const core::TaskSpec> tasks, core::TaskAllocator& allocator,
    std::size_t num_workers, core::ResourceVector worker_capacity,
    TcpTransportConfig tcp, ChaosConfig chaos,
    std::optional<WireFaultPlan> proxy_plan, bool lockstep)
    : tasks_(tasks),
      allocator_(allocator),
      tcp_(std::move(tcp)),
      lockstep_(lockstep && !(proxy_plan && proxy_plan->active())),
      stall_limit_(tcp_stall_limit(chaos, tcp_, !lockstep_)) {
  if (num_workers == 0) {
    throw std::invalid_argument("TcpProtocolRuntime: need at least one worker");
  }
  mgr_ep_ = std::make_unique<ManagerEndpoint>(num_workers, tcp_);
  std::uint16_t connect_port = mgr_ep_->port();
  if (proxy_plan) {
    proxy_ = std::make_unique<FaultProxy>(tcp_.host, connect_port,
                                          *proxy_plan, tcp_.seed ^ 0x70727879);
    connect_port = proxy_->port();
  }
  worker_eps_.reserve(num_workers);
  agents_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    TcpTransportConfig wcfg = tcp_;
    wcfg.port = connect_port;
    worker_eps_.push_back(std::make_unique<WorkerEndpoint>(i, wcfg));
    const WorkerFaultConfig faults = i < chaos.worker_faults.size()
                                         ? chaos.worker_faults[i]
                                         : WorkerFaultConfig{};
    agents_.emplace_back(i, worker_capacity, tasks_, worker_eps_[i]->link(),
                         faults);
  }
  manager_ = std::make_unique<ProtocolManager>(tasks_, allocator_,
                                               mgr_ep_->links(),
                                               chaos.liveness);
}

bool TcpProtocolRuntime::pump_network(int timeout_ms) {
  bool progress = mgr_ep_->pump_io(now_, timeout_ms);
  if (proxy_) progress |= proxy_->pump_io(0);
  for (auto& ep : worker_eps_) progress |= ep->pump_io(now_, 0);
  return progress;
}

bool TcpProtocolRuntime::network_quiesced() const {
  if (!mgr_ep_->quiesced()) return false;
  for (const auto& ep : worker_eps_) {
    if (!ep->quiesced()) return false;
  }
  return true;
}

void TcpProtocolRuntime::settle() {
  for (std::size_t i = 0; i < kSettleLimit; ++i) {
    const bool progress = pump_network(0);
    if (network_quiesced()) return;
    now_ += kSettleDt;
    if (!progress) {
      // Give the kernel a moment to move loopback bytes between fds.
      pump_network(1);
    }
  }
  throw std::runtime_error(
      "TcpProtocolRuntime: network failed to settle (frames stuck in "
      "flight, or a worker cannot reconnect)");
}

TcpRunResult TcpProtocolRuntime::run(std::size_t max_rounds) {
  for (auto& agent : agents_) agent.announce();
  if (lockstep_) {
    settle();  // connect, handshake, deliver every announcement
  } else {
    for (std::size_t i = 0; i < 4 * kPacedPumps; ++i) pump_network(0);
  }
  manager_->start();
  TcpRunResult result;
  std::size_t stalled = 0;
  for (result.rounds = 0; result.rounds < max_rounds; ++result.rounds) {
    now_ = static_cast<double>(result.rounds + 1);
    std::size_t progress = manager_->pump();
    if (lockstep_) {
      settle();
    } else {
      for (std::size_t i = 0; i < kPacedPumps; ++i) pump_network(0);
    }
    for (auto& agent : agents_) progress += agent.pump();
    if (lockstep_) {
      settle();
    } else {
      for (std::size_t i = 0; i < kPacedPumps; ++i) pump_network(0);
    }
    if (manager_->done()) break;
    if (progress == 0) {
      if (++stalled > std::max<std::size_t>(stall_limit_, 1)) {
        throw std::runtime_error(
            "TcpProtocolRuntime: no progress with unfinished tasks");
      }
    } else {
      stalled = 0;
    }
  }
  if (!manager_->done()) {
    throw std::runtime_error("TcpProtocolRuntime: round limit exceeded");
  }
  manager_->shutdown_workers();
  if (lockstep_) {
    settle();
  } else {
    for (std::size_t i = 0; i < 4 * kPacedPumps; ++i) pump_network(0);
  }
  for (auto& agent : agents_) agent.pump();

  fill_result(result, *manager_, agents_, *mgr_ep_, worker_eps_);
  return result;
}

// ==================================================== RecoverableTcpRuntime

RecoverableTcpRuntime::RecoverableTcpRuntime(
    std::span<const core::TaskSpec> tasks, AllocatorFactory make_allocator,
    std::size_t num_workers, core::ResourceVector worker_capacity,
    TcpTransportConfig tcp, ChaosConfig chaos,
    core::recovery::Storage& storage, core::recovery::RecoveryConfig recovery,
    core::recovery::CrashSchedule crashes, bool drop_connections_on_crash)
    : tasks_(tasks),
      make_allocator_(std::move(make_allocator)),
      liveness_(chaos.liveness),
      tcp_(std::move(tcp)),
      drop_on_crash_(drop_connections_on_crash),
      stall_limit_(tcp_stall_limit(chaos, tcp_, /*paced=*/true)),
      storage_(storage),
      monitor_(std::move(crashes), &counters_),
      log_(storage_, &counters_, &monitor_),
      recovery_cfg_(recovery) {
  if (num_workers == 0) {
    throw std::invalid_argument(
        "RecoverableTcpRuntime: need at least one worker");
  }
  if (!make_allocator_) {
    throw std::invalid_argument("RecoverableTcpRuntime: null allocator factory");
  }
  allocator_ = make_allocator_();
  mgr_ep_ = std::make_unique<ManagerEndpoint>(num_workers, tcp_);
  worker_eps_.reserve(num_workers);
  agents_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    TcpTransportConfig wcfg = tcp_;
    wcfg.port = mgr_ep_->port();
    worker_eps_.push_back(std::make_unique<WorkerEndpoint>(i, wcfg));
    const WorkerFaultConfig faults = i < chaos.worker_faults.size()
                                         ? chaos.worker_faults[i]
                                         : WorkerFaultConfig{};
    agents_.emplace_back(i, worker_capacity, tasks_, worker_eps_[i]->link(),
                         faults);
  }
  manager_ = std::make_unique<ProtocolManager>(tasks_, *allocator_,
                                               mgr_ep_->links(), liveness_);
  manager_->attach_recovery(&log_, &monitor_, recovery_cfg_, &counters_);
}

bool RecoverableTcpRuntime::pump_network(int timeout_ms) {
  bool progress = mgr_ep_->pump_io(now_, timeout_ms);
  for (auto& ep : worker_eps_) progress |= ep->pump_io(now_, 0);
  return progress;
}

bool RecoverableTcpRuntime::network_quiesced() const {
  if (!mgr_ep_->quiesced()) return false;
  for (const auto& ep : worker_eps_) {
    if (!ep->quiesced()) return false;
  }
  return true;
}

void RecoverableTcpRuntime::settle() {
  for (std::size_t i = 0; i < kSettleLimit; ++i) {
    const bool progress = pump_network(0);
    if (network_quiesced()) return;
    now_ += kSettleDt;
    if (!progress) pump_network(1);
  }
  throw std::runtime_error("RecoverableTcpRuntime: network failed to settle");
}

std::size_t RecoverableTcpRuntime::recover() {
  monitor_.disarm();
  log_.close();
  storage_.on_crash();
  if (drop_on_crash_) {
    // The manager host died: its TCP stack RSTs every connection. Sessions
    // stay (they live in the endpoint, which models the substrate), so the
    // reconnecting workers resume and replay their unacked frames.
    mgr_ep_->drop_all_connections();
  }
  const core::recovery::RecoveryLog::ScanResult scan = log_.scan();
  allocator_ = make_allocator_();
  manager_ = std::make_unique<ProtocolManager>(tasks_, *allocator_,
                                               mgr_ep_->links(), liveness_);
  manager_->attach_recovery(&log_, &monitor_, recovery_cfg_, &counters_);
  const std::size_t handled = manager_->recover(scan);
  log_.adopt_epoch(scan.epoch);
  log_.rotate(manager_->snapshot_body(), manager_->ticks());
  monitor_.arm();
  ++counters_.recoveries;
  return handled;
}

RecoverableTcpRuntime::Result RecoverableTcpRuntime::run(
    std::size_t max_rounds) {
  log_.open_fresh();
  for (auto& agent : agents_) agent.announce();
  settle();
  manager_->start();
  Result result;
  std::size_t stalled = 0;
  for (result.rounds = 0; result.rounds < max_rounds; ++result.rounds) {
    now_ = static_cast<double>(result.rounds + 1);
    std::size_t progress = 0;
    bool do_pump = true;
    while (do_pump) {
      try {
        progress = manager_->pump();
        do_pump = false;
      } catch (const core::recovery::ManagerCrash& crash) {
        progress = recover();
        do_pump =
            crash.point() == core::recovery::ManagerCrashPoint::PumpBegin;
      }
    }
    settle();
    for (auto& agent : agents_) progress += agent.pump();
    settle();
    if (manager_->done()) break;
    if (progress == 0) {
      if (++stalled > std::max<std::size_t>(stall_limit_, 1)) {
        throw std::runtime_error(
            "RecoverableTcpRuntime: no progress with unfinished tasks");
      }
    } else {
      stalled = 0;
    }
  }
  if (!manager_->done()) {
    throw std::runtime_error("RecoverableTcpRuntime: round limit exceeded");
  }
  manager_->shutdown_workers();
  settle();
  for (auto& agent : agents_) agent.pump();

  fill_result(result, *manager_, agents_, *mgr_ep_, worker_eps_);
  result.recovery = counters_;
  return result;
}

}  // namespace tora::proto::net
