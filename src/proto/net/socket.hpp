#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tora::proto::net {

/// Move-only RAII file descriptor. Closing tolerates EINTR (util::io).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd();
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to `host:port` (port 0 picks an ephemeral
/// port; `port()` reports the bound one). Nonblocking, SO_REUSEADDR,
/// accept() never blocks. Throws std::runtime_error on setup failures —
/// those are deployment errors, not peer behavior.
class TcpListener {
 public:
  TcpListener(const std::string& host, std::uint16_t port, int backlog = 64);

  /// One non-blocking accept: the connected fd (nonblocking, TCP_NODELAY)
  /// or nullopt when no connection is pending. Transient per-connection
  /// accept errors (ECONNABORTED and friends) read as "nothing pending".
  std::optional<Fd> accept();

  std::uint16_t port() const noexcept { return port_; }
  int fd() const noexcept { return fd_.get(); }

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// Starts a nonblocking connect to `host:port`. Returns the in-progress
/// socket (completion surfaces via writability + SO_ERROR, see
/// `connect_result`) or an invalid Fd if the attempt failed synchronously.
Fd connect_start(const std::string& host, std::uint16_t port);

/// Resolves a nonblocking connect once the socket polls writable: true if
/// the connection is established, false (with the socket dead) otherwise.
bool connect_result(int fd) noexcept;

/// Hard-closes a connected socket with an RST instead of an orderly FIN
/// (SO_LINGER timeout 0). The fault proxy uses this to model peers that
/// vanish without a goodbye.
void reset_close(Fd& fd) noexcept;

/// Minimal epoll wrapper: level-triggered readability (always) and
/// writability (opt-in per fd).
class Poller {
 public:
  Poller();

  void add(int fd, bool want_write = false);
  void set_want_write(int fd, bool want_write);
  void remove(int fd) noexcept;

  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool hangup = false;  ///< EPOLLHUP/EPOLLERR/EPOLLRDHUP
  };

  /// One epoll_wait (EINTR retried). timeout_ms 0 polls, < 0 blocks.
  std::vector<Event> wait(int timeout_ms);

 private:
  Fd epfd_;
};

}  // namespace tora::proto::net
