#include "proto/net/frame.hpp"

namespace tora::proto::net {

bool FrameReader::feed(std::string_view bytes) {
  if (poisoned_) return false;
  std::size_t start = 0;
  while (start < bytes.size()) {
    const std::size_t nl = bytes.find('\n', start);
    if (nl == std::string_view::npos) {
      buffer_.append(bytes.substr(start));
      break;
    }
    buffer_.append(bytes.substr(start, nl - start));
    if (buffer_.size() > max_frame_bytes_) {
      // Oversized even when complete: still a violation — the limit is the
      // contract, not just a buffering concern.
      poisoned_ = true;
      return false;
    }
    ready_.push_back(std::move(buffer_));
    buffer_.clear();
    ++frames_;
    start = nl + 1;
  }
  if (buffer_.size() > max_frame_bytes_) {
    poisoned_ = true;
    return false;
  }
  return true;
}

std::optional<std::string> FrameReader::pop() {
  if (ready_.empty()) return std::nullopt;
  std::string frame = std::move(ready_.front());
  ready_.pop_front();
  return frame;
}

void SendBuffer::push_frame(std::string_view frame) {
  bytes_.reserve(bytes_.size() + frame.size() + 1);
  bytes_.append(frame);
  bytes_.push_back('\n');
}

void SendBuffer::consume(std::size_t n) { bytes_.erase(0, n); }

}  // namespace tora::proto::net
