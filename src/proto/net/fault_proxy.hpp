#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "proto/net/socket.hpp"
#include "util/rng.hpp"

namespace tora::proto::net {

/// Wire-level fault plan for one proxied connection. Unlike FaultyChannel
/// (which mutates whole decoded lines), these faults hit the BYTE STREAM:
/// bytes are delayed, flipped, or cut mid-frame — the failure modes only a
/// real socket has.
struct WireFaultPlan {
  /// Hold every forwarded chunk for this many pump steps (per direction).
  std::size_t latency_steps = 0;
  /// Probability a forwarded chunk gets one byte flipped.
  double corrupt_chunk_prob = 0.0;
  /// Probability a forwarded chunk is truncated mid-way, after which the
  /// connection is torn down (FIN): the classic mid-frame cut.
  double truncate_prob = 0.0;
  /// Probability, evaluated once per pump step per connection, of slamming
  /// the connection shut with an RST.
  double rst_prob = 0.0;

  bool active() const noexcept {
    return latency_steps > 0 || corrupt_chunk_prob > 0.0 ||
           truncate_prob > 0.0 || rst_prob > 0.0;
  }
};

/// Deterministic in-process TCP fault injector: listens on its own port,
/// dials the real manager for every inbound connection, and forwards bytes
/// both ways through a seeded WireFaultPlan. Workers connect to
/// `proxy.port()` instead of the manager and experience latency, byte
/// corruption, mid-frame truncation, RSTs and accept-refusal — while the
/// manager sees ordinary (if hostile) TCP.
///
/// Single-threaded and pump-driven like the endpoints: each pump_io() is
/// one "step" of the latency clock. All randomness comes from the seed, so
/// a failing run replays exactly.
class FaultProxy {
 public:
  FaultProxy(const std::string& host, std::uint16_t upstream_port,
             WireFaultPlan plan, std::uint64_t seed);

  std::uint16_t port() const noexcept { return listener_.port(); }

  /// Forwards pending bytes both ways through the fault plan. Returns true
  /// on any byte moved.
  bool pump_io(int timeout_ms = 0);

  /// While true, inbound connections are accepted and immediately closed
  /// (connection refused, as seen from the worker).
  void refuse_accepts(bool refuse) noexcept { refuse_ = refuse; }

  /// Tears down every proxied connection with an RST on both legs.
  void rst_all();

  /// Severs every proxied connection with an orderly FIN.
  void close_all();

  std::size_t connections() const noexcept { return pairs_.size(); }
  std::size_t faults_injected() const noexcept { return faults_; }

 private:
  /// One direction of a proxied pair: bytes read from `src` queue here and
  /// drain into `dst` after the latency gate.
  struct Leg {
    struct Chunk {
      std::string bytes;
      std::size_t release_step = 0;
    };
    std::deque<Chunk> queue;
    std::string wire;  ///< released bytes not yet written to dst
  };

  struct Pair {
    Fd downstream;  ///< worker side
    Fd upstream;    ///< manager side
    bool upstream_connected = false;
    Leg to_upstream;
    Leg to_downstream;
    util::Rng rng;
    bool doomed_fin = false;  ///< truncation fired: close after flushing
    Pair(Fd down, Fd up, util::Rng r)
        : downstream(std::move(down)), upstream(std::move(up)),
          rng(std::move(r)) {}
  };

  bool pump_pair(Pair& p);
  /// Read src, apply per-chunk faults, enqueue into leg. False = leg dead.
  bool ingest(Pair& p, int src_fd, Leg& leg);
  /// Write released bytes into dst. False = leg dead.
  bool drain(Pair& p, Leg& leg, int dst_fd);
  void close_pair(std::size_t index, bool rst);

  std::string host_;
  std::uint16_t upstream_port_;
  WireFaultPlan plan_;
  TcpListener listener_;
  Poller poller_;
  util::Rng rng_;
  std::vector<std::unique_ptr<Pair>> pairs_;
  std::size_t step_ = 0;
  std::size_t faults_ = 0;
  bool refuse_ = false;
};

}  // namespace tora::proto::net
