#include "proto/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/io.hpp"

namespace tora::proto::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("net: " + what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl O_NONBLOCK");
  }
}

void set_nodelay(int fd) noexcept {
  // Latency knob only; failure is harmless.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("net: not an IPv4 address: '" + host + "'");
  }
  return addr;
}

}  // namespace

Fd::~Fd() { util::io::close_fd(fd_); }

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    util::io::close_fd(fd_);
    fd_ = other.release();
  }
  return *this;
}

void Fd::reset(int fd) noexcept {
  util::io::close_fd(fd_);
  fd_ = fd;
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port,
                         int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) < 0) throw_errno("listen");
  set_nonblocking(fd.get());
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  fd_ = std::move(fd);
}

std::optional<Fd> TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) {
      Fd conn(fd);
      set_nonblocking(fd);
      set_nodelay(fd);
      return conn;
    }
    if (errno == EINTR) continue;
    // EAGAIN: nothing pending. ECONNABORTED/EPROTO: the peer gave up while
    // queued — drop it and report "nothing pending"; the next sweep accepts
    // whoever is still there.
    return std::nullopt;
  }
}

Fd connect_start(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Fd{};
  try {
    set_nonblocking(fd.get());
  } catch (const std::exception&) {
    return Fd{};
  }
  set_nodelay(fd.get());
  sockaddr_in addr = make_addr(host, port);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;  // loopback can complete synchronously
    }
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS) return fd;
    return Fd{};  // synchronous refusal (e.g. nothing listening)
  }
}

bool connect_result(int fd) noexcept {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) return false;
  return err == 0;
}

void reset_close(Fd& fd) noexcept {
  if (!fd.valid()) return;
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;  // close() now sends RST instead of FIN
  ::setsockopt(fd.get(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  fd.reset();
}

Poller::Poller() : epfd_(::epoll_create1(0)) {
  if (!epfd_.valid()) throw_errno("epoll_create1");
}

void Poller::add(int fd, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw_errno("epoll_ctl ADD");
  }
}

void Poller::set_want_write(int fd, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    throw_errno("epoll_ctl MOD");
  }
}

void Poller::remove(int fd) noexcept {
  epoll_event ev{};
  ::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd, &ev);
}

std::vector<Poller::Event> Poller::wait(int timeout_ms) {
  epoll_event evs[64];
  int n;
  for (;;) {
    n = ::epoll_wait(epfd_.get(), evs, 64, timeout_ms);
    if (n >= 0) break;
    if (errno != EINTR) throw_errno("epoll_wait");
  }
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Event e;
    e.fd = evs[i].data.fd;
    e.readable = (evs[i].events & EPOLLIN) != 0;
    e.writable = (evs[i].events & EPOLLOUT) != 0;
    e.hangup =
        (evs[i].events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0;
    out.push_back(e);
  }
  return out;
}

}  // namespace tora::proto::net
