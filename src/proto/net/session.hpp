#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "core/metrics.hpp"

namespace tora::proto::net {

/// The session layer on top of the framed byte stream: a versioned
/// handshake binds a TCP connection to a (worker, session token) pair, and
/// per-direction frame sequence numbers + a bounded replay buffer let a
/// reconnecting worker RESUME its session — frames that were on the wire
/// when the connection died are re-delivered, and the application's
/// attempt-id dedup absorbs any overlap. See docs/transport.md for the
/// state machine.
///
/// Control frames share the line framing with application messages but use
/// a reserved `tora!` verb prefix (the application codec can never emit or
/// accept it) and the same spliced-in FNV-1a checksum discipline:
///
///   tora!hello crc=<16hex> v=1 worker=3 token=0 rx=0
///   tora!welcome crc=<16hex> v=1 token=9f..2 rx=17 resume=1
///   tora!ack crc=<16hex> rx=42
///
/// hello.token = 0 requests a fresh session; a nonzero token asks to resume
/// the session it names. `rx` advertises how many application frames the
/// sender has received in the session so far, which is exactly what the
/// peer needs to rewind its replay buffer to the first unreceived frame.

inline constexpr std::uint32_t kTransportVersion = 1;

/// Session-layer tuning. All windows counted in frames or in the caller's
/// monotone `now` unit (the lockstep harness passes pump rounds, the CLI
/// passes seconds) — the transport itself never reads a clock.
struct SessionConfig {
  std::uint32_t version = kTransportVersion;
  /// Hard ceiling on one frame; longer peers are protocol violators.
  std::size_t max_frame_bytes = 1 << 16;
  /// Ceiling on the FIRST frame of a connection (the hello) — a handshake
  /// has no business being long, so the fuzz surface stays small.
  std::size_t max_hello_bytes = 256;
  /// Send-queue watermarks, in frames: backpressure asserts at `high`,
  /// releases at `low`, and the queue hard-caps at `cap` (heartbeats are
  /// shed there — see SessionSendQueue::push).
  std::size_t queue_high = 64;
  std::size_t queue_low = 16;
  std::size_t queue_cap = 256;
  /// Close a connection with no inbound bytes for this long (in `now`
  /// units); 0 disables. App-level heartbeats normally keep it quiet.
  double keepalive_window = 0.0;

  void validate() const;  ///< throws std::invalid_argument on nonsense
};

// ---------------------------------------------------------------- control

struct HelloFrame {
  std::uint32_t version = kTransportVersion;
  std::uint64_t worker_id = 0;
  std::uint64_t token = 0;   ///< 0 = fresh session, else resume this one
  std::uint64_t rx_seq = 0;  ///< app frames received so far in the session
};

struct WelcomeFrame {
  std::uint32_t version = kTransportVersion;
  std::uint64_t token = 0;
  std::uint64_t rx_seq = 0;
  bool resumed = false;
};

struct AckFrame {
  std::uint64_t rx_seq = 0;
};

/// True when `frame` is session-layer traffic (the reserved verb prefix).
bool is_control_frame(std::string_view frame) noexcept;

std::string encode_hello(const HelloFrame& h);
std::string encode_welcome(const WelcomeFrame& w);
std::string encode_ack(const AckFrame& a);

/// Strict decoders: nullopt on anything malformed — wrong verb, missing
/// field, bad number, failed checksum. Truncation anywhere breaks the
/// checksum, so fuzzed prefixes can never parse.
std::optional<HelloFrame> decode_hello(std::string_view frame);
std::optional<WelcomeFrame> decode_welcome(std::string_view frame);
std::optional<AckFrame> decode_ack(std::string_view frame);

// ------------------------------------------------------------- send queue

/// Bounded per-peer send queue with sequence numbers and a replay window.
/// Frames stay queued after being put on the wire until the peer acks
/// them; a session resume rewinds to the peer's reported rx count and
/// re-sends the tail.
///
/// Overload policy, in escalation order ("shed heartbeats last"):
///  1. past `queue_high` the queue reports backpressure — the manager
///     stops dispatching to this peer, which starves the queue organically;
///  2. heartbeats coalesce whenever one is already waiting unsent (a newer
///     beacon supersedes an older one losslessly);
///  3. only at the hard `queue_cap` are heartbeats dropped outright —
///     application payloads (dispatches, results) are NEVER shed; they ride
///     the bounded-by-construction app-level in-flight window.
class SessionSendQueue {
 public:
  SessionSendQueue(const SessionConfig& cfg,
                   core::TransportCounters* counters) noexcept
      : cfg_(&cfg), counters_(counters) {}

  /// Enqueues one application frame (heartbeat coalescing/shedding above).
  void push(std::string frame);

  /// Next unsent frame, marking it sent; nullopt when drained.
  std::optional<std::string_view> next_to_send();

  /// Peer acknowledged `rx_seq` frames: drop the replay prefix.
  void acked(std::uint64_t rx_seq) noexcept;

  /// Session resume: the peer received `rx_seq` frames; everything after
  /// replays. Counts the rewound tail as frames_replayed.
  void rewind(std::uint64_t rx_seq) noexcept;

  /// Fresh session: renumber the surviving (never delivered) frames from
  /// sequence 0 and forget all delivery state.
  void reset_fresh() noexcept;

  bool backpressured() const noexcept { return backpressured_; }
  std::size_t depth() const noexcept { return frames_.size(); }
  std::size_t unsent() const noexcept { return frames_.size() - sent_; }
  /// Sequence number of the first queued frame.
  std::uint64_t base_seq() const noexcept { return base_seq_; }
  /// Total frames ever accepted (= sequence number of the next push).
  std::uint64_t accepted() const noexcept {
    return base_seq_ + frames_.size();
  }
  bool fully_sent() const noexcept { return sent_ == frames_.size(); }

 private:
  void update_backpressure() noexcept;

  const SessionConfig* cfg_;
  core::TransportCounters* counters_;
  struct Entry {
    std::string frame;
    bool heartbeat = false;
  };
  std::deque<Entry> frames_;
  std::uint64_t base_seq_ = 0;  ///< seq of frames_.front()
  std::size_t sent_ = 0;        ///< leading frames already on the wire
  bool backpressured_ = false;
};

/// Deterministic reconnect pacing: capped exponential backoff with seeded
/// jitter. attempt 1 waits ~base, attempt k waits ~min(cap, base * 2^(k-1)),
/// each scaled by a jitter factor in [1-jitter, 1+jitter] drawn from the
/// worker's own stream — synchronized reconnect stampedes after a manager
/// restart are exactly the storm the jitter breaks up.
class ReconnectBackoff {
 public:
  ReconnectBackoff(double base, double cap, double jitter,
                   std::uint64_t seed) noexcept;

  /// Delay before reconnect attempt `attempt` (1-based).
  double delay(std::size_t attempt) noexcept;

 private:
  double base_;
  double cap_;
  double jitter_;
  std::uint64_t state_;  ///< splitmix64 walk; cheap and reproducible
};

}  // namespace tora::proto::net
