#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/metrics.hpp"
#include "core/recovery/crash.hpp"
#include "core/recovery/recovery_log.hpp"
#include "core/recovery/storage.hpp"
#include "core/task.hpp"
#include "core/task_allocator.hpp"
#include "proto/manager.hpp"
#include "proto/net/endpoint.hpp"
#include "proto/net/fault_proxy.hpp"
#include "proto/recovery_runtime.hpp"

namespace tora::proto::net {

/// Outcome of a TCP protocol run: the in-process result plus transport
/// counters and the manager's bit-exact state fingerprint (the three-way
/// parity oracle compares this byte string against the in-process run's).
struct TcpRunResult : ProtocolRunResult {
  core::TransportCounters transport;  ///< manager + every worker, merged
  std::string state_fingerprint;      ///< ProtocolManager::snapshot_body()
};

/// ProtocolRuntime's socket sibling: the same manager and WorkerAgents,
/// but every message crosses a real loopback TCP connection through the
/// session layer (handshake, sequence numbers, acks, reconnect, resume).
///
/// Two pacing modes:
///
///  - LOCKSTEP (default, no wire faults): each round runs exactly the
///    in-process round structure — manager.pump(), network settled to
///    empty, agents pump, settled again — so message arrival ORDER is
///    identical to the in-process runtime and the final snapshot_body()
///    matches it byte for byte. The settle barrier is count-based (every
///    send queue drained, acked, and every byte delivered), not
///    time-based, which is what makes real sockets deterministic here.
///
///  - PACED (chaos): with a FaultProxy plan or lockstep=false, each round
///    interleaves a bounded burst of IO pumps instead of a barrier — the
///    network is allowed to be mid-flight, late, or on fire. Assertions
///    then target completion and exactly-once accounting, not
///    fingerprints.
///
/// The optional WireFaultPlan routes every worker through an in-process
/// FaultProxy injecting byte-level faults (latency, corruption, mid-frame
/// truncation, RST, accept-refusal).
class TcpProtocolRuntime {
 public:
  TcpProtocolRuntime(std::span<const core::TaskSpec> tasks,
                     core::TaskAllocator& allocator, std::size_t num_workers,
                     core::ResourceVector worker_capacity,
                     TcpTransportConfig tcp = {}, ChaosConfig chaos = {},
                     std::optional<WireFaultPlan> proxy_plan = std::nullopt,
                     bool lockstep = true);

  TcpRunResult run(std::size_t max_rounds = 100000);

  ManagerEndpoint& manager_endpoint() noexcept { return *mgr_ep_; }
  WorkerEndpoint& worker_endpoint(std::size_t i) { return *worker_eps_.at(i); }
  /// Non-null when a proxy plan was given.
  FaultProxy* proxy() noexcept { return proxy_.get(); }

 private:
  bool pump_network(int timeout_ms = 0);
  /// Pumps IO until the whole network is empty (lockstep barrier); the
  /// sub-round clock advances a fraction per iteration so backoff and
  /// latency gates keep moving. Throws if the network never drains.
  void settle();
  bool network_quiesced() const;

  std::span<const core::TaskSpec> tasks_;
  core::TaskAllocator& allocator_;
  TcpTransportConfig tcp_;
  bool lockstep_;
  std::size_t stall_limit_;
  std::unique_ptr<ManagerEndpoint> mgr_ep_;
  std::unique_ptr<FaultProxy> proxy_;
  std::vector<std::unique_ptr<WorkerEndpoint>> worker_eps_;
  std::vector<WorkerAgent> agents_;
  std::unique_ptr<ProtocolManager> manager_;
  double now_ = 0.0;
};

/// RecoverableProtocolRuntime's socket sibling: the manager journals and
/// crashes exactly as in the in-process harness, but the transport is the
/// real ManagerEndpoint, which — like the network it models — SURVIVES the
/// manager process dying: the reborn manager receives the same links, and
/// in-flight frames are still in the endpoint's channels and send queues.
/// With `drop_connections_on_crash` the crash also RSTs every worker
/// connection (the manager host's network stack dying with it); workers
/// then reconnect with backoff and RESUME their sessions, replaying
/// unacked results into the recovered manager's idempotency gate.
class RecoverableTcpRuntime {
 public:
  using AllocatorFactory = RecoverableProtocolRuntime::AllocatorFactory;

  RecoverableTcpRuntime(std::span<const core::TaskSpec> tasks,
                        AllocatorFactory make_allocator,
                        std::size_t num_workers,
                        core::ResourceVector worker_capacity,
                        TcpTransportConfig tcp, ChaosConfig chaos,
                        core::recovery::Storage& storage,
                        core::recovery::RecoveryConfig recovery = {},
                        core::recovery::CrashSchedule crashes = {},
                        bool drop_connections_on_crash = true);

  struct Result : TcpRunResult {
    core::RecoveryCounters recovery;
  };

  Result run(std::size_t max_rounds = 100000);

 private:
  std::size_t recover();
  bool pump_network(int timeout_ms = 0);
  void settle();
  bool network_quiesced() const;

  std::span<const core::TaskSpec> tasks_;
  AllocatorFactory make_allocator_;
  LivenessConfig liveness_;
  TcpTransportConfig tcp_;
  bool drop_on_crash_;
  std::size_t stall_limit_;
  std::unique_ptr<core::TaskAllocator> allocator_;
  std::unique_ptr<ManagerEndpoint> mgr_ep_;
  std::vector<std::unique_ptr<WorkerEndpoint>> worker_eps_;
  std::vector<WorkerAgent> agents_;
  core::recovery::Storage& storage_;
  core::RecoveryCounters counters_;
  core::recovery::CrashMonitor monitor_;
  core::recovery::RecoveryLog log_;
  core::recovery::RecoveryConfig recovery_cfg_;
  std::unique_ptr<ProtocolManager> manager_;
  double now_ = 0.0;
};

}  // namespace tora::proto::net
