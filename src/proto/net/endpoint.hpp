#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "proto/channel.hpp"
#include "proto/net/frame.hpp"
#include "proto/net/session.hpp"
#include "proto/net/socket.hpp"

namespace tora::proto::net {

/// Transport-level knobs shared by both ends. `now` below is always the
/// caller's monotone clock in arbitrary units — the lockstep test harness
/// passes pump rounds, the CLI passes seconds — so every window here
/// (backoff, keepalive, handshake timeout) is in those units.
struct TcpTransportConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< manager listen port; 0 picks ephemeral
  SessionConfig session;
  double backoff_base = 1.0;     ///< first reconnect delay
  double backoff_cap = 16.0;     ///< backoff ceiling
  double backoff_jitter = 0.25;  ///< +- fraction applied per attempt
  double handshake_timeout = 64.0;  ///< connect/hello-to-welcome deadline
  std::uint64_t seed = 0x746f7261;  ///< session tokens + backoff jitter

  void validate() const;  ///< throws std::invalid_argument on nonsense
};

/// Channel whose send() feeds a session send queue instead of an in-memory
/// peer: the write half of a DuplexLink when the peer lives across a
/// socket. poll() on this channel always drains empty (the real receive
/// path is the endpoint delivering into the link's OTHER channel).
class OutboundSocketChannel final : public Channel {
 public:
  explicit OutboundSocketChannel(SessionSendQueue& tx) noexcept : tx_(&tx) {}

  void send(std::string line) override { tx_->push(std::move(line)); }
  bool backpressured() const noexcept override {
    return tx_->backpressured();
  }

 private:
  SessionSendQueue* tx_;
};

/// The manager's end of the socket transport. Owns the listening socket,
/// every worker connection, the per-worker sessions (send queue + receive
/// count + token), and the DuplexLinks handed to ProtocolManager: the
/// link's `to_worker` is an OutboundSocketChannel into the session's send
/// queue, and inbound application frames are delivered into `to_manager`
/// by pump_io(). The endpoint deliberately models the network substrate,
/// not the manager: like in-process links, it SURVIVES a manager crash and
/// rebuild (RecoverableTcpRuntime hands the same links to the reborn
/// manager), which is why none of its state enters snapshot_body().
///
/// Single-threaded: construct, pump_io and destroy on one thread. Several
/// endpoints on one thread interleave fine (the lockstep harness does).
class ManagerEndpoint {
 public:
  ManagerEndpoint(std::size_t num_workers, TcpTransportConfig cfg);
  ~ManagerEndpoint();
  ManagerEndpoint(const ManagerEndpoint&) = delete;
  ManagerEndpoint& operator=(const ManagerEndpoint&) = delete;

  /// The actual listening port (useful with cfg.port = 0).
  std::uint16_t port() const noexcept { return listener_.port(); }

  /// The per-worker links for ProtocolManager. The endpoint must outlive
  /// every user of these links.
  const std::vector<DuplexLinkPtr>& links() const noexcept { return links_; }

  /// One IO pump: accept pending connections, read every readable socket,
  /// run handshakes, deliver inbound application frames into the links,
  /// flush send queues, close keepalive violators. Returns true if any
  /// byte or frame moved (a progress signal for settle loops).
  /// `timeout_ms` 0 polls; > 0 blocks in epoll up to that long.
  bool pump_io(double now, int timeout_ms = 0);

  /// Every session attached + handshaken, all send queues drained AND
  /// acked, no partially received or partially sent bytes anywhere: the
  /// network holds no state. The lockstep parity harness barriers on this.
  bool quiesced() const noexcept;

  bool worker_connected(std::uint64_t worker_id) const noexcept;
  std::size_t connections() const noexcept { return conns_.size(); }

  /// Application frames received from `worker_id` this session.
  std::uint64_t rx_count(std::uint64_t worker_id) const;

  /// Hard-drops every worker connection with an RST and detaches the
  /// sessions (they resume on reconnect). Crash tests use this to model
  /// the manager host's network stack dying with the manager.
  void drop_all_connections();

  /// When true, pending connections are accepted and immediately closed —
  /// models a listener whose accept queue the manager cannot serve.
  void refuse_accepts(bool refuse) noexcept { refuse_accepts_ = refuse; }

  const core::TransportCounters& counters() const noexcept {
    return counters_;
  }

 private:
  struct Conn {
    Fd fd;
    FrameReader reader;
    SendBuffer out;
    bool established = false;
    std::uint64_t worker = 0;  ///< valid once established
    double opened_at = 0.0;
    double last_rx = 0.0;
    Conn(Fd f, std::size_t max_frame, double now)
        : fd(std::move(f)), reader(max_frame), opened_at(now), last_rx(now) {}
  };

  struct Session {
    std::uint64_t token = 0;       ///< 0 until first hello
    std::uint64_t generation = 0;  ///< fresh handshakes served
    std::uint64_t rx = 0;          ///< app frames received this session
    SessionSendQueue tx;
    int conn_fd = -1;  ///< attached connection, -1 while detached
    bool ack_due = false;
    Session(const SessionConfig& cfg, core::TransportCounters* counters)
        : tx(cfg, counters) {}
  };

  bool accept_pending(double now);
  bool read_conn(Conn& conn, double now);
  /// Handles one complete frame; returns false when the connection must die.
  bool handle_frame(Conn& conn, std::string frame, double now);
  bool handle_hello(Conn& conn, const std::string& frame, double now);
  bool flush();
  void close_conn(int fd, bool rst = false);
  void enforce_deadlines(double now);

  TcpTransportConfig cfg_;
  TcpListener listener_;
  Poller poller_;
  std::vector<std::unique_ptr<Session>> sessions_;  ///< index = worker id
  std::vector<DuplexLinkPtr> links_;
  std::map<int, Conn> conns_;
  core::TransportCounters counters_;
  std::uint64_t token_state_;  ///< splitmix walk for session tokens
  bool refuse_accepts_ = false;
};

/// One worker's end: a self-healing connector running the session state
/// machine Idle -> Connecting -> HelloSent -> Established -> Backoff ->
/// Connecting -> ... with capped exponential backoff + seeded jitter
/// between attempts. Reconnects RESUME the session: the first hello sent a
/// zero token, every later one replays the token the manager minted, and
/// both sides rewind their send queues to the peer's reported receive
/// count — so a result that was in flight when the connection died is
/// re-delivered, and the manager's attempt-id dedup absorbs any overlap.
///
/// The WorkerAgent plugs in unchanged: it talks to link() exactly as it
/// would to an in-process link.
class WorkerEndpoint {
 public:
  WorkerEndpoint(std::uint64_t worker_id, TcpTransportConfig cfg);
  ~WorkerEndpoint();
  WorkerEndpoint(const WorkerEndpoint&) = delete;
  WorkerEndpoint& operator=(const WorkerEndpoint&) = delete;

  const DuplexLinkPtr& link() const noexcept { return link_; }

  /// One IO pump: drive the connector state machine (respecting backoff
  /// deadlines against `now`), flush the send queue, read inbound frames
  /// and deliver dispatches into the link. Returns true on any progress.
  bool pump_io(double now, int timeout_ms = 0);

  bool established() const noexcept { return state_ == State::Established; }
  /// No connection-level work outstanding (see ManagerEndpoint::quiesced).
  bool quiesced() const noexcept;

  /// Application frames received this session.
  std::uint64_t rx_count() const noexcept { return rx_; }
  std::uint64_t session_token() const noexcept { return token_; }

  /// Test hook: drop the TCP connection (RST) without telling the agent —
  /// the next pump_io starts the reconnect dance.
  void kill_connection();

  const core::TransportCounters& counters() const noexcept {
    return counters_;
  }

 private:
  enum class State { Idle, Connecting, HelloSent, Established, Backoff };

  void start_connect(double now);
  void enter_backoff(double now);
  bool read_socket(double now);
  bool handle_frame(std::string frame);
  bool handle_welcome(const std::string& frame);
  bool flush();

  std::uint64_t worker_id_;
  TcpTransportConfig cfg_;
  Poller poller_;
  SessionSendQueue tx_;
  DuplexLinkPtr link_;
  Channel* inbound_;  ///< the link's to_worker half (delivery target)

  State state_ = State::Idle;
  Fd fd_;
  FrameReader reader_;
  SendBuffer out_;
  std::uint64_t token_ = 0;  ///< 0 = never handshaken (fresh hello)
  std::uint64_t rx_ = 0;
  bool ack_due_ = false;
  double state_since_ = 0.0;
  double retry_at_ = 0.0;
  std::size_t attempt_ = 0;  ///< consecutive failed connect attempts
  bool ever_established_ = false;
  ReconnectBackoff backoff_;
  core::TransportCounters counters_;
};

}  // namespace tora::proto::net
