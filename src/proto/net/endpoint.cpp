#include "proto/net/endpoint.hpp"

#include <stdexcept>
#include <utility>

#include "util/io.hpp"
#include "util/rng.hpp"

namespace tora::proto::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

/// Drains a nonblocking socket into a FrameReader. Returns false when the
/// connection is dead (EOF, error, or an oversized frame poisoning the
/// reader); `moved` reports whether any byte arrived.
bool drain_socket(int fd, FrameReader& reader, std::string& scratch,
                  std::size_t& total_bytes, bool& moved) {
  for (;;) {
    scratch.clear();
    const auto r = util::io::recv_some(fd, scratch, kReadChunk);
    if (r.status == util::io::IoStatus::WouldBlock) return true;
    if (r.status != util::io::IoStatus::Ok) return false;  // Eof or Error
    total_bytes += r.bytes;
    moved = true;
    if (!reader.feed(scratch)) return false;  // poisoned: oversized frame
  }
}

}  // namespace

void TcpTransportConfig::validate() const {
  session.validate();
  if (backoff_base <= 0.0 || backoff_cap < backoff_base) {
    throw std::invalid_argument(
        "TcpTransportConfig: need 0 < backoff_base <= backoff_cap");
  }
  if (backoff_jitter < 0.0 || backoff_jitter >= 1.0) {
    throw std::invalid_argument(
        "TcpTransportConfig: backoff_jitter must be in [0, 1)");
  }
  if (handshake_timeout <= 0.0) {
    throw std::invalid_argument(
        "TcpTransportConfig: handshake_timeout must be > 0");
  }
}

// ========================================================= ManagerEndpoint

ManagerEndpoint::ManagerEndpoint(std::size_t num_workers,
                                 TcpTransportConfig cfg)
    : cfg_(std::move(cfg)),
      listener_(cfg_.host, cfg_.port),
      token_state_(util::hash64("manager-endpoint") ^ cfg_.seed) {
  cfg_.validate();
  if (num_workers == 0) {
    throw std::invalid_argument("ManagerEndpoint: need at least one worker");
  }
  poller_.add(listener_.fd());
  sessions_.reserve(num_workers);
  links_.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    sessions_.push_back(std::make_unique<Session>(cfg_.session, &counters_));
    links_.push_back(std::make_shared<DuplexLink>(
        std::make_unique<OutboundSocketChannel>(sessions_[w]->tx),
        std::make_unique<Channel>()));
  }
}

ManagerEndpoint::~ManagerEndpoint() = default;

bool ManagerEndpoint::pump_io(double now, int timeout_ms) {
  bool progress = accept_pending(now);
  const auto events = poller_.wait(timeout_ms);
  for (const auto& ev : events) {
    if (ev.fd == listener_.fd()) {
      progress |= accept_pending(now);
      continue;
    }
    auto it = conns_.find(ev.fd);
    if (it == conns_.end()) continue;  // closed earlier this pump
    if (ev.readable || ev.hangup) {
      progress |= read_conn(it->second, now);
    }
  }
  // Acks ride at most once per pump, after the read phase, so a burst of
  // inbound frames costs one control frame, not one per frame.
  for (std::size_t w = 0; w < sessions_.size(); ++w) {
    Session& s = *sessions_[w];
    if (!s.ack_due || s.conn_fd < 0) continue;
    auto it = conns_.find(s.conn_fd);
    if (it == conns_.end()) continue;
    it->second.out.push_frame(encode_ack(AckFrame{s.rx}));
    ++counters_.frames_sent;
    s.ack_due = false;
    progress = true;
  }
  progress |= flush();
  enforce_deadlines(now);
  return progress;
}

bool ManagerEndpoint::accept_pending(double now) {
  bool progress = false;
  while (auto fd = listener_.accept()) {
    progress = true;
    if (refuse_accepts_) {
      // Served only to be slammed shut: the "manager cannot serve its
      // accept queue" fault. Workers see an immediate close and back off.
      ++counters_.connect_failures;
      continue;  // Fd destructor closes
    }
    ++counters_.connections_accepted;
    const int raw = fd->get();
    poller_.add(raw);
    conns_.emplace(raw,
                   Conn(std::move(*fd), cfg_.session.max_frame_bytes, now));
  }
  return progress;
}

bool ManagerEndpoint::read_conn(Conn& conn, double now) {
  bool moved = false;
  std::string scratch;
  const bool alive = drain_socket(conn.fd.get(), conn.reader, scratch,
                                  counters_.bytes_received, moved);
  if (moved) conn.last_rx = now;
  bool keep = alive;
  if (conn.reader.poisoned()) ++counters_.oversized_frames;
  // A pre-handshake peer gets a much smaller byte budget than the frame
  // limit: a hello is tiny, so anything longer — even without a newline
  // yet — is garbage.
  if (keep && !conn.established &&
      conn.reader.partial_bytes() > cfg_.session.max_hello_bytes) {
    ++counters_.handshakes_rejected;
    keep = false;
  }
  while (keep) {
    auto frame = conn.reader.pop();
    if (!frame) break;
    moved = true;
    keep = handle_frame(conn, std::move(*frame), now);
  }
  if (!keep) close_conn(conn.fd.get());
  return moved;
}

bool ManagerEndpoint::handle_frame(Conn& conn, std::string frame,
                                   double now) {
  if (!conn.established) return handle_hello(conn, frame, now);
  if (is_control_frame(frame)) {
    if (const auto ack = decode_ack(frame)) {
      sessions_[conn.worker]->tx.acked(ack->rx_seq);
      return true;
    }
    // Any other control frame on an established connection — second
    // hello, corrupt ack, unknown verb — is a protocol violation.
    ++counters_.corrupt_control_frames;
    return false;
  }
  Session& s = *sessions_[conn.worker];
  ++s.rx;
  s.ack_due = true;
  ++counters_.frames_received;
  links_[conn.worker]->to_manager.send(std::move(frame));
  return true;
}

bool ManagerEndpoint::handle_hello(Conn& conn, const std::string& frame,
                                   double now) {
  const auto reject = [this] {
    ++counters_.handshakes_rejected;
    return false;
  };
  if (frame.size() > cfg_.session.max_hello_bytes) return reject();
  const auto hello = decode_hello(frame);
  if (!hello) return reject();
  if (hello->version != cfg_.session.version) return reject();
  if (hello->worker_id >= sessions_.size()) return reject();
  Session& s = *sessions_[hello->worker_id];

  bool resumed = false;
  if (hello->token != 0 && hello->token == s.token &&
      hello->rx_seq <= s.tx.accepted()) {
    // Resume: the peer tells us how much it received; replay the rest.
    s.tx.rewind(hello->rx_seq);
    resumed = true;
    ++counters_.sessions_resumed;
  } else {
    // Fresh session — requested (token 0) or forced (stale token from an
    // earlier generation, or an rx claim beyond anything we ever sent).
    // Forcing fresh instead of rejecting matters: a worker holding a
    // token we no longer recognize would otherwise loop
    // reconnect -> reject forever. Mint a token, renumber whatever is
    // still queued from sequence zero (undelivered work stays
    // deliverable), forget receive state.
    ++s.generation;
    s.token = util::splitmix64(token_state_);
    if (s.token == 0) s.token = 1;  // 0 is the "no session" sentinel
    s.tx.reset_fresh();
    s.rx = 0;
    s.ack_due = false;
  }

  // Newest connection wins: a half-open predecessor would otherwise pin
  // the session until keepalive notices it.
  if (s.conn_fd >= 0 && s.conn_fd != conn.fd.get()) {
    close_conn(s.conn_fd);
  }
  conn.established = true;
  conn.worker = hello->worker_id;
  s.conn_fd = conn.fd.get();
  (void)now;

  WelcomeFrame w;
  w.version = cfg_.session.version;
  w.token = s.token;
  w.rx_seq = s.rx;
  w.resumed = resumed;
  conn.out.push_frame(encode_welcome(w));
  ++counters_.frames_sent;
  ++counters_.handshakes_ok;
  return true;
}

bool ManagerEndpoint::flush() {
  bool progress = false;
  std::vector<int> dead;
  for (auto& [fd, conn] : conns_) {
    if (conn.established) {
      Session& s = *sessions_[conn.worker];
      while (auto frame = s.tx.next_to_send()) {
        conn.out.push_frame(*frame);
        ++counters_.frames_sent;
        progress = true;
      }
    }
    while (!conn.out.empty()) {
      const std::size_t want = conn.out.chunk().size();
      const auto r = util::io::send_some(conn.fd.get(), conn.out.chunk());
      if (r.status == util::io::IoStatus::WouldBlock) break;
      if (r.status != util::io::IoStatus::Ok) {
        dead.push_back(fd);
        break;
      }
      counters_.bytes_sent += r.bytes;
      conn.out.consume(r.bytes);
      progress = true;
      if (r.bytes < want) {
        // Kernel took part of the chunk; the rest resumes next pump.
        ++counters_.partial_writes;
        break;
      }
    }
    poller_.set_want_write(fd, !conn.out.empty());
  }
  for (int fd : dead) close_conn(fd);
  return progress;
}

void ManagerEndpoint::close_conn(int fd, bool rst) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (it->second.established) {
    Session& s = *sessions_[it->second.worker];
    if (s.conn_fd == fd) s.conn_fd = -1;  // detached; resumes on reconnect
  }
  poller_.remove(fd);
  if (rst) reset_close(it->second.fd);
  conns_.erase(it);
  ++counters_.connections_closed;
}

void ManagerEndpoint::enforce_deadlines(double now) {
  std::vector<int> expired;
  for (auto& [fd, conn] : conns_) {
    if (!conn.established) {
      if (now - conn.opened_at > cfg_.handshake_timeout) expired.push_back(fd);
    } else if (cfg_.session.keepalive_window > 0.0 &&
               now - conn.last_rx > cfg_.session.keepalive_window) {
      // The liveness layer above will declare the worker silent in its own
      // time; this merely stops a dead connection from pinning the session
      // (and the fd) forever.
      ++counters_.keepalive_closes;
      expired.push_back(fd);
    }
  }
  for (int fd : expired) close_conn(fd);
}

bool ManagerEndpoint::quiesced() const noexcept {
  for (const auto& s : sessions_) {
    if (s->conn_fd < 0) return false;
    if (s->tx.depth() != 0 || s->ack_due) return false;
  }
  for (const auto& [fd, conn] : conns_) {
    if (!conn.established) return false;
    if (!conn.out.empty() || conn.reader.partial_bytes() != 0) return false;
  }
  return true;
}

bool ManagerEndpoint::worker_connected(std::uint64_t worker_id) const noexcept {
  return worker_id < sessions_.size() && sessions_[worker_id]->conn_fd >= 0;
}

std::uint64_t ManagerEndpoint::rx_count(std::uint64_t worker_id) const {
  return sessions_.at(worker_id)->rx;
}

void ManagerEndpoint::drop_all_connections() {
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) close_conn(fd, /*rst=*/true);
}

// ========================================================== WorkerEndpoint

WorkerEndpoint::WorkerEndpoint(std::uint64_t worker_id, TcpTransportConfig cfg)
    : worker_id_(worker_id),
      cfg_(std::move(cfg)),
      tx_(cfg_.session, &counters_),
      reader_(cfg_.session.max_frame_bytes),
      backoff_(cfg_.backoff_base, cfg_.backoff_cap, cfg_.backoff_jitter,
               util::hash64("worker-backoff") ^ cfg_.seed ^
                   (worker_id * 0x9e3779b97f4a7c15ULL)) {
  cfg_.validate();
  // to_worker carries inbound dispatches (the endpoint delivers into it);
  // to_manager is the session send queue in Channel clothing.
  link_ = std::make_shared<DuplexLink>(
      std::make_unique<Channel>(), std::make_unique<OutboundSocketChannel>(tx_));
  inbound_ = &link_->to_worker;
}

WorkerEndpoint::~WorkerEndpoint() = default;

void WorkerEndpoint::start_connect(double now) {
  fd_ = connect_start(cfg_.host, cfg_.port);
  if (!fd_.valid()) {
    ++counters_.connect_failures;
    enter_backoff(now);
    return;
  }
  poller_.add(fd_.get(), /*want_write=*/true);
  reader_ = FrameReader(cfg_.session.max_frame_bytes);
  out_ = SendBuffer();
  state_ = State::Connecting;
  state_since_ = now;
}

void WorkerEndpoint::enter_backoff(double now) {
  if (fd_.valid()) {
    poller_.remove(fd_.get());
    fd_.reset();
    ++counters_.connections_closed;
  }
  state_ = State::Backoff;
  state_since_ = now;
  retry_at_ = now + backoff_.delay(++attempt_);
}

bool WorkerEndpoint::pump_io(double now, int timeout_ms) {
  bool progress = false;
  switch (state_) {
    case State::Idle:
      start_connect(now);
      progress = true;
      break;
    case State::Backoff:
      if (now >= retry_at_) {
        start_connect(now);
        progress = true;
      }
      break;
    default:
      break;
  }
  if (!fd_.valid()) return progress;

  const auto events = poller_.wait(timeout_ms);
  bool readable = false;
  bool writable = false;
  bool hangup = false;
  for (const auto& ev : events) {
    if (ev.fd != fd_.get()) continue;
    readable |= ev.readable;
    writable |= ev.writable;
    hangup |= ev.hangup;
  }

  if (state_ == State::Connecting) {
    if (writable || hangup) {
      if (connect_result(fd_.get())) {
        ++counters_.connections_opened;
        HelloFrame h;
        h.version = cfg_.session.version;
        h.worker_id = worker_id_;
        h.token = token_;
        h.rx_seq = rx_;
        out_.push_frame(encode_hello(h));
        ++counters_.frames_sent;
        state_ = State::HelloSent;
        state_since_ = now;
        progress = true;
      } else {
        ++counters_.connect_failures;
        enter_backoff(now);
        return true;
      }
    } else if (now - state_since_ > cfg_.handshake_timeout) {
      ++counters_.connect_failures;
      enter_backoff(now);
      return progress;
    }
  }

  if (state_ == State::HelloSent &&
      now - state_since_ > cfg_.handshake_timeout) {
    // Hello answered with silence: connection is probably half-dead.
    ++counters_.connect_failures;
    enter_backoff(now);
    return progress;
  }

  if (state_ == State::HelloSent || state_ == State::Established) {
    if (readable || hangup) {
      if (!read_socket(now)) {
        enter_backoff(now);
        return true;
      }
      progress = true;
    }
    if (ack_due_ && state_ == State::Established) {
      out_.push_frame(encode_ack(AckFrame{rx_}));
      ++counters_.frames_sent;
      ack_due_ = false;
      progress = true;
    }
    if (!flush()) {
      enter_backoff(now);
      return true;
    }
  }
  return progress;
}

bool WorkerEndpoint::read_socket(double now) {
  (void)now;
  bool moved = false;
  std::string scratch;
  const bool alive = drain_socket(fd_.get(), reader_, scratch,
                                  counters_.bytes_received, moved);
  if (reader_.poisoned()) ++counters_.oversized_frames;
  bool keep = alive;
  while (keep) {
    auto frame = reader_.pop();
    if (!frame) break;
    keep = handle_frame(std::move(*frame));
  }
  return keep;
}

bool WorkerEndpoint::handle_frame(std::string frame) {
  if (state_ == State::HelloSent) return handle_welcome(frame);
  if (is_control_frame(frame)) {
    if (const auto ack = decode_ack(frame)) {
      tx_.acked(ack->rx_seq);
      return true;
    }
    ++counters_.corrupt_control_frames;
    return false;
  }
  ++rx_;
  ++counters_.frames_received;
  ack_due_ = true;
  inbound_->send(std::move(frame));
  return true;
}

bool WorkerEndpoint::handle_welcome(const std::string& frame) {
  const auto welcome = decode_welcome(frame);
  if (!welcome || welcome->version != cfg_.session.version ||
      welcome->token == 0) {
    ++counters_.corrupt_control_frames;
    return false;
  }
  if (welcome->resumed) {
    if (welcome->token != token_) {
      // A resume we never asked for, or for a different session.
      ++counters_.corrupt_control_frames;
      return false;
    }
    tx_.rewind(welcome->rx_seq);
    ++counters_.sessions_resumed;
  } else {
    // Fresh session: adopt the minted token, renumber the queue (its
    // contents — announce, cached results — are still worth delivering),
    // restart receive counting.
    token_ = welcome->token;
    tx_.reset_fresh();
    rx_ = 0;
    ack_due_ = false;
  }
  ++counters_.handshakes_ok;
  if (ever_established_) ++counters_.reconnects;
  ever_established_ = true;
  attempt_ = 0;
  state_ = State::Established;
  return true;
}

bool WorkerEndpoint::flush() {
  if (state_ == State::Established) {
    while (auto frame = tx_.next_to_send()) {
      out_.push_frame(*frame);
      ++counters_.frames_sent;
    }
  }
  while (!out_.empty()) {
    const std::size_t want = out_.chunk().size();
    const auto r = util::io::send_some(fd_.get(), out_.chunk());
    if (r.status == util::io::IoStatus::WouldBlock) break;
    if (r.status != util::io::IoStatus::Ok) return false;
    counters_.bytes_sent += r.bytes;
    out_.consume(r.bytes);
    if (r.bytes < want) {
      ++counters_.partial_writes;
      break;
    }
  }
  poller_.set_want_write(fd_.get(), !out_.empty());
  return true;
}

bool WorkerEndpoint::quiesced() const noexcept {
  return state_ == State::Established && out_.empty() && tx_.depth() == 0 &&
         reader_.partial_bytes() == 0 && !ack_due_;
}

void WorkerEndpoint::kill_connection() {
  if (!fd_.valid()) return;
  poller_.remove(fd_.get());
  reset_close(fd_);
  ++counters_.connections_closed;
  // Backoff starts from the next pump's `now`; mark a retry immediately due.
  state_ = State::Backoff;
  retry_at_ = 0.0;
  ++attempt_;
}

}  // namespace tora::proto::net
