#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

namespace tora::proto::net {

/// The TCP wire format is the PR 1 line protocol verbatim: each frame is
/// one `\n`-terminated line carrying its own spliced-in CRC (see
/// proto/message.hpp). This layer only reassembles lines from the byte
/// stream; integrity and semantics stay with the codec above.

/// Reassembles newline-delimited frames from arbitrary read chunks. A
/// partial frame waits in the buffer until its terminator arrives; a frame
/// exceeding `max_frame_bytes` poisons the reader (a peer streaming an
/// unbounded "line" would otherwise grow the buffer without limit — treat
/// it as a protocol violation and drop the connection).
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = 1 << 16)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes from the socket. Returns false once poisoned.
  bool feed(std::string_view bytes);

  /// Next complete frame (without its newline), or nullopt.
  std::optional<std::string> pop();

  bool poisoned() const noexcept { return poisoned_; }
  /// Bytes of an incomplete trailing frame (diagnostics; discarded when the
  /// connection dies — a torn frame never reaches the application).
  std::size_t partial_bytes() const noexcept { return buffer_.size(); }
  std::size_t frames_assembled() const noexcept { return frames_; }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  std::deque<std::string> ready_;
  std::size_t frames_ = 0;
  bool poisoned_ = false;
};

/// Outbound byte queue with explicit partial-write resumption: frames are
/// appended newline-terminated; `take_chunk`/`consume` let the flush loop
/// write whatever the kernel accepts and resume mid-frame later.
class SendBuffer {
 public:
  void push_frame(std::string_view frame);

  bool empty() const noexcept { return bytes_.empty(); }
  std::size_t pending_bytes() const noexcept { return bytes_.size(); }

  /// The contiguous unsent region.
  std::string_view chunk() const noexcept { return bytes_; }
  /// Marks `n` leading bytes as written (a short write consumes less than
  /// chunk().size()).
  void consume(std::size_t n);

 private:
  std::string bytes_;
};

}  // namespace tora::proto::net
