#include "proto/net/session.hpp"

#include <charconv>
#include <cstdio>
#include <span>
#include <stdexcept>

#include "util/rng.hpp"

namespace tora::proto::net {

namespace {

constexpr std::string_view kControlPrefix = "tora!";
constexpr std::string_view kHelloVerb = "tora!hello";
constexpr std::string_view kWelcomeVerb = "tora!welcome";
constexpr std::string_view kAckVerb = "tora!ack";
constexpr std::string_view kCrcToken = " crc=";
constexpr std::size_t kCrcHexDigits = 16;

// Heartbeat application frames start with the heartbeat verb; the session
// queue only needs to classify them, never parse them.
constexpr std::string_view kHeartbeatVerb = "heartbeat ";

/// Same checksum discipline as proto::decode: the `crc` token is spliced
/// out and the FNV-1a hash of the remainder must match. Mandatory — a
/// control frame without a checksum is a violation, not a legacy peer.
bool crc_ok(std::string_view line) {
  const std::size_t pos = line.find(kCrcToken);
  if (pos == std::string_view::npos) return false;
  const std::size_t value_at = pos + kCrcToken.size();
  std::string_view hex = line.substr(value_at);
  const std::size_t sp = hex.find(' ');
  if (sp != std::string_view::npos) hex = hex.substr(0, sp);
  if (hex.size() != kCrcHexDigits) return false;
  std::uint64_t want = 0;
  const auto [end, ec] =
      std::from_chars(hex.data(), hex.data() + hex.size(), want, 16);
  if (ec != std::errc{} || end != hex.data() + hex.size()) return false;
  std::string content;
  content.reserve(line.size());
  content.append(line.substr(0, pos));
  content.append(line.substr(value_at + hex.size()));
  return util::hash64(content) == want;
}

/// Splices ` crc=<16hex>` in directly after the verb, mirroring
/// proto::encode so one corruption model covers both layers.
std::string seal(std::string_view verb, const std::string& fields) {
  std::string content(verb);
  content += fields;
  char crc[kCrcHexDigits + 1];
  std::snprintf(crc, sizeof(crc), "%016llx",
                static_cast<unsigned long long>(util::hash64(content)));
  std::string line(verb);
  line.append(kCrcToken);
  line.append(crc);
  line.append(fields);
  return line;
}

void put_u64(std::string& out, const char* key, std::uint64_t v) {
  out.push_back(' ');
  out.append(key);
  out.push_back('=');
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out.append(buf, end);
}

/// Minimal strict field scanner for control frames: every token after the
/// verb must be `key=<decimal u64>` (the crc token is skipped — crc_ok
/// already validated it). Returns false on any other shape.
struct ControlFields {
  struct Slot {
    std::string_view key;
    std::uint64_t* dst;
    bool seen = false;
  };

  static bool parse(std::string_view line, std::string_view verb,
                    std::span<Slot> slots) {
    if (!crc_ok(line)) return false;
    if (line.substr(0, verb.size()) != verb) return false;
    std::string_view rest = line.substr(verb.size());
    std::size_t pos = 0;
    while (pos < rest.size()) {
      while (pos < rest.size() && rest[pos] == ' ') ++pos;
      if (pos >= rest.size()) break;
      std::size_t end = rest.find(' ', pos);
      if (end == std::string_view::npos) end = rest.size();
      const std::string_view token = rest.substr(pos, end - pos);
      pos = end;
      const std::size_t eq = token.find('=');
      if (eq == std::string_view::npos || eq == 0) return false;
      const std::string_view key = token.substr(0, eq);
      const std::string_view val = token.substr(eq + 1);
      if (key == "crc") continue;
      bool matched = false;
      for (Slot& s : slots) {
        if (s.key != key) continue;
        if (s.seen) return false;  // duplicate field
        std::uint64_t v = 0;
        const auto [vend, ec] =
            std::from_chars(val.data(), val.data() + val.size(), v);
        if (ec != std::errc{} || vend != val.data() + val.size()) return false;
        *s.dst = v;
        s.seen = true;
        matched = true;
        break;
      }
      if (!matched) return false;  // unknown field: reject, don't ignore
    }
    for (const Slot& s : slots) {
      if (!s.seen) return false;
    }
    return true;
  }
};

}  // namespace

void SessionConfig::validate() const {
  if (max_frame_bytes == 0) {
    throw std::invalid_argument("SessionConfig: max_frame_bytes must be > 0");
  }
  if (max_hello_bytes == 0 || max_hello_bytes > max_frame_bytes) {
    throw std::invalid_argument(
        "SessionConfig: max_hello_bytes must be in (0, max_frame_bytes]");
  }
  if (queue_low > queue_high || queue_high > queue_cap) {
    throw std::invalid_argument(
        "SessionConfig: need queue_low <= queue_high <= queue_cap");
  }
  if (queue_cap == 0) {
    throw std::invalid_argument("SessionConfig: queue_cap must be > 0");
  }
  if (keepalive_window < 0.0) {
    throw std::invalid_argument(
        "SessionConfig: keepalive_window must be >= 0");
  }
}

bool is_control_frame(std::string_view frame) noexcept {
  return frame.substr(0, kControlPrefix.size()) == kControlPrefix;
}

std::string encode_hello(const HelloFrame& h) {
  std::string fields;
  put_u64(fields, "v", h.version);
  put_u64(fields, "worker", h.worker_id);
  put_u64(fields, "token", h.token);
  put_u64(fields, "rx", h.rx_seq);
  return seal(kHelloVerb, fields);
}

std::string encode_welcome(const WelcomeFrame& w) {
  std::string fields;
  put_u64(fields, "v", w.version);
  put_u64(fields, "token", w.token);
  put_u64(fields, "rx", w.rx_seq);
  put_u64(fields, "resume", w.resumed ? 1 : 0);
  return seal(kWelcomeVerb, fields);
}

std::string encode_ack(const AckFrame& a) {
  std::string fields;
  put_u64(fields, "rx", a.rx_seq);
  return seal(kAckVerb, fields);
}

std::optional<HelloFrame> decode_hello(std::string_view frame) {
  std::uint64_t v = 0, worker = 0, token = 0, rx = 0;
  ControlFields::Slot slots[] = {
      {"v", &v}, {"worker", &worker}, {"token", &token}, {"rx", &rx}};
  if (!ControlFields::parse(frame, kHelloVerb, slots)) return std::nullopt;
  HelloFrame h;
  h.version = static_cast<std::uint32_t>(v);
  h.worker_id = worker;
  h.token = token;
  h.rx_seq = rx;
  return h;
}

std::optional<WelcomeFrame> decode_welcome(std::string_view frame) {
  std::uint64_t v = 0, token = 0, rx = 0, resume = 0;
  ControlFields::Slot slots[] = {
      {"v", &v}, {"token", &token}, {"rx", &rx}, {"resume", &resume}};
  if (!ControlFields::parse(frame, kWelcomeVerb, slots)) return std::nullopt;
  if (resume > 1) return std::nullopt;
  WelcomeFrame w;
  w.version = static_cast<std::uint32_t>(v);
  w.token = token;
  w.rx_seq = rx;
  w.resumed = resume == 1;
  return w;
}

std::optional<AckFrame> decode_ack(std::string_view frame) {
  std::uint64_t rx = 0;
  ControlFields::Slot slots[] = {{"rx", &rx}};
  if (!ControlFields::parse(frame, kAckVerb, slots)) return std::nullopt;
  return AckFrame{rx};
}

// ------------------------------------------------------------- send queue

void SessionSendQueue::push(std::string frame) {
  const bool heartbeat = frame.compare(0, kHeartbeatVerb.size(),
                                       kHeartbeatVerb) == 0;
  if (heartbeat) {
    // A newer beacon supersedes an older one that hasn't hit the wire yet;
    // replacing in place keeps the sequence number and ordering intact.
    for (std::size_t i = sent_; i < frames_.size(); ++i) {
      if (frames_[i].heartbeat) {
        frames_[i].frame = std::move(frame);
        if (counters_) ++counters_->heartbeats_coalesced;
        return;
      }
    }
    if (frames_.size() >= cfg_->queue_cap) {
      // Hard cap: heartbeats are the only sheddable traffic.
      if (counters_) {
        ++counters_->heartbeats_shed;
        ++counters_->send_queue_overflows;
      }
      return;
    }
  } else if (frames_.size() >= cfg_->queue_cap) {
    // Application payloads are never shed. The app-level in-flight window
    // bounds dispatches/results well below any sane cap, so reaching here
    // means the configuration is broken — fail loudly, don't drop.
    if (counters_) ++counters_->send_queue_overflows;
    throw std::runtime_error(
        "SessionSendQueue: application frame overflowed the hard cap");
  }
  frames_.push_back(Entry{std::move(frame), heartbeat});
  update_backpressure();
}

std::optional<std::string_view> SessionSendQueue::next_to_send() {
  if (sent_ >= frames_.size()) return std::nullopt;
  return std::string_view(frames_[sent_++].frame);
}

void SessionSendQueue::acked(std::uint64_t rx_seq) noexcept {
  while (base_seq_ < rx_seq && !frames_.empty() && sent_ > 0) {
    frames_.pop_front();
    ++base_seq_;
    --sent_;
  }
  update_backpressure();
}

void SessionSendQueue::rewind(std::uint64_t rx_seq) noexcept {
  // First drop everything the peer confirms it already has...
  acked(rx_seq);
  // ...then mark the rest unsent so it replays on the new connection.
  if (counters_) counters_->frames_replayed += sent_;
  sent_ = 0;
}

void SessionSendQueue::reset_fresh() noexcept {
  base_seq_ = 0;
  sent_ = 0;
  update_backpressure();
}

void SessionSendQueue::update_backpressure() noexcept {
  if (!backpressured_ && frames_.size() >= cfg_->queue_high) {
    backpressured_ = true;
    if (counters_) ++counters_->backpressure_events;
  } else if (backpressured_ && frames_.size() <= cfg_->queue_low) {
    backpressured_ = false;
  }
}

// ---------------------------------------------------------------- backoff

ReconnectBackoff::ReconnectBackoff(double base, double cap, double jitter,
                                   std::uint64_t seed) noexcept
    : base_(base), cap_(cap), jitter_(jitter), state_(seed) {}

double ReconnectBackoff::delay(std::size_t attempt) noexcept {
  if (attempt == 0) attempt = 1;
  double d = base_;
  for (std::size_t i = 1; i < attempt && d < cap_; ++i) d *= 2.0;
  if (d > cap_) d = cap_;
  // Jitter factor in [1 - jitter_, 1 + jitter_].
  const double unit =
      static_cast<double>(util::splitmix64(state_) >> 11) * 0x1.0p-53;
  return d * (1.0 + jitter_ * (2.0 * unit - 1.0));
}

}  // namespace tora::proto::net
