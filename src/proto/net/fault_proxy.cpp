#include "proto/net/fault_proxy.hpp"

#include <netinet/in.h>
#include <sys/socket.h>

#include <utility>

#include "util/io.hpp"

namespace tora::proto::net {

namespace {

constexpr std::size_t kReadChunk = 16 * 1024;

/// True once a nonblocking connect has fully established (getpeername
/// succeeds). SO_ERROR alone cannot distinguish "still connecting" from
/// "connected" — both read as 0.
bool peer_bound(int fd) noexcept {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  return ::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0;
}

}  // namespace

FaultProxy::FaultProxy(const std::string& host, std::uint16_t upstream_port,
                       WireFaultPlan plan, std::uint64_t seed)
    : host_(host),
      upstream_port_(upstream_port),
      plan_(plan),
      listener_(host, 0),
      rng_(seed) {
  poller_.add(listener_.fd());
}

bool FaultProxy::pump_io(int timeout_ms) {
  ++step_;
  bool progress = false;
  // Accept new downstream connections and dial the upstream for each.
  while (auto down = listener_.accept()) {
    progress = true;
    if (refuse_) {
      ++faults_;
      continue;  // slam shut: worker sees an immediate close
    }
    Fd up = connect_start(host_, upstream_port_);
    if (!up.valid()) continue;  // upstream gone; downstream just closes
    poller_.add(down->get());
    poller_.add(up.get(), /*want_write=*/true);
    pairs_.push_back(std::make_unique<Pair>(
        std::move(*down), std::move(up),
        rng_.split("conn/" + std::to_string(pairs_.size()))));
  }
  // epoll wakes the blocking CLI/soak callers; the lockstep harness calls
  // with timeout 0 and we simply sweep every pair (level-triggered reads
  // below poll the sockets directly).
  (void)poller_.wait(timeout_ms);
  for (std::size_t i = 0; i < pairs_.size();) {
    Pair& p = *pairs_[i];
    if (plan_.rst_prob > 0.0 && p.rng.bernoulli(plan_.rst_prob)) {
      ++faults_;
      close_pair(i, /*rst=*/true);
      continue;
    }
    if (pump_pair(p)) {
      progress = true;
    }
    if (!p.downstream.valid() || !p.upstream.valid()) {
      close_pair(i, /*rst=*/false);
      continue;
    }
    ++i;
  }
  return progress;
}

bool FaultProxy::pump_pair(Pair& p) {
  if (!p.upstream_connected) {
    if (peer_bound(p.upstream.get())) {
      p.upstream_connected = true;
    } else if (!connect_result(p.upstream.get())) {
      // SO_ERROR set: the dial failed (refused, unreachable). Kill the
      // pair; the worker sees its connection die and backs off.
      p.upstream.reset();
      return false;
    } else {
      return false;  // still connecting; try again next pump
    }
  }
  bool moved = false;
  if (!ingest(p, p.downstream.get(), p.to_upstream)) p.downstream.reset();
  if (p.upstream.valid() &&
      !ingest(p, p.upstream.get(), p.to_downstream)) {
    p.upstream.reset();
  }
  if (p.downstream.valid() && p.upstream.valid()) {
    if (!drain(p, p.to_upstream, p.upstream.get())) p.upstream.reset();
    if (p.upstream.valid() && p.downstream.valid() &&
        !drain(p, p.to_downstream, p.downstream.get())) {
      p.downstream.reset();
    }
  }
  moved = !p.to_upstream.queue.empty() || !p.to_downstream.queue.empty() ||
          !p.to_upstream.wire.empty() || !p.to_downstream.wire.empty();
  if (p.doomed_fin && p.to_upstream.wire.empty() &&
      p.to_downstream.wire.empty()) {
    // Truncation already delivered its partial bytes; now the cut.
    p.downstream.reset();
    p.upstream.reset();
  }
  return moved;
}

bool FaultProxy::ingest(Pair& p, int src_fd, Leg& leg) {
  if (src_fd < 0 || p.doomed_fin) return src_fd >= 0;
  for (;;) {
    std::string chunk;
    const auto r = util::io::recv_some(src_fd, chunk, kReadChunk);
    if (r.status == util::io::IoStatus::WouldBlock) return true;
    if (r.status != util::io::IoStatus::Ok) return false;
    if (plan_.corrupt_chunk_prob > 0.0 &&
        p.rng.bernoulli(plan_.corrupt_chunk_prob)) {
      const std::size_t at = static_cast<std::size_t>(
          p.rng.uniform_int(0, chunk.size() - 1));
      chunk[at] = static_cast<char>(chunk[at] ^ 0x20);
      ++faults_;
    }
    if (plan_.truncate_prob > 0.0 && p.rng.bernoulli(plan_.truncate_prob)) {
      // Keep a strict prefix (possibly cutting mid-frame), then doom the
      // connection once the prefix is flushed.
      const std::size_t keep = static_cast<std::size_t>(
          p.rng.uniform_int(0, chunk.size() - 1));
      chunk.resize(keep);
      p.doomed_fin = true;
      ++faults_;
    }
    if (!chunk.empty()) {
      leg.queue.push_back(Leg::Chunk{std::move(chunk),
                                     step_ + plan_.latency_steps});
    }
    if (p.doomed_fin) return true;
  }
}

bool FaultProxy::drain(Pair& p, Leg& leg, int dst_fd) {
  (void)p;
  while (!leg.queue.empty() && leg.queue.front().release_step <= step_) {
    leg.wire.append(leg.queue.front().bytes);
    leg.queue.pop_front();
  }
  while (!leg.wire.empty()) {
    const auto r = util::io::send_some(dst_fd, leg.wire);
    if (r.status == util::io::IoStatus::WouldBlock) break;
    if (r.status != util::io::IoStatus::Ok) return false;
    leg.wire.erase(0, r.bytes);
  }
  return true;
}

void FaultProxy::close_pair(std::size_t index, bool rst) {
  Pair& p = *pairs_[index];
  if (p.downstream.valid()) {
    poller_.remove(p.downstream.get());
    if (rst) reset_close(p.downstream);
  }
  if (p.upstream.valid()) {
    poller_.remove(p.upstream.get());
    if (rst) reset_close(p.upstream);
  }
  pairs_.erase(pairs_.begin() + static_cast<std::ptrdiff_t>(index));
}

void FaultProxy::rst_all() {
  while (!pairs_.empty()) close_pair(0, /*rst=*/true);
}

void FaultProxy::close_all() {
  while (!pairs_.empty()) close_pair(0, /*rst=*/false);
}

}  // namespace tora::proto::net
