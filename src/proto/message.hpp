#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/resources.hpp"

namespace tora::proto {

/// Message kinds of the manager <-> worker protocol, modelled after Work
/// Queue's line-oriented control protocol (paper Fig. 1: tasks are
/// dispatched to remote workers, results and resource records flow back).
enum class MsgType : std::uint8_t {
  WorkerReady,   ///< worker -> manager: announces itself and its capacity
  TaskDispatch,  ///< manager -> worker: run task `task_id` under `resources`
  TaskResult,    ///< worker -> manager: outcome + measured peak + runtime
  Evict,         ///< worker -> manager: attempt cancelled (worker leaving)
  Shutdown,      ///< manager -> worker: drain and disconnect
  Heartbeat,     ///< worker -> manager: liveness beacon carrying capacity
};

/// How an attempt ended (TaskResult payload).
enum class Outcome : std::uint8_t {
  Success,            ///< ran to completion within its allocation
  ResourceExhausted,  ///< killed for exceeding the allocation
};

/// One protocol message. Field relevance by type:
///  WorkerReady:  worker_id, resources (= capacity)
///  TaskDispatch: worker_id, task_id, attempt, category,
///                resources (= allocation)
///  TaskResult:   worker_id, task_id, attempt, outcome,
///                resources (= measured peak), runtime_s, exceeded_mask
///  Evict:        worker_id, task_id
///  Shutdown:     worker_id
///  Heartbeat:    worker_id, resources (= capacity, so a manager that lost
///                a worker's announcement can still register it)
struct Message {
  MsgType type = MsgType::WorkerReady;
  std::uint64_t worker_id = 0;
  std::uint64_t task_id = 0;
  /// Per-task attempt id, assigned by the manager at dispatch and echoed in
  /// the result. Lets both sides deduplicate replayed or stale messages
  /// idempotently when the transport duplicates or delays them.
  std::uint64_t attempt = 0;
  std::string category;
  core::ResourceVector resources;
  double runtime_s = 0.0;
  Outcome outcome = Outcome::Success;
  unsigned exceeded_mask = 0;

  bool operator==(const Message&) const = default;
};

/// Encodes a message as one line of space-separated `key=value` tokens with
/// a leading verb and an integrity checksum, e.g.
///   `dispatch crc=f00..ba1 worker=3 task=17 attempt=1 category=proc
///    cores=1 memory=512 disk=64 time=0`
/// Category values are URL-%-escaped so spaces/equals survive. The `crc`
/// token (FNV-1a over the line with the token spliced out, 16 hex digits)
/// sits directly after the verb so that corruption OR truncation of the
/// variable-length tail is always detectable.
std::string encode(const Message& msg);

/// Parses one encoded line. Returns nullopt on any malformed input
/// (unknown verb, missing field, bad number, missing or mismatching
/// checksum) — the protocol never throws on remote data. The `crc` token is
/// mandatory: tolerating its absence would let a mutation of the token's
/// key disable verification while other mutations alter the payload.
std::optional<Message> decode(std::string_view line);

std::string_view to_string(MsgType type) noexcept;
std::string_view to_string(Outcome outcome) noexcept;

}  // namespace tora::proto
