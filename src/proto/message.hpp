#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/resources.hpp"

namespace tora::proto {

/// Message kinds of the manager <-> worker protocol, modelled after Work
/// Queue's line-oriented control protocol (paper Fig. 1: tasks are
/// dispatched to remote workers, results and resource records flow back).
enum class MsgType : std::uint8_t {
  WorkerReady,   ///< worker -> manager: announces itself and its capacity
  TaskDispatch,  ///< manager -> worker: run task `task_id` under `resources`
  TaskResult,    ///< worker -> manager: outcome + measured peak + runtime
  Evict,         ///< worker -> manager: attempt cancelled (worker leaving)
  Shutdown,      ///< manager -> worker: drain and disconnect
};

/// How an attempt ended (TaskResult payload).
enum class Outcome : std::uint8_t {
  Success,            ///< ran to completion within its allocation
  ResourceExhausted,  ///< killed for exceeding the allocation
};

/// One protocol message. Field relevance by type:
///  WorkerReady:  worker_id, resources (= capacity)
///  TaskDispatch: worker_id, task_id, category, resources (= allocation)
///  TaskResult:   worker_id, task_id, outcome, resources (= measured peak),
///                runtime_s, exceeded_mask
///  Evict:        worker_id, task_id
///  Shutdown:     worker_id
struct Message {
  MsgType type = MsgType::WorkerReady;
  std::uint64_t worker_id = 0;
  std::uint64_t task_id = 0;
  std::string category;
  core::ResourceVector resources;
  double runtime_s = 0.0;
  Outcome outcome = Outcome::Success;
  unsigned exceeded_mask = 0;

  bool operator==(const Message&) const = default;
};

/// Encodes a message as one line of space-separated `key=value` tokens with
/// a leading verb, e.g.
///   `dispatch worker=3 task=17 category=proc cores=1 memory=512 disk=64 time=0`
/// Category values are URL-%-escaped so spaces/equals survive.
std::string encode(const Message& msg);

/// Parses one encoded line. Returns nullopt on any malformed input
/// (unknown verb, missing field, bad number) — the protocol never throws on
/// remote data.
std::optional<Message> decode(std::string_view line);

std::string_view to_string(MsgType type) noexcept;
std::string_view to_string(Outcome outcome) noexcept;

}  // namespace tora::proto
