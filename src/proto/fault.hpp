#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "core/resilience/resilience.hpp"
#include "proto/channel.hpp"
#include "util/rng.hpp"

namespace tora::proto {

/// Per-channel fault parameters. All probabilities are per message and every
/// decision is drawn from the channel's own seeded Rng stream, so a chaos
/// run is exactly replayable from its seed.
struct FaultPlan {
  double drop_prob = 0.0;       ///< message silently discarded
  double duplicate_prob = 0.0;  ///< message delivered twice
  double corrupt_prob = 0.0;    ///< one byte mutated before delivery
  /// After this many send() calls the link is hard-severed: every further
  /// message is discarded, forever. 0 disables severance.
  std::size_t sever_after_messages = 0;

  bool enabled() const noexcept {
    return drop_prob > 0.0 || duplicate_prob > 0.0 || corrupt_prob > 0.0 ||
           sever_after_messages > 0;
  }
};

/// Channel decorator injecting deterministic faults at send time: drops,
/// duplication, single-byte corruption, and hard severance at a message
/// count. Corruption mutates exactly one byte, so either the line's crc
/// breaks (the receiver discards it as malformed) or the mutation hit the
/// checksum token itself and the payload is untouched — a corrupted message
/// can never smuggle different-but-valid semantics past the codec.
class FaultyChannel final : public Channel {
 public:
  FaultyChannel(FaultPlan plan, util::Rng rng)
      : plan_(plan), rng_(rng) {}

  void send(std::string line) override;

  /// Injected-fault counters (the channel-level ChaosCounters fields).
  const core::ChaosCounters& chaos() const noexcept { return chaos_; }
  bool severed() const noexcept {
    return plan_.sever_after_messages > 0 &&
           attempts_ >= plan_.sever_after_messages;
  }

 private:
  FaultPlan plan_;
  util::Rng rng_;
  core::ChaosCounters chaos_;
  std::size_t attempts_ = 0;  ///< logical send() calls, pre-fault
};

/// Builds a duplex link whose two directions apply the given fault plans,
/// with independent child streams split off `rng`. A disabled plan still
/// yields a FaultyChannel (zero-probability faults) so counters exist.
DuplexLinkPtr make_faulty_link(const FaultPlan& to_worker,
                               const FaultPlan& to_manager, util::Rng& rng);

/// Injectable WorkerAgent crash points — the functional runtime's analogue
/// of a worker process dying: from the crash on, the agent drains nothing,
/// sends nothing, and heartbeats never again.
enum class CrashPoint : std::uint8_t {
  None,
  AfterAnnounce,  ///< announces capacity, then dies before any dispatch
  MidTask,        ///< dies on receiving the Nth dispatch, before executing
  BeforeResult,   ///< executes the Nth dispatch but dies before replying
};

struct WorkerFaultConfig {
  CrashPoint crash_point = CrashPoint::None;
  /// Which fresh (non-duplicate) dispatch triggers MidTask / BeforeResult
  /// (1-based).
  std::size_t crash_on_dispatch = 1;
};

/// ProtocolManager failure-detection and retry-pacing knobs. The functional
/// runtime has no clock, so every window is measured in pump ticks (one
/// tick = one ProtocolManager::pump call).
struct LivenessConfig {
  /// Allocation-induced failures (ResourceExhausted results) before a task
  /// is fatal. Infrastructure failures never count against this budget.
  std::size_t max_allocation_failures = 64;
  /// A known worker silent for more than this many ticks is declared dead:
  /// its in-flight tasks are requeued and charged as evictions.
  std::size_t silence_ticks = 8;
  /// A Running attempt with no result for more than this many ticks is
  /// abandoned and the task re-dispatched (lost dispatch or lost result).
  std::size_t attempt_timeout_ticks = 12;
  /// Consecutive attempt timeouts attributed to one worker before it is
  /// quarantined (covers a one-way severed manager->worker link, which
  /// heartbeats cannot detect). Quarantined workers are never re-admitted.
  std::size_t worker_failure_limit = 6;
  /// Capped exponential backoff applied before re-dispatching a task whose
  /// attempts keep dying to infrastructure faults: the k-th consecutive
  /// infrastructure failure delays the next dispatch by
  /// min(cap, base << (k-1)) ticks.
  std::size_t backoff_base_ticks = 1;
  std::size_t backoff_cap_ticks = 16;
  /// Churn-adaptive resilience layer (core/resilience/): histogram-derived
  /// deadlines replacing attempt_timeout_ticks, speculative re-dispatch of
  /// stragglers, worker reliability scoring with probationary re-admission
  /// instead of permanent quarantine, and eviction-storm degradation. All
  /// windows are measured in pump ticks. Default-off: legacy behavior is
  /// bit-exact with the layer disabled.
  core::resilience::ResilienceConfig resilience;
};

/// Full chaos specification for a ProtocolRuntime run. Every random choice
/// (per-channel fault streams, which workers get severed) derives from
/// `seed`, so two runs with equal configs produce identical counters.
struct ChaosConfig {
  std::uint64_t seed = 0;
  FaultPlan to_worker;   ///< applied to every manager -> worker channel
  FaultPlan to_manager;  ///< applied to every worker -> manager channel
  /// This many randomly chosen workers additionally get BOTH directions
  /// hard-severed after `sever_after_messages` sends. Capped at
  /// num_workers - 1 so the system stays completable.
  std::size_t sever_workers = 0;
  std::size_t sever_after_messages = 40;
  /// Optional per-worker crash injection, indexed by worker id; workers
  /// beyond the vector's size run fault-free.
  std::vector<WorkerFaultConfig> worker_faults;
  LivenessConfig liveness;

  bool enabled() const noexcept {
    return to_worker.enabled() || to_manager.enabled() || sever_workers > 0 ||
           !worker_faults.empty();
  }
};

}  // namespace tora::proto
