#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/recovery/crash.hpp"
#include "core/recovery/recovery_log.hpp"
#include "core/recovery/storage.hpp"
#include "core/task.hpp"
#include "core/task_allocator.hpp"
#include "proto/manager.hpp"

namespace tora::proto {

/// Outcome of a crash-recoverable protocol run.
struct RecoveryRunResult : ProtocolRunResult {
  core::RecoveryCounters recovery;
  /// The final manager's ProtocolManager::snapshot_body(): a bit-exact
  /// serialization of allocator (with sampler state), lifecycle core,
  /// worker registry, per-task protocol state and chaos counters. Two runs
  /// with equal fingerprints finished in EXACTLY the same state — the
  /// crash/no-crash equality harness compares these byte strings.
  std::string state_fingerprint;
};

/// ProtocolRuntime's crash-safe sibling: same in-process deployment (N
/// WorkerAgents over optionally faulty links), but the manager journals to
/// a RecoveryLog over the given Storage, snapshots on the configured
/// cadence, and an armed CrashMonitor kills it at scheduled crash points.
/// Each ManagerCrash is caught here: the dead manager (and its allocator —
/// both die with the process they model) is discarded, a fresh pair is
/// rebuilt from storage via ProtocolManager::recover, a post-recovery
/// snapshot is rotated in, and the round loop resumes. Workers, links and
/// in-flight messages survive, exactly like real workers outliving a
/// manager node: re-dispatched attempts are deduplicated by attempt id,
/// results sent before the crash are accepted exactly once, and workers
/// that died while the manager was down fall into the normal
/// silence/backoff/quarantine machinery.
///
/// With a loss-free crash schedule (kLossFreeCrashPoints) the run is
/// bit-for-bit identical to the same configuration with an empty schedule —
/// state_fingerprint equality is the headline assertion of
/// bench/recovery_chaos and tests/test_recovery_manager.
class RecoverableProtocolRuntime {
 public:
  /// Rebuilds the allocator after each crash. Must produce a freshly
  /// constructed allocator with the same policy, seed and config every call
  /// (recovery validates the policy name and config hash).
  using AllocatorFactory =
      std::function<std::unique_ptr<core::TaskAllocator>()>;

  RecoverableProtocolRuntime(std::span<const core::TaskSpec> tasks,
                             AllocatorFactory make_allocator,
                             std::size_t num_workers,
                             core::ResourceVector worker_capacity,
                             const ChaosConfig& chaos,
                             core::recovery::Storage& storage,
                             core::recovery::RecoveryConfig recovery = {},
                             core::recovery::CrashSchedule crashes = {});

  /// Runs to completion (see ProtocolRuntime::run for the stall contract).
  /// Scheduled crashes that never fire (points not reached before the run
  /// finished) are simply left pending.
  RecoveryRunResult run(std::size_t max_rounds = 1000000);

  const core::RecoveryCounters& recovery_counters() const noexcept {
    return counters_;
  }

 private:
  /// Full crash-side protocol: close the journal handle, let the storage
  /// drop unsynced bytes, scan, rebuild allocator + manager, replay, rotate
  /// a fresh snapshot, re-arm. Returns the recovered pump() result of the
  /// interrupted tick.
  std::size_t recover();

  std::span<const core::TaskSpec> tasks_;
  AllocatorFactory make_allocator_;
  LivenessConfig liveness_;
  std::unique_ptr<core::TaskAllocator> allocator_;
  std::vector<DuplexLinkPtr> links_;
  std::vector<WorkerAgent> agents_;
  core::recovery::Storage& storage_;
  core::RecoveryCounters counters_;
  core::recovery::CrashMonitor monitor_;
  core::recovery::RecoveryLog log_;
  core::recovery::RecoveryConfig recovery_cfg_;
  std::unique_ptr<ProtocolManager> manager_;
  std::size_t stall_limit_;
};

}  // namespace tora::proto
