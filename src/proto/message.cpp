#include "proto/message.hpp"

#include <charconv>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "util/rng.hpp"

namespace tora::proto {

namespace {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c == ' ' || c == '=' || c == '%' || c == '\n' || c == '\r') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

std::optional<std::string> unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%') {
      if (i + 2 >= s.size()) return std::nullopt;
      unsigned value = 0;
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]);
      const int lo = hex(s[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      value = static_cast<unsigned>(hi * 16 + lo);
      out += static_cast<char>(value);
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

void put(std::ostringstream& oss, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  oss << ' ' << key << '=' << buf;
}

void put(std::ostringstream& oss, const char* key, std::uint64_t v) {
  oss << ' ' << key << '=' << v;
}

struct Fields {
  std::map<std::string, std::string, std::less<>> kv;

  std::optional<double> number(std::string_view key) const {
    const auto it = kv.find(key);
    if (it == kv.end()) return std::nullopt;
    try {
      std::size_t pos = 0;
      const double v = std::stod(it->second, &pos);
      if (pos != it->second.size()) return std::nullopt;
      return v;
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }

  std::optional<std::uint64_t> uint(std::string_view key) const {
    const auto v = number(key);
    if (!v || *v < 0.0) return std::nullopt;
    return static_cast<std::uint64_t>(*v);
  }
};

std::optional<Fields> parse_fields(std::string_view rest) {
  Fields f;
  std::size_t pos = 0;
  while (pos < rest.size()) {
    while (pos < rest.size() && rest[pos] == ' ') ++pos;
    if (pos >= rest.size()) break;
    const std::size_t end = rest.find(' ', pos);
    const std::string_view token =
        rest.substr(pos, end == std::string_view::npos ? rest.size() - pos
                                                       : end - pos);
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) return std::nullopt;
    f.kv.emplace(std::string(token.substr(0, eq)),
                 std::string(token.substr(eq + 1)));
    if (end == std::string_view::npos) break;
    pos = end + 1;
  }
  return f;
}

std::optional<core::ResourceVector> parse_resources(const Fields& f) {
  const auto cores = f.number("cores");
  const auto mem = f.number("memory");
  const auto disk = f.number("disk");
  const auto time = f.number("time");
  if (!cores || !mem || !disk || !time) return std::nullopt;
  return core::ResourceVector{*cores, *mem, *disk, *time};
}

void put_resources(std::ostringstream& oss, const core::ResourceVector& r) {
  put(oss, "cores", r.cores());
  put(oss, "memory", r.memory_mb());
  put(oss, "disk", r.disk_mb());
  put(oss, "time", r.time_s());
}

constexpr std::string_view kCrcToken = " crc=";
constexpr std::size_t kCrcHexDigits = 16;

/// Verifies the mandatory integrity checksum. The canonical wire position
/// is directly after the verb, but any position is accepted as long as the
/// FNV-1a hash of the line with the `crc` token spliced out matches — which
/// is exactly what encode() produced. A line without the token is rejected
/// outright: if absence were tolerated, a mutation hitting the token's key
/// (e.g. `crc=` -> `Xrc=`) would disable verification while other
/// mutations alter the payload, smuggling a different-but-valid message
/// through as an "unchecksummed" line.
bool crc_ok(std::string_view line) {
  const std::size_t pos = line.find(kCrcToken);
  if (pos == std::string_view::npos) return false;
  const std::size_t value_at = pos + kCrcToken.size();
  std::string_view hex = line.substr(value_at);
  const std::size_t sp = hex.find(' ');
  if (sp != std::string_view::npos) hex = hex.substr(0, sp);
  if (hex.size() != kCrcHexDigits) return false;
  std::uint64_t want = 0;
  const auto [end, ec] =
      std::from_chars(hex.data(), hex.data() + hex.size(), want, 16);
  if (ec != std::errc{} || end != hex.data() + hex.size()) return false;
  std::string content;
  content.reserve(line.size());
  content.append(line.substr(0, pos));
  content.append(line.substr(value_at + hex.size()));
  return util::hash64(content) == want;
}

}  // namespace

std::string_view to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::WorkerReady: return "ready";
    case MsgType::TaskDispatch: return "dispatch";
    case MsgType::TaskResult: return "result";
    case MsgType::Evict: return "evict";
    case MsgType::Shutdown: return "shutdown";
    case MsgType::Heartbeat: return "heartbeat";
  }
  return "?";
}

std::string_view to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::Success: return "success";
    case Outcome::ResourceExhausted: return "exhausted";
  }
  return "?";
}

std::string encode(const Message& msg) {
  std::ostringstream oss;  // the key=value fields, each preceded by a space
  put(oss, "worker", msg.worker_id);
  switch (msg.type) {
    case MsgType::WorkerReady:
    case MsgType::Heartbeat:
      put_resources(oss, msg.resources);
      break;
    case MsgType::TaskDispatch:
      put(oss, "task", msg.task_id);
      put(oss, "attempt", msg.attempt);
      oss << " category=" << escape(msg.category);
      put_resources(oss, msg.resources);
      break;
    case MsgType::TaskResult:
      put(oss, "task", msg.task_id);
      put(oss, "attempt", msg.attempt);
      oss << " outcome=" << to_string(msg.outcome);
      put(oss, "runtime", msg.runtime_s);
      put(oss, "exceeded", static_cast<std::uint64_t>(msg.exceeded_mask));
      put_resources(oss, msg.resources);
      break;
    case MsgType::Evict:
      put(oss, "task", msg.task_id);
      break;
    case MsgType::Shutdown:
      break;
  }
  const std::string fields = oss.str();
  std::string line(to_string(msg.type));
  // Checksum over verb + fields, spliced in directly after the verb so any
  // corruption or truncation of the variable-length tail breaks it.
  char crc[kCrcHexDigits + 1];
  std::snprintf(crc, sizeof(crc), "%016llx",
                static_cast<unsigned long long>(util::hash64(line + fields)));
  line.append(kCrcToken);
  line.append(crc);
  line.append(fields);
  return line;
}

std::optional<Message> decode(std::string_view line) {
  if (!crc_ok(line)) return std::nullopt;
  const std::size_t sp = line.find(' ');
  const std::string_view verb = line.substr(0, sp);
  const std::string_view rest =
      sp == std::string_view::npos ? std::string_view{} : line.substr(sp + 1);
  const auto fields = parse_fields(rest);
  if (!fields) return std::nullopt;

  Message m;
  if (verb == "ready") m.type = MsgType::WorkerReady;
  else if (verb == "dispatch") m.type = MsgType::TaskDispatch;
  else if (verb == "result") m.type = MsgType::TaskResult;
  else if (verb == "evict") m.type = MsgType::Evict;
  else if (verb == "shutdown") m.type = MsgType::Shutdown;
  else if (verb == "heartbeat") m.type = MsgType::Heartbeat;
  else return std::nullopt;

  const auto worker = fields->uint("worker");
  if (!worker) return std::nullopt;
  m.worker_id = *worker;

  switch (m.type) {
    case MsgType::WorkerReady:
    case MsgType::Heartbeat: {
      const auto res = parse_resources(*fields);
      if (!res) return std::nullopt;
      m.resources = *res;
      break;
    }
    case MsgType::TaskDispatch: {
      const auto task = fields->uint("task");
      const auto res = parse_resources(*fields);
      const auto cat = fields->kv.find("category");
      if (!task || !res || cat == fields->kv.end()) return std::nullopt;
      const auto unescaped = unescape(cat->second);
      if (!unescaped) return std::nullopt;
      m.task_id = *task;
      m.attempt = fields->uint("attempt").value_or(0);
      m.resources = *res;
      m.category = *unescaped;
      break;
    }
    case MsgType::TaskResult: {
      const auto task = fields->uint("task");
      const auto res = parse_resources(*fields);
      const auto runtime = fields->number("runtime");
      const auto exceeded = fields->uint("exceeded");
      const auto outcome = fields->kv.find("outcome");
      if (!task || !res || !runtime || !exceeded ||
          outcome == fields->kv.end()) {
        return std::nullopt;
      }
      if (outcome->second == "success") m.outcome = Outcome::Success;
      else if (outcome->second == "exhausted") {
        m.outcome = Outcome::ResourceExhausted;
      } else {
        return std::nullopt;
      }
      m.task_id = *task;
      m.attempt = fields->uint("attempt").value_or(0);
      m.resources = *res;
      m.runtime_s = *runtime;
      m.exceeded_mask = static_cast<unsigned>(*exceeded);
      break;
    }
    case MsgType::Evict: {
      const auto task = fields->uint("task");
      if (!task) return std::nullopt;
      m.task_id = *task;
      break;
    }
    case MsgType::Shutdown:
      break;
  }
  return m;
}

}  // namespace tora::proto
