#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/lifecycle/category_table.hpp"
#include "core/policy.hpp"
#include "core/resources.hpp"

namespace tora::core {

/// How an allocator behaves before a category has enough completed records
/// to let its predictive policy take over (paper §IV-D / §V-A).
struct ExplorationConfig {
  enum class Mode {
    /// Bucketing algorithms: allocate a small fixed default (1 core / 1 GB
    /// memory / 1 GB disk) and double the exhausted dimension on failure.
    FixedDefault,
    /// The comparison algorithms: allocate a whole worker, trading an
    /// expensive exploration for guaranteed first-try success (§V-C).
    WholeMachine,
  };

  Mode mode = Mode::FixedDefault;
  /// First-try allocation in FixedDefault mode.
  ResourceVector default_alloc{1.0, 1024.0, 1024.0, 0.0};
  /// Records needed per category before leaving exploration (paper: 10).
  std::size_t min_records = 10;
};

/// Global allocator configuration.
struct AllocatorConfig {
  /// Full worker size; allocations are clamped to it and WholeMachine
  /// exploration hands it out. Paper setup: 16 cores, 64 GB, 64 GB.
  ResourceVector worker_capacity{16.0, 64.0 * 1024.0, 64.0 * 1024.0, 0.0};
  ExplorationConfig exploration;
  /// Which resource dimensions the allocator manages. Defaults to the
  /// paper's three (cores, memory, disk); add ResourceKind::TimeS to also
  /// size wall-time limits (the paper's future-work extension) — then
  /// worker_capacity's and the exploration default's TimeS must be positive.
  std::vector<ResourceKind> managed{kManagedResources.begin(),
                                    kManagedResources.end()};
  /// Keep the completion history (one entry per record_completion). Enables
  /// checkpoint/restore (core/checkpoint.hpp) at ~40 bytes per completed
  /// task; disable for extremely long-running allocators.
  bool record_history = true;
  /// Expected completed-task count, used to pre-reserve the history buffer
  /// (see reserve_history). 0 = grow on demand. Runtimes that know their
  /// workflow size (sim/proto drive this through DispatchCore) set it so a
  /// million-task run does one allocation instead of ~20 doublings.
  std::size_t expected_tasks = 0;
};

/// Creates the per-(category × resource) policy instance. Invoked lazily the
/// first time a category is seen, once per managed resource kind.
using PolicyFactory =
    std::function<ResourcePolicyPtr(ResourceKind kind, const AllocatorConfig&)>;

/// The adaptive resource allocator of paper §IV-D: one ResourcePolicy
/// instance per (task category × resource kind), an exploratory cold-start
/// mode per category, and clamping to worker capacity.
///
/// Protocol (mirrors Fig. 3a):
///  1. allocate(category)            -> first allocation for a ready task;
///  2. on an over-consumption kill:  allocate_retry(...) -> bigger allocation;
///  3. on success: record_completion(category, peak [, significance]).
///
/// Categories are interned to dense CategoryIds (intern()); the id overloads
/// are the hot path — a CategoryId is a vector index, so allocate /
/// allocate_retry / record_completion never hash or compare a string. The
/// string overloads intern (or look up) per call and exist for the edges:
/// tests, examples, checkpoint restore, ad-hoc callers.
///
/// Significance defaults to a per-allocator monotone counter; callers that
/// track submission order (the paper uses the task ID) can pass it
/// explicitly.
class TaskAllocator {
 public:
  TaskAllocator(std::string policy_name, PolicyFactory factory,
                AllocatorConfig config);

  /// Interns a category name, returning its dense id. Idempotent.
  CategoryId intern(std::string_view category);

  /// The interning table (reporting edge: id -> name).
  const CategoryTable& categories() const noexcept { return table_; }

  /// Name of an interned category (throws std::out_of_range on bad ids).
  const std::string& category_name(CategoryId id) const {
    return table_.name(id);
  }

  /// First allocation for a fresh task of `category`.
  ResourceVector allocate(CategoryId category);
  ResourceVector allocate(const std::string& category) {
    return allocate(intern(category));
  }

  /// Next allocation after an execution was killed having exhausted
  /// `failed_alloc` in the dimensions of `exceeded_mask` (bits per
  /// resource_bit(): cores = 1, memory = 2, disk = 4, time = 8). Dimensions
  /// not exceeded keep their previous allocation. The result is clamped to
  /// worker capacity; when every exceeded dimension is already at capacity
  /// the same vector comes back and the caller must declare the task
  /// unrunnable.
  ResourceVector allocate_retry(CategoryId category,
                                const ResourceVector& failed_alloc,
                                unsigned exceeded_mask);
  ResourceVector allocate_retry(const std::string& category,
                                const ResourceVector& failed_alloc,
                                unsigned exceeded_mask) {
    return allocate_retry(intern(category), failed_alloc, exceeded_mask);
  }

  /// Feed back a successful execution's peak consumption.
  void record_completion(CategoryId category, const ResourceVector& peak,
                         std::optional<double> significance = std::nullopt);
  void record_completion(const std::string& category,
                         const ResourceVector& peak,
                         std::optional<double> significance = std::nullopt) {
    record_completion(intern(category), peak, significance);
  }

  /// True while `category` is still in the exploratory mode.
  bool exploring(CategoryId category) const;
  bool exploring(const std::string& category) const;

  /// Completed-record count for a category (0 if never seen).
  std::size_t records_for(CategoryId category) const;
  std::size_t records_for(const std::string& category) const;

  /// Access to the underlying per-resource policy (creates it if needed).
  ResourcePolicy& policy(CategoryId category, ResourceKind kind);
  ResourcePolicy& policy(const std::string& category, ResourceKind kind) {
    return policy(intern(category), kind);
  }

  /// True once the category's policy instances exist (first allocate /
  /// record / policy() touch). Crash-recovery snapshots record the created
  /// SET: policy creation draws from the factory's master Rng stream, so a
  /// restore must re-create exactly as many instances to leave the stream
  /// at the same position — including categories still in exploration,
  /// whose policies exist but have observed nothing.
  bool policies_created(CategoryId category) const {
    return category < categories_.size() &&
           !categories_[category].policies.empty();
  }

  /// The policy WITHOUT creating it (nullptr when absent). Snapshot writers
  /// use this: a const walk over existing instances must not advance the
  /// factory stream.
  const ResourcePolicy* policy_if_created(CategoryId category,
                                          ResourceKind kind) const;

  /// Calls flush_observations() on every existing policy instance, folding
  /// any staged observations into their primary state. Bulk-replay paths
  /// (checkpoint restore, recovery snapshot load) call this once at the end
  /// instead of leaving a full history in each policy's staging buffer.
  /// Consumes no sampler state; creates no policies.
  void flush_policies();

  const AllocatorConfig& config() const noexcept { return config_; }
  const std::string& policy_name() const noexcept { return policy_name_; }

  /// Categories seen so far (via any of the entry points).
  std::size_t category_count() const noexcept { return table_.size(); }

  /// One completed-task observation, as retained for checkpointing. The
  /// category is stored interned; category_name() recovers the string at
  /// the serialization edge.
  struct CompletionRecord {
    CategoryId category = kInvalidCategory;
    ResourceVector peak;
    double significance = 0.0;
  };

  /// The retained completion history (empty when config().record_history is
  /// false). Order matches the record_completion call order.
  const std::vector<CompletionRecord>& history() const noexcept {
    return history_;
  }

  /// Pre-reserves the history buffer for `expected_tasks` more completions
  /// (no-op when history is disabled). Each retained record costs ~40 bytes
  /// (a 4-byte CategoryId, a 4-double ResourceVector, a double); without the
  /// reservation a large run pays log2(n) vector doublings instead. Called
  /// by lifecycle::DispatchCore with the workload size; harmless to call
  /// more than once.
  void reserve_history(std::size_t expected_tasks);

  /// Monotone counter bumped on every record_completion. Schedulers that
  /// cache a first-attempt allocation for a queued task can invalidate the
  /// cache when the revision changes (the bucketing state evolved), which
  /// reproduces Fig. 3a's "ask the bucketing manager at dispatch" protocol
  /// without re-sampling on every placement attempt.
  std::uint64_t revision() const noexcept { return revision_; }

 private:
  struct CategoryState {
    /// One policy per managed resource, parallel to config().managed (a
    /// dense array walk, not a map lookup, on every allocate/record).
    std::vector<ResourcePolicyPtr> policies;
    std::size_t completed = 0;
  };

  CategoryState& state_for(CategoryId category);
  ResourceVector clamp(ResourceVector v) const;
  ResourceVector exploration_alloc() const;

  std::string policy_name_;
  PolicyFactory factory_;
  AllocatorConfig config_;
  CategoryTable table_;
  std::vector<CategoryState> categories_;  ///< indexed by CategoryId
  std::vector<CompletionRecord> history_;
  double next_significance_ = 1.0;
  std::uint64_t revision_ = 0;
};

}  // namespace tora::core
