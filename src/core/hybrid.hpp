#pragma once

#include <cstddef>

#include "core/policy.hpp"

namespace tora::core {

/// Two-stage policy: delegate to `initial` until `switch_after` records have
/// been observed, then to `steady`.
///
/// This implements the mitigation the paper sketches for the TopEFT cores
/// column (§V-C): "running Quantized Bucketing initially then switching
/// over" — the quantile split absorbs early outliers cheaply, after which
/// the expected-waste-driven bucketing algorithm takes over with a stable
/// record base. Both stages observe every record, so the steady policy's
/// state is complete at the moment of the hand-off.
class HybridPolicy final : public ResourcePolicy {
 public:
  /// Both policies must be non-null; `switch_after` >= 1.
  HybridPolicy(ResourcePolicyPtr initial, ResourcePolicyPtr steady,
               std::size_t switch_after);

  void observe(double peak_value, double significance) override;
  double predict() override;
  double retry(double failed_alloc) override;

  std::string name() const override;
  std::size_t record_count() const override { return observed_; }

  void flush_observations() override {
    initial_->flush_observations();
    steady_->flush_observations();
  }

  /// Both stages' sampler states, length-prefixed (crash recovery).
  std::string sampler_state() const override;
  void restore_sampler_state(std::string_view state) override;

  bool switched() const noexcept { return observed_ >= switch_after_; }
  std::size_t switch_after() const noexcept { return switch_after_; }
  ResourcePolicy& initial() noexcept { return *initial_; }
  ResourcePolicy& steady() noexcept { return *steady_; }

 private:
  ResourcePolicy& active() noexcept {
    return switched() ? *steady_ : *initial_;
  }

  ResourcePolicyPtr initial_;
  ResourcePolicyPtr steady_;
  std::size_t switch_after_;
  std::size_t observed_ = 0;
};

}  // namespace tora::core
