#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "core/policy.hpp"
#include "core/record.hpp"
#include "util/rng.hpp"

namespace tora::core {

/// Windowed mean-shift detector over a scalar stream.
///
/// The paper handles moving distributions with soft recency (significance)
/// weighting; this extension (§VII future work: "exploring other
/// approaches") detects hard phase changes instead: when the mean of the
/// most recent `window` samples differs from the mean of the older history
/// by more than `ratio_threshold`× (in either direction), a change is
/// signalled and the history resets to the recent window. Deterministic and
/// O(1) per sample.
class MeanShiftDetector {
 public:
  /// `window` >= 2 samples; `ratio_threshold` > 1.
  explicit MeanShiftDetector(std::size_t window = 20,
                             double ratio_threshold = 2.0);

  /// Feeds one sample; returns true when a mean shift was detected (the
  /// detector then restarts its history from the current window).
  bool add(double x);

  std::size_t changes_detected() const noexcept { return changes_; }
  std::size_t samples_seen() const noexcept { return samples_; }
  std::size_t window() const noexcept { return window_; }

  /// The two means compared at the most recent detection (valid only after
  /// add() returned true at least once). Consumers use them to decide which
  /// side of the shift a record belongs to.
  double last_recent_mean() const noexcept { return last_recent_mean_; }
  double last_history_mean() const noexcept { return last_history_mean_; }

 private:
  std::size_t window_;
  double ratio_;
  std::deque<double> recent_;
  double recent_sum_ = 0.0;
  double history_sum_ = 0.0;
  std::size_t history_count_ = 0;
  std::size_t changes_ = 0;
  std::size_t samples_ = 0;
  double last_recent_mean_ = 0.0;
  double last_history_mean_ = 0.0;
};

/// A ResourcePolicy wrapper that rebuilds its inner policy from only the
/// post-change records whenever the MeanShiftDetector fires — a hard-reset
/// alternative to the paper's soft significance weighting. The inner policy
/// is recreated via the factory; records since the change (including the
/// detection window) are replayed into it so no information inside the new
/// phase is lost.
class ChangeAwarePolicy final : public ResourcePolicy {
 public:
  /// `make_inner` produces a fresh inner policy (must be non-null and never
  /// return null). `detector` is copied as the initial state.
  ChangeAwarePolicy(std::function<ResourcePolicyPtr()> make_inner,
                    MeanShiftDetector detector);

  /// Rng-owning variant: the policy owns the stream that seeds each inner
  /// rebuild (one split per reset), so crash-recovery snapshots can capture
  /// and restore it — the closure-captured stream of the nullary overload
  /// is invisible to sampler_state(). The registry uses this form.
  ChangeAwarePolicy(std::function<ResourcePolicyPtr(util::Rng)> make_inner,
                    util::Rng inner_rng, MeanShiftDetector detector);

  void observe(double peak_value, double significance) override;
  double predict() override { return inner_->predict(); }
  double retry(double failed_alloc) override {
    return inner_->retry(failed_alloc);
  }

  std::string name() const override;
  std::size_t record_count() const override { return total_observed_; }

  void flush_observations() override { inner_->flush_observations(); }

  /// The owned rebuild stream (when constructed with one) plus the current
  /// inner policy's sampler state (crash recovery).
  std::string sampler_state() const override;
  void restore_sampler_state(std::string_view state) override;

  std::size_t resets() const noexcept { return detector_.changes_detected(); }
  ResourcePolicy& inner() noexcept { return *inner_; }

 private:
  ResourcePolicyPtr rebuild_inner();

  std::function<ResourcePolicyPtr()> make_inner_;
  /// Set iff constructed with the Rng-owning overload; consumed one split()
  /// per inner rebuild.
  std::optional<util::Rng> inner_rng_;
  std::function<ResourcePolicyPtr(util::Rng)> make_inner_seeded_;
  MeanShiftDetector detector_;
  ResourcePolicyPtr inner_;
  /// Records observed since the last reset (replayed on the next reset).
  std::vector<Record> since_change_;
  std::size_t total_observed_ = 0;
};

}  // namespace tora::core
