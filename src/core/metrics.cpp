#include "core/metrics.hpp"

#include <stdexcept>

namespace tora::core {

void WasteAccounting::add(const TaskUsage& usage) {
  if (usage.final_runtime_s < 0.0) {
    throw std::invalid_argument("WasteAccounting: negative runtime");
  }
  auto& cat = by_category_resource_[usage.category];
  for (ResourceKind k : kManagedResources) {
    if (usage.peak[k] > usage.final_alloc[k]) {
      throw std::invalid_argument(
          "WasteAccounting: successful attempt's allocation below the peak "
          "(the execution model would have killed this task)");
    }
    const double c = usage.peak[k] * usage.final_runtime_s;
    const double frag =
        (usage.final_alloc[k] - usage.peak[k]) * usage.final_runtime_s;
    double failed = 0.0;
    for (const AttemptLog& a : usage.failed_attempts) {
      if (a.runtime_s < 0.0) {
        throw std::invalid_argument("WasteAccounting: negative attempt runtime");
      }
      failed += a.alloc[k] * a.runtime_s;
    }
    const double alloc = usage.final_alloc[k] * usage.final_runtime_s + failed;
    for (WasteBreakdown* b : {&by_resource_[static_cast<std::size_t>(k)],
                              &cat[static_cast<std::size_t>(k)]}) {
      b->consumption += c;
      b->internal_fragmentation += frag;
      b->failed_allocation += failed;
      b->allocation += alloc;
    }
  }
  ++tasks_;
  attempts_ += 1 + usage.failed_attempts.size();
  ++per_category_[usage.category];
}

const WasteBreakdown& WasteAccounting::breakdown(ResourceKind kind) const {
  return by_resource_[static_cast<std::size_t>(kind)];
}

const WasteBreakdown& WasteAccounting::breakdown(const std::string& category,
                                                 ResourceKind kind) const {
  static const WasteBreakdown kZero{};
  const auto it = by_category_resource_.find(category);
  if (it == by_category_resource_.end()) return kZero;
  return it->second[static_cast<std::size_t>(kind)];
}

double WasteAccounting::awe(ResourceKind kind) const {
  const auto& b = breakdown(kind);
  return b.allocation > 0.0 ? b.consumption / b.allocation : 0.0;
}

double WasteAccounting::awe(const std::string& category,
                            ResourceKind kind) const {
  const auto& b = breakdown(category, kind);
  return b.allocation > 0.0 ? b.consumption / b.allocation : 0.0;
}

double WasteAccounting::mean_attempts() const noexcept {
  return tasks_ > 0 ? static_cast<double>(attempts_) / static_cast<double>(tasks_)
                    : 0.0;
}

void WasteAccounting::merge(const WasteAccounting& other) {
  for (std::size_t i = 0; i < kResourceCount; ++i) {
    by_resource_[i].consumption += other.by_resource_[i].consumption;
    by_resource_[i].allocation += other.by_resource_[i].allocation;
    by_resource_[i].internal_fragmentation +=
        other.by_resource_[i].internal_fragmentation;
    by_resource_[i].failed_allocation +=
        other.by_resource_[i].failed_allocation;
  }
  tasks_ += other.tasks_;
  attempts_ += other.attempts_;
  for (const auto& [cat, n] : other.per_category_) per_category_[cat] += n;
  for (const auto& [cat, arr] : other.by_category_resource_) {
    auto& mine = by_category_resource_[cat];
    for (std::size_t i = 0; i < kResourceCount; ++i) {
      mine[i].consumption += arr[i].consumption;
      mine[i].allocation += arr[i].allocation;
      mine[i].internal_fragmentation += arr[i].internal_fragmentation;
      mine[i].failed_allocation += arr[i].failed_allocation;
    }
  }
}

void ChaosCounters::merge(const ChaosCounters& other) noexcept {
  messages_dropped += other.messages_dropped;
  messages_duplicated += other.messages_duplicated;
  messages_corrupted += other.messages_corrupted;
  messages_severed += other.messages_severed;
  links_severed += other.links_severed;
  malformed_lines += other.malformed_lines;
  stale_or_duplicate_results += other.stale_or_duplicate_results;
  attempt_timeouts += other.attempt_timeouts;
  redispatches += other.redispatches;
  workers_declared_dead += other.workers_declared_dead;
  workers_quarantined += other.workers_quarantined;
  protocol_evictions += other.protocol_evictions;
  heartbeats += other.heartbeats;
  duplicate_dispatches += other.duplicate_dispatches;
  misaddressed_messages += other.misaddressed_messages;
  worker_crashes += other.worker_crashes;
}

}  // namespace tora::core
