#include "core/metrics.hpp"

#include <stdexcept>

#include "util/bytes.hpp"

namespace tora::core {

namespace {

void save_breakdown(util::ByteWriter& w, const WasteBreakdown& b) {
  w.f64(b.consumption);
  w.f64(b.allocation);
  w.f64(b.internal_fragmentation);
  w.f64(b.failed_allocation);
  w.f64(b.speculative);
}

WasteBreakdown load_breakdown(util::ByteReader& r) {
  WasteBreakdown b;
  b.consumption = r.f64();
  b.allocation = r.f64();
  b.internal_fragmentation = r.f64();
  b.failed_allocation = r.f64();
  b.speculative = r.f64();
  return b;
}

}  // namespace

CategoryId WasteAccounting::intern(std::string_view category) {
  const CategoryId id = table_.intern(category);
  if (id >= counts_.size()) {
    counts_.resize(id + 1, 0);
    by_category_.resize(id + 1);
  }
  return id;
}

void WasteAccounting::add(CategoryId id, const ResourceVector& peak,
                          const ResourceVector& final_alloc,
                          double final_runtime_s,
                          std::span<const AttemptLog> failed_attempts) {
  if (final_runtime_s < 0.0) {
    throw std::invalid_argument("WasteAccounting: negative runtime");
  }
  if (id >= by_category_.size()) {
    throw std::out_of_range("WasteAccounting: unknown category id");
  }
  BreakdownArray& cat = by_category_[id];
  for (ResourceKind k : kManagedResources) {
    if (peak[k] > final_alloc[k]) {
      throw std::invalid_argument(
          "WasteAccounting: successful attempt's allocation below the peak "
          "(the execution model would have killed this task)");
    }
    const double c = peak[k] * final_runtime_s;
    const double frag = (final_alloc[k] - peak[k]) * final_runtime_s;
    double failed = 0.0;
    for (const AttemptLog& a : failed_attempts) {
      if (a.runtime_s < 0.0) {
        throw std::invalid_argument("WasteAccounting: negative attempt runtime");
      }
      failed += a.alloc[k] * a.runtime_s;
    }
    const double alloc = final_alloc[k] * final_runtime_s + failed;
    for (WasteBreakdown* b : {&by_resource_[static_cast<std::size_t>(k)],
                              &cat[static_cast<std::size_t>(k)]}) {
      b->consumption += c;
      b->internal_fragmentation += frag;
      b->failed_allocation += failed;
      b->allocation += alloc;
    }
  }
  ++tasks_;
  attempts_ += 1 + failed_attempts.size();
  ++counts_[id];
}

void WasteAccounting::add(const TaskUsage& usage) {
  add(intern(usage.category), usage.peak, usage.final_alloc,
      usage.final_runtime_s, usage.failed_attempts);
}

void WasteAccounting::add_speculative(CategoryId id,
                                      const ResourceVector& alloc,
                                      double held_s) {
  if (held_s < 0.0) {
    throw std::invalid_argument("WasteAccounting: negative speculation hold");
  }
  if (id >= by_category_.size()) {
    throw std::out_of_range("WasteAccounting: unknown category id");
  }
  BreakdownArray& cat = by_category_[id];
  for (ResourceKind k : kManagedResources) {
    const double cost = alloc[k] * held_s;
    by_resource_[static_cast<std::size_t>(k)].speculative += cost;
    cat[static_cast<std::size_t>(k)].speculative += cost;
  }
  ++speculative_attempts_;
}

const WasteBreakdown& WasteAccounting::breakdown(ResourceKind kind) const {
  return by_resource_[static_cast<std::size_t>(kind)];
}

const WasteBreakdown& WasteAccounting::breakdown(CategoryId id,
                                                 ResourceKind kind) const {
  static const WasteBreakdown kZero{};
  if (id >= by_category_.size()) return kZero;
  return by_category_[id][static_cast<std::size_t>(kind)];
}

const WasteBreakdown& WasteAccounting::breakdown(const std::string& category,
                                                 ResourceKind kind) const {
  static const WasteBreakdown kZero{};
  const auto id = table_.find(category);
  if (!id) return kZero;
  return breakdown(*id, kind);
}

double WasteAccounting::awe(ResourceKind kind) const {
  const auto& b = breakdown(kind);
  return b.allocation > 0.0 ? b.consumption / b.allocation : 0.0;
}

double WasteAccounting::awe(CategoryId id, ResourceKind kind) const {
  const auto& b = breakdown(id, kind);
  return b.allocation > 0.0 ? b.consumption / b.allocation : 0.0;
}

double WasteAccounting::awe(const std::string& category,
                            ResourceKind kind) const {
  const auto& b = breakdown(category, kind);
  return b.allocation > 0.0 ? b.consumption / b.allocation : 0.0;
}

double WasteAccounting::mean_attempts() const noexcept {
  return tasks_ > 0 ? static_cast<double>(attempts_) / static_cast<double>(tasks_)
                    : 0.0;
}

std::size_t WasteAccounting::count_for(CategoryId id) const noexcept {
  return id < counts_.size() ? counts_[id] : 0;
}

std::map<std::string, std::size_t> WasteAccounting::per_category() const {
  std::map<std::string, std::size_t> out;
  for (CategoryId id = 0; id < counts_.size(); ++id) {
    out[table_.name(id)] = counts_[id];
  }
  return out;
}

void WasteAccounting::merge(const WasteAccounting& other) {
  for (std::size_t i = 0; i < kResourceCount; ++i) {
    by_resource_[i].consumption += other.by_resource_[i].consumption;
    by_resource_[i].allocation += other.by_resource_[i].allocation;
    by_resource_[i].internal_fragmentation +=
        other.by_resource_[i].internal_fragmentation;
    by_resource_[i].failed_allocation +=
        other.by_resource_[i].failed_allocation;
    by_resource_[i].speculative += other.by_resource_[i].speculative;
  }
  tasks_ += other.tasks_;
  attempts_ += other.attempts_;
  speculative_attempts_ += other.speculative_attempts_;
  for (CategoryId theirs = 0; theirs < other.counts_.size(); ++theirs) {
    const CategoryId mine = intern(other.table_.name(theirs));
    counts_[mine] += other.counts_[theirs];
    for (std::size_t i = 0; i < kResourceCount; ++i) {
      WasteBreakdown& dst = by_category_[mine][i];
      const WasteBreakdown& src = other.by_category_[theirs][i];
      dst.consumption += src.consumption;
      dst.allocation += src.allocation;
      dst.internal_fragmentation += src.internal_fragmentation;
      dst.failed_allocation += src.failed_allocation;
      dst.speculative += src.speculative;
    }
  }
}

void WasteAccounting::save(util::ByteWriter& w) const {
  for (const WasteBreakdown& b : by_resource_) save_breakdown(w, b);
  w.u64(tasks_);
  w.u64(attempts_);
  w.u64(speculative_attempts_);
  w.u64(table_.size());
  for (const std::string& name : table_.names()) w.str(name);
  for (std::size_t count : counts_) w.u64(count);
  for (const BreakdownArray& cat : by_category_) {
    for (const WasteBreakdown& b : cat) save_breakdown(w, b);
  }
}

void WasteAccounting::load(util::ByteReader& r) {
  *this = WasteAccounting();
  for (WasteBreakdown& b : by_resource_) b = load_breakdown(r);
  tasks_ = r.u64();
  attempts_ = r.u64();
  speculative_attempts_ = r.u64();
  const std::uint64_t categories = r.u64();
  for (std::uint64_t i = 0; i < categories; ++i) {
    const CategoryId id = intern(r.str());
    if (id != i) {
      throw std::runtime_error(
          "WasteAccounting: duplicate category in serialized table");
    }
  }
  for (std::size_t& count : counts_) count = r.u64();
  for (BreakdownArray& cat : by_category_) {
    for (WasteBreakdown& b : cat) b = load_breakdown(r);
  }
}

void ChaosCounters::merge(const ChaosCounters& other) noexcept {
  messages_dropped += other.messages_dropped;
  messages_duplicated += other.messages_duplicated;
  messages_corrupted += other.messages_corrupted;
  messages_severed += other.messages_severed;
  links_severed += other.links_severed;
  malformed_lines += other.malformed_lines;
  stale_or_duplicate_results += other.stale_or_duplicate_results;
  attempt_timeouts += other.attempt_timeouts;
  redispatches += other.redispatches;
  workers_declared_dead += other.workers_declared_dead;
  workers_quarantined += other.workers_quarantined;
  protocol_evictions += other.protocol_evictions;
  heartbeats += other.heartbeats;
  duplicate_dispatches += other.duplicate_dispatches;
  misaddressed_messages += other.misaddressed_messages;
  worker_crashes += other.worker_crashes;
  dispatches_deferred_backpressure += other.dispatches_deferred_backpressure;
}

void TransportCounters::merge(const TransportCounters& other) noexcept {
  connections_accepted += other.connections_accepted;
  connections_opened += other.connections_opened;
  connections_closed += other.connections_closed;
  connect_failures += other.connect_failures;
  keepalive_closes += other.keepalive_closes;
  reconnects += other.reconnects;
  handshakes_ok += other.handshakes_ok;
  handshakes_rejected += other.handshakes_rejected;
  sessions_resumed += other.sessions_resumed;
  frames_replayed += other.frames_replayed;
  frames_sent += other.frames_sent;
  frames_received += other.frames_received;
  bytes_sent += other.bytes_sent;
  bytes_received += other.bytes_received;
  partial_writes += other.partial_writes;
  oversized_frames += other.oversized_frames;
  corrupt_control_frames += other.corrupt_control_frames;
  backpressure_events += other.backpressure_events;
  heartbeats_coalesced += other.heartbeats_coalesced;
  heartbeats_shed += other.heartbeats_shed;
  send_queue_overflows += other.send_queue_overflows;
}

void RecoveryCounters::merge(const RecoveryCounters& other) noexcept {
  journal_records += other.journal_records;
  journal_bytes += other.journal_bytes;
  journal_syncs += other.journal_syncs;
  snapshots_written += other.snapshots_written;
  crashes_injected += other.crashes_injected;
  recoveries += other.recoveries;
  torn_records_truncated += other.torn_records_truncated;
  torn_snapshots_discarded += other.torn_snapshots_discarded;
  records_replayed += other.records_replayed;
  ticks_replayed += other.ticks_replayed;
  inputs_replayed += other.inputs_replayed;
}

void ResilienceCounters::merge(const ResilienceCounters& other) noexcept {
  speculations_launched += other.speculations_launched;
  speculations_promoted += other.speculations_promoted;
  speculations_cancelled += other.speculations_cancelled;
  adaptive_deadlines_used += other.adaptive_deadlines_used;
  storms_entered += other.storms_entered;
  storms_exited += other.storms_exited;
  dispatches_held += other.dispatches_held;
  probation_admissions += other.probation_admissions;
  requarantines += other.requarantines;
}

void ResilienceCounters::save(util::ByteWriter& w) const {
  w.u64(speculations_launched);
  w.u64(speculations_promoted);
  w.u64(speculations_cancelled);
  w.u64(adaptive_deadlines_used);
  w.u64(storms_entered);
  w.u64(storms_exited);
  w.u64(dispatches_held);
  w.u64(probation_admissions);
  w.u64(requarantines);
}

void ResilienceCounters::load(util::ByteReader& r) {
  speculations_launched = r.u64();
  speculations_promoted = r.u64();
  speculations_cancelled = r.u64();
  adaptive_deadlines_used = r.u64();
  storms_entered = r.u64();
  storms_exited = r.u64();
  dispatches_held = r.u64();
  probation_admissions = r.u64();
  requarantines = r.u64();
}

}  // namespace tora::core
