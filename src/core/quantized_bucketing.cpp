#include "core/quantized_bucketing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tora::core {

QuantizedBucketing::QuantizedBucketing(util::Rng rng,
                                       std::vector<double> quantiles)
    : BucketingPolicy(rng), quantiles_(std::move(quantiles)) {
  std::sort(quantiles_.begin(), quantiles_.end());
  for (double q : quantiles_) {
    if (!(q > 0.0 && q < 1.0)) {
      throw std::invalid_argument(
          "QuantizedBucketing: quantiles must lie strictly in (0, 1)");
    }
  }
}

std::vector<std::size_t> QuantizedBucketing::compute_break_indices(
    const SortedRecords& sorted) {
  const std::size_t n = sorted.size();
  const auto& values = sorted.values;
  std::vector<std::size_t> ends;
  ends.reserve(quantiles_.size() + 1);
  for (double q : quantiles_) {
    // Rank-based quantile index over the sorted records; the record at the
    // quantile rank ends its bucket. The boundary is extended through any
    // run of equal values so adjacent buckets never share a representative
    // (a split inside a run would create a useless duplicate bucket).
    auto idx =
        static_cast<std::size_t>(std::floor(q * static_cast<double>(n - 1)));
    while (idx + 1 < n && values[idx + 1] == values[idx]) ++idx;
    ends.push_back(idx);
  }
  ends.push_back(n - 1);
  std::sort(ends.begin(), ends.end());
  ends.erase(std::unique(ends.begin(), ends.end()), ends.end());
  return ends;
}

}  // namespace tora::core
