#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/task_allocator.hpp"

namespace tora::core {

/// The seven allocation algorithms evaluated in the paper, by their
/// canonical registry names.
inline constexpr std::string_view kWholeMachine = "whole_machine";
inline constexpr std::string_view kMaxSeen = "max_seen";
inline constexpr std::string_view kMinWaste = "min_waste";
inline constexpr std::string_view kMaxThroughput = "max_throughput";
inline constexpr std::string_view kQuantizedBucketing = "quantized_bucketing";
inline constexpr std::string_view kGreedyBucketing = "greedy_bucketing";
inline constexpr std::string_view kExhaustiveBucketing = "exhaustive_bucketing";

/// Extension (not in the paper's Fig. 5 grid): Quantized Bucketing early,
/// Exhaustive Bucketing once enough records exist — the hand-off the paper
/// suggests in §V-C for outlier-heavy cold starts.
inline constexpr std::string_view kHybridBucketing = "hybrid_bucketing";

/// Extension: the k-means clustering variant of the paper's reference [11]
/// (Phung et al., WORKS 2021) — QuantizedBucketing's sibling.
inline constexpr std::string_view kKMeansBucketing = "kmeans_bucketing";

/// Extension: Exhaustive Bucketing wrapped in a mean-shift change detector
/// that hard-resets the record base on phase changes — the alternative to
/// soft significance weighting (paper §VII future work).
inline constexpr std::string_view kChangeAwareBucketing =
    "change_aware_bucketing";

/// All registry names in the paper's Fig. 5 presentation order.
const std::vector<std::string>& all_policy_names();

/// The paper's seven plus this library's extensions (hybrid_bucketing,
/// kmeans_bucketing).
const std::vector<std::string>& extended_policy_names();

/// True for the paper's two novel algorithms (conservative 1c/1GB/1GB
/// exploration); false for the comparison algorithms, which explore with a
/// whole machine (§V-C).
bool is_bucketing_family(std::string_view policy_name);

/// Tunables a few policies need; defaults follow the paper's §V settings.
struct RegistryOptions {
  /// Max Seen histogram rounding: memory/disk width in MB and cores width.
  double max_seen_bucket_mb = 250.0;
  double max_seen_bucket_cores = 1.0;
  /// Exhaustive Bucketing's bucket-count cap (paper: 10).
  std::size_t exhaustive_max_buckets = 10;
  /// Quantized Bucketing's split quantiles (paper: the 50th percentile).
  std::vector<double> quantized_quantiles = {0.5};
  /// Records before a category leaves exploration (paper: 10).
  std::size_t exploration_min_records = 10;
  /// FixedDefault exploration allocation (paper: 1 core, 1 GB, 1 GB).
  ResourceVector exploration_default{1.0, 1024.0, 1024.0, 0.0};
  /// Records before hybrid_bucketing hands off from its quantized stage to
  /// its exhaustive stage.
  std::size_t hybrid_switch_records = 50;
  /// Cluster count for kmeans_bucketing.
  std::size_t kmeans_clusters = 2;
  /// change_aware_bucketing: mean-shift detection window and trigger ratio.
  std::size_t change_window = 20;
  double change_ratio = 2.0;
  /// Bucketing-family rebuild epoch growth: rebuild every
  /// max(1, rebuild_growth × history_size)-th observation, so rebuild
  /// points space out geometrically as records accumulate. 0 (default)
  /// rebuilds for every observation — the paper-faithful mode that the
  /// bit-exact parity and crash-recovery guarantees assume (see
  /// BucketingPolicy::RebuildSchedule).
  double rebuild_growth = 0.0;
};

/// Builds the per-resource PolicyFactory for a named algorithm. Throws
/// std::invalid_argument for an unknown name. `seed` controls the
/// algorithm's internal sampling stream (bucket choice).
PolicyFactory make_policy_factory(std::string_view policy_name,
                                  std::uint64_t seed,
                                  const RegistryOptions& opts = {});

/// Convenience: a fully configured TaskAllocator for a named algorithm,
/// with the family-appropriate exploration mode (§V-A / §V-C).
TaskAllocator make_allocator(std::string_view policy_name, std::uint64_t seed,
                             const ResourceVector& worker_capacity =
                                 {16.0, 64.0 * 1024.0, 64.0 * 1024.0, 0.0},
                             const RegistryOptions& opts = {});

}  // namespace tora::core
