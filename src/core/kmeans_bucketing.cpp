#include "core/kmeans_bucketing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tora::core {

KMeansBucketing::KMeansBucketing(util::Rng rng, std::size_t k,
                                 std::size_t max_iterations)
    : BucketingPolicy(rng), k_(k), max_iterations_(max_iterations) {
  if (k_ == 0) throw std::invalid_argument("KMeansBucketing: k must be >= 1");
  if (max_iterations_ == 0) {
    throw std::invalid_argument("KMeansBucketing: max_iterations must be >= 1");
  }
}

std::vector<std::size_t> KMeansBucketing::cluster_ends(
    std::span<const double> values, std::span<const double> significances,
    std::size_t k, std::size_t max_iterations) {
  const std::size_t n = values.size();
  k = std::min(k, n);
  if (k <= 1 || values.front() == values.back()) {
    return {n - 1};
  }

  // Deterministic init: centroids at evenly spaced quantile ranks.
  std::vector<double> centroids(k);
  for (std::size_t c = 0; c < k; ++c) {
    const double pos = (static_cast<double>(c) + 0.5) / static_cast<double>(k) *
                       static_cast<double>(n - 1);
    centroids[c] = values[static_cast<std::size_t>(pos)];
  }
  std::sort(centroids.begin(), centroids.end());

  // Lloyd's algorithm. In 1-D with sorted values, the assignment boundary
  // between adjacent centroids is their midpoint, so each iteration computes
  // the boundary indices and then the weighted centroid of each segment.
  std::vector<std::size_t> ends(k, n - 1);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    std::vector<std::size_t> new_ends;
    new_ends.reserve(k);
    std::size_t begin = 0;
    for (std::size_t c = 0; c + 1 < k; ++c) {
      const double midpoint = 0.5 * (centroids[c] + centroids[c + 1]);
      // Last index with value <= midpoint (assignment to the lower centroid).
      const auto it = std::upper_bound(
          values.begin() + static_cast<std::ptrdiff_t>(begin), values.end(),
          midpoint);
      const std::size_t end_idx =
          it == values.begin() + static_cast<std::ptrdiff_t>(begin)
              ? begin  // empty segment collapses onto its first record
              : static_cast<std::size_t>(it - values.begin()) - 1;
      new_ends.push_back(std::min(end_idx, n - 2));
      begin = new_ends.back() + 1;
    }
    new_ends.push_back(n - 1);
    std::sort(new_ends.begin(), new_ends.end());
    new_ends.erase(std::unique(new_ends.begin(), new_ends.end()),
                   new_ends.end());

    // Recompute sig-weighted centroids over the segments.
    std::vector<double> new_centroids;
    new_centroids.reserve(new_ends.size());
    std::size_t seg_begin = 0;
    for (std::size_t end : new_ends) {
      double wsum = 0.0, vsum = 0.0;
      for (std::size_t i = seg_begin; i <= end; ++i) {
        wsum += significances[i];
        vsum += values[i] * significances[i];
      }
      new_centroids.push_back(wsum > 0.0 ? vsum / wsum
                                         : values[(seg_begin + end) / 2]);
      seg_begin = end + 1;
    }

    const bool converged =
        new_ends == ends && new_centroids.size() == centroids.size();
    ends = std::move(new_ends);
    centroids = std::move(new_centroids);
    if (converged) break;
    // A collapsed cluster shrinks k for the remaining iterations.
    k = centroids.size();
    if (k == 1) break;
  }
  if (ends.empty() || ends.back() != n - 1) ends.push_back(n - 1);
  // Normalize: a boundary must never split a run of equal values (adjacent
  // buckets would share a representative). Extend each end through its run,
  // then dedupe.
  for (std::size_t& e : ends) {
    while (e + 1 < n && values[e + 1] == values[e]) ++e;
  }
  std::sort(ends.begin(), ends.end());
  ends.erase(std::unique(ends.begin(), ends.end()), ends.end());
  return ends;
}

std::vector<std::size_t> KMeansBucketing::cluster_ends(
    std::span<const Record> sorted, std::size_t k,
    std::size_t max_iterations) {
  std::vector<double> values;
  std::vector<double> sigs;
  values.reserve(sorted.size());
  sigs.reserve(sorted.size());
  for (const Record& r : sorted) {
    values.push_back(r.value);
    sigs.push_back(r.significance);
  }
  return cluster_ends(std::span<const double>(values),
                      std::span<const double>(sigs), k, max_iterations);
}

std::vector<std::size_t> KMeansBucketing::compute_break_indices(
    const SortedRecords& sorted) {
  return cluster_ends(sorted.values, sorted.significances, k_,
                      max_iterations_);
}

}  // namespace tora::core
