#include "core/greedy_bucketing.hpp"

#include <limits>

namespace tora::core {

namespace {

struct RangeAgg {
  double sig = 0.0;
  double mean = 0.0;  // sig-weighted mean value; 0 when sig == 0
};

RangeAgg aggregate_prefix(std::span<const double> sig_prefix,
                          std::span<const double> vsig_prefix, std::size_t lo,
                          std::size_t hi_inclusive) {
  RangeAgg a;
  a.sig = sig_prefix[hi_inclusive + 1] - sig_prefix[lo];
  const double vsig = vsig_prefix[hi_inclusive + 1] - vsig_prefix[lo];
  a.mean = a.sig > 0.0 ? vsig / a.sig : 0.0;
  return a;
}

RangeAgg aggregate_scan(std::span<const double> values,
                        std::span<const double> sigs, std::size_t lo,
                        std::size_t hi_inclusive) {
  RangeAgg a;
  double vsig = 0.0;
  for (std::size_t i = lo; i <= hi_inclusive; ++i) {
    a.sig += sigs[i];
    vsig += values[i] * sigs[i];
  }
  a.mean = a.sig > 0.0 ? vsig / a.sig : 0.0;
  return a;
}

RangeAgg aggregate_scan(std::span<const Record> sorted, std::size_t lo,
                        std::size_t hi_inclusive) {
  RangeAgg a;
  double vsig = 0.0;
  for (std::size_t i = lo; i <= hi_inclusive; ++i) {
    a.sig += sorted[i].significance;
    vsig += sorted[i].value * sorted[i].significance;
  }
  a.mean = a.sig > 0.0 ? vsig / a.sig : 0.0;
  return a;
}

/// The 4-case expected waste of §IV-B given the two buckets' reps and
/// aggregates.
double two_bucket_cost(double rep_lo, double rep_hi, const RangeAgg& whole,
                       const RangeAgg& low, const RangeAgg& high) {
  const double p_lo = whole.sig > 0.0 ? low.sig / whole.sig : 0.0;
  const double p_hi = 1.0 - p_lo;
  const double v_lo = low.mean;
  const double v_hi = high.mean;
  const double w_lo_lo = p_lo * p_lo * (rep_lo - v_lo);
  const double w_lo_hi = p_lo * p_hi * (rep_hi - v_lo);
  const double w_hi_lo = p_hi * p_lo * (rep_lo + rep_hi - v_hi);
  const double w_hi_hi = p_hi * p_hi * (rep_hi - v_hi);
  return w_lo_lo + w_lo_hi + w_hi_lo + w_hi_hi;
}

}  // namespace

double GreedyBucketing::candidate_cost(std::size_t lo, std::size_t brk,
                                       std::size_t hi) const {
  if (cost_model_ == CostModel::Faithful) {
    const RangeAgg whole =
        aggregate_scan(current_.values, current_.significances, lo, hi);
    if (brk == hi) return current_.values[hi] - whole.mean;
    return two_bucket_cost(
        current_.values[brk], current_.values[hi], whole,
        aggregate_scan(current_.values, current_.significances, lo, brk),
        aggregate_scan(current_.values, current_.significances, brk + 1, hi));
  }
  const RangeAgg whole =
      aggregate_prefix(current_.sig_prefix, current_.vsig_prefix, lo, hi);
  if (brk == hi) return current_.values[hi] - whole.mean;
  return two_bucket_cost(
      current_.values[brk], current_.values[hi], whole,
      aggregate_prefix(current_.sig_prefix, current_.vsig_prefix, lo, brk),
      aggregate_prefix(current_.sig_prefix, current_.vsig_prefix, brk + 1,
                       hi));
}

double GreedyBucketing::split_cost(std::span<const Record> sorted,
                                   std::size_t lo, std::size_t brk,
                                   std::size_t hi) {
  const RangeAgg whole = aggregate_scan(sorted, lo, hi);
  if (brk == hi) return sorted[hi].value - whole.mean;
  return two_bucket_cost(sorted[brk].value, sorted[hi].value, whole,
                         aggregate_scan(sorted, lo, brk),
                         aggregate_scan(sorted, brk + 1, hi));
}

std::vector<std::size_t> GreedyBucketing::compute_break_indices(
    const SortedRecords& sorted) {
  current_ = sorted;
  std::vector<std::size_t> ends;
  solve(0, sorted.size() - 1, ends);
  return ends;
}

void GreedyBucketing::solve(std::size_t lo, std::size_t hi,
                            std::vector<std::size_t>& ends) const {
  if (lo == hi) {
    ends.push_back(lo);
    return;
  }
  double min_cost = std::numeric_limits<double>::infinity();
  std::size_t best = hi;
  for (std::size_t i = lo; i <= hi; ++i) {
    const double c = candidate_cost(lo, i, hi);
    if (c < min_cost) {
      min_cost = c;
      best = i;
    }
  }
  if (best == hi) {
    // Keeping one bucket over [lo, hi] beats every split.
    ends.push_back(hi);
    return;
  }
  solve(lo, best, ends);
  solve(best + 1, hi, ends);
}

}  // namespace tora::core
