#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "core/lifecycle/category_table.hpp"
#include "core/record_store.hpp"

namespace tora::util {
class ByteWriter;
class ByteReader;
}  // namespace tora::util

namespace tora::core::resilience {

/// Churn-adaptive resilience knobs, shared by both runtimes (the protocol
/// manager measures time in pump ticks, the simulator in seconds — every
/// window below is in the owning runtime's clock unit). All four features
/// default OFF: a default-constructed config reproduces the legacy behavior
/// bit-for-bit, which is what keeps the seed-exact contract and the
/// crash-recovery fingerprints untouched.
///
/// Validated at construction of the owning runtime via validate(), the same
/// contract as AllocatorConfig.
struct ResilienceConfig {
  /// Per-category adaptive attempt deadlines (quantile × slack over the
  /// observed attempt wall times) instead of the one-size-fits-all timeout.
  bool deadlines = false;
  /// Speculative re-dispatch: duplicate a straggling Running attempt on a
  /// second worker; first result wins, the loser is charged to the
  /// speculative-waste ledger column.
  bool speculation = false;
  /// Per-worker EWMA reliability scores feeding placement preference and
  /// probationary re-admission instead of permanent quarantine.
  bool reliability = false;
  /// Windowed eviction-rate storm detector driving a degraded mode
  /// (speculation suspended, dispatch admission capped, deadlines widened).
  bool storm_control = false;

  // --- deadlines ---------------------------------------------------------
  /// Deadline = quantile(deadline_quantile) × deadline_slack of the
  /// category's attempt wall times; the static timeout below min_records.
  double deadline_quantile = 0.95;
  double deadline_slack = 2.0;
  /// Observations a category needs before its deadline adapts (mirrors the
  /// allocator's exploration min_records).
  std::size_t min_records = 10;

  // --- speculation -------------------------------------------------------
  /// An attempt running longer than quantile(straggler_quantile) ×
  /// straggler_slack is a straggler and eligible for duplication.
  double straggler_quantile = 0.75;
  double straggler_slack = 1.5;

  // --- reliability / probation ------------------------------------------
  /// EWMA weight of the newest event: score += decay · (outcome − score),
  /// outcome 1 for a delivered result, 0 for an eviction/timeout/death.
  double reliability_decay = 0.25;
  /// First quarantine sentence (ticks/seconds); each re-offense after
  /// release multiplies the next sentence by sentence_growth.
  double probation_sentence = 16.0;
  double sentence_growth = 2.0;

  // --- storm degradation -------------------------------------------------
  /// Sliding eviction-counting window length (ticks/seconds).
  double storm_window = 64.0;
  /// Evictions inside the window that enter degraded mode...
  std::size_t storm_enter = 6;
  /// ...and the count at or below which it exits.
  std::size_t storm_exit = 1;
  /// Max in-flight attempts admitted while degraded (admission control).
  std::size_t degraded_inflight_cap = 8;
  /// Deadline multiplier while degraded (evictions make wall times noisy;
  /// widening avoids spurious timeout storms on top of eviction storms).
  double degraded_deadline_widen = 2.0;

  bool enabled() const noexcept {
    return deadlines || speculation || reliability || storm_control;
  }

  /// Throws std::invalid_argument on out-of-range knobs. Runtimes call this
  /// at construction so a bad config fails fast, never mid-run.
  void validate() const;
};

/// Per-category attempt wall-time records on top of core::RecordStore's
/// SoA sorted run (amortized O(1) observe, O(n) merge on first quantile
/// query after a batch). The same machinery the paper builds for resource
/// footprints, pointed at time.
class RuntimeHistogram {
 public:
  /// Records one attempt wall time. O(1) amortized.
  void observe(CategoryId category, double wall);

  /// Total observations for the category (0 for unseen ids).
  std::size_t records(CategoryId category) const noexcept;

  /// The q-quantile (q in (0, 1]) of the category's observed wall times, or
  /// nullopt for unseen categories. Non-const: staged records are merged on
  /// demand.
  std::optional<double> quantile(CategoryId category, double q);

  /// Bit-exact serialization (merged run + staged buffer per category).
  void save(util::ByteWriter& w) const;
  void load(util::ByteReader& r);

 private:
  std::vector<RecordStore> per_category_;
};

/// Task-oriented deadlines: RuntimeHistogram + the quantile × slack formula,
/// falling back to the runtime's static timeout below min_records.
class DeadlineTracker {
 public:
  DeadlineTracker() = default;
  explicit DeadlineTracker(const ResilienceConfig& cfg) : cfg_(cfg) {}

  void observe(CategoryId category, double wall) {
    hist_.observe(category, wall);
  }

  /// True once the category has min_records observations (its deadline and
  /// straggler threshold are histogram-derived rather than fallbacks).
  bool adaptive(CategoryId category) const noexcept {
    return hist_.records(category) >= cfg_.min_records;
  }

  /// The attempt deadline for `category`: quantile × slack × widen when
  /// adaptive, `fallback` × widen otherwise (widen > 1 while a storm rages).
  double deadline(CategoryId category, double fallback, double widen = 1.0);

  /// The straggler threshold (speculation trigger), or nullopt below
  /// min_records — no speculation without evidence.
  std::optional<double> straggler_threshold(CategoryId category);

  std::size_t records(CategoryId category) const noexcept {
    return hist_.records(category);
  }

  void save(util::ByteWriter& w) const { hist_.save(w); }
  void load(util::ByteReader& r) { hist_.load(r); }

 private:
  ResilienceConfig cfg_;
  RuntimeHistogram hist_;
};

/// Per-worker reliability scores (EWMA of delivered results vs. evictions /
/// timeouts / deaths) plus the probation state machine that replaces
/// permanent quarantine:
///
///   clean ──offense──▶ ... ──quarantine()──▶ serving sentence
///        (scores only)                          │ sentence elapses
///                                               ▼
///     redeemed ◀──on_success (delivers)──── probationary
///        │                                      │ next quarantine()
///        └──▶ (normal placement)                ▼
///                                     serving DOUBLED sentence …
///
/// While serving, the worker is rejected outright (quarantined() == true).
/// Once the sentence elapses it is probationary: re-admitted, but placed
/// only when no non-probationary worker fits, until a delivered result
/// redeems it. A quarantine while probationary (or any later one) carries a
/// sentence multiplied by sentence_growth per prior conviction.
class ReliabilityTracker {
 public:
  ReliabilityTracker() = default;
  explicit ReliabilityTracker(const ResilienceConfig& cfg) : cfg_(cfg) {}

  /// The worker delivered a result (success or resource-exhausted — either
  /// way it did its job). Pulls the score toward 1 and redeems probation.
  void on_success(std::uint64_t worker);

  /// The worker ate an attempt: eviction, timeout or silence death. Pulls
  /// the score toward 0.
  void on_offense(std::uint64_t worker);

  /// EWMA score in [0, 1]; unseen workers start at 1 (trusted).
  double score(std::uint64_t worker) const noexcept;

  /// Convicts the worker at time `now`; returns the sentence length
  /// (probation_sentence × sentence_growth^prior_convictions).
  double quarantine(std::uint64_t worker, double now);

  /// Still serving its sentence at `now` (reject all traffic).
  bool quarantined(std::uint64_t worker, double now) const noexcept;

  /// Sentence elapsed but no result delivered since: re-admitted at reduced
  /// dispatch priority.
  bool probationary(std::uint64_t worker, double now) const noexcept;

  /// Times the worker has been convicted.
  std::size_t convictions(std::uint64_t worker) const noexcept;

  void save(util::ByteWriter& w) const;
  void load(util::ByteReader& r);

 private:
  struct Entry {
    double score = 1.0;
    double release_at = 0.0;
    std::uint64_t convictions = 0;
    /// Convicted and not yet redeemed: serving while now < release_at,
    /// probationary after.
    bool convicted = false;
  };

  ResilienceConfig cfg_;
  std::map<std::uint64_t, Entry> entries_;  // ordered: deterministic save
};

/// Windowed eviction-rate detector: `storm_enter` evictions inside
/// `storm_window` enters degraded mode; it exits once the window drains to
/// `storm_exit` or fewer. Degraded mode is the caller's signal to suspend
/// speculation, cap admissions and widen deadlines.
class StormDetector {
 public:
  StormDetector() = default;
  explicit StormDetector(const ResilienceConfig& cfg) : cfg_(cfg) {}

  /// Records one eviction at time `now` (monotone across calls).
  void on_eviction(double now);

  /// Advances the window to `now`, possibly leaving degraded mode. Call on
  /// every tick/event so exit does not wait for the next eviction.
  void update(double now);

  bool degraded() const noexcept { return degraded_; }
  std::size_t storms_entered() const noexcept { return entered_; }
  std::size_t storms_exited() const noexcept { return exited_; }
  /// Evictions currently inside the window (diagnostics).
  std::size_t window_count() const noexcept { return window_.size(); }

  void save(util::ByteWriter& w) const;
  void load(util::ByteReader& r);

 private:
  void prune(double now);

  ResilienceConfig cfg_;
  std::deque<double> window_;  ///< eviction timestamps, ascending
  bool degraded_ = false;
  std::size_t entered_ = 0;
  std::size_t exited_ = 0;
};

}  // namespace tora::core::resilience
