#include "core/resilience/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/bytes.hpp"

namespace tora::core::resilience {

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument("ResilienceConfig: " + what);
}

}  // namespace

void ResilienceConfig::validate() const {
  require(deadline_quantile > 0.0 && deadline_quantile <= 1.0,
          "deadline_quantile must be in (0, 1]");
  require(deadline_slack >= 1.0, "deadline_slack must be >= 1");
  require(min_records >= 1, "min_records must be >= 1");
  require(straggler_quantile > 0.0 && straggler_quantile <= 1.0,
          "straggler_quantile must be in (0, 1]");
  require(straggler_slack >= 1.0, "straggler_slack must be >= 1");
  require(reliability_decay > 0.0 && reliability_decay <= 1.0,
          "reliability_decay must be in (0, 1]");
  require(probation_sentence > 0.0, "probation_sentence must be > 0");
  require(sentence_growth >= 1.0, "sentence_growth must be >= 1");
  require(storm_window > 0.0, "storm_window must be > 0");
  require(storm_enter >= 1, "storm_enter must be >= 1");
  require(storm_exit < storm_enter, "storm_exit must be < storm_enter");
  require(degraded_inflight_cap >= 1, "degraded_inflight_cap must be >= 1");
  require(degraded_deadline_widen >= 1.0,
          "degraded_deadline_widen must be >= 1");
}

// ---------------------------------------------------------------------------
// RuntimeHistogram

void RuntimeHistogram::observe(CategoryId category, double wall) {
  if (category >= per_category_.size()) per_category_.resize(category + 1);
  per_category_[category].add(wall, 1.0);
}

std::size_t RuntimeHistogram::records(CategoryId category) const noexcept {
  if (category >= per_category_.size()) return 0;
  return per_category_[category].size();
}

std::optional<double> RuntimeHistogram::quantile(CategoryId category,
                                                 double q) {
  if (category >= per_category_.size()) return std::nullopt;
  RecordStore& store = per_category_[category];
  if (store.empty()) return std::nullopt;
  store.flush();
  const auto values = store.values();
  const std::size_t n = values.size();
  // Nearest-rank: the ceil(q·n)-th order statistic, clamped to [1, n].
  std::size_t rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::clamp<std::size_t>(rank, 1, n);
  return values[rank - 1];
}

void RuntimeHistogram::save(util::ByteWriter& w) const {
  w.u64(per_category_.size());
  for (const RecordStore& store : per_category_) store.save(w);
}

void RuntimeHistogram::load(util::ByteReader& r) {
  per_category_.assign(r.u64(), RecordStore{});
  for (RecordStore& store : per_category_) store.load(r);
}

// ---------------------------------------------------------------------------
// DeadlineTracker

double DeadlineTracker::deadline(CategoryId category, double fallback,
                                 double widen) {
  if (!adaptive(category)) return fallback * widen;
  const auto q = hist_.quantile(category, cfg_.deadline_quantile);
  return *q * cfg_.deadline_slack * widen;
}

std::optional<double> DeadlineTracker::straggler_threshold(
    CategoryId category) {
  if (!adaptive(category)) return std::nullopt;
  const auto q = hist_.quantile(category, cfg_.straggler_quantile);
  return *q * cfg_.straggler_slack;
}

// ---------------------------------------------------------------------------
// ReliabilityTracker

void ReliabilityTracker::on_success(std::uint64_t worker) {
  Entry& e = entries_[worker];
  e.score += cfg_.reliability_decay * (1.0 - e.score);
  e.convicted = false;  // a delivered result redeems probation
}

void ReliabilityTracker::on_offense(std::uint64_t worker) {
  Entry& e = entries_[worker];
  e.score += cfg_.reliability_decay * (0.0 - e.score);
}

double ReliabilityTracker::score(std::uint64_t worker) const noexcept {
  const auto it = entries_.find(worker);
  return it == entries_.end() ? 1.0 : it->second.score;
}

double ReliabilityTracker::quarantine(std::uint64_t worker, double now) {
  Entry& e = entries_[worker];
  double sentence = cfg_.probation_sentence;
  for (std::uint64_t c = 0; c < e.convictions; ++c) {
    sentence *= cfg_.sentence_growth;
  }
  ++e.convictions;
  e.release_at = now + sentence;
  e.convicted = true;
  return sentence;
}

bool ReliabilityTracker::quarantined(std::uint64_t worker,
                                     double now) const noexcept {
  const auto it = entries_.find(worker);
  if (it == entries_.end()) return false;
  return it->second.convicted && now < it->second.release_at;
}

bool ReliabilityTracker::probationary(std::uint64_t worker,
                                      double now) const noexcept {
  const auto it = entries_.find(worker);
  if (it == entries_.end()) return false;
  return it->second.convicted && now >= it->second.release_at;
}

std::size_t ReliabilityTracker::convictions(
    std::uint64_t worker) const noexcept {
  const auto it = entries_.find(worker);
  return it == entries_.end()
             ? 0
             : static_cast<std::size_t>(it->second.convictions);
}

void ReliabilityTracker::save(util::ByteWriter& w) const {
  w.u64(entries_.size());
  for (const auto& [worker, e] : entries_) {
    w.u64(worker);
    w.f64(e.score);
    w.f64(e.release_at);
    w.u64(e.convictions);
    w.u8(e.convicted ? 1 : 0);
  }
}

void ReliabilityTracker::load(util::ByteReader& r) {
  entries_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t worker = r.u64();
    Entry e;
    e.score = r.f64();
    e.release_at = r.f64();
    e.convictions = r.u64();
    e.convicted = r.u8() != 0;
    entries_.emplace(worker, e);
  }
}

// ---------------------------------------------------------------------------
// StormDetector

void StormDetector::prune(double now) {
  const double horizon = now - cfg_.storm_window;
  while (!window_.empty() && window_.front() < horizon) window_.pop_front();
}

void StormDetector::on_eviction(double now) {
  if (!cfg_.storm_control) return;
  prune(now);
  window_.push_back(now);
  if (!degraded_ && window_.size() >= cfg_.storm_enter) {
    degraded_ = true;
    ++entered_;
  }
}

void StormDetector::update(double now) {
  if (!cfg_.storm_control) return;
  prune(now);
  if (degraded_ && window_.size() <= cfg_.storm_exit) {
    degraded_ = false;
    ++exited_;
  }
}

void StormDetector::save(util::ByteWriter& w) const {
  w.u64(window_.size());
  for (double t : window_) w.f64(t);
  w.u8(degraded_ ? 1 : 0);
  w.u64(entered_);
  w.u64(exited_);
}

void StormDetector::load(util::ByteReader& r) {
  window_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) window_.push_back(r.f64());
  degraded_ = r.u8() != 0;
  entered_ = r.u64();
  exited_ = r.u64();
}

}  // namespace tora::core::resilience
