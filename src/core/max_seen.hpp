#pragma once

#include <cstddef>

#include "core/policy.hpp"

namespace tora::core {

/// Max Seen — naive comparison policy (paper §V-A): allocate every task the
/// maximum peak value observed so far in the current run, rounded UP to the
/// next multiple of a histogram bucket width. The paper's Work Queue
/// implementation keeps a 250-unit histogram, which is why a constant 306 MB
/// disk consumption is allocated as 500 MB forever (§V-C) — reproducing that
/// rounding is essential for the TopEFT disk column of Fig. 5.
class MaxSeenPolicy final : public ResourcePolicy {
 public:
  /// `bucket_width` > 0: 250 for memory/disk (MB), 1 for cores.
  explicit MaxSeenPolicy(double bucket_width);

  void observe(double peak_value, double significance) override;
  double predict() override;
  double retry(double failed_alloc) override;

  std::string name() const override { return "max_seen"; }
  std::size_t record_count() const override { return count_; }

  double max_value() const noexcept { return max_; }
  double bucket_width() const noexcept { return width_; }

 private:
  double width_;
  double max_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace tora::core
