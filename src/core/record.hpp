#pragma once

namespace tora::core {

/// One completed-task observation for a single resource dimension.
///
/// `value` is the task's peak consumption of that resource; `significance`
/// weights the record when computing bucket probabilities and weighted means
/// (paper §IV-A). Higher significance means more recent / more relevant; the
/// paper (and this library's TaskAllocator) uses the per-category submission
/// index, so later tasks dominate after a phase change.
struct Record {
  double value = 0.0;
  double significance = 1.0;

  friend bool operator==(const Record&, const Record&) = default;
};

}  // namespace tora::core
