#include "core/task_allocator.hpp"

#include <stdexcept>
#include <string>

namespace tora::core {

namespace {

/// Construction-time validation: every config error is reported here, next
/// to its cause, instead of surfacing later as a clamp-to-zero allocation or
/// an unrunnable task deep inside a run.
void validate_config(const AllocatorConfig& config) {
  if (config.managed.empty()) {
    throw std::invalid_argument("TaskAllocator: managed set must be non-empty");
  }
  for (ResourceKind k : config.managed) {
    if (!(config.worker_capacity[k] > 0.0)) {
      throw std::invalid_argument(
          std::string("TaskAllocator: worker_capacity must be positive in "
                      "every managed dimension; ") +
          std::string(to_string(k)) +
          " is not (managing ResourceKind::TimeS additionally requires a "
          "positive time capacity)");
    }
    if (config.exploration.mode == ExplorationConfig::Mode::FixedDefault &&
        !(config.exploration.default_alloc[k] > 0.0)) {
      throw std::invalid_argument(
          std::string("TaskAllocator: exploration.default_alloc must be "
                      "positive in every managed dimension; ") +
          std::string(to_string(k)) +
          " is not (managing ResourceKind::TimeS additionally requires a "
          "positive exploration time default)");
    }
  }
  if (config.exploration.min_records == 0) {
    throw std::invalid_argument(
        "TaskAllocator: exploration.min_records must be >= 1 (a policy "
        "cannot predict from zero records)");
  }
}

}  // namespace

TaskAllocator::TaskAllocator(std::string policy_name, PolicyFactory factory,
                             AllocatorConfig config)
    : policy_name_(std::move(policy_name)),
      factory_(std::move(factory)),
      config_(config) {
  if (!factory_) {
    throw std::invalid_argument("TaskAllocator: null policy factory");
  }
  validate_config(config_);
  reserve_history(config_.expected_tasks);
}

CategoryId TaskAllocator::intern(std::string_view category) {
  const CategoryId id = table_.intern(category);
  if (id >= categories_.size()) {
    categories_.resize(id + 1);
  }
  return id;
}

TaskAllocator::CategoryState& TaskAllocator::state_for(CategoryId category) {
  if (category >= categories_.size()) {
    throw std::out_of_range("TaskAllocator: unknown category id");
  }
  CategoryState& st = categories_[category];
  if (st.policies.empty()) {
    st.policies.reserve(config_.managed.size());
    for (ResourceKind k : config_.managed) {
      st.policies.push_back(factory_(k, config_));
    }
  }
  return st;
}

ResourceVector TaskAllocator::clamp(ResourceVector v) const {
  for (ResourceKind k : config_.managed) {
    if (v[k] > config_.worker_capacity[k]) v[k] = config_.worker_capacity[k];
  }
  return v;
}

ResourceVector TaskAllocator::exploration_alloc() const {
  switch (config_.exploration.mode) {
    case ExplorationConfig::Mode::FixedDefault:
      return clamp(config_.exploration.default_alloc);
    case ExplorationConfig::Mode::WholeMachine:
      return config_.worker_capacity;
  }
  return config_.worker_capacity;
}

bool TaskAllocator::exploring(CategoryId category) const {
  const std::size_t done =
      category < categories_.size() ? categories_[category].completed : 0;
  return done < config_.exploration.min_records;
}

bool TaskAllocator::exploring(const std::string& category) const {
  const auto id = table_.find(category);
  return !id || exploring(*id);
}

std::size_t TaskAllocator::records_for(CategoryId category) const {
  return category < categories_.size() ? categories_[category].completed : 0;
}

std::size_t TaskAllocator::records_for(const std::string& category) const {
  const auto id = table_.find(category);
  return id ? records_for(*id) : 0;
}

const ResourcePolicy* TaskAllocator::policy_if_created(
    CategoryId category, ResourceKind kind) const {
  if (!policies_created(category)) return nullptr;
  const CategoryState& st = categories_[category];
  for (std::size_t i = 0; i < config_.managed.size(); ++i) {
    if (config_.managed[i] == kind) return st.policies[i].get();
  }
  return nullptr;
}

void TaskAllocator::flush_policies() {
  for (CategoryState& st : categories_) {
    for (ResourcePolicyPtr& p : st.policies) {
      if (p) p->flush_observations();
    }
  }
}

ResourcePolicy& TaskAllocator::policy(CategoryId category, ResourceKind kind) {
  auto& st = state_for(category);
  for (std::size_t i = 0; i < config_.managed.size(); ++i) {
    if (config_.managed[i] == kind) return *st.policies[i];
  }
  throw std::logic_error("TaskAllocator: unmanaged resource kind");
}

ResourceVector TaskAllocator::allocate(CategoryId category) {
  auto& st = state_for(category);
  if (st.completed < config_.exploration.min_records) {
    return exploration_alloc();
  }
  ResourceVector alloc;
  for (std::size_t i = 0; i < config_.managed.size(); ++i) {
    alloc[config_.managed[i]] = st.policies[i]->predict();
  }
  return clamp(alloc);
}

ResourceVector TaskAllocator::allocate_retry(CategoryId category,
                                             const ResourceVector& failed_alloc,
                                             unsigned exceeded_mask) {
  if (exceeded_mask == 0) {
    throw std::invalid_argument(
        "TaskAllocator::allocate_retry: empty exceeded mask");
  }
  auto& st = state_for(category);
  const bool explore = st.completed < config_.exploration.min_records;
  ResourceVector next = failed_alloc;
  for (std::size_t i = 0; i < config_.managed.size(); ++i) {
    const ResourceKind k = config_.managed[i];
    if (!(exceeded_mask & resource_bit(k))) continue;
    if (explore) {
      // Exploratory failures double the exhausted dimension (§V-A).
      next[k] = failed_alloc[k] > 0.0 ? failed_alloc[k] * 2.0 : 1.0;
    } else {
      next[k] = st.policies[i]->retry(failed_alloc[k]);
    }
  }
  return clamp(next);
}

void TaskAllocator::record_completion(CategoryId category,
                                      const ResourceVector& peak,
                                      std::optional<double> significance) {
  auto& st = state_for(category);
  const double sig = significance.value_or(next_significance_);
  if (!significance.has_value()) next_significance_ += 1.0;
  for (std::size_t i = 0; i < config_.managed.size(); ++i) {
    st.policies[i]->observe(peak[config_.managed[i]], sig);
  }
  ++st.completed;
  ++revision_;
  if (config_.record_history) history_.push_back({category, peak, sig});
  if (sig >= next_significance_) next_significance_ = sig + 1.0;
}

void TaskAllocator::reserve_history(std::size_t expected_tasks) {
  if (config_.record_history && expected_tasks > 0) {
    history_.reserve(history_.size() + expected_tasks);
  }
}

}  // namespace tora::core
