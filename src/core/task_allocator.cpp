#include "core/task_allocator.hpp"

#include <stdexcept>

namespace tora::core {

TaskAllocator::TaskAllocator(std::string policy_name, PolicyFactory factory,
                             AllocatorConfig config)
    : policy_name_(std::move(policy_name)),
      factory_(std::move(factory)),
      config_(config) {
  if (!factory_) {
    throw std::invalid_argument("TaskAllocator: null policy factory");
  }
  if (config_.managed.empty()) {
    throw std::invalid_argument("TaskAllocator: managed set must be non-empty");
  }
  for (ResourceKind k : config_.managed) {
    if (!(config_.worker_capacity[k] > 0.0)) {
      throw std::invalid_argument(
          "TaskAllocator: worker capacity must be positive in every managed "
          "dimension");
    }
  }
}

TaskAllocator::CategoryState& TaskAllocator::state_for(
    const std::string& category) {
  auto [it, inserted] = categories_.try_emplace(category);
  if (inserted) {
    for (ResourceKind k : config_.managed) {
      it->second.policies.emplace(k, factory_(k, config_));
    }
  }
  return it->second;
}

ResourceVector TaskAllocator::clamp(ResourceVector v) const {
  for (ResourceKind k : config_.managed) {
    if (v[k] > config_.worker_capacity[k]) v[k] = config_.worker_capacity[k];
  }
  return v;
}

ResourceVector TaskAllocator::exploration_alloc() const {
  switch (config_.exploration.mode) {
    case ExplorationConfig::Mode::FixedDefault:
      return clamp(config_.exploration.default_alloc);
    case ExplorationConfig::Mode::WholeMachine:
      return config_.worker_capacity;
  }
  return config_.worker_capacity;
}

bool TaskAllocator::exploring(const std::string& category) const {
  const auto it = categories_.find(category);
  const std::size_t done = it == categories_.end() ? 0 : it->second.completed;
  return done < config_.exploration.min_records;
}

std::size_t TaskAllocator::records_for(const std::string& category) const {
  const auto it = categories_.find(category);
  return it == categories_.end() ? 0 : it->second.completed;
}

ResourcePolicy& TaskAllocator::policy(const std::string& category,
                                      ResourceKind kind) {
  auto& st = state_for(category);
  const auto it = st.policies.find(kind);
  if (it == st.policies.end()) {
    throw std::logic_error("TaskAllocator: unmanaged resource kind");
  }
  return *it->second;
}

ResourceVector TaskAllocator::allocate(const std::string& category) {
  auto& st = state_for(category);
  if (st.completed < config_.exploration.min_records) {
    return exploration_alloc();
  }
  ResourceVector alloc;
  for (ResourceKind k : config_.managed) {
    alloc[k] = st.policies.at(k)->predict();
  }
  return clamp(alloc);
}

ResourceVector TaskAllocator::allocate_retry(const std::string& category,
                                             const ResourceVector& failed_alloc,
                                             unsigned exceeded_mask) {
  if (exceeded_mask == 0) {
    throw std::invalid_argument(
        "TaskAllocator::allocate_retry: empty exceeded mask");
  }
  auto& st = state_for(category);
  const bool explore = st.completed < config_.exploration.min_records;
  ResourceVector next = failed_alloc;
  for (ResourceKind k : config_.managed) {
    if (!(exceeded_mask & resource_bit(k))) continue;
    if (explore) {
      // Exploratory failures double the exhausted dimension (§V-A).
      next[k] = failed_alloc[k] > 0.0 ? failed_alloc[k] * 2.0 : 1.0;
    } else {
      next[k] = st.policies.at(k)->retry(failed_alloc[k]);
    }
  }
  return clamp(next);
}

void TaskAllocator::record_completion(const std::string& category,
                                      const ResourceVector& peak,
                                      std::optional<double> significance) {
  auto& st = state_for(category);
  const double sig = significance.value_or(next_significance_);
  if (!significance.has_value()) next_significance_ += 1.0;
  for (ResourceKind k : config_.managed) {
    st.policies.at(k)->observe(peak[k], sig);
  }
  ++st.completed;
  ++revision_;
  if (config_.record_history) history_.push_back({category, peak, sig});
  if (sig >= next_significance_) next_significance_ = sig + 1.0;
}

}  // namespace tora::core
