#pragma once

#include <span>
#include <vector>

#include "core/bucketing_policy.hpp"

namespace tora::core {

/// K-Means Bucketing — the second clustering method of Phung et al.,
/// "Not All Tasks Are Created Equal" (WORKS 2021), the paper's reference
/// [11] (its quantile variant is QuantizedBucketing). Records are clustered
/// by 1-D Lloyd's algorithm on the value axis (significance-weighted
/// centroids, centroids initialized at evenly spaced quantile positions so
/// the result is deterministic); cluster boundaries become bucket breaks and
/// the shared bucketing predict/retry protocol applies.
///
/// In 1-D, k-means clusters are contiguous ranges of the sorted record list,
/// so the conversion to bucket END indices is exact.
class KMeansBucketing final : public BucketingPolicy {
 public:
  /// `k` >= 1 clusters; `max_iterations` bounds Lloyd's loop.
  explicit KMeansBucketing(util::Rng rng, std::size_t k = 2,
                           std::size_t max_iterations = 64);

  std::string name() const override { return "kmeans_bucketing"; }
  std::size_t k() const noexcept { return k_; }

  /// Runs the clustering on a value-sorted record list and returns bucket
  /// END indices (fewer than k when records repeat or collapse onto the
  /// same centroid). Exposed for unit tests.
  static std::vector<std::size_t> cluster_ends(std::span<const Record> sorted,
                                               std::size_t k,
                                               std::size_t max_iterations);

  /// SoA overload over the parallel sorted arrays (the engine's hot path).
  static std::vector<std::size_t> cluster_ends(
      std::span<const double> values, std::span<const double> significances,
      std::size_t k, std::size_t max_iterations);

 protected:
  std::vector<std::size_t> compute_break_indices(
      const SortedRecords& sorted) override;

 private:
  std::size_t k_;
  std::size_t max_iterations_;
};

}  // namespace tora::core
