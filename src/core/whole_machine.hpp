#pragma once

#include <cstddef>

#include "core/policy.hpp"

namespace tora::core {

/// Whole Machine — the paper's baseline (§V-A): every task is allocated an
/// entire worker's worth of the resource. Tasks essentially never fail from
/// under-allocation but one task monopolizes a worker, making this the
/// resource-efficiency floor of Fig. 5.
class WholeMachinePolicy final : public ResourcePolicy {
 public:
  /// `capacity` > 0: a full worker's amount of this resource
  /// (16 cores / 65536 MB memory / 65536 MB disk in the paper's setup).
  explicit WholeMachinePolicy(double capacity);

  void observe(double peak_value, double significance) override;
  double predict() override { return capacity_; }
  double retry(double failed_alloc) override;

  std::string name() const override { return "whole_machine"; }
  std::size_t record_count() const override { return count_; }

  double capacity() const noexcept { return capacity_; }

 private:
  double capacity_;
  std::size_t count_ = 0;
};

}  // namespace tora::core
