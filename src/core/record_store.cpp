#include "core/record_store.hpp"

#include <algorithm>
#include <numeric>

namespace tora::core {

void RecordStore::add(double value, double significance) {
  stage_values_.push_back(value);
  stage_sigs_.push_back(significance);
}

void RecordStore::flush() {
  const std::size_t s = stage_values_.size();
  if (s == 0) return;
  const std::size_t n = values_.size();

  // Sort the staged records by value, keeping arrival order on ties (stable
  // through the index permutation).
  stage_order_.resize(s);
  std::iota(stage_order_.begin(), stage_order_.end(), std::size_t{0});
  std::stable_sort(stage_order_.begin(), stage_order_.end(),
                   [this](std::size_t a, std::size_t b) {
                     return stage_values_[a] < stage_values_[b];
                   });

  // Merge. On value ties the main run goes first, so a staged record lands
  // after every previously observed equal value — the same position a
  // per-observe upper_bound insert would have chosen.
  scratch_values_.clear();
  scratch_sigs_.clear();
  scratch_values_.reserve(n + s);
  scratch_sigs_.reserve(n + s);
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t first_changed = n;  // merge position of the first staged record
  while (i < n || j < s) {
    const bool take_staged =
        i == n || (j < s && stage_values_[stage_order_[j]] < values_[i]);
    if (take_staged) {
      first_changed = std::min(first_changed, scratch_values_.size());
      scratch_values_.push_back(stage_values_[stage_order_[j]]);
      scratch_sigs_.push_back(stage_sigs_[stage_order_[j]]);
      ++j;
    } else {
      scratch_values_.push_back(values_[i]);
      scratch_sigs_.push_back(sigs_[i]);
      ++i;
    }
  }
  values_.swap(scratch_values_);
  sigs_.swap(scratch_sigs_);
  stage_values_.clear();
  stage_sigs_.clear();

  // Extend the prefix sums from the first changed position. Entries before
  // it are untouched because the merge preserved that prefix of the run, so
  // the recurrence continues exactly as a full forward recompute would.
  sig_prefix_.resize(n + s + 1);
  vsig_prefix_.resize(n + s + 1);
  for (std::size_t p = first_changed; p < n + s; ++p) {
    sig_prefix_[p + 1] = sig_prefix_[p] + sigs_[p];
    vsig_prefix_[p + 1] = vsig_prefix_[p] + values_[p] * sigs_[p];
  }
}

}  // namespace tora::core
