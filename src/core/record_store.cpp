#include "core/record_store.hpp"

#include <algorithm>
#include <numeric>

#include "util/bytes.hpp"

namespace tora::core {

void RecordStore::add(double value, double significance) {
  stage_values_.push_back(value);
  stage_sigs_.push_back(significance);
}

void RecordStore::flush() {
  const std::size_t s = stage_values_.size();
  if (s == 0) return;
  const std::size_t n = values_.size();

  // Sort the staged records by value, keeping arrival order on ties (stable
  // through the index permutation).
  stage_order_.resize(s);
  std::iota(stage_order_.begin(), stage_order_.end(), std::size_t{0});
  std::stable_sort(stage_order_.begin(), stage_order_.end(),
                   [this](std::size_t a, std::size_t b) {
                     return stage_values_[a] < stage_values_[b];
                   });

  // Merge. On value ties the main run goes first, so a staged record lands
  // after every previously observed equal value — the same position a
  // per-observe upper_bound insert would have chosen.
  scratch_values_.clear();
  scratch_sigs_.clear();
  scratch_values_.reserve(n + s);
  scratch_sigs_.reserve(n + s);
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t first_changed = n;  // merge position of the first staged record
  while (i < n || j < s) {
    const bool take_staged =
        i == n || (j < s && stage_values_[stage_order_[j]] < values_[i]);
    if (take_staged) {
      first_changed = std::min(first_changed, scratch_values_.size());
      scratch_values_.push_back(stage_values_[stage_order_[j]]);
      scratch_sigs_.push_back(stage_sigs_[stage_order_[j]]);
      ++j;
    } else {
      scratch_values_.push_back(values_[i]);
      scratch_sigs_.push_back(sigs_[i]);
      ++i;
    }
  }
  values_.swap(scratch_values_);
  sigs_.swap(scratch_sigs_);
  stage_values_.clear();
  stage_sigs_.clear();

  // Extend the prefix sums from the first changed position. Entries before
  // it are untouched because the merge preserved that prefix of the run, so
  // the recurrence continues exactly as a full forward recompute would.
  sig_prefix_.resize(n + s + 1);
  vsig_prefix_.resize(n + s + 1);
  for (std::size_t p = first_changed; p < n + s; ++p) {
    sig_prefix_[p + 1] = sig_prefix_[p] + sigs_[p];
    vsig_prefix_[p + 1] = vsig_prefix_[p] + values_[p] * sigs_[p];
  }
}

void RecordStore::save(util::ByteWriter& w) const {
  w.u64(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    w.f64(values_[i]);
    w.f64(sigs_[i]);
  }
  w.u64(stage_values_.size());
  for (std::size_t i = 0; i < stage_values_.size(); ++i) {
    w.f64(stage_values_[i]);
    w.f64(stage_sigs_[i]);
  }
}

void RecordStore::load(util::ByteReader& r) {
  values_.clear();
  sigs_.clear();
  stage_values_.clear();
  stage_sigs_.clear();
  const std::uint64_t n = r.u64();
  values_.reserve(n);
  sigs_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    values_.push_back(r.f64());
    sigs_.push_back(r.f64());
  }
  const std::uint64_t s = r.u64();
  stage_values_.reserve(s);
  stage_sigs_.reserve(s);
  for (std::uint64_t i = 0; i < s; ++i) {
    stage_values_.push_back(r.f64());
    stage_sigs_.push_back(r.f64());
  }
  sig_prefix_.assign(1, 0.0);
  vsig_prefix_.assign(1, 0.0);
  sig_prefix_.reserve(values_.size() + 1);
  vsig_prefix_.reserve(values_.size() + 1);
  for (std::size_t p = 0; p < values_.size(); ++p) {
    sig_prefix_.push_back(sig_prefix_[p] + sigs_[p]);
    vsig_prefix_.push_back(vsig_prefix_[p] + values_[p] * sigs_[p]);
  }
}

}  // namespace tora::core
