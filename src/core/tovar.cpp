#include "core/tovar.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace tora::core {

TovarPolicy::TovarPolicy(TovarObjective objective) : objective_(objective) {}

std::string TovarPolicy::name() const {
  return objective_ == TovarObjective::MinWaste ? "min_waste"
                                                : "max_throughput";
}

void TovarPolicy::observe(double peak_value, double /*significance*/) {
  if (peak_value < 0.0) {
    throw std::invalid_argument("TovarPolicy: negative resource value");
  }
  values_.insert(
      std::upper_bound(values_.begin(), values_.end(), peak_value),
      peak_value);
  dirty_ = true;
}

double TovarPolicy::max_value() const noexcept {
  return values_.empty() ? 0.0 : values_.back();
}

void TovarPolicy::rebuild_if_dirty() {
  if (!dirty_) return;
  if (values_.empty()) {
    throw std::logic_error(
        "TovarPolicy: predict() before any record; exploration must cover "
        "the cold start");
  }
  const std::size_t n = values_.size();
  const double v_max = values_.back();

  // Prefix sums: value_prefix[i] = sum of values [0, i).
  std::vector<double> value_prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    value_prefix[i + 1] = value_prefix[i] + values_[i];
  }
  const double total = value_prefix[n];

  double best_score = std::numeric_limits<double>::infinity();
  if (objective_ == TovarObjective::MaxThroughput) best_score = -best_score;
  double best_a = v_max;

  // Candidate first allocations are the observed peak values; for each,
  // evaluate the objective in O(1) using the prefix sums. `i` is the last
  // index covered by candidate a = values_[i].
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n && values_[i + 1] == values_[i]) continue;  // dedupe
    const double a = values_[i];
    const double covered = static_cast<double>(i + 1);
    const double uncovered = static_cast<double>(n - i - 1);
    if (objective_ == TovarObjective::MinWaste) {
      // Covered tasks waste (a - v); uncovered tasks burn a entirely and
      // retry at v_max, wasting a + (v_max - v).
      const double covered_waste = covered * a - value_prefix[i + 1];
      const double uncovered_waste =
          uncovered * (a + v_max) - (total - value_prefix[i + 1]);
      const double score = covered_waste + uncovered_waste;
      if (score < best_score) {
        best_score = score;
        best_a = a;
      }
    } else {
      // Expected completions per unit of committed resource: a covered task
      // commits a; an uncovered one commits a + v_max across both attempts.
      if (a <= 0.0) continue;
      const double p_cover = covered / static_cast<double>(n);
      const double score =
          p_cover / a + (1.0 - p_cover) / (a + v_max);
      if (score > best_score) {
        best_score = score;
        best_a = a;
      }
    }
  }
  if (best_a <= 0.0) best_a = v_max > 0.0 ? v_max : 1.0;
  choice_ = best_a;
  dirty_ = false;
}

double TovarPolicy::current_choice() {
  rebuild_if_dirty();
  return choice_;
}

double TovarPolicy::predict() { return current_choice(); }

double TovarPolicy::retry(double failed_alloc) {
  // At-most-once retry: jump straight to the max seen; beyond that, double.
  const double vmax = max_value();
  if (vmax > failed_alloc) return vmax;
  return failed_alloc > 0.0 ? failed_alloc * 2.0 : 1.0;
}

}  // namespace tora::core
