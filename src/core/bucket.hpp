#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/record.hpp"
#include "util/rng.hpp"

namespace tora::core {

/// A contiguous range of the value-sorted record list, reduced to the three
/// quantities the allocation logic needs (paper §IV-A):
///   rep           - the maximum record value in the bucket; the allocation
///                   handed out when this bucket is chosen,
///   prob          - significance share: sum of record significances in this
///                   bucket over the total significance of all records,
///   weighted_mean - significance-weighted mean value, the estimate of the
///                   next task's consumption if it falls in this bucket
///                   (v_lo / v_hi / v_i in the paper's cost derivations).
struct Bucket {
  double rep = 0.0;
  double prob = 0.0;
  double weighted_mean = 0.0;
  std::size_t begin = 0;  ///< first record index (inclusive, sorted order)
  std::size_t end = 0;    ///< last record index (inclusive)
  double sig_sum = 0.0;   ///< total significance of contained records

  std::size_t size() const noexcept { return end - begin + 1; }
};

/// An immutable set of buckets plus the probabilistic choice rules shared by
/// every bucketing-family policy (Greedy, Exhaustive, Quantized).
///
/// Sampling is O(log B) in the bucket count B: construction precomputes the
/// cumulative probability array (sample_index) and, for sets up to
/// kSampleTableMaxBuckets buckets, per-suffix partial-sum rows
/// (sample_above). Both are built with the same forward accumulation order
/// the original linear scans used, so every draw maps to the bit-identical
/// bucket choice; larger sets fall back to the original linear scans.
class BucketSet {
 public:
  BucketSet() = default;

  /// Builds buckets from a value-sorted record list and a strictly
  /// increasing list of bucket END indices whose last element must be
  /// `sorted.size() - 1`. Throws std::invalid_argument on malformed input.
  static BucketSet from_break_indices(std::span<const Record> sorted,
                                      std::span<const std::size_t> ends);

  /// SoA fast path for the incremental engine: `values`/`significances` are
  /// the parallel sorted arrays and `total_sig` their significance sum (the
  /// caller maintains it as a running prefix). Break-structure errors still
  /// throw, but the O(n) sortedness check is a debug-only assertion — the
  /// RecordStore merge guarantees order, so Release builds skip the scan.
  static BucketSet from_sorted(std::span<const double> values,
                               std::span<const double> significances,
                               std::span<const std::size_t> ends,
                               double total_sig);

  const std::vector<Bucket>& buckets() const noexcept { return buckets_; }
  bool empty() const noexcept { return buckets_.empty(); }
  std::size_t size() const noexcept { return buckets_.size(); }

  /// Picks a bucket index at random, weighted by bucket probabilities.
  /// Requires a non-empty set.
  std::size_t sample_index(util::Rng& rng) const;

  /// The bucket a uniform draw u in [0, 1) selects: the first index whose
  /// cumulative probability exceeds u. When rounding makes the probabilities
  /// sum to less than 1 and u lands beyond the last cumulative entry, the
  /// draw falls into the top bucket (the documented floating-point slack).
  /// Exposed so tests can exercise the selection rule deterministically.
  std::size_t index_for(double u) const;

  /// First allocation: the representative value of a probabilistically
  /// chosen bucket. Requires a non-empty set.
  double sample_allocation(util::Rng& rng) const;

  /// Retry allocation after an execution that exhausted `failed_alloc`:
  /// restricts to buckets with rep > failed_alloc, renormalizes their
  /// probabilities and samples among them (paper §IV-A). Returns nullopt
  /// when no bucket is high enough — the caller must escalate by doubling.
  std::optional<double> sample_above(double failed_alloc,
                                     util::Rng& rng) const;

  /// Largest representative value (the top bucket's rep). Requires a
  /// non-empty set.
  double max_rep() const;

  /// Bucket-count ceiling for the precomputed sample_above suffix rows
  /// (memory is quadratic in the bucket count). Sets above it sample with
  /// the original linear scans — same draws, just O(B).
  static constexpr std::size_t kSampleTableMaxBuckets = 64;

 private:
  static BucketSet build(std::span<const double> values,
                         std::span<const double> significances,
                         std::span<const std::size_t> ends, double total_sig);
  void finalize();

  std::vector<Bucket> buckets_;
  // Sampling tables, rebuilt by finalize():
  //   reps_[i]      = buckets_[i].rep (non-decreasing; binary-searched to
  //                   find the first bucket above a failed allocation),
  //   cum_probs_[i] = prob[0] + ... + prob[i] (forward order),
  //   tri_ row f    = partial sums prob[f], prob[f]+prob[f+1], ... — the
  //                   renormalization run sample_above accumulates when the
  //                   eligible set starts at bucket f. Row f lives at
  //                   tri_[tri_row_offsets_[f] ...] with size() - f entries;
  //                   empty when the set exceeds kSampleTableMaxBuckets.
  std::vector<double> reps_;
  std::vector<double> cum_probs_;
  std::vector<double> tri_;
  std::vector<std::size_t> tri_row_offsets_;
};

/// Sig-weighted expected waste of a bucket configuration under the paper's
/// retry model, computed with the Exhaustive Bucketing cost table T[i][j]
/// (§IV-C). This is exposed at namespace scope because Exhaustive Bucketing
/// evaluates it for many candidate configurations and tests verify it
/// directly. Requires a non-empty configuration.
double expected_waste(const BucketSet& set);

}  // namespace tora::core
