#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/record.hpp"
#include "util/rng.hpp"

namespace tora::core {

/// A contiguous range of the value-sorted record list, reduced to the three
/// quantities the allocation logic needs (paper §IV-A):
///   rep           - the maximum record value in the bucket; the allocation
///                   handed out when this bucket is chosen,
///   prob          - significance share: sum of record significances in this
///                   bucket over the total significance of all records,
///   weighted_mean - significance-weighted mean value, the estimate of the
///                   next task's consumption if it falls in this bucket
///                   (v_lo / v_hi / v_i in the paper's cost derivations).
struct Bucket {
  double rep = 0.0;
  double prob = 0.0;
  double weighted_mean = 0.0;
  std::size_t begin = 0;  ///< first record index (inclusive, sorted order)
  std::size_t end = 0;    ///< last record index (inclusive)
  double sig_sum = 0.0;   ///< total significance of contained records

  std::size_t size() const noexcept { return end - begin + 1; }
};

/// An immutable set of buckets plus the probabilistic choice rules shared by
/// every bucketing-family policy (Greedy, Exhaustive, Quantized).
class BucketSet {
 public:
  BucketSet() = default;

  /// Builds buckets from a value-sorted record list and a strictly
  /// increasing list of bucket END indices whose last element must be
  /// `sorted.size() - 1`. Throws std::invalid_argument on malformed input.
  static BucketSet from_break_indices(std::span<const Record> sorted,
                                      std::span<const std::size_t> ends);

  const std::vector<Bucket>& buckets() const noexcept { return buckets_; }
  bool empty() const noexcept { return buckets_.empty(); }
  std::size_t size() const noexcept { return buckets_.size(); }

  /// Picks a bucket index at random, weighted by bucket probabilities.
  /// Requires a non-empty set.
  std::size_t sample_index(util::Rng& rng) const;

  /// First allocation: the representative value of a probabilistically
  /// chosen bucket. Requires a non-empty set.
  double sample_allocation(util::Rng& rng) const;

  /// Retry allocation after an execution that exhausted `failed_alloc`:
  /// restricts to buckets with rep > failed_alloc, renormalizes their
  /// probabilities and samples among them (paper §IV-A). Returns nullopt
  /// when no bucket is high enough — the caller must escalate by doubling.
  std::optional<double> sample_above(double failed_alloc,
                                     util::Rng& rng) const;

  /// Largest representative value (the top bucket's rep). Requires a
  /// non-empty set.
  double max_rep() const;

 private:
  std::vector<Bucket> buckets_;
};

/// Sig-weighted expected waste of a bucket configuration under the paper's
/// retry model, computed with the Exhaustive Bucketing cost table T[i][j]
/// (§IV-C). This is exposed at namespace scope because Exhaustive Bucketing
/// evaluates it for many candidate configurations and tests verify it
/// directly. Requires a non-empty configuration.
double expected_waste(const BucketSet& set);

}  // namespace tora::core
