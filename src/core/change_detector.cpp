#include "core/change_detector.hpp"

#include <cmath>
#include <stdexcept>

#include "util/bytes.hpp"

namespace tora::core {

MeanShiftDetector::MeanShiftDetector(std::size_t window,
                                     double ratio_threshold)
    : window_(window), ratio_(ratio_threshold) {
  if (window_ < 2) {
    throw std::invalid_argument("MeanShiftDetector: window must be >= 2");
  }
  if (!(ratio_threshold > 1.0)) {
    throw std::invalid_argument(
        "MeanShiftDetector: ratio_threshold must be > 1");
  }
}

bool MeanShiftDetector::add(double x) {
  ++samples_;
  recent_.push_back(x);
  recent_sum_ += x;
  if (recent_.size() > window_) {
    const double oldest = recent_.front();
    recent_.pop_front();
    recent_sum_ -= oldest;
    history_sum_ += oldest;
    ++history_count_;
  }
  if (history_count_ < window_ || recent_.size() < window_) return false;

  const double recent_mean = recent_sum_ / static_cast<double>(recent_.size());
  const double history_mean =
      history_sum_ / static_cast<double>(history_count_);
  // Guard the all-zero stream; identical means are never a shift.
  if (history_mean <= 0.0 && recent_mean <= 0.0) return false;
  const double hi = std::max(recent_mean, history_mean);
  const double lo = std::min(recent_mean, history_mean);
  if (lo <= 0.0 || hi / lo > ratio_) {
    ++changes_;
    last_recent_mean_ = recent_mean;
    last_history_mean_ = history_mean;
    // Full restart: both the history and the (transition-straddling) recent
    // window are dropped, so the detector re-arms only once the new phase
    // has produced 2×window clean samples — one detection per shift.
    history_sum_ = 0.0;
    history_count_ = 0;
    recent_.clear();
    recent_sum_ = 0.0;
    return true;
  }
  return false;
}

ChangeAwarePolicy::ChangeAwarePolicy(
    std::function<ResourcePolicyPtr()> make_inner, MeanShiftDetector detector)
    : make_inner_(std::move(make_inner)), detector_(detector) {
  if (!make_inner_) {
    throw std::invalid_argument("ChangeAwarePolicy: null inner factory");
  }
  inner_ = rebuild_inner();
}

ChangeAwarePolicy::ChangeAwarePolicy(
    std::function<ResourcePolicyPtr(util::Rng)> make_inner, util::Rng inner_rng,
    MeanShiftDetector detector)
    : inner_rng_(inner_rng),
      make_inner_seeded_(std::move(make_inner)),
      detector_(detector) {
  if (!make_inner_seeded_) {
    throw std::invalid_argument("ChangeAwarePolicy: null inner factory");
  }
  inner_ = rebuild_inner();
}

ResourcePolicyPtr ChangeAwarePolicy::rebuild_inner() {
  ResourcePolicyPtr fresh =
      inner_rng_ ? make_inner_seeded_(inner_rng_->split()) : make_inner_();
  if (!fresh) {
    throw std::invalid_argument("ChangeAwarePolicy: factory returned null");
  }
  return fresh;
}

std::string ChangeAwarePolicy::sampler_state() const {
  util::ByteWriter w;
  w.u8(inner_rng_ ? 1 : 0);
  if (inner_rng_) {
    const util::Rng::State s = inner_rng_->state();
    for (std::uint64_t word : s.words) w.u64(word);
    w.f64(s.cached_normal);
    w.u8(s.has_cached_normal ? 1 : 0);
  }
  w.str(inner_->sampler_state());
  return w.take();
}

void ChangeAwarePolicy::restore_sampler_state(std::string_view state) {
  util::ByteReader r(state);
  const bool has_rng = r.u8() != 0;
  if (has_rng != inner_rng_.has_value()) {
    throw std::runtime_error(
        "ChangeAwarePolicy: sampler state from a differently constructed "
        "instance (rng-owning vs closure-seeded)");
  }
  if (has_rng) {
    util::Rng::State s;
    for (auto& word : s.words) word = r.u64();
    s.cached_normal = r.f64();
    s.has_cached_normal = r.u8() != 0;
    inner_rng_->set_state(s);
  }
  inner_->restore_sampler_state(r.str());
  if (!r.done()) {
    throw std::runtime_error(
        "ChangeAwarePolicy: trailing sampler-state bytes");
  }
}

void ChangeAwarePolicy::observe(double peak_value, double significance) {
  ++total_observed_;
  since_change_.push_back({peak_value, significance});
  if (detector_.add(peak_value)) {
    // Hard reset: rebuild the inner policy from the detection window,
    // keeping only records on the NEW side of the shift (closer to the
    // recent mean than to the pre-shift history mean).
    const std::size_t keep = detector_.window();
    const std::size_t start =
        since_change_.size() > keep ? since_change_.size() - keep : 0;
    const double new_mean = detector_.last_recent_mean();
    const double old_mean = detector_.last_history_mean();
    std::vector<Record> fresh;
    for (std::size_t i = start; i < since_change_.size(); ++i) {
      const Record& r = since_change_[i];
      if (std::abs(r.value - new_mean) <= std::abs(r.value - old_mean)) {
        fresh.push_back(r);
      }
    }
    if (fresh.empty()) fresh.push_back(since_change_.back());
    inner_ = rebuild_inner();
    for (const Record& r : fresh) inner_->observe(r.value, r.significance);
    // Merge the replayed records immediately: the reset is a bulk load, so
    // deferring the staged-run merge would only delay it to the next
    // predict while keeping the staging buffer alive.
    inner_->flush_observations();
    since_change_ = std::move(fresh);
    return;
  }
  inner_->observe(peak_value, significance);
}

std::string ChangeAwarePolicy::name() const {
  return "change_aware(" + inner_->name() + ")";
}

}  // namespace tora::core
