#include "core/checkpoint.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace tora::core {

namespace {

constexpr const char* kHeader =
    "category,cores,memory_mb,disk_mb,time_s,significance";

double parse_double(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("checkpoint: bad ") + what +
                                " field: '" + s + "'");
  }
}

}  // namespace

void save_allocator_state(const TaskAllocator& allocator, std::ostream& out) {
  out << kHeader << '\n';
  util::CsvWriter csv(out);
  for (const auto& rec : allocator.history()) {
    csv.field(allocator.category_name(rec.category))
        .field(rec.peak.cores())
        .field(rec.peak.memory_mb())
        .field(rec.peak.disk_mb())
        .field(rec.peak.time_s())
        .field(rec.significance);
    csv.end_row();
  }
  if (!out.good()) {
    throw std::runtime_error("checkpoint: stream write failed");
  }
}

void restore_allocator_state(TaskAllocator& allocator, std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto rows = util::parse_csv(buf.str());
  if (rows.empty() || rows.front() != util::parse_csv_line(kHeader)) {
    throw std::invalid_argument("checkpoint: missing or malformed header");
  }
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& r = rows[i];
    if (r.size() != 6) {
      throw std::invalid_argument("checkpoint: row with wrong field count");
    }
    ResourceVector peak(parse_double(r[1], "cores"),
                        parse_double(r[2], "memory_mb"),
                        parse_double(r[3], "disk_mb"),
                        parse_double(r[4], "time_s"));
    allocator.record_completion(r[0], peak,
                                parse_double(r[5], "significance"));
  }
}

}  // namespace tora::core
