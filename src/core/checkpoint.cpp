#include "core/checkpoint.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "util/bytes.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace tora::core {

namespace {

constexpr const char* kMetaTag = "tora-checkpoint";
constexpr const char* kFormatVersion = "2";
constexpr const char* kHeader =
    "category,cores,memory_mb,disk_mb,time_s,significance";

double parse_double(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("checkpoint: bad ") + what +
                                " field: '" + s + "'");
  }
}

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

void restore_row(TaskAllocator& allocator, const std::vector<std::string>& r) {
  if (r.size() != 6) {
    throw std::invalid_argument("checkpoint: row with wrong field count");
  }
  ResourceVector peak(parse_double(r[1], "cores"),
                      parse_double(r[2], "memory_mb"),
                      parse_double(r[3], "disk_mb"),
                      parse_double(r[4], "time_s"));
  allocator.record_completion(r[0], peak, parse_double(r[5], "significance"));
}

}  // namespace

std::uint64_t allocator_config_hash(const AllocatorConfig& config) {
  // Canonical byte encoding of every behavior-relevant knob; hashing the
  // bytes (not a formatted string) keeps the digest independent of locale
  // and printf rounding.
  util::ByteWriter w;
  for (ResourceKind k : kAllResources) w.f64(config.worker_capacity[k]);
  w.u8(config.exploration.mode == ExplorationConfig::Mode::FixedDefault ? 0
                                                                        : 1);
  for (ResourceKind k : kAllResources) {
    w.f64(config.exploration.default_alloc[k]);
  }
  w.u64(config.exploration.min_records);
  w.u64(config.managed.size());
  for (ResourceKind k : config.managed) {
    w.u8(static_cast<std::uint8_t>(k));
  }
  w.u8(config.record_history ? 1 : 0);
  return util::hash64(w.bytes());
}

void save_allocator_state(const TaskAllocator& allocator, std::ostream& out) {
  util::CsvWriter csv(out);
  csv.field(kMetaTag)
      .field(kFormatVersion)
      .field(allocator.policy_name())
      .field(hash_hex(allocator_config_hash(allocator.config())));
  csv.end_row();
  out << kHeader << '\n';
  for (const auto& rec : allocator.history()) {
    csv.field(allocator.category_name(rec.category))
        .field(rec.peak.cores())
        .field(rec.peak.memory_mb())
        .field(rec.peak.disk_mb())
        .field(rec.peak.time_s())
        .field(rec.significance);
    csv.end_row();
  }
  if (!out.good()) {
    throw std::runtime_error("checkpoint: stream write failed");
  }
}

void restore_allocator_state(TaskAllocator& allocator, std::istream& in,
                             RestoreOptions options) {
  util::CsvRecordReader reader(in);
  const auto header_fields = util::parse_csv_line(kHeader);
  std::vector<std::string> rec;
  if (!reader.next(rec)) {
    throw std::invalid_argument("checkpoint: missing or malformed header");
  }
  if (!rec.empty() && rec[0] == kMetaTag) {
    if (rec.size() != 4 || rec[1] != kFormatVersion) {
      throw std::invalid_argument(
          "checkpoint: unsupported metadata line (expected format version " +
          std::string(kFormatVersion) + ")");
    }
    const std::string& snap_policy = rec[2];
    const std::string want_hash =
        hash_hex(allocator_config_hash(allocator.config()));
    if (!options.force) {
      if (snap_policy != allocator.policy_name()) {
        throw std::invalid_argument(
            "checkpoint: snapshot was written by policy '" + snap_policy +
            "' but the destination allocator runs '" +
            allocator.policy_name() +
            "'; restore into a matching allocator, or pass "
            "RestoreOptions{.force = true} for deliberate cross-policy "
            "replay");
      }
      if (rec[3] != want_hash) {
        throw std::invalid_argument(
            "checkpoint: snapshot config hash " + rec[3] +
            " does not match the destination allocator's " + want_hash +
            " (worker capacity, exploration, or managed resources differ); "
            "recreate the allocator with the original config, or pass "
            "RestoreOptions{.force = true} to replay anyway");
      }
    }
    if (!reader.next(rec) || rec != header_fields) {
      throw std::invalid_argument("checkpoint: missing or malformed header");
    }
  } else if (rec != header_fields) {
    throw std::invalid_argument("checkpoint: missing or malformed header");
  }
  while (reader.next(rec)) {
    restore_row(allocator, rec);
  }
  // The restore is a bulk replay: merge every policy's staged observations
  // in one pass instead of leaving the whole history in staging buffers.
  allocator.flush_policies();
}

}  // namespace tora::core
