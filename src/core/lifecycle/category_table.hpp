#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tora::core {

/// Dense integer handle for an interned task-category name. Ids are assigned
/// in first-seen order starting at 0, so they index plain vectors — the hot
/// paths of TaskAllocator and WasteAccounting never touch a string after
/// interning a task's category once at admission.
using CategoryId = std::uint32_t;

/// Sentinel for "no category" (never returned by intern()).
inline constexpr CategoryId kInvalidCategory = 0xFFFFFFFFu;

/// Interns category strings to dense CategoryIds. Mirrors Work Queue's move
/// from per-task string categories to shared category structs: strings exist
/// only at the system's edges (workload specs, wire messages, reports);
/// everything between is an array index.
class CategoryTable {
 public:
  /// Id for `name`, inserting it if unseen. Amortized O(1); the only string
  /// hash on the allocator hot path, paid once per task (or once per
  /// category when callers cache the id).
  CategoryId intern(std::string_view name);

  /// Id for `name` if already interned. Never inserts.
  std::optional<CategoryId> find(std::string_view name) const;

  /// The interned name for a valid id. Throws std::out_of_range otherwise.
  const std::string& name(CategoryId id) const;

  std::size_t size() const noexcept { return names_.size(); }
  bool empty() const noexcept { return names_.empty(); }

  /// All interned names, indexed by id (the reporting edge iterates this).
  const std::vector<std::string>& names() const noexcept { return names_; }

 private:
  // Heterogeneous lookup: find() on a string_view key without constructing
  // a std::string.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, CategoryId, Hash, std::equal_to<>> index_;
  std::vector<std::string> names_;
};

}  // namespace tora::core
