#include "core/lifecycle/dispatch_core.hpp"

#include <stdexcept>
#include <utility>

#include "util/bytes.hpp"
#include "util/log.hpp"

namespace tora::core::lifecycle {

DispatchCore::DispatchCore(std::span<const TaskSpec> tasks,
                           TaskAllocator& allocator, DispatchConfig config,
                           RuntimeHooks* hooks)
    : tasks_(tasks),
      allocator_(allocator),
      config_(config),
      hooks_(hooks),
      entries_(tasks.size()),
      dependents_(tasks.size()) {
  alloc_category_.reserve(tasks.size());
  acct_category_.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].id != i) {
      throw std::invalid_argument(
          "DispatchCore: task ids must be dense and in submission order");
    }
    entries_[i].deps_remaining = tasks_[i].deps.size();
    for (std::uint64_t dep : tasks_[i].deps) {
      if (dep >= i) {
        throw std::invalid_argument(
            "DispatchCore: dependency ids must be smaller than the task id");
      }
      dependents_[dep].push_back(i);
    }
    // The only per-task string work in the whole lifecycle: one intern into
    // each table. Everything downstream is a dense index.
    alloc_category_.push_back(allocator_.intern(tasks_[i].category));
    acct_category_.push_back(accounting_.intern(tasks_[i].category));
  }
  allocator_.reserve_history(tasks_.size());
}

void DispatchCore::start() {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    entries_[i].submitted = true;
    maybe_ready(i);
  }
}

void DispatchCore::mark_submitted(std::uint64_t task_id) {
  entries_[task_id].submitted = true;
  maybe_ready(task_id);
}

void DispatchCore::maybe_ready(std::uint64_t task_id) {
  TaskEntry& e = entries_[task_id];
  if (!e.submitted || e.deps_remaining > 0 || e.phase != TaskPhase::Pending) {
    return;
  }
  e.phase = TaskPhase::Queued;
  ready_.push_back(task_id);
}

void DispatchCore::ensure_allocation(std::uint64_t task_id) {
  TaskEntry& e = entries_[task_id];
  if (!e.has_alloc || (!e.is_retry && e.alloc_revision != allocator_.revision())) {
    e.alloc = allocator_.allocate(alloc_category_[task_id]);
    e.has_alloc = true;
    e.alloc_revision = allocator_.revision();
    if (hooks_) hooks_->allocation_committed(task_id, e.alloc, false);
  }
}

void DispatchCore::dispatch_pass(const PlaceFn& place, const CommitFn& commit,
                                 const DeferFn& defer) {
  // One pass suffices: placements only shrink the free space, so a task
  // that did not fit now will not fit later in the same pass.
  std::deque<std::uint64_t> waiting;
  while (!ready_.empty()) {
    const std::uint64_t task_id = ready_.front();
    ready_.pop_front();
    if (defer && defer(task_id)) {
      waiting.push_back(task_id);
      continue;
    }
    ensure_allocation(task_id);
    TaskEntry& e = entries_[task_id];
    if (const auto worker = place(task_id, e.alloc)) {
      if (config_.max_attempts > 0 && e.attempts >= config_.max_attempts) {
        make_fatal(task_id);
        continue;
      }
      ++e.attempts;
      e.phase = TaskPhase::Running;
      e.running_on = *worker;
      // Hook before CommitFn: the write-ahead journal must record the
      // dispatch before the commit sends anything over a wire.
      if (hooks_) hooks_->task_dispatched(task_id, *worker, e.attempts);
      commit(task_id, *worker, e.alloc);
    } else {
      waiting.push_back(task_id);
    }
  }
  ready_ = std::move(waiting);
}

double DispatchCore::significance_for(const TaskSpec& spec) const {
  // The paper's rule (§V-A): significance = task id (1-based), so recent
  // submissions dominate the bucketing state. Constant is the no-recency
  // ablation.
  return config_.significance == DispatchConfig::Significance::TaskId
             ? static_cast<double>(spec.id) + 1.0
             : 1.0;
}

void DispatchCore::complete(std::uint64_t task_id,
                            const ResourceVector& measured_peak,
                            double runtime_s) {
  TaskEntry& e = entries_[task_id];
  const TaskSpec& spec = tasks_[task_id];
  e.phase = TaskPhase::Done;
  ++completed_;
  ++finished_;

  accounting_.add(acct_category_[task_id], measured_peak, e.alloc, runtime_s,
                  e.failed_attempts);
  allocator_.record_completion(alloc_category_[task_id], measured_peak,
                               significance_for(spec));

  // Release dependents whose last dependency this was.
  for (std::uint64_t dep : dependents_[task_id]) {
    TaskEntry& d = entries_[dep];
    if (d.deps_remaining > 0) {
      --d.deps_remaining;
      maybe_ready(dep);
    }
  }
  if (hooks_) hooks_->task_completed(task_id, measured_peak, runtime_s);
}

DispatchCore::RetryVerdict DispatchCore::fail_attempt(std::uint64_t task_id,
                                                      double runtime_s,
                                                      unsigned exceeded_mask) {
  TaskEntry& e = entries_[task_id];
  e.failed_attempts.push_back({e.alloc, runtime_s});
  const auto fail_fatal = [&] {
    if (hooks_) {
      hooks_->task_failed_attempt(task_id, runtime_s, exceeded_mask, false);
    }
    make_fatal(task_id);
    return RetryVerdict::Fatal;
  };
  if (config_.max_allocation_failures > 0 &&
      e.failed_attempts.size() >= config_.max_allocation_failures) {
    return fail_fatal();
  }
  if (exceeded_mask == 0) {
    util::log_warn("lifecycle: exhausted attempt without exceeded mask");
    return fail_fatal();
  }
  const ResourceVector next = allocator_.allocate_retry(
      alloc_category_[task_id], e.alloc, exceeded_mask);
  // If every exceeded dimension is pinned at worker capacity the task can
  // never run in this pool.
  bool grew = false;
  for (ResourceKind k : allocator_.config().managed) {
    if ((exceeded_mask & resource_bit(k)) && next[k] > e.alloc[k]) {
      grew = true;
      break;
    }
  }
  if (!grew) {
    return fail_fatal();
  }
  e.alloc = next;
  e.is_retry = true;
  e.phase = TaskPhase::Queued;
  ready_.push_back(task_id);
  if (hooks_) {
    hooks_->allocation_committed(task_id, next, true);
    hooks_->task_failed_attempt(task_id, runtime_s, exceeded_mask, true);
  }
  return RetryVerdict::Requeued;
}

void DispatchCore::requeue_front(std::uint64_t task_id) {
  TaskEntry& e = entries_[task_id];
  if (e.phase != TaskPhase::Running) return;
  e.phase = TaskPhase::Queued;
  ready_.push_front(task_id);
  if (hooks_) hooks_->task_requeued(task_id);
}

void DispatchCore::charge_eviction(std::uint64_t task_id, double scale) {
  evicted_alloc_ += entries_[task_id].alloc * scale;
  ++evictions_;
  if (hooks_) hooks_->task_evicted(task_id, scale);
}

void DispatchCore::charge_speculation(std::uint64_t task_id, double scale) {
  const TaskEntry& e = entries_[task_id];
  accounting_.add_speculative(acct_category_[task_id], e.alloc, scale);
}

void DispatchCore::rebind_running(std::uint64_t task_id, std::uint64_t worker) {
  TaskEntry& e = entries_[task_id];
  if (e.phase != TaskPhase::Running) {
    throw std::logic_error("DispatchCore: rebind of a task that is not Running");
  }
  e.running_on = worker;
}

void DispatchCore::save_state(util::ByteWriter& w) const {
  w.u64(entries_.size());
  for (const TaskEntry& e : entries_) {
    w.u8(static_cast<std::uint8_t>(e.phase));
    w.u8(e.submitted ? 1 : 0);
    w.u8(e.has_alloc ? 1 : 0);
    w.u8(e.is_retry ? 1 : 0);
    w.u32(e.attempts);
    w.u64(e.alloc_revision);
    w.u64(e.running_on);
    for (ResourceKind k : kAllResources) w.f64(e.alloc[k]);
    w.u64(e.deps_remaining);
    w.u64(e.failed_attempts.size());
    for (const AttemptLog& a : e.failed_attempts) {
      for (ResourceKind k : kAllResources) w.f64(a.alloc[k]);
      w.f64(a.runtime_s);
    }
  }
  w.u64(ready_.size());
  for (std::uint64_t id : ready_) w.u64(id);
  accounting_.save(w);
  for (ResourceKind k : kAllResources) w.f64(evicted_alloc_[k]);
  w.u64(evictions_);
  w.u64(completed_);
  w.u64(fatal_);
  w.u64(finished_);
}

void DispatchCore::load_state(util::ByteReader& r) {
  if (r.u64() != entries_.size()) {
    throw std::runtime_error(
        "DispatchCore: snapshot task count does not match the workload");
  }
  for (TaskEntry& e : entries_) {
    e.phase = static_cast<TaskPhase>(r.u8());
    e.submitted = r.u8() != 0;
    e.has_alloc = r.u8() != 0;
    e.is_retry = r.u8() != 0;
    e.attempts = r.u32();
    e.alloc_revision = r.u64();
    e.running_on = r.u64();
    for (ResourceKind k : kAllResources) e.alloc[k] = r.f64();
    e.deps_remaining = r.u64();
    e.failed_attempts.resize(r.u64());
    for (AttemptLog& a : e.failed_attempts) {
      for (ResourceKind k : kAllResources) a.alloc[k] = r.f64();
      a.runtime_s = r.f64();
    }
  }
  ready_.clear();
  const std::uint64_t queued = r.u64();
  for (std::uint64_t i = 0; i < queued; ++i) ready_.push_back(r.u64());
  accounting_.load(r);
  for (ResourceKind k : kAllResources) evicted_alloc_[k] = r.f64();
  evictions_ = r.u64();
  completed_ = r.u64();
  fatal_ = r.u64();
  finished_ = r.u64();
}

void DispatchCore::make_fatal(std::uint64_t task_id) {
  TaskEntry& e = entries_[task_id];
  if (e.phase == TaskPhase::Fatal) return;
  e.phase = TaskPhase::Fatal;
  ++fatal_;
  ++finished_;
  if (hooks_) hooks_->task_fatal(task_id);
  // Dependents can never run: cascade the failure so the run terminates.
  for (std::uint64_t dep : dependents_[task_id]) {
    make_fatal(dep);
  }
}

}  // namespace tora::core::lifecycle
