#include "core/lifecycle/dispatch_core.hpp"

#include <stdexcept>
#include <utility>

#include "util/log.hpp"

namespace tora::core::lifecycle {

DispatchCore::DispatchCore(std::span<const TaskSpec> tasks,
                           TaskAllocator& allocator, DispatchConfig config,
                           RuntimeHooks* hooks)
    : tasks_(tasks),
      allocator_(allocator),
      config_(config),
      hooks_(hooks),
      entries_(tasks.size()),
      dependents_(tasks.size()) {
  alloc_category_.reserve(tasks.size());
  acct_category_.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].id != i) {
      throw std::invalid_argument(
          "DispatchCore: task ids must be dense and in submission order");
    }
    entries_[i].deps_remaining = tasks_[i].deps.size();
    for (std::uint64_t dep : tasks_[i].deps) {
      if (dep >= i) {
        throw std::invalid_argument(
            "DispatchCore: dependency ids must be smaller than the task id");
      }
      dependents_[dep].push_back(i);
    }
    // The only per-task string work in the whole lifecycle: one intern into
    // each table. Everything downstream is a dense index.
    alloc_category_.push_back(allocator_.intern(tasks_[i].category));
    acct_category_.push_back(accounting_.intern(tasks_[i].category));
  }
  allocator_.reserve_history(tasks_.size());
}

void DispatchCore::start() {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    entries_[i].submitted = true;
    maybe_ready(i);
  }
}

void DispatchCore::mark_submitted(std::uint64_t task_id) {
  entries_[task_id].submitted = true;
  maybe_ready(task_id);
}

void DispatchCore::maybe_ready(std::uint64_t task_id) {
  TaskEntry& e = entries_[task_id];
  if (!e.submitted || e.deps_remaining > 0 || e.phase != TaskPhase::Pending) {
    return;
  }
  e.phase = TaskPhase::Queued;
  ready_.push_back(task_id);
}

void DispatchCore::ensure_allocation(std::uint64_t task_id) {
  TaskEntry& e = entries_[task_id];
  if (!e.has_alloc || (!e.is_retry && e.alloc_revision != allocator_.revision())) {
    e.alloc = allocator_.allocate(alloc_category_[task_id]);
    e.has_alloc = true;
    e.alloc_revision = allocator_.revision();
  }
}

void DispatchCore::dispatch_pass(const PlaceFn& place, const CommitFn& commit,
                                 const DeferFn& defer) {
  // One pass suffices: placements only shrink the free space, so a task
  // that did not fit now will not fit later in the same pass.
  std::deque<std::uint64_t> waiting;
  while (!ready_.empty()) {
    const std::uint64_t task_id = ready_.front();
    ready_.pop_front();
    if (defer && defer(task_id)) {
      waiting.push_back(task_id);
      continue;
    }
    ensure_allocation(task_id);
    TaskEntry& e = entries_[task_id];
    if (const auto worker = place(task_id, e.alloc)) {
      if (config_.max_attempts > 0 && e.attempts >= config_.max_attempts) {
        make_fatal(task_id);
        continue;
      }
      ++e.attempts;
      e.phase = TaskPhase::Running;
      e.running_on = *worker;
      commit(task_id, *worker, e.alloc);
    } else {
      waiting.push_back(task_id);
    }
  }
  ready_ = std::move(waiting);
}

double DispatchCore::significance_for(const TaskSpec& spec) const {
  // The paper's rule (§V-A): significance = task id (1-based), so recent
  // submissions dominate the bucketing state. Constant is the no-recency
  // ablation.
  return config_.significance == DispatchConfig::Significance::TaskId
             ? static_cast<double>(spec.id) + 1.0
             : 1.0;
}

void DispatchCore::complete(std::uint64_t task_id,
                            const ResourceVector& measured_peak,
                            double runtime_s) {
  TaskEntry& e = entries_[task_id];
  const TaskSpec& spec = tasks_[task_id];
  e.phase = TaskPhase::Done;
  ++completed_;
  ++finished_;

  accounting_.add(acct_category_[task_id], measured_peak, e.alloc, runtime_s,
                  e.failed_attempts);
  allocator_.record_completion(alloc_category_[task_id], measured_peak,
                               significance_for(spec));

  // Release dependents whose last dependency this was.
  for (std::uint64_t dep : dependents_[task_id]) {
    TaskEntry& d = entries_[dep];
    if (d.deps_remaining > 0) {
      --d.deps_remaining;
      maybe_ready(dep);
    }
  }
}

DispatchCore::RetryVerdict DispatchCore::fail_attempt(std::uint64_t task_id,
                                                      double runtime_s,
                                                      unsigned exceeded_mask) {
  TaskEntry& e = entries_[task_id];
  e.failed_attempts.push_back({e.alloc, runtime_s});
  if (config_.max_allocation_failures > 0 &&
      e.failed_attempts.size() >= config_.max_allocation_failures) {
    make_fatal(task_id);
    return RetryVerdict::Fatal;
  }
  if (exceeded_mask == 0) {
    util::log_warn("lifecycle: exhausted attempt without exceeded mask");
    make_fatal(task_id);
    return RetryVerdict::Fatal;
  }
  const ResourceVector next = allocator_.allocate_retry(
      alloc_category_[task_id], e.alloc, exceeded_mask);
  // If every exceeded dimension is pinned at worker capacity the task can
  // never run in this pool.
  bool grew = false;
  for (ResourceKind k : allocator_.config().managed) {
    if ((exceeded_mask & resource_bit(k)) && next[k] > e.alloc[k]) {
      grew = true;
      break;
    }
  }
  if (!grew) {
    make_fatal(task_id);
    return RetryVerdict::Fatal;
  }
  e.alloc = next;
  e.is_retry = true;
  e.phase = TaskPhase::Queued;
  ready_.push_back(task_id);
  return RetryVerdict::Requeued;
}

void DispatchCore::requeue_front(std::uint64_t task_id) {
  TaskEntry& e = entries_[task_id];
  if (e.phase != TaskPhase::Running) return;
  e.phase = TaskPhase::Queued;
  ready_.push_front(task_id);
}

void DispatchCore::charge_eviction(std::uint64_t task_id, double scale) {
  evicted_alloc_ += entries_[task_id].alloc * scale;
  ++evictions_;
}

void DispatchCore::make_fatal(std::uint64_t task_id) {
  TaskEntry& e = entries_[task_id];
  if (e.phase == TaskPhase::Fatal) return;
  e.phase = TaskPhase::Fatal;
  ++fatal_;
  ++finished_;
  if (hooks_) hooks_->task_fatal(task_id);
  // Dependents can never run: cascade the failure so the run terminates.
  for (std::uint64_t dep : dependents_[task_id]) {
    make_fatal(dep);
  }
}

}  // namespace tora::core::lifecycle
