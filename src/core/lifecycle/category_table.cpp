#include "core/lifecycle/category_table.hpp"

#include <limits>
#include <stdexcept>

namespace tora::core {

CategoryId CategoryTable::intern(std::string_view name) {
  if (const auto it = index_.find(name); it != index_.end()) {
    return it->second;
  }
  if (names_.size() >=
      static_cast<std::size_t>(std::numeric_limits<CategoryId>::max())) {
    throw std::length_error("CategoryTable: category id space exhausted");
  }
  const auto id = static_cast<CategoryId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<CategoryId> CategoryTable::find(std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& CategoryTable::name(CategoryId id) const {
  if (id >= names_.size()) {
    throw std::out_of_range("CategoryTable: unknown category id");
  }
  return names_[id];
}

}  // namespace tora::core
